module botdetect

go 1.24
