// Package agents implements the synthetic traffic sources that substitute
// for CoDeeN's live Internet clients: a human browser model and the robot
// families the paper names (search-engine crawlers, e-mail harvesters,
// referrer spammers, click-fraud generators, vulnerability scanners,
// off-line browsers, and "smart" bots that execute JavaScript). Each agent
// drives HTTP-level requests against a Client (the simulator or a live
// proxy adapter) and is labelled with ground truth for evaluation.
package agents

import (
	"time"

	"botdetect/internal/rng"
)

// Request is one client request an agent issues.
type Request struct {
	// Time is the virtual time of the request.
	Time time.Time
	// IP and UserAgent identify the session the request belongs to.
	IP        string
	UserAgent string
	// Method and Path describe the request line; Referer may be empty.
	Method  string
	Path    string
	Referer string
}

// Response is what the client returns to the agent.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// ContentType is the response content type.
	ContentType string
	// Body is the response body (page markup, script text, ...).
	Body []byte
	// RedirectTo is the Location target for 3xx responses.
	RedirectTo string
}

// Client abstracts "the thing the agent talks to": in the simulator it is a
// CDN node wrapping the detector and the synthetic site; in live tests it can
// adapt net/http.
type Client interface {
	Do(req Request) Response
}

// Kind labels an agent family; it is the evaluation ground truth.
type Kind int

const (
	// KindHuman is a human user driving a standard browser.
	KindHuman Kind = iota
	// KindHumanNoJS is a human user with JavaScript disabled.
	KindHumanNoJS
	// KindCrawler is a well-behaved search-engine crawler.
	KindCrawler
	// KindEmailHarvester collects addresses from HTML only.
	KindEmailHarvester
	// KindReferrerSpammer sends forged Referer headers.
	KindReferrerSpammer
	// KindClickFraud generates automated ad/CGI click-throughs.
	KindClickFraud
	// KindVulnScanner probes for exploitable scripts.
	KindVulnScanner
	// KindOfflineBrowser mirrors whole sites for later display.
	KindOfflineBrowser
	// KindSmartBot executes JavaScript but generates no input events.
	KindSmartBot
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindHuman:
		return "human"
	case KindHumanNoJS:
		return "human-nojs"
	case KindCrawler:
		return "crawler"
	case KindEmailHarvester:
		return "email-harvester"
	case KindReferrerSpammer:
		return "referrer-spammer"
	case KindClickFraud:
		return "click-fraud"
	case KindVulnScanner:
		return "vuln-scanner"
	case KindOfflineBrowser:
		return "offline-browser"
	case KindSmartBot:
		return "smart-bot"
	default:
		return "unknown"
	}
}

// IsHuman reports whether the kind represents a human user (the ground-truth
// positive class).
func (k Kind) IsHuman() bool { return k == KindHuman || k == KindHumanNoJS }

// Agent is a traffic source. Step performs the agent's next batch of
// requests (typically one page view and its dependent fetches) at virtual
// time now and returns the delay until its next step and whether the agent
// has finished its session.
type Agent interface {
	// Kind is the agent family (ground truth).
	Kind() Kind
	// IP is the agent's client address.
	IP() string
	// UserAgent is the agent's User-Agent header value.
	UserAgent() string
	// Step advances the agent.
	Step(c Client, now time.Time) (next time.Duration, done bool)
}

// browserAgents are realistic desktop browser User-Agent strings of the
// paper's era, used by human agents and by robots that forge their identity.
var browserAgents = []string{
	"Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US; rv:1.8.0.1) Gecko/20060111 Firefox/1.5.0.1",
	"Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)",
	"Mozilla/5.0 (Macintosh; U; PPC Mac OS X; en) AppleWebKit/418 Safari/417.9.3",
	"Mozilla/5.0 (X11; U; Linux i686; en-US; rv:1.7.12) Gecko/20051010 Firefox/1.0.7",
	"Opera/8.54 (Windows NT 5.1; U; en)",
	"Mozilla/5.0 (Windows; U; Windows NT 5.1; de; rv:1.8) Gecko/20051111 Firefox/1.5",
}

// declaredBotAgents are User-Agent strings of robots that identify
// themselves (used by the well-behaved crawler agent).
var declaredBotAgents = []string{
	"Googlebot/2.1 (+http://www.google.com/bot.html)",
	"Mozilla/5.0 (compatible; Yahoo! Slurp; http://help.yahoo.com/help/us/ysearch/slurp)",
	"msnbot/1.0 (+http://search.msn.com/msnbot.htm)",
	"Teleport Pro/1.29",
}

// CaptchaSolvePath is the well-known pseudo-path an agent requests when it
// chooses to take (and solve) the optional CAPTCHA challenge. Client
// implementations translate it into a challenge issue + verify exchange for
// the requesting session; it never reaches the origin site.
const CaptchaSolvePath = "/__captcha/solve"

// PickBrowserAgent returns a deterministic pseudo-random browser UA string.
func PickBrowserAgent(src *rng.Source) string {
	return browserAgents[src.Intn(len(browserAgents))]
}

// PickDeclaredBotAgent returns a deterministic pseudo-random declared-bot UA.
func PickDeclaredBotAgent(src *rng.Source) string {
	return declaredBotAgents[src.Intn(len(declaredBotAgents))]
}

// absoluteReferer renders a path as an absolute referer URL on the host.
func absoluteReferer(host, path string) string {
	if path == "" {
		return ""
	}
	return "http://" + host + path
}
