package agents

import (
	"strings"
	"time"

	"botdetect/internal/htmlmod"
	"botdetect/internal/rng"
)

// HumanConfig parameterises a human browsing session.
type HumanConfig struct {
	// IP is the client address.
	IP string
	// Host is the site host (for absolute referers).
	Host string
	// Pages is the number of page views in the session (drawn by the
	// workload if zero).
	Pages int
	// JavaScriptEnabled is false for the 4-6% of users who disable JS.
	JavaScriptEnabled bool
	// MouseMoveProbability is the chance a page view produces an input event
	// before the user navigates away (JS-enabled users only). Real users
	// essentially always move the mouse eventually; per-page it is high.
	MouseMoveProbability float64
	// ThinkTimeMean is the mean think time between page views.
	ThinkTimeMean time.Duration
	// SolveCaptcha is the probability the user accepts the optional CAPTCHA
	// (the paper's incentive experiment saw 9.1% of sessions do so).
	SolveCaptcha float64
	// Src drives the agent's randomness.
	Src *rng.Source
}

// Human simulates a person driving a standard graphical browser: it fetches
// pages, their stylesheets, scripts and images, executes the injected
// JavaScript when enabled (issuing the execution beacon), produces mouse
// events that trigger the genuine handler beacon, follows only visible
// links, and never touches hidden links or decoy URLs.
type Human struct {
	cfg       HumanConfig
	ua        string
	kind      Kind
	pagesLeft int
	current   string // current page path
	handler   string // handler function name to "execute"
	// lastPage is the previously viewed page path ("" before the first view).
	lastPage string
	// wantsCaptcha is decided once per session.
	wantsCaptcha bool
	didCaptcha   bool
}

// NewHuman creates a human agent.
func NewHuman(cfg HumanConfig) *Human {
	if cfg.Src == nil {
		cfg.Src = rng.New(1)
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 5 + int(cfg.Src.Pareto(5, 1.4))
	}
	if cfg.MouseMoveProbability <= 0 {
		cfg.MouseMoveProbability = 0.85
	}
	if cfg.ThinkTimeMean <= 0 {
		cfg.ThinkTimeMean = 20 * time.Second
	}
	if cfg.Host == "" {
		cfg.Host = "www.example.com"
	}
	kind := KindHuman
	if !cfg.JavaScriptEnabled {
		kind = KindHumanNoJS
	}
	return &Human{
		cfg:          cfg,
		ua:           PickBrowserAgent(cfg.Src),
		kind:         kind,
		pagesLeft:    cfg.Pages,
		current:      "/",
		handler:      "__bd_f",
		wantsCaptcha: cfg.Src.Bool(cfg.SolveCaptcha),
	}
}

// Kind implements Agent.
func (h *Human) Kind() Kind { return h.kind }

// IP implements Agent.
func (h *Human) IP() string { return h.cfg.IP }

// UserAgent implements Agent.
func (h *Human) UserAgent() string { return h.ua }

// Step performs one page view: the page itself, its embedded objects
// (original and injected), JavaScript execution, and possibly an input
// event, then picks the next visible link to follow.
func (h *Human) Step(c Client, now time.Time) (time.Duration, bool) {
	if h.pagesLeft <= 0 {
		return 0, true
	}
	h.pagesLeft--
	firstView := h.lastPage == ""

	// After the first page view the referer is the previously viewed page.
	referer := ""
	if !firstView {
		referer = absoluteReferer(h.cfg.Host, h.lastPage)
	}
	page := c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: h.current, Referer: referer})
	h.lastPage = h.current

	if page.Status/100 == 3 && page.RedirectTo != "" {
		// Follow the redirect like a browser.
		h.current = page.RedirectTo
		page = c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: h.current, Referer: referer})
		h.lastPage = h.current
	}

	if !strings.Contains(strings.ToLower(page.ContentType), "text/html") || page.Status != 200 {
		// Dead end: go back to the home page next time.
		h.current = "/"
		return h.thinkTime(), h.pagesLeft <= 0
	}

	sum := htmlmod.Extract(page.Body)
	pageRef := absoluteReferer(h.cfg.Host, h.current)

	// Browsers fetch presentation objects: stylesheets first, then scripts,
	// then images, all with the page as referer. Humans never fetch the
	// hidden trap link.
	for _, css := range sum.Stylesheets {
		c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: css, Referer: pageRef})
	}
	var scriptBodies []string
	for _, js := range sum.Scripts {
		resp := c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: js, Referer: pageRef})
		if resp.Status == 200 {
			scriptBodies = append(scriptBodies, string(resp.Body))
		}
	}
	for i, img := range sum.Images {
		if i >= 12 { // browsers cap concurrent object fetches; keep volume sane
			break
		}
		c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: img, Referer: pageRef})
	}
	// Fetch favicon on the first page view, as browsers do.
	if firstView {
		c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: "/favicon.ico", Referer: ""})
	}

	if h.cfg.JavaScriptEnabled {
		h.executeScripts(c, now, scriptBodies, pageRef)
	}

	// The optional CAPTCHA: at most once per session.
	if h.wantsCaptcha && !h.didCaptcha {
		h.didCaptcha = true
		c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: CaptchaSolvePath, Referer: pageRef})
	}

	// Choose the next page among visible links (never the hidden ones).
	if len(sum.Links) > 0 {
		next := sum.Links[h.cfg.Src.Intn(len(sum.Links))]
		// Humans occasionally click the dynamic "Search" links too.
		h.current = next
	} else {
		h.current = "/"
	}
	return h.thinkTime(), h.pagesLeft <= 0
}

// executeScripts simulates running the downloaded scripts: issue the
// execution beacon (which reports the true user agent) and, with the
// configured probability, the genuine input-event beacon.
func (h *Human) executeScripts(c Client, now time.Time, scripts []string, pageRef string) {
	for _, script := range scripts {
		if exec := execBeaconURL(script); exec != "" {
			path := stripHost(exec) + "?ua=" + normalizeAgentForReport(h.ua)
			c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: path, Referer: pageRef})
		}
		if beacon := handlerBeaconURL(script, h.handler); beacon != "" {
			if h.cfg.Src.Bool(h.cfg.MouseMoveProbability) {
				c.Do(Request{Time: now, IP: h.cfg.IP, UserAgent: h.ua, Method: "GET", Path: stripHost(beacon), Referer: pageRef})
			}
		}
	}
}

func (h *Human) thinkTime() time.Duration {
	d := time.Duration(h.cfg.Src.Exp(float64(h.cfg.ThinkTimeMean)))
	if d < time.Second {
		d = time.Second
	}
	if d > 10*time.Minute {
		d = 10 * time.Minute
	}
	return d
}

// stripHost removes a scheme://host prefix, keeping the path (+query).
func stripHost(u string) string {
	if i := strings.Index(u, "://"); i >= 0 {
		rest := u[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return rest[j:]
		}
		return "/"
	}
	return u
}

// normalizeAgentForReport mimics the injected script's normalisation of
// navigator.userAgent (lower-case, spaces removed).
func normalizeAgentForReport(ua string) string {
	return strings.ReplaceAll(strings.ToLower(ua), " ", "")
}
