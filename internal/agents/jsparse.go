package agents

import (
	"strconv"
	"strings"
)

// This file implements the tiny subset of "JavaScript execution" the human
// and smart-bot agents need: given the generated beacon script, find the
// beacon URL fetched by the genuine event handler (the function installed on
// the body's onmousemove/onkeypress attributes) and the URL of the
// script-load execution beacon. Real browsers execute the script; the
// simulated browser understands the generator's two string encodings
// (a plain single-quoted literal and String.fromCharCode(...)).

// handlerBeaconURL extracts the beacon URL assigned inside the named handler
// function. It returns "" when the script does not contain the handler or
// the URL cannot be decoded.
func handlerBeaconURL(script, handlerName string) string {
	marker := "function " + handlerName + "()"
	start := strings.Index(script, marker)
	if start < 0 {
		return ""
	}
	// The handler body ends at the next "}\n}" pair; searching for the
	// ".src =" assignment within a bounded window is sufficient because the
	// generator always emits the assignment inside the function.
	window := script[start:]
	if end := strings.Index(window, "return false;\n}"); end >= 0 {
		window = window[:end]
	}
	idx := strings.Index(window, ".src = ")
	if idx < 0 {
		return ""
	}
	expr := window[idx+len(".src = "):]
	if nl := strings.IndexByte(expr, '\n'); nl >= 0 {
		expr = expr[:nl]
	}
	expr = strings.TrimSuffix(strings.TrimSpace(expr), ";")
	return decodeJSStringExpr(expr)
}

// execBeaconURL extracts the script-load execution beacon URL (the statement
// appended after the handler/decoy functions that reports the user agent).
// It returns "" when the script carries no execution beacon.
func execBeaconURL(script string) string {
	idx := strings.Index(script, "?ua=' + encodeURIComponent")
	if idx < 0 {
		// The URL expression ends with  + '?ua=' + ... ; find the assignment
		// feeding it instead (obfuscated scripts still contain this suffix).
		idx = strings.Index(script, "'?ua='")
		if idx < 0 {
			return ""
		}
	}
	// Walk back to the start of the statement: `<ident>.src = <expr> + '?ua='`.
	stmtStart := strings.LastIndex(script[:idx], ".src = ")
	if stmtStart < 0 {
		return ""
	}
	expr := script[stmtStart+len(".src = ") : idx]
	expr = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(expr), "+"))
	return decodeJSStringExpr(expr)
}

// decodeJSStringExpr decodes either 'literal' or String.fromCharCode(65,66).
func decodeJSStringExpr(expr string) string {
	expr = strings.TrimSpace(expr)
	if strings.HasPrefix(expr, "'") {
		end := strings.Index(expr[1:], "'")
		if end < 0 {
			return ""
		}
		return expr[1 : 1+end]
	}
	const fcc = "String.fromCharCode("
	if strings.HasPrefix(expr, fcc) {
		end := strings.Index(expr, ")")
		if end < 0 {
			return ""
		}
		var b strings.Builder
		for _, tok := range strings.Split(expr[len(fcc):end], ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 0 || n > 0x10ffff {
				return ""
			}
			b.WriteByte(byte(n))
		}
		return b.String()
	}
	return ""
}

// allBeaconURLs extracts every beacon URL assigned anywhere in the script —
// the behaviour of a robot that statically scrapes URLs out of scripts and
// fetches them blindly (and therefore hits decoys).
func allBeaconURLs(script string) []string {
	var out []string
	rest := script
	for {
		idx := strings.Index(rest, ".src = ")
		if idx < 0 {
			return out
		}
		expr := rest[idx+len(".src = "):]
		if nl := strings.IndexByte(expr, '\n'); nl >= 0 {
			expr = expr[:nl]
		}
		expr = strings.TrimSuffix(strings.TrimSpace(expr), ";")
		// Strip a trailing "+ '?ua=' ..." concatenation if present.
		if plus := strings.Index(expr, " + "); plus >= 0 {
			expr = expr[:plus]
		}
		if u := decodeJSStringExpr(expr); u != "" {
			out = append(out, u)
		}
		rest = rest[idx+len(".src = "):]
	}
}
