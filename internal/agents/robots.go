package agents

import (
	"fmt"
	"strings"
	"time"

	"botdetect/internal/htmlmod"
	"botdetect/internal/rng"
)

// RobotConfig parameterises a robot agent.
type RobotConfig struct {
	// IP is the client address.
	IP string
	// Host is the site host for forged referers.
	Host string
	// Requests is the approximate number of steps the robot performs (a step
	// is one page fetch plus whatever else the robot type does).
	Requests int
	// InterRequestMean is the mean delay between steps. Robots are typically
	// much faster than humans.
	InterRequestMean time.Duration
	// EngineAgent, for JavaScript-executing robots, is the agent string their
	// embedded script engine reports. When empty the robot reports the same
	// (forged) string it sends in the User-Agent header, evading the
	// browser-type-mismatch check; when set to a different string the
	// mismatch is detectable (the paper's Table 1 "Browser type mismatch").
	EngineAgent string
	// Src drives the agent's randomness.
	Src *rng.Source
}

func (c RobotConfig) withDefaults() RobotConfig {
	if c.Src == nil {
		c.Src = rng.New(2)
	}
	if c.Requests <= 0 {
		c.Requests = 20 + c.Src.Intn(80)
	}
	if c.InterRequestMean <= 0 {
		c.InterRequestMean = 2 * time.Second
	}
	if c.Host == "" {
		c.Host = "www.example.com"
	}
	return c
}

func (c RobotConfig) delay() time.Duration {
	d := time.Duration(c.Src.Exp(float64(c.InterRequestMean)))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// Crawler is a well-behaved search-engine crawler: it declares itself in the
// User-Agent, fetches robots.txt first, walks HTML pages breadth-first
// following every link it finds (including invisible ones — it cannot tell),
// and never downloads presentation objects.
type Crawler struct {
	cfg      RobotConfig
	ua       string
	frontier []string
	visited  map[string]bool
	started  bool
	steps    int
}

// NewCrawler creates a crawler agent.
func NewCrawler(cfg RobotConfig) *Crawler {
	cfg = cfg.withDefaults()
	return &Crawler{
		cfg:      cfg,
		ua:       PickDeclaredBotAgent(cfg.Src),
		frontier: []string{"/"},
		visited:  map[string]bool{},
	}
}

// Kind implements Agent.
func (a *Crawler) Kind() Kind { return KindCrawler }

// IP implements Agent.
func (a *Crawler) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *Crawler) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *Crawler) Step(c Client, now time.Time) (time.Duration, bool) {
	if !a.started {
		a.started = true
		c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: "/robots.txt"})
		return a.cfg.delay(), false
	}
	if a.steps >= a.cfg.Requests || len(a.frontier) == 0 {
		return 0, true
	}
	a.steps++
	path := a.frontier[0]
	a.frontier = a.frontier[1:]
	if a.visited[path] {
		return a.cfg.delay(), a.steps >= a.cfg.Requests
	}
	a.visited[path] = true
	resp := c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: path})
	if strings.Contains(strings.ToLower(resp.ContentType), "text/html") && resp.Status == 200 {
		sum := htmlmod.Extract(resp.Body)
		// Crawlers follow every anchor, visible or not; they skip CSS/JS/images.
		for _, l := range append(append([]string{}, sum.Links...), sum.HiddenLinks...) {
			if !a.visited[l] && len(a.frontier) < 512 {
				a.frontier = append(a.frontier, l)
			}
		}
	}
	return a.cfg.delay(), a.steps >= a.cfg.Requests || len(a.frontier) == 0
}

// EmailHarvester walks HTML pages looking for addresses: HTML only, forged
// browser User-Agent, no referers, no embedded objects. Unlike crawlers and
// mirroring tools it navigates content links only (it is after pages likely
// to contain addresses), so it rarely trips the hidden-link trap — matching
// the small hidden-link share the paper observed.
type EmailHarvester struct {
	cfg     RobotConfig
	ua      string
	current string
	steps   int
}

// NewEmailHarvester creates an e-mail harvesting agent.
func NewEmailHarvester(cfg RobotConfig) *EmailHarvester {
	cfg = cfg.withDefaults()
	return &EmailHarvester{cfg: cfg, ua: PickBrowserAgent(cfg.Src), current: "/"}
}

// Kind implements Agent.
func (a *EmailHarvester) Kind() Kind { return KindEmailHarvester }

// IP implements Agent.
func (a *EmailHarvester) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *EmailHarvester) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *EmailHarvester) Step(c Client, now time.Time) (time.Duration, bool) {
	if a.steps >= a.cfg.Requests {
		return 0, true
	}
	a.steps++
	resp := c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: a.current})
	a.current = "/"
	if strings.Contains(strings.ToLower(resp.ContentType), "text/html") && resp.Status == 200 {
		sum := htmlmod.Extract(resp.Body)
		if len(sum.Links) > 0 {
			a.current = sum.Links[a.cfg.Src.Intn(len(sum.Links))]
		}
	}
	return a.cfg.delay(), a.steps >= a.cfg.Requests
}

// ReferrerSpammer requests pages carrying forged Referer headers pointing at
// the site it wants to promote, to pollute referer logs and trackbacks. It
// fetches HTML only, under a forged browser agent.
type ReferrerSpammer struct {
	cfg   RobotConfig
	ua    string
	spam  []string
	steps int
}

// NewReferrerSpammer creates a referrer-spamming agent.
func NewReferrerSpammer(cfg RobotConfig) *ReferrerSpammer {
	cfg = cfg.withDefaults()
	spamDomains := []string{"http://cheap-pills.example/", "http://win-big-casino.example/", "http://rank-me-up.example/page"}
	return &ReferrerSpammer{cfg: cfg, ua: PickBrowserAgent(cfg.Src), spam: spamDomains}
}

// Kind implements Agent.
func (a *ReferrerSpammer) Kind() Kind { return KindReferrerSpammer }

// IP implements Agent.
func (a *ReferrerSpammer) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *ReferrerSpammer) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *ReferrerSpammer) Step(c Client, now time.Time) (time.Duration, bool) {
	if a.steps >= a.cfg.Requests {
		return 0, true
	}
	a.steps++
	page := fmt.Sprintf("/page%d.html", a.cfg.Src.Intn(100))
	ref := a.spam[a.cfg.Src.Intn(len(a.spam))] + fmt.Sprintf("?cid=%d", a.cfg.Src.Intn(10000))
	c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: page, Referer: ref})
	return a.cfg.delay(), a.steps >= a.cfg.Requests
}

// ClickFraud generates automated click-throughs on dynamic ad/CGI URLs to
// inflate affiliate revenue: rapid CGI requests under a forged browser agent
// with fabricated referers.
type ClickFraud struct {
	cfg   RobotConfig
	ua    string
	steps int
}

// NewClickFraud creates a click-fraud agent.
func NewClickFraud(cfg RobotConfig) *ClickFraud {
	cfg = cfg.withDefaults()
	if cfg.InterRequestMean > time.Second {
		cfg.InterRequestMean = 500 * time.Millisecond
	}
	return &ClickFraud{cfg: cfg, ua: PickBrowserAgent(cfg.Src)}
}

// Kind implements Agent.
func (a *ClickFraud) Kind() Kind { return KindClickFraud }

// IP implements Agent.
func (a *ClickFraud) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *ClickFraud) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *ClickFraud) Step(c Client, now time.Time) (time.Duration, bool) {
	if a.steps >= a.cfg.Requests {
		return 0, true
	}
	a.steps++
	path := fmt.Sprintf("/cgi-bin/app%d.cgi?ad=%d&click=%d", a.cfg.Src.Intn(5), a.cfg.Src.Intn(50), a.steps)
	ref := absoluteReferer(a.cfg.Host, fmt.Sprintf("/page%d.html", a.cfg.Src.Intn(100)))
	c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: path, Referer: ref})
	return a.cfg.delay(), a.steps >= a.cfg.Requests
}

// VulnScanner probes for exploitable scripts and misconfigurations: HEAD and
// GET requests against paths that mostly do not exist, producing heavy 4xx
// traffic under a forged or fake agent.
type VulnScanner struct {
	cfg    RobotConfig
	ua     string
	steps  int
	probes []string
}

// NewVulnScanner creates a vulnerability-scanning agent.
func NewVulnScanner(cfg RobotConfig) *VulnScanner {
	cfg = cfg.withDefaults()
	probes := []string{
		"/phpmyadmin/index.php", "/admin/login.php", "/cgi-bin/awstats.pl",
		"/xmlrpc.php", "/cgi-bin/formmail.pl", "/scripts/root.exe",
		"/_vti_bin/owssvr.dll", "/cgi-bin/php4", "/horde/README", "/wp-login.php",
	}
	return &VulnScanner{cfg: cfg, ua: PickBrowserAgent(cfg.Src), probes: probes}
}

// Kind implements Agent.
func (a *VulnScanner) Kind() Kind { return KindVulnScanner }

// IP implements Agent.
func (a *VulnScanner) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *VulnScanner) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *VulnScanner) Step(c Client, now time.Time) (time.Duration, bool) {
	if a.steps >= a.cfg.Requests {
		return 0, true
	}
	a.steps++
	method := "GET"
	if a.cfg.Src.Bool(0.3) {
		method = "HEAD"
	}
	path := a.probes[a.cfg.Src.Intn(len(a.probes))]
	if a.cfg.Src.Bool(0.4) {
		path = fmt.Sprintf("/cgi-bin/test%d.cgi?cmd=%%3Bcat+/etc/passwd", a.cfg.Src.Intn(1000))
	}
	c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: method, Path: path})
	return a.cfg.delay(), a.steps >= a.cfg.Requests
}

// OfflineBrowser mirrors pages for later display: it downloads pages AND all
// embedded objects (so it fetches the injected CSS and script files like a
// browser) but it follows every link including hidden ones and blindly
// fetches every URL it can scrape out of scripts — including decoy beacons —
// because it does not execute JavaScript.
type OfflineBrowser struct {
	cfg      RobotConfig
	ua       string
	frontier []string
	visited  map[string]bool
	steps    int
}

// NewOfflineBrowser creates an off-line browsing (site mirroring) agent.
func NewOfflineBrowser(cfg RobotConfig) *OfflineBrowser {
	cfg = cfg.withDefaults()
	ua := "Teleport Pro/1.29"
	if cfg.Src.Bool(0.5) {
		ua = PickBrowserAgent(cfg.Src) // many mirroring tools forge browser agents
	}
	return &OfflineBrowser{cfg: cfg, ua: ua, frontier: []string{"/"}, visited: map[string]bool{}}
}

// Kind implements Agent.
func (a *OfflineBrowser) Kind() Kind { return KindOfflineBrowser }

// IP implements Agent.
func (a *OfflineBrowser) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *OfflineBrowser) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *OfflineBrowser) Step(c Client, now time.Time) (time.Duration, bool) {
	if a.steps >= a.cfg.Requests || len(a.frontier) == 0 {
		return 0, true
	}
	a.steps++
	path := a.frontier[0]
	a.frontier = a.frontier[1:]
	if a.visited[path] {
		return a.cfg.delay(), a.steps >= a.cfg.Requests
	}
	a.visited[path] = true
	resp := c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: path})
	if strings.Contains(strings.ToLower(resp.ContentType), "text/html") && resp.Status == 200 {
		sum := htmlmod.Extract(resp.Body)
		for _, obj := range sum.Stylesheets {
			c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: obj, Referer: absoluteReferer(a.cfg.Host, path)})
		}
		for _, obj := range sum.Scripts {
			scriptResp := c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: obj, Referer: absoluteReferer(a.cfg.Host, path)})
			if scriptResp.Status == 200 {
				// Blindly scrape and fetch every URL inside the script; the
				// decoy functions catch exactly this behaviour.
				for _, u := range allBeaconURLs(string(scriptResp.Body)) {
					c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: stripHost(u)})
				}
			}
		}
		for _, obj := range sum.Images {
			c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: obj, Referer: absoluteReferer(a.cfg.Host, path)})
		}
		for _, l := range append(append([]string{}, sum.Links...), sum.HiddenLinks...) {
			if !a.visited[l] && len(a.frontier) < 512 {
				a.frontier = append(a.frontier, l)
			}
		}
	}
	return a.cfg.delay(), a.steps >= a.cfg.Requests || len(a.frontier) == 0
}

// SmartBot is the countermeasure-aware robot discussed in Section 4.1: it
// forges a browser agent, downloads stylesheets and scripts, and even
// executes the JavaScript (issuing the execution beacon and reporting its
// forged agent string) — but it generates no input events and is careful not
// to fetch hidden links or decoys. It is caught by the S_JS − S_MM rule.
type SmartBot struct {
	cfg     RobotConfig
	ua      string
	current string
	steps   int
}

// NewSmartBot creates a JavaScript-executing robot.
func NewSmartBot(cfg RobotConfig) *SmartBot {
	cfg = cfg.withDefaults()
	return &SmartBot{cfg: cfg, ua: PickBrowserAgent(cfg.Src), current: "/"}
}

// Kind implements Agent.
func (a *SmartBot) Kind() Kind { return KindSmartBot }

// IP implements Agent.
func (a *SmartBot) IP() string { return a.cfg.IP }

// UserAgent implements Agent.
func (a *SmartBot) UserAgent() string { return a.ua }

// Step implements Agent.
func (a *SmartBot) Step(c Client, now time.Time) (time.Duration, bool) {
	if a.steps >= a.cfg.Requests {
		return 0, true
	}
	a.steps++
	pageRef := absoluteReferer(a.cfg.Host, a.current)
	resp := c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: a.current})
	a.current = "/"
	if strings.Contains(strings.ToLower(resp.ContentType), "text/html") && resp.Status == 200 {
		sum := htmlmod.Extract(resp.Body)
		for _, css := range sum.Stylesheets {
			c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: css, Referer: pageRef})
		}
		for _, js := range sum.Scripts {
			scriptResp := c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: js, Referer: pageRef})
			if scriptResp.Status == 200 {
				// "Execute" the script: the execution beacon fires and reports
				// what the bot's script engine believes its agent string is.
				// A careful bot reports its forged header string (no
				// mismatch); a sloppier one leaks its real engine identity.
				if exec := execBeaconURL(string(scriptResp.Body)); exec != "" {
					reported := a.ua
					if a.cfg.EngineAgent != "" {
						reported = a.cfg.EngineAgent
					}
					path := stripHost(exec) + "?ua=" + normalizeAgentForReport(reported)
					c.Do(Request{Time: now, IP: a.cfg.IP, UserAgent: a.ua, Method: "GET", Path: path, Referer: pageRef})
				}
			}
		}
		if len(sum.Links) > 0 {
			a.current = sum.Links[a.cfg.Src.Intn(len(sum.Links))]
		}
	}
	return a.cfg.delay(), a.steps >= a.cfg.Requests
}
