package agents

import (
	"strings"
	"testing"
	"time"

	"botdetect/internal/core"
	"botdetect/internal/detect/rules"
	"botdetect/internal/jsgen"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

// testClient wires agents to a synthetic site through an Engine the way the
// CDN simulator does, so agent behaviour can be verified end to end.
type testClient struct {
	site *webmodel.Site
	det  *core.Engine
}

func newTestClient(seed uint64, obfuscate bool) *testClient {
	return &testClient{
		site: webmodel.Generate(webmodel.SiteConfig{Seed: seed, NumPages: 30}),
		det:  core.New(core.Config{Seed: seed, ObfuscateJS: obfuscate}),
	}
}

func (tc *testClient) Do(req Request) Response {
	if req.Path == CaptchaSolvePath {
		tc.det.MarkCaptchaPassed(session.Key{IP: req.IP, UserAgent: req.UserAgent})
		return Response{Status: 200, ContentType: "text/plain", Body: []byte("ok")}
	}
	if resp, ok := tc.det.HandleBeacon(req.IP, req.UserAgent, req.Path); ok {
		return Response{Status: resp.Status, ContentType: resp.ContentType, Body: resp.Body}
	}
	obj := tc.site.Lookup(req.Path)
	tc.det.ObserveRequest(logfmt.Entry{
		Time: req.Time, ClientIP: req.IP, UserAgent: req.UserAgent, Method: req.Method,
		Path: req.Path, Status: obj.Status, Bytes: int64(len(obj.Body)), Referer: req.Referer,
		ContentType: obj.ContentType,
	})
	body := obj.Body
	if strings.Contains(obj.ContentType, "text/html") && obj.Status == 200 && req.Method == "GET" {
		body, _ = tc.det.InstrumentPage(req.IP, req.UserAgent, req.Path, body)
	}
	return Response{Status: obj.Status, ContentType: obj.ContentType, Body: body, RedirectTo: obj.RedirectTo}
}

func (tc *testClient) verdict(a Agent) core.Verdict {
	return tc.det.Classify(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
}

// run drives an agent to completion (or a step cap).
func run(tc *testClient, a Agent) {
	now := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 500; i++ {
		delay, done := a.Step(tc, now)
		now = now.Add(delay)
		if done {
			return
		}
	}
}

func TestKindLabels(t *testing.T) {
	if !KindHuman.IsHuman() || !KindHumanNoJS.IsHuman() {
		t.Fatal("human kinds should be human")
	}
	for _, k := range []Kind{KindCrawler, KindEmailHarvester, KindReferrerSpammer, KindClickFraud, KindVulnScanner, KindOfflineBrowser, KindSmartBot} {
		if k.IsHuman() {
			t.Fatalf("%s should not be human", k)
		}
		if k.String() == "unknown" {
			t.Fatalf("missing name for kind %d", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

func TestHumanWithJSDetectedAsHuman(t *testing.T) {
	tc := newTestClient(1, true)
	h := NewHuman(HumanConfig{IP: "10.1.0.1", JavaScriptEnabled: true, Pages: 8, MouseMoveProbability: 1.0, Src: rng.New(3)})
	run(tc, h)
	v := tc.verdict(h)
	if v.Class != core.ClassHuman || v.Confidence != core.Definite {
		t.Fatalf("verdict = %+v", v)
	}
	snap, _ := tc.det.Session(session.Key{IP: h.IP(), UserAgent: h.UserAgent()})
	if !snap.Has(session.SignalMouse) || !snap.Has(session.SignalCSS) || !snap.Has(session.SignalJS) {
		t.Fatalf("signals = %v", snap.Signals)
	}
	if snap.Has(session.SignalHidden) || snap.Has(session.SignalDecoy) || snap.Has(session.SignalUAMismatch) {
		t.Fatalf("human tripped robot signals: %v", snap.Signals)
	}
}

func TestHumanWithoutJSDetectedViaCSS(t *testing.T) {
	tc := newTestClient(2, true)
	h := NewHuman(HumanConfig{IP: "10.1.0.2", JavaScriptEnabled: false, Pages: 12, Src: rng.New(5)})
	run(tc, h)
	snap, _ := tc.det.Session(session.Key{IP: h.IP(), UserAgent: h.UserAgent()})
	if !snap.Has(session.SignalCSS) {
		t.Fatal("no-JS human did not fetch the injected stylesheet")
	}
	if snap.Has(session.SignalJS) || snap.Has(session.SignalMouse) {
		t.Fatalf("no-JS human produced JS signals: %v", snap.Signals)
	}
	if !rules.InHumanSet(snap) {
		t.Fatal("no-JS human not in S_H")
	}
	if h.Kind() != KindHumanNoJS {
		t.Fatal("kind should be human-nojs")
	}
}

func TestHumanCaptchaParticipation(t *testing.T) {
	tc := newTestClient(3, false)
	h := NewHuman(HumanConfig{IP: "10.1.0.3", JavaScriptEnabled: true, Pages: 5, SolveCaptcha: 1.0, Src: rng.New(7)})
	run(tc, h)
	snap, _ := tc.det.Session(session.Key{IP: h.IP(), UserAgent: h.UserAgent()})
	if !snap.Has(session.SignalCaptcha) {
		t.Fatal("captcha-participating human not marked")
	}
}

func TestCrawlerDetectedAsRobot(t *testing.T) {
	tc := newTestClient(4, true)
	a := NewCrawler(RobotConfig{IP: "10.2.0.1", Requests: 40, Src: rng.New(11)})
	run(tc, a)
	snap, ok := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	if !ok {
		t.Fatal("crawler session missing")
	}
	// Crawlers follow every link and eventually hit the hidden trap.
	if !snap.Has(session.SignalHidden) {
		t.Fatalf("crawler did not hit the hidden link; signals = %v, requests = %d", snap.Signals, snap.Counts.Total)
	}
	if snap.Has(session.SignalCSS) || snap.Has(session.SignalJS) {
		t.Fatal("crawler should not fetch presentation objects")
	}
	v := tc.verdict(a)
	if v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestEmailHarvesterClassifiedRobot(t *testing.T) {
	tc := newTestClient(5, true)
	a := NewEmailHarvester(RobotConfig{IP: "10.2.0.2", Requests: 30, Src: rng.New(13)})
	run(tc, a)
	v := tc.verdict(a)
	if v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
	snap, _ := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	if snap.Counts.HTML == 0 || snap.Counts.Embedded != 0 {
		t.Fatalf("harvester request mix unexpected: %+v", snap.Counts)
	}
}

func TestReferrerSpammerBehaviour(t *testing.T) {
	tc := newTestClient(6, true)
	a := NewReferrerSpammer(RobotConfig{IP: "10.2.0.3", Requests: 25, Src: rng.New(17)})
	run(tc, a)
	snap, _ := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	if snap.Counts.WithReferrer != snap.Counts.Total {
		t.Fatalf("spammer requests missing referers: %+v", snap.Counts)
	}
	if snap.Counts.UnseenReferrer != snap.Counts.WithReferrer {
		t.Fatalf("spammer referers should all be unseen: %+v", snap.Counts)
	}
	if v := tc.verdict(a); v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestClickFraudBehaviour(t *testing.T) {
	tc := newTestClient(7, true)
	a := NewClickFraud(RobotConfig{IP: "10.2.0.4", Requests: 30, Src: rng.New(19)})
	run(tc, a)
	snap, _ := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	if snap.Counts.CGI != snap.Counts.Total {
		t.Fatalf("click-fraud requests should all be CGI: %+v", snap.Counts)
	}
	if v := tc.verdict(a); v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestVulnScannerBehaviour(t *testing.T) {
	tc := newTestClient(8, true)
	a := NewVulnScanner(RobotConfig{IP: "10.2.0.5", Requests: 40, Src: rng.New(23)})
	run(tc, a)
	snap, _ := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	if snap.Counts.Status4xx == 0 {
		t.Fatalf("scanner should generate 4xx responses: %+v", snap.Counts)
	}
	if v := tc.verdict(a); v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestOfflineBrowserCaughtByDecoysOrHiddenLinks(t *testing.T) {
	tc := newTestClient(9, true)
	a := NewOfflineBrowser(RobotConfig{IP: "10.2.0.6", Requests: 30, Src: rng.New(29)})
	run(tc, a)
	snap, _ := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	// The mirroring tool downloads CSS (looks browser-like) but blindly
	// fetches scraped beacon URLs and hidden links.
	if !snap.Has(session.SignalCSS) {
		t.Fatalf("offline browser should download stylesheets: %v", snap.Signals)
	}
	if !snap.Has(session.SignalDecoy) && !snap.Has(session.SignalHidden) {
		t.Fatalf("offline browser not caught by decoys or hidden links: %v", snap.Signals)
	}
	if v := tc.verdict(a); v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestSmartBotCaughtByJSWithoutMouse(t *testing.T) {
	tc := newTestClient(10, true)
	a := NewSmartBot(RobotConfig{IP: "10.2.0.7", Requests: 25, Src: rng.New(31)})
	run(tc, a)
	snap, _ := tc.det.Session(session.Key{IP: a.IP(), UserAgent: a.UserAgent()})
	if !snap.Has(session.SignalJS) || !snap.Has(session.SignalCSS) {
		t.Fatalf("smart bot should execute JS and fetch CSS: %v", snap.Signals)
	}
	if snap.Has(session.SignalMouse) || snap.Has(session.SignalDecoy) || snap.Has(session.SignalHidden) || snap.Has(session.SignalUAMismatch) {
		t.Fatalf("smart bot tripped unexpected signals: %v", snap.Signals)
	}
	if rules.InHumanSet(snap) {
		t.Fatal("smart bot must not be in S_H (the S_JS - S_MM term)")
	}
	v := tc.verdict(a)
	if v.Class != core.ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestJSParseHelpers(t *testing.T) {
	gen := jsgen.NewGenerator()
	for _, obf := range []bool{false, true} {
		p := jsgen.Params{
			BeaconBase:  "http://www.example.com",
			RealKey:     "0729395160",
			DecoyKeys:   []string{"1111111111", "2222222222"},
			UAReportKey: "5556667777",
			Obfuscate:   obf,
			Seed:        9,
		}
		script := gen.Script(p)
		beacon := handlerBeaconURL(script, "__bd_f")
		if !strings.Contains(beacon, "0729395160.jpg") {
			t.Fatalf("obf=%v: handler beacon = %q", obf, beacon)
		}
		exec := execBeaconURL(script)
		if !strings.Contains(exec, "/js/5556667777.gif") {
			t.Fatalf("obf=%v: exec beacon = %q", obf, exec)
		}
		all := allBeaconURLs(script)
		if len(all) < 3 {
			t.Fatalf("obf=%v: allBeaconURLs = %v", obf, all)
		}
		foundDecoy := false
		for _, u := range all {
			if strings.Contains(u, "1111111111.jpg") {
				foundDecoy = true
			}
		}
		if !foundDecoy {
			t.Fatalf("obf=%v: decoy URL not scraped", obf)
		}
	}
	if handlerBeaconURL("nothing here", "__bd_f") != "" {
		t.Fatal("missing handler should yield empty URL")
	}
	if execBeaconURL("no beacons") != "" {
		t.Fatal("missing exec beacon should yield empty URL")
	}
	if decodeJSStringExpr("garbage") != "" || decodeJSStringExpr("String.fromCharCode(999999999)") != "" {
		t.Fatal("invalid expressions should decode to empty")
	}
}

func TestStripHost(t *testing.T) {
	cases := map[string]string{
		"http://www.example.com/__bd/1.jpg": "/__bd/1.jpg",
		"https://example.com":               "/",
		"/already/relative.css":             "/already/relative.css",
	}
	for in, want := range cases {
		if got := stripHost(in); got != want {
			t.Fatalf("stripHost(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAgentPickersDeterministic(t *testing.T) {
	a := PickBrowserAgent(rng.New(1))
	b := PickBrowserAgent(rng.New(1))
	if a != b {
		t.Fatal("PickBrowserAgent not deterministic for the same source")
	}
	if PickDeclaredBotAgent(rng.New(1)) == "" {
		t.Fatal("empty declared bot agent")
	}
}

func TestHumanDefaultsApplied(t *testing.T) {
	h := NewHuman(HumanConfig{IP: "10.3.0.1"})
	if h.cfg.Pages <= 0 || h.cfg.ThinkTimeMean <= 0 || h.cfg.MouseMoveProbability <= 0 {
		t.Fatalf("defaults not applied: %+v", h.cfg)
	}
	if h.UserAgent() == "" || h.IP() != "10.3.0.1" {
		t.Fatal("identity accessors broken")
	}
}

func TestRobotConfigDefaults(t *testing.T) {
	cfg := RobotConfig{}.withDefaults()
	if cfg.Requests <= 0 || cfg.InterRequestMean <= 0 || cfg.Src == nil || cfg.Host == "" {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.delay() < 100*time.Millisecond {
		t.Fatal("delay floor not applied")
	}
}

func TestAgentsTerminate(t *testing.T) {
	tc := newTestClient(11, false)
	mkAgents := []Agent{
		NewHuman(HumanConfig{IP: "10.4.0.1", JavaScriptEnabled: true, Pages: 3, Src: rng.New(1)}),
		NewCrawler(RobotConfig{IP: "10.4.0.2", Requests: 5, Src: rng.New(2)}),
		NewEmailHarvester(RobotConfig{IP: "10.4.0.3", Requests: 5, Src: rng.New(3)}),
		NewReferrerSpammer(RobotConfig{IP: "10.4.0.4", Requests: 5, Src: rng.New(4)}),
		NewClickFraud(RobotConfig{IP: "10.4.0.5", Requests: 5, Src: rng.New(5)}),
		NewVulnScanner(RobotConfig{IP: "10.4.0.6", Requests: 5, Src: rng.New(6)}),
		NewOfflineBrowser(RobotConfig{IP: "10.4.0.7", Requests: 5, Src: rng.New(7)}),
		NewSmartBot(RobotConfig{IP: "10.4.0.8", Requests: 5, Src: rng.New(8)}),
	}
	now := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	for _, a := range mkAgents {
		done := false
		for i := 0; i < 200 && !done; i++ {
			var delay time.Duration
			delay, done = a.Step(tc, now)
			now = now.Add(delay)
		}
		if !done {
			t.Fatalf("agent %s did not terminate", a.Kind())
		}
	}
}
