// Package captcha provides the CAPTCHA substrate the paper uses to collect
// ground-truth human labels (Section 3.1): an optional challenge offered to
// clients with an incentive (higher bandwidth), whose solution marks the
// session as human for labelling and evaluation purposes.
//
// The paper used a distorted-image library; this substitution issues textual
// arithmetic challenges, which preserves the only property downstream code
// consumes — "this session solved a challenge a scripted robot would not" —
// while staying dependency-free. A solve model for simulated clients lives
// with the traffic agents, not here.
package captcha

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/rng"
	"botdetect/internal/session"
)

// Challenge is one issued CAPTCHA.
type Challenge struct {
	// ID identifies the challenge in the verification request.
	ID string
	// Question is the human-readable challenge text.
	Question string
	// IssuedAt is when the challenge was generated.
	IssuedAt time.Time
	// expires is when the challenge stops being accepted.
	expires time.Time
	// answer is the expected answer (not exported; verification only).
	answer string
	// key is the session the challenge was issued to.
	key session.Key
}

// Config controls the service.
type Config struct {
	// TTL is how long a challenge remains solvable (default 10 minutes).
	TTL time.Duration
	// MaxOutstanding caps stored unsolved challenges (default 100000).
	MaxOutstanding int
	// MaxAttempts caps verification attempts per challenge (default 3).
	MaxAttempts int
	// Seed drives challenge generation.
	Seed uint64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 100000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats are cumulative counters.
type Stats struct {
	Issued  int64
	Passed  int64
	Failed  int64
	Expired int64
	Unknown int64
	Evicted int64
}

type stored struct {
	ch       Challenge
	attempts int
}

// Service issues and verifies challenges. It is safe for concurrent use.
type Service struct {
	cfg Config

	mu          sync.Mutex
	src         *rng.Source
	outstanding map[string]*stored
	passed      map[session.Key]time.Time
	order       []string // issue order for eviction
	stats       Stats
}

// NewService creates a Service.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:         cfg,
		src:         rng.New(cfg.Seed).Fork("captcha"),
		outstanding: make(map[string]*stored),
		passed:      make(map[session.Key]time.Time),
	}
}

// Issue generates a challenge for the session.
func (s *Service) Issue(key session.Key) Challenge {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()

	a := s.src.Intn(90) + 10
	b := s.src.Intn(9) + 1
	var question string
	var answer int
	switch s.src.Intn(3) {
	case 0:
		question = fmt.Sprintf("What is %d plus %d?", a, b)
		answer = a + b
	case 1:
		question = fmt.Sprintf("What is %d minus %d?", a, b)
		answer = a - b
	default:
		question = fmt.Sprintf("What is %d times %d?", b, s.src.Intn(9)+1)
		bb := (answer) // placeholder to keep structure clear
		_ = bb
		// Recompute deterministically: parse the factors back out of the
		// question is fragile, so regenerate with stored operands instead.
		parts := strings.Fields(question)
		x, _ := strconv.Atoi(parts[2])
		y, _ := strconv.Atoi(strings.TrimSuffix(parts[4], "?"))
		answer = x * y
	}

	ch := Challenge{
		ID:       s.src.HexKey(16),
		Question: question,
		IssuedAt: now,
		expires:  now.Add(s.cfg.TTL),
		answer:   strconv.Itoa(answer),
		key:      key,
	}
	s.outstanding[ch.ID] = &stored{ch: ch}
	s.order = append(s.order, ch.ID)
	s.stats.Issued++
	s.evictLocked()
	return ch
}

func (s *Service) evictLocked() {
	for len(s.outstanding) > s.cfg.MaxOutstanding && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		if _, ok := s.outstanding[victim]; ok {
			delete(s.outstanding, victim)
			s.stats.Evicted++
		}
	}
}

// Verify checks an answer for the challenge with the given ID. On success
// the session is recorded as having passed a CAPTCHA.
func (s *Service) Verify(id, answer string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.outstanding[id]
	if !ok {
		s.stats.Unknown++
		return false
	}
	now := s.cfg.Clock.Now()
	if now.After(st.ch.expires) {
		delete(s.outstanding, id)
		s.stats.Expired++
		return false
	}
	st.attempts++
	if strings.TrimSpace(answer) == st.ch.answer {
		delete(s.outstanding, id)
		s.passed[st.ch.key] = now
		s.stats.Passed++
		return true
	}
	if st.attempts >= s.cfg.MaxAttempts {
		delete(s.outstanding, id)
	}
	s.stats.Failed++
	return false
}

// HasPassed reports whether the session has ever passed a challenge.
func (s *Service) HasPassed(key session.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.passed[key]
	return ok
}

// PassedCount returns the number of sessions that have passed a challenge.
func (s *Service) PassedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.passed)
}

// Outstanding returns the number of unsolved, unexpired challenges stored.
func (s *Service) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outstanding)
}

// Stats returns a copy of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Answer exposes the expected answer of a challenge the service itself
// issued. It exists for the simulator's human solve model and for tests;
// a production deployment never calls it.
func (s *Service) Answer(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.outstanding[id]
	if !ok {
		return "", false
	}
	return st.ch.answer, true
}
