package captcha

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/session"
)

func newTestService(cfg Config) (*Service, *clock.Virtual) {
	vc := clock.NewVirtual(time.Time{})
	cfg.Clock = vc
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return NewService(cfg), vc
}

func key(i int) session.Key {
	return session.Key{IP: fmt.Sprintf("10.0.0.%d", i), UserAgent: "UA"}
}

func TestIssueAndSolve(t *testing.T) {
	s, _ := newTestService(Config{})
	ch := s.Issue(key(1))
	if ch.ID == "" || ch.Question == "" {
		t.Fatalf("challenge = %+v", ch)
	}
	ans, ok := s.Answer(ch.ID)
	if !ok {
		t.Fatal("Answer lookup failed")
	}
	if !s.Verify(ch.ID, ans) {
		t.Fatal("correct answer rejected")
	}
	if !s.HasPassed(key(1)) {
		t.Fatal("session not marked as passed")
	}
	if s.PassedCount() != 1 {
		t.Fatalf("PassedCount = %d", s.PassedCount())
	}
	// A solved challenge cannot be reused.
	if s.Verify(ch.ID, ans) {
		t.Fatal("solved challenge accepted twice")
	}
	st := s.Stats()
	if st.Issued != 1 || st.Passed != 1 || st.Unknown != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChallengeAnswersAreConsistent(t *testing.T) {
	// Every generated question's text must agree with its stored answer.
	s, _ := newTestService(Config{})
	for i := 0; i < 200; i++ {
		ch := s.Issue(key(i))
		ans, _ := s.Answer(ch.ID)
		words := strings.Fields(ch.Question)
		x, err1 := strconv.Atoi(words[2])
		y, err2 := strconv.Atoi(strings.TrimSuffix(words[4], "?"))
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable question %q", ch.Question)
		}
		var want int
		switch words[3] {
		case "plus":
			want = x + y
		case "minus":
			want = x - y
		case "times":
			want = x * y
		default:
			t.Fatalf("unknown operator in %q", ch.Question)
		}
		if ans != strconv.Itoa(want) {
			t.Fatalf("question %q has stored answer %s, want %d", ch.Question, ans, want)
		}
	}
}

func TestWrongAnswerAndAttemptLimit(t *testing.T) {
	s, _ := newTestService(Config{MaxAttempts: 2})
	ch := s.Issue(key(2))
	if s.Verify(ch.ID, "not-a-number") {
		t.Fatal("wrong answer accepted")
	}
	if s.Verify(ch.ID, "999999") {
		t.Fatal("wrong answer accepted")
	}
	// Attempts exhausted: even the right answer is now rejected.
	ans, ok := s.Answer(ch.ID)
	if ok {
		t.Fatalf("challenge should have been discarded, answer=%s", ans)
	}
	if s.Verify(ch.ID, "0") {
		t.Fatal("discarded challenge accepted")
	}
	if s.HasPassed(key(2)) {
		t.Fatal("failed session marked passed")
	}
	if s.Stats().Failed != 2 {
		t.Fatalf("Failed = %d", s.Stats().Failed)
	}
}

func TestExpiry(t *testing.T) {
	s, vc := newTestService(Config{TTL: 5 * time.Minute})
	ch := s.Issue(key(3))
	ans, _ := s.Answer(ch.ID)
	vc.Advance(6 * time.Minute)
	if s.Verify(ch.ID, ans) {
		t.Fatal("expired challenge accepted")
	}
	if s.Stats().Expired != 1 {
		t.Fatalf("Expired = %d", s.Stats().Expired)
	}
}

func TestWhitespaceTolerantAnswers(t *testing.T) {
	s, _ := newTestService(Config{})
	ch := s.Issue(key(4))
	ans, _ := s.Answer(ch.ID)
	if !s.Verify(ch.ID, "  "+ans+" \n") {
		t.Fatal("whitespace-padded correct answer rejected")
	}
}

func TestEvictionCap(t *testing.T) {
	s, _ := newTestService(Config{MaxOutstanding: 10})
	for i := 0; i < 30; i++ {
		s.Issue(key(i))
	}
	if s.Outstanding() != 10 {
		t.Fatalf("Outstanding = %d", s.Outstanding())
	}
	if s.Stats().Evicted != 20 {
		t.Fatalf("Evicted = %d", s.Stats().Evicted)
	}
}

func TestMultipleSessionsIndependent(t *testing.T) {
	s, _ := newTestService(Config{})
	chA := s.Issue(key(10))
	chB := s.Issue(key(11))
	ansB, _ := s.Answer(chB.ID)
	if !s.Verify(chB.ID, ansB) {
		t.Fatal("B's answer rejected")
	}
	if s.HasPassed(key(10)) {
		t.Fatal("A marked passed after B solved")
	}
	ansA, _ := s.Answer(chA.ID)
	if !s.Verify(chA.ID, ansA) {
		t.Fatal("A's answer rejected")
	}
	if s.PassedCount() != 2 {
		t.Fatalf("PassedCount = %d", s.PassedCount())
	}
}

func TestDeterministicQuestionsPerSeed(t *testing.T) {
	a, _ := newTestService(Config{Seed: 7})
	b, _ := newTestService(Config{Seed: 7})
	for i := 0; i < 20; i++ {
		if a.Issue(key(i)).Question != b.Issue(key(i)).Question {
			t.Fatal("same seed produced different challenges")
		}
	}
}
