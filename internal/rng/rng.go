// Package rng provides deterministic, splittable pseudo-random number
// generation and the sampling distributions used throughout the simulator.
//
// Every stochastic component in this repository (traffic agents, workload
// mixes, think times, the CAPTCHA solve model, the complaint model) draws
// from an rng.Source so that experiments are exactly reproducible from a
// single seed. The generator is a 64-bit SplitMix64/xoshiro256** pair
// implemented locally so the repository has no dependency on the evolving
// behaviour of math/rand across Go releases.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; use Split to derive independent streams for concurrent
// components.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used for seeding xoshiro256** state as recommended by its authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources constructed
// from the same seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		src.s[i] = splitmix64(&state)
	}
	// Avoid the (astronomically unlikely) all-zero state, which is the one
	// invalid state for xoshiro.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new Source whose stream is statistically independent of
// the receiver's. The receiver's stream is advanced. Split is the supported
// way to hand independent generators to concurrent goroutines.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

// Fork derives a named sub-stream from the receiver without consuming the
// receiver's stream, so components created in different orders still receive
// stable generators. The same (receiver seed, name) pair always yields the
// same stream.
func (r *Source) Fork(name string) *Source {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	// Mix with the receiver's current state but do not advance it.
	return New(h ^ r.s[0] ^ rotl(r.s[2], 13))
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with non-positive n=%d", n))
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n=0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using the provided
// swap function, mirroring math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
// A zero or negative mean returns 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		factor := math.Sqrt(-2 * math.Log(s) / s)
		return mean + stddev*u*factor
	}
}

// LogNormal returns a log-normally distributed value parameterised by the
// mean and standard deviation of the underlying normal distribution. Human
// think times between page requests are commonly modelled this way.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha.
// Web object sizes and session lengths are heavy-tailed; the simulator uses
// Pareto draws for both.
func (r *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return xm
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence. p is clamped to (0, 1].
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf samples integers in [0, n) following a Zipf distribution with the
// given skew s > 0; lower ranks are more probable. It is used to pick pages
// from the synthetic site following Web-like popularity.
type Zipf struct {
	src  *Source
	cdf  []float64
	n    int
	skew float64
}

// NewZipf constructs a Zipf sampler over [0, n) with skew s. It panics if
// n <= 0 or s <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf requires n > 0")
	}
	if s <= 0 {
		panic("rng: NewZipf requires s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf, n: n, skew: s}
}

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return z.n }

// Skew returns the configured skew parameter.
func (z *Zipf) Skew() float64 { return z.skew }

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice selects index i with probability weights[i]/sum(weights).
// Zero and negative weights are treated as zero. If all weights are zero it
// returns 0.
func (r *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// HexKey returns a lowercase hexadecimal string of n random nibbles. It is
// the generator behind the per-page random keys embedded in rewritten HTML
// (the paper draws k from [0, 2^128-1]; 32 nibbles reproduce that range).
func (r *Source) HexKey(n int) string {
	const hexdigits = "0123456789abcdef"
	if n <= 0 {
		return ""
	}
	buf := make([]byte, n)
	var bits uint64
	remaining := 0
	for i := 0; i < n; i++ {
		if remaining == 0 {
			bits = r.Uint64()
			remaining = 16
		}
		buf[i] = hexdigits[bits&0xf]
		bits >>= 4
		remaining--
	}
	return string(buf)
}

// DigitKey returns a string of n random decimal digits, matching the style
// of the beacon object names shown in the paper (e.g. "0729395160.jpg").
func (r *Source) DigitKey(n int) string {
	if n <= 0 {
		return ""
	}
	return string(r.AppendDigitKey(make([]byte, 0, n), n))
}

// AppendDigitKey appends n random decimal digits to dst and returns the
// extended slice. It consumes the stream exactly like DigitKey, so callers
// that format keys into reusable buffers stay bit-compatible with callers
// that materialise strings.
func (r *Source) AppendDigitKey(dst []byte, n int) []byte {
	const digits = "0123456789"
	for i := 0; i < n; i++ {
		dst = append(dst, digits[r.Intn(10)])
	}
	return dst
}

// DigitKeyValue draws n decimal digits and packs them into a uint64
// (most-significant digit first, leading zeros preserved by the fixed
// width). It consumes the stream exactly like DigitKey and AppendDigitKey —
// one Intn(10) per digit — so numeric and string key consumers seeded alike
// draw identical keys. n must be at most 19 (10^19-1 fits a uint64).
func (r *Source) DigitKeyValue(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v*10 + uint64(r.Intn(10))
	}
	return v
}

// AppendFixedDigits appends v formatted as exactly n decimal digits (zero
// padded) to dst and returns the extended slice. It is the inverse of
// DigitKeyValue: AppendFixedDigits(nil, DigitKeyValue(n), n) equals the
// AppendDigitKey output for the same draw.
func AppendFixedDigits(dst []byte, v uint64, n int) []byte {
	var buf [20]byte
	for i := n - 1; i >= 0; i-- {
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, buf[:n]...)
}

// ParseFixedDigits parses a string of exactly n decimal digits into the
// uint64 DigitKeyValue would have produced. It reports false when s has the
// wrong length or contains a non-digit, so "007" and "7" never collide.
func ParseFixedDigits(s string, n int) (uint64, bool) {
	if len(s) != n || n > 19 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}
