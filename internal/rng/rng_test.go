package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 produced only %d distinct values out of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream should not reproduce the parent stream.
	p := New(7)
	pSkipped := p.Uint64() // Split consumed one value from the parent.
	_ = pSkipped
	matches := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("child stream matched parent stream %d/100 times", matches)
	}
}

func TestForkStable(t *testing.T) {
	a := New(99).Fork("agents")
	b := New(99).Fork("agents")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Fork with same name diverged at %d", i)
		}
	}
	c := New(99).Fork("workload")
	d := New(99).Fork("agents")
	diff := false
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Fork with different names produced identical streams")
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Fork("x")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork advanced the parent stream")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) returned %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates more than 10%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(17)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	if r.Bool(-0.5) {
		t.Fatal("Bool(-0.5) returned true")
	}
	if !r.Bool(1.5) {
		t.Fatal("Bool(1.5) returned false")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(19)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %f", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExpMean(t *testing.T) {
	r := New(31)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Exp(5)
	}
	mean := sum / draws
	if math.Abs(mean-5) > 0.2 {
		t.Fatalf("Exp(5) sample mean = %f", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(37)
	const draws = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean = %f", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("Normal variance = %f", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal returned non-positive value")
		}
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(43)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto(2,1.5) returned %f below scale", v)
		}
	}
	if r.Pareto(0, 1) != 0 {
		t.Fatal("Pareto with zero scale should return the scale")
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(47)
	const draws = 100000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Poisson(3)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("Poisson(3) sample mean = %f", mean)
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) should be 0")
	}
	// Large-mean path.
	sum = 0
	for i := 0; i < 10000; i++ {
		sum += r.Poisson(200)
	}
	mean = float64(sum) / 10000
	if math.Abs(mean-200) > 3 {
		t.Fatalf("Poisson(200) sample mean = %f", mean)
	}
}

func TestGeometric(t *testing.T) {
	r := New(53)
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) should be 0")
	}
	const draws = 100000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / draws
	// Mean of failures before success is (1-p)/p = 3.
	if math.Abs(mean-3) > 0.2 {
		t.Fatalf("Geometric(0.25) sample mean = %f", mean)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	r := New(59)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("Zipf rank 0 (%d) not more popular than rank 99 (%d)", counts[0], counts[99])
	}
	if z.N() != 100 || z.Skew() != 1.0 {
		t.Fatal("Zipf accessors incorrect")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NewZipf(_, 0, 1)")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestWeightedChoice(t *testing.T) {
	r := New(61)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight buckets selected: %v", counts)
	}
	if !(counts[4] > counts[2] && counts[2] > counts[1]) {
		t.Fatalf("weighted ordering violated: %v", counts)
	}
	if r.WeightedChoice([]float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return index 0")
	}
}

func TestHexKeyProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r := New(seed)
		k := r.HexKey(n)
		if len(k) != n {
			return false
		}
		for i := 0; i < len(k); i++ {
			c := k[i]
			if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if New(1).HexKey(0) != "" {
		t.Fatal("HexKey(0) should be empty")
	}
}

func TestDigitKeyProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		r := New(seed)
		k := r.DigitKey(n)
		if len(k) != n {
			return false
		}
		for i := 0; i < len(k); i++ {
			if k[i] < '0' || k[i] > '9' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHexKeyCollisionRate(t *testing.T) {
	r := New(67)
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		k := r.HexKey(32)
		if seen[k] {
			t.Fatalf("collision for 128-bit key after %d draws", i)
		}
		seen[k] = true
	}
}

func TestAppendDigitKeyMatchesDigitKey(t *testing.T) {
	a := New(77)
	b := New(77)
	var buf []byte
	for i := 0; i < 50; i++ {
		n := i % 13
		want := a.DigitKey(n)
		buf = b.AppendDigitKey(buf[:0], n)
		if string(buf) != want {
			t.Fatalf("n=%d: AppendDigitKey = %q, DigitKey = %q", n, buf, want)
		}
	}
	// The two sources must stay stream-synchronised: identical next draws.
	if a.Uint64() != b.Uint64() {
		t.Fatal("AppendDigitKey consumed the stream differently from DigitKey")
	}
}
