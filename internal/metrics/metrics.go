// Package metrics provides the statistical summaries used to report the
// paper's evaluation: empirical CDFs (Figure 2), monthly time series
// (Figure 3), accuracy curves (Figure 4), session-breakdown tables (Table 1),
// and the confusion-matrix derived rates (false positive rate, accuracy)
// quoted throughout Section 3.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns a CDF pre-populated with the given samples.
func NewCDF(samples ...float64) *CDF {
	c := &CDF{}
	c.AddAll(samples)
	return c
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddAll appends all samples.
func (c *CDF) AddAll(vs []float64) {
	c.samples = append(c.samples, vs...)
	c.sorted = false
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns the fraction of samples <= x, in [0, 1]. An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	idx := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.samples))
}

// Quantile returns the smallest sample value v such that At(v) >= q.
// q is clamped to [0, 1]. An empty CDF returns 0.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// Mean returns the sample mean, or 0 for an empty CDF.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Min returns the smallest sample, or 0 for an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample, or 0 for an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Points returns up to n evenly spaced (x, F(x)) points suitable for
// plotting or printing the CDF as a series, always including the extremes.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	if n == 1 {
		return []Point{{X: c.samples[len(c.samples)-1], Y: 1}}
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.samples) - 1) / (n - 1)
		x := c.samples[idx]
		pts = append(pts, Point{X: x, Y: float64(idx+1) / float64(len(c.samples))})
	}
	return pts
}

// Point is a single (x, y) coordinate of a reported series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, the unit in which figures are
// regenerated (one Series per curve in a paper figure).
type Series struct {
	Name   string
	Points []Point
}

// Format renders the series as a two-column gnuplot-style block.
func (s Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
	}
	return b.String()
}

// Histogram counts integer-valued observations in unit-width bins,
// tracking everything above the configured maximum in an overflow bin.
type Histogram struct {
	bins     []int64
	overflow int64
	count    int64
	sum      float64
}

// NewHistogram returns a histogram covering [0, maxValue]. maxValue < 0 is
// treated as 0.
func NewHistogram(maxValue int) *Histogram {
	if maxValue < 0 {
		maxValue = 0
	}
	return &Histogram{bins: make([]int64, maxValue+1)}
}

// Observe records one observation. Negative values clamp to 0; values above
// the maximum land in the overflow bin.
func (h *Histogram) Observe(v int) {
	h.count++
	h.sum += float64(v)
	if v < 0 {
		v = 0
	}
	if v >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[v]++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Overflow returns the number of observations above the configured maximum.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Bin returns the count of observations equal to v, or 0 if out of range.
func (h *Histogram) Bin(v int) int64 {
	if v < 0 || v >= len(h.bins) {
		return 0
	}
	return h.bins[v]
}

// Mean returns the mean of all observations (including overflowed ones, at
// their true values).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// CumulativeAt returns the fraction of observations <= v. Overflowed
// observations are only counted when v is at or beyond the maximum bin.
func (h *Histogram) CumulativeAt(v int) float64 {
	if h.count == 0 {
		return 0
	}
	if v < 0 {
		return 0
	}
	var acc int64
	limit := v
	if limit >= len(h.bins) {
		limit = len(h.bins) - 1
	}
	for i := 0; i <= limit; i++ {
		acc += h.bins[i]
	}
	if v >= len(h.bins) {
		acc += h.overflow
	}
	return float64(acc) / float64(h.count)
}

// ConfusionMatrix accumulates binary-classification outcomes where
// "positive" means "classified as human" unless documented otherwise by the
// caller.
type ConfusionMatrix struct {
	TP, FP, TN, FN int64
}

// Record adds one outcome given the predicted and actual labels.
func (m *ConfusionMatrix) Record(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		m.TP++
	case predictedPositive && !actuallyPositive:
		m.FP++
	case !predictedPositive && actuallyPositive:
		m.FN++
	default:
		m.TN++
	}
}

// Total returns the number of recorded outcomes.
func (m *ConfusionMatrix) Total() int64 { return m.TP + m.FP + m.TN + m.FN }

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (m *ConfusionMatrix) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// FalsePositiveRate returns FP/(FP+TN), the definition used in the paper
// (false positives over all negatives), or 0 when there are no negatives.
func (m *ConfusionMatrix) FalsePositiveRate() float64 {
	neg := m.FP + m.TN
	if neg == 0 {
		return 0
	}
	return float64(m.FP) / float64(neg)
}

// FalseNegativeRate returns FN/(TP+FN), or 0 when there are no positives.
func (m *ConfusionMatrix) FalseNegativeRate() float64 {
	pos := m.TP + m.FN
	if pos == 0 {
		return 0
	}
	return float64(m.FN) / float64(pos)
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (m *ConfusionMatrix) Precision() float64 {
	p := m.TP + m.FP
	if p == 0 {
		return 0
	}
	return float64(m.TP) / float64(p)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (m *ConfusionMatrix) Recall() float64 {
	p := m.TP + m.FN
	if p == 0 {
		return 0
	}
	return float64(m.TP) / float64(p)
}

// F1 returns the harmonic mean of precision and recall.
func (m *ConfusionMatrix) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly for logs and test failures.
func (m *ConfusionMatrix) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.3f fpr=%.3f",
		m.TP, m.FP, m.TN, m.FN, m.Accuracy(), m.FalsePositiveRate())
}

// Counter is a named monotonically increasing counter set, used for the
// Table 1 style session breakdowns and the operational counters exported by
// the proxy.
type Counter struct {
	counts map[string]int64
	order  []string
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Inc adds delta (which may be negative only down to zero usage discipline is
// the caller's responsibility) to the named counter, creating it on first use.
func (c *Counter) Inc(name string, delta int64) {
	if _, ok := c.counts[name]; !ok {
		c.order = append(c.order, name)
	}
	c.counts[name] += delta
}

// Get returns the value of the named counter (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns counter names in first-use order.
func (c *Counter) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Table is a simple fixed-column text table used to print the regenerated
// paper tables from cmd/botbench and the benchmarks.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal, e.g. 0.289 -> "28.9".
func Pct(fraction float64) string {
	return fmt.Sprintf("%.1f", fraction*100)
}

// Ratio returns a/b, or 0 when b == 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
