package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(10) != 0 || c.Quantile(0.5) != 0 || c.Mean() != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Fatal("empty CDF should return zeros")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF Points should be nil")
	}
}

func TestCDFBasic(t *testing.T) {
	c := NewCDF(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if got := c.At(5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("At(5) = %f, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %f, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %f, want 1", got)
	}
	if got := c.Quantile(0.8); got != 8 {
		t.Fatalf("Quantile(0.8) = %f, want 8", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %f, want 1", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %f, want 10", got)
	}
	if got := c.Mean(); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("Mean = %f", got)
	}
	if c.Min() != 1 || c.Max() != 10 || c.Len() != 10 {
		t.Fatal("Min/Max/Len incorrect")
	}
}

func TestCDFAddAfterQuery(t *testing.T) {
	c := NewCDF(5, 1)
	_ = c.At(2)
	c.Add(3)
	if got := c.Quantile(1); got != 5 {
		t.Fatalf("Quantile(1) after Add = %f", got)
	}
	if got := c.At(3); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("At(3) = %f", got)
	}
}

func TestCDFQuantileAtMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		c := &CDF{}
		for _, v := range raw {
			c.Add(float64(v % 1000))
		}
		// At must be monotonically non-decreasing.
		prev := -1.0
		for x := 0.0; x <= 1000; x += 50 {
			v := c.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		// Quantile must be monotonically non-decreasing in q.
		prevQ := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prevQ {
				return false
			}
			prevQ = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF(1, 2, 3, 4, 5)
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("Points(3) returned %d points", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last point Y = %f, want 1", pts[len(pts)-1].Y)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X <= pts[j].X }) {
		t.Fatal("points not sorted by X")
	}
	one := c.Points(1)
	if len(one) != 1 || one[0].Y != 1 {
		t.Fatalf("Points(1) = %v", one)
	}
}

func TestSeriesFormat(t *testing.T) {
	s := Series{Name: "css", Points: []Point{{1, 0.5}, {2, 1}}}
	out := s.Format()
	if !strings.Contains(out, "# css") || !strings.Contains(out, "1\t0.5") {
		t.Fatalf("unexpected format output: %q", out)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i <= 12; i++ {
		h.Observe(i)
	}
	h.Observe(-3)
	if h.Count() != 14 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d", h.Overflow())
	}
	if h.Bin(0) != 2 { // the 0 observation plus the clamped -3
		t.Fatalf("Bin(0) = %d", h.Bin(0))
	}
	if h.Bin(5) != 1 || h.Bin(11) != 0 || h.Bin(-1) != 0 {
		t.Fatal("Bin lookups incorrect")
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{1, 1, 2, 3, 8} {
		h.Observe(v)
	}
	if got := h.CumulativeAt(2); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("CumulativeAt(2) = %f", got)
	}
	if got := h.CumulativeAt(100); got != 1 {
		t.Fatalf("CumulativeAt(100) = %f", got)
	}
	if got := h.CumulativeAt(-1); got != 0 {
		t.Fatalf("CumulativeAt(-1) = %f", got)
	}
	if got := h.CumulativeAt(5); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("CumulativeAt(5) = %f, overflow should not count below max", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	for _, v := range []int{10, 20, 30} {
		h.Observe(v)
	}
	if got := h.Mean(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Mean = %f", got)
	}
	empty := NewHistogram(10)
	if empty.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
	if NewHistogram(-5).Bin(0) != 0 {
		t.Fatal("negative max should behave as zero-sized histogram")
	}
}

func TestConfusionMatrix(t *testing.T) {
	var m ConfusionMatrix
	// 8 humans correctly classified, 2 humans missed, 1 robot misclassified,
	// 9 robots correctly classified.
	for i := 0; i < 8; i++ {
		m.Record(true, true)
	}
	for i := 0; i < 2; i++ {
		m.Record(false, true)
	}
	m.Record(true, false)
	for i := 0; i < 9; i++ {
		m.Record(false, false)
	}
	if m.Total() != 20 {
		t.Fatalf("Total = %d", m.Total())
	}
	if got := m.Accuracy(); math.Abs(got-17.0/20.0) > 1e-9 {
		t.Fatalf("Accuracy = %f", got)
	}
	if got := m.FalsePositiveRate(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("FPR = %f", got)
	}
	if got := m.FalseNegativeRate(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("FNR = %f", got)
	}
	if got := m.Precision(); math.Abs(got-8.0/9.0) > 1e-9 {
		t.Fatalf("Precision = %f", got)
	}
	if got := m.Recall(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("Recall = %f", got)
	}
	if m.F1() <= 0 || m.F1() > 1 {
		t.Fatalf("F1 = %f out of range", m.F1())
	}
	if !strings.Contains(m.String(), "TP=8") {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestConfusionMatrixEmpty(t *testing.T) {
	var m ConfusionMatrix
	if m.Accuracy() != 0 || m.FalsePositiveRate() != 0 || m.FalseNegativeRate() != 0 ||
		m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 {
		t.Fatal("empty matrix rates should all be 0")
	}
}

func TestConfusionMatrixRatesBounded(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		m := ConfusionMatrix{TP: int64(tp), FP: int64(fp), TN: int64(tn), FN: int64(fn)}
		for _, v := range []float64{m.Accuracy(), m.FalsePositiveRate(), m.FalseNegativeRate(), m.Precision(), m.Recall(), m.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("css", 1)
	c.Inc("js", 2)
	c.Inc("css", 3)
	if c.Get("css") != 4 || c.Get("js") != 2 || c.Get("missing") != 0 {
		t.Fatal("counter values incorrect")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "css" || names[1] != "js" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTableFormat(t *testing.T) {
	tab := NewTable("Table 1: sessions", "Description", "# of Sessions", "Percentage(%)")
	tab.AddRow("Downloaded CSS", "268952", "28.9")
	tab.AddRow("Total sessions", "929922")
	out := tab.Format()
	if !strings.Contains(out, "Table 1: sessions") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "Downloaded CSS") || !strings.Contains(out, "28.9") {
		t.Fatal("row content missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d: %q", len(lines), out)
	}
	// Padded missing cell should not panic and row should align.
	if !strings.Contains(lines[4], "929922") {
		t.Fatalf("missing padded row: %q", lines[4])
	}
}

func TestPctAndRatio(t *testing.T) {
	if Pct(0.289) != "28.9" {
		t.Fatalf("Pct(0.289) = %q", Pct(0.289))
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) != 0.75")
	}
}
