// Package shard holds the primitives shared by every sharded component in
// the detection pipeline (the session tracker, the keystore, the engine's
// script cache): one normalization rule for shard counts, one string hash
// for shard selection, and one formula for distributing a global capacity
// bound over shards. Centralising them keeps the components from silently
// drifting to different shard counts or cap semantics.
package shard

// DefaultShards is the default shard count. 32 shards keep per-shard lock
// contention negligible up to tens of cores while costing only a few
// hundred bytes of fixed overhead per shard.
const DefaultShards = 32

// Normalize rounds n up to a power of two, applying DefaultShards for
// non-positive values.
func Normalize(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// AutoShards picks a shard count for p-way parallelism (typically
// GOMAXPROCS): four shards per logical CPU — so even a perfectly balanced
// load leaves most shards unlocked at any instant — rounded up to a power of
// two and clamped to [8, 512]. The floor keeps small machines from
// serialising on a couple of locks; the ceiling bounds fixed per-shard
// overhead and full-table sweep time.
func AutoShards(p int) int {
	if p < 1 {
		p = 1
	}
	n := Normalize(4 * p)
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	return n
}

// PerShardCap distributes a global capacity bound evenly over shards:
// ceil(max/shards), at least 1. The effective global bound is therefore max
// rounded up to a multiple of the shard count.
func PerShardCap(max, shards int) int {
	c := (max + shards - 1) / shards
	if c < 1 {
		c = 1
	}
	return c
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashString returns the FNV-1a hash of s, the hash behind every shard
// selection in the pipeline.
func HashString(s string) uint64 {
	return HashStringSeed(fnvOffset64, s)
}

// HashStringSeed folds s into an FNV-1a hash state h, so multi-field keys
// can chain fields (with a separator byte mixed in between) without
// allocating a combined string.
func HashStringSeed(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// MixSeparator folds a field separator into the hash state so that
// boundary-shifted field pairs ("ab","c" vs "a","bc") hash differently.
func MixSeparator(h uint64) uint64 {
	return (h ^ 0xff) * fnvPrime64
}
