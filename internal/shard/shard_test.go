package shard

import "testing"

func TestNormalize(t *testing.T) {
	cases := map[int]int{-1: DefaultShards, 0: DefaultShards, 1: 1, 2: 2, 3: 4, 5: 8, 16: 16, 33: 64}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Fatalf("Normalize(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPerShardCap(t *testing.T) {
	cases := []struct{ max, shards, want int }{
		{64, 32, 2}, {65, 32, 3}, {5, 32, 1}, {0, 32, 1}, {10, 1, 10},
	}
	for _, c := range cases {
		if got := PerShardCap(c.max, c.shards); got != c.want {
			t.Fatalf("PerShardCap(%d, %d) = %d, want %d", c.max, c.shards, got, c.want)
		}
	}
}

func TestHashSeparator(t *testing.T) {
	a := HashStringSeed(MixSeparator(HashString("ab")), "c")
	b := HashStringSeed(MixSeparator(HashString("a")), "bc")
	if a == b {
		t.Fatal("boundary-shifted field pairs hash identically")
	}
	if HashString("x") == HashString("y") {
		t.Fatal("distinct strings hash identically")
	}
}
