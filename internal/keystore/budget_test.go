package keystore

import (
	"testing"
	"unsafe"
)

// TestKeystoreStructBudgets pins the packed record layout from ISSUE 9: one
// outstanding key costs a 16-byte record (interned page handle + coarse
// expiry tick + kind/consumed flags) and one tracked client stays within a
// cache-line-and-a-half. A failure means a field was added without
// re-deriving the budget.
func TestKeystoreStructBudgets(t *testing.T) {
	if got := unsafe.Sizeof(keyRecord{}); got != 16 {
		t.Errorf("keyRecord = %d bytes, want exactly 16 (handle 8 + tick 4 + flags 1 + pad)", got)
	}
	if got := unsafe.Sizeof(clientState{}); got > 104 {
		t.Errorf("clientState = %d bytes, exceeds the 104-byte budget", got)
	}

	if keyRecordBytes != int64(unsafe.Sizeof(keyRecord{})) {
		t.Errorf("keyRecordBytes = %d, want unsafe.Sizeof(keyRecord{}) = %d",
			keyRecordBytes, unsafe.Sizeof(keyRecord{}))
	}
	if keyEntryBytes != keyRecordBytes+keyOverheadBytes {
		t.Errorf("keyEntryBytes = %d, want record (%d) + overhead (%d)",
			keyEntryBytes, keyRecordBytes, keyOverheadBytes)
	}
	if clientBaseBytes != clientStructBytes+clientOverheadBytes {
		t.Errorf("clientBaseBytes = %d, want struct (%d) + overhead (%d)",
			clientBaseBytes, clientStructBytes, clientOverheadBytes)
	}
}
