package keystore

import (
	"fmt"
	"testing"
	"time"

	"botdetect/internal/clock"
)

// TestIssueNMatchesSequentialIssue pins the batch path to the sequential
// one: same seed, same pages, same client must draw identical keys and
// tokens whether issued one at a time or in one IssueN batch.
func TestIssueNMatchesSequentialIssue(t *testing.T) {
	pages := []string{"/", "/a.html", "/b.html", "/c.html"}
	one := New(Config{Seed: 5, Decoys: 3})
	var seq []Issued
	for _, p := range pages {
		seq = append(seq, one.Issue("10.0.0.1", p))
	}
	batchStore := New(Config{Seed: 5, Decoys: 3})
	batch := batchStore.IssueN("10.0.0.1", pages, nil)

	if len(batch) != len(seq) {
		t.Fatalf("IssueN returned %d issues, want %d", len(batch), len(seq))
	}
	for i := range seq {
		if batch[i].Key != seq[i].Key ||
			batch[i].CSSToken != seq[i].CSSToken ||
			batch[i].ScriptToken != seq[i].ScriptToken ||
			batch[i].HiddenToken != seq[i].HiddenToken ||
			batch[i].Page != seq[i].Page {
			t.Fatalf("issue %d differs between batch and sequential paths:\n%+v\n%+v", i, batch[i], seq[i])
		}
		for j := range seq[i].Decoys {
			if batch[i].Decoys[j] != seq[i].Decoys[j] {
				t.Fatalf("issue %d decoy %d differs", i, j)
			}
		}
	}
	if got := batchStore.Stats().Issued; got != int64(len(pages)) {
		t.Fatalf("batch Issued stat = %d, want %d", got, len(pages))
	}
}

func TestIssueNValidatesAndBounds(t *testing.T) {
	s := New(Config{Decoys: 2, MaxPerClient: 8})
	pages := make([]string, 20)
	for i := range pages {
		pages[i] = fmt.Sprintf("/p%d.html", i)
	}
	out := s.IssueN("10.0.0.2", pages, nil)
	if len(out) != len(pages) {
		t.Fatalf("len(out) = %d", len(out))
	}
	// The per-client bound applies to the whole batch.
	if n := s.OutstandingKeys("10.0.0.2"); n > 8*(1+2) {
		t.Fatalf("outstanding keys = %d, want <= %d", n, 8*3)
	}
	// The newest issues survive and validate.
	last := out[len(out)-1]
	if v := s.Validate("10.0.0.2", last.Key); v != Human {
		t.Fatalf("latest real key = %v, want Human", v)
	}
	if v := s.Validate("10.0.0.2", last.Decoys[0]); v != Decoy {
		t.Fatalf("latest decoy = %v, want Decoy", v)
	}
	if s.IssueN("10.0.0.2", nil, nil) != nil {
		t.Fatal("empty batch must return out unchanged")
	}
}

// TestClientStateRecycling hammers the eviction path so evicted client
// states flow through the shard free list and get reused; recycled states
// must behave exactly like fresh ones.
func TestClientStateRecycling(t *testing.T) {
	s := New(Config{Decoys: 2, MaxClients: 4, Shards: 1})
	for round := 0; round < 6; round++ {
		for i := 0; i < 8; i++ {
			ip := fmt.Sprintf("10.1.%d.%d", round, i)
			iss := s.Issue(ip, "/x.html")
			if v := s.Validate(ip, iss.Key); v != Human {
				t.Fatalf("round %d client %d: verdict %v", round, i, v)
			}
			// A stale key from an evicted-and-recycled state must not leak
			// into the new occupant.
			if v := s.Validate(ip, "0000000000"); v == Human || v == Decoy {
				t.Fatalf("recycled state leaked a key: %v", v)
			}
		}
		if c := s.Clients(); c > 4 {
			t.Fatalf("clients = %d, want <= 4", c)
		}
	}
	if ev := s.Stats().EvictedClients; ev == 0 {
		t.Fatal("expected evictions to exercise the free list")
	}
}

// TestExpirySkipStaysCorrect drives the oldest-key fast path across TTL
// boundaries with a fake clock: keys must still expire exactly, and the
// skip must never mask an expiry.
func TestExpirySkipStaysCorrect(t *testing.T) {
	fc := clock.NewVirtual(time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC))
	s := New(Config{Decoys: 1, TTL: 10 * time.Minute, Clock: fc, Shards: 1})

	first := s.Issue("10.2.0.1", "/a.html")
	fc.Advance(9 * time.Minute)
	second := s.Issue("10.2.0.1", "/b.html") // skip path: nothing expired yet
	if n := s.OutstandingKeys("10.2.0.1"); n != 4 {
		t.Fatalf("outstanding = %d, want 4", n)
	}
	fc.Advance(2 * time.Minute) // first batch now expired, second alive
	third := s.Issue("10.2.0.1", "/c.html")
	_ = third
	if v := s.Validate("10.2.0.1", first.Key); v != Unknown {
		t.Fatalf("expired key = %v, want Unknown", v)
	}
	if v := s.Validate("10.2.0.1", second.Key); v != Human {
		t.Fatalf("live key = %v, want Human", v)
	}
	// After the scan the bound is exact: another TTL-1 of quiet issuing
	// must keep the remaining keys alive.
	fc.Advance(9 * time.Minute)
	if v := s.Validate("10.2.0.1", third.Key); v != Human {
		t.Fatalf("third key = %v, want Human", v)
	}
}

// TestIssueAllocCeiling pins the allocation budget of the hot-path Issue:
// the key and token strings it must hand out, the decoy slice, and nothing
// else at steady state (records are map values, client states are recycled,
// candidate draws use a stack buffer).
func TestIssueAllocCeiling(t *testing.T) {
	s := New(Config{Decoys: 4, KeyDigits: 10})
	// Warm the client so map growth settles at the per-client cap.
	for i := 0; i < 200; i++ {
		s.Issue("10.3.0.1", "/warm.html")
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Issue("10.3.0.1", "/hot.html")
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	// 5 key strings + 3 token strings + 1 decoy slice = 9 unavoidable
	// allocations; allow slack for map-internal churn.
	const ceiling = 14
	if allocs > ceiling {
		t.Fatalf("Issue allocated %.1f/op, ceiling %d", allocs, ceiling)
	}
}

// TestIssuePageZeroAlloc pins the numeric issue path at zero allocations
// per page at steady state: keys are drawn straight into the caller-owned
// PageKeys, records are map values, the eviction queue and decoy arena are
// compacted in place, and client states are recycled.
func TestIssuePageZeroAlloc(t *testing.T) {
	s := New(Config{Decoys: 4, KeyDigits: 10})
	var pk PageKeys
	// Warm until the per-client cap (64 batches) cycles and every backing
	// array has reached its steady-state capacity.
	for i := 0; i < 300; i++ {
		s.IssuePage("10.4.0.1", "/warm.html", &pk)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.IssuePage("10.4.0.1", "/hot.html", &pk)
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	if allocs != 0 {
		t.Fatalf("IssuePage allocated %.1f/op, want 0", allocs)
	}
}

// TestIssuePageMatchesIssue pins the string wrappers to the numeric path:
// same seed, same sequence, Issue must format exactly the digits IssuePage
// draws.
func TestIssuePageMatchesIssue(t *testing.T) {
	a := New(Config{Seed: 9, Decoys: 3, KeyDigits: 12})
	b := New(Config{Seed: 9, Decoys: 3, KeyDigits: 12})
	var pk PageKeys
	for i := 0; i < 10; i++ {
		iss := a.Issue("10.5.0.1", "/p.html")
		b.IssuePage("10.5.0.1", "/p.html", &pk)
		got := pk.Issued()
		if got.Key != iss.Key || got.CSSToken != iss.CSSToken ||
			got.ScriptToken != iss.ScriptToken || got.HiddenToken != iss.HiddenToken {
			t.Fatalf("issue %d: numeric path differs from string path:\n%+v\n%+v", i, got, iss)
		}
		for j := range iss.Decoys {
			if got.Decoys[j] != iss.Decoys[j] {
				t.Fatalf("issue %d decoy %d differs: %q vs %q", i, j, got.Decoys[j], iss.Decoys[j])
			}
		}
		if len(iss.Key) != 12 {
			t.Fatalf("key %q not 12 digits", iss.Key)
		}
		// Both stores must agree on validation, including leading zeros.
		if va, vb := a.Validate("10.5.0.1", iss.Key), b.Validate("10.5.0.1", iss.Key); va != Human || vb != Human {
			t.Fatalf("issue %d: verdicts %v/%v, want Human", i, va, vb)
		}
	}
	// Wrong-width keys never validate, so "007" and "7" cannot collide.
	if v := a.Validate("10.5.0.1", "7"); v != Unknown {
		t.Fatalf("short key = %v, want Unknown", v)
	}
}
