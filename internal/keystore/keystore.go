// Package keystore implements the server-side table of per-client random
// keys that backs human activity detection (Section 2.1 of the paper).
//
// When the proxy rewrites page foo.html for a client, it asks the store to
// issue a fresh random key k together with m decoy keys. The real key is
// embedded in the mouse/keyboard event handler's beacon URL; the decoys are
// embedded in obfuscation functions that a human's browser never calls. When
// a beacon request arrives, the store validates the carried key:
//
//   - a matching, unconsumed real key proves an input event (human),
//   - a decoy key identifies a robot that blindly fetched embedded URLs,
//   - an unknown key is a replay or a guess.
//
// Keys expire after a TTL and the table is capped per client and globally so
// a flood of page fetches cannot exhaust proxy memory.
//
// The table is sharded by an FNV-1a hash of the client IP: each shard has
// its own mutex, client map, LRU list and key-generation stream, so issuing
// and validating keys for different clients proceeds in parallel. Counters
// are atomic and never serialise the hot path.
package keystore

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/rng"
	"botdetect/internal/shard"
)

// Verdict is the result of validating a beacon key.
type Verdict int

const (
	// Unknown means the key was never issued (guess, replay of an expired
	// key, or corruption).
	Unknown Verdict = iota
	// Human means the key is a real key issued to this client and not yet
	// consumed: the client executed the event handler.
	Human
	// Decoy means the key is one of the decoy keys: the client fetched
	// beacon URLs blindly without executing the script.
	Decoy
	// Replayed means the real key was already consumed once before.
	Replayed
)

// String returns a short name for the verdict.
func (v Verdict) String() string {
	switch v {
	case Human:
		return "human"
	case Decoy:
		return "decoy"
	case Replayed:
		return "replayed"
	default:
		return "unknown"
	}
}

// Issued is the set of keys generated for one rewritten page.
type Issued struct {
	// Page is the page path the keys were issued for.
	Page string
	// Key is the real key carried by the genuine event-handler beacon.
	Key string
	// Decoys are the m decoy keys embedded in obfuscation functions.
	Decoys []string
	// CSSToken names the uniquely generated empty stylesheet for the page.
	CSSToken string
	// ScriptToken names the uniquely generated external JavaScript file.
	ScriptToken string
	// HiddenToken names the hidden (invisible) trap link target.
	HiddenToken string
	// IssuedAt is when the keys were generated.
	IssuedAt time.Time
}

// Config controls Store behaviour.
type Config struct {
	// Decoys is the number of decoy keys per page (m in the paper). A blind
	// fetcher is caught with probability Decoys/(Decoys+1).
	Decoys int
	// KeyDigits is the length of each key in decimal digits (the paper's
	// example beacons carry 10-digit numbers; 30 digits ≈ the 2^128 space).
	KeyDigits int
	// TTL is how long issued keys stay valid.
	TTL time.Duration
	// MaxPerClient caps outstanding issues per client IP.
	MaxPerClient int
	// MaxClients caps the number of distinct client IPs tracked. The bound
	// is distributed over the shards as ceil(MaxClients/Shards) per shard
	// (at least 1), so the effective cap is MaxClients rounded up to a
	// multiple of the shard count. Use Shards: 1 for an exact bound.
	MaxClients int
	// Shards is the number of independently locked shards, rounded up to a
	// power of two (default shard.DefaultShards). Use 1 for strict global
	// LRU client eviction at the cost of write concurrency.
	Shards int
	// Seed drives key generation.
	Seed uint64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Decoys <= 0 {
		c.Decoys = 4
	}
	if c.KeyDigits <= 0 {
		c.KeyDigits = 10
	}
	if c.TTL <= 0 {
		c.TTL = time.Hour
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 64
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 100000
	}
	c.Shards = shard.Normalize(c.Shards)
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

type keyKind int8

const (
	kindReal keyKind = iota
	kindDecoy
)

type keyRecord struct {
	kind     keyKind
	page     string
	issuedAt time.Time
	consumed bool
}

type clientState struct {
	ip      string
	keys    map[string]*keyRecord // key string -> record
	queue   []string              // issue order of real keys, for per-client eviction
	element *list.Element         // position in the shard's LRU list
}

// Stats are cumulative counters exposed for monitoring and experiments.
type Stats struct {
	Issued         int64
	HumanHits      int64
	DecoyHits      int64
	ReplayHits     int64
	UnknownHits    int64
	ExpiredDropped int64
	EvictedClients int64
}

// storeStats is the internal atomic mirror of Stats.
type storeStats struct {
	issued         atomic.Int64
	humanHits      atomic.Int64
	decoyHits      atomic.Int64
	replayHits     atomic.Int64
	unknownHits    atomic.Int64
	expiredDropped atomic.Int64
	evictedClients atomic.Int64
}

// storeShard is one independently locked partition of the key table.
type storeShard struct {
	mu      sync.Mutex
	src     *rng.Source
	clients map[string]*clientState
	lru     *list.List // front = most recently used clientState
	max     int        // per-shard client cap
}

// Store is the key table. It is safe for concurrent use.
type Store struct {
	cfg    Config
	shards []*storeShard
	mask   uint64
	stats  storeStats
}

// New creates a Store with the given configuration.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, mask: uint64(cfg.Shards - 1)}
	base := rng.New(cfg.Seed).Fork("keystore")
	perShard := shard.PerShardCap(cfg.MaxClients, cfg.Shards)
	s.shards = make([]*storeShard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &storeShard{
			src:     base.Fork(fmt.Sprintf("shard-%d", i)),
			clients: make(map[string]*clientState),
			lru:     list.New(),
			max:     perShard,
		}
	}
	return s
}

// ShardCount returns the number of shards (a power of two).
func (s *Store) ShardCount() int { return len(s.shards) }

func (s *Store) shard(ip string) *storeShard {
	return s.shards[shard.HashString(ip)&s.mask]
}

// Issue generates a real key, decoys and the per-page object tokens for the
// given client and page, recording the real key and decoys for later
// validation. Only the client's shard is locked.
func (s *Store) Issue(clientIP, page string) Issued {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	now := s.cfg.Clock.Now()
	cs := sh.client(clientIP)
	sh.lru.MoveToFront(cs.element)
	s.expireClientLocked(cs, now)

	iss := Issued{
		Page:        page,
		Key:         s.uniqueKeyLocked(sh, cs),
		CSSToken:    sh.src.DigitKey(s.cfg.KeyDigits),
		ScriptToken: sh.src.DigitKey(s.cfg.KeyDigits),
		HiddenToken: sh.src.DigitKey(s.cfg.KeyDigits),
		IssuedAt:    now,
	}
	cs.keys[iss.Key] = &keyRecord{kind: kindReal, page: page, issuedAt: now}
	cs.queue = append(cs.queue, iss.Key)
	for i := 0; i < s.cfg.Decoys; i++ {
		d := s.uniqueKeyLocked(sh, cs)
		iss.Decoys = append(iss.Decoys, d)
		cs.keys[d] = &keyRecord{kind: kindDecoy, page: page, issuedAt: now}
	}
	s.stats.issued.Add(1)

	s.enforcePerClientLocked(cs)
	s.enforceClientCapLocked(sh)
	return iss
}

// uniqueKeyLocked draws a key not already present for the client.
func (s *Store) uniqueKeyLocked(sh *storeShard, cs *clientState) string {
	for {
		k := sh.src.DigitKey(s.cfg.KeyDigits)
		if _, exists := cs.keys[k]; !exists {
			return k
		}
	}
}

func (sh *storeShard) client(ip string) *clientState {
	cs, ok := sh.clients[ip]
	if !ok {
		cs = &clientState{ip: ip, keys: make(map[string]*keyRecord)}
		cs.element = sh.lru.PushFront(cs)
		sh.clients[ip] = cs
	}
	return cs
}

// expireClientLocked drops keys older than the TTL for one client.
func (s *Store) expireClientLocked(cs *clientState, now time.Time) {
	for k, rec := range cs.keys {
		if now.Sub(rec.issuedAt) > s.cfg.TTL {
			delete(cs.keys, k)
			s.stats.expiredDropped.Add(1)
		}
	}
	// Compact the real-key queue lazily.
	if len(cs.queue) > 0 {
		keep := cs.queue[:0]
		for _, k := range cs.queue {
			if _, ok := cs.keys[k]; ok {
				keep = append(keep, k)
			}
		}
		cs.queue = keep
	}
}

// enforcePerClientLocked bounds the number of outstanding real keys for one
// client by discarding the oldest issues (and their decoys become unknowns
// once their records are eventually expired by TTL; we drop them eagerly by
// page match to bound memory precisely).
func (s *Store) enforcePerClientLocked(cs *clientState) {
	for len(cs.queue) > s.cfg.MaxPerClient {
		oldest := cs.queue[0]
		cs.queue = cs.queue[1:]
		rec, ok := cs.keys[oldest]
		if !ok {
			continue
		}
		page := rec.page
		issuedAt := rec.issuedAt
		delete(cs.keys, oldest)
		// Drop decoys issued alongside the evicted real key.
		for k, r := range cs.keys {
			if r.kind == kindDecoy && r.page == page && r.issuedAt.Equal(issuedAt) {
				delete(cs.keys, k)
			}
		}
	}
}

// enforceClientCapLocked bounds the number of distinct clients in the shard.
func (s *Store) enforceClientCapLocked(sh *storeShard) {
	for len(sh.clients) > sh.max {
		back := sh.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*clientState)
		sh.lru.Remove(back)
		delete(sh.clients, victim.ip)
		s.stats.evictedClients.Add(1)
	}
}

// Validate checks a beacon key presented by the given client. Real keys are
// consumed on first use so replays are detected. Only the client's shard is
// locked.
func (s *Store) Validate(clientIP, key string) Verdict {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	cs, ok := sh.clients[clientIP]
	if !ok {
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	sh.lru.MoveToFront(cs.element)
	now := s.cfg.Clock.Now()
	rec, ok := cs.keys[key]
	if !ok {
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	if now.Sub(rec.issuedAt) > s.cfg.TTL {
		delete(cs.keys, key)
		s.stats.expiredDropped.Add(1)
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	switch rec.kind {
	case kindDecoy:
		s.stats.decoyHits.Add(1)
		return Decoy
	default:
		if rec.consumed {
			s.stats.replayHits.Add(1)
			return Replayed
		}
		rec.consumed = true
		s.stats.humanHits.Add(1)
		return Human
	}
}

// OutstandingKeys returns the number of unexpired keys currently stored for
// the client (real plus decoys). It is primarily for tests and monitoring.
func (s *Store) OutstandingKeys(clientIP string) int {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs, ok := sh.clients[clientIP]
	if !ok {
		return 0
	}
	return len(cs.keys)
}

// Clients returns the number of distinct client IPs currently tracked,
// summed shard by shard (no global lock).
func (s *Store) Clients() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.clients)
		sh.mu.Unlock()
	}
	return total
}

// Stats returns a copy of the cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Issued:         s.stats.issued.Load(),
		HumanHits:      s.stats.humanHits.Load(),
		DecoyHits:      s.stats.decoyHits.Load(),
		ReplayHits:     s.stats.replayHits.Load(),
		UnknownHits:    s.stats.unknownHits.Load(),
		ExpiredDropped: s.stats.expiredDropped.Load(),
		EvictedClients: s.stats.evictedClients.Load(),
	}
}

// Decoys returns the configured number of decoy keys per page.
func (s *Store) Decoys() int { return s.cfg.Decoys }
