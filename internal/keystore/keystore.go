// Package keystore implements the server-side table of per-client random
// keys that backs human activity detection (Section 2.1 of the paper).
//
// When the proxy rewrites page foo.html for a client, it asks the store to
// issue a fresh random key k together with m decoy keys. The real key is
// embedded in the mouse/keyboard event handler's beacon URL; the decoys are
// embedded in obfuscation functions that a human's browser never calls. When
// a beacon request arrives, the store validates the carried key:
//
//   - a matching, unconsumed real key proves an input event (human),
//   - a decoy key identifies a robot that blindly fetched embedded URLs,
//   - an unknown key is a replay or a guess.
//
// Keys expire after a TTL and the table is capped per client and globally so
// a flood of page fetches cannot exhaust proxy memory.
//
// The table is sharded by an FNV-1a hash of the client IP: each shard has
// its own mutex, client map, LRU list and key-generation stream, so issuing
// and validating keys for different clients proceeds in parallel. Counters
// are atomic and never serialise the hot path.
//
// Keys are decimal digit strings on the wire but uint64 values internally:
// a key of up to MaxKeyDigits digits packs into one machine word, so the
// per-client table is a map[uint64]keyRecord with no string storage at all,
// and IssuePage fills a caller-owned PageKeys without allocating. The
// eviction queue keeps each page's decoys in a per-client flat arena
// (compacted in place, never reallocated at steady state). Issue/IssueN
// remain as string-typed wrappers that format the same draws, byte for
// byte, for callers that want materialised keys.
package keystore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"botdetect/internal/clock"
	"botdetect/internal/intern"
	"botdetect/internal/rng"
	"botdetect/internal/shard"
)

// Verdict is the result of validating a beacon key.
type Verdict int

const (
	// Unknown means the key was never issued (guess, replay of an expired
	// key, or corruption).
	Unknown Verdict = iota
	// Human means the key is a real key issued to this client and not yet
	// consumed: the client executed the event handler.
	Human
	// Decoy means the key is one of the decoy keys: the client fetched
	// beacon URLs blindly without executing the script.
	Decoy
	// Replayed means the real key was already consumed once before.
	Replayed
)

// String returns a short name for the verdict.
func (v Verdict) String() string {
	switch v {
	case Human:
		return "human"
	case Decoy:
		return "decoy"
	case Replayed:
		return "replayed"
	default:
		return "unknown"
	}
}

// MaxKeyDigits is the largest supported key width: 19 decimal digits still
// fit a uint64 (10^19-1 < 2^64), which is what lets the store hold keys as
// machine words instead of strings. Configurations asking for more are
// clamped; the ~2^63 space is far beyond guessable either way.
const MaxKeyDigits = 19

// Issued is the set of keys generated for one rewritten page, materialised
// as strings. It is the compatibility surface over PageKeys: Issue and
// IssueN format the exact digit sequences the numeric path draws.
type Issued struct {
	// Page is the page path the keys were issued for.
	Page string
	// Key is the real key carried by the genuine event-handler beacon.
	Key string
	// Decoys are the m decoy keys embedded in obfuscation functions.
	Decoys []string
	// CSSToken names the uniquely generated empty stylesheet for the page.
	CSSToken string
	// ScriptToken names the uniquely generated external JavaScript file.
	ScriptToken string
	// HiddenToken names the hidden (invisible) trap link target.
	HiddenToken string
	// IssuedAt is when the keys were generated.
	IssuedAt time.Time
}

// PageKeys is the allocation-free form of one page view's issued keys: the
// real key, the per-page object tokens and the decoys as fixed-width digit
// values. A caller that reuses one PageKeys per connection issues keys with
// zero allocations at steady state (the Decoys slice is recycled in place).
type PageKeys struct {
	// Page is the page path the keys were issued for.
	Page string
	// Key is the real key's digit value.
	Key uint64
	// CSSToken, ScriptToken and HiddenToken name the per-page objects.
	CSSToken    uint64
	ScriptToken uint64
	HiddenToken uint64
	// Decoys are the decoy key values; the slice is owned by the PageKeys
	// and overwritten by the next IssuePage into it.
	Decoys []uint64
	// Digits is the fixed key width in decimal digits (leading zeros are
	// significant on the wire).
	Digits int
	// IssuedAt is when the keys were generated.
	IssuedAt time.Time
}

// AppendKey appends v in the page's fixed-width digit format.
func (pk *PageKeys) AppendKey(dst []byte, v uint64) []byte {
	return rng.AppendFixedDigits(dst, v, pk.Digits)
}

// KeyString formats v in the page's fixed-width digit format. The digit
// loop runs on a stack buffer so the only allocation is the string itself.
func (pk *PageKeys) KeyString(v uint64) string {
	var buf [MaxKeyDigits]byte
	n := pk.Digits
	for i := n - 1; i >= 0; i-- {
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[:n])
}

// Issued materialises the page keys as strings, formatting exactly the
// digit sequences the store drew.
func (pk *PageKeys) Issued() Issued {
	iss := Issued{
		Page:        pk.Page,
		Key:         pk.KeyString(pk.Key),
		CSSToken:    pk.KeyString(pk.CSSToken),
		ScriptToken: pk.KeyString(pk.ScriptToken),
		HiddenToken: pk.KeyString(pk.HiddenToken),
		IssuedAt:    pk.IssuedAt,
		Decoys:      make([]string, len(pk.Decoys)),
	}
	for i, d := range pk.Decoys {
		iss.Decoys[i] = pk.KeyString(d)
	}
	return iss
}

// Config controls Store behaviour.
type Config struct {
	// Decoys is the number of decoy keys per page (m in the paper). A blind
	// fetcher is caught with probability Decoys/(Decoys+1).
	Decoys int
	// KeyDigits is the length of each key in decimal digits (the paper's
	// example beacons carry 10-digit numbers). Values above MaxKeyDigits
	// (19, the uint64 limit) are clamped.
	KeyDigits int
	// TTL is how long issued keys stay valid.
	TTL time.Duration
	// MaxPerClient caps outstanding issues per client IP.
	MaxPerClient int
	// MaxClients caps the number of distinct client IPs tracked. The bound
	// is distributed over the shards as ceil(MaxClients/Shards) per shard
	// (at least 1), so the effective cap is MaxClients rounded up to a
	// multiple of the shard count. Use Shards: 1 for an exact bound.
	MaxClients int
	// Shards is the number of independently locked shards, rounded up to a
	// power of two (default shard.DefaultShards). Use 1 for strict global
	// LRU client eviction at the cost of write concurrency.
	Shards int
	// Seed drives key generation.
	Seed uint64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
	// Interner, when non-nil, is the shared string table page paths are
	// interned into (the engine passes one interner to the tracker and the
	// keystore). When nil the store creates a private one. Interned bytes
	// are accounted by the interner's own MemoryEstimate, not the store's.
	Interner *intern.Interner
}

func (c Config) withDefaults() Config {
	if c.Decoys <= 0 {
		c.Decoys = 4
	}
	if c.KeyDigits <= 0 {
		c.KeyDigits = 10
	}
	if c.KeyDigits > MaxKeyDigits {
		c.KeyDigits = MaxKeyDigits
	}
	if c.TTL <= 0 {
		c.TTL = time.Hour
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 64
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 100000
	}
	c.Shards = shard.Normalize(c.Shards)
	if c.Clock == nil {
		c.Clock = clock.System
	}
	if c.Interner == nil {
		c.Interner = intern.New(8)
	}
	return c
}

// keyRecord flag bits.
const (
	flagDecoy    uint8 = 1 << 0
	flagConsumed uint8 = 1 << 1
)

// keyRecord is stored by value in the client's key map, so issuing a page's
// keys boxes nothing on the heap. It packs to 16 bytes: the page is an
// interned handle (real traffic concentrates on a small path set, so a
// million outstanding keys share a few hundred canonical strings), the issue
// time is a coarse tick (uint32, unit ≈ TTL/65536 — quantisation is ~0.003%
// of the TTL) and kind/consumed are flag bits.
type keyRecord struct {
	page  intern.Handle // interned page path (0 = empty page)
	tick  uint32        // coarse issue time; see Store.tick
	flags uint8         // flagDecoy | flagConsumed
}

// tickResolution is the number of coarse ticks per TTL (so a tick unit is
// TTL/65536, floored at 1ns). The uint32 tick space then covers 65536 TTLs
// (~7.5 years at the default 1-hour TTL) before saturating.
const tickResolution = 1 << 16

// issueBatch records one page view's real key and where its decoys live in
// the client's decoy arena. Keeping the association explicit makes
// per-client eviction O(m) instead of a scan over every outstanding key.
type issueBatch struct {
	key uint64
	off int32 // offset into clientState.decoys
	n   int32 // decoy count
}

// clientState is the per-client key table. States are linked into their
// shard's intrusive LRU list and recycled through the shard free list on
// eviction. The queue and decoy arena are compacted in place (copy-down)
// when batches are dropped, so a stable working set reaches a steady state
// where IssuePage allocates nothing at all.
type clientState struct {
	ip     string
	keys   map[uint64]keyRecord // key value -> record
	queue  []issueBatch         // issue order, for per-client eviction
	decoys []uint64             // flat arena backing queue[i]'s decoy runs
	// oldestTick is a lower bound on the issue tick of every live key:
	// expiry scans are skipped entirely while now-oldest <= TTL, because no
	// key can have expired yet. It is exact after the first issue and after
	// every scan (the scan re-derives the minimum over the survivors).
	oldestTick uint32

	prev, next *clientState // intrusive LRU: prev = towards front (most recent)
}

// Stats are cumulative counters exposed for monitoring and experiments.
type Stats struct {
	Issued         int64
	HumanHits      int64
	DecoyHits      int64
	ReplayHits     int64
	UnknownHits    int64
	ExpiredDropped int64
	EvictedClients int64
}

// storeStats is the internal atomic mirror of Stats.
type storeStats struct {
	issued         atomic.Int64
	humanHits      atomic.Int64
	decoyHits      atomic.Int64
	replayHits     atomic.Int64
	unknownHits    atomic.Int64
	expiredDropped atomic.Int64
	evictedClients atomic.Int64
}

// storeShard is one independently locked partition of the key table.
type storeShard struct {
	mu      sync.Mutex
	src     *rng.Source
	clients map[string]*clientState
	head    *clientState // most recently used
	tail    *clientState // least recently used
	free    *clientState // recycled states, singly linked via next
	count   int          // live clients (== len(clients))
	max     int          // per-shard client cap
}

// Per-entry memory costs backing Store.MemoryEstimate, derived from the
// actual struct layouts via unsafe.Sizeof so they cannot silently rot when
// fields change (TestKeystoreStructBudgets pins the layouts). The hand-tuned
// overhead components round up on purpose: the estimate feeds admission
// control (see core.LoadState), where an overestimate degrades service early
// and an underestimate OOMs.
const (
	// keyRecordBytes is the exact packed record size (16 B).
	keyRecordBytes = int64(unsafe.Sizeof(keyRecord{}))
	// keyOverheadBytes covers the record's map-bucket share (8 B key + load
	// factor) plus its share of the issue queue and decoy arena.
	keyOverheadBytes = 32
	// keyEntryBytes is the total cost charged per outstanding key.
	keyEntryBytes = keyRecordBytes + keyOverheadBytes
	// clientStructBytes is the exact clientState size.
	clientStructBytes = int64(unsafe.Sizeof(clientState{}))
	// clientOverheadBytes covers the shard map entry, the IP string and the
	// key-map header; queue/arena capacity is charged per key above.
	clientOverheadBytes = 128
	// clientBaseBytes is the total cost charged per tracked client.
	clientBaseBytes = clientStructBytes + clientOverheadBytes
)

// Store is the key table. It is safe for concurrent use.
type Store struct {
	cfg      Config
	shards   []*storeShard
	mask     uint64
	stats    storeStats
	interner *intern.Interner

	// Coarse-tick time base (see Store.tick): epoch is set at construction
	// far enough in the past that backdated (degraded) issues never go
	// negative, tickUnit is TTL/tickResolution floored at 1ns, and ttlTicks
	// is the TTL in ticks rounded up, so quantisation can only ever lengthen
	// a key's life (by < 2 ticks ≈ TTL/32768), never expire it early.
	epoch    time.Time
	tickUnit time.Duration
	ttlTicks uint32

	// liveClients/liveKeys mirror the locked per-shard state so occupancy
	// and memory estimates are lock-free reads on the serve path.
	liveClients atomic.Int64
	liveKeys    atomic.Int64
}

// New creates a Store with the given configuration.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{cfg: cfg, mask: uint64(cfg.Shards - 1), interner: cfg.Interner}
	s.tickUnit = cfg.TTL / tickResolution
	if s.tickUnit <= 0 {
		s.tickUnit = 1
	}
	s.ttlTicks = uint32((cfg.TTL + s.tickUnit - 1) / s.tickUnit)
	s.epoch = cfg.Clock.Now().Add(-cfg.TTL - 4*s.tickUnit)
	base := rng.New(cfg.Seed).Fork("keystore")
	perShard := shard.PerShardCap(cfg.MaxClients, cfg.Shards)
	s.shards = make([]*storeShard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &storeShard{
			src:     base.Fork(fmt.Sprintf("shard-%d", i)),
			clients: make(map[string]*clientState),
			max:     perShard,
		}
	}
	return s
}

// ShardCount returns the number of shards (a power of two).
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardClients returns the number of client states currently held by shard
// i, for per-shard telemetry gauges. It locks only that shard.
func (s *Store) ShardClients(i int) int {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.count
}

func (s *Store) shard(ip string) *storeShard {
	return s.shards[shard.HashString(ip)&s.mask]
}

// tick converts a wall time to the store's coarse tick scale. Times before
// the epoch clamp to 0 and the scale saturates at the uint32 ceiling; both
// only lengthen apparent key life, never shorten it.
func (s *Store) tick(t time.Time) uint32 {
	d := t.Sub(s.epoch)
	if d < 0 {
		return 0
	}
	n := int64(d) / int64(s.tickUnit)
	if n > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(n)
}

// expired reports whether a key issued at recTick is past the TTL at nowTick.
func (s *Store) expired(nowTick, recTick uint32) bool {
	return int64(nowTick)-int64(recTick) > int64(s.ttlTicks)
}

// --- intrusive LRU -----------------------------------------------------------

func (sh *storeShard) pushFront(cs *clientState) {
	cs.prev = nil
	cs.next = sh.head
	if sh.head != nil {
		sh.head.prev = cs
	}
	sh.head = cs
	if sh.tail == nil {
		sh.tail = cs
	}
}

func (sh *storeShard) unlink(cs *clientState) {
	if cs.prev != nil {
		cs.prev.next = cs.next
	} else {
		sh.head = cs.next
	}
	if cs.next != nil {
		cs.next.prev = cs.prev
	} else {
		sh.tail = cs.prev
	}
	cs.prev, cs.next = nil, nil
}

func (sh *storeShard) moveToFront(cs *clientState) {
	if sh.head == cs {
		return
	}
	sh.unlink(cs)
	sh.pushFront(cs)
}

// client returns the state for ip, creating (or recycling) one as needed.
func (sh *storeShard) client(ip string) *clientState {
	cs, ok := sh.clients[ip]
	if !ok {
		if cs = sh.free; cs != nil {
			sh.free = cs.next
			cs.next = nil
		} else {
			cs = &clientState{keys: make(map[uint64]keyRecord)}
		}
		cs.ip = ip
		sh.pushFront(cs)
		sh.clients[ip] = cs
		sh.count++
	}
	return cs
}

// clientLocked returns (creating if needed) the state for ip on sh,
// mirroring creations into the lock-free liveClients counter.
func (s *Store) clientLocked(sh *storeShard, ip string) *clientState {
	before := sh.count
	cs := sh.client(ip)
	if sh.count != before {
		s.liveClients.Add(1)
	}
	return cs
}

// release recycles an evicted state: the key map, queue and decoy arena keep
// their capacity so the next client on this shard issues without rebuilding
// them.
func (sh *storeShard) release(cs *clientState) {
	clear(cs.keys)
	cs.queue = cs.queue[:0]
	cs.decoys = cs.decoys[:0]
	cs.ip = ""
	cs.prev = nil
	cs.next = sh.free
	sh.free = cs
}

// IssuePage generates a real key, decoys and the per-page object tokens for
// the given client and page, filling the caller-owned pk in place. The
// draws land directly in pk's reusable storage, so a caller that keeps one
// PageKeys per connection issues with zero allocations at steady state.
// Only the client's shard is locked.
func (s *Store) IssuePage(clientIP, page string, pk *PageKeys) {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	now := s.cfg.Clock.Now()
	nowTick := s.tick(now)
	cs := s.clientLocked(sh, clientIP)
	sh.moveToFront(cs)
	s.expireClientLocked(cs, nowTick)
	s.issuePageLocked(sh, cs, page, now, nowTick, s.cfg.Decoys, pk)
	s.enforcePerClientLocked(cs)
	s.enforceClientCapLocked(sh)
}

// IssuePageDegraded is IssuePage for a load-shedding serving layer: it
// issues decoys decoy keys (instead of the configured count) and backdates
// the issue timestamps so the whole batch expires after ttl instead of the
// configured TTL. Validation and expiry are untouched — a shorter-lived key
// is simply an older one. Degraded pages stay fully verifiable (a real key
// beacon still proves a human); they just pin less proxy memory per
// anonymous client while the tracker is under pressure.
func (s *Store) IssuePageDegraded(clientIP, page string, decoys int, ttl time.Duration, pk *PageKeys) {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	now := s.cfg.Clock.Now()
	issuedAt := now
	if ttl > 0 && ttl < s.cfg.TTL {
		issuedAt = now.Add(ttl - s.cfg.TTL)
	}
	if decoys < 0 {
		decoys = 0
	}
	cs := s.clientLocked(sh, clientIP)
	sh.moveToFront(cs)
	s.expireClientLocked(cs, s.tick(now))
	s.issuePageLocked(sh, cs, page, now, s.tick(issuedAt), decoys, pk)
	s.enforcePerClientLocked(cs)
	s.enforceClientCapLocked(sh)
}

// IssuePagesInto issues keys for a batch of page views by one client — the
// shape the CDN driver produces when a robot or a prefetching browser pulls
// many pages back to back. The shard lock, the LRU touch and the TTL expiry
// scan are paid once for the whole batch. pks must have len(pages) entries;
// each is filled in place like IssuePage.
func (s *Store) IssuePagesInto(clientIP string, pages []string, pks []*PageKeys) {
	if len(pages) == 0 {
		return
	}
	if len(pks) != len(pages) {
		panic("keystore: IssuePagesInto requires len(pks) == len(pages)")
	}
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	now := s.cfg.Clock.Now()
	nowTick := s.tick(now)
	cs := s.clientLocked(sh, clientIP)
	sh.moveToFront(cs)
	s.expireClientLocked(cs, nowTick)
	for i, page := range pages {
		s.issuePageLocked(sh, cs, page, now, nowTick, s.cfg.Decoys, pks[i])
	}
	s.enforcePerClientLocked(cs)
	s.enforceClientCapLocked(sh)
}

// Issue generates and materialises one page view's keys as strings. It is
// the compatibility wrapper over IssuePage: the digit sequences are
// identical to the numeric draws, byte for byte.
func (s *Store) Issue(clientIP, page string) Issued {
	var pk PageKeys
	s.IssuePage(clientIP, page, &pk)
	return pk.Issued()
}

// IssueN issues keys for a batch of page views by one client, materialised
// as strings (see IssuePagesInto for the allocation-free form). Results are
// appended to out (which may be nil) and returned.
func (s *Store) IssueN(clientIP string, pages []string, out []Issued) []Issued {
	if len(pages) == 0 {
		return out
	}
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	now := s.cfg.Clock.Now()
	nowTick := s.tick(now)
	cs := s.clientLocked(sh, clientIP)
	sh.moveToFront(cs)
	s.expireClientLocked(cs, nowTick)
	var pk PageKeys
	for _, page := range pages {
		s.issuePageLocked(sh, cs, page, now, nowTick, s.cfg.Decoys, &pk)
		out = append(out, pk.Issued())
	}
	s.enforcePerClientLocked(cs)
	s.enforceClientCapLocked(sh)
	return out
}

// issuePageLocked draws one page's keys and tokens and records them. The
// draw order (real key, CSS/script/hidden tokens, then decoys) is part of
// the store's deterministic surface: fixed-seed runs replay it byte for
// byte, and the string wrappers format exactly these draws. issueTick is the
// recorded coarse timestamp (normally now's tick; the degraded path
// backdates it to shorten the effective TTL) and decoys the decoy count for
// this page. The page path is interned once and the handle retained per
// record, so a batch's records carry 8-byte handles into one shared string.
func (s *Store) issuePageLocked(sh *storeShard, cs *clientState, page string, now time.Time, issueTick uint32, decoys int, pk *PageKeys) {
	if len(cs.keys) == 0 || issueTick < cs.oldestTick {
		cs.oldestTick = issueTick
	}
	digits := s.cfg.KeyDigits
	pk.Page = page
	pk.Digits = digits
	pk.Key = s.uniqueKeyLocked(sh, cs)
	pk.CSSToken = sh.src.DigitKeyValue(digits)
	pk.ScriptToken = sh.src.DigitKeyValue(digits)
	pk.HiddenToken = sh.src.DigitKeyValue(digits)
	pk.IssuedAt = now
	pageHandle, _ := s.interner.Intern(page)
	cs.keys[pk.Key] = keyRecord{page: pageHandle, tick: issueTick}
	pk.Decoys = pk.Decoys[:0]
	off := int32(len(cs.decoys))
	for i := 0; i < decoys; i++ {
		d := s.uniqueKeyLocked(sh, cs)
		pk.Decoys = append(pk.Decoys, d)
		cs.decoys = append(cs.decoys, d)
		s.interner.Retain(pageHandle)
		cs.keys[d] = keyRecord{page: pageHandle, tick: issueTick, flags: flagDecoy}
	}
	cs.queue = append(cs.queue, issueBatch{key: pk.Key, off: off, n: int32(decoys)})
	s.stats.issued.Add(1)
	s.liveKeys.Add(int64(1 + decoys))
}

// uniqueKeyLocked draws a key value not already present for the client.
func (s *Store) uniqueKeyLocked(sh *storeShard, cs *clientState) uint64 {
	for {
		v := sh.src.DigitKeyValue(s.cfg.KeyDigits)
		if _, exists := cs.keys[v]; !exists {
			return v
		}
	}
}

// dropBatchesLocked removes the first n batches from the client's queue,
// deleting their keys (and releasing their interned page handles), then
// compacts the queue and the decoy arena in place (copy-down, no
// reallocation) so the backing arrays never creep. It returns the number of
// keys deleted so the caller can settle the live-key counter.
func (s *Store) dropBatchesLocked(cs *clientState, n int) int64 {
	if n <= 0 {
		return 0
	}
	var dropped int64
	var decoysDropped int32
	for i := 0; i < n; i++ {
		b := cs.queue[i]
		if rec, ok := cs.keys[b.key]; ok {
			s.interner.Release(rec.page)
			delete(cs.keys, b.key)
			dropped++
		}
		for _, d := range cs.decoys[b.off : b.off+b.n] {
			if rec, ok := cs.keys[d]; ok {
				s.interner.Release(rec.page)
				delete(cs.keys, d)
				dropped++
			}
		}
		decoysDropped += b.n
	}
	// Copy-down compaction: surviving batches slide to the front of both
	// arrays and their offsets are rebased. O(live) per eviction wave, but
	// allocation-free forever (a ring would save the copies at the cost of
	// offset arithmetic everywhere; live sizes are MaxPerClient-bounded).
	copy(cs.decoys, cs.decoys[decoysDropped:])
	cs.decoys = cs.decoys[:int32(len(cs.decoys))-decoysDropped]
	copy(cs.queue, cs.queue[n:])
	cs.queue = cs.queue[:len(cs.queue)-n]
	for i := range cs.queue {
		cs.queue[i].off -= decoysDropped
	}
	return dropped
}

// expireClientLocked drops keys older than the TTL for one client. The
// O(outstanding keys) map scan only runs when the oldest live key can
// actually have expired (tracked via clientState.oldestTick, re-derived
// exactly from the survivors on every scan), so hot-path issues skip it.
func (s *Store) expireClientLocked(cs *clientState, nowTick uint32) {
	if len(cs.keys) == 0 || !s.expired(nowTick, cs.oldestTick) {
		return
	}
	minSurvivor := nowTick
	var dropped int64
	for k, rec := range cs.keys {
		if s.expired(nowTick, rec.tick) {
			s.interner.Release(rec.page)
			delete(cs.keys, k)
			dropped++
			s.stats.expiredDropped.Add(1)
		} else if rec.tick < minSurvivor {
			minSurvivor = rec.tick
		}
	}
	s.liveKeys.Add(-dropped)
	// Compact the issue queue and decoy arena over the survivors. Batches
	// whose real key expired are dropped whole (real key and decoys share
	// one issuedAt, so they expire together).
	if len(cs.queue) > 0 {
		keepQ := cs.queue[:0]
		keepD := cs.decoys[:0]
		for _, b := range cs.queue {
			if _, ok := cs.keys[b.key]; !ok {
				continue
			}
			off := int32(len(keepD))
			keepD = append(keepD, cs.decoys[b.off:b.off+b.n]...)
			b.off = off
			keepQ = append(keepQ, b)
		}
		cs.queue = keepQ
		cs.decoys = keepD
	}
	cs.oldestTick = minSurvivor
}

// enforcePerClientLocked bounds the number of outstanding real keys for one
// client by discarding the oldest issues together with their decoys. The
// queue remembers each issue's decoy run, so eviction deletes exactly that
// batch's keys — no scan over the client's whole table.
func (s *Store) enforcePerClientLocked(cs *clientState) {
	if over := len(cs.queue) - s.cfg.MaxPerClient; over > 0 {
		s.liveKeys.Add(-s.dropBatchesLocked(cs, over))
	}
}

// enforceClientCapLocked bounds the number of distinct clients in the shard.
func (s *Store) enforceClientCapLocked(sh *storeShard) {
	for sh.count > sh.max {
		victim := sh.tail
		if victim == nil {
			return
		}
		sh.unlink(victim)
		delete(sh.clients, victim.ip)
		sh.count--
		s.liveClients.Add(-1)
		s.liveKeys.Add(-int64(len(victim.keys)))
		for _, rec := range victim.keys {
			s.interner.Release(rec.page)
		}
		sh.release(victim)
		s.stats.evictedClients.Add(1)
	}
}

// Validate checks a beacon key presented by the given client. Real keys are
// consumed on first use so replays are detected. Only the client's shard is
// locked. Keys must be exactly KeyDigits digits: length or character
// mismatches are Unknown (so "007" and "7" never collide).
func (s *Store) Validate(clientIP, key string) Verdict {
	v, ok := rng.ParseFixedDigits(key, s.cfg.KeyDigits)
	if !ok {
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	return s.ValidateValue(clientIP, v)
}

// ValidateValue is Validate over an already parsed key value.
func (s *Store) ValidateValue(clientIP string, key uint64) Verdict {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	cs, ok := sh.clients[clientIP]
	if !ok {
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	sh.moveToFront(cs)
	nowTick := s.tick(s.cfg.Clock.Now())
	rec, ok := cs.keys[key]
	if !ok {
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	if s.expired(nowTick, rec.tick) {
		s.interner.Release(rec.page)
		delete(cs.keys, key)
		s.liveKeys.Add(-1)
		s.stats.expiredDropped.Add(1)
		s.stats.unknownHits.Add(1)
		return Unknown
	}
	if rec.flags&flagDecoy != 0 {
		s.stats.decoyHits.Add(1)
		return Decoy
	}
	if rec.flags&flagConsumed != 0 {
		s.stats.replayHits.Add(1)
		return Replayed
	}
	rec.flags |= flagConsumed
	cs.keys[key] = rec
	s.stats.humanHits.Add(1)
	return Human
}

// OutstandingKeys returns the number of unexpired keys currently stored for
// the client (real plus decoys). It is primarily for tests and monitoring.
func (s *Store) OutstandingKeys(clientIP string) int {
	sh := s.shard(clientIP)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs, ok := sh.clients[clientIP]
	if !ok {
		return 0
	}
	return len(cs.keys)
}

// Clients returns the number of distinct client IPs currently tracked,
// summed shard by shard (no global lock).
func (s *Store) Clients() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.count
		sh.mu.Unlock()
	}
	return total
}

// LiveClients returns the number of distinct client IPs currently tracked,
// from the lock-free mirror (equal to Clients() at quiescence; use it on the
// serve path where Clients()'s per-shard locking is too heavy).
func (s *Store) LiveClients() int64 { return s.liveClients.Load() }

// LiveKeys returns the number of outstanding keys (real plus decoys) across
// all clients, lock-free.
func (s *Store) LiveKeys() int64 { return s.liveKeys.Load() }

// Occupancy returns the fraction of the client capacity in use, lock-free.
func (s *Store) Occupancy() float64 {
	return float64(s.liveClients.Load()) / float64(s.cfg.MaxClients)
}

// MemoryEstimate returns the store's approximate live memory footprint in
// bytes (rounded-up per-client and per-key costs). Lock-free and
// allocation-free; the load-state recomputation reads it on the serve path.
func (s *Store) MemoryEstimate() int64 {
	return s.liveClients.Load()*clientBaseBytes + s.liveKeys.Load()*keyEntryBytes
}

// KeyDigits returns the effective (clamped) key width in decimal digits.
func (s *Store) KeyDigits() int { return s.cfg.KeyDigits }

// Interner returns the string table page paths are interned into (the
// configured one, or the private instance created by default).
func (s *Store) Interner() *intern.Interner { return s.interner }

// Stats returns a copy of the cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Issued:         s.stats.issued.Load(),
		HumanHits:      s.stats.humanHits.Load(),
		DecoyHits:      s.stats.decoyHits.Load(),
		ReplayHits:     s.stats.replayHits.Load(),
		UnknownHits:    s.stats.unknownHits.Load(),
		ExpiredDropped: s.stats.expiredDropped.Load(),
		EvictedClients: s.stats.evictedClients.Load(),
	}
}

// Decoys returns the configured number of decoy keys per page.
func (s *Store) Decoys() int { return s.cfg.Decoys }
