package keystore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"botdetect/internal/clock"
)

func newTestStore(t *testing.T, cfg Config) (*Store, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(time.Time{})
	cfg.Clock = vc
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return New(cfg), vc
}

func TestIssueShape(t *testing.T) {
	s, _ := newTestStore(t, Config{Decoys: 5, KeyDigits: 12})
	iss := s.Issue("10.0.0.1", "/index.html")
	if iss.Page != "/index.html" {
		t.Fatalf("Page = %q", iss.Page)
	}
	if len(iss.Key) != 12 {
		t.Fatalf("key length = %d", len(iss.Key))
	}
	if len(iss.Decoys) != 5 {
		t.Fatalf("decoys = %d", len(iss.Decoys))
	}
	if iss.CSSToken == "" || iss.ScriptToken == "" || iss.HiddenToken == "" {
		t.Fatal("object tokens missing")
	}
	seen := map[string]bool{iss.Key: true}
	for _, d := range iss.Decoys {
		if seen[d] {
			t.Fatal("duplicate key among real+decoys")
		}
		seen[d] = true
	}
}

func TestValidateRealKeyOnceOnly(t *testing.T) {
	s, _ := newTestStore(t, Config{})
	iss := s.Issue("10.0.0.1", "/a.html")
	if v := s.Validate("10.0.0.1", iss.Key); v != Human {
		t.Fatalf("first validation = %v", v)
	}
	if v := s.Validate("10.0.0.1", iss.Key); v != Replayed {
		t.Fatalf("second validation = %v", v)
	}
	st := s.Stats()
	if st.HumanHits != 1 || st.ReplayHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValidateDecoy(t *testing.T) {
	s, _ := newTestStore(t, Config{Decoys: 3})
	iss := s.Issue("10.0.0.1", "/a.html")
	for _, d := range iss.Decoys {
		if v := s.Validate("10.0.0.1", d); v != Decoy {
			t.Fatalf("decoy validation = %v", v)
		}
	}
	if s.Stats().DecoyHits != 3 {
		t.Fatalf("DecoyHits = %d", s.Stats().DecoyHits)
	}
}

func TestValidateUnknownAndWrongClient(t *testing.T) {
	s, _ := newTestStore(t, Config{})
	iss := s.Issue("10.0.0.1", "/a.html")
	if v := s.Validate("10.0.0.1", "0000000000"); v != Unknown {
		t.Fatalf("guessed key = %v", v)
	}
	if v := s.Validate("10.0.0.9", iss.Key); v != Unknown {
		t.Fatalf("key from wrong client = %v", v)
	}
	if v := s.Validate("192.168.0.5", "1234"); v != Unknown {
		t.Fatalf("unknown client = %v", v)
	}
}

func TestTTLExpiry(t *testing.T) {
	s, vc := newTestStore(t, Config{TTL: 30 * time.Minute})
	iss := s.Issue("10.0.0.1", "/a.html")
	vc.Advance(31 * time.Minute)
	if v := s.Validate("10.0.0.1", iss.Key); v != Unknown {
		t.Fatalf("expired key verdict = %v", v)
	}
	if s.Stats().ExpiredDropped == 0 {
		t.Fatal("expired key not counted")
	}
}

func TestTTLExpiryOnIssue(t *testing.T) {
	s, vc := newTestStore(t, Config{TTL: 10 * time.Minute, Decoys: 2})
	s.Issue("10.0.0.1", "/a.html")
	before := s.OutstandingKeys("10.0.0.1")
	if before != 3 {
		t.Fatalf("outstanding = %d, want 3", before)
	}
	vc.Advance(11 * time.Minute)
	s.Issue("10.0.0.1", "/b.html")
	// The previous issue should have been purged; only the new 3 remain.
	if got := s.OutstandingKeys("10.0.0.1"); got != 3 {
		t.Fatalf("outstanding after expiry = %d, want 3", got)
	}
}

func TestPerClientCapEvictsOldest(t *testing.T) {
	s, _ := newTestStore(t, Config{MaxPerClient: 5, Decoys: 2})
	var first Issued
	for i := 0; i < 20; i++ {
		iss := s.Issue("10.0.0.1", fmt.Sprintf("/p%d.html", i))
		if i == 0 {
			first = iss
		}
	}
	// Max 5 outstanding issues * (1 real + 2 decoys) keys each.
	if got := s.OutstandingKeys("10.0.0.1"); got > 5*3 {
		t.Fatalf("outstanding = %d, want <= 15", got)
	}
	if v := s.Validate("10.0.0.1", first.Key); v != Unknown {
		t.Fatalf("evicted key verdict = %v", v)
	}
}

func TestClientCapEvictsLRU(t *testing.T) {
	// Shards: 1 pins every client to one shard so the global LRU eviction
	// order is exact; with more shards the cap is distributed per shard.
	s, _ := newTestStore(t, Config{MaxClients: 10, Shards: 1})
	for i := 0; i < 25; i++ {
		s.Issue(fmt.Sprintf("10.0.0.%d", i), "/a.html")
	}
	if got := s.Clients(); got != 10 {
		t.Fatalf("Clients = %d, want 10", got)
	}
	if s.Stats().EvictedClients != 15 {
		t.Fatalf("EvictedClients = %d", s.Stats().EvictedClients)
	}
	// The most recent clients should still be tracked.
	if s.OutstandingKeys("10.0.0.24") == 0 {
		t.Fatal("most recent client was evicted")
	}
	if s.OutstandingKeys("10.0.0.0") != 0 {
		t.Fatal("oldest client should have been evicted")
	}
}

func TestShardedClientCapBoundsTotal(t *testing.T) {
	// With the default shard count the MaxClients bound is distributed over
	// the shards; the total never exceeds the distributed bound.
	s, _ := newTestStore(t, Config{MaxClients: 64})
	for i := 0; i < 1000; i++ {
		s.Issue(fmt.Sprintf("10.8.%d.%d", i/250, i%250), "/a.html")
	}
	perShard := (64 + s.ShardCount() - 1) / s.ShardCount()
	if got := s.Clients(); got > perShard*s.ShardCount() {
		t.Fatalf("Clients = %d exceeds distributed bound %d", got, perShard*s.ShardCount())
	}
	if s.Stats().EvictedClients == 0 {
		t.Fatal("no clients evicted despite exceeding the cap")
	}
}

func TestLRUTouchOnValidate(t *testing.T) {
	s, _ := newTestStore(t, Config{MaxClients: 2, Shards: 1})
	a := s.Issue("1.1.1.1", "/a.html")
	s.Issue("2.2.2.2", "/a.html")
	// Touch client 1 so client 2 becomes the LRU victim.
	if v := s.Validate("1.1.1.1", a.Key); v != Human {
		t.Fatalf("validate = %v", v)
	}
	s.Issue("3.3.3.3", "/a.html")
	if s.OutstandingKeys("1.1.1.1") == 0 {
		t.Fatal("recently validated client evicted")
	}
	if s.OutstandingKeys("2.2.2.2") != 0 {
		t.Fatal("stale client not evicted")
	}
}

func TestKeysUniqueAcrossIssues(t *testing.T) {
	s, _ := newTestStore(t, Config{Decoys: 3, KeyDigits: 10})
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		iss := s.Issue("10.0.0.1", "/a.html")
		all := append([]string{iss.Key}, iss.Decoys...)
		for _, k := range all {
			if len(k) != 10 {
				t.Fatalf("key length %d", len(k))
			}
		}
		if seen[iss.Key] {
			t.Fatal("real key collided with an earlier key")
		}
		seen[iss.Key] = true
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{Human: "human", Decoy: "decoy", Replayed: "replayed", Unknown: "unknown", Verdict(99): "unknown"}
	for v, want := range cases {
		if v.String() != want {
			t.Fatalf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestConcurrentIssueValidate(t *testing.T) {
	s, _ := newTestStore(t, Config{Decoys: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.1.0.%d", g)
			for i := 0; i < 200; i++ {
				iss := s.Issue(ip, "/p.html")
				if v := s.Validate(ip, iss.Key); v != Human {
					t.Errorf("goroutine %d: verdict %v", g, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Stats().HumanHits != 8*200 {
		t.Fatalf("HumanHits = %d", s.Stats().HumanHits)
	}
}

func TestConcurrentOverlappingClients(t *testing.T) {
	// Goroutines share client IPs, so shard mutexes are genuinely contended
	// and real keys race to be consumed (run with -race): every real key
	// must validate as Human exactly once across all goroutines.
	// MaxPerClient is raised so a descheduled goroutine's key cannot be
	// evicted by the others' issues before it validates.
	s, _ := newTestStore(t, Config{Decoys: 2, MaxPerClient: 100000})
	ips := []string{"10.2.0.1", "10.2.0.2", "10.2.0.3"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				ip := ips[(g+i)%len(ips)]
				iss := s.Issue(ip, "/p.html")
				if v := s.Validate(ip, iss.Key); v != Human {
					t.Errorf("goroutine %d: first validation = %v", g, v)
					return
				}
				if v := s.Validate(ip, iss.Key); v != Replayed {
					t.Errorf("goroutine %d: second validation = %v", g, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.HumanHits != 8*150 || st.ReplayHits != 8*150 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPropertyRealAndDecoysDisjointAndValid(t *testing.T) {
	s, _ := newTestStore(t, Config{Decoys: 6})
	f := func(ipByte uint8, pageID uint16) bool {
		ip := fmt.Sprintf("10.9.0.%d", ipByte)
		iss := s.Issue(ip, fmt.Sprintf("/q%d.html", pageID))
		// Real key must validate as Human exactly once; every decoy as Decoy.
		if s.Validate(ip, iss.Key) != Human {
			return false
		}
		for _, d := range iss.Decoys {
			if d == iss.Key {
				return false
			}
			if s.Validate(ip, d) != Decoy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoysAccessor(t *testing.T) {
	s, _ := newTestStore(t, Config{Decoys: 7})
	if s.Decoys() != 7 {
		t.Fatalf("Decoys() = %d", s.Decoys())
	}
	d, _ := newTestStore(t, Config{})
	if d.Decoys() != 4 {
		t.Fatalf("default Decoys() = %d", d.Decoys())
	}
}
