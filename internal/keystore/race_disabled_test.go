//go:build !race

package keystore

const raceEnabled = false
