package keystore

import (
	"testing"
	"time"
)

// TestIssuePageDegradedDecoysAndTTL: a degraded issue carries the reduced
// decoy count and the shortened TTL, while full issues from the same client
// keep the configured lifetime — pressure trims the new arrival's footprint
// without touching anyone else's keys.
func TestIssuePageDegradedDecoysAndTTL(t *testing.T) {
	s, vc := newTestStore(t, Config{TTL: time.Hour, Decoys: 6})

	var full, deg PageKeys
	s.IssuePage("10.0.0.1", "/full.html", &full)
	s.IssuePageDegraded("10.0.0.1", "/deg.html", 2, 10*time.Minute, &deg)

	if len(full.Decoys) != 6 {
		t.Fatalf("full issue decoys = %d, want 6", len(full.Decoys))
	}
	if len(deg.Decoys) != 2 {
		t.Fatalf("degraded issue decoys = %d, want 2", len(deg.Decoys))
	}
	if deg.Key == 0 && len(deg.Decoys) == 0 {
		t.Fatal("degraded issue produced no keys at all")
	}
	// The degraded real key still proves a human right now.
	if v := s.ValidateValue("10.0.0.1", deg.Key); v != Human {
		t.Fatalf("fresh degraded key verdict = %v, want Human", v)
	}

	// A second degraded page, left unconsumed past its shortened TTL.
	s.IssuePageDegraded("10.0.0.1", "/deg2.html", 2, 10*time.Minute, &deg)
	vc.Advance(11 * time.Minute)
	if v := s.ValidateValue("10.0.0.1", deg.Key); v != Unknown {
		t.Fatalf("degraded key after 11m (TTL 10m) verdict = %v, want Unknown", v)
	}
	// The full-service key from the same client still has 49 minutes left.
	if v := s.ValidateValue("10.0.0.1", full.Key); v != Human {
		t.Fatalf("full key after 11m (TTL 1h) verdict = %v, want Human", v)
	}
}

// TestIssuePageDegradedDecoyVerdict: degraded decoys still convict — a
// client blindly fetching beacon URLs from a degraded page must read as a
// robot exactly like one on a full page.
func TestIssuePageDegradedDecoyVerdict(t *testing.T) {
	s, _ := newTestStore(t, Config{TTL: time.Hour, Decoys: 6})
	var deg PageKeys
	s.IssuePageDegraded("10.0.0.2", "/deg.html", 3, 10*time.Minute, &deg)
	if len(deg.Decoys) != 3 {
		t.Fatalf("decoys = %d, want 3", len(deg.Decoys))
	}
	for _, d := range deg.Decoys {
		if v := s.ValidateValue("10.0.0.2", d); v != Decoy {
			t.Fatalf("decoy key verdict = %v, want Decoy", v)
		}
	}
}
