// Fleet wiring: turns a Network of isolated detection nodes into one
// fault-tolerant fleet. EnableReplication gives every node a
// fleet.Replicator over an in-process mesh, partitions sessions across the
// nodes with a consistent-hash ring (N-replica routing), and wires the
// replication callbacks into each node's engines:
//
//   - locally derived Definite verdicts export through the engine's verdict
//     hook and replicate fleet-wide (each peer installs them in its remote
//     detector stage);
//   - policy block escalations replicate into every peer's block list, so a
//     session blocked anywhere is refused everywhere;
//   - model publications reach every engine (single trainer, fleet-wide
//     swap);
//   - request observations forward to the session's partition owner, so a
//     crawler spreading requests across many open proxies still accumulates
//     one session's evidence on one node;
//   - a node serving a session another node owns (partition failover) serves
//     degraded instrumentation immediately and backfills the session's
//     evidence with a handoff — the serve path never waits on a peer.
//
// Node.Crash/Restart/Drain simulate the failure modes the chaos harness
// (internal/chaos) drives: a crash loses the node's memory (sessions,
// replicated stores) and anti-entropy backfills it after Restart under a new
// incarnation; Drain hands evidence-bearing sessions to the partition's
// surviving replica before the node retires.
package cdn

import (
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/fleet"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/shard"
)

// nodeDownBody is the 503 body a crashed or draining node returns.
var nodeDownBody = []byte("node down")

// FleetConfig controls Network.EnableReplication. The zero value is usable:
// every field falls back to a sensible default.
type FleetConfig struct {
	// Replicas is how many ring owners each session has (default 2): the
	// primary aggregates the session's evidence, the rest can serve it
	// degraded and take over on failure.
	Replicas int
	// VNodes is the number of virtual ring points per node (default 64).
	VNodes int
	// Intercept, when non-nil, is installed on the mesh for fault injection
	// (see internal/chaos.Links).
	Intercept fleet.Intercept

	// Replication tuning, passed through to fleet.Config (zero = that
	// package's defaults).
	OutboxCapacity      int
	BatchSize           int
	RetryBackoff        time.Duration
	MaxBackoff          time.Duration
	SendPatience        time.Duration
	HeartbeatInterval   time.Duration
	PhiThreshold        float64
	AntiEntropyInterval time.Duration
	AntiEntropyBatch    int
	StallTimeout        time.Duration

	// Clock supplies time for the replication layer; defaults to the wall
	// clock (replication runs on real goroutines even when the workload is
	// driven on a virtual clock).
	Clock clock.Clock
	// Seed drives backoff jitter.
	Seed uint64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	return c
}

// EnableReplication joins the network's nodes into one replicated fleet.
// Call it once, after NewNetwork and before serving traffic.
func (n *Network) EnableReplication(cfg FleetConfig) {
	cfg = cfg.withDefaults()
	names := make([]string, len(n.nodes))
	for i, node := range n.nodes {
		names[i] = node.cfg.Name
	}
	n.ring = fleet.NewRing(names, cfg.VNodes)
	n.mesh = fleet.NewMesh()
	if cfg.Intercept != nil {
		n.mesh.SetIntercept(cfg.Intercept)
	}
	n.replicas = cfg.Replicas
	n.byName = make(map[string]*Node, len(n.nodes))
	n.index = make(map[string]int, len(n.nodes))
	src := rng.New(cfg.Seed ^ 0x636f6465656e).Fork("cdn-fleet")
	for i, node := range n.nodes {
		n.byName[node.cfg.Name] = node
		n.index[node.cfg.Name] = i
		node.ring = n.ring
		node.replicas = cfg.Replicas
		node.rep = fleet.New(fleet.Config{
			Name:      node.cfg.Name,
			Peers:     names,
			Transport: n.mesh.Bind(node.cfg.Name),
			Callbacks: n.fleetCallbacks(node),

			OutboxCapacity:      cfg.OutboxCapacity,
			BatchSize:           cfg.BatchSize,
			RetryBackoff:        cfg.RetryBackoff,
			MaxBackoff:          cfg.MaxBackoff,
			SendPatience:        cfg.SendPatience,
			HeartbeatInterval:   cfg.HeartbeatInterval,
			PhiThreshold:        cfg.PhiThreshold,
			AntiEntropyInterval: cfg.AntiEntropyInterval,
			AntiEntropyBatch:    cfg.AntiEntropyBatch,
			StallTimeout:        cfg.StallTimeout,
			Clock:               cfg.Clock,
			Seed:                src.Uint64(),
		})
		n.mesh.Attach(node.rep)
		node.rep.RegisterMetrics(n.tel.Registry(), node.cfg.Name)
		n.wireExportHooks(node)
	}
	for _, node := range n.nodes {
		node.rep.Start()
	}
}

// wireExportHooks points the node's engines at its replicator: locally
// derived Definite verdicts and policy block escalations publish fleet-wide.
// Both hooks check the down flag — a crashed node must not publish epochs
// while its engine flushes, or Wipe's epoch-counter reset would later reissue
// them.
func (n *Network) wireExportHooks(node *Node) {
	node.cfg.Engine.SetVerdictExport(func(key session.Key, v core.Verdict) {
		if node.down.Load() {
			return
		}
		node.rep.PublishVerdict(key, v)
	})
	if node.cfg.Policy != nil {
		node.cfg.Policy.SetOnBlock(func(key session.Key, until time.Time) {
			if node.down.Load() {
				return
			}
			node.rep.PublishBlock(key, until)
		})
	}
}

// fleetCallbacks builds the replication callbacks that apply peer updates to
// one node's local engines. Every callback checks the down flag first: a
// crashed node neither applies nor re-exports anything.
func (n *Network) fleetCallbacks(node *Node) fleet.Callbacks {
	eng := node.cfg.Engine
	pol := node.cfg.Policy
	return fleet.Callbacks{
		OnVerdict: func(key session.Key, v core.Verdict, origin string) {
			if node.down.Load() {
				return
			}
			eng.ApplyRemoteVerdict(key, v, origin)
		},
		OnBlock: func(key session.Key, until time.Time) {
			if node.down.Load() || pol == nil {
				return
			}
			pol.BlockUntil(key, until)
		},
		OnModel: func(m *adaboost.Model, seq uint64) {
			if node.down.Load() {
				return
			}
			eng.SetModel(m)
		},
		OnObservation: func(u fleet.Update) {
			if node.down.Load() {
				return
			}
			// Fold the forwarded request into the owner's session exactly as a
			// local request would be — non-quiet, so the published snapshot is
			// exact and threshold checks below the quiet path's power-of-two
			// publishing granularity still fire.
			eng.ObserveRequest(logfmt.Entry{
				Time: time.Unix(0, u.When), ClientIP: u.Key.IP, UserAgent: u.Key.UserAgent,
				Method: u.Method, Path: u.Path, Status: u.Status, Bytes: u.Bytes,
				Referer: u.Refer, ContentType: u.CT,
			})
			// Then classify and run the policy ladder, the same enforcement a
			// local request gets: this is where a distributed crawler's
			// aggregated evidence crosses a threshold, the verdict export hook
			// fires and the resulting block replicates back out.
			if snap, verdict, tracked := eng.Decide(u.Key); tracked {
				if pol != nil {
					pol.Evaluate(*snap, verdict)
				}
				snap.Release()
			}
		},
		OnHandoff: func(key session.Key, sigs []fleet.SignalAt) {
			if node.down.Load() || len(sigs) == 0 {
				return
			}
			signals := make([]session.Signal, len(sigs))
			for i, s := range sigs {
				signals[i] = s.Signal
			}
			eng.AdoptSession(key, signals)
		},
		HandoffSource: func(key session.Key) ([]fleet.SignalAt, bool) {
			if node.down.Load() {
				return nil, false
			}
			snap, ok := eng.Session(key)
			if !ok {
				return nil, false
			}
			sigs := signalsOf(snap)
			return sigs, len(sigs) > 0
		},
	}
}

// signalsOf extracts a snapshot's observed signals with their first-seen
// request counts, in wire form.
func signalsOf(snap session.Snapshot) []fleet.SignalAt {
	var sigs []fleet.SignalAt
	snap.Signals.Each(func(sig session.Signal, at int64) bool {
		sigs = append(sigs, fleet.SignalAt{Signal: sig, At: at})
		return true
	})
	return sigs
}

// Ring returns the fleet's partition ring (nil before EnableReplication).
func (n *Network) Ring() *fleet.Ring { return n.ring }

// Mesh returns the fleet's in-process transport (nil before
// EnableReplication); chaos harnesses install intercepts on it.
func (n *Network) Mesh() *fleet.Mesh { return n.mesh }

// NodeByName returns the named node, or nil.
func (n *Network) NodeByName(name string) *Node {
	if n.byName == nil {
		for _, node := range n.nodes {
			if node.cfg.Name == name {
				return node
			}
		}
		return nil
	}
	return n.byName[name]
}

// routeIndex picks the node serving a client IP. Without a fleet it is the
// legacy FNV pinning; with one it is the partition ring's first live owner,
// so clients fail over to their session's replica when the primary dies, and
// to any live node when every owner is down.
func (n *Network) routeIndex(ip string) int {
	if n.ring == nil {
		return n.nodeIndex(ip)
	}
	var buf [4]string
	owners := n.ring.OwnersAppend(shard.HashString(ip), n.replicas, buf[:0])
	for _, o := range owners {
		if node := n.byName[o]; node != nil && !node.down.Load() {
			return n.index[o]
		}
	}
	for i, node := range n.nodes {
		if !node.down.Load() {
			return i
		}
	}
	return n.nodeIndex(ip)
}

// Replicator returns the node's fleet replicator (nil on an isolated node).
func (n *Node) Replicator() *fleet.Replicator { return n.rep }

// Down reports whether the node is refusing requests (crashed or draining).
func (n *Node) Down() bool { return n.down.Load() }

// failoverAdmission downgrades admission for a session this node has never
// seen but another node owns: the degraded page still proves humanity
// through the shared script variant, and a handoff request backfills the
// session's evidence from the partition owner in the background. Sessions
// this node tracks — or owns as ring primary — keep full admission.
func (n *Node) failoverAdmission(key session.Key, adm core.Admission) core.Admission {
	if _, ok := n.cfg.Engine.Session(key); ok {
		return adm
	}
	primary := n.ring.Primary(shard.HashString(key.IP))
	if primary == "" || primary == n.cfg.Name {
		return adm
	}
	n.stats.failoverDegraded.Add(1)
	if n.rep.PeerUp(primary) {
		n.rep.RequestHandoff(primary, key)
	}
	return core.AdmitDegraded
}

// forwardObservation sends one observed request to the session's acting
// partition owner — the first live ring owner — unless this node is it. The
// enqueue is bounded and non-blocking; with no owner reachable the primary
// gets it anyway and a dead primary's outbox drops it (evidence forwarding is
// fire-and-forget).
func (n *Node) forwardObservation(entry logfmt.Entry) {
	var buf [4]string
	owners := n.ring.OwnersAppend(shard.HashString(entry.ClientIP), n.replicas, buf[:0])
	if len(owners) == 0 {
		return
	}
	target := ""
	for _, o := range owners {
		if o == n.cfg.Name {
			return // this node is the acting owner; the evidence is home
		}
		if n.rep.PeerUp(o) {
			target = o
			break
		}
	}
	if target == "" {
		target = owners[0]
	}
	n.rep.ForwardObservation(target, fleet.Update{
		Key:    session.Key{IP: entry.ClientIP, UserAgent: entry.UserAgent},
		Method: entry.Method, Path: entry.Path, Status: entry.Status,
		Bytes: entry.Bytes, Refer: entry.Referer, CT: entry.ContentType,
		When: entry.Time.UnixNano(),
	})
}

// cacheStats snapshots the node's counters for stale-marked rollups while it
// is down.
func (n *Node) cacheStats() {
	s := n.Stats()
	n.lastMu.Lock()
	n.lastStats = s
	n.lastMu.Unlock()
}

// Crash simulates a node failure: the node stops serving and receiving,
// its sessions die with it, and its replicated stores and epoch counters are
// wiped. Restart brings it back under a new incarnation; anti-entropy
// backfills everything it lost.
func (n *Node) Crash() {
	n.down.Store(true)
	if n.rep != nil {
		n.rep.Stop()
	}
	n.cacheStats()
	// Sessions are process memory: a crash loses them. The export hooks see
	// the down flag and stay silent during the flush, so no epochs are
	// allocated between here and the wipe.
	n.cfg.Engine.FlushSessions()
	if n.rep != nil {
		n.rep.Wipe()
	}
}

// Restart brings a crashed or drained node back: the replicator restarts
// under a bumped incarnation (so peers reset its watermark instead of
// treating its fresh epochs as replays) and the node accepts requests again.
func (n *Node) Restart() {
	if n.rep != nil {
		n.rep.Restart()
	}
	n.down.Store(false)
}

// Drain gracefully retires the node: it stops accepting requests, hands
// every evidence-bearing session to the partition's surviving replica, lets
// its outboxes flush for up to timeout, and stops the replicator. It returns
// the number of sessions handed off.
func (n *Node) Drain(timeout time.Duration) int {
	n.down.Store(true)
	handed := 0
	if n.rep != nil && n.ring != nil {
		n.cfg.Engine.StreamSessions(func(snap session.Snapshot) bool {
			sigs := signalsOf(snap)
			if len(sigs) == 0 {
				return true
			}
			if to := n.drainTarget(snap.Key); to != "" && n.rep.SendHandoff(to, snap.Key, sigs) {
				handed++
			}
			return true
		})
	}
	n.cacheStats()
	n.cfg.Engine.FlushSessions()
	if n.rep != nil {
		n.rep.Flush(timeout)
		n.rep.Stop()
	}
	return handed
}

// drainTarget picks the live ring owner inheriting one of the draining
// node's sessions: the first owner (beyond this node) that is up. Looking one
// owner past the replica set covers the case where this node is itself an
// owner.
func (n *Node) drainTarget(key session.Key) string {
	var buf [4]string
	owners := n.ring.OwnersAppend(shard.HashString(key.IP), n.replicas+1, buf[:0])
	for _, o := range owners {
		if o != n.cfg.Name && n.rep.PeerUp(o) {
			return o
		}
	}
	return ""
}

// NodeRollup is one node's contribution to a fleet-wide stats rollup.
type NodeRollup struct {
	Node string
	// Down marks a node that was crashed or draining at collection time;
	// Stale marks a Stats snapshot carried over from before the node went
	// down (or from before a failed read) rather than read live.
	Down  bool
	Stale bool
	Stats NodeStats
}

// CollectStats aggregates node counters with per-node fault tolerance: a
// down node contributes its last known good snapshot, stale-marked, instead
// of failing the whole rollup — the fleet's statistics stay available
// through any single node's failure.
func (n *Network) CollectStats() (NodeStats, []NodeRollup) {
	var total NodeStats
	rollups := make([]NodeRollup, 0, len(n.nodes))
	for _, node := range n.nodes {
		r := NodeRollup{Node: node.cfg.Name}
		if node.down.Load() {
			r.Down, r.Stale = true, true
			node.lastMu.Lock()
			r.Stats = node.lastStats
			node.lastMu.Unlock()
		} else {
			r.Stats = collectNodeStats(node, &r)
		}
		total.add(r.Stats)
		rollups = append(rollups, r)
	}
	return total, rollups
}

// collectNodeStats reads one live node's counters, degrading to its cached
// snapshot (stale-marked) if the read panics out from under us.
func collectNodeStats(node *Node, r *NodeRollup) (s NodeStats) {
	defer func() {
		if recover() != nil {
			r.Stale = true
			node.lastMu.Lock()
			s = node.lastStats
			node.lastMu.Unlock()
		}
	}()
	s = node.Stats()
	node.lastMu.Lock()
	node.lastStats = s
	node.lastMu.Unlock()
	return s
}

// FlushSessionsDetail ends all sessions on every live node and reports which
// down nodes were skipped (a crashed node's sessions died with it; a drained
// node's were handed off).
func (n *Network) FlushSessionsDetail() ([]core.ClassifiedSession, []string) {
	var out []core.ClassifiedSession
	var skipped []string
	for _, node := range n.nodes {
		if node.down.Load() {
			skipped = append(skipped, node.cfg.Name)
			continue
		}
		out = append(out, node.Engine().FlushSessions()...)
	}
	return out, skipped
}

// StopReplication stops every node's replicator (test/experiment teardown).
func (n *Network) StopReplication() {
	for _, node := range n.nodes {
		if node.rep != nil {
			node.rep.Stop()
		}
	}
}
