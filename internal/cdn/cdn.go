// Package cdn simulates the deployment environment of the paper's
// evaluation: a CoDeeN-like content distribution network of proxy nodes,
// each running the detection core in front of the synthetic origin site,
// with per-node traffic accounting, policy enforcement, CAPTCHA service and
// an abuse-complaint model that reproduces the operational timeline of
// Figure 3.
package cdn

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"botdetect/internal/adaboost"
	"botdetect/internal/agents"
	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/fleet"
	"botdetect/internal/htmlmod"
	"botdetect/internal/logfmt"
	"botdetect/internal/policy"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/telemetry"
	"botdetect/internal/webmodel"
)

// NodeConfig controls one proxy node.
type NodeConfig struct {
	// Name identifies the node (e.g. "codeen-03").
	Name string
	// Site is the origin content the node serves; required.
	Site *webmodel.Site
	// Engine is the node's detection engine; required.
	Engine *core.Engine
	// Policy optionally enforces throttling/blocking.
	Policy *policy.Engine
	// Captcha optionally backs the CAPTCHA endpoints.
	Captcha *captcha.Service
	// LogWriter, when non-nil, receives every observed request.
	LogWriter *logfmt.Writer
	// RecordEntries keeps observed entries in memory for offline analysis.
	RecordEntries bool
}

// NodeStats are per-node cumulative counters.
type NodeStats struct {
	Requests            int64
	BlockedRequests     int64
	ChallengedRequests  int64
	ThrottledRequests   int64
	OriginBytes         int64
	InstrumentationHits int64
	CaptchaSolved       int64
	// FleetBlocked counts requests rejected by the replicated block list's
	// lock-free fast path (a subset of BlockedRequests).
	FleetBlocked int64
	// FailoverDegraded counts page views served degraded because the session
	// belongs to another partition owner this node had never seen.
	FailoverDegraded int64
	// Unavailable counts requests refused because the node was down
	// (crashed or draining).
	Unavailable int64
}

// add accumulates s into the receiver (fleet rollups).
func (t *NodeStats) add(s NodeStats) {
	t.Requests += s.Requests
	t.BlockedRequests += s.BlockedRequests
	t.ChallengedRequests += s.ChallengedRequests
	t.ThrottledRequests += s.ThrottledRequests
	t.OriginBytes += s.OriginBytes
	t.InstrumentationHits += s.InstrumentationHits
	t.CaptchaSolved += s.CaptchaSolved
	t.FleetBlocked += s.FleetBlocked
	t.FailoverDegraded += s.FailoverDegraded
	t.Unavailable += s.Unavailable
}

// nodeCounters is the internal atomic mirror of NodeStats: each counter is
// an independent atomic so the parallel driver's workers (and the sharded
// engine behind them) never serialise on a node-wide statistics lock.
type nodeCounters struct {
	requests            atomic.Int64
	blockedRequests     atomic.Int64
	challengedRequests  atomic.Int64
	throttledRequests   atomic.Int64
	originBytes         atomic.Int64
	instrumentationHits atomic.Int64
	captchaSolved       atomic.Int64
	fleetBlocked        atomic.Int64
	failoverDegraded    atomic.Int64
	unavailable         atomic.Int64
}

// Node is one proxy in the simulated CDN. It implements agents.Client and is
// safe for concurrent use: counters are atomic, and the mutex guards only
// the optional log sinks (writer and in-memory recording).
type Node struct {
	cfg       NodeConfig
	stats     nodeCounters
	recording atomic.Bool

	mu      sync.Mutex // guards LogWriter writes and entries
	entries []logfmt.Entry

	// Fleet state (nil/zero when the node runs isolated; see fleet.go):
	// the node's replicator, the shared partition ring, and the down flag a
	// crash or drain sets. lastMu/lastStats cache the most recent good stats
	// snapshot for stale-marked rollups while the node is down.
	rep      *fleet.Replicator
	ring     *fleet.Ring
	replicas int
	down     atomic.Bool

	lastMu    sync.Mutex
	lastStats NodeStats
}

// NewNode creates a Node. It panics when Site or Engine are missing since
// the node cannot operate without them.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Site == nil || cfg.Engine == nil {
		panic("cdn: NodeConfig.Site and NodeConfig.Engine are required")
	}
	n := &Node{cfg: cfg}
	n.recording.Store(cfg.RecordEntries)
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.cfg.Name }

// Engine returns the node's detection engine.
func (n *Node) Engine() *core.Engine { return n.cfg.Engine }

// Policy returns the node's policy engine, or nil when enforcement is off.
func (n *Node) Policy() *policy.Engine { return n.cfg.Policy }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Requests:            n.stats.requests.Load(),
		BlockedRequests:     n.stats.blockedRequests.Load(),
		ChallengedRequests:  n.stats.challengedRequests.Load(),
		ThrottledRequests:   n.stats.throttledRequests.Load(),
		OriginBytes:         n.stats.originBytes.Load(),
		InstrumentationHits: n.stats.instrumentationHits.Load(),
		CaptchaSolved:       n.stats.captchaSolved.Load(),
		FleetBlocked:        n.stats.fleetBlocked.Load(),
		FailoverDegraded:    n.stats.failoverDegraded.Load(),
		Unavailable:         n.stats.unavailable.Load(),
	}
}

// RegisterMetrics adds the node's proxy-level counters (request volume,
// enforcement outcomes, origin bytes, instrumentation hits, CAPTCHA solves)
// to a telemetry registry as scrape-time collectors labelled with the node
// name. The request path keeps paying only its existing atomic adds.
func (n *Node) RegisterMetrics(reg *telemetry.Registry) {
	nl := telemetry.Label("node", n.cfg.Name)
	counter := func(name, labels, help string, v func() int64) {
		reg.CounterFunc(name, telemetry.Join(labels, nl), help, func() float64 { return float64(v()) })
	}
	counter("botdetect_node_requests_total", "", "Client requests handled by the node.",
		n.stats.requests.Load)
	const enforcement = "botdetect_node_enforcement_total"
	enfHelp := "Requests denied or delayed by the policy engine, by action."
	counter(enforcement, telemetry.Label("action", "blocked"), enfHelp, n.stats.blockedRequests.Load)
	counter(enforcement, telemetry.Label("action", "challenged"), enfHelp, n.stats.challengedRequests.Load)
	counter(enforcement, telemetry.Label("action", "throttled"), enfHelp, n.stats.throttledRequests.Load)
	counter("botdetect_node_origin_bytes_total", "", "Origin body bytes served by the node.",
		n.stats.originBytes.Load)
	counter("botdetect_node_instrumentation_hits_total", "", "Instrumentation requests (beacons, generated objects) served by the node.",
		n.stats.instrumentationHits.Load)
	counter("botdetect_node_captcha_solved_total", "", "CAPTCHA challenges solved at the node.",
		n.stats.captchaSolved.Load)
}

// SetRecording enables or disables in-memory recording of observed entries.
func (n *Node) SetRecording(enabled bool) {
	n.recording.Store(enabled)
}

// Entries returns the recorded log entries (nil unless RecordEntries is set).
func (n *Node) Entries() []logfmt.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]logfmt.Entry, len(n.entries))
	copy(out, n.entries)
	return out
}

// Do implements agents.Client: it plays the role the instrumented CoDeeN
// proxy plays for a real client request.
func (n *Node) Do(req agents.Request) agents.Response {
	if n.down.Load() {
		// Crashed or draining: a real dead proxy answers nothing; the
		// simulator's closest honest equivalent is an immediate 503 so
		// drivers can observe the outage and re-route.
		n.stats.unavailable.Add(1)
		return agents.Response{Status: 503, ContentType: "text/plain", Body: nodeDownBody}
	}
	n.stats.requests.Add(1)

	key := session.Key{IP: req.IP, UserAgent: req.UserAgent}
	d := n.cfg.Engine

	// The optional CAPTCHA participation pseudo-path: issue a challenge and
	// have the (simulated) human solve it.
	if req.Path == agents.CaptchaSolvePath {
		if n.cfg.Captcha != nil {
			ch := n.cfg.Captcha.Issue(key)
			if answer, ok := n.cfg.Captcha.Answer(ch.ID); ok && n.cfg.Captcha.Verify(ch.ID, answer) {
				d.MarkCaptchaPassed(key)
				n.stats.captchaSolved.Add(1)
			}
		} else {
			d.MarkCaptchaPassed(key)
			n.stats.captchaSolved.Add(1)
		}
		return agents.Response{Status: 200, ContentType: "text/plain", Body: []byte("ok")}
	}

	// Instrumentation traffic (beacons, generated objects, hidden links).
	// These requests are excluded from session request counting (HandleBeacon
	// marks signals instead) but they do appear in the access log, exactly as
	// they would in a real proxy's log.
	if resp, ok := d.HandleBeacon(req.IP, req.UserAgent, req.Path); ok {
		n.stats.instrumentationHits.Add(1)
		if n.cfg.LogWriter != nil || n.recording.Load() {
			n.log(logfmt.Entry{
				Time: req.Time, ClientIP: req.IP, UserAgent: req.UserAgent, Method: req.Method,
				Path: req.Path, Status: resp.Status, Bytes: int64(len(resp.Body)),
				Referer: req.Referer, ContentType: resp.ContentType,
			})
		}
		return agents.Response{Status: resp.Status, ContentType: resp.ContentType, Body: resp.Body}
	}

	// Replicated block list, checked before local session state: a session
	// blocked anywhere in the fleet is refused here even though this node
	// may never have tracked it. The check is the policy engine's lock-free
	// snapshot read, so the fast path costs one pointer load; it only runs
	// in fleet mode so isolated-node behaviour is bit-identical to before.
	if n.rep != nil && n.cfg.Policy != nil && n.cfg.Policy.IsBlocked(key) {
		n.stats.blockedRequests.Add(1)
		n.stats.fleetBlocked.Add(1)
		n.observe(req, 403, "text/html", 0)
		return agents.Response{Status: 403, ContentType: "text/html", Body: []byte("<html><body>blocked</body></html>")}
	}

	// Policy enforcement before serving origin content: the escalation
	// ladder runs off the chain's cached verdict and the tracker's published
	// snapshot (no copy).
	if n.cfg.Policy != nil {
		if snap, verdict, tracked := d.Decide(key); tracked {
			decision := n.cfg.Policy.Evaluate(*snap, verdict)
			snap.Release()
			switch decision.Action {
			case policy.Block:
				n.stats.blockedRequests.Add(1)
				n.observe(req, 403, "text/html", 0)
				return agents.Response{Status: 403, ContentType: "text/html", Body: []byte("<html><body>blocked</body></html>")}
			case policy.Challenge:
				n.stats.challengedRequests.Add(1)
				n.observe(req, 429, "text/plain", 0)
				return agents.Response{Status: 429, ContentType: "text/plain", Body: []byte("challenge: " + decision.Reason)}
			case policy.Throttle:
				n.stats.throttledRequests.Add(1)
			}
		}
	}

	obj := n.cfg.Site.Lookup(req.Path)
	body := obj.Body
	// Admission control mirrors the live proxy: under pressure anonymous
	// arrivals get degraded instrumentation, and a saturated node serves
	// brand-new clients uninstrumented pass-through without tracking them,
	// so simulated flash crowds exercise the same degradation ladder the
	// deployment runs.
	adm := d.AdmitPage(req.IP, req.UserAgent)
	if n.rep != nil && adm == core.AdmitFull {
		// Partition failover: a session this node has never seen but another
		// node owns gets degraded instrumentation (the shared script variant
		// still proves humanity) while a handoff backfills its evidence from
		// the partition owner in the background. The serve path never waits.
		adm = n.failoverAdmission(key, adm)
	}
	if adm != core.AdmitPassThrough && instrumentable(obj, req.Method) {
		// The same prepared-injection pipeline the proxy serves: pooled page
		// state, composed fragments, streaming rewrite — not a bespoke
		// buffered path.
		var prep *htmlmod.Prepared
		if adm == core.AdmitDegraded {
			prep, _ = d.PrepareInstrumentationDegraded(req.IP, req.UserAgent, req.Path)
		} else {
			prep, _ = d.PrepareInstrumentation(req.IP, req.UserAgent, req.Path)
		}
		res := prep.Rewrite(obj.Body)
		prep.Release()
		d.RecordInstrumented(len(obj.Body), res.AddedBytes)
		body = res.HTML
	}
	if adm == core.AdmitPassThrough {
		// Shed: served but neither instrumented nor observed into the
		// tracker. The access log still sees it, as a real proxy's would.
		if n.cfg.LogWriter != nil || n.recording.Load() {
			n.log(logfmt.Entry{
				Time: req.Time, ClientIP: req.IP, UserAgent: req.UserAgent, Method: req.Method,
				Path: req.Path, Status: obj.Status, Bytes: int64(len(obj.Body)),
				Referer: req.Referer, ContentType: obj.ContentType,
			})
		}
	} else {
		n.observe(req, obj.Status, obj.ContentType, int64(len(obj.Body)))
	}
	n.stats.originBytes.Add(int64(len(obj.Body)))
	return agents.Response{Status: obj.Status, ContentType: obj.ContentType, Body: body, RedirectTo: obj.RedirectTo}
}

// instrumentable reports whether the origin object is an HTML page view the
// engine instruments.
func instrumentable(obj webmodel.Object, method string) bool {
	return obj.Status == 200 && method == "GET" && strings.Contains(obj.ContentType, "text/html")
}

// batchable reports whether req can join a batched page-view run: an
// instrumentable origin page with no enforcement or interception step that
// could diverge from per-request serving. Policy enforcement re-evaluates
// per request off live session state, so any policy at all disables
// batching for this node.
func (n *Node) batchable(req agents.Request) bool {
	if n.cfg.Policy != nil || req.Path == agents.CaptchaSolvePath ||
		n.cfg.Engine.IsInstrumentationPath(req.Path) {
		return false
	}
	// Batched runs always prepare full instrumentation; under load every
	// request must go through per-request admission instead.
	if n.cfg.Engine.LoadState() != core.LoadNormal {
		return false
	}
	return instrumentable(n.cfg.Site.Lookup(req.Path), req.Method)
}

// DoBatch serves a request slice, detecting consecutive runs of page views
// from one client and preparing each run through
// core.PrepareInstrumentationBatch — one keystore pass per run instead of
// one per page. Responses are appended to out and returned, positionally
// matching reqs; every request outside a batchable run falls back to Do, so
// results are identical to serving reqs one at a time.
func (n *Node) DoBatch(reqs []agents.Request, out []agents.Response) []agents.Response {
	i := 0
	for i < len(reqs) {
		j := i
		for j < len(reqs) && reqs[j].IP == reqs[i].IP && reqs[j].UserAgent == reqs[i].UserAgent &&
			n.batchable(reqs[j]) {
			j++
		}
		if j-i < 2 {
			out = append(out, n.Do(reqs[i]))
			i++
			continue
		}
		out = n.doPageRun(reqs[i:j], out)
		i = j
	}
	return out
}

// doPageRun serves one client's consecutive page views through the batched
// prepare pipeline.
func (n *Node) doPageRun(reqs []agents.Request, out []agents.Response) []agents.Response {
	d := n.cfg.Engine
	pages := make([]string, len(reqs))
	for i, req := range reqs {
		pages[i] = req.Path
	}
	preps, _ := d.PrepareInstrumentationBatch(reqs[0].IP, reqs[0].UserAgent, pages, nil)
	for i, req := range reqs {
		n.stats.requests.Add(1)
		obj := n.cfg.Site.Lookup(req.Path)
		res := preps[i].Rewrite(obj.Body)
		preps[i].Release()
		d.RecordInstrumented(len(obj.Body), res.AddedBytes)
		n.observe(req, obj.Status, obj.ContentType, int64(len(obj.Body)))
		n.stats.originBytes.Add(int64(len(obj.Body)))
		out = append(out, agents.Response{Status: obj.Status, ContentType: obj.ContentType, Body: res.HTML, RedirectTo: obj.RedirectTo})
	}
	return out
}

// observe records a non-instrumentation request with the detector's session
// tracker and the node's log sinks.
func (n *Node) observe(req agents.Request, status int, contentType string, bytes int64) {
	entry := logfmt.Entry{
		Time: req.Time, ClientIP: req.IP, UserAgent: req.UserAgent, Method: req.Method,
		Path: req.Path, Status: status, Bytes: bytes, Referer: req.Referer, ContentType: contentType,
	}
	// The snapshot a plain Observe returns would be discarded here; record
	// quietly and let the next Decide/Get republish it.
	n.cfg.Engine.ObserveRequestQuiet(entry)
	if n.rep != nil {
		// Fleet mode: sessions are partitioned, and the partition owner must
		// see every request so cross-node evidence aggregates somewhere. The
		// forward is a bounded-outbox enqueue — never a wait.
		n.forwardObservation(entry)
	}
	if n.cfg.LogWriter != nil || n.recording.Load() {
		n.log(entry)
	}
}

// log serialises writes to the node's optional log sinks.
func (n *Node) log(entry logfmt.Entry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.LogWriter != nil {
		_ = n.cfg.LogWriter.Write(entry)
	}
	if n.recording.Load() {
		n.entries = append(n.entries, entry)
	}
}

// Network is a set of nodes sharing one origin site, with clients pinned to
// nodes by hashing their IP (CoDeeN clients similarly stick to a nearby
// proxy).
type Network struct {
	nodes []*Node
	tel   *telemetry.ServeMetrics

	// Fleet state (nil until EnableReplication): the partition ring and
	// replica count that route clients, the in-process replication mesh, and
	// name → node lookups.
	ring     *fleet.Ring
	mesh     *fleet.Mesh
	byName   map[string]*Node
	index    map[string]int
	replicas int
}

// NewNetwork builds a network of numNodes nodes, each with its own detector
// (sharing the configuration) and optional policy/captcha services cloned
// per node.
//
// The fleet shares one telemetry registry: serve-path histograms aggregate
// across nodes (one fleet-wide latency distribution per stage), while each
// engine's, policy ladder's and node's counters carry a node label so a
// single scrape of Network.WriteMetrics tells the nodes apart.
func NewNetwork(numNodes int, site *webmodel.Site, detCfg core.Config, withPolicy bool, seed uint64) *Network {
	if numNodes <= 0 {
		numNodes = 1
	}
	src := rng.New(seed).Fork("cdn-network")
	net := &Network{tel: telemetry.NewServeMetrics(nil)}
	for i := 0; i < numNodes; i++ {
		cfg := detCfg
		cfg.Seed = src.Uint64()
		cfg.Telemetry = net.tel
		cfg.TelemetryNode = nodeName(i)
		var pol *policy.Engine
		if withPolicy {
			pol = policy.NewEngine(policy.Config{Clock: detCfg.Clock})
			pol.RegisterMetrics(net.tel.Registry(), nodeName(i))
		}
		node := NewNode(NodeConfig{
			Name:    nodeName(i),
			Site:    site,
			Engine:  core.New(cfg),
			Policy:  pol,
			Captcha: captcha.NewService(captcha.Config{Seed: src.Uint64(), Clock: detCfg.Clock}),
		})
		node.RegisterMetrics(net.tel.Registry())
		net.nodes = append(net.nodes, node)
	}
	return net
}

// Telemetry returns the fleet's shared serve-path instruments.
func (n *Network) Telemetry() *telemetry.ServeMetrics { return n.tel }

// WriteMetrics renders the whole fleet's metrics — shared stage histograms
// plus every node's labelled counters and gauges — in the Prometheus text
// format, without pausing any node.
func (n *Network) WriteMetrics(w io.Writer) error {
	return n.tel.Registry().WritePrometheus(w)
}

func nodeName(i int) string {
	return "codeen-" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

// Nodes returns the network's nodes.
func (n *Network) Nodes() []*Node { return n.nodes }

// NodeFor returns the node serving the given client IP. In fleet mode the
// client routes to its session partition's first live owner — so a client
// whose node dies fails over to the replica that can serve it degraded and
// recover its evidence.
func (n *Network) NodeFor(ip string) *Node {
	return n.nodes[n.routeIndex(ip)]
}

// nodeIndex hashes a client IP onto a node (FNV-1a), pinning each client to
// one proxy the way CoDeeN clients stick to a nearby node.
func (n *Network) nodeIndex(ip string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(ip); i++ {
		h ^= uint64(ip[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(n.nodes)))
}

// Do implements agents.Client by routing to the client's node.
func (n *Network) Do(req agents.Request) agents.Response {
	return n.NodeFor(req.IP).Do(req)
}

// DriveParallel replays a batch of requests across the network with one
// worker goroutine per node, so multi-node simulations actually exercise the
// sharded engine layer from many cores at once. Requests are partitioned by
// the same IP pinning as Do, which preserves each client's request order;
// only cross-client interleaving differs between runs, so per-node and
// aggregate statistics match the serial driver. Experiments that need
// fully reproducible event interleaving should keep driving the network
// serially on the virtual clock (internal/workload).
func (n *Network) DriveParallel(reqs []agents.Request) {
	if len(reqs) == 0 || len(n.nodes) == 0 {
		return
	}
	buckets := make([][]agents.Request, len(n.nodes))
	for _, req := range reqs {
		i := n.routeIndex(req.IP)
		buckets[i] = append(buckets[i], req)
	}
	var wg sync.WaitGroup
	for i := range buckets {
		if len(buckets[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(node *Node, batch []agents.Request) {
			defer wg.Done()
			node.DoBatch(batch, nil)
		}(n.nodes[i], buckets[i])
	}
	wg.Wait()
}

// SetModel hot-swaps a (re)trained AdaBoost model onto every node's engine.
// The swap is a single atomic store per node — serving continues uninterrupted,
// which is how the online training loop publishes models to a live fleet.
// In fleet mode the swap is also published through the replication plane, so
// a node that is down right now backfills the model via anti-entropy when it
// comes back.
func (n *Network) SetModel(m *adaboost.Model) {
	var publisher *Node
	for _, node := range n.nodes {
		if node.down.Load() {
			continue
		}
		node.Engine().SetModel(m)
		if publisher == nil {
			publisher = node
		}
	}
	if publisher != nil && publisher.rep != nil {
		publisher.rep.PublishModel(m)
	}
}

// FlushSessions ends all sessions on all live nodes and returns them. A down
// node is skipped rather than failing the flush; FlushSessionsDetail reports
// which ones were.
func (n *Network) FlushSessions() []core.ClassifiedSession {
	out, _ := n.FlushSessionsDetail()
	return out
}

// TotalStats aggregates node counters. A down node contributes its last
// known good snapshot (see CollectStats) instead of breaking the rollup.
func (n *Network) TotalStats() NodeStats {
	total, _ := n.CollectStats()
	return total
}

// EngineStats aggregates detection-engine counters across nodes.
func (n *Network) EngineStats() core.Stats {
	var total core.Stats
	for _, node := range n.nodes {
		s := node.Engine().Stats()
		total.PagesInstrumented += s.PagesInstrumented
		total.OriginalBytes += s.OriginalBytes
		total.AddedBytes += s.AddedBytes
		total.MouseBeacons += s.MouseBeacons
		total.DecoyBeacons += s.DecoyBeacons
		total.ReplayBeacons += s.ReplayBeacons
		total.UnknownBeacons += s.UnknownBeacons
		total.ExecBeacons += s.ExecBeacons
		total.CSSBeacons += s.CSSBeacons
		total.ScriptServes += s.ScriptServes
		total.HiddenHits += s.HiddenHits
		total.UAReports += s.UAReports
		total.UAMismatches += s.UAMismatches
	}
	return total
}

// ComplaintModel converts monthly robot-abuse volume into abuse complaints,
// reproducing the causal structure behind Figure 3: operators of victim
// sites complain in proportion to the un-throttled robot traffic that
// reaches them, with diminishing returns (one very abusive robot produces a
// bounded number of complaints). Complaint counts are drawn from a Poisson
// distribution so month-to-month variation resembles the published curve.
type ComplaintModel struct {
	// RequestsPerComplaint is the expected un-throttled robot request volume
	// that generates one complaint.
	RequestsPerComplaint float64
	// BaselineHuman is the expected number of complaints per month caused by
	// non-robot issues (hackers exploiting PHP/SQL holes, in the paper's
	// words); these do not go away when robot detection is deployed.
	BaselineHuman float64
	// Src drives the Poisson draws.
	Src *rng.Source
}

// MonthlyComplaints is one month's outcome.
type MonthlyComplaints struct {
	// Month labels the month (e.g. "Jan").
	Month string
	// Robot is the number of robot-related complaints.
	Robot int
	// Human is the number of complaints attributable to human abusers.
	Human int
}

// Total returns robot + human complaints.
func (m MonthlyComplaints) Total() int { return m.Robot + m.Human }

// Complaints maps allowed robot request volumes to complaint counts.
func (cm ComplaintModel) Complaints(months []string, allowedRobotRequests []float64) []MonthlyComplaints {
	src := cm.Src
	if src == nil {
		src = rng.New(2005)
	}
	rpc := cm.RequestsPerComplaint
	if rpc <= 0 {
		rpc = 50000
	}
	out := make([]MonthlyComplaints, 0, len(months))
	for i, m := range months {
		var vol float64
		if i < len(allowedRobotRequests) {
			vol = allowedRobotRequests[i]
		}
		robot := src.Poisson(vol / rpc)
		human := src.Poisson(cm.BaselineHuman)
		out = append(out, MonthlyComplaints{Month: m, Robot: robot, Human: human})
	}
	return out
}

// Months2005 is the Figure 3 x axis: the months of 2005 plus January 2006.
var Months2005 = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec", "Jan06"}

// DeploymentTimeline models the operational history behind Figure 3 and
// returns the allowed (un-throttled) robot request volume per month.
//
// The network grows from smallNodes to largeNodes in expansionMonth
// (CoDeeN's February 2005 expansion from 100 US nodes to 300+ worldwide);
// robot traffic grows with the deployment and with robots discovering the
// open proxies (a ramp peaking mid-year); the browser-test detector plus
// aggressive rate limiting deploy in detectionMonth (late August 2005) and
// cut the allowed robot volume by blockedFraction; mouse-movement detection
// deploys in mouseMonth (January 2006) and cuts it further.
func DeploymentTimeline(smallNodes, largeNodes int, expansionMonth, detectionMonth, mouseMonth int,
	requestsPerNodePerMonth float64, robotShare, blockedFraction, mouseBlockedFraction float64) []float64 {
	out := make([]float64, len(Months2005))
	for i := range out {
		nodes := smallNodes
		if i >= expansionMonth {
			nodes = largeNodes
		}
		// Robots discover the expanded network gradually and then saturate.
		discovery := 1.0
		if i >= expansionMonth {
			ramp := float64(i-expansionMonth+1) / 4.0
			if ramp > 2.0 {
				ramp = 2.0
			}
			discovery = ramp
		}
		volume := float64(nodes) * requestsPerNodePerMonth * robotShare * discovery
		if i >= detectionMonth {
			volume *= 1 - blockedFraction
		}
		if i >= mouseMonth {
			volume *= 1 - mouseBlockedFraction
		}
		out[i] = volume
	}
	return out
}
