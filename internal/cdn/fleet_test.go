package cdn

import (
	"sync"
	"testing"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/agents"
	"botdetect/internal/chaos"
	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/shard"
	"botdetect/internal/webmodel"
)

// fleetNet builds a replicated network with fast replication intervals.
func fleetNet(t *testing.T, numNodes int, intercept *chaos.Links) (*Network, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(time.Time{})
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 11, NumPages: 20})
	net := NewNetwork(numNodes, site, core.Config{Seed: 7, Clock: vc}, true, 99)
	cfg := FleetConfig{
		HeartbeatInterval:   2 * time.Millisecond,
		AntiEntropyInterval: 5 * time.Millisecond,
		RetryBackoff:        time.Millisecond,
		MaxBackoff:          5 * time.Millisecond,
		SendPatience:        50 * time.Millisecond,
		Seed:                42,
	}
	if intercept != nil {
		cfg.Intercept = intercept.Intercept
	}
	net.EnableReplication(cfg)
	t.Cleanup(net.StopReplication)
	waitCond(t, 5*time.Second, "fleet heartbeats to settle", func() bool {
		for _, nd := range net.Nodes() {
			if nd.Replicator().UpPeers() != numNodes-1 {
				return false
			}
		}
		return true
	})
	return net, vc
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetVerdictReplication: a Definite verdict derived on one node's
// engine (CAPTCHA pass) lands in every peer's remote detector stage, tagged
// with its origin.
func TestFleetVerdictReplication(t *testing.T) {
	net, vc := fleetNet(t, 3, nil)
	ip, ua := "10.1.0.1", "Firefox"
	key := session.Key{IP: ip, UserAgent: ua}
	home := net.NodeFor(ip)

	net.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: agents.CaptchaSolvePath})
	net.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: "/"})

	waitCond(t, 5*time.Second, "verdict to reach every peer", func() bool {
		for _, nd := range net.Nodes() {
			if nd == home {
				continue
			}
			v, ok := nd.Engine().Remote().Get(key)
			if !ok || v.Class != detect.ClassHuman || v.Confidence != detect.Definite {
				return false
			}
			if v.Origin != home.Name() {
				t.Fatalf("replicated verdict origin = %q, want %q", v.Origin, home.Name())
			}
		}
		return true
	})
}

// TestFleetBlockReplication: a session blocked by one node's policy ladder is
// refused everywhere via the replicated block list's fast path.
func TestFleetBlockReplication(t *testing.T) {
	net, vc := fleetNet(t, 3, nil)
	ip, ua := "10.2.0.2", "BadBot"
	key := session.Key{IP: ip, UserAgent: ua}
	abused := net.Nodes()[0]

	blocked := false
	for i := 0; i < 120 && !blocked; i++ {
		resp := abused.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET",
			Path: "/cgi-bin/app0.cgi?x=" + string(rune('a'+i%26))})
		vc.Advance(100 * time.Millisecond)
		blocked = resp.Status == 403
	}
	if !blocked {
		t.Fatalf("abusive session never blocked at its node")
	}
	waitCond(t, 5*time.Second, "block to replicate", func() bool {
		for _, nd := range net.Nodes() {
			if nd.cfg.Policy == nil || !nd.cfg.Policy.IsBlocked(key) {
				return false
			}
		}
		return true
	})
	// Every node now refuses the session on the lock-free fast path, even the
	// ones that never tracked it.
	for _, nd := range net.Nodes() {
		if nd == abused {
			continue
		}
		resp := nd.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: "/"})
		if resp.Status != 403 {
			t.Fatalf("node %s served a fleet-blocked session: %d", nd.Name(), resp.Status)
		}
		if nd.Stats().FleetBlocked == 0 {
			t.Fatalf("node %s fast-path counter not incremented", nd.Name())
		}
	}
}

// TestFleetModelPublication: SetModel reaches every live engine and backfills
// a node that was down during the publish.
func TestFleetModelPublication(t *testing.T) {
	net, _ := fleetNet(t, 3, nil)
	down := net.Nodes()[2]
	down.Crash()
	m := &adaboost.Model{TrainingError: 0.125}
	net.SetModel(m)
	for _, nd := range net.Nodes()[:2] {
		if nd.Engine().Model() != m {
			t.Fatalf("node %s did not get the model synchronously", nd.Name())
		}
	}
	down.Restart()
	waitCond(t, 5*time.Second, "restarted node to backfill the model", func() bool {
		got := down.Engine().Model()
		return got != nil && got.TrainingError == m.TrainingError
	})
}

// TestFailoverDegradedServing: when a session's primary owner dies, the
// network routes the client to the replica, which serves immediately —
// degraded-instrumented, never blocking on the dead peer.
func TestFailoverDegradedServing(t *testing.T) {
	net, vc := fleetNet(t, 3, nil)
	ip, ua := "10.3.0.3", "Firefox"
	primary := net.NodeByName(net.Ring().Primary(shard.HashString(ip)))
	if net.NodeFor(ip) != primary {
		t.Fatalf("fleet routing should pick the ring primary while it is up")
	}
	primary.Crash()

	if resp := primary.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: "/"}); resp.Status != 503 {
		t.Fatalf("crashed node answered %d, want 503", resp.Status)
	}
	replica := net.NodeFor(ip)
	if replica == primary {
		t.Fatalf("routing still points at the dead primary")
	}
	start := time.Now()
	resp := net.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: "/"})
	if resp.Status != 200 {
		t.Fatalf("failover serve status = %d", resp.Status)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("failover serve blocked for %v", elapsed)
	}
	if replica.Stats().FailoverDegraded == 0 {
		t.Fatalf("replica did not record degraded failover serving; stats=%+v", replica.Stats())
	}
	if primary.Stats().Unavailable == 0 {
		t.Fatalf("crashed node did not count the refused request")
	}
}

// TestDrainHandsOffSessions: Drain pushes evidence-bearing sessions to a
// surviving replica and the network routes the client there.
func TestDrainHandsOffSessions(t *testing.T) {
	net, vc := fleetNet(t, 3, nil)
	ip, ua := "10.4.0.4", "Firefox"
	key := session.Key{IP: ip, UserAgent: ua}
	home := net.NodeFor(ip)

	net.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: agents.CaptchaSolvePath})
	if snap, ok := home.Engine().Session(key); !ok || !snap.Has(session.SignalCaptcha) {
		t.Fatalf("session evidence missing before drain")
	}

	if handed := home.Drain(2 * time.Second); handed == 0 {
		t.Fatalf("drain handed off no sessions")
	}
	waitCond(t, 5*time.Second, "a replica to adopt the session", func() bool {
		for _, nd := range net.Nodes() {
			if nd == home {
				continue
			}
			if snap, ok := nd.Engine().Session(key); ok && snap.Has(session.SignalCaptcha) {
				return true
			}
		}
		return false
	})
	after := net.NodeFor(ip)
	if after == home {
		t.Fatalf("routing still points at the drained node")
	}
	if resp := net.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET", Path: "/"}); resp.Status != 200 {
		t.Fatalf("post-drain serve status = %d", resp.Status)
	}
}

// TestCollectStatsStaleRollup: a down node contributes its stale-marked last
// snapshot instead of poisoning the fleet rollup.
func TestCollectStatsStaleRollup(t *testing.T) {
	net, vc := fleetNet(t, 3, nil)
	victim := net.Nodes()[1]
	for i := 0; i < 5; i++ {
		victim.Do(agents.Request{Time: vc.Now(), IP: "10.5.0.5", UserAgent: "Firefox", Method: "GET", Path: "/"})
	}
	before := victim.Stats().Requests
	victim.Crash()

	total, rollups := net.CollectStats()
	var vr *NodeRollup
	for i := range rollups {
		if rollups[i].Node == victim.Name() {
			vr = &rollups[i]
		}
	}
	if vr == nil || !vr.Down || !vr.Stale {
		t.Fatalf("victim rollup = %+v, want down+stale", vr)
	}
	if vr.Stats.Requests != before {
		t.Fatalf("stale snapshot requests = %d, want %d", vr.Stats.Requests, before)
	}
	if total.Requests < before {
		t.Fatalf("total %d lost the down node's contribution %d", total.Requests, before)
	}
	// And flushing skips (only) the dead node.
	_, skipped := net.FlushSessionsDetail()
	if len(skipped) != 1 || skipped[0] != victim.Name() {
		t.Fatalf("flush skipped %v, want [%s]", skipped, victim.Name())
	}
}

// TestKillMidPublishLosesNothingAcked: every verdict a crashing node had
// pushed to a peer survives on that peer — loss is bounded by the ack
// watermark (the epoch-lag bound).
func TestKillMidPublishLosesNothingAcked(t *testing.T) {
	net, _ := fleetNet(t, 3, nil)
	origin := net.Nodes()[0]
	rep := origin.Replicator()
	for i := 0; i < 50; i++ {
		rep.PublishVerdict(session.Key{IP: "10.6.0.1", UserAgent: string(rune('a' + i))},
			detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "r"})
	}
	waitCond(t, 5*time.Second, "some acks", func() bool { return rep.MinAckedEpoch() > 0 })
	minAcked := rep.MinAckedEpoch()
	origin.Crash()

	for _, nd := range net.Nodes()[1:] {
		if wm := nd.Replicator().Watermark(origin.Name()); wm < minAcked {
			t.Fatalf("node %s watermark %d < acked %d — acked verdicts lost", nd.Name(), wm, minAcked)
		}
	}
}

// TestFleetChaosHammer drives replication, classification, model rotation,
// message-layer faults and node kills concurrently. Run with -race: the
// assertion is that nothing deadlocks, panics or races, and the serve path
// keeps answering.
func TestFleetChaosHammer(t *testing.T) {
	links := chaos.NewLinks()
	net, vc := fleetNet(t, 3, links)
	faults := chaos.NewNodeFaults()
	for _, nd := range net.Nodes() {
		faults.Register(nd)
	}
	links.SetDelay(200 * time.Microsecond)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Traffic: network-routed humans and direct-to-node bot floods.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w) + 1).Fork("hammer")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ip := "10.9." + string(rune('0'+w)) + "." + string(rune('0'+i%10))
				req := agents.Request{Time: vc.Now(), IP: ip, UserAgent: "UA", Method: "GET", Path: "/cgi-bin/app0.cgi"}
				var resp agents.Response
				if src.Uint64n(2) == 0 {
					resp = net.Do(req)
				} else {
					resp = net.Nodes()[src.Uint64n(3)].Do(req)
				}
				switch resp.Status {
				case 200, 403, 429, 503, 404, 302:
				default:
					t.Errorf("unexpected status %d", resp.Status)
					return
				}
			}
		}(w)
	}
	// Chaos: drops/dups/failures plus crash-restart cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.New(77).Fork("chaos")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			links.DropNext(3)
			links.DupNext(2)
			links.FailNext(2)
			name := net.Nodes()[src.Uint64n(3)].Name()
			if faults.Crash(name) {
				time.Sleep(5 * time.Millisecond)
				faults.Restart(name)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Model rotation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			net.SetModel(&adaboost.Model{})
			time.Sleep(3 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	faults.RestartAll()
	if crashes, restarts := faults.Counts(); crashes == 0 || restarts == 0 {
		t.Fatalf("hammer never exercised node kills (crashes=%d restarts=%d)", crashes, restarts)
	}
}
