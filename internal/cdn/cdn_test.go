package cdn

import (
	"strings"
	"testing"
	"time"

	"botdetect/internal/agents"
	"botdetect/internal/captcha"
	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/policy"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

func testNode(t *testing.T, withPolicy bool) (*Node, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(time.Time{})
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 1, NumPages: 20})
	det := core.New(core.Config{Seed: 2, Clock: vc, ObfuscateJS: true})
	var pol *policy.Engine
	if withPolicy {
		pol = policy.NewEngine(policy.Config{Clock: vc})
	}
	return NewNode(NodeConfig{
		Name: "codeen-test", Site: site, Engine: det, Policy: pol,
		Captcha: captcha.NewService(captcha.Config{Seed: 3, Clock: vc}), RecordEntries: true,
	}), vc
}

func TestNodeServesAndInstruments(t *testing.T) {
	n, vc := testNode(t, false)
	resp := n.Do(agents.Request{Time: vc.Now(), IP: "10.0.0.1", UserAgent: "Firefox", Method: "GET", Path: "/"})
	if resp.Status != 200 || !strings.Contains(resp.ContentType, "text/html") {
		t.Fatalf("response = %+v", resp)
	}
	if !strings.Contains(string(resp.Body), "/__bd/") {
		t.Fatal("page not instrumented")
	}
	if n.Stats().Requests != 1 || n.Stats().OriginBytes == 0 {
		t.Fatalf("stats = %+v", n.Stats())
	}
	if len(n.Entries()) != 1 {
		t.Fatalf("entries = %d", len(n.Entries()))
	}
	if n.Name() != "codeen-test" || n.Engine() == nil {
		t.Fatal("accessors broken")
	}
}

func TestNodeBeaconHandling(t *testing.T) {
	n, vc := testNode(t, false)
	page := n.Do(agents.Request{Time: vc.Now(), IP: "10.0.0.2", UserAgent: "Firefox", Method: "GET", Path: "/"})
	// Find the injected CSS path in the page and fetch it.
	body := string(page.Body)
	idx := strings.Index(body, "/__bd/")
	end := strings.Index(body[idx:], ".css")
	cssPath := body[idx : idx+end+4]
	resp := n.Do(agents.Request{Time: vc.Now(), IP: "10.0.0.2", UserAgent: "Firefox", Method: "GET", Path: cssPath})
	if resp.Status != 200 || resp.ContentType != "text/css" {
		t.Fatalf("css beacon response = %+v", resp)
	}
	if n.Stats().InstrumentationHits != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
	snap, _ := n.Engine().Session(session.Key{IP: "10.0.0.2", UserAgent: "Firefox"})
	if !snap.Has(session.SignalCSS) {
		t.Fatal("CSS signal not recorded")
	}
}

func TestNodeCaptchaSolvePath(t *testing.T) {
	n, vc := testNode(t, false)
	resp := n.Do(agents.Request{Time: vc.Now(), IP: "10.0.0.3", UserAgent: "Firefox", Method: "GET", Path: agents.CaptchaSolvePath})
	if resp.Status != 200 {
		t.Fatalf("captcha solve status = %d", resp.Status)
	}
	if n.Stats().CaptchaSolved != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
	snap, _ := n.Engine().Session(session.Key{IP: "10.0.0.3", UserAgent: "Firefox"})
	if !snap.Has(session.SignalCaptcha) {
		t.Fatal("captcha signal not recorded")
	}
}

func TestNodePolicyBlocksAbusiveRobot(t *testing.T) {
	n, vc := testNode(t, true)
	ip, ua := "10.0.0.4", "Firefox"
	blocked := 0
	for i := 0; i < 80; i++ {
		resp := n.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: ua, Method: "GET",
			Path: "/cgi-bin/app0.cgi?click=" + string(rune('a'+i%26))})
		vc.Advance(100 * time.Millisecond)
		if resp.Status == 403 {
			blocked++
		}
	}
	if blocked == 0 {
		t.Fatalf("abusive robot never blocked; stats=%+v", n.Stats())
	}
	if n.Stats().BlockedRequests == 0 {
		t.Fatal("blocked counter not incremented")
	}
}

func TestNewNodePanicsWithoutDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNode(NodeConfig{})
}

func TestNetworkRoutingStableAndComplete(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 5, NumPages: 10})
	net := NewNetwork(5, site, core.Config{Clock: vc}, false, 7)
	if len(net.Nodes()) != 5 {
		t.Fatalf("nodes = %d", len(net.Nodes()))
	}
	a := net.NodeFor("10.1.2.3")
	b := net.NodeFor("10.1.2.3")
	if a != b {
		t.Fatal("client not pinned to one node")
	}
	// Different IPs spread over multiple nodes.
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[net.NodeFor(string(rune('a'+i%26))+"."+string(rune('0'+i%10))).Name()] = true
	}
	if len(seen) < 2 {
		t.Fatal("hashing does not spread clients across nodes")
	}
	// Do routes to the pinned node and still works end to end.
	resp := net.Do(agents.Request{Time: vc.Now(), IP: "10.1.2.3", UserAgent: "UA", Method: "GET", Path: "/"})
	if resp.Status != 200 {
		t.Fatalf("network Do status = %d", resp.Status)
	}
	if net.TotalStats().Requests != 1 {
		t.Fatalf("total stats = %+v", net.TotalStats())
	}
}

func TestNetworkFlushAndEngineStats(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 9, NumPages: 10})
	net := NewNetwork(3, site, core.Config{Clock: vc}, false, 11)
	for i := 0; i < 30; i++ {
		ip := "10.9.0." + string(rune('0'+i%10))
		net.Do(agents.Request{Time: vc.Now(), IP: ip, UserAgent: "UA", Method: "GET", Path: "/"})
	}
	stats := net.EngineStats()
	if stats.PagesInstrumented != 30 {
		t.Fatalf("PagesInstrumented = %d", stats.PagesInstrumented)
	}
	sessions := net.FlushSessions()
	if len(sessions) != 10 {
		t.Fatalf("flushed sessions = %d, want 10 distinct keys", len(sessions))
	}
}

func TestComplaintModelShape(t *testing.T) {
	// Volumes: high before detection, low after.
	volumes := DeploymentTimeline(100, 300, 1, 8, 12, 2.0e6, 0.5, 0.9, 0.8)
	if len(volumes) != len(Months2005) {
		t.Fatalf("timeline length = %d", len(volumes))
	}
	// Volume grows after expansion and drops sharply after detection.
	if volumes[0] >= volumes[6] {
		t.Fatalf("volume should grow after expansion: Jan=%f Jul=%f", volumes[0], volumes[6])
	}
	if volumes[9] >= volumes[6]*0.5 {
		t.Fatalf("volume should drop after detection: Jul=%f Oct=%f", volumes[6], volumes[9])
	}
	if volumes[12] >= volumes[9] {
		t.Fatalf("volume should drop again after mouse detection: Oct=%f Jan06=%f", volumes[9], volumes[12])
	}

	cm := ComplaintModel{RequestsPerComplaint: 1e6, BaselineHuman: 0.5, Src: rng.New(42)}
	months := cm.Complaints(Months2005, volumes)
	if len(months) != len(Months2005) {
		t.Fatalf("months = %d", len(months))
	}
	peak := 0
	for _, m := range months[:8] {
		if m.Robot > peak {
			peak = m.Robot
		}
	}
	var after int
	for _, m := range months[9:] {
		after += m.Robot
	}
	if peak == 0 {
		t.Fatal("no robot complaints before detection deployment")
	}
	if after > peak {
		t.Fatalf("complaints did not drop after deployment: peak=%d after-sum=%d", peak, after)
	}
	if months[0].Total() != months[0].Robot+months[0].Human {
		t.Fatal("Total() broken")
	}
}

func TestComplaintModelDefaults(t *testing.T) {
	cm := ComplaintModel{}
	months := cm.Complaints([]string{"Jan", "Feb"}, []float64{0})
	if len(months) != 2 {
		t.Fatalf("months = %d", len(months))
	}
	if months[1].Robot != 0 {
		t.Fatal("missing volume entries should yield zero complaints")
	}
}

func TestNodeNameGenerator(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		seen[nodeName(i)] = true
	}
	if len(seen) < 40 {
		t.Fatalf("node names collide too much: %d distinct of 50", len(seen))
	}
}

func parallelTestRequests(netw *Network, count int) []agents.Request {
	src := rng.New(77)
	at := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	reqs := make([]agents.Request, 0, count)
	for i := 0; i < count; i++ {
		ip := "10." + string(rune('0'+i%10)) + ".0." + string(rune('1'+i%9))
		path := "/"
		switch src.Intn(3) {
		case 1:
			path = "/page1.html"
		case 2:
			path = "/img/photo0_0.jpg"
		}
		reqs = append(reqs, agents.Request{
			Time: at.Add(time.Duration(i) * time.Second), IP: ip,
			UserAgent: "Firefox/1.5", Method: "GET", Path: path,
		})
	}
	return reqs
}

func TestDriveParallelMatchesSerial(t *testing.T) {
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 5, NumPages: 20})
	cfg := core.Config{Seed: 6}
	serial := NewNetwork(4, site, cfg, false, 99)
	parallel := NewNetwork(4, site, cfg, false, 99)

	reqs := parallelTestRequests(serial, 400)
	for _, req := range reqs {
		serial.Do(req)
	}
	parallel.DriveParallel(reqs)

	ws, wp := serial.TotalStats(), parallel.TotalStats()
	if ws != wp {
		t.Fatalf("stats diverged: serial %+v parallel %+v", ws, wp)
	}
	// Per-node engines see identical per-client request streams, so the
	// session populations must match node by node.
	for i := range serial.Nodes() {
		s, p := serial.Nodes()[i].Engine().SessionCount(), parallel.Nodes()[i].Engine().SessionCount()
		if s != p {
			t.Fatalf("node %d session count: serial %d parallel %d", i, s, p)
		}
	}
	if len(serial.FlushSessions()) != len(parallel.FlushSessions()) {
		t.Fatal("flushed session counts diverged")
	}
}

func TestDriveParallelConcurrentStats(t *testing.T) {
	// Hammer one network from the parallel driver while readers poll the
	// atomic counters; run under -race in CI this doubles as the data-race
	// proof for the lock-free NodeStats.
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 7, NumPages: 10})
	netw := NewNetwork(8, site, core.Config{Seed: 8}, true, 13)
	reqs := parallelTestRequests(netw, 600)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = netw.TotalStats()
			_ = netw.EngineStats()
		}
	}()
	netw.DriveParallel(reqs)
	<-done

	if netw.TotalStats().Requests != int64(len(reqs)) {
		t.Fatalf("requests = %d, want %d", netw.TotalStats().Requests, len(reqs))
	}
}

func TestDriveParallelEmpty(t *testing.T) {
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 9, NumPages: 5})
	netw := NewNetwork(2, site, core.Config{Seed: 10}, false, 1)
	netw.DriveParallel(nil)
	if got := netw.TotalStats().Requests; got != 0 {
		t.Fatalf("empty drive served %d", got)
	}
}

// TestDoBatchMatchesDo proves the batched prepare pipeline is observationally
// identical to per-request serving: two nodes with the same seed, one driven
// request by request, one through DoBatch over a mixed stream (page runs,
// non-HTML objects, beacons, several clients).
func TestDoBatchMatchesDo(t *testing.T) {
	one, vc := testNode(t, false)
	bat, _ := testNode(t, false)

	var reqs []agents.Request
	src := rng.New(123)
	for i := 0; i < 120; i++ {
		ip := "10.20.0." + string(rune('1'+i%4))
		path := "/"
		switch src.Intn(4) {
		case 1:
			path = "/page1.html"
		case 2:
			path = "/page2.html"
		case 3:
			path = "/img/photo0_0.jpg"
		}
		reqs = append(reqs, agents.Request{Time: vc.Now(), IP: ip, UserAgent: "Firefox/1.5", Method: "GET", Path: path})
	}

	var want []agents.Response
	for _, req := range reqs {
		want = append(want, one.Do(req))
	}
	got := bat.DoBatch(reqs, nil)

	if len(got) != len(want) {
		t.Fatalf("DoBatch returned %d responses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status || got[i].ContentType != want[i].ContentType ||
			string(got[i].Body) != string(want[i].Body) {
			t.Fatalf("request %d (%s): batched response diverged from Do", i, reqs[i].Path)
		}
	}
	if one.Stats() != bat.Stats() {
		t.Fatalf("stats diverged: serial %+v batch %+v", one.Stats(), bat.Stats())
	}
	es, eb := one.Engine().Stats(), bat.Engine().Stats()
	if es != eb {
		t.Fatalf("engine stats diverged: serial %+v batch %+v", es, eb)
	}
	// Every script a batched prepare stored must be downloadable, exactly as
	// on the serial node.
	respOne := one.Do(agents.Request{Time: vc.Now(), IP: "10.20.0.1", UserAgent: "Firefox/1.5", Method: "GET", Path: "/"})
	respBat := bat.Do(agents.Request{Time: vc.Now(), IP: "10.20.0.1", UserAgent: "Firefox/1.5", Method: "GET", Path: "/"})
	if string(respOne.Body) != string(respBat.Body) {
		t.Fatal("post-batch page views diverged")
	}
}
