package features

import (
	"strings"
	"testing"
)

func TestNamesAndDescriptionsComplete(t *testing.T) {
	if len(Names) != NumAttributes || len(Descriptions) != NumAttributes {
		t.Fatal("names/descriptions length mismatch")
	}
	for i := 0; i < NumAttributes; i++ {
		if Names[i] == "" || Descriptions[i] == "" {
			t.Fatalf("attribute %d missing name or description", i)
		}
	}
	// The three attributes the paper highlights as most informative exist.
	joined := strings.Join(Names[:], "|")
	for _, want := range []string{"RESPCODE 3XX %", "REFERRER %", "UNSEEN REFERRER %"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing attribute %q", want)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{}
	v[HeadPct] = 0.5
	s := v.String()
	if !strings.Contains(s, "HEAD % = 0.500") && !strings.Contains(s, "HEAD %=0.500") {
		t.Fatalf("String = %q", s)
	}
}

func TestVectorValidate(t *testing.T) {
	var v Vector
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	v[3] = 1.5
	if err := v.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	v[3] = -0.1
	if err := v.Validate(); err == nil {
		t.Fatal("expected validation error for negative")
	}
}
