package features

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"botdetect/internal/logfmt"
	"botdetect/internal/session"
)

func TestFromCountsZero(t *testing.T) {
	v := FromCounts(session.Counts{})
	for i, val := range v {
		if val != 0 {
			t.Fatalf("attribute %d = %f for empty counts", i, val)
		}
	}
}

func TestFromCountsValues(t *testing.T) {
	c := session.Counts{
		Total: 10, Head: 1, HTML: 4, Image: 3, CGI: 2, Favicon: 1,
		Embedded: 4, WithReferrer: 6, UnseenReferrer: 2, LinkFollowing: 4,
		Status2xx: 7, Status3xx: 1, Status4xx: 2,
	}
	v := FromCounts(c)
	want := map[int]float64{
		HeadPct: 0.1, HTMLPct: 0.4, ImagePct: 0.3, CGIPct: 0.2, FaviconPct: 0.1,
		EmbeddedObjPct: 0.4, ReferrerPct: 0.6, UnseenReferrerPct: 0.2, LinkFollowingPct: 0.4,
		Resp2xxPct: 0.7, Resp3xxPct: 0.1, Resp4xxPct: 0.2,
	}
	for idx, w := range want {
		if math.Abs(v[idx]-w) > 1e-9 {
			t.Fatalf("attribute %s = %f, want %f", Names[idx], v[idx], w)
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNamesAndDescriptionsComplete(t *testing.T) {
	if len(Names) != NumAttributes || len(Descriptions) != NumAttributes {
		t.Fatal("names/descriptions length mismatch")
	}
	for i := 0; i < NumAttributes; i++ {
		if Names[i] == "" || Descriptions[i] == "" {
			t.Fatalf("attribute %d missing name or description", i)
		}
	}
	// The three attributes the paper highlights as most informative exist.
	joined := strings.Join(Names[:], "|")
	for _, want := range []string{"RESPCODE 3XX %", "REFERRER %", "UNSEEN REFERRER %"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing attribute %q", want)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{}
	v[HeadPct] = 0.5
	s := v.String()
	if !strings.Contains(s, "HEAD % = 0.500") && !strings.Contains(s, "HEAD %=0.500") {
		t.Fatalf("String = %q", s)
	}
}

func TestVectorValidate(t *testing.T) {
	var v Vector
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	v[3] = 1.5
	if err := v.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	v[3] = -0.1
	if err := v.Validate(); err == nil {
		t.Fatal("expected validation error for negative")
	}
}

func entryAt(method, path string, status int, ref string) logfmt.Entry {
	return logfmt.Entry{
		Time: time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC), ClientIP: "1.1.1.1",
		UserAgent: "UA", Method: method, Path: path, Status: status, Referer: ref, Bytes: 100,
	}
}

func TestAccumulatorMatchesTrackerSemantics(t *testing.T) {
	reqs := []logfmt.Entry{
		entryAt("GET", "/index.html", 200, ""),
		entryAt("GET", "/a.css", 200, "http://h/index.html"),
		entryAt("GET", "/b.jpg", 200, "http://h/index.html"),
		entryAt("HEAD", "/index.html", 200, ""),
		entryAt("GET", "/cgi-bin/x.cgi?q=1", 302, "http://elsewhere/page.html"),
		entryAt("GET", "/favicon.ico", 404, ""),
	}
	acc := NewAccumulator(0)
	for _, e := range reqs {
		if !acc.Observe(e) {
			t.Fatal("Observe rejected a request with no limit")
		}
	}
	if acc.Requests() != 6 {
		t.Fatalf("Requests = %d", acc.Requests())
	}
	c := acc.Counts()
	if c.Head != 1 || c.HTML != 2 || c.CGI != 1 || c.Favicon != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.WithReferrer != 3 || c.LinkFollowing != 2 || c.UnseenReferrer != 1 {
		t.Fatalf("referrer counts = %+v", c)
	}
	v := acc.Vector()
	if math.Abs(v[ReferrerPct]-0.5) > 1e-9 {
		t.Fatalf("REFERRER%% = %f", v[ReferrerPct])
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorLimit(t *testing.T) {
	acc := NewAccumulator(3)
	for i := 0; i < 10; i++ {
		acc.Observe(entryAt("GET", "/p.html", 200, ""))
	}
	if acc.Requests() != 3 {
		t.Fatalf("Requests = %d, want 3 (limit)", acc.Requests())
	}
	if acc.Observe(entryAt("GET", "/p.html", 200, "")) {
		t.Fatal("Observe should report false beyond the limit")
	}
}

func TestAccumulatorVsTrackerEquivalence(t *testing.T) {
	// The offline accumulator and the online tracker must produce identical
	// attribute vectors for the same request stream.
	reqs := []logfmt.Entry{
		entryAt("GET", "/index.html", 200, ""),
		entryAt("GET", "/style.css", 200, "http://x/index.html"),
		entryAt("GET", "/p1.html", 200, "http://x/index.html"),
		entryAt("GET", "/img.gif", 200, "http://x/p1.html"),
		entryAt("POST", "/cgi-bin/form.cgi", 500, "http://x/p1.html"),
		entryAt("GET", "/missing.html", 404, "http://other/site.html"),
		entryAt("HEAD", "/p2.html", 200, ""),
		entryAt("GET", "/favicon.ico", 200, ""),
	}
	tracker := session.NewTracker(session.Config{})
	acc := NewAccumulator(0)
	var snap session.Snapshot
	for _, e := range reqs {
		snap = tracker.Observe(e)
		acc.Observe(e)
	}
	vOnline := FromSnapshot(snap)
	vOffline := acc.Vector()
	for i := range vOnline {
		if math.Abs(vOnline[i]-vOffline[i]) > 1e-12 {
			t.Fatalf("attribute %s differs: online %f offline %f", Names[i], vOnline[i], vOffline[i])
		}
	}
}

func TestFromCountsBoundedProperty(t *testing.T) {
	f := func(head, html, img, cgi, ref, unseen, emb, link, s2, s3, s4, fav uint8, extra uint8) bool {
		// Build counts where each category is at most Total.
		total := int64(head) + int64(html) + int64(img) + int64(extra) + 1
		clamp := func(v uint8) int64 {
			x := int64(v)
			if x > total {
				return total
			}
			return x
		}
		c := session.Counts{
			Total: total, Head: clamp(head), HTML: clamp(html), Image: clamp(img), CGI: clamp(cgi),
			WithReferrer: clamp(ref), UnseenReferrer: clamp(unseen), Embedded: clamp(emb),
			LinkFollowing: clamp(link), Status2xx: clamp(s2), Status3xx: clamp(s3), Status4xx: clamp(s4),
			Favicon: clamp(fav),
		}
		return FromCounts(c).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
