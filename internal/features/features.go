// Package features computes the 12 per-session attributes of Table 2, the
// input representation for the machine-learning detector of Section 4.2.
// Each attribute is the percentage (expressed as a fraction in [0, 1]) of a
// session's requests with a given property, computed over the first n
// requests of the session (the paper builds classifiers at n = 20, 40, ...,
// 160).
package features

import (
	"fmt"

	"botdetect/internal/logfmt"
	"botdetect/internal/session"
)

// Index of each attribute in a Vector, in the order of Table 2.
const (
	HeadPct int = iota
	HTMLPct
	ImagePct
	CGIPct
	ReferrerPct
	UnseenReferrerPct
	EmbeddedObjPct
	LinkFollowingPct
	Resp2xxPct
	Resp3xxPct
	Resp4xxPct
	FaviconPct

	// NumAttributes is the number of attributes in a Vector.
	NumAttributes = 12
)

// Names lists the attribute names in Table 2 order.
var Names = [NumAttributes]string{
	"HEAD %",
	"HTML %",
	"IMAGE %",
	"CGI %",
	"REFERRER %",
	"UNSEEN REFERRER %",
	"EMBEDDED OBJ %",
	"LINK FOLLOWING %",
	"RESPCODE 2XX %",
	"RESPCODE 3XX %",
	"RESPCODE 4XX %",
	"FAVICON %",
}

// Descriptions explains each attribute, mirroring Table 2.
var Descriptions = [NumAttributes]string{
	"% of HEAD commands",
	"% of HTML requests",
	"% of Image(content type=image/*)",
	"% of CGI requests",
	"% of requests with referrer",
	"% of requests with unvisited referrer",
	"% of embedded object requests",
	"% of link requests",
	"% of response code 2XX",
	"% of response code 3XX",
	"% of response code 4XX",
	"% of favicon.ico requests",
}

// Vector is one session's attribute vector.
type Vector [NumAttributes]float64

// Example is a labelled attribute vector used for training and evaluation.
type Example struct {
	// X is the attribute vector.
	X Vector
	// Human is the ground-truth label (true = human session).
	Human bool
}

// FromCounts derives the attribute vector from accumulated request counters.
// A session with zero requests yields the zero vector.
func FromCounts(c session.Counts) Vector {
	var v Vector
	if c.Total == 0 {
		return v
	}
	total := float64(c.Total)
	v[HeadPct] = float64(c.Head) / total
	v[HTMLPct] = float64(c.HTML) / total
	v[ImagePct] = float64(c.Image) / total
	v[CGIPct] = float64(c.CGI) / total
	v[ReferrerPct] = float64(c.WithReferrer) / total
	v[UnseenReferrerPct] = float64(c.UnseenReferrer) / total
	v[EmbeddedObjPct] = float64(c.Embedded) / total
	v[LinkFollowingPct] = float64(c.LinkFollowing) / total
	v[Resp2xxPct] = float64(c.Status2xx) / total
	v[Resp3xxPct] = float64(c.Status3xx) / total
	v[Resp4xxPct] = float64(c.Status4xx) / total
	v[FaviconPct] = float64(c.Favicon) / total
	return v
}

// FromSnapshot derives the attribute vector from a session snapshot.
func FromSnapshot(s session.Snapshot) Vector { return FromCounts(s.Counts) }

// Accumulator incrementally computes a session's attribute vector from a
// request stream, optionally truncated to the first Limit requests. It is a
// lightweight re-implementation of the counting in the session tracker for
// use by the offline path (log replay) and the prefix-classifier experiments
// (Figure 4), where the caller controls exactly which requests contribute.
type Accumulator struct {
	// Limit caps the number of requests considered (0 = unlimited).
	Limit int64

	counts    session.Counts
	seenPaths map[string]bool
}

// NewAccumulator creates an Accumulator considering at most limit requests
// (0 for unlimited).
func NewAccumulator(limit int64) *Accumulator {
	return &Accumulator{Limit: limit, seenPaths: make(map[string]bool)}
}

// Observe adds one request if the limit has not been reached. It reports
// whether the request was counted.
func (a *Accumulator) Observe(e logfmt.Entry) bool {
	if a.Limit > 0 && a.counts.Total >= a.Limit {
		return false
	}
	c := &a.counts
	c.Total++
	c.Bytes += e.Bytes
	switch {
	case e.IsHead():
		c.Head++
	case e.Method == "POST" || e.Method == "post":
		c.Post++
	default:
		c.Get++
	}
	if e.IsHTML() {
		c.HTML++
	}
	if e.IsImage() {
		c.Image++
	}
	if e.IsCGI() {
		c.CGI++
	}
	if e.IsFavicon() {
		c.Favicon++
	}
	if e.IsEmbedded() {
		c.Embedded++
	}
	if e.Referer != "" {
		c.WithReferrer++
		if a.seenPaths[refPath(e.Referer)] {
			c.LinkFollowing++
		} else {
			c.UnseenReferrer++
		}
	}
	switch e.StatusClass() {
	case 2:
		c.Status2xx++
	case 3:
		c.Status3xx++
	case 4:
		c.Status4xx++
	case 5:
		c.Status5xx++
	}
	if len(a.seenPaths) < 4096 {
		a.seenPaths[e.PathOnly()] = true
	}
	return true
}

// Requests returns the number of requests counted so far.
func (a *Accumulator) Requests() int64 { return a.counts.Total }

// Counts returns the accumulated counters.
func (a *Accumulator) Counts() session.Counts { return a.counts }

// Vector returns the attribute vector over the counted requests.
func (a *Accumulator) Vector() Vector { return FromCounts(a.counts) }

// refPath reduces a Referer URL to its path (scheme/host stripped, query and
// fragment removed), matching the session tracker's normalisation.
func refPath(ref string) string {
	s := ref
	for i := 0; i+2 < len(s); i++ {
		if s[i] == ':' && s[i+1] == '/' && s[i+2] == '/' {
			s = s[i+3:]
			if j := indexByte(s, '/'); j >= 0 {
				s = s[j:]
			} else {
				s = "/"
			}
			break
		}
	}
	if i := indexByte(s, '?'); i >= 0 {
		s = s[:i]
	}
	if i := indexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		s = "/"
	}
	return s
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// String renders the vector with attribute names, for debugging and reports.
func (v Vector) String() string {
	out := ""
	for i, val := range v {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.3f", Names[i], val)
	}
	return out
}

// Validate reports whether every attribute lies in [0, 1]; attribute vectors
// derived from well-formed counts always do.
func (v Vector) Validate() error {
	for i, val := range v {
		if val < 0 || val > 1 {
			return fmt.Errorf("features: attribute %s = %f out of [0,1]", Names[i], val)
		}
	}
	return nil
}
