// Package features defines the 12 per-session attributes of Table 2, the
// input representation for the machine-learning detector of Section 4.2.
// Each attribute is the percentage (expressed as a fraction in [0, 1]) of a
// session's requests with a given property, computed over the first n
// requests of the session (the paper builds classifiers at n = 20, 40, ...,
// 160).
//
// The package is a leaf: it holds only the vector type, the attribute
// indices and the labelled-example container, so that both the session layer
// (which maintains each session's vector incrementally; see
// session.Counts.Vector) and the decision layer (internal/detect, which
// feeds vectors to the learned model) can depend on it without cycles.
package features

import "fmt"

// Index of each attribute in a Vector, in the order of Table 2.
const (
	HeadPct int = iota
	HTMLPct
	ImagePct
	CGIPct
	ReferrerPct
	UnseenReferrerPct
	EmbeddedObjPct
	LinkFollowingPct
	Resp2xxPct
	Resp3xxPct
	Resp4xxPct
	FaviconPct

	// NumAttributes is the number of attributes in a Vector.
	NumAttributes = 12
)

// Names lists the attribute names in Table 2 order.
var Names = [NumAttributes]string{
	"HEAD %",
	"HTML %",
	"IMAGE %",
	"CGI %",
	"REFERRER %",
	"UNSEEN REFERRER %",
	"EMBEDDED OBJ %",
	"LINK FOLLOWING %",
	"RESPCODE 2XX %",
	"RESPCODE 3XX %",
	"RESPCODE 4XX %",
	"FAVICON %",
}

// Descriptions explains each attribute, mirroring Table 2.
var Descriptions = [NumAttributes]string{
	"% of HEAD commands",
	"% of HTML requests",
	"% of Image(content type=image/*)",
	"% of CGI requests",
	"% of requests with referrer",
	"% of requests with unvisited referrer",
	"% of embedded object requests",
	"% of link requests",
	"% of response code 2XX",
	"% of response code 3XX",
	"% of response code 4XX",
	"% of favicon.ico requests",
}

// Vector is one session's attribute vector.
type Vector [NumAttributes]float64

// Example is a labelled attribute vector used for training and evaluation.
type Example struct {
	// X is the attribute vector.
	X Vector
	// Human is the ground-truth label (true = human session).
	Human bool
}

// String renders the vector with attribute names, for debugging and reports.
func (v Vector) String() string {
	out := ""
	for i, val := range v {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.3f", Names[i], val)
	}
	return out
}

// Validate reports whether every attribute lies in [0, 1]; attribute vectors
// derived from well-formed counts always do.
func (v Vector) Validate() error {
	for i, val := range v {
		if val < 0 || val > 1 {
			return fmt.Errorf("features: attribute %s = %f out of [0,1]", Names[i], val)
		}
	}
	return nil
}
