package adaboost

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"botdetect/internal/features"
	"botdetect/internal/rng"
)

// syntheticExamples builds a linearly separable-ish data set: humans have
// high referrer share and high image share; robots have high HTML share and
// high 4xx share, with noise.
func syntheticExamples(n int, noise float64, seed uint64) []features.Example {
	src := rng.New(seed)
	out := make([]features.Example, 0, n)
	for i := 0; i < n; i++ {
		human := i%2 == 0
		var v features.Vector
		if human {
			v[features.ReferrerPct] = clamp01(0.7 + src.Normal(0, noise))
			v[features.ImagePct] = clamp01(0.5 + src.Normal(0, noise))
			v[features.EmbeddedObjPct] = clamp01(0.6 + src.Normal(0, noise))
			v[features.HTMLPct] = clamp01(0.3 + src.Normal(0, noise))
			v[features.Resp4xxPct] = clamp01(0.02 + src.Normal(0, noise/2))
			v[features.Resp3xxPct] = clamp01(0.08 + src.Normal(0, noise/2))
		} else {
			v[features.ReferrerPct] = clamp01(0.1 + src.Normal(0, noise))
			v[features.ImagePct] = clamp01(0.05 + src.Normal(0, noise))
			v[features.EmbeddedObjPct] = clamp01(0.08 + src.Normal(0, noise))
			v[features.HTMLPct] = clamp01(0.9 + src.Normal(0, noise))
			v[features.Resp4xxPct] = clamp01(0.2 + src.Normal(0, noise/2))
			v[features.Resp3xxPct] = clamp01(0.01 + src.Normal(0, noise/2))
		}
		v[features.Resp2xxPct] = clamp01(1 - v[features.Resp4xxPct] - v[features.Resp3xxPct])
		out = append(out, features.Example{X: v, Human: human})
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err != ErrNoExamples {
		t.Fatalf("empty training error = %v", err)
	}
	oneClass := []features.Example{{Human: true}, {Human: true}}
	if _, err := Train(oneClass, Config{}); err != ErrSingleClass {
		t.Fatalf("single-class error = %v", err)
	}
}

func TestTrainSeparableReachesHighAccuracy(t *testing.T) {
	ex := syntheticExamples(400, 0.05, 1)
	m, err := Train(ex, Config{Rounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(ex); acc < 0.97 {
		t.Fatalf("training accuracy = %f", acc)
	}
	if m.TrainingError > 0.03 {
		t.Fatalf("training error = %f", m.TrainingError)
	}
	if m.Rounds() == 0 || m.Rounds() > 50 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
}

func TestGeneralisationOnHeldOut(t *testing.T) {
	all := syntheticExamples(1000, 0.12, 7)
	train, test := Split(all, 0.5, 99)
	m, err := Train(train, Config{Rounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	accTrain := m.Accuracy(train)
	accTest := m.Accuracy(test)
	if accTest < 0.85 {
		t.Fatalf("test accuracy = %f", accTest)
	}
	if accTrain < accTest-0.05 {
		t.Fatalf("training accuracy (%f) should not be far below test accuracy (%f)", accTrain, accTest)
	}
}

func TestSplitBalancedAndComplete(t *testing.T) {
	all := syntheticExamples(200, 0.05, 3)
	train, test := Split(all, 0.5, 5)
	if len(train)+len(test) != len(all) {
		t.Fatalf("split lost examples: %d + %d != %d", len(train), len(test), len(all))
	}
	count := func(ex []features.Example) (h, r int) {
		for _, e := range ex {
			if e.Human {
				h++
			} else {
				r++
			}
		}
		return
	}
	th, tr := count(train)
	if math.Abs(float64(th-tr)) > 2 {
		t.Fatalf("train split class imbalance: %d humans vs %d robots", th, tr)
	}
	// Extremes.
	tr2, te2 := Split(all, 0, 5)
	if len(tr2) != 0 || len(te2) != len(all) {
		t.Fatal("trainFraction 0 should put everything in test")
	}
	tr3, te3 := Split(all, 1, 5)
	if len(te3) != 0 || len(tr3) != len(all) {
		t.Fatal("trainFraction 1 should put everything in train")
	}
	// Out-of-range fractions clamp.
	tr4, _ := Split(all, -3, 5)
	if len(tr4) != 0 {
		t.Fatal("negative fraction should clamp to 0")
	}
}

func TestSplitDeterministicPerSeed(t *testing.T) {
	all := syntheticExamples(100, 0.1, 11)
	a1, _ := Split(all, 0.5, 42)
	a2, _ := Split(all, 0.5, 42)
	if len(a1) != len(a2) {
		t.Fatal("same-seed splits differ in size")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same-seed splits differ in content")
		}
	}
}

func TestFeatureImportanceIdentifiesInformativeAttributes(t *testing.T) {
	ex := syntheticExamples(600, 0.08, 13)
	m, err := Train(ex, Config{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %f", sum)
	}
	top := m.TopFeatures(4)
	if len(top) != 4 {
		t.Fatalf("TopFeatures length = %d", len(top))
	}
	// The informative attributes in the synthetic data are referrer/html/
	// image/embedded; an uninformative one (HEAD %) must not rank first.
	if top[0] == features.HeadPct || top[0] == features.FaviconPct {
		t.Fatalf("uninformative attribute ranked first: %s", features.Names[top[0]])
	}
	if m.TopFeatures(100)[0] != top[0] {
		t.Fatal("TopFeatures with large k should clamp")
	}
}

func TestDegenerateIdenticalVectors(t *testing.T) {
	ex := []features.Example{
		{Human: true}, {Human: true}, {Human: true}, {Human: false},
	}
	m, err := Train(ex, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	// With identical vectors the model falls back to the majority class.
	if !m.Predict(features.Vector{}) {
		t.Fatal("majority-class fallback should predict human")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &Model{Stumps: []Stump{{Feature: 0, Threshold: 0.5, Polarity: 1}}, Alphas: []float64{1}}
	if m.Accuracy(nil) != 0 {
		t.Fatal("accuracy of empty set should be 0")
	}
}

func TestStumpPredictPolarity(t *testing.T) {
	var x features.Vector
	x[2] = 0.8
	sPos := Stump{Feature: 2, Threshold: 0.5, Polarity: 1}
	sNeg := Stump{Feature: 2, Threshold: 0.5, Polarity: -1}
	if sPos.predict(x) != 1 || sNeg.predict(x) != -1 {
		t.Fatal("polarity semantics wrong")
	}
	x[2] = 0.2
	if sPos.predict(x) != -1 || sNeg.predict(x) != 1 {
		t.Fatal("polarity semantics wrong below threshold")
	}
}

func TestModelString(t *testing.T) {
	ex := syntheticExamples(50, 0.05, 17)
	m, _ := Train(ex, Config{Rounds: 5})
	if !strings.Contains(m.String(), "adaboost.Model") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMoreRoundsNeverHurtTrainingAccuracyMuch(t *testing.T) {
	ex := syntheticExamples(300, 0.15, 23)
	m10, err := Train(ex, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	m100, err := Train(ex, Config{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m100.Accuracy(ex)+1e-9 < m10.Accuracy(ex)-0.02 {
		t.Fatalf("more rounds reduced training accuracy: %f vs %f", m100.Accuracy(ex), m10.Accuracy(ex))
	}
}

func TestAlphasPositiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		ex := syntheticExamples(100, 0.2, seed)
		m, err := Train(ex, Config{Rounds: 30})
		if err != nil {
			return false
		}
		for _, a := range m.Alphas {
			// Each selected weak learner must beat chance, so alpha > 0.
			if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
				return false
			}
		}
		return len(m.Alphas) == len(m.Stumps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictConsistentWithScore(t *testing.T) {
	ex := syntheticExamples(200, 0.1, 29)
	m, _ := Train(ex, Config{Rounds: 40})
	for _, e := range ex {
		if m.Predict(e.X) != (m.Score(e.X) > 0) {
			t.Fatal("Predict and Score disagree")
		}
	}
}

// goldenExamples builds a deterministic, overlapping, label-noised training
// set: hard enough that boosting runs its full budget of rounds, so the
// golden fingerprint below covers the whole stump/alpha sequence.
func goldenExamples(n int, seed uint64) []features.Example {
	src := rng.New(seed)
	out := make([]features.Example, 0, n)
	for i := 0; i < n; i++ {
		human := i%2 == 0
		var v features.Vector
		if human {
			v[features.ReferrerPct] = 0.35 + 0.5*src.Float64()
			v[features.EmbeddedObjPct] = 0.3 + 0.5*src.Float64()
			v[features.HTMLPct] = 0.2 + 0.4*src.Float64()
			v[features.Resp2xxPct] = 0.6 + 0.4*src.Float64()
		} else {
			v[features.ReferrerPct] = 0.1 + 0.5*src.Float64()
			v[features.HTMLPct] = 0.4 + 0.5*src.Float64()
			v[features.Resp3xxPct] = 0.4 * src.Float64()
			v[features.UnseenReferrerPct] = 0.3 + 0.6*src.Float64()
			v[features.Resp2xxPct] = 0.4 + 0.5*src.Float64()
		}
		v[features.CGIPct] = 0.3 * src.Float64()
		if src.Float64() < 0.08 {
			human = !human // label noise keeps boosting working for many rounds
		}
		out = append(out, features.Example{X: v, Human: human})
	}
	return out
}

// modelFingerprint hashes the full stump/alpha sequence and the training
// error into one value, so any drift in training is caught.
func modelFingerprint(m *Model) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) { binary.LittleEndian.PutUint64(buf[:], u); h.Write(buf[:]) }
	for i, st := range m.Stumps {
		put(uint64(st.Feature))
		put(math.Float64bits(st.Threshold))
		put(uint64(int64(st.Polarity)))
		put(math.Float64bits(m.Alphas[i]))
	}
	put(math.Float64bits(m.TrainingError))
	return h.Sum64()
}

// goldenFingerprint pins Train's output on the fixed seed. If an
// intentional algorithm change shifts it, re-derive the constant with the
// printf in the failure message — but know that every retrain-loop
// deployment will re-fit different models from identical outcomes across
// this change.
const goldenFingerprint = 0x549b9fd48bff3131

// TestTrainDeterministicGolden guards the online retrain loop: a fixed seed
// must yield bit-identical stumps, alphas and training error, run to run and
// against the recorded golden value. Map iteration or float reassociation
// sneaking into Train would break hot-swap reproducibility and silently
// change serving verdicts between identical retrains.
func TestTrainDeterministicGolden(t *testing.T) {
	ex := goldenExamples(200, 20060106)
	m1, err := Train(ex, Config{Rounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(goldenExamples(200, 20060106), Config{Rounds: 50})
	if err != nil {
		t.Fatal(err)
	}

	if len(m1.Stumps) != 50 {
		t.Fatalf("boosting stopped early: %d rounds (golden data should sustain 50)", len(m1.Stumps))
	}
	if len(m1.Stumps) != len(m2.Stumps) {
		t.Fatalf("round counts differ: %d vs %d", len(m1.Stumps), len(m2.Stumps))
	}
	for i := range m1.Stumps {
		if m1.Stumps[i] != m2.Stumps[i] || m1.Alphas[i] != m2.Alphas[i] {
			t.Fatalf("round %d differs: %+v/%v vs %+v/%v", i,
				m1.Stumps[i], m1.Alphas[i], m2.Stumps[i], m2.Alphas[i])
		}
	}
	if m1.TrainingError != m2.TrainingError {
		t.Fatalf("training errors differ: %v vs %v", m1.TrainingError, m2.TrainingError)
	}
	if fp := modelFingerprint(m1); fp != goldenFingerprint {
		t.Fatalf("model fingerprint drifted: got 0x%016x, golden 0x%016x (rounds=%d trainErr=%v)",
			fp, uint64(goldenFingerprint), m1.Rounds(), m1.TrainingError)
	}
}
