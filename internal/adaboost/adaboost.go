// Package adaboost implements the boosting-based detector evaluated in
// Section 4.2 of the paper: AdaBoost over decision stumps, trained for 200
// rounds on the 12 per-session attributes of Table 2, with CAPTCHA-verified
// sessions as ground truth. The implementation is the classic discrete
// AdaBoost of Freund & Schapire as summarised in the paper's reference [5].
package adaboost

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"botdetect/internal/features"
	"botdetect/internal/rng"
)

// Stump is a one-level decision tree over a single attribute: it predicts
// "human" when Polarity*(x[Feature] - Threshold) > 0 and "robot" otherwise.
type Stump struct {
	// Feature is the attribute index (see package features).
	Feature int
	// Threshold is the split point.
	Threshold float64
	// Polarity is +1 or -1 and orients the split.
	Polarity int
}

// predict returns +1 (human) or -1 (robot).
func (s Stump) predict(x features.Vector) int {
	v := x[s.Feature] - s.Threshold
	if float64(s.Polarity)*v > 0 {
		return 1
	}
	return -1
}

// Model is a trained boosted ensemble.
type Model struct {
	// Stumps are the weak learners in training order.
	Stumps []Stump
	// Alphas are the corresponding ensemble weights.
	Alphas []float64
	// TrainingError is the ensemble's final error on the training set.
	TrainingError float64
}

// Config controls training.
type Config struct {
	// Rounds is the number of boosting rounds (paper: 200).
	Rounds int
	// Thresholds is the number of candidate thresholds examined per
	// attribute per round (evenly spaced over the attribute's observed
	// range). More thresholds fit tighter stumps at higher training cost.
	Thresholds int
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 200
	}
	if c.Thresholds <= 0 {
		c.Thresholds = 32
	}
	return c
}

// ErrNoExamples is returned when Train is called with an empty training set.
var ErrNoExamples = errors.New("adaboost: no training examples")

// ErrSingleClass is returned when all training examples share one label; a
// discriminative model cannot be fit.
var ErrSingleClass = errors.New("adaboost: training set contains a single class")

// Train fits a boosted stump ensemble to the labelled examples.
func Train(examples []features.Example, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n := len(examples)
	if n == 0 {
		return nil, ErrNoExamples
	}
	humans, robots := 0, 0
	for _, e := range examples {
		if e.Human {
			humans++
		} else {
			robots++
		}
	}
	if humans == 0 || robots == 0 {
		return nil, ErrSingleClass
	}

	labels := make([]int, n)
	for i, e := range examples {
		if e.Human {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}

	// Candidate thresholds per feature: evenly spaced between min and max.
	candidates := buildCandidates(examples, cfg.Thresholds)

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(n)
	}

	model := &Model{}
	for round := 0; round < cfg.Rounds; round++ {
		stump, err := bestStump(examples, labels, weights, candidates)
		if err >= 0.5 {
			// No weak learner better than chance under the current weights.
			break
		}
		if err < 1e-12 {
			err = 1e-12
		}
		alpha := 0.5 * math.Log((1-err)/err)
		model.Stumps = append(model.Stumps, stump)
		model.Alphas = append(model.Alphas, alpha)

		// Re-weight: misclassified examples gain weight.
		sum := 0.0
		for i := range weights {
			pred := stump.predict(examples[i].X)
			weights[i] *= math.Exp(-alpha * float64(labels[i]*pred))
			sum += weights[i]
		}
		if sum <= 0 {
			break
		}
		for i := range weights {
			weights[i] /= sum
		}
		// Perfect separation: further rounds only rescale alphas.
		if err <= 1e-12 {
			break
		}
	}
	if len(model.Stumps) == 0 {
		// Degenerate data (e.g. identical vectors with mixed labels): fall
		// back to a majority-class stump so Predict still works.
		majorityHuman := humans >= robots
		pol := -1
		if majorityHuman {
			pol = 1
		}
		model.Stumps = append(model.Stumps, Stump{Feature: 0, Threshold: -1, Polarity: pol})
		model.Alphas = append(model.Alphas, 1)
	}

	// Final training error.
	wrong := 0
	for i, e := range examples {
		if model.Predict(e.X) != (labels[i] == 1) {
			wrong++
		}
	}
	model.TrainingError = float64(wrong) / float64(n)
	return model, nil
}

// buildCandidates returns, per feature, the candidate thresholds.
func buildCandidates(examples []features.Example, k int) [features.NumAttributes][]float64 {
	var out [features.NumAttributes][]float64
	for f := 0; f < features.NumAttributes; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range examples {
			v := e.X[f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if !(hi > lo) {
			out[f] = []float64{lo - 1e-9}
			continue
		}
		cands := make([]float64, 0, k)
		for i := 0; i <= k; i++ {
			cands = append(cands, lo+(hi-lo)*float64(i)/float64(k)-1e-12)
		}
		out[f] = cands
	}
	return out
}

// bestStump finds the stump minimising weighted error.
func bestStump(examples []features.Example, labels []int, weights []float64, candidates [features.NumAttributes][]float64) (Stump, float64) {
	best := Stump{Feature: 0, Threshold: 0, Polarity: 1}
	bestErr := math.Inf(1)
	for f := 0; f < features.NumAttributes; f++ {
		for _, thr := range candidates[f] {
			// Polarity +1: predict human when value > threshold.
			errPos := 0.0
			for i := range examples {
				pred := -1
				if examples[i].X[f] > thr {
					pred = 1
				}
				if pred != labels[i] {
					errPos += weights[i]
				}
			}
			errNeg := 1 - errPos // flipping polarity flips every decision
			if errPos < bestErr {
				bestErr = errPos
				best = Stump{Feature: f, Threshold: thr, Polarity: 1}
			}
			if errNeg < bestErr {
				bestErr = errNeg
				best = Stump{Feature: f, Threshold: thr, Polarity: -1}
			}
		}
	}
	return best, bestErr
}

// Score returns the ensemble margin for the vector; positive means human.
func (m *Model) Score(x features.Vector) float64 {
	s := 0.0
	for i, st := range m.Stumps {
		s += m.Alphas[i] * float64(st.predict(x))
	}
	return s
}

// Predict reports whether the vector is classified as a human session.
func (m *Model) Predict(x features.Vector) bool { return m.Score(x) > 0 }

// Rounds returns the number of boosting rounds actually used.
func (m *Model) Rounds() int { return len(m.Stumps) }

// Accuracy returns the fraction of examples classified correctly.
func (m *Model) Accuracy(examples []features.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, e := range examples {
		if m.Predict(e.X) == e.Human {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// FeatureImportance returns, per attribute, the total |alpha| mass of stumps
// splitting on it, normalised to sum to 1. The paper reports RESPCODE 3XX %,
// REFERRER % and UNSEEN REFERRER % as the most contributing attributes.
func (m *Model) FeatureImportance() [features.NumAttributes]float64 {
	var imp [features.NumAttributes]float64
	total := 0.0
	for i, st := range m.Stumps {
		a := math.Abs(m.Alphas[i])
		imp[st.Feature] += a
		total += a
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// TopFeatures returns the k most important attribute indices in decreasing
// order of importance.
func (m *Model) TopFeatures(k int) []int {
	imp := m.FeatureImportance()
	idx := make([]int, features.NumAttributes)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// String summarises the model.
func (m *Model) String() string {
	return fmt.Sprintf("adaboost.Model{rounds=%d, trainError=%.4f}", m.Rounds(), m.TrainingError)
}

// Split partitions examples into a training and a test set, drawing
// trainFraction of each class uniformly at random (the paper splits each
// class into equal halves at random). The input slice is not modified.
func Split(examples []features.Example, trainFraction float64, seed uint64) (train, test []features.Example) {
	if trainFraction < 0 {
		trainFraction = 0
	}
	if trainFraction > 1 {
		trainFraction = 1
	}
	src := rng.New(seed).Fork("adaboost-split")
	byClass := map[bool][]features.Example{}
	for _, e := range examples {
		byClass[e.Human] = append(byClass[e.Human], e)
	}
	for _, class := range []bool{true, false} {
		group := byClass[class]
		perm := src.Perm(len(group))
		cut := int(math.Round(trainFraction * float64(len(group))))
		for i, p := range perm {
			if i < cut {
				train = append(train, group[p])
			} else {
				test = append(test, group[p])
			}
		}
	}
	return train, test
}
