// Prometheus export for the replication plane, following the repo's
// read-side convention: the replicator keeps lock-free counters and the
// registry pulls them at scrape time — the publish path pays nothing for
// being observable.
package fleet

import (
	"botdetect/internal/telemetry"
)

// RegisterMetrics exports the replicator's health into reg under the given
// node label:
//
//	botdetect_fleet_peer_up{node,peer}                    1 if the peer passes phi suspicion
//	botdetect_fleet_outbox_depth{node,peer}               updates queued to the peer
//	botdetect_fleet_outbox_dropped_total{node,peer}       updates dropped (full outbox / dead peer)
//	botdetect_fleet_updates_sent_total{node,peer}         updates delivered to the peer
//	botdetect_fleet_peer_applied_epoch{node,peer}         the peer's advertised applied watermark for this node
//	botdetect_fleet_acked_epoch{node,peer}                highest own epoch successfully sent to the peer
//	botdetect_fleet_published_epoch{node}                 this node's durable epoch counter
//	botdetect_fleet_isolated{node}                        1 while quorum is lost
//	botdetect_fleet_updates_applied_total{node}           durable updates applied from peers
//	botdetect_fleet_updates_replayed_total{node}          duplicate/stale deliveries rejected
//	botdetect_fleet_epoch_gaps_total{node}                epochs declared lost past StallTimeout
//	botdetect_fleet_anti_entropy_resends_total{node}      store entries re-sent by anti-entropy
//	botdetect_fleet_observations_forwarded_total{node}    requests forwarded to partition owners
//	botdetect_fleet_replication_lag_seconds{node,quantile} apply-lag percentiles
func (r *Replicator) RegisterMetrics(reg *telemetry.Registry, node string) {
	if reg == nil {
		return
	}
	nodeLabel := telemetry.Label("node", node)

	reg.GaugeFunc("botdetect_fleet_peer_up",
		"1 if the peer currently passes phi heartbeat suspicion, else 0.",
		func(emit func(labels string, v float64)) {
			for _, ps := range r.PeerSnapshot() {
				v := 0.0
				if ps.Up {
					v = 1
				}
				emit(telemetry.Join(nodeLabel, telemetry.Label("peer", ps.Name)), v)
			}
		})
	reg.GaugeFunc("botdetect_fleet_outbox_depth",
		"Replication updates currently queued per peer outbox.",
		func(emit func(labels string, v float64)) {
			for _, ps := range r.PeerSnapshot() {
				emit(telemetry.Join(nodeLabel, telemetry.Label("peer", ps.Name)), float64(ps.OutboxLen))
			}
		})
	reg.GaugeFunc("botdetect_fleet_outbox_dropped_total",
		"Replication updates dropped on a full outbox or an unresponsive peer.",
		func(emit func(labels string, v float64)) {
			for _, ps := range r.PeerSnapshot() {
				emit(telemetry.Join(nodeLabel, telemetry.Label("peer", ps.Name)), float64(ps.Dropped))
			}
		})
	reg.GaugeFunc("botdetect_fleet_updates_sent_total",
		"Replication updates delivered per peer.",
		func(emit func(labels string, v float64)) {
			for _, ps := range r.PeerSnapshot() {
				emit(telemetry.Join(nodeLabel, telemetry.Label("peer", ps.Name)), float64(ps.Sent))
			}
		})
	reg.GaugeFunc("botdetect_fleet_peer_applied_epoch",
		"The peer's advertised applied-epoch watermark for this node's updates.",
		func(emit func(labels string, v float64)) {
			for _, ps := range r.PeerSnapshot() {
				emit(telemetry.Join(nodeLabel, telemetry.Label("peer", ps.Name)), float64(ps.Watermark))
			}
		})
	reg.GaugeFunc("botdetect_fleet_acked_epoch",
		"Highest own durable epoch successfully sent to the peer.",
		func(emit func(labels string, v float64)) {
			for _, ps := range r.PeerSnapshot() {
				emit(telemetry.Join(nodeLabel, telemetry.Label("peer", ps.Name)), float64(ps.AckedEpoch))
			}
		})

	reg.CounterFunc("botdetect_fleet_published_epoch", nodeLabel,
		"This node's durable update epoch counter.",
		func() float64 { return float64(r.PublishedEpoch()) })
	reg.GaugeFunc("botdetect_fleet_isolated",
		"1 while this node has lost quorum and serves from its isolated engine.",
		func(emit func(labels string, v float64)) {
			v := 0.0
			if r.Isolated() {
				v = 1
			}
			emit(nodeLabel, v)
		})
	reg.CounterFunc("botdetect_fleet_updates_applied_total", nodeLabel,
		"Durable replication updates applied fresh from peers.",
		func() float64 { return float64(r.Stats().Applied) })
	reg.CounterFunc("botdetect_fleet_updates_replayed_total", nodeLabel,
		"Duplicate or stale replication deliveries rejected by the watermark.",
		func() float64 { return float64(r.Stats().Replays) })
	reg.CounterFunc("botdetect_fleet_epoch_gaps_total", nodeLabel,
		"Epochs declared lost after StallTimeout (the epoch-lag bound).",
		func() float64 { return float64(r.Stats().EpochGaps) })
	reg.CounterFunc("botdetect_fleet_anti_entropy_resends_total", nodeLabel,
		"Store entries re-sent because a peer's watermarks showed them missing.",
		func() float64 { return float64(r.Stats().AEResends) })
	reg.CounterFunc("botdetect_fleet_observations_forwarded_total", nodeLabel,
		"Request observations forwarded to partition owners.",
		func() float64 { return float64(r.Stats().ObsForward) })

	reg.GaugeFunc("botdetect_fleet_replication_lag_seconds",
		"Apply lag from origin publish to local apply, recent-window quantiles.",
		func(emit func(labels string, v float64)) {
			for _, q := range [...]float64{0.5, 0.99} {
				d, ok := r.LagQuantile(q)
				if !ok {
					continue
				}
				label := "0.5"
				if q == 0.99 {
					label = "0.99"
				}
				emit(telemetry.Join(nodeLabel, telemetry.Label("quantile", label)), d.Seconds())
			}
		})
}
