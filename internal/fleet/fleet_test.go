package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/detect"
	"botdetect/internal/rng"
	"botdetect/internal/session"
)

// nullTransport swallows every send (for replicators exercised only through
// Receive).
type nullTransport struct{}

func (nullTransport) Send(string, *Message) error { return nil }

func key(i int) session.Key {
	return session.Key{IP: fmt.Sprintf("10.%d.%d.%d", i/65536, (i/256)%256, i%256), UserAgent: "ua"}
}

// testRep builds a started replicator that only receives.
func testRep(t *testing.T, name string, peers []string, mut func(*Config)) *Replicator {
	t.Helper()
	cfg := Config{Name: name, Peers: peers, Transport: nullTransport{}}
	if mut != nil {
		mut(&cfg)
	}
	r := New(cfg)
	r.Start()
	t.Cleanup(r.Stop)
	return r
}

// updateSet builds a mixed durable update stream from three origins.
func updateSet() []Update {
	var ups []Update
	for _, origin := range []string{"a", "b", "c"} {
		epoch := uint64(0)
		for i := 0; i < 40; i++ {
			epoch++
			u := Update{Origin: origin, Inc: 1, Epoch: epoch, Stamp: int64(epoch) * 1000}
			switch i % 3 {
			case 0, 1:
				u.Kind = KindVerdict
				u.Key = key(i * 7)
				u.Class = detect.ClassRobot
				u.Confidence = detect.Definite
				u.Reason = "decoy fetch"
				u.AtRequest = int64(i + 1)
			case 2:
				u.Kind = KindBlock
				u.Key = key(i * 7)
				u.Until = int64(i+1) * int64(time.Hour)
			}
			ups = append(ups, u)
		}
	}
	return ups
}

func deliverSequential(r *Replicator, ups []Update) {
	for i := range ups {
		r.Receive(&Message{From: ups[i].Origin, Inc: ups[i].Inc, Kind: MsgBatch, Updates: ups[i : i+1]})
	}
}

// TestConvergenceAnyInterleaving is the gossip property test: any delivery
// interleaving with duplicates and reorders (every update eventually arriving
// at least once — the guarantee retry plus anti-entropy provide) converges to
// exactly the sequential-delivery state.
func TestConvergenceAnyInterleaving(t *testing.T) {
	peers := []string{"a", "b", "c", "x"}
	ups := updateSet()

	ref := testRep(t, "x", peers, nil)
	deliverSequential(ref, ups)
	want := ref.Digest()
	if want == 0 {
		t.Fatalf("reference digest is zero — no state merged")
	}

	for seed := uint64(1); seed <= 8; seed++ {
		src := rng.New(seed).Fork("interleave")
		// Schedule each update once, plus ~30% duplicated deliveries, then
		// shuffle the whole schedule (reorder + late duplicates).
		sched := append([]Update(nil), ups...)
		for i := range ups {
			if src.Uint64n(10) < 3 {
				sched = append(sched, ups[i])
			}
		}
		for i := len(sched) - 1; i > 0; i-- {
			j := int(src.Uint64n(uint64(i + 1)))
			sched[i], sched[j] = sched[j], sched[i]
		}

		sub := testRep(t, "x", peers, nil)
		deliverSequential(sub, sched)
		if got := sub.Digest(); got != want {
			t.Fatalf("seed %d: digest %#x after interleaved delivery, want %#x", seed, got, want)
		}
		if sub.VerdictCount() != ref.VerdictCount() || sub.BlockCount() != ref.BlockCount() {
			t.Fatalf("seed %d: store sizes (%d,%d) diverged from (%d,%d)", seed,
				sub.VerdictCount(), sub.BlockCount(), ref.VerdictCount(), ref.BlockCount())
		}
		if sub.Stats().Replays == 0 {
			t.Fatalf("seed %d: expected duplicate deliveries to be counted as replays", seed)
		}
	}
}

// TestMergeTotalOrder delivers two conflicting verdicts for one key in both
// orders and expects the same winner (higher confidence, then later stamp).
func TestMergeTotalOrder(t *testing.T) {
	peers := []string{"a", "b", "x"}
	k := key(1)
	v1 := Update{Origin: "a", Inc: 1, Epoch: 1, Stamp: 100, Kind: KindVerdict,
		Key: k, Class: detect.ClassHuman, Confidence: detect.Probable, Reason: "model"}
	v2 := Update{Origin: "b", Inc: 1, Epoch: 1, Stamp: 50, Kind: KindVerdict,
		Key: k, Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "decoy"}

	for name, order := range map[string][]Update{"fwd": {v1, v2}, "rev": {v2, v1}} {
		r := testRep(t, "x", peers, nil)
		deliverSequential(r, order)
		rec, ok := r.VerdictFor(k)
		if !ok {
			t.Fatalf("%s: verdict missing", name)
		}
		if rec.Verdict.Class != detect.ClassRobot || rec.Verdict.Confidence != detect.Definite {
			t.Fatalf("%s: winner = %v/%v, want robot/definite", name, rec.Verdict.Class, rec.Verdict.Confidence)
		}
	}
}

func TestWatermarkRejectsReplays(t *testing.T) {
	r := testRep(t, "x", []string{"a", "x"}, nil)
	u := Update{Origin: "a", Inc: 1, Epoch: 1, Stamp: 1, Kind: KindVerdict,
		Key: key(1), Class: detect.ClassRobot, Confidence: detect.Definite}
	deliverSequential(r, []Update{u, u, u})
	st := r.Stats()
	if st.Applied != 1 || st.Replays != 2 {
		t.Fatalf("applied=%d replays=%d, want 1 and 2", st.Applied, st.Replays)
	}
	if wm := r.Watermark("a"); wm != 1 {
		t.Fatalf("watermark = %d, want 1", wm)
	}
}

// TestStallJumpCountsGaps: a permanently missing epoch stalls the watermark
// only until StallTimeout, then the gap is counted and jumped — the
// epoch-lag bound on loss.
func TestStallJumpCountsGaps(t *testing.T) {
	r := testRep(t, "x", []string{"a", "x"}, func(c *Config) { c.StallTimeout = time.Millisecond })
	mk := func(e uint64) Update {
		return Update{Origin: "a", Inc: 1, Epoch: e, Stamp: int64(e), Kind: KindVerdict,
			Key: key(int(e)), Class: detect.ClassRobot, Confidence: detect.Definite}
	}
	deliverSequential(r, []Update{mk(1), mk(3)}) // epoch 2 never arrives
	time.Sleep(5 * time.Millisecond)
	deliverSequential(r, []Update{mk(4)})
	if wm := r.Watermark("a"); wm != 4 {
		t.Fatalf("watermark = %d, want 4 after stall jump", wm)
	}
	if gaps := r.Stats().EpochGaps; gaps != 1 {
		t.Fatalf("epoch gaps = %d, want 1", gaps)
	}
}

// TestIncarnationReset: a restarted origin's fresh epochs apply under the
// higher incarnation, and the old incarnation's stragglers are rejected.
func TestIncarnationReset(t *testing.T) {
	r := testRep(t, "x", []string{"a", "x"}, nil)
	mk := func(inc uint32, e uint64, stamp int64) Update {
		return Update{Origin: "a", Inc: inc, Epoch: e, Stamp: stamp, Kind: KindBlock,
			Key: key(int(e) + int(inc)*100), Until: stamp + int64(time.Hour)}
	}
	deliverSequential(r, []Update{mk(1, 1, 10), mk(1, 2, 20)})
	deliverSequential(r, []Update{mk(2, 1, 30)}) // restarted origin, dense from 1 again
	if wm := r.Watermark("a"); wm != 1 {
		t.Fatalf("watermark = %d, want 1 under the new incarnation", wm)
	}
	deliverSequential(r, []Update{mk(1, 3, 15)}) // straggler from the dead incarnation
	st := r.Stats()
	if st.StaleInc != 1 {
		t.Fatalf("staleInc = %d, want 1", st.StaleInc)
	}
	if st.Applied != 3 {
		t.Fatalf("applied = %d, want 3", st.Applied)
	}
}

// fastCfg tunes a config for quick mesh tests.
func fastCfg(c *Config) {
	c.HeartbeatInterval = 2 * time.Millisecond
	c.AntiEntropyInterval = 5 * time.Millisecond
	c.RetryBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	c.SendPatience = 20 * time.Millisecond
}

// meshFleet spins up a fully connected started fleet over an in-process mesh.
func meshFleet(t *testing.T, names []string, mut func(string, *Config)) (*Mesh, map[string]*Replicator) {
	t.Helper()
	mesh := NewMesh()
	reps := make(map[string]*Replicator, len(names))
	for _, name := range names {
		cfg := Config{Name: name, Peers: names, Transport: mesh.Bind(name), Seed: uint64(len(name))}
		fastCfg(&cfg)
		if mut != nil {
			mut(name, &cfg)
		}
		r := New(cfg)
		mesh.Attach(r)
		reps[name] = r
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return mesh, reps
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMeshReplicationConverges: publishes on every node propagate everywhere.
func TestMeshReplicationConverges(t *testing.T) {
	names := []string{"a", "b", "c"}
	_, reps := meshFleet(t, names, nil)
	for i, name := range names {
		reps[name].PublishVerdict(key(i), detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "r"})
		reps[name].PublishBlock(key(i+100), time.Unix(0, int64(time.Hour)))
	}
	waitFor(t, 5*time.Second, "digests to converge", func() bool {
		d := reps["a"].Digest()
		return d != 0 && d == reps["b"].Digest() && d == reps["c"].Digest()
	})
}

// TestAntiEntropyRepairsSilentDrops: batches silently dropped on one link are
// healed by the watermark-driven re-send, with no retry signal at all.
func TestAntiEntropyRepairsSilentDrops(t *testing.T) {
	var dropBatches sync.Map // "on"/nil
	mesh, reps := meshFleet(t, []string{"a", "b"}, nil)
	mesh.SetIntercept(func(from, to string, msg *Message) (Fate, time.Duration) {
		if _, on := dropBatches.Load("on"); on && from == "a" && to == "b" && msg.Kind == MsgBatch {
			return FateDrop, 0
		}
		return FateDeliver, 0
	})
	dropBatches.Store("on", true)
	for i := 0; i < 20; i++ {
		reps["a"].PublishVerdict(key(i), detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "r"})
	}
	// Give the (dropped) first delivery a moment, then heal the link: only
	// anti-entropy can repair what was silently lost.
	time.Sleep(20 * time.Millisecond)
	if reps["b"].VerdictCount() != 0 {
		t.Fatalf("drops leaked: b has %d verdicts", reps["b"].VerdictCount())
	}
	dropBatches.Delete("on")
	waitFor(t, 5*time.Second, "anti-entropy to backfill b", func() bool {
		return reps["b"].VerdictCount() == 20 && reps["b"].Digest() == reps["a"].Digest()
	})
	if reps["a"].Stats().AEResends == 0 {
		t.Fatalf("expected anti-entropy resends to be counted")
	}
}

// TestCrashRestartBackfill: a node that loses its memory and restarts under a
// new incarnation is repopulated by anti-entropy, model included.
func TestCrashRestartBackfill(t *testing.T) {
	var gotModel sync.Map
	_, reps := meshFleet(t, []string{"a", "b"}, func(name string, c *Config) {
		if name == "b" {
			c.Callbacks.OnModel = func(m *adaboost.Model, seq uint64) { gotModel.Store(seq, m) }
		}
	})
	for i := 0; i < 10; i++ {
		reps["a"].PublishVerdict(key(i), detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "r"})
	}
	reps["a"].PublishModel(&adaboost.Model{})
	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		m, _ := reps["b"].Model()
		return reps["b"].VerdictCount() == 10 && m != nil
	})

	reps["b"].Stop()
	reps["b"].Wipe()
	if reps["b"].VerdictCount() != 0 {
		t.Fatalf("wipe left state behind")
	}
	reps["b"].Restart()
	if reps["b"].Incarnation() != 2 {
		t.Fatalf("incarnation = %d, want 2", reps["b"].Incarnation())
	}
	waitFor(t, 5*time.Second, "post-restart backfill", func() bool {
		m, _ := reps["b"].Model()
		return reps["b"].VerdictCount() == 10 && m != nil && reps["b"].Digest() == reps["a"].Digest()
	})
}

// TestSuspicionAndQuorum: silence flips peers down and quorum loss reports
// Isolated; recovery clears both.
func TestSuspicionAndQuorum(t *testing.T) {
	_, reps := meshFleet(t, []string{"a", "b", "c"}, func(_ string, c *Config) {
		c.PhiThreshold = 4
	})
	waitFor(t, 5*time.Second, "all peers up", func() bool { return reps["a"].UpPeers() == 2 })
	if reps["a"].Isolated() {
		t.Fatalf("a isolated with all peers up")
	}
	reps["b"].Stop()
	reps["c"].Stop()
	waitFor(t, 5*time.Second, "a to lose quorum", func() bool { return reps["a"].Isolated() })
	reps["b"].Restart()
	reps["c"].Restart()
	waitFor(t, 5*time.Second, "a to regain quorum", func() bool { return !reps["a"].Isolated() })
}

// TestObservationAndHandoff: fire-and-forget observations reach the owner's
// callback; handoff requests are answered from HandoffSource.
func TestObservationAndHandoff(t *testing.T) {
	var obs sync.Map
	var handoff sync.Map
	_, reps := meshFleet(t, []string{"a", "b"}, func(name string, c *Config) {
		switch name {
		case "a":
			c.Callbacks.OnObservation = func(u Update) { obs.Store(u.Path, true) }
			c.Callbacks.HandoffSource = func(k session.Key) ([]SignalAt, bool) {
				return []SignalAt{{Signal: session.SignalMouse, At: 3}}, true
			}
		case "b":
			c.Callbacks.OnHandoff = func(k session.Key, sigs []SignalAt) { handoff.Store(k, sigs) }
		}
	})
	reps["b"].ForwardObservation("a", Update{Key: key(1), Method: "GET", Path: "/p1", Status: 200})
	waitFor(t, 5*time.Second, "observation to arrive", func() bool {
		_, ok := obs.Load("/p1")
		return ok
	})
	reps["b"].RequestHandoff("a", key(1))
	waitFor(t, 5*time.Second, "handoff reply", func() bool {
		v, ok := handoff.Load(key(1))
		if !ok {
			return false
		}
		sigs := v.([]SignalAt)
		return len(sigs) == 1 && sigs[0].Signal == session.SignalMouse && sigs[0].At == 3
	})
}

// TestSendPatienceDropsAndAcks: a peer that always fails sends costs only its
// own outbox — batches drop after patience — while a healthy peer acks.
func TestSendPatienceDropsAndAcks(t *testing.T) {
	mesh, reps := meshFleet(t, []string{"a", "b", "c"}, func(_ string, c *Config) {
		c.SendPatience = 5 * time.Millisecond
	})
	mesh.SetIntercept(func(from, to string, msg *Message) (Fate, time.Duration) {
		if to == "c" {
			return FateFail, 0
		}
		return FateDeliver, 0
	})
	for i := 0; i < 10; i++ {
		reps["a"].PublishVerdict(key(i), detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "r"})
	}
	waitFor(t, 5*time.Second, "b to apply and ack", func() bool {
		return reps["b"].VerdictCount() == 10 && reps["a"].AckedEpoch("b") == 10
	})
	waitFor(t, 5*time.Second, "c's batches to drop", func() bool {
		var dropped int64
		for _, ps := range reps["a"].PeerSnapshot() {
			if ps.Name == "c" {
				dropped = ps.Dropped
			}
		}
		return dropped > 0 && reps["a"].AckedEpoch("c") == 0
	})
	if reps["a"].MinAckedEpoch() != 0 {
		t.Fatalf("MinAckedEpoch = %d, want 0 with c unreachable", reps["a"].MinAckedEpoch())
	}
}

// TestRingDistributionAndMovement: vnode hashing spreads keys roughly evenly
// and losing one node only moves that node's keys.
func TestRingDistributionAndMovement(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	ring := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 8192
	primaries := make([]string, keys)
	for i := 0; i < keys; i++ {
		p := ring.Primary(key(i).Hash())
		counts[p]++
		primaries[i] = p
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of the keyspace — vnode spread broken", n, share*100)
		}
	}
	// Owners are distinct.
	owners := ring.Owners(key(1).Hash(), 2)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("owners = %v, want 2 distinct", owners)
	}
	// Remove n3: only keys n3 owned may move.
	smaller := NewRing(nodes[:3], 0)
	for i := 0; i < keys; i++ {
		p := smaller.Primary(key(i).Hash())
		if primaries[i] != "n3" && p != primaries[i] {
			t.Fatalf("key %d moved %s → %s though its owner survived", i, primaries[i], p)
		}
	}
}
