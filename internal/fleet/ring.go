// Consistent-hash session partitioning: each session key hashes to a point
// on a ring of virtual nodes, and the first N distinct physical nodes
// clockwise from that point own the session (N=2 replica routing in
// cdn.Network). Virtual nodes keep the partition sizes within a few percent
// of even, and adding or removing one node moves only ~1/nodes of the
// keyspace.
package fleet

import (
	"fmt"
	"sort"

	"botdetect/internal/shard"
)

// Ring is an immutable consistent-hash ring; build one with NewRing and
// share it freely (all methods are read-only).
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring over the given node names with vnodes virtual
// points per node (default 64 when vnodes <= 0).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for i, name := range r.nodes {
		for v := 0; v < vnodes; v++ {
			h := mix64(shard.HashString(fmt.Sprintf("%s#%d", name, v)))
			r.points = append(r.points, ringPoint{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring's node names in construction order.
func (r *Ring) Nodes() []string { return r.nodes }

// mix64 is a splitmix64-style finaliser: the raw FNV hashes both vnode
// labels and session keys arrive with have weak high bits on short inputs,
// and ring placement lives entirely in the high bits. Both point placement
// and lookups mix through this, so either side's input quality is irrelevant.
func mix64(h uint64) uint64 {
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// start returns the index of the first ring point at or after h's mixed
// placement.
func (r *Ring) start(h uint64) int {
	h = mix64(h)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Primary returns the first owner for hash h.
func (r *Ring) Primary(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.start(h)].node]
}

// OwnersAppend appends the first n distinct owners for hash h to buf and
// returns it — allocation-free when buf has capacity (the serve path passes
// a stack-backed slice).
func (r *Ring) OwnersAppend(h uint64, n int, buf []string) []string {
	if len(r.points) == 0 || n <= 0 {
		return buf
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	start := r.start(h)
	base := len(buf)
	for i := 0; i < len(r.points) && len(buf)-base < n; i++ {
		name := r.nodes[r.points[(start+i)%len(r.points)].node]
		dup := false
		for _, have := range buf[base:] {
			if have == name {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, name)
		}
	}
	return buf
}

// Owners returns the first n distinct owners for hash h.
func (r *Ring) Owners(h uint64, n int) []string {
	return r.OwnersAppend(h, n, make([]string, 0, n))
}
