// Mesh is the in-process transport used by cdn.Network, tests and the chaos
// harness: it routes Messages straight into the target Replicator's Receive,
// with a pluggable intercept hook where the chaos injectors (internal/chaos,
// Links) decide each message's fate — deliver, duplicate, drop, fail or
// delay. A process-external transport would implement fleet.Transport over
// the wire; everything above this interface is transport-agnostic.
package fleet

import (
	"fmt"
	"sync"
	"time"
)

// Fate is an intercept decision for one message.
type Fate uint8

const (
	// FateDeliver passes the message through unchanged.
	FateDeliver Fate = iota
	// FateDup delivers the message twice (exercises merge idempotency).
	FateDup
	// FateDrop silently discards the message, reporting success to the
	// sender (exercises anti-entropy repair).
	FateDrop
	// FateFail discards the message and reports an error, so the sender
	// retries with backoff (exercises the retry/patience path).
	FateFail
)

// Intercept inspects one in-flight message and decides its fate, optionally
// imposing a delivery delay (slept on the sender's goroutine, like a slow
// link). A nil Intercept delivers everything immediately.
type Intercept func(from, to string, msg *Message) (Fate, time.Duration)

// Mesh is an in-process Transport connecting a set of replicators.
type Mesh struct {
	mu    sync.RWMutex
	nodes map[string]*Replicator

	intercept Intercept
	icMu      sync.RWMutex
}

// NewMesh creates an empty mesh.
func NewMesh() *Mesh {
	return &Mesh{nodes: make(map[string]*Replicator)}
}

// Attach registers a replicator under its node name.
func (m *Mesh) Attach(r *Replicator) {
	m.mu.Lock()
	m.nodes[r.Name()] = r
	m.mu.Unlock()
}

// SetIntercept installs (or clears, with nil) the fault-injection hook.
func (m *Mesh) SetIntercept(ic Intercept) {
	m.icMu.Lock()
	m.intercept = ic
	m.icMu.Unlock()
}

// Bind returns a Transport view of the mesh for one sender, so each
// replicator's messages carry their true origin through the intercept hook.
func (m *Mesh) Bind(from string) Transport {
	return boundTransport{mesh: m, from: from}
}

type boundTransport struct {
	mesh *Mesh
	from string
}

func (b boundTransport) Send(to string, msg *Message) error {
	return b.mesh.send(b.from, to, msg)
}

// send routes one message through the intercept to the target's Receive.
func (m *Mesh) send(from, to string, msg *Message) error {
	m.mu.RLock()
	target := m.nodes[to]
	m.mu.RUnlock()
	if target == nil {
		return fmt.Errorf("fleet: unknown node %q", to)
	}

	m.icMu.RLock()
	ic := m.intercept
	m.icMu.RUnlock()

	fate, delay := FateDeliver, time.Duration(0)
	if ic != nil {
		fate, delay = ic(from, to, msg)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	switch fate {
	case FateDrop:
		return nil
	case FateFail:
		return fmt.Errorf("fleet: injected send failure %s->%s", from, to)
	case FateDup:
		if err := target.Receive(msg); err != nil {
			return err
		}
		return target.Receive(msg)
	default:
		return target.Receive(msg)
	}
}
