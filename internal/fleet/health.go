// Peer state: the bounded outbox feeding one peer's sender goroutine, and
// the phi-style accrual failure detector over heartbeat inter-arrivals.
package fleet

import (
	"sync"
	"sync/atomic"
)

// peer is this replicator's view of one remote node.
type peer struct {
	name string

	out      chan Update
	dropped  atomic.Int64 // updates dropped on full outbox or exhausted patience
	sent     atomic.Int64 // updates delivered
	acked    atomic.Uint64
	inflight atomic.Int32

	lastSendOK atomic.Int64 // unix nanos of the last successful send

	// phi suspicion inputs: last receive time and an EWMA of the receive
	// inter-arrival, both unix nanos, both written only from Receive.
	lastRecv atomic.Int64
	ewma     atomic.Int64

	wmMu sync.Mutex
	wms  map[string]Watermark // the peer's advertised applied watermarks
}

func newPeer(name string, outbox int) *peer {
	return &peer{
		name: name,
		out:  make(chan Update, outbox),
		wms:  make(map[string]Watermark),
	}
}

// enqueue offers one update to the outbox without ever blocking; a full
// outbox drops the update (counted) — anti-entropy repairs durable state
// later, fire-and-forget updates are simply lost.
func (p *peer) enqueue(u Update) bool {
	select {
	case p.out <- u:
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// touch records one received message for the suspicion EWMA.
func (p *peer) touch(now int64) {
	prev := p.lastRecv.Swap(now)
	if prev == 0 || now <= prev {
		return
	}
	gap := now - prev
	old := p.ewma.Load()
	if old == 0 {
		p.ewma.Store(gap)
		return
	}
	// EWMA with alpha = 1/8; a lossy race here only perturbs the estimate.
	p.ewma.Store(old + (gap-old)/8)
}

// upAgainst reports whether the peer looks alive: it has been heard from,
// and the silence since then is below phi times the mean inter-arrival
// (floored at the heartbeat interval, so a freshly started fleet is not all
// "down" before the first EWMA settles).
func (p *peer) upAgainst(now int64, heartbeat int64, phi float64) bool {
	last := p.lastRecv.Load()
	if last == 0 {
		return false
	}
	mean := p.ewma.Load()
	if mean < heartbeat {
		mean = heartbeat
	}
	return float64(now-last) < phi*float64(mean)
}

// setWatermarks replaces the peer's advertised watermark vector.
func (p *peer) setWatermarks(wms []Watermark) {
	p.wmMu.Lock()
	clear(p.wms)
	for _, w := range wms {
		p.wms[w.Origin] = w
	}
	p.wmMu.Unlock()
}

// watermarks copies the peer's advertised watermark vector.
func (p *peer) watermarks() map[string]Watermark {
	p.wmMu.Lock()
	out := make(map[string]Watermark, len(p.wms))
	for k, v := range p.wms {
		out[k] = v
	}
	p.wmMu.Unlock()
	return out
}

// reset clears transient peer state (crash simulation).
func (p *peer) reset() {
	for {
		select {
		case <-p.out:
		default:
			p.dropped.Store(0)
			p.sent.Store(0)
			p.acked.Store(0)
			p.lastSendOK.Store(0)
			p.lastRecv.Store(0)
			p.ewma.Store(0)
			p.wmMu.Lock()
			clear(p.wms)
			p.wmMu.Unlock()
			return
		}
	}
}

// advanceAcked lifts the acked own-epoch high-water mark monotonically.
func (p *peer) advanceAcked(epoch uint64) {
	for {
		cur := p.acked.Load()
		if epoch <= cur || p.acked.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// ---- fleet-level health reads on the Replicator ----

// PeerUp reports whether the named peer currently looks alive.
func (r *Replicator) PeerUp(name string) bool {
	p, ok := r.peers[name]
	if !ok {
		return false
	}
	return p.upAgainst(r.nowNanos(), int64(r.cfg.HeartbeatInterval), r.cfg.PhiThreshold)
}

// UpPeers returns how many peers currently look alive.
func (r *Replicator) UpPeers() int {
	now := r.nowNanos()
	hb := int64(r.cfg.HeartbeatInterval)
	n := 0
	for _, p := range r.peers {
		if p.upAgainst(now, hb, r.cfg.PhiThreshold) {
			n++
		}
	}
	return n
}

// Isolated reports whether this node has lost quorum: itself plus its live
// peers no longer form a majority of the configured fleet. An isolated node
// keeps serving from its local engine alone (graceful degradation) — it
// never blocks waiting for the fleet to come back.
func (r *Replicator) Isolated() bool {
	fleet := len(r.peers) + 1
	if fleet <= 1 {
		return false
	}
	return r.UpPeers()+1 <= fleet/2
}

// PeerNames returns the configured peer names, sorted.
func (r *Replicator) PeerNames() []string { return r.peerNames }

// PeerStats is one peer's health snapshot for metrics/status surfaces.
type PeerStats struct {
	Name       string
	Up         bool
	OutboxLen  int
	Dropped    int64
	Sent       int64
	AckedEpoch uint64
	// Watermark is the peer's advertised applied epoch for OUR origin — how
	// far the peer has actually applied what we published.
	Watermark uint64
}

// PeerSnapshot returns per-peer health for metrics and the admin surface.
func (r *Replicator) PeerSnapshot() []PeerStats {
	now := r.nowNanos()
	hb := int64(r.cfg.HeartbeatInterval)
	out := make([]PeerStats, 0, len(r.peerNames))
	for _, name := range r.peerNames {
		p := r.peers[name]
		ps := PeerStats{
			Name:       name,
			Up:         p.upAgainst(now, hb, r.cfg.PhiThreshold),
			OutboxLen:  len(p.out),
			Dropped:    p.dropped.Load(),
			Sent:       p.sent.Load(),
			AckedEpoch: p.acked.Load(),
		}
		p.wmMu.Lock()
		if w, ok := p.wms[r.cfg.Name]; ok && w.Inc == r.inc.Load() {
			ps.Watermark = w.Epoch
		}
		p.wmMu.Unlock()
		out = append(out, ps)
	}
	return out
}
