// Package fleet is the replicated control plane that turns a set of
// detection nodes into one fault-tolerant fleet. Each node runs a
// Replicator that gossips epoch-stamped updates — definite verdicts,
// block-list entries and model publications — to every peer through
// per-peer outboxes, and applies updates received from peers through
// idempotent, commutative merges, so any delivery interleaving (drops,
// duplicates, reorders) converges to the same verdict/block state as
// sequential delivery.
//
// The design generalises the repo's existing single-node publication
// patterns (the policy ladder's copy-on-write snapshot, Engine.SetModel's
// atomic swap) to cross-node asynchrony:
//
//   - Every durable update carries its origin node, an incarnation number
//     and a per-origin dense epoch (1, 2, 3, …). Receivers keep a per-origin
//     applied-epoch watermark (the highest contiguous applied epoch, read
//     lock-free) plus a small out-of-order window above it, so replays are
//     rejected in O(1) and reordering is harmless.
//   - Merges are last-writer-wins under a deterministic total order
//     (verdicts: confidence, then stamp, then origin; blocks: latest
//     expiry; models: highest sequence), so duplicated or reordered
//     deliveries cannot diverge replicas.
//   - Senders never block the serve path: Publish enqueues into a bounded
//     per-peer outbox (full ⇒ counted drop), and a dedicated goroutine per
//     peer drains it with doubling backoff + jitter. A dead peer costs its
//     own outbox, nothing else.
//   - Anti-entropy heals silent loss: heartbeats advertise each node's
//     applied watermarks, and every node periodically re-sends store
//     entries a peer's watermarks show it to be missing — which also
//     backfills a node that restarted empty (it simply advertises nothing).
//   - Peer health is a phi-style accrual suspicion over heartbeat
//     inter-arrival times; when a quorum of the fleet is unreachable the
//     node reports Isolated and keeps serving from its local engine alone.
//
// Observations and session handoffs ride the same transport with epoch 0:
// they are fire-and-forget evidence streams whose loss only delays a
// threshold crossing, so they stay outside the watermark machinery.
package fleet

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/clock"
	"botdetect/internal/detect"
	"botdetect/internal/rng"
	"botdetect/internal/session"
)

// Kind is the type of one replicated update.
type Kind uint8

const (
	// KindVerdict replicates a definite classification.
	KindVerdict Kind = iota
	// KindBlock replicates a block-list entry.
	KindBlock
	// KindModel replicates a trained model publication.
	KindModel
	// KindObservation forwards one observed request to the session's
	// partition owner (fire-and-forget, epoch 0).
	KindObservation
	// KindHandoff requests or carries a session's evidence (signals) between
	// a partition owner and a replica (fire-and-forget, epoch 0).
	KindHandoff
)

// String returns the kind's short name.
func (k Kind) String() string {
	switch k {
	case KindVerdict:
		return "verdict"
	case KindBlock:
		return "block"
	case KindModel:
		return "model"
	case KindObservation:
		return "observation"
	case KindHandoff:
		return "handoff"
	default:
		return "unknown"
	}
}

// SignalAt is one detection signal with the request index it was observed at,
// as carried by a session handoff.
type SignalAt struct {
	Signal session.Signal
	At     int64
}

// Update is one replicated state change. Durable kinds (verdict, block,
// model) carry a dense per-origin epoch; fire-and-forget kinds (observation,
// handoff) carry epoch 0 and skip the watermark machinery.
type Update struct {
	// Origin is the node that originated the update; Inc is that node's
	// incarnation (bumped on restart, so a node that comes back with a reset
	// epoch counter is not mistaken for a replayer).
	Origin string
	Inc    uint32
	// Epoch is the origin's dense update sequence (1, 2, 3, …); 0 marks a
	// fire-and-forget update.
	Epoch uint64
	// Stamp is the origin's wall clock in Unix nanoseconds when the update
	// was published, used for merge tie-breaks and convergence-lag metrics.
	Stamp int64
	// Kind selects which of the payload groups below is meaningful.
	Kind Kind

	// Key identifies the session (verdict, block, observation, handoff).
	Key session.Key

	// Verdict payload.
	Class      detect.Class
	Confidence detect.Confidence
	Reason     string
	AtRequest  int64

	// Block payload: expiry in Unix nanoseconds.
	Until int64

	// Model payload.
	Model    *adaboost.Model
	ModelSeq uint64

	// Observation payload (one request of the session's access log).
	Method string
	Path   string
	Status int
	Bytes  int64
	Refer  string
	CT     string // response content type
	When   int64  // request time, Unix nanoseconds

	// Handoff payload: nil Signals with HandoffReply false is a request for
	// the session's evidence; HandoffReply true carries it.
	Signals      []SignalAt
	HandoffReply bool
}

// MsgKind is the transport-level message type.
type MsgKind uint8

const (
	// MsgBatch carries a batch of updates.
	MsgBatch MsgKind = iota
	// MsgHeartbeat carries the sender's applied watermarks.
	MsgHeartbeat
)

// Watermark advertises one origin's applied contiguous epoch.
type Watermark struct {
	Origin string
	Inc    uint32
	Epoch  uint64
}

// Message is one transport frame between two replicators.
type Message struct {
	From       string
	Inc        uint32
	Kind       MsgKind
	Updates    []Update    // MsgBatch
	Watermarks []Watermark // MsgHeartbeat
}

// Transport delivers messages between replicators. Send must be safe for
// concurrent use; an error means the message was not (or may not have been)
// delivered and the sender may retry — receivers therefore must tolerate
// duplicate delivery, which the merge layer guarantees.
type Transport interface {
	Send(to string, msg *Message) error
}

// ErrNodeDown is returned by Replicator.Receive (and propagated by the
// in-process mesh) when the target replicator is stopped.
var ErrNodeDown = errors.New("fleet: node down")

// Callbacks wire applied updates into the node's local engines. All
// callbacks may be invoked concurrently from peer goroutines; nil callbacks
// are skipped.
type Callbacks struct {
	// OnVerdict fires when a replicated verdict changed this node's merged
	// verdict state for key.
	OnVerdict func(key session.Key, v detect.Verdict, origin string)
	// OnBlock fires when a replicated block extended this node's merged
	// block state for key.
	OnBlock func(key session.Key, until time.Time)
	// OnModel fires when a replicated model publication superseded the
	// node's current model.
	OnModel func(m *adaboost.Model, seq uint64)
	// OnObservation receives forwarded request observations for sessions
	// this node owns.
	OnObservation func(u Update)
	// OnHandoff receives a session's evidence handed off by a peer.
	OnHandoff func(key session.Key, signals []SignalAt)
	// HandoffSource supplies the local evidence for a session when a peer
	// requests a handoff (anti-entropy backfill for failover serving).
	HandoffSource func(key session.Key) ([]SignalAt, bool)
}

// Config controls one Replicator.
type Config struct {
	// Name is this node's unique name; Peers are the other fleet members.
	Name  string
	Peers []string
	// Transport carries messages; required.
	Transport Transport
	// Callbacks apply replicated state to the local engines.
	Callbacks Callbacks
	// OutboxCapacity bounds each per-peer outbox (default 1024); a full
	// outbox drops new updates (counted) instead of blocking the publisher.
	OutboxCapacity int
	// BatchSize caps updates per transport message (default 128).
	BatchSize int
	// RetryBackoff is the initial send-retry delay, doubled (with jitter) up
	// to MaxBackoff (defaults 5ms and 500ms).
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// SendPatience bounds how long one batch is retried against an
	// unresponsive peer before it is dropped (counted) and the sender moves
	// on — the per-peer timeout that keeps a dead peer from pinning its
	// outbox forever (default 2s). Anti-entropy re-sends dropped durable
	// updates once the peer heals.
	SendPatience time.Duration
	// HeartbeatInterval paces watermark advertisement and feeds the phi
	// suspicion (default 100ms). PhiThreshold is the multiple of the mean
	// heartbeat inter-arrival after which a peer is suspected down
	// (default 8).
	HeartbeatInterval time.Duration
	PhiThreshold      float64
	// AntiEntropyInterval paces the per-peer store re-scan (default 300ms);
	// AntiEntropyBatch caps re-sent entries per peer per scan (default 256).
	AntiEntropyInterval time.Duration
	AntiEntropyBatch    int
	// StallTimeout bounds how long a watermark waits on a missing epoch
	// before jumping past the gap and counting the loss (default 5s) — the
	// configured epoch-lag bound: an update is either applied or counted as
	// a gap within StallTimeout of its neighbours.
	StallTimeout time.Duration
	// MaxEntries bounds the merged verdict store (default 65536); overflow
	// evicts the oldest-stamped entries.
	MaxEntries int
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
	// Seed drives backoff jitter.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.OutboxCapacity <= 0 {
		c.OutboxCapacity = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	if c.SendPatience <= 0 {
		c.SendPatience = 2 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.PhiThreshold <= 0 {
		c.PhiThreshold = 8
	}
	if c.AntiEntropyInterval <= 0 {
		c.AntiEntropyInterval = 300 * time.Millisecond
	}
	if c.AntiEntropyBatch <= 0 {
		c.AntiEntropyBatch = 256
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 16
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// VerdictRecord is one merged verdict entry.
type VerdictRecord struct {
	Verdict detect.Verdict
	Origin  string
	Inc     uint32
	Epoch   uint64
	Stamp   int64
}

// BlockRecord is one merged block-list entry.
type BlockRecord struct {
	Key   session.Key
	Until int64
	Stamp int64
}

type blockEntry struct {
	until  int64
	origin string
	inc    uint32
	epoch  uint64
	stamp  int64
}

type modelEntry struct {
	m      *adaboost.Model
	seq    uint64
	origin string
	stamp  int64
}

// originState tracks one origin's applied epochs: the contiguous watermark
// (mirrored into an atomic for lock-free reads) and the out-of-order window
// above it.
type originState struct {
	inc       uint32
	contig    uint64
	contigPub atomic.Uint64
	pending   map[uint64]int64 // applied epoch above contig → first-seen nanos
}

const lagRing = 4096

// Replicator is one node's half of the fleet control plane. It is safe for
// concurrent use; Publish* never block on the network.
type Replicator struct {
	cfg Config

	inc      atomic.Uint32 // incarnation, bumped by Restart
	epoch    atomic.Uint64 // own dense epoch counter for durable updates
	modelSeq atomic.Uint64

	mu       sync.RWMutex // guards verdicts, blocks, model
	verdicts map[session.Key]VerdictRecord
	blocks   map[session.Key]blockEntry
	model    modelEntry

	wmMu sync.Mutex
	wms  map[string]*originState

	peers     map[string]*peer
	peerNames []string

	running atomic.Bool
	stopMu  sync.Mutex
	done    chan struct{}
	wg      sync.WaitGroup

	jitter   *rng.Source
	jitterMu sync.Mutex

	// counters
	published   atomic.Uint64 // durable updates originated here
	applied     atomic.Uint64 // durable updates applied fresh from peers
	replays     atomic.Uint64 // duplicate/stale deliveries rejected
	staleInc    atomic.Uint64 // updates from an old incarnation rejected
	epochGaps   atomic.Uint64 // epochs the watermark jumped past (lost updates)
	obsApplied  atomic.Uint64
	obsForward  atomic.Uint64
	aeResends   atomic.Uint64
	handoffsIn  atomic.Uint64
	handoffsOut atomic.Uint64

	lagMu      sync.Mutex
	lagSamples [lagRing]int64 // apply lag, nanos
	lagN       int
	lagNext    int
}

// New creates a Replicator; call Start to spin up its goroutines.
func New(cfg Config) *Replicator {
	cfg = cfg.withDefaults()
	if cfg.Name == "" || cfg.Transport == nil {
		panic("fleet: Config.Name and Config.Transport are required")
	}
	r := &Replicator{
		cfg:      cfg,
		verdicts: make(map[session.Key]VerdictRecord),
		blocks:   make(map[session.Key]blockEntry),
		wms:      make(map[string]*originState),
		peers:    make(map[string]*peer),
		jitter:   rng.New(cfg.Seed ^ 0x666c6565742d6a69).Fork("fleet-jitter"),
	}
	r.inc.Store(1)
	for _, name := range cfg.Peers {
		if name == cfg.Name {
			continue
		}
		r.peers[name] = newPeer(name, cfg.OutboxCapacity)
		r.peerNames = append(r.peerNames, name)
	}
	sort.Strings(r.peerNames)
	return r
}

// Name returns the node name.
func (r *Replicator) Name() string { return r.cfg.Name }

// Incarnation returns the current incarnation number.
func (r *Replicator) Incarnation() uint32 { return r.inc.Load() }

// Running reports whether the replicator's goroutines are live.
func (r *Replicator) Running() bool { return r.running.Load() }

// Start spins up the per-peer sender and heartbeat/anti-entropy goroutines.
// It is idempotent while running.
func (r *Replicator) Start() {
	r.stopMu.Lock()
	defer r.stopMu.Unlock()
	if !r.running.CompareAndSwap(false, true) {
		return
	}
	r.done = make(chan struct{})
	for _, p := range r.peers {
		r.wg.Add(2)
		go r.sender(p, r.done)
		go r.peerLoop(p, r.done)
	}
}

// Stop halts all goroutines (outbox contents are retained for a later
// Start). It is idempotent.
func (r *Replicator) Stop() {
	r.stopMu.Lock()
	defer r.stopMu.Unlock()
	if !r.running.CompareAndSwap(true, false) {
		return
	}
	close(r.done)
	r.wg.Wait()
}

// Wipe clears all replicated state — stores, watermarks, epoch counters and
// outboxes — simulating a crash that lost the node's memory. Call only while
// stopped.
func (r *Replicator) Wipe() {
	r.mu.Lock()
	r.verdicts = make(map[session.Key]VerdictRecord)
	r.blocks = make(map[session.Key]blockEntry)
	r.model = modelEntry{}
	r.mu.Unlock()
	r.wmMu.Lock()
	r.wms = make(map[string]*originState)
	r.wmMu.Unlock()
	r.epoch.Store(0)
	r.modelSeq.Store(0)
	for _, p := range r.peers {
		p.reset()
	}
}

// Restart bumps the incarnation and starts the replicator again; peers reset
// their watermark state for this origin when they see the higher incarnation.
func (r *Replicator) Restart() {
	r.inc.Add(1)
	r.Start()
}

// nowNanos returns the configured clock's time in Unix nanoseconds.
func (r *Replicator) nowNanos() int64 { return r.cfg.Clock.Now().UnixNano() }

// ---- publishing (origin side) ----

// nextUpdate stamps a durable update with this origin's identity and next
// dense epoch.
func (r *Replicator) nextUpdate(kind Kind) Update {
	return Update{
		Origin: r.cfg.Name,
		Inc:    r.inc.Load(),
		Epoch:  r.epoch.Add(1),
		Stamp:  r.nowNanos(),
		Kind:   kind,
	}
}

// PublishVerdict replicates a definite verdict fleet-wide. Publishing the
// same class/confidence for an already-replicated key is a no-op, so the
// engine's export hook can fire on every recompute without flooding the
// mesh. It never blocks: full outboxes drop (counted) and anti-entropy
// repairs the difference later.
func (r *Replicator) PublishVerdict(key session.Key, v detect.Verdict) bool {
	r.mu.RLock()
	cur, ok := r.verdicts[key]
	r.mu.RUnlock()
	if ok && cur.Verdict.Class == v.Class && cur.Verdict.Confidence >= v.Confidence {
		return false
	}
	u := r.nextUpdate(KindVerdict)
	u.Key = key
	u.Class, u.Confidence, u.Reason, u.AtRequest = v.Class, v.Confidence, v.Reason, v.AtRequest
	r.published.Add(1)
	r.applyDurable(u, true)
	r.broadcast(u)
	return true
}

// PublishBlock replicates a block-list entry (key blocked until the given
// time). Earlier-or-equal expiries for an already-replicated key are no-ops.
func (r *Replicator) PublishBlock(key session.Key, until time.Time) bool {
	nanos := until.UnixNano()
	r.mu.RLock()
	cur, ok := r.blocks[key]
	r.mu.RUnlock()
	if ok && cur.until >= nanos {
		return false
	}
	u := r.nextUpdate(KindBlock)
	u.Key = key
	u.Until = nanos
	r.published.Add(1)
	r.applyDurable(u, true)
	r.broadcast(u)
	return true
}

// PublishModel replicates a trained model fleet-wide with the next model
// sequence number. The fleet assumes a single trainer at a time; concurrent
// publications converge on the highest sequence.
func (r *Replicator) PublishModel(m *adaboost.Model) uint64 {
	seq := r.modelSeq.Add(1)
	u := r.nextUpdate(KindModel)
	u.Model = m
	u.ModelSeq = seq
	r.published.Add(1)
	r.applyDurable(u, true)
	r.broadcast(u)
	return seq
}

// ForwardObservation forwards one observed request to the session's
// partition owner. Fire-and-forget: a full outbox or dead owner drops it,
// which only delays the owner's threshold crossing.
func (r *Replicator) ForwardObservation(owner string, u Update) {
	p, ok := r.peers[owner]
	if !ok {
		return
	}
	u.Origin, u.Inc, u.Epoch, u.Kind = r.cfg.Name, r.inc.Load(), 0, KindObservation
	if u.Stamp == 0 {
		u.Stamp = r.nowNanos()
	}
	r.obsForward.Add(1)
	p.enqueue(u)
}

// RequestHandoff asks owner for the session's evidence (signals); the reply
// arrives through Callbacks.OnHandoff.
func (r *Replicator) RequestHandoff(owner string, key session.Key) {
	p, ok := r.peers[owner]
	if !ok {
		return
	}
	p.enqueue(Update{
		Origin: r.cfg.Name, Inc: r.inc.Load(), Kind: KindHandoff,
		Stamp: r.nowNanos(), Key: key,
	})
}

// SendHandoff pushes the session's evidence to a peer (graceful drain).
func (r *Replicator) SendHandoff(to string, key session.Key, signals []SignalAt) bool {
	p, ok := r.peers[to]
	if !ok {
		return false
	}
	r.handoffsOut.Add(1)
	return p.enqueue(Update{
		Origin: r.cfg.Name, Inc: r.inc.Load(), Kind: KindHandoff,
		Stamp: r.nowNanos(), Key: key, Signals: signals, HandoffReply: true,
	})
}

// broadcast enqueues a durable update to every peer outbox, never blocking.
func (r *Replicator) broadcast(u Update) {
	for _, p := range r.peers {
		p.enqueue(u)
	}
}

// Flush waits until every outbox has drained (or timeout elapses), for
// graceful shutdown. It reports whether the outboxes emptied.
func (r *Replicator) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, p := range r.peers {
			if len(p.out) > 0 || p.inflight.Load() > 0 {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// ---- receiving / applying ----

// Receive applies one transport frame. It is the Transport's delivery
// entry point and is safe for concurrent use; it returns ErrNodeDown while
// the replicator is stopped (a crashed node does not receive).
func (r *Replicator) Receive(msg *Message) error {
	if !r.running.Load() {
		return ErrNodeDown
	}
	if p, ok := r.peers[msg.From]; ok {
		p.touch(r.nowNanos())
		if msg.Kind == MsgHeartbeat {
			p.setWatermarks(msg.Watermarks)
			return nil
		}
	}
	for i := range msg.Updates {
		r.apply(&msg.Updates[i])
	}
	return nil
}

// apply routes one update: fire-and-forget kinds dispatch straight to
// callbacks, durable kinds go through the watermark and merge machinery.
func (r *Replicator) apply(u *Update) {
	if u.Epoch == 0 {
		switch u.Kind {
		case KindObservation:
			r.obsApplied.Add(1)
			if cb := r.cfg.Callbacks.OnObservation; cb != nil {
				cb(*u)
			}
		case KindHandoff:
			r.applyHandoff(u)
		case KindModel:
			// Anti-entropy re-offers the merged model with epoch 0: its merge
			// is sequence-idempotent, so it needs no watermark admission.
			r.mergeModel(u)
		}
		return
	}
	r.applyDurable(*u, false)
}

// applyHandoff serves handoff requests from local evidence and applies
// handoff replies.
func (r *Replicator) applyHandoff(u *Update) {
	if u.HandoffReply {
		r.handoffsIn.Add(1)
		if cb := r.cfg.Callbacks.OnHandoff; cb != nil {
			cb(u.Key, u.Signals)
		}
		return
	}
	src := r.cfg.Callbacks.HandoffSource
	if src == nil {
		return
	}
	sigs, ok := src(u.Key)
	if !ok || len(sigs) == 0 {
		return
	}
	r.SendHandoff(u.Origin, u.Key, sigs)
}

// mergeModel merges one model publication (highest sequence, then stamp,
// wins) and fires OnModel when it superseded the current model. Used by the
// epoch-0 anti-entropy re-offer path; the durable path embeds the same merge.
func (r *Replicator) mergeModel(u *Update) {
	var fire bool
	r.mu.Lock()
	if u.ModelSeq > r.model.seq || (u.ModelSeq == r.model.seq && u.Stamp > r.model.stamp) {
		r.model = modelEntry{m: u.Model, seq: u.ModelSeq, origin: u.Origin, stamp: u.Stamp}
		fire = true
	}
	r.mu.Unlock()
	for {
		cur := r.modelSeq.Load()
		if u.ModelSeq <= cur || r.modelSeq.CompareAndSwap(cur, u.ModelSeq) {
			break
		}
	}
	if fire {
		if cb := r.cfg.Callbacks.OnModel; cb != nil {
			cb(u.Model, u.ModelSeq)
		}
	}
}

// admitEpoch runs the watermark admission for one durable update: stale
// incarnations and already-applied epochs are rejected; fresh epochs are
// recorded and the contiguous watermark advances (jumping past gaps older
// than StallTimeout, counting the lost epochs).
func (r *Replicator) admitEpoch(u *Update) bool {
	now := r.nowNanos()
	r.wmMu.Lock()
	defer r.wmMu.Unlock()
	os := r.wms[u.Origin]
	if os == nil {
		os = &originState{inc: u.Inc, pending: make(map[uint64]int64)}
		r.wms[u.Origin] = os
	}
	switch {
	case u.Inc < os.inc:
		r.staleInc.Add(1)
		return false
	case u.Inc > os.inc:
		// The origin restarted: its epochs restart dense from 1 under the
		// new incarnation, so the applied window resets with it.
		os.inc = u.Inc
		os.contig = 0
		os.contigPub.Store(0)
		clear(os.pending)
	}
	if u.Epoch <= os.contig {
		r.replays.Add(1)
		return false
	}
	if _, dup := os.pending[u.Epoch]; dup {
		r.replays.Add(1)
		return false
	}
	os.pending[u.Epoch] = now
	r.advanceLocked(os, now)
	return true
}

// advanceLocked moves the contiguous watermark through the pending window,
// jumping past gaps whose successors have waited longer than StallTimeout.
func (r *Replicator) advanceLocked(os *originState, now int64) {
	for {
		if _, ok := os.pending[os.contig+1]; ok {
			delete(os.pending, os.contig+1)
			os.contig++
			continue
		}
		if len(os.pending) == 0 {
			break
		}
		// Gap: find the lowest pending epoch and its age.
		low, oldest := uint64(0), int64(0)
		for e, at := range os.pending {
			if low == 0 || e < low {
				low = e
			}
			if oldest == 0 || at < oldest {
				oldest = at
			}
		}
		if now-oldest < int64(r.cfg.StallTimeout) {
			break
		}
		// The missing epochs are declared lost (the configured epoch-lag
		// bound): count them and jump the watermark to the edge of the gap.
		r.epochGaps.Add(low - os.contig - 1)
		os.contig = low - 1
	}
	os.contigPub.Store(os.contig)
}

// applyDurable merges one durable update into the stores; fromSelf marks a
// local publication (merge + watermark, but no callback echo).
func (r *Replicator) applyDurable(u Update, fromSelf bool) {
	if !r.admitEpoch(&u) {
		return
	}
	if !fromSelf {
		r.applied.Add(1)
		r.recordLag(r.nowNanos() - u.Stamp)
	}

	var fireVerdict bool
	var fireBlock bool
	var fireModel bool
	r.mu.Lock()
	switch u.Kind {
	case KindVerdict:
		rec := VerdictRecord{
			Verdict: detect.Verdict{Class: u.Class, Confidence: u.Confidence, Reason: u.Reason, AtRequest: u.AtRequest},
			Origin:  u.Origin, Inc: u.Inc, Epoch: u.Epoch, Stamp: u.Stamp,
		}
		cur, ok := r.verdicts[u.Key]
		if !ok || verdictLess(cur, rec) {
			r.verdicts[u.Key] = rec
			fireVerdict = true
			if len(r.verdicts) > r.cfg.MaxEntries {
				r.evictVerdictsLocked()
			}
		}
	case KindBlock:
		cur, ok := r.blocks[u.Key]
		if !ok || u.Until > cur.until {
			r.blocks[u.Key] = blockEntry{until: u.Until, origin: u.Origin, inc: u.Inc, epoch: u.Epoch, stamp: u.Stamp}
			fireBlock = true
		}
	case KindModel:
		if u.ModelSeq > r.model.seq || (u.ModelSeq == r.model.seq && u.Stamp > r.model.stamp) {
			r.model = modelEntry{m: u.Model, seq: u.ModelSeq, origin: u.Origin, stamp: u.Stamp}
			fireModel = true
		}
		// Keep the local sequence counter ahead of everything seen, so a
		// trainer failover publishes with a winning sequence.
		for {
			cur := r.modelSeq.Load()
			if u.ModelSeq <= cur || r.modelSeq.CompareAndSwap(cur, u.ModelSeq) {
				break
			}
		}
	}
	r.mu.Unlock()

	if fromSelf {
		return
	}
	cb := r.cfg.Callbacks
	if fireVerdict && cb.OnVerdict != nil {
		cb.OnVerdict(u.Key, detect.Verdict{Class: u.Class, Confidence: u.Confidence, Reason: u.Reason, AtRequest: u.AtRequest}, u.Origin)
	}
	if fireBlock && cb.OnBlock != nil {
		cb.OnBlock(u.Key, time.Unix(0, u.Until))
	}
	if fireModel && cb.OnModel != nil {
		cb.OnModel(u.Model, u.ModelSeq)
	}
}

// verdictLess orders two verdict records deterministically (the merge's
// total order): higher confidence wins, then later stamp, then origin name,
// then incarnation and epoch. Any delivery order of the same update set
// therefore converges on the same winner.
func verdictLess(a, b VerdictRecord) bool {
	if a.Verdict.Confidence != b.Verdict.Confidence {
		return a.Verdict.Confidence < b.Verdict.Confidence
	}
	if a.Stamp != b.Stamp {
		return a.Stamp < b.Stamp
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.Inc != b.Inc {
		return a.Inc < b.Inc
	}
	return a.Epoch < b.Epoch
}

// evictVerdictsLocked drops the oldest-stamped ~10% of verdict entries when
// the store overflows MaxEntries.
func (r *Replicator) evictVerdictsLocked() {
	drop := len(r.verdicts) / 10
	if drop < 1 {
		drop = 1
	}
	type aged struct {
		key   session.Key
		stamp int64
	}
	oldest := make([]aged, 0, len(r.verdicts))
	for k, v := range r.verdicts {
		oldest = append(oldest, aged{k, v.Stamp})
	}
	sort.Slice(oldest, func(i, j int) bool { return oldest[i].stamp < oldest[j].stamp })
	for i := 0; i < drop && i < len(oldest); i++ {
		delete(r.verdicts, oldest[i].key)
	}
}

// recordLag stores one apply-lag sample (origin stamp → local apply).
func (r *Replicator) recordLag(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	r.lagMu.Lock()
	r.lagSamples[r.lagNext] = nanos
	r.lagNext = (r.lagNext + 1) % lagRing
	if r.lagN < lagRing {
		r.lagN++
	}
	r.lagMu.Unlock()
}

// LagQuantile returns the q-quantile (0..1) of recent apply-lag samples as a
// duration, and false when no samples exist.
func (r *Replicator) LagQuantile(q float64) (time.Duration, bool) {
	r.lagMu.Lock()
	n := r.lagN
	buf := make([]int64, n)
	copy(buf, r.lagSamples[:n])
	r.lagMu.Unlock()
	if n == 0 {
		return 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return time.Duration(buf[i]), true
}

// ---- state reads ----

// VerdictFor returns the merged fleet verdict for key, if any.
func (r *Replicator) VerdictFor(key session.Key) (VerdictRecord, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.verdicts[key]
	return rec, ok
}

// BlockedUntil returns the merged block expiry for key (Unix nanos), if any.
func (r *Replicator) BlockedUntil(key session.Key) (int64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.blocks[key]
	return b.until, ok
}

// Model returns the merged fleet model and its sequence.
func (r *Replicator) Model() (*adaboost.Model, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.model.m, r.model.seq
}

// VerdictCount and BlockCount return merged store sizes.
func (r *Replicator) VerdictCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.verdicts)
}

// BlockCount returns the number of merged block entries.
func (r *Replicator) BlockCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.blocks)
}

// Blocks returns a copy of the merged block list.
func (r *Replicator) Blocks() []BlockRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]BlockRecord, 0, len(r.blocks))
	for k, b := range r.blocks {
		out = append(out, BlockRecord{Key: k, Until: b.until, Stamp: b.stamp})
	}
	return out
}

// Digest returns a delivery-order-independent hash of the merged
// verdict/block state, for convergence assertions across nodes.
func (r *Replicator) Digest() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var h uint64
	for k, v := range r.verdicts {
		h ^= entryHash(k, uint64(v.Verdict.Class)<<32|uint64(v.Verdict.Confidence), uint64(v.Stamp))
	}
	for k, b := range r.blocks {
		h ^= entryHash(k, 0x626c6f636b, uint64(b.until))
	}
	return h
}

// entryHash hashes one store entry; entries combine with XOR so iteration
// order is irrelevant.
func entryHash(k session.Key, kind, val uint64) uint64 {
	h := k.Hash() ^ kind*0x9e3779b97f4a7c15 ^ val*0xbf58476d1ce4e5b9
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Watermark returns the applied contiguous epoch for origin (lock-free on
// the hot field; the map lookup takes the watermark mutex briefly).
func (r *Replicator) Watermark(origin string) uint64 {
	r.wmMu.Lock()
	os := r.wms[origin]
	r.wmMu.Unlock()
	if os == nil {
		return 0
	}
	return os.contigPub.Load()
}

// PublishedEpoch returns this origin's own durable epoch counter.
func (r *Replicator) PublishedEpoch() uint64 { return r.epoch.Load() }

// AckedEpoch returns the highest own-origin epoch successfully sent to the
// named peer — the origin-side bound on what a peer can be missing.
func (r *Replicator) AckedEpoch(peerName string) uint64 {
	p, ok := r.peers[peerName]
	if !ok {
		return 0
	}
	return p.acked.Load()
}

// MinAckedEpoch returns the smallest AckedEpoch across peers: every own
// update at or below it survives this node's crash on at least every peer.
func (r *Replicator) MinAckedEpoch() uint64 {
	min := uint64(0)
	first := true
	for _, p := range r.peers {
		a := p.acked.Load()
		if first || a < min {
			min, first = a, false
		}
	}
	return min
}

// Counters returns the replicator's cumulative counters.
type Counters struct {
	Published   uint64
	Applied     uint64
	Replays     uint64
	StaleInc    uint64
	EpochGaps   uint64
	ObsApplied  uint64
	ObsForward  uint64
	AEResends   uint64
	HandoffsIn  uint64
	HandoffsOut uint64
	Dropped     uint64
}

// Stats returns a snapshot of the counters.
func (r *Replicator) Stats() Counters {
	c := Counters{
		Published:   r.published.Load(),
		Applied:     r.applied.Load(),
		Replays:     r.replays.Load(),
		StaleInc:    r.staleInc.Load(),
		EpochGaps:   r.epochGaps.Load(),
		ObsApplied:  r.obsApplied.Load(),
		ObsForward:  r.obsForward.Load(),
		AEResends:   r.aeResends.Load(),
		HandoffsIn:  r.handoffsIn.Load(),
		HandoffsOut: r.handoffsOut.Load(),
	}
	for _, p := range r.peers {
		c.Dropped += uint64(p.dropped.Load())
	}
	return c
}

// ---- sender / anti-entropy / heartbeat goroutines ----

// sender drains one peer's outbox: it batches up to BatchSize updates per
// frame and retries failed sends with doubling backoff + jitter, for at most
// SendPatience per batch. Durable updates dropped after patience runs out
// are repaired by anti-entropy once the peer heals.
func (r *Replicator) sender(p *peer, done chan struct{}) {
	defer r.wg.Done()
	batch := make([]Update, 0, r.cfg.BatchSize)
	for {
		var first Update
		select {
		case <-done:
			return
		case first = <-p.out:
		}
		p.inflight.Store(1)
		batch = append(batch[:0], first)
	drain:
		for len(batch) < r.cfg.BatchSize {
			select {
			case u := <-p.out:
				batch = append(batch, u)
			default:
				break drain
			}
		}
		r.sendBatch(p, batch, done)
		p.inflight.Store(0)
	}
}

// sendBatch delivers one batch with retry; on success it advances the
// peer's acked own-epoch high-water mark.
func (r *Replicator) sendBatch(p *peer, batch []Update, done chan struct{}) {
	msg := &Message{From: r.cfg.Name, Inc: r.inc.Load(), Kind: MsgBatch, Updates: batch}
	backoff := r.cfg.RetryBackoff
	deadline := time.Now().Add(r.cfg.SendPatience)
	for {
		err := r.cfg.Transport.Send(p.name, msg)
		if err == nil {
			p.sent.Add(int64(len(batch)))
			p.lastSendOK.Store(r.nowNanos())
			var maxOwn uint64
			for i := range batch {
				if batch[i].Origin == r.cfg.Name && batch[i].Epoch > maxOwn {
					maxOwn = batch[i].Epoch
				}
			}
			if maxOwn > 0 {
				p.advanceAcked(maxOwn)
			}
			return
		}
		if time.Now().After(deadline) {
			p.dropped.Add(int64(len(batch)))
			return
		}
		select {
		case <-done:
			return
		case <-time.After(backoff + r.jitterDur(backoff/2)):
		}
		backoff *= 2
		if backoff > r.cfg.MaxBackoff {
			backoff = r.cfg.MaxBackoff
		}
	}
}

// jitterDur draws a uniform jitter in [0, max).
func (r *Replicator) jitterDur(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	r.jitterMu.Lock()
	d := time.Duration(r.jitter.Uint64n(uint64(max)))
	r.jitterMu.Unlock()
	return d
}

// peerLoop paces one peer's heartbeats and anti-entropy scans.
func (r *Replicator) peerLoop(p *peer, done chan struct{}) {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.HeartbeatInterval + r.jitterDur(r.cfg.HeartbeatInterval/4))
	defer ticker.Stop()
	aeEvery := int(r.cfg.AntiEntropyInterval / r.cfg.HeartbeatInterval)
	if aeEvery < 1 {
		aeEvery = 1
	}
	n := 0
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			r.sendHeartbeat(p)
			n++
			if n%aeEvery == 0 {
				r.antiEntropy(p)
			}
		}
	}
}

// sendHeartbeat advertises this node's applied watermarks (including its own
// published epochs) to one peer. Failures are ignored — the peer's phi
// detector reads silence as suspicion.
func (r *Replicator) sendHeartbeat(p *peer) {
	r.wmMu.Lock()
	wms := make([]Watermark, 0, len(r.wms))
	for origin, os := range r.wms {
		wms = append(wms, Watermark{Origin: origin, Inc: os.inc, Epoch: os.contig})
	}
	r.wmMu.Unlock()
	msg := &Message{From: r.cfg.Name, Inc: r.inc.Load(), Kind: MsgHeartbeat, Watermarks: wms}
	_ = r.cfg.Transport.Send(p.name, msg)
}

// antiEntropy re-sends store entries the peer's advertised watermarks show
// it to be missing: silent drops, partition backlogs and post-restart
// backfills all heal through this one path. Entries are enqueued through the
// normal outbox (bounded, non-blocking).
func (r *Replicator) antiEntropy(p *peer) {
	if p.lastRecv.Load() == 0 {
		return // never heard from the peer; don't flood a dead outbox
	}
	adv := p.watermarks()
	missing := func(origin string, inc uint32, epoch uint64) bool {
		w, ok := adv[origin]
		if !ok {
			return true
		}
		if w.Inc != inc {
			return w.Inc < inc
		}
		return w.Epoch < epoch
	}
	budget := r.cfg.AntiEntropyBatch
	r.mu.RLock()
	resend := make([]Update, 0, 32)
	for k, v := range r.verdicts {
		if budget <= 0 {
			break
		}
		if missing(v.Origin, v.Inc, v.Epoch) {
			resend = append(resend, Update{
				Origin: v.Origin, Inc: v.Inc, Epoch: v.Epoch, Stamp: v.Stamp, Kind: KindVerdict,
				Key: k, Class: v.Verdict.Class, Confidence: v.Verdict.Confidence,
				Reason: v.Verdict.Reason, AtRequest: v.Verdict.AtRequest,
			})
			budget--
		}
	}
	for k, b := range r.blocks {
		if budget <= 0 {
			break
		}
		if missing(b.origin, b.inc, b.epoch) {
			resend = append(resend, Update{
				Origin: b.origin, Inc: b.inc, Epoch: b.epoch, Stamp: b.stamp, Kind: KindBlock,
				Key: k, Until: b.until,
			})
			budget--
		}
	}
	if r.model.m != nil && budget > 0 {
		// The model entry is keyed by sequence, not epoch; re-offer it
		// whenever the peer might be behind (the merge discards stale ones).
		resend = append(resend, Update{
			Origin: r.model.origin, Inc: r.inc.Load(), Epoch: 0, Stamp: r.model.stamp, Kind: KindModel,
			Model: r.model.m, ModelSeq: r.model.seq,
		})
	}
	r.mu.RUnlock()
	for i := range resend {
		if resend[i].Kind == KindModel {
			// Models ride the fire-and-forget path on re-offer (their merge
			// is sequence-idempotent without epochs).
			r.resendModel(p, resend[i])
			continue
		}
		if p.enqueue(resend[i]) {
			r.aeResends.Add(1)
		}
	}
}

// resendModel re-offers the merged model to a peer through its outbox.
func (r *Replicator) resendModel(p *peer, u Update) {
	if p.enqueue(u) {
		r.aeResends.Add(1)
	}
}
