//go:build race

package session

// raceEnabled gates allocation assertions: the race runtime changes
// sync.Pool and allocator behaviour, so alloc-gate tests still exercise
// their paths under -race but skip the numeric ceiling.
const raceEnabled = true
