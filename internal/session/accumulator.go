package session

import (
	"botdetect/internal/features"
	"botdetect/internal/logfmt"
)

// Accumulator incrementally computes a session's request counters (and hence
// its Table 2 attribute vector) from a request stream, optionally truncated
// to the first Limit requests. It shares the tracker's counting
// implementation (Counts.observe) and path-tracking bound, so offline replay
// and the prefix-classifier experiments (Figure 4) derive vectors identical
// to what the online tracker publishes for the same stream.
type Accumulator struct {
	// Limit caps the number of requests considered (0 = unlimited).
	Limit int64

	counts Counts
	paths  pathTable
}

// NewAccumulator creates an Accumulator considering at most limit requests
// (0 for unlimited). It uses the tracker's compact hashed path set.
func NewAccumulator(limit int64) *Accumulator {
	return &Accumulator{Limit: limit}
}

// NewAccumulatorExact is NewAccumulator with exact path-string storage
// instead of the hashed set — the reference implementation the differential
// test compares the compact representation against.
func NewAccumulatorExact(limit int64) *Accumulator {
	return &Accumulator{Limit: limit, paths: pathTable{exact: make(map[string]bool)}}
}

// Observe adds one request if the limit has not been reached. It reports
// whether the request was counted.
func (a *Accumulator) Observe(e logfmt.Entry) bool {
	if a.Limit > 0 && int64(a.counts.Total) >= a.Limit {
		return false
	}
	a.counts.observe(e, &a.paths, DefaultMaxTrackedPaths)
	return true
}

// Requests returns the number of requests counted so far.
func (a *Accumulator) Requests() int64 { return int64(a.counts.Total) }

// Counts returns the accumulated counters.
func (a *Accumulator) Counts() Counts { return a.counts }

// Vector returns the attribute vector over the counted requests.
func (a *Accumulator) Vector() features.Vector { return a.counts.Vector() }
