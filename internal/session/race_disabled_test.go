//go:build !race

package session

const raceEnabled = false
