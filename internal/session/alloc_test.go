package session

import (
	"fmt"
	"testing"
)

// TestObserveQuietPeekZeroAlloc gates the steady-state request path the
// million-session engine is built around: once a session exists and its path
// table has grown to cover the working set, observing a request, peeking the
// published snapshot and releasing the pin must allocate nothing. The run
// crosses power-of-two epoch bumps, so the 2-slot snapshot arena's republish
// path is inside the measured region too.
func TestObserveQuietPeekZeroAlloc(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	key := Key{IP: "9.9.9.9", UserAgent: "Firefox"}

	// Warm up: create the session and insert the full working set of paths
	// so the open-addressed table is done growing before measurement.
	for i := 0; i < 64; i++ {
		tr.ObserveQuiet(entry("9.9.9.9", "Firefox", "GET", fmt.Sprintf("/p%d.html", i%8), 200, "", now))
	}

	e := entry("9.9.9.9", "Firefox", "GET", "/p0.html", 200, "", now)
	allocs := testing.AllocsPerRun(500, func() {
		tr.ObserveQuiet(e)
		snap, ok := tr.Peek(key)
		if !ok {
			t.Fatal("session vanished mid-run")
		}
		if snap.Counts.Total == 0 {
			t.Fatal("empty snapshot")
		}
		snap.Release()
	})
	if raceEnabled {
		t.Skip("alloc ceiling not meaningful under -race")
	}
	if allocs != 0 {
		t.Errorf("steady-state observe+peek = %v allocs/op, want 0", allocs)
	}
}
