package session

import (
	"fmt"
	"testing"
	"time"

	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
)

// synthCorpus generates a deterministic logfmt request stream shaped like the
// CoDeeN traces the paper analyses: a skewed path popularity distribution,
// link-following referrers (pointing at previously fetched pages), unseen
// referrers, embedded objects, CGI hits and error statuses. Enough distinct
// paths are generated to overflow DefaultMaxTrackedPaths, so the corpus
// exercises the tracked-path cap as well as the open-addressed set's growth.
func synthCorpus(seed uint64, n int) []logfmt.Entry {
	src := rng.New(seed)
	zipf := rng.NewZipf(src, 4096, 1.2)
	start := time.Unix(1136073600, 0) // 2006-01-01, the paper's trace era
	entries := make([]logfmt.Entry, 0, n)
	var visited []string
	for i := 0; i < n; i++ {
		p := zipf.Next()
		var path, ctype string
		status := 200
		switch {
		case p%7 == 3:
			path = fmt.Sprintf("/img/%d.jpg", p)
			ctype = "image/jpeg"
		case p%11 == 5:
			path = fmt.Sprintf("/cgi-bin/q?id=%d", p)
			ctype = "text/html"
		default:
			path = fmt.Sprintf("/doc/%d.html", p)
			ctype = "text/html"
		}
		switch src.Uint64() % 16 {
		case 0:
			status = 404
		case 1:
			status = 304
		}
		ref := ""
		switch src.Uint64() % 4 {
		case 0, 1:
			if len(visited) > 0 {
				ref = "http://example.com" + visited[src.Uint64()%uint64(len(visited))]
			}
		case 2:
			ref = fmt.Sprintf("http://elsewhere.example/%d.html", src.Uint64()%1000)
		}
		method := "GET"
		if src.Uint64()%64 == 0 {
			method = "HEAD"
		}
		entries = append(entries, logfmt.Entry{
			Time: start.Add(time.Duration(i) * time.Second), ClientIP: "203.0.113.7",
			UserAgent: "Mozilla/4.0 (compatible; MSIE 6.0)", Method: method, Path: path,
			Status: status, Bytes: int64(1000 + p), Referer: ref, ContentType: ctype,
		})
		visited = append(visited, path)
	}
	return entries
}

// TestHashedPathsMatchExactAccumulator replays synthetic corpora through the
// compact hashed path set and the exact string-set escape hatch and requires
// bit-identical feature vectors — the differential proof (ISSUE 9) that the
// 8-byte-per-path representation changes nothing the detector can observe.
func TestHashedPathsMatchExactAccumulator(t *testing.T) {
	for _, tc := range []struct {
		seed uint64
		n    int
	}{
		{1, 500},
		{2, 5000},   // overflows DefaultMaxTrackedPaths' distinct-path cap
		{3, 20000},  // deep stream, heavy path reuse
		{99, 64},    // short session
	} {
		hashed := NewAccumulator(0)
		exact := NewAccumulatorExact(0)
		for _, e := range synthCorpus(tc.seed, tc.n) {
			hashed.Observe(e)
			exact.Observe(e)
		}
		if hashed.Counts() != exact.Counts() {
			t.Errorf("seed %d: counts diverge\nhashed: %+v\nexact:  %+v",
				tc.seed, hashed.Counts(), exact.Counts())
		}
		if hashed.Vector() != exact.Vector() {
			t.Errorf("seed %d: feature vectors diverge\nhashed: %v\nexact:  %v",
				tc.seed, hashed.Vector(), exact.Vector())
		}
	}
}

// TestHashedPathsMatchExactTracker is the same differential proof at the
// tracker level: two trackers, one compact and one with Config.ExactPaths,
// fed an identical multi-session stream must publish bit-identical snapshots
// (features, counts, epochs).
func TestHashedPathsMatchExactTracker(t *testing.T) {
	compact, vc1 := newTestTracker(Config{})
	exact, _ := newTestTracker(Config{ExactPaths: true})

	base := vc1.Now()
	for sess := 0; sess < 8; sess++ {
		ip := fmt.Sprintf("198.51.100.%d", sess)
		for i, e := range synthCorpus(uint64(sess+1), 600) {
			e.ClientIP = ip
			e.Time = base.Add(time.Duration(i) * time.Millisecond)
			compact.Observe(e)
			exact.Observe(e)
		}
	}

	for sess := 0; sess < 8; sess++ {
		key := Key{IP: fmt.Sprintf("198.51.100.%d", sess), UserAgent: "Mozilla/4.0 (compatible; MSIE 6.0)"}
		a, okA := compact.Get(key)
		b, okB := exact.Get(key)
		if !okA || !okB {
			t.Fatalf("session %d: tracked = %v/%v", sess, okA, okB)
		}
		if a.Counts != b.Counts {
			t.Errorf("session %d: counts diverge\ncompact: %+v\nexact:   %+v", sess, a.Counts, b.Counts)
		}
		if a.Features != b.Features {
			t.Errorf("session %d: features diverge\ncompact: %v\nexact:   %v", sess, a.Features, b.Features)
		}
		if a.Epoch != b.Epoch {
			t.Errorf("session %d: epoch diverge %d vs %d", sess, a.Epoch, b.Epoch)
		}
	}
}
