package session

import (
	"testing"
	"unsafe"
)

// TestSessionStructBudgets pins the memory layout the million-session plan is
// built on. The per-session ceiling (ISSUE 9) is 2 KiB including snapshot
// arena and bookkeeping overhead; the struct budgets below leave headroom for
// the shard-map entries and allocator rounding that MemoryEstimate charges via
// sessionOverheadBytes. A failure here means a field was added (or widened)
// without re-deriving the budget — grow the budget consciously or shrink the
// struct, do not silently bump the number.
func TestSessionStructBudgets(t *testing.T) {
	budgets := []struct {
		name string
		size uintptr
		max  uintptr
	}{
		// sessionState embeds the 2-slot snapshot arena; staying ≤ 1024 keeps
		// it in the 1 KiB allocator size class (1.3 KiB/session all-in).
		{"sessionState", unsafe.Sizeof(sessionState{}), 1024},
		// Snapshot is copied on Get/Each and embedded twice in the arena.
		{"Snapshot", unsafe.Sizeof(Snapshot{}), 344},
		// Counts went int64 → uint32: 13 counters + Bytes in 72 bytes.
		{"Counts", unsafe.Sizeof(Counts{}), 72},
		// Signals is a flat first-observation array, one uint32 per signal.
		{"Signals", unsafe.Sizeof(Signals{}), uintptr(4 * numSignals)},
		{"pathTable", unsafe.Sizeof(pathTable{}), 40},
	}
	for _, b := range budgets {
		if b.size > b.max {
			t.Errorf("%s = %d bytes, exceeds the %d-byte budget", b.name, b.size, b.max)
		}
	}

	// The MemoryEstimate constants must stay derived from the live layout.
	if sessionStructBytes != int64(unsafe.Sizeof(sessionState{})) {
		t.Errorf("sessionStructBytes = %d, want unsafe.Sizeof(sessionState{}) = %d",
			sessionStructBytes, unsafe.Sizeof(sessionState{}))
	}
	if sessionBaseBytes != sessionStructBytes+sessionOverheadBytes {
		t.Errorf("sessionBaseBytes = %d, want struct (%d) + overhead (%d)",
			sessionBaseBytes, sessionStructBytes, sessionOverheadBytes)
	}
	// Worst-case per-session estimate at the tracker's defaults: base +
	// a full path table (2048 entries → 4096 slots × 8 B would blow the
	// budget, but DefaultMaxTrackedPaths caps insertions at 2048 →
	// at most 4096 slots) is the documented ceiling case, not the steady
	// state; the steady-state budget is base + minPathSlots.
	steady := sessionBaseBytes + int64(minPathSlots)*8
	if steady > 2048 {
		t.Errorf("steady-state per-session estimate %d exceeds the 2 KiB ceiling", steady)
	}
}
