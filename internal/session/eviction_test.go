package session

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCapacityEvictionPrefersAnonymous pins the overload guarantee: a full
// shard never evicts an evidence-bearing session while an anonymous victim
// is within the scan window, even when the evidence session is the strict
// LRU tail — the exact position a flood of brand-new clients would wash out
// under plain LRU.
func TestCapacityEvictionPrefersAnonymous(t *testing.T) {
	var mu sync.Mutex
	var gone []Key
	tr, vc := newTestTracker(Config{MaxSessions: 4, Shards: 1, Evicted: func(s Snapshot) {
		mu.Lock()
		gone = append(gone, s.Key)
		mu.Unlock()
	}})
	now := vc.Now()

	tr.Observe(entry("10.0.0.1", "UA", "GET", "/a.html", 200, "", now))
	if _, ok := tr.Mark(Key{IP: "10.0.0.1", UserAgent: "UA"}, SignalMouse); !ok {
		t.Fatal("Mark on tracked session failed")
	}
	// Later activity on three anonymous sessions pushes the evidence
	// session to the LRU tail.
	for i, ip := range []string{"10.0.0.2", "10.0.0.3", "10.0.0.4"} {
		tr.Observe(entry(ip, "UA", "GET", "/a.html", 200, "", now.Add(time.Duration(i+1)*time.Minute)))
	}

	// The fifth session overflows the cap. The tail (10.0.0.1) carries a
	// signal, so the scan must skip it and evict the oldest anonymous
	// session (10.0.0.2) instead.
	tr.Observe(entry("10.0.0.5", "UA", "GET", "/a.html", 200, "", now.Add(10*time.Minute)))

	if _, ok := tr.Get(Key{IP: "10.0.0.1", UserAgent: "UA"}); !ok {
		t.Fatal("evidence-bearing LRU-tail session was evicted; want an anonymous victim")
	}
	if _, ok := tr.Get(Key{IP: "10.0.0.2", UserAgent: "UA"}); ok {
		t.Fatal("oldest anonymous session still tracked; want it evicted")
	}
	if got := tr.EvictedByReason(EvictCapacityAnonymous); got != 1 {
		t.Fatalf("EvictCapacityAnonymous = %d, want 1", got)
	}
	if got := tr.EvictedByReason(EvictCapacityEvidence); got != 0 {
		t.Fatalf("EvictCapacityEvidence = %d, want 0", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gone) != 1 || gone[0] != (Key{IP: "10.0.0.2", UserAgent: "UA"}) {
		t.Fatalf("Evicted callback saw %v, want exactly [{10.0.0.2 UA}]", gone)
	}
}

// TestCapacityEvictionAllEvidenceBouncesNewcomer: when every established
// session carries evidence, the anonymous newcomer that caused the overflow
// is itself the best victim in the scan window — a flood of fresh clients
// can cycle through the one spare slot forever without displacing a single
// evidence-bearing session. Only an *evidence-bearing* newcomer forces the
// strict-LRU fallback, reported under its own reason so operators can see
// the bound was genuinely exceeded.
func TestCapacityEvictionAllEvidenceBouncesNewcomer(t *testing.T) {
	tr, vc := newTestTracker(Config{MaxSessions: 3, Shards: 1})
	now := vc.Now()
	for i := 0; i < 3; i++ {
		ip := fmt.Sprintf("10.0.1.%d", i+1)
		at := now.Add(time.Duration(i) * time.Minute)
		tr.Observe(entry(ip, "UA", "GET", "/a.html", 200, "", at))
		if _, ok := tr.Mark(Key{IP: ip, UserAgent: "UA"}, SignalJS); !ok {
			t.Fatalf("Mark(%s) failed", ip)
		}
	}

	// Anonymous overflow: the newcomer bounces, everyone with evidence stays.
	tr.Observe(entry("10.0.1.99", "UA", "GET", "/a.html", 200, "", now.Add(time.Hour/2)))
	if _, ok := tr.Get(Key{IP: "10.0.1.99", UserAgent: "UA"}); ok {
		t.Fatal("anonymous newcomer admitted into an all-evidence table; want it bounced")
	}
	for i := 0; i < 3; i++ {
		ip := fmt.Sprintf("10.0.1.%d", i+1)
		if _, ok := tr.Get(Key{IP: ip, UserAgent: "UA"}); !ok {
			t.Fatalf("evidence session %s displaced by an anonymous newcomer", ip)
		}
	}
	if got := tr.EvictedByReason(EvictCapacityAnonymous); got != 1 {
		t.Fatalf("EvictCapacityAnonymous = %d, want 1 (the bounced newcomer)", got)
	}

	// An evidence-bearing newcomer (Mark creates the session) leaves no
	// anonymous victim anywhere: strict LRU evicts the tail.
	if _, ok := tr.Mark(Key{IP: "10.0.1.50", UserAgent: "UA"}, SignalMouse); !ok {
		t.Fatal("Mark on a new key did not create the session")
	}
	if _, ok := tr.Get(Key{IP: "10.0.1.1", UserAgent: "UA"}); ok {
		t.Fatal("LRU tail survived an all-evidence overflow; want strict-LRU fallback")
	}
	if got := tr.EvictedByReason(EvictCapacityEvidence); got != 1 {
		t.Fatalf("EvictCapacityEvidence = %d, want 1", got)
	}
}

// TestEvictionStatsRollup: the aggregate view and the per-reason counters
// must agree, and idle expiry must not masquerade as capacity pressure.
func TestEvictionStatsRollup(t *testing.T) {
	tr, vc := newTestTracker(Config{MaxSessions: 2, Shards: 1, IdleTimeout: time.Hour})
	now := vc.Now()
	tr.Observe(entry("10.9.0.1", "UA", "GET", "/a.html", 200, "", now))
	tr.Observe(entry("10.9.0.2", "UA", "GET", "/a.html", 200, "", now.Add(time.Minute)))
	tr.Observe(entry("10.9.0.3", "UA", "GET", "/a.html", 200, "", now.Add(2*time.Minute))) // capacity
	vc.Advance(3 * time.Hour)
	tr.ExpireIdle(vc.Now()) // idle
	tr.Observe(entry("10.9.0.4", "UA", "GET", "/a.html", 200, "", vc.Now()))
	tr.FlushAll() // flush

	st := tr.Evictions()
	if st.CapacityAnonymous != 1 || st.CapacityEvidence != 0 {
		t.Fatalf("capacity counts = %+v", st)
	}
	if st.Idle != 2 {
		t.Fatalf("Idle = %d, want 2", st.Idle)
	}
	if st.Flush != 1 {
		t.Fatalf("Flush = %d, want 1", st.Flush)
	}
	total := st.Idle + st.CapacityAnonymous + st.CapacityEvidence + st.Flush
	if got := tr.Evictions(); got != st {
		t.Fatalf("Evictions not stable: %+v vs %+v", got, st)
	}
	if total != 4 {
		t.Fatalf("total evictions = %d, want 4", total)
	}
}
