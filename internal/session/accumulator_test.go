package session

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"botdetect/internal/features"
	"botdetect/internal/logfmt"
)

func entryAt(method, path string, status int, ref string) logfmt.Entry {
	return logfmt.Entry{
		Time: time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC), ClientIP: "1.1.1.1",
		UserAgent: "UA", Method: method, Path: path, Status: status, Referer: ref, Bytes: 100,
	}
}

func TestCountsVectorZero(t *testing.T) {
	v := Counts{}.Vector()
	for i, val := range v {
		if val != 0 {
			t.Fatalf("attribute %d = %f for empty counts", i, val)
		}
	}
}

func TestCountsVectorValues(t *testing.T) {
	c := Counts{
		Total: 10, Head: 1, HTML: 4, Image: 3, CGI: 2, Favicon: 1,
		Embedded: 4, WithReferrer: 6, UnseenReferrer: 2, LinkFollowing: 4,
		Status2xx: 7, Status3xx: 1, Status4xx: 2,
	}
	v := c.Vector()
	want := map[int]float64{
		features.HeadPct: 0.1, features.HTMLPct: 0.4, features.ImagePct: 0.3,
		features.CGIPct: 0.2, features.FaviconPct: 0.1, features.EmbeddedObjPct: 0.4,
		features.ReferrerPct: 0.6, features.UnseenReferrerPct: 0.2, features.LinkFollowingPct: 0.4,
		features.Resp2xxPct: 0.7, features.Resp3xxPct: 0.1, features.Resp4xxPct: 0.2,
	}
	for idx, w := range want {
		if math.Abs(v[idx]-w) > 1e-9 {
			t.Fatalf("attribute %s = %f, want %f", features.Names[idx], v[idx], w)
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMatchesTrackerSemantics(t *testing.T) {
	reqs := []logfmt.Entry{
		entryAt("GET", "/index.html", 200, ""),
		entryAt("GET", "/a.css", 200, "http://h/index.html"),
		entryAt("GET", "/b.jpg", 200, "http://h/index.html"),
		entryAt("HEAD", "/index.html", 200, ""),
		entryAt("GET", "/cgi-bin/x.cgi?q=1", 302, "http://elsewhere/page.html"),
		entryAt("GET", "/favicon.ico", 404, ""),
	}
	acc := NewAccumulator(0)
	for _, e := range reqs {
		if !acc.Observe(e) {
			t.Fatal("Observe rejected a request with no limit")
		}
	}
	if acc.Requests() != 6 {
		t.Fatalf("Requests = %d", acc.Requests())
	}
	c := acc.Counts()
	if c.Head != 1 || c.HTML != 2 || c.CGI != 1 || c.Favicon != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.WithReferrer != 3 || c.LinkFollowing != 2 || c.UnseenReferrer != 1 {
		t.Fatalf("referrer counts = %+v", c)
	}
	v := acc.Vector()
	if math.Abs(v[features.ReferrerPct]-0.5) > 1e-9 {
		t.Fatalf("REFERRER%% = %f", v[features.ReferrerPct])
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorLimit(t *testing.T) {
	acc := NewAccumulator(3)
	for i := 0; i < 10; i++ {
		acc.Observe(entryAt("GET", "/p.html", 200, ""))
	}
	if acc.Requests() != 3 {
		t.Fatalf("Requests = %d, want 3 (limit)", acc.Requests())
	}
	if acc.Observe(entryAt("GET", "/p.html", 200, "")) {
		t.Fatal("Observe should report false beyond the limit")
	}
}

func TestAccumulatorVsTrackerEquivalence(t *testing.T) {
	// The offline accumulator and the online tracker must produce identical
	// attribute vectors for the same request stream, and the tracker's
	// incrementally maintained Snapshot.Features must equal both.
	reqs := []logfmt.Entry{
		entryAt("GET", "/index.html", 200, ""),
		entryAt("GET", "/style.css", 200, "http://x/index.html"),
		entryAt("GET", "/p1.html", 200, "http://x/index.html"),
		entryAt("GET", "/img.gif", 200, "http://x/p1.html"),
		entryAt("POST", "/cgi-bin/form.cgi", 500, "http://x/p1.html"),
		entryAt("GET", "/missing.html", 404, "http://other/site.html"),
		entryAt("HEAD", "/p2.html", 200, ""),
		entryAt("GET", "/favicon.ico", 200, ""),
	}
	tracker := NewTracker(Config{})
	acc := NewAccumulator(0)
	var snap Snapshot
	for _, e := range reqs {
		snap = tracker.Observe(e)
		acc.Observe(e)
	}
	vOnline := snap.Features
	vOffline := acc.Vector()
	for i := range vOnline {
		if math.Abs(vOnline[i]-vOffline[i]) > 1e-12 {
			t.Fatalf("attribute %s differs: online %f offline %f", features.Names[i], vOnline[i], vOffline[i])
		}
	}
	if got := snap.Counts.Vector(); got != snap.Features {
		t.Fatalf("published Features %v != Counts.Vector() %v", snap.Features, got)
	}
}

func TestCountsVectorBoundedProperty(t *testing.T) {
	f := func(head, html, img, cgi, ref, unseen, emb, link, s2, s3, s4, fav uint8, extra uint8) bool {
		// Build counts where each category is at most Total.
		total := uint32(head) + uint32(html) + uint32(img) + uint32(extra) + 1
		clamp := func(v uint8) uint32 {
			x := uint32(v)
			if x > total {
				return total
			}
			return x
		}
		c := Counts{
			Total: total, Head: clamp(head), HTML: clamp(html), Image: clamp(img), CGI: clamp(cgi),
			WithReferrer: clamp(ref), UnseenReferrer: clamp(unseen), Embedded: clamp(emb),
			LinkFollowing: clamp(link), Status2xx: clamp(s2), Status3xx: clamp(s3), Status4xx: clamp(s4),
			Favicon: clamp(fav),
		}
		return c.Vector().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochBumpsOnlyOnStateChanges(t *testing.T) {
	tracker := NewTracker(Config{DecisionMarks: []int64{5}})
	key := Key{IP: "1.1.1.1", UserAgent: "UA"}

	// First request: creation (epoch 1) + new classes (GET, HTML, 2xx).
	snap := tracker.Observe(entryAt("GET", "/a.html", 200, ""))
	first := snap.Epoch
	if first == 0 {
		t.Fatal("epoch must start non-zero")
	}
	// Identical requests introduce no new class: epoch stays flat.
	snap = tracker.Observe(entryAt("GET", "/a.html", 200, ""))
	snap = tracker.Observe(entryAt("GET", "/a.html", 200, ""))
	if snap.Epoch != first {
		t.Fatalf("epoch moved on identical requests: %d -> %d", first, snap.Epoch)
	}
	// A new request class bumps it.
	snap = tracker.Observe(entryAt("HEAD", "/a.html", 200, ""))
	afterHead := snap.Epoch
	if afterHead <= first {
		t.Fatalf("new request class did not bump epoch: %d", afterHead)
	}
	// Crossing the decision mark (request 5) bumps it.
	snap = tracker.Observe(entryAt("HEAD", "/a.html", 200, ""))
	if snap.Epoch <= afterHead {
		t.Fatalf("decision mark did not bump epoch: %d", snap.Epoch)
	}
	atMark := snap.Epoch
	// A newly observed signal bumps it; re-marking does not.
	s, newly := tracker.Mark(key, SignalCSS)
	if !newly || s.Epoch <= atMark {
		t.Fatalf("signal did not bump epoch: newly=%v epoch=%d", newly, s.Epoch)
	}
	s2, newly2 := tracker.Mark(key, SignalCSS)
	if newly2 || s2.Epoch != s.Epoch {
		t.Fatalf("re-marked signal changed epoch: %d -> %d", s.Epoch, s2.Epoch)
	}
}

func TestPeekSharesPublishedSnapshot(t *testing.T) {
	tracker := NewTracker(Config{})
	key := Key{IP: "2.2.2.2", UserAgent: "Mozilla Firefox"}
	tracker.Observe(logfmt.Entry{ClientIP: key.IP, UserAgent: key.UserAgent, Method: "GET", Path: "/x.html", Status: 200})

	p1, ok := tracker.Peek(key)
	if !ok || p1 == nil {
		t.Fatal("Peek missed a tracked session")
	}
	p2, _ := tracker.Peek(key)
	if p1 != p2 {
		t.Fatal("Peek must return the shared published snapshot")
	}
	if p1.Cache() == nil {
		t.Fatal("tracker snapshots must carry a verdict-cache slot")
	}
	if p1.NormUA != "mozillafirefox" {
		t.Fatalf("NormUA = %q", p1.NormUA)
	}
	if _, ok := tracker.Peek(Key{IP: "none"}); ok {
		t.Fatal("Peek invented a session")
	}
	// The cache slot is shared across republishes and respects epochs.
	p1.Cache().Store(p1.Epoch, 7, "verdict")
	if v, ok := p1.Cache().Load(p1.Epoch, 7); !ok || v != "verdict" {
		t.Fatal("cache round-trip failed")
	}
	if _, ok := p1.Cache().Load(p1.Epoch+1, 7); ok {
		t.Fatal("cache hit across session epochs")
	}
	if _, ok := p1.Cache().Load(p1.Epoch, 8); ok {
		t.Fatal("cache hit across model epochs")
	}
	tracker.Observe(logfmt.Entry{ClientIP: key.IP, UserAgent: key.UserAgent, Method: "HEAD", Path: "/x.html", Status: 200})
	p3, _ := tracker.Peek(key)
	if p3.Cache() != p1.Cache() {
		t.Fatal("cache slot must be shared across republished snapshots")
	}
}
