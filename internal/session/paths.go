package session

import "botdetect/internal/shard"

// pathTable is the per-session set of visited paths backing the
// link-following vs unseen-referrer split. The split needs membership only,
// never the path strings back, so the default representation is an
// open-addressed set of 64-bit FNV-1a hashes: 8 bytes per entry instead of a
// map bucket plus the full path string (~48 B + len(path) each). A hash
// collision between two distinct paths within one session misclassifies at
// most one referrer and is vanishingly unlikely (birthday bound over ≤2048
// entries in a 64-bit space ≈ 2e-13).
//
// Setting exact (Config.ExactPaths / NewAccumulatorExact) stores full path
// strings instead; the differential test uses it to prove the hashed set
// derives byte-identical feature vectors on real corpora.
type pathTable struct {
	hashes []uint64 // power-of-two open-addressed set; 0 = empty slot
	n      int      // live entries in hashes
	exact  map[string]bool // non-nil = exactness escape hatch
}

// minPathSlots is the initial open-addressed table size (power of two).
const minPathSlots = 16

// exactPathEntryBytes approximates one exact-mode map entry beyond the
// string bytes (map bucket share + string header).
const exactPathEntryBytes = 48

func pathHash(p string) uint64 {
	h := shard.HashString(p)
	if h == 0 {
		return 1 // 0 marks an empty slot
	}
	return h
}

// len returns the number of distinct paths recorded.
func (pt *pathTable) len() int {
	if pt.exact != nil {
		return len(pt.exact)
	}
	return pt.n
}

// contains reports whether the path was recorded.
func (pt *pathTable) contains(p string) bool {
	if pt.exact != nil {
		return pt.exact[p]
	}
	if pt.n == 0 {
		return false
	}
	h := pathHash(p)
	mask := uint64(len(pt.hashes) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch pt.hashes[i] {
		case 0:
			return false
		case h:
			return true
		}
	}
}

// insert records the path, growing the table as needed. There are no
// deletions: sessions only accumulate paths until the caller's cap.
func (pt *pathTable) insert(p string) {
	if pt.exact != nil {
		pt.exact[p] = true
		return
	}
	h := pathHash(p)
	if pt.hashes == nil {
		pt.hashes = make([]uint64, minPathSlots)
	}
	mask := uint64(len(pt.hashes) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch pt.hashes[i] {
		case h:
			return
		case 0:
			pt.hashes[i] = h
			pt.n++
			if pt.n*4 >= len(pt.hashes)*3 { // grow at 75% load
				pt.grow()
			}
			return
		}
	}
}

func (pt *pathTable) grow() {
	old := pt.hashes
	pt.hashes = make([]uint64, 2*len(old))
	mask := uint64(len(pt.hashes) - 1)
	for _, h := range old {
		if h == 0 {
			continue
		}
		for i := h & mask; ; i = (i + 1) & mask {
			if pt.hashes[i] == 0 {
				pt.hashes[i] = h
				break
			}
		}
	}
}

// footprintBytes approximates the table's heap footprint, charged to the
// tracker's memory estimate by delta on every observation.
func (pt *pathTable) footprintBytes() int64 {
	if pt.exact != nil {
		return int64(len(pt.exact)) * exactPathEntryBytes
	}
	return int64(len(pt.hashes)) * 8
}
