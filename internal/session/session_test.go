package session

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/logfmt"
)

func entry(ip, ua, method, path string, status int, referer string, at time.Time) logfmt.Entry {
	return logfmt.Entry{
		Time: at, ClientIP: ip, UserAgent: ua, Method: method, Path: path,
		Status: status, Referer: referer, Bytes: 1000,
	}
}

func newTestTracker(cfg Config) (*Tracker, *clock.Virtual) {
	vc := clock.NewVirtual(time.Time{})
	cfg.Clock = vc
	return NewTracker(cfg), vc
}

func TestObserveCreatesAndCounts(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	snap := tr.Observe(entry("1.1.1.1", "Firefox", "GET", "/index.html", 200, "", now))
	if snap.Key != (Key{IP: "1.1.1.1", UserAgent: "Firefox"}) {
		t.Fatalf("key = %+v", snap.Key)
	}
	if snap.Counts.Total != 1 || snap.Counts.HTML != 1 || snap.Counts.Get != 1 {
		t.Fatalf("counts = %+v", snap.Counts)
	}
	if tr.Active() != 1 {
		t.Fatalf("Active = %d", tr.Active())
	}
}

// TestObserveQuietStaysExactUnderLock verifies the dirty-republish
// contract: quiet observes skip per-request publication, but every locked
// reader (Get, Each, FlushAll) sees exact counts, and the lock-free Peek
// snapshot catches up at every epoch-changing event.
func TestObserveQuietStaysExactUnderLock(t *testing.T) {
	tr, vc := newTestTracker(Config{DecisionMarks: []int64{10}})
	now := vc.Now()
	key := Key{IP: "9.9.9.9", UserAgent: "UA"}
	for i := 0; i < 25; i++ {
		tr.ObserveQuiet(entry(key.IP, key.UserAgent, "GET", "/a.html", 200, "", now))
	}
	if snap, ok := tr.Get(key); !ok || snap.Counts.Total != 25 {
		t.Fatalf("Get after quiet observes: ok=%v counts=%+v, want Total=25", ok, snap.Counts)
	}
	// Peek may lag, but never past the last power-of-two epoch bump (16).
	if snap, ok := tr.Peek(key); !ok || snap.Counts.Total < 16 {
		t.Fatalf("Peek after quiet observes: ok=%v Total=%d, want >= 16", ok, snap.Counts.Total)
	}
	tr.ObserveQuiet(entry(key.IP, key.UserAgent, "GET", "/b.html", 200, "", now))
	seen := false
	tr.Each(func(s Snapshot) bool {
		if s.Key == key {
			seen = true
			if s.Counts.Total != 26 {
				t.Fatalf("Each snapshot Total = %d, want 26", s.Counts.Total)
			}
		}
		return true
	})
	if !seen {
		t.Fatal("session missing from Each")
	}
	snaps := tr.FlushAll()
	if len(snaps) != 1 || snaps[0].Counts.Total != 26 {
		t.Fatalf("FlushAll = %+v, want one session with Total=26", snaps)
	}
}

// TestObserveQuietMatchesObserve pins quiet and loud observes to identical
// session state: same entries, same final snapshot (modulo the cache slot).
func TestObserveQuietMatchesObserve(t *testing.T) {
	loud, vc := newTestTracker(Config{DecisionMarks: []int64{10}})
	quiet, _ := newTestTracker(Config{DecisionMarks: []int64{10}, Clock: vc})
	now := vc.Now()
	key := Key{IP: "8.8.8.8", UserAgent: "UA"}
	paths := []string{"/a.html", "/s.css", "/i.jpg", "/a.html", "/b.html"}
	for round := 0; round < 4; round++ {
		for _, p := range paths {
			e := entry(key.IP, key.UserAgent, "GET", p, 200, "", now)
			loud.Observe(e)
			quiet.ObserveQuiet(e)
		}
	}
	a, okA := loud.Get(key)
	b, okB := quiet.Get(key)
	if !okA || !okB {
		t.Fatalf("sessions missing: %v %v", okA, okB)
	}
	if a.Counts != b.Counts || a.Epoch != b.Epoch || a.Features != b.Features {
		t.Fatalf("quiet state diverged:\n loud: counts=%+v epoch=%d\n quiet: counts=%+v epoch=%d",
			a.Counts, a.Epoch, b.Counts, b.Epoch)
	}
}

func TestDistinctKeysDistinctSessions(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	tr.Observe(entry("1.1.1.1", "Firefox", "GET", "/a.html", 200, "", now))
	tr.Observe(entry("1.1.1.1", "Wget", "GET", "/a.html", 200, "", now))
	tr.Observe(entry("2.2.2.2", "Firefox", "GET", "/a.html", 200, "", now))
	if tr.Active() != 3 {
		t.Fatalf("Active = %d, want 3 (<IP,UA> keying)", tr.Active())
	}
}

func TestCountsClassification(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	ip, ua := "3.3.3.3", "UA"
	reqs := []logfmt.Entry{
		entry(ip, ua, "GET", "/index.html", 200, "", now),
		entry(ip, ua, "GET", "/style.css", 200, "http://site/index.html", now),
		entry(ip, ua, "GET", "/pic.jpg", 200, "http://site/index.html", now),
		entry(ip, ua, "HEAD", "/index.html", 200, "", now),
		entry(ip, ua, "GET", "/cgi-bin/q.cgi?x=1", 302, "http://other-site/ref.html", now),
		entry(ip, ua, "GET", "/missing.html", 404, "", now),
		entry(ip, ua, "POST", "/cgi-bin/q.cgi", 500, "", now),
		entry(ip, ua, "GET", "/favicon.ico", 200, "", now),
	}
	var snap Snapshot
	for _, e := range reqs {
		snap = tr.Observe(e)
	}
	c := snap.Counts
	if c.Total != 8 {
		t.Fatalf("Total = %d", c.Total)
	}
	if c.Head != 1 || c.Post != 1 || c.Get != 6 {
		t.Fatalf("methods: %+v", c)
	}
	if c.HTML != 3 { // index.html, HEAD index.html, missing.html
		t.Fatalf("HTML = %d", c.HTML)
	}
	if c.Image != 2 { // pic.jpg + favicon.ico
		t.Fatalf("Image = %d", c.Image)
	}
	if c.CGI != 2 {
		t.Fatalf("CGI = %d", c.CGI)
	}
	if c.Favicon != 1 {
		t.Fatalf("Favicon = %d", c.Favicon)
	}
	if c.Embedded != 3 { // style.css, pic.jpg, favicon.ico
		t.Fatalf("Embedded = %d", c.Embedded)
	}
	if c.WithReferrer != 3 {
		t.Fatalf("WithReferrer = %d", c.WithReferrer)
	}
	// /index.html was visited before the css/jpg requests referencing it,
	// so those two are link-following; the cgi request's referer was never
	// visited by this session.
	if c.LinkFollowing != 2 || c.UnseenReferrer != 1 {
		t.Fatalf("LinkFollowing = %d UnseenReferrer = %d", c.LinkFollowing, c.UnseenReferrer)
	}
	if c.Status2xx != 5 || c.Status3xx != 1 || c.Status4xx != 1 || c.Status5xx != 1 {
		t.Fatalf("status counts: %+v", c)
	}
	if c.Bytes != 8000 {
		t.Fatalf("Bytes = %d", c.Bytes)
	}
}

func TestEmbeddedCountExpectation(t *testing.T) {
	// Keep the embedded-object expectation from the previous test honest:
	// exactly css, jpg, favicon are embedded there. This test isolates it.
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	ip, ua := "3.3.3.4", "UA"
	tr.Observe(entry(ip, ua, "GET", "/style.css", 200, "", now))
	tr.Observe(entry(ip, ua, "GET", "/pic.jpg", 200, "", now))
	snap := tr.Observe(entry(ip, ua, "GET", "/favicon.ico", 200, "", now))
	if snap.Counts.Embedded != 3 {
		t.Fatalf("Embedded = %d, want 3", snap.Counts.Embedded)
	}
}

func TestMarkSignalsAndFirstObservation(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	key := Key{IP: "4.4.4.4", UserAgent: "Moz"}
	for i := 0; i < 5; i++ {
		tr.Observe(entry(key.IP, key.UserAgent, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now))
	}
	snap, newly := tr.Mark(key, SignalCSS)
	if !newly || !snap.Has(SignalCSS) {
		t.Fatal("first Mark should set the signal")
	}
	if at, _ := snap.SignalAt(SignalCSS); at != 5 {
		t.Fatalf("SignalAt = %d, want 5", at)
	}
	// More requests, then a second signal: its first-observation count differs.
	for i := 5; i < 12; i++ {
		tr.Observe(entry(key.IP, key.UserAgent, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now))
	}
	snap, newly = tr.Mark(key, SignalMouse)
	if !newly {
		t.Fatal("mouse signal should be newly set")
	}
	if at, _ := snap.SignalAt(SignalMouse); at != 12 {
		t.Fatalf("mouse SignalAt = %d, want 12", at)
	}
	// Re-marking is not "newly" and does not change the request count.
	snap, newly = tr.Mark(key, SignalCSS)
	if newly {
		t.Fatal("second Mark of the same signal should not be newly")
	}
	if at, _ := snap.SignalAt(SignalCSS); at != 5 {
		t.Fatalf("CSS SignalAt changed to %d", at)
	}
}

func TestMarkBeforeAnyRequest(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	key := Key{IP: "5.5.5.5", UserAgent: "X"}
	snap, newly := tr.Mark(key, SignalJS)
	if !newly {
		t.Fatal("Mark should create the session")
	}
	if at, _ := snap.SignalAt(SignalJS); at != 1 {
		t.Fatalf("signal at %d, want 1", at)
	}
	if tr.Active() != 1 {
		t.Fatal("session not created by Mark")
	}
}

func TestIdleTimeoutSplitsSessions(t *testing.T) {
	var evicted []Snapshot
	tr, vc := newTestTracker(Config{IdleTimeout: time.Hour, Evicted: func(s Snapshot) { evicted = append(evicted, s) }})
	key := Key{IP: "6.6.6.6", UserAgent: "UA"}
	tr.Observe(entry(key.IP, key.UserAgent, "GET", "/a.html", 200, "", vc.Now()))
	tr.Observe(entry(key.IP, key.UserAgent, "GET", "/b.html", 200, "", vc.Now().Add(30*time.Minute)))
	// 2 hours later: new session.
	snap := tr.Observe(entry(key.IP, key.UserAgent, "GET", "/c.html", 200, "", vc.Now().Add(150*time.Minute)))
	if snap.Counts.Total != 1 {
		t.Fatalf("new session Total = %d, want 1", snap.Counts.Total)
	}
	if len(evicted) != 1 || evicted[0].Counts.Total != 2 {
		t.Fatalf("evicted = %+v", evicted)
	}
	if tr.Ended() != 1 {
		t.Fatalf("Ended = %d", tr.Ended())
	}
}

func TestExpireIdle(t *testing.T) {
	var evicted int
	tr, vc := newTestTracker(Config{IdleTimeout: time.Hour, Evicted: func(Snapshot) { evicted++ }})
	now := vc.Now()
	for i := 0; i < 10; i++ {
		tr.Observe(entry(fmt.Sprintf("7.7.7.%d", i), "UA", "GET", "/a.html", 200, "", now))
	}
	// Half the sessions stay active (refreshed within the idle timeout).
	for i := 0; i < 5; i++ {
		tr.Observe(entry(fmt.Sprintf("7.7.7.%d", i), "UA", "GET", "/b.html", 200, "", now.Add(30*time.Minute)))
	}
	n := tr.ExpireIdle(now.Add(80 * time.Minute))
	if n != 5 || evicted != 5 {
		t.Fatalf("ExpireIdle = %d, evicted = %d, want 5", n, evicted)
	}
	if tr.Active() != 5 {
		t.Fatalf("Active = %d", tr.Active())
	}
}

func TestMaxSessionsEviction(t *testing.T) {
	// Shards: 1 pins every session to one shard so the global LRU eviction
	// order is exact; with more shards the cap is distributed per shard.
	var evicted []Snapshot
	tr, vc := newTestTracker(Config{MaxSessions: 3, Shards: 1, Evicted: func(s Snapshot) { evicted = append(evicted, s) }})
	now := vc.Now()
	for i := 0; i < 6; i++ {
		tr.Observe(entry(fmt.Sprintf("8.8.8.%d", i), "UA", "GET", "/a.html", 200, "", now.Add(time.Duration(i)*time.Minute)))
	}
	if tr.Active() != 3 {
		t.Fatalf("Active = %d", tr.Active())
	}
	if len(evicted) != 3 {
		t.Fatalf("evicted %d sessions", len(evicted))
	}
	// Oldest sessions were evicted.
	if evicted[0].Key.IP != "8.8.8.0" {
		t.Fatalf("first evicted = %s", evicted[0].Key.IP)
	}
}

func TestSnapshotsSortedAndFlushAll(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	base := vc.Now()
	tr.Observe(entry("9.9.9.2", "UA", "GET", "/a.html", 200, "", base.Add(2*time.Second)))
	tr.Observe(entry("9.9.9.1", "UA", "GET", "/a.html", 200, "", base.Add(time.Second)))
	tr.Observe(entry("9.9.9.3", "UA", "GET", "/a.html", 200, "", base.Add(3*time.Second)))
	snaps := tr.Snapshots()
	if len(snaps) != 3 || snaps[0].Key.IP != "9.9.9.1" || snaps[2].Key.IP != "9.9.9.3" {
		t.Fatalf("snapshots order: %v", []string{snaps[0].Key.IP, snaps[1].Key.IP, snaps[2].Key.IP})
	}
	flushed := tr.FlushAll()
	if len(flushed) != 3 {
		t.Fatalf("FlushAll returned %d", len(flushed))
	}
	if tr.Active() != 0 {
		t.Fatal("sessions remain after FlushAll")
	}
	if tr.Ended() != 3 {
		t.Fatalf("Ended = %d", tr.Ended())
	}
}

func TestGet(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	key := Key{IP: "10.0.0.1", UserAgent: "UA"}
	if _, ok := tr.Get(key); ok {
		t.Fatal("Get on missing session should report false")
	}
	tr.Observe(entry(key.IP, key.UserAgent, "GET", "/a.html", 200, "", vc.Now()))
	snap, ok := tr.Get(key)
	if !ok || snap.Counts.Total != 1 {
		t.Fatalf("Get = %+v, %v", snap, ok)
	}
}

func TestSignalStringNames(t *testing.T) {
	names := map[Signal]string{
		SignalCSS: "css", SignalJS: "js", SignalMouse: "mouse", SignalHidden: "hidden-link",
		SignalCaptcha: "captcha", SignalUAMismatch: "ua-mismatch", SignalDecoy: "decoy",
		SignalReplay: "replay", Signal(99): "unknown",
	}
	for sig, want := range names {
		if sig.String() != want {
			t.Fatalf("%d.String() = %q, want %q", sig, sig.String(), want)
		}
	}
}

func TestRefererPathNormalisation(t *testing.T) {
	cases := map[string]string{
		"http://www.example.com/a/b.html":     "/a/b.html",
		"http://www.example.com/a/b.html?q=1": "/a/b.html",
		"https://example.com":                 "/",
		"/relative/path.html#frag":            "/relative/path.html",
		"":                                    "/",
	}
	for in, want := range cases {
		if got := refererPath(in); got != want {
			t.Fatalf("refererPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDurationAndSnapshotIndependence(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	key := Key{IP: "11.0.0.1", UserAgent: "UA"}
	start := vc.Now()
	tr.Observe(entry(key.IP, key.UserAgent, "GET", "/a.html", 200, "", start))
	snap1 := tr.Observe(entry(key.IP, key.UserAgent, "GET", "/b.html", 200, "", start.Add(10*time.Minute)))
	if snap1.Duration() != 10*time.Minute {
		t.Fatalf("Duration = %v", snap1.Duration())
	}
	// Mutating the returned snapshot must not affect the tracker: Signals is
	// a value type now, so overwriting the copy's field is purely local.
	snap1.Signals = MakeSignals(map[Signal]int64{SignalCSS: 1})
	snap2, _ := tr.Get(key)
	if snap2.Has(SignalCSS) {
		t.Fatal("snapshot mutation leaked into tracker state")
	}
}

func TestConcurrentObserveAndMark(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := Key{IP: fmt.Sprintf("12.0.0.%d", g), UserAgent: "UA"}
			for i := 0; i < 200; i++ {
				tr.Observe(entry(key.IP, key.UserAgent, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now))
				if i%10 == 0 {
					tr.Mark(key, SignalCSS)
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Active() != 8 {
		t.Fatalf("Active = %d", tr.Active())
	}
	for _, s := range tr.Snapshots() {
		if s.Counts.Total != 200 {
			t.Fatalf("session %s total = %d", s.Key.IP, s.Counts.Total)
		}
		if !s.Has(SignalCSS) {
			t.Fatalf("session %s missing CSS signal", s.Key.IP)
		}
	}
}

func TestShardedMaxSessionsBoundsTotal(t *testing.T) {
	// With the default shard count the MaxSessions bound is distributed over
	// the shards: the tracker never holds more than MaxSessions sessions
	// (modulo per-shard rounding) and evicts the locally least recent ones.
	tr, vc := newTestTracker(Config{MaxSessions: 64})
	now := vc.Now()
	for i := 0; i < 1000; i++ {
		tr.Observe(entry(fmt.Sprintf("14.%d.%d.%d", i/250, i%250, i%7), fmt.Sprintf("UA-%d", i%11), "GET", "/a.html", 200, "", now.Add(time.Duration(i)*time.Second)))
	}
	perShard := (64 + tr.ShardCount() - 1) / tr.ShardCount()
	if tr.Active() > perShard*tr.ShardCount() {
		t.Fatalf("Active = %d exceeds distributed bound %d", tr.Active(), perShard*tr.ShardCount())
	}
	if tr.Active()+int(tr.Ended()) != 1000 {
		t.Fatalf("active %d + ended %d != 1000", tr.Active(), tr.Ended())
	}
}

func TestShardDistribution(t *testing.T) {
	// The FNV-1a key hash must spread realistic <IP, UA> keys evenly over the
	// shards: no empty shard and no shard with more than 2x the mean load.
	tr, _ := newTestTracker(Config{Shards: 32})
	const n = 8192
	counts := make([]int, tr.ShardCount())
	uas := []string{"Firefox/1.5", "MSIE 6.0", "Googlebot/2.1", "Wget/1.10", ""}
	for i := 0; i < n; i++ {
		key := Key{
			IP:        fmt.Sprintf("%d.%d.%d.%d", 10+i%80, (i/250)%250, i%250, 1+i%17),
			UserAgent: uas[i%len(uas)],
		}
		counts[tr.ShardIndex(key)]++
	}
	mean := n / tr.ShardCount()
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys", i)
		}
		if c > 2*mean {
			t.Fatalf("shard %d received %d keys (mean %d): hash is skewed", i, c, mean)
		}
	}
	// Different shard counts must still be powers of two.
	for _, in := range []int{0, 1, 3, 5, 16, 33} {
		tr2 := NewTracker(Config{Shards: in})
		n := tr2.ShardCount()
		if n&(n-1) != 0 || n == 0 {
			t.Fatalf("Shards=%d gave non-power-of-two shard count %d", in, n)
		}
	}
}

func TestKeyHashSeparatorDisambiguates(t *testing.T) {
	a := Key{IP: "ab", UserAgent: "c"}
	b := Key{IP: "a", UserAgent: "bc"}
	if a.Hash() == b.Hash() {
		t.Fatal("boundary-shifted keys hash identically: separator missing")
	}
}

func TestSweepStepCoversAllShards(t *testing.T) {
	var evicted int
	tr, vc := newTestTracker(Config{IdleTimeout: time.Hour, Evicted: func(Snapshot) { evicted++ }})
	now := vc.Now()
	for i := 0; i < 200; i++ {
		tr.Observe(entry(fmt.Sprintf("15.0.%d.%d", i/250, i%250), "UA", "GET", "/a.html", 200, "", now))
	}
	later := now.Add(2 * time.Hour)
	// One full round of SweepStep calls must expire every idle session.
	for i := 0; i < tr.ShardCount(); i++ {
		tr.SweepStep(later)
	}
	if tr.Active() != 0 || evicted != 200 {
		t.Fatalf("after full sweep: active=%d evicted=%d", tr.Active(), evicted)
	}
}

func TestEachStreamsAndStopsEarly(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	for i := 0; i < 50; i++ {
		tr.Observe(entry(fmt.Sprintf("16.0.0.%d", i), "UA", "GET", "/a.html", 200, "", now))
	}
	seen := 0
	tr.Each(func(Snapshot) bool { seen++; return true })
	if seen != 50 {
		t.Fatalf("Each visited %d sessions, want 50", seen)
	}
	seen = 0
	tr.Each(func(Snapshot) bool { seen++; return seen < 10 })
	if seen != 10 {
		t.Fatalf("early-stopping Each visited %d sessions, want 10", seen)
	}
}

func TestFlushEachStreams(t *testing.T) {
	var evicted int
	tr, vc := newTestTracker(Config{Evicted: func(Snapshot) { evicted++ }})
	now := vc.Now()
	for i := 0; i < 30; i++ {
		tr.Observe(entry(fmt.Sprintf("17.0.0.%d", i), "UA", "GET", "/a.html", 200, "", now))
	}
	flushed := 0
	tr.FlushEach(func(Snapshot) { flushed++ })
	if flushed != 30 || evicted != 30 {
		t.Fatalf("flushed=%d evicted=%d, want 30", flushed, evicted)
	}
	if tr.Active() != 0 {
		t.Fatal("sessions remain after FlushEach")
	}
}

func TestConcurrentOverlappingKeysWithExpiry(t *testing.T) {
	// Goroutines hammer Observe/Mark on OVERLAPPING keys while another
	// goroutine runs ExpireIdle/SweepStep: exercises shard locking under
	// contention (run with -race).
	tr, vc := newTestTracker(Config{IdleTimeout: time.Hour})
	now := vc.Now()
	keys := make([]Key, 16)
	for i := range keys {
		keys[i] = Key{IP: fmt.Sprintf("18.0.0.%d", i), UserAgent: "UA"}
	}
	var sweeper, writers sync.WaitGroup
	stop := make(chan struct{})
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.ExpireIdle(now)
				tr.SweepStep(now)
			}
		}
	}()
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 400; i++ {
				k := keys[(g+i)%len(keys)]
				tr.Observe(entry(k.IP, k.UserAgent, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now))
				if i%7 == 0 {
					tr.Mark(k, SignalCSS)
				}
				if i%13 == 0 {
					tr.Get(k)
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	sweeper.Wait()
	if tr.Active() != len(keys) {
		t.Fatalf("Active = %d, want %d", tr.Active(), len(keys))
	}
	total := int64(0)
	tr.Each(func(s Snapshot) bool { total += int64(s.Counts.Total); return true })
	if total != 8*400 {
		t.Fatalf("total observed requests = %d, want %d", total, 8*400)
	}
}

func TestCountsConsistencyProperty(t *testing.T) {
	tr, vc := newTestTracker(Config{})
	now := vc.Now()
	invocation := 0
	f := func(paths []uint16, statuses []uint8) bool {
		if len(paths) == 0 {
			return true
		}
		invocation++
		ip := fmt.Sprintf("13.0.%d.%d", invocation/256, invocation%256)
		key := Key{IP: ip, UserAgent: "prop"}
		var snap Snapshot
		for i, p := range paths {
			status := 200
			if i < len(statuses) {
				status = 200 + int(statuses[i]%4)*100
			}
			path := fmt.Sprintf("/f%d.html", p%50)
			if p%5 == 0 {
				path = fmt.Sprintf("/img%d.jpg", p%50)
			}
			snap = tr.Observe(entry(key.IP, key.UserAgent, "GET", path, status, "", now))
		}
		c := snap.Counts
		if int(c.Total) != len(paths) {
			return false
		}
		if c.Head+c.Get+c.Post != c.Total {
			return false
		}
		if c.Status2xx+c.Status3xx+c.Status4xx+c.Status5xx > c.Total {
			return false
		}
		if c.WithReferrer != c.LinkFollowing+c.UnseenReferrer {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
