package session

// Signals records, for each detection signal, the request count at which it
// was first observed (1-based; 0 = unobserved). It replaces the former
// map[Signal]int64: the signal space is a small fixed enum, so a flat uint32
// array is both smaller (36 bytes vs a heap map) and copyable by value —
// publishing a snapshot no longer allocates or shares a map.
type Signals struct {
	at [numSignals]uint32
}

// Has reports whether the signal was observed.
func (s *Signals) Has(sig Signal) bool {
	return int(sig) >= 0 && int(sig) < numSignals && s.at[sig] != 0
}

// At returns the request count at which the signal was first observed and
// whether it was observed at all.
func (s *Signals) At(sig Signal) (int64, bool) {
	if !s.Has(sig) {
		return 0, false
	}
	return int64(s.at[sig]), true
}

// Any reports whether any signal was observed.
func (s *Signals) Any() bool {
	for _, v := range s.at {
		if v != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of distinct signals observed.
func (s *Signals) Count() int {
	n := 0
	for _, v := range s.at {
		if v != 0 {
			n++
		}
	}
	return n
}

// Each calls yield for every observed signal in Signal order, stopping early
// when yield returns false.
func (s *Signals) Each(yield func(sig Signal, at int64) bool) {
	for i, v := range s.at {
		if v != 0 && !yield(Signal(i), int64(v)) {
			return
		}
	}
}

// MakeSignals builds a Signals value from a map of signal → first-observation
// request count — the fixture shape tests and offline tools use. Counts are
// clamped into uint32 (0 becomes 1, matching set's first-observation floor).
func MakeSignals(m map[Signal]int64) Signals {
	var s Signals
	for sig, at := range m {
		if at < 0 {
			at = 0
		}
		if at > 0xffffffff {
			at = 0xffffffff
		}
		s.set(sig, uint32(at))
	}
	return s
}

// set records the signal's first observation. Later sets are ignored (first
// observation wins, matching the former map semantics where Mark only wrote
// an absent key).
func (s *Signals) set(sig Signal, at uint32) {
	if int(sig) >= 0 && int(sig) < numSignals && s.at[sig] == 0 {
		if at == 0 {
			at = 1
		}
		s.at[sig] = at
	}
}
