package proxy

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"

	"botdetect/internal/core"
	"botdetect/internal/htmlmod"
)

// connKeyType keys the per-connection serve state in the request context.
type connKeyType struct{}

var connKey connKeyType

// connState is one connection's reusable serve-path working set: the numeric
// page keys and injection fragments (core.PageState), the streaming rewriter
// with its carry and vectored-write buffers, and the response streamer
// itself. A keep-alive client reuses all of it across every request on its
// connection, so the steady-state HTML page serve allocates nothing.
//
// inUse guards the state against concurrent requests multiplexed onto one
// connection (HTTP/2 streams share a ConnContext): the first request on the
// wire claims the state with a CAS, concurrent losers fall back to
// per-request allocation, and the claim is dropped when the response
// finishes.
type connState struct {
	inUse atomic.Bool
	ps    core.PageState
	rw    htmlmod.StreamRewriter
	st    responseStreamer
}

// ConnContext attaches a fresh connState to an accepted connection. Install
// it on the serving http.Server:
//
//	srv := &http.Server{Handler: mw, ConnContext: proxy.ConnContext}
//
// Without it the middleware still works, paying per-request pooled state
// instead of per-connection reuse.
func ConnContext(ctx context.Context, c net.Conn) context.Context {
	return context.WithValue(ctx, connKey, new(connState))
}

// claimConn returns the request's connection state if this request is the
// sole current claimant, else nil.
func claimConn(r *http.Request) *connState {
	cs, _ := r.Context().Value(connKey).(*connState)
	if cs == nil || !cs.inUse.CompareAndSwap(false, true) {
		return nil
	}
	return cs
}
