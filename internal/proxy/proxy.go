// Package proxy adapts the detection core to net/http: it is the deployment
// vehicle corresponding to the instrumented CoDeeN proxies in the paper. The
// middleware intercepts instrumentation requests (beacons, generated
// stylesheets and scripts, hidden links, CAPTCHA endpoints), observes
// ordinary requests for session tracking, rewrites HTML responses on the way
// to the client, and enforces the policy engine's decisions on
// robot-classified sessions.
package proxy

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"time"

	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/logfmt"
	"botdetect/internal/policy"
	"botdetect/internal/session"
)

// Config controls the middleware.
type Config struct {
	// Engine is the detection engine; required.
	Engine *core.Engine
	// Policy optionally enforces throttling/blocking on robot sessions.
	Policy *policy.Engine
	// Captcha optionally serves challenge/verify endpoints under the
	// instrumentation prefix.
	Captcha *captcha.Service
	// MaxRewriteBytes caps the size of HTML bodies buffered for rewriting;
	// larger responses are passed through unmodified (default 2 MiB).
	MaxRewriteBytes int
	// TrustForwardedFor uses the first X-Forwarded-For address as the client
	// IP when present (for deployments behind another proxy).
	TrustForwardedFor bool
}

func (c Config) withDefaults() Config {
	if c.MaxRewriteBytes <= 0 {
		c.MaxRewriteBytes = 2 << 20
	}
	return c
}

// Middleware wraps an origin handler with detection and enforcement.
type Middleware struct {
	cfg    Config
	origin http.Handler
}

// New creates the middleware around the given origin handler. It panics if
// cfg.Engine is nil, since the middleware is useless without it.
func New(origin http.Handler, cfg Config) *Middleware {
	if cfg.Engine == nil {
		panic("proxy: Config.Engine is required")
	}
	return &Middleware{cfg: cfg.withDefaults(), origin: origin}
}

// Engine returns the wrapped detection engine.
func (m *Middleware) Engine() *core.Engine { return m.cfg.Engine }

// ServeHTTP implements http.Handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	clientIP := m.clientIP(r)
	ua := r.UserAgent()
	key := session.Key{IP: clientIP, UserAgent: ua}
	d := m.cfg.Engine

	// CAPTCHA endpoints live under the instrumentation prefix but are
	// handled before generic beacon dispatch.
	if m.cfg.Captcha != nil && m.handleCaptcha(w, r, key) {
		return
	}

	// Instrumentation traffic: beacons, generated objects, hidden links.
	if resp, ok := d.HandleBeacon(clientIP, ua, r.URL.RequestURI()); ok {
		writeDetectorResponse(w, resp)
		return
	}

	// Policy enforcement for already-blocked or newly classified robots.
	if m.cfg.Policy != nil {
		if snap, tracked := d.Session(key); tracked {
			decision := m.cfg.Policy.Evaluate(snap, d.ClassifySnapshot(snap))
			switch decision.Action {
			case policy.Block:
				http.Error(w, "blocked: "+decision.Reason, http.StatusForbidden)
				return
			case policy.Throttle:
				// Throttling is implemented as a constant service delay, the
				// cheapest fair approximation without per-session queues.
				time.Sleep(10 * time.Millisecond)
			}
		}
	}

	// Serve from origin, buffering so HTML can be rewritten and the response
	// status/size can be observed for session tracking.
	rec := &bufferingWriter{header: make(http.Header), limit: m.cfg.MaxRewriteBytes}
	m.origin.ServeHTTP(rec, r)

	entry := logfmt.Entry{
		Time:        time.Now(),
		ClientIP:    clientIP,
		Method:      r.Method,
		Path:        r.URL.RequestURI(),
		Protocol:    r.Proto,
		Status:      rec.status(),
		Bytes:       int64(rec.body.Len()),
		Referer:     r.Referer(),
		UserAgent:   ua,
		ContentType: rec.header.Get("Content-Type"),
	}
	d.ObserveRequest(entry)

	body := rec.body.Bytes()
	isHTML := strings.Contains(strings.ToLower(rec.header.Get("Content-Type")), "text/html")
	if isHTML && rec.status() == http.StatusOK && !rec.overflowed && r.Method == http.MethodGet {
		rewritten, _ := d.InstrumentPage(clientIP, ua, r.URL.Path, body)
		body = rewritten
	}

	copyHeader(w.Header(), rec.header)
	w.Header().Del("Content-Length")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if isHTML {
		// Rewritten pages carry per-view keys and must not be cached.
		w.Header().Set("Cache-Control", "no-cache, no-store")
	}
	w.WriteHeader(rec.status())
	if r.Method != http.MethodHead {
		_, _ = w.Write(body)
	}
}

// handleCaptcha serves GET <prefix>/captcha/new and POST <prefix>/captcha/verify.
// It returns true when the request was a CAPTCHA endpoint.
func (m *Middleware) handleCaptcha(w http.ResponseWriter, r *http.Request, key session.Key) bool {
	prefix := m.cfg.Engine.Config().BeaconPrefix + "/captcha/"
	if !strings.HasPrefix(r.URL.Path, prefix) {
		return false
	}
	switch strings.TrimPrefix(r.URL.Path, prefix) {
	case "new":
		ch := m.cfg.Captcha.Issue(key)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache, no-store")
		fmt.Fprintf(w, "id=%s\nquestion=%s\n", ch.ID, ch.Question)
	case "verify":
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return true
		}
		id := r.Form.Get("id")
		answer := r.Form.Get("answer")
		if m.cfg.Captcha.Verify(id, answer) {
			m.cfg.Engine.MarkCaptchaPassed(key)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		} else {
			http.Error(w, "wrong answer", http.StatusForbidden)
		}
	default:
		http.NotFound(w, r)
	}
	return true
}

// clientIP extracts the client address.
func (m *Middleware) clientIP(r *http.Request) string {
	if m.cfg.TrustForwardedFor {
		if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
			first := strings.TrimSpace(strings.Split(fwd, ",")[0])
			if first != "" {
				return first
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeDetectorResponse writes a core.Response to the client.
func writeDetectorResponse(w http.ResponseWriter, resp core.Response) {
	w.Header().Set("Content-Type", resp.ContentType)
	if resp.NoCache {
		w.Header().Set("Cache-Control", "no-cache, no-store")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// bufferingWriter captures the origin's response for observation and
// rewriting. Bodies beyond the limit mark the writer as overflowed; content
// is still captured (callers skip rewriting but still serve it).
type bufferingWriter struct {
	header     http.Header
	statusCode int
	body       bytes.Buffer
	limit      int
	overflowed bool
}

func (b *bufferingWriter) Header() http.Header { return b.header }

func (b *bufferingWriter) WriteHeader(code int) {
	if b.statusCode == 0 {
		b.statusCode = code
	}
}

func (b *bufferingWriter) Write(p []byte) (int, error) {
	if b.statusCode == 0 {
		b.statusCode = http.StatusOK
	}
	if b.body.Len()+len(p) > b.limit {
		b.overflowed = true
	}
	return b.body.Write(p)
}

func (b *bufferingWriter) status() int {
	if b.statusCode == 0 {
		return http.StatusOK
	}
	return b.statusCode
}

// NewReverseProxy builds a middleware that forwards to the given upstream
// origin URL, protecting an existing site without modifying it (the
// "protect an origin you do not control" deployment).
func NewReverseProxy(upstream *url.URL, cfg Config) *Middleware {
	rp := httputil.NewSingleHostReverseProxy(upstream)
	return New(rp, cfg)
}
