// Package proxy adapts the detection core to net/http: it is the deployment
// vehicle corresponding to the instrumented CoDeeN proxies in the paper. The
// middleware intercepts instrumentation requests (beacons, generated
// stylesheets and scripts, hidden links, CAPTCHA endpoints), observes
// ordinary requests for session tracking, rewrites HTML responses on the way
// to the client, and enforces the policy engine's decisions on
// robot-classified sessions.
//
// Responses are streamed, not buffered: HTML bodies flow through a zero-copy
// streaming injector (htmlmod.StreamRewriter) that splices the
// instrumentation in at the head/body anchors as the origin produces bytes,
// so time-to-first-byte is proportional to the distance to the first anchor
// rather than to the document length, and non-HTML bodies are forwarded
// verbatim with no size cap. Only documents whose anchors arrive in a
// pathological order (no <head> before the first <body>) are held back, up
// to MaxRewriteBytes, for a whole-document rewrite.
package proxy

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/htmlmod"
	"botdetect/internal/logfmt"
	"botdetect/internal/policy"
	"botdetect/internal/session"
)

// Config controls the middleware.
type Config struct {
	// Engine is the detection engine; required.
	Engine *core.Engine
	// Policy optionally enforces throttling/blocking on robot sessions.
	Policy *policy.Engine
	// Captcha optionally serves challenge/verify endpoints under the
	// instrumentation prefix.
	Captcha *captcha.Service
	// MaxRewriteBytes caps the bytes the streaming rewriter may retain while
	// a decision is pending: a document with no <head> before its first
	// <body> is buffered whole for the fallback rewrite, and raw-text
	// content (an inline script or style body) is held until its end tag.
	// Documents that exceed the cap are forwarded verbatim from that point
	// on (default 2 MiB). Well-anchored HTML whose raw-text spans fit the
	// cap streams regardless of total document size.
	MaxRewriteBytes int
	// TrustForwardedFor uses the first X-Forwarded-For address as the client
	// IP when present (for deployments behind another proxy).
	TrustForwardedFor bool
	// Upstream configures the origin transport, retries, per-request deadline
	// and circuit breaker for middleware built with NewReverseProxy. Ignored
	// for in-process origin handlers.
	Upstream UpstreamConfig
}

func (c Config) withDefaults() Config {
	if c.MaxRewriteBytes <= 0 {
		c.MaxRewriteBytes = 2 << 20
	}
	return c
}

// Middleware wraps an origin handler with detection and enforcement.
type Middleware struct {
	cfg    Config
	origin http.Handler

	// breaker/upstream are set by NewReverseProxy; nil for in-process origins.
	breaker  *Breaker
	upstream *upstreamTripper
}

// New creates the middleware around the given origin handler. It panics if
// cfg.Engine is nil, since the middleware is useless without it.
func New(origin http.Handler, cfg Config) *Middleware {
	if cfg.Engine == nil {
		panic("proxy: Config.Engine is required")
	}
	return &Middleware{cfg: cfg.withDefaults(), origin: origin}
}

// Engine returns the wrapped detection engine.
func (m *Middleware) Engine() *core.Engine { return m.cfg.Engine }

// ServeHTTP implements http.Handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	clientIP := m.clientIP(r)
	ua := r.UserAgent()
	key := session.Key{IP: clientIP, UserAgent: ua}
	d := m.cfg.Engine
	tel := d.Telemetry()

	// CAPTCHA endpoints live under the instrumentation prefix but are
	// handled before generic beacon dispatch.
	if m.cfg.Captcha != nil && m.handleCaptcha(w, r, key) {
		tel.RequestsCaptcha.Inc()
		tel.ProxyRequest.ObserveSince(start)
		return
	}

	// Instrumentation traffic: beacons, generated objects, hidden links.
	if resp, ok := d.HandleBeacon(clientIP, ua, requestURI(r)); ok {
		writeDetectorResponse(w, resp)
		tel.RequestsBeacon.Inc()
		tel.ProxyRequest.ObserveSince(start)
		return
	}

	// Policy enforcement: the escalation ladder is driven by the detection
	// chain's (cached) verdict, read off the tracker's published snapshot
	// without copying it.
	if m.cfg.Policy != nil {
		if snap, verdict, tracked := d.Decide(key); tracked {
			decision := m.cfg.Policy.Evaluate(*snap, verdict)
			snap.Release()
			switch decision.Action {
			case policy.Block:
				http.Error(w, "blocked: "+decision.Reason, http.StatusForbidden)
				tel.RequestsBlocked.Inc()
				tel.ProxyRequest.ObserveSince(start)
				return
			case policy.Challenge:
				m.writeChallenge(w, decision)
				tel.RequestsChallenged.Inc()
				tel.ProxyRequest.ObserveSince(start)
				return
			case policy.Throttle:
				// Throttling is implemented as a constant service delay, the
				// cheapest fair approximation without per-session queues.
				tel.RequestsThrottled.Inc()
				time.Sleep(10 * time.Millisecond)
			}
		}
	}

	// Serve from origin, streaming the response through: HTML bodies pass
	// through the streaming injector as they are produced, everything else
	// is forwarded verbatim. Status and size are observed for session
	// tracking once the response completes. A connection accepted through
	// proxy.ConnContext carries its own streamer/rewriter/page state, reused
	// across keep-alive requests; otherwise (or when HTTP/2 streams race for
	// it) the state is allocated per request.
	var st *responseStreamer
	if cs := claimConn(r); cs != nil {
		st = &cs.st
		st.reset(m, w, r, clientIP, ua)
		st.conn = cs
	} else {
		st = &responseStreamer{m: m, w: w, req: r, clientIP: clientIP, ua: ua}
	}
	// Admission control: under load the engine degrades instrumentation for
	// anonymous arrivals and, when saturated, serves brand-new clients as
	// uninstrumented pass-through (no session created) so a flash crowd
	// cannot wash evidence-bearing sessions out of the tracker. At normal
	// load this is a single atomic load — the zero-alloc serve path keeps
	// its budget.
	st.admission = d.AdmitPage(clientIP, ua)
	m.serveOrigin(st, r)
	st.finish()
	tel.RequestsOrigin.Inc()
	tel.ProxyRequest.ObserveSince(start)

	// The snapshot a plain Observe returns would be discarded here — the
	// policy check above reads the published one — so record quietly.
	// Pass-through requests are deliberately not observed: admitting them to
	// the tracker is exactly the load being shed.
	if st.admission != core.AdmitPassThrough {
		d.ObserveRequestQuiet(logfmt.Entry{
			Time:        time.Now(),
			ClientIP:    clientIP,
			Method:      r.Method,
			Path:        requestURI(r),
			Protocol:    r.Proto,
			Status:      st.status,
			Bytes:       st.originBytes,
			Referer:     r.Referer(),
			UserAgent:   ua,
			ContentType: st.contentType,
		})
	}
	if cs := st.conn; cs != nil {
		st.conn = nil
		st.w, st.req = nil, nil
		cs.inUse.Store(false)
	}
}

// serveOrigin runs the origin handler with abort hygiene: when the handler
// panics mid-response — httputil.ReverseProxy raises http.ErrAbortHandler
// after the upstream dies with the headers already sent — the request's
// pooled state is released and the connection claim dropped before the panic
// continues to net/http, which tears the client connection down. The panic
// must NOT be swallowed: recovering and returning normally would end the
// response with a clean terminal chunk, presenting a truncated document as a
// complete one.
func (m *Middleware) serveOrigin(st *responseStreamer, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			st.abort()
			if cs := st.conn; cs != nil {
				st.conn = nil
				st.w, st.req = nil, nil
				cs.inUse.Store(false)
			}
			panic(p)
		}
	}()
	m.origin.ServeHTTP(st, r)
}

// requestURI returns the request-line URI without reassembling it: the raw
// string net/http captured, falling back to reconstruction for synthetic
// requests (tests, client-side values) that lack it.
func requestURI(r *http.Request) string {
	if r.RequestURI != "" {
		return r.RequestURI
	}
	return r.URL.RequestURI()
}

// handleCaptcha serves GET <prefix>/captcha/new and POST <prefix>/captcha/verify.
// It returns true when the request was a CAPTCHA endpoint.
func (m *Middleware) handleCaptcha(w http.ResponseWriter, r *http.Request, key session.Key) bool {
	prefix := m.cfg.Engine.Config().BeaconPrefix + "/captcha/"
	if !strings.HasPrefix(r.URL.Path, prefix) {
		return false
	}
	switch strings.TrimPrefix(r.URL.Path, prefix) {
	case "new":
		ch := m.cfg.Captcha.Issue(key)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache, no-store")
		fmt.Fprintf(w, "id=%s\nquestion=%s\n", ch.ID, ch.Question)
	case "verify":
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return true
		}
		id := r.Form.Get("id")
		answer := r.Form.Get("answer")
		if m.cfg.Captcha.Verify(id, answer) {
			m.cfg.Engine.MarkCaptchaPassed(key)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		} else {
			// A failed attempt is a weak robot label for the online training
			// loop (the paper's CAPTCHA ground truth), but not a detection
			// signal: humans mistype.
			m.cfg.Engine.MarkCaptchaFailed(key)
			http.Error(w, "wrong answer", http.StatusForbidden)
		}
	default:
		http.NotFound(w, r)
	}
	return true
}

// writeChallenge serves the CAPTCHA interstitial for the policy engine's
// monitor→challenge transition: a 429 pointing the client at the challenge
// endpoints. A human proves itself (de-escalating the ladder); a robot that
// keeps going faces the behavioural thresholds on every further request.
func (m *Middleware) writeChallenge(w http.ResponseWriter, d policy.Decision) {
	prefix := m.cfg.Engine.Config().BeaconPrefix
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache, no-store")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintf(w, "challenge: %s\n", d.Reason)
	if m.cfg.Captcha != nil {
		fmt.Fprintf(w, "solve: GET %s/captcha/new then POST %s/captcha/verify (id, answer)\n", prefix, prefix)
	}
}

// clientIP extracts the client address.
func (m *Middleware) clientIP(r *http.Request) string {
	if m.cfg.TrustForwardedFor {
		if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
			first := fwd
			if i := strings.IndexByte(fwd, ','); i >= 0 {
				first = fwd[:i]
			}
			first = strings.TrimSpace(first)
			if first != "" {
				return first
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// noStoreHeader is the preallocated Cache-Control value for instrumented
// responses; assigning the shared slice avoids the per-request []string
// header.Set allocates. Nothing downstream appends to Cache-Control.
var noStoreHeader = []string{"no-cache, no-store"}

// writeDetectorResponse writes a core.Response to the client and releases
// the resources its body pins (the refcounted script buffer for downloads).
func writeDetectorResponse(w http.ResponseWriter, resp core.Response) {
	w.Header().Set("Content-Type", resp.ContentType)
	if resp.NoCache {
		w.Header()["Cache-Control"] = noStoreHeader
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
	resp.Done()
}

// responseStreamer forwards the origin's response to the client as it is
// produced, routing 200 GET text/html bodies through the streaming
// instrumentation injector. It records status, content type and origin body
// size for session tracking.
type responseStreamer struct {
	m        *Middleware
	w        http.ResponseWriter
	req      *http.Request
	clientIP string
	ua       string

	started     bool
	status      int
	contentType string
	originBytes int64
	admission   core.Admission // how much instrumentation this view gets

	rewriter     *htmlmod.StreamRewriter
	prep         *htmlmod.Prepared // injection fragments, released in finish
	discard      bool              // HEAD responses carry no body
	rewriteNanos int64             // time spent inside the stream rewriter
	conn         *connState        // per-connection reuse; nil for per-request state
}

// reset rearms a connection-owned streamer for its next request.
func (s *responseStreamer) reset(m *Middleware, w http.ResponseWriter, r *http.Request, clientIP, ua string) {
	s.m, s.w, s.req, s.clientIP, s.ua = m, w, r, clientIP, ua
	s.started, s.status, s.contentType, s.originBytes = false, 0, "", 0
	s.admission = core.AdmitFull
	s.rewriter, s.prep, s.discard, s.rewriteNanos = nil, nil, false, 0
	s.conn = nil
}

func (s *responseStreamer) Header() http.Header { return s.w.Header() }

func (s *responseStreamer) WriteHeader(code int) {
	if s.started {
		return
	}
	s.started = true
	s.status = code
	h := s.w.Header()
	s.contentType = h.Get("Content-Type")
	s.discard = s.req.Method == http.MethodHead
	isHTML := containsFold(s.contentType, "text/html")
	if isHTML {
		// Instrumented pages carry per-view keys and must not be cached.
		h["Cache-Control"] = noStoreHeader
	}
	if isHTML && code == http.StatusOK && s.req.Method == http.MethodGet &&
		s.admission != core.AdmitPassThrough {
		eng := s.m.cfg.Engine
		if s.conn != nil {
			// Zero-copy path: keys issued numerically into the connection's
			// PageState, fragments composed in place, and the connection's
			// rewriter armed for vectored writes — injection fragments and
			// origin chunks splice into the socket via one writev per chunk.
			if s.admission == core.AdmitDegraded {
				s.prep = eng.PreparePageDegraded(s.clientIP, s.ua, s.req.URL.Path, &s.conn.ps)
			} else {
				s.prep = eng.PreparePage(s.clientIP, s.ua, s.req.URL.Path, &s.conn.ps)
			}
			s.rewriter = &s.conn.rw
			s.rewriter.Reset(s.w, s.prep)
			s.rewriter.SetVectored(true)
		} else {
			if s.admission == core.AdmitDegraded {
				s.prep, _ = eng.PrepareInstrumentationDegraded(s.clientIP, s.ua, s.req.URL.Path)
			} else {
				s.prep, _ = eng.PrepareInstrumentation(s.clientIP, s.ua, s.req.URL.Path)
			}
			s.rewriter = htmlmod.NewStreamRewriter(s.w, s.prep)
		}
		// The rewritten length is unknown until the document ends; drop the
		// origin's Content-Length and let net/http pick the framing.
		h.Del("Content-Length")
		s.rewriter.SetHoldLimit(s.m.cfg.MaxRewriteBytes)
	}
	s.w.WriteHeader(code)
}

// containsFold reports whether s contains t case-insensitively; t must be
// lowercase ASCII. It replaces strings.Contains(strings.ToLower(s), t) on
// the per-request path, which allocates for any uppercase content type.
func containsFold(s, t string) bool {
	for i := 0; i+len(t) <= len(s); i++ {
		j := 0
		for j < len(t) {
			c := s[i+j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != t[j] {
				break
			}
			j++
		}
		if j == len(t) {
			return true
		}
	}
	return false
}

func (s *responseStreamer) Write(p []byte) (int, error) {
	if !s.started {
		s.WriteHeader(http.StatusOK)
	}
	s.originBytes += int64(len(p))
	if s.discard {
		return len(p), nil
	}
	if s.rewriter != nil {
		t0 := time.Now()
		n, err := s.rewriter.Write(p)
		s.rewriteNanos += int64(time.Since(t0))
		return n, err
	}
	return s.w.Write(p)
}

// Flush exposes downstream flushing so incremental origins (and the reverse
// proxy) keep their streaming behaviour through the middleware. Like Write,
// it commits headers through WriteHeader first so an early flush cannot
// publish the origin's Content-Length before the rewriter drops it.
func (s *responseStreamer) Flush() {
	if !s.started {
		s.WriteHeader(http.StatusOK)
	}
	if f, ok := s.w.(http.Flusher); ok {
		f.Flush()
	}
}

// finish completes the response once the origin handler returns: headers for
// empty responses, the tail of a streamed rewrite, and instrumentation
// accounting.
func (s *responseStreamer) finish() {
	if !s.started {
		s.WriteHeader(http.StatusOK)
	}
	if s.rewriter != nil {
		t0 := time.Now()
		err := s.rewriter.Close()
		s.rewriteNanos += int64(time.Since(t0))
		s.m.cfg.Engine.Telemetry().Rewrite.Observe(time.Duration(s.rewriteNanos))
		res := s.rewriter.Result()
		if err == nil && !res.Truncated {
			// Skip pages that blew the hold cap (forwarded largely verbatim)
			// and streams the client abandoned mid-write: both would skew
			// the per-page overhead accounting, matching the old path which
			// only recorded fully rewritten, fully delivered pages.
			s.m.cfg.Engine.RecordInstrumented(int(s.originBytes), res.AddedBytes)
		}
		if s.conn == nil {
			s.rewriter.Release()
		}
		s.rewriter = nil
	}
	if s.prep != nil {
		// Write completion: engine-pooled fragments go back to their pool so
		// the next page view composes them allocation-free. For the
		// connection-owned Prepared this is a no-op — the connection keeps
		// its state across keep-alive requests.
		s.prep.Release()
		s.prep = nil
	}
}

// abort releases everything an aborted response pins without writing the
// rewrite tail: the client connection is about to be torn down, so flushing
// held bytes or injection fragments into it would only race the close. The
// per-request rewriter goes back to its pool unclosed (Release does not
// require Close); the connection-owned one dies with its connection.
func (s *responseStreamer) abort() {
	if s.rewriter != nil {
		if s.conn == nil {
			s.rewriter.Release()
		}
		s.rewriter = nil
	}
	if s.prep != nil {
		s.prep.Release()
		s.prep = nil
	}
}
