package proxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"botdetect/internal/captcha"
	"botdetect/internal/core"
	"botdetect/internal/htmlmod"
	"botdetect/internal/policy"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

func newTestStack(t *testing.T, pol *policy.Engine, cap *captcha.Service) (*Middleware, *core.Engine, *webmodel.Site) {
	t.Helper()
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 3, NumPages: 20})
	det := core.New(core.Config{Seed: 9, ObfuscateJS: false})
	mw := New(site.Handler(), Config{Engine: det, Policy: pol, Captcha: cap, TrustForwardedFor: true})
	return mw, det, site
}

func doReq(t *testing.T, mw http.Handler, method, target, ip, ua string, form url.Values) *httptest.ResponseRecorder {
	t.Helper()
	var body io.Reader
	if form != nil {
		body = strings.NewReader(form.Encode())
	}
	req := httptest.NewRequest(method, target, body)
	req.RemoteAddr = ip + ":54321"
	req.Header.Set("User-Agent", ua)
	if form != nil {
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	rec := httptest.NewRecorder()
	mw.ServeHTTP(rec, req)
	return rec
}

func TestHTMLRewrittenOnTheWayOut(t *testing.T) {
	mw, det, _ := newTestStack(t, nil, nil)
	rec := doReq(t, mw, http.MethodGet, "/", "10.0.0.1", "Firefox/1.5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "/__bd/") {
		t.Fatal("instrumentation not injected into HTML response")
	}
	if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "no-store") {
		t.Fatalf("Cache-Control = %q", cc)
	}
	sum := htmlmod.Extract(rec.Body.Bytes())
	if !sum.BodyMouseHandler || len(sum.HiddenLinks) != 1 {
		t.Fatal("rewritten page structure incomplete")
	}
	if det.Stats().PagesInstrumented != 1 {
		t.Fatalf("PagesInstrumented = %d", det.Stats().PagesInstrumented)
	}
	// The session observed exactly one request (the page itself).
	snap, ok := det.Session(session.Key{IP: "10.0.0.1", UserAgent: "Firefox/1.5"})
	if !ok || snap.Counts.Total != 1 {
		t.Fatalf("session = %+v, %v", snap, ok)
	}
}

func TestNonHTMLPassThrough(t *testing.T) {
	mw, _, site := newTestStack(t, nil, nil)
	cssPath := site.Pages()[1].CSS
	rec := doReq(t, mw, http.MethodGet, cssPath, "10.0.0.2", "Firefox/1.5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "/__bd/") {
		t.Fatal("non-HTML response was rewritten")
	}
	if got := rec.Header().Get("Content-Type"); got != "text/css" {
		t.Fatalf("content type = %q", got)
	}
}

func TestBeaconRoundTripThroughMiddleware(t *testing.T) {
	mw, det, _ := newTestStack(t, nil, nil)
	ip, ua := "10.0.0.3", "Firefox/1.5"
	rec := doReq(t, mw, http.MethodGet, "/", ip, ua, nil)
	sum := htmlmod.Extract(rec.Body.Bytes())

	// Fetch the injected stylesheet and script like a browser would.
	var cssPath, scriptPath string
	for _, s := range sum.Stylesheets {
		if strings.Contains(s, "/__bd/") {
			cssPath = s
		}
	}
	for _, s := range sum.Scripts {
		if strings.Contains(s, "/__bd/") {
			scriptPath = s
		}
	}
	if cssPath == "" || scriptPath == "" {
		t.Fatal("instrumentation paths not found in page")
	}
	if rec := doReq(t, mw, http.MethodGet, cssPath, ip, ua, nil); rec.Code != http.StatusOK {
		t.Fatalf("css beacon status = %d", rec.Code)
	}
	scriptRec := doReq(t, mw, http.MethodGet, scriptPath, ip, ua, nil)
	if scriptRec.Code != http.StatusOK || !strings.Contains(scriptRec.Body.String(), "function __bd_f()") {
		t.Fatal("script beacon not served")
	}
	// Extract the real beacon key from the unobfuscated script and fire it.
	script := scriptRec.Body.String()
	idx := strings.Index(script, "/__bd/")
	end := strings.Index(script[idx:], ".jpg")
	beacon := script[idx : idx+end+len(".jpg")]
	if rec := doReq(t, mw, http.MethodGet, beacon, ip, ua, nil); rec.Code != http.StatusOK {
		t.Fatalf("mouse beacon status = %d", rec.Code)
	}

	v := det.Classify(session.Key{IP: ip, UserAgent: ua})
	if v.Class != core.ClassHuman || v.Confidence != core.Definite {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestPolicyBlocksAbusiveRobot(t *testing.T) {
	pol := policy.NewEngine(policy.Config{BlockDuration: time.Hour})
	mw, det, _ := newTestStack(t, pol, nil)
	ip, ua := "10.0.0.4", "Firefox/1.5" // forged agent; behaviour gives it away
	key := session.Key{IP: ip, UserAgent: ua}

	// A CGI-hammering robot that never fetches instrumentation.
	blocked := false
	for i := 0; i < 60 && !blocked; i++ {
		rec := doReq(t, mw, http.MethodGet, "/cgi-bin/app0.cgi?run="+strings.Repeat("x", i%5), ip, ua, nil)
		if rec.Code == http.StatusForbidden {
			blocked = true
		}
	}
	if !blocked {
		t.Fatalf("abusive robot was never blocked; verdict=%+v stats=%+v", det.Classify(key), pol.Stats())
	}
	if !pol.IsBlocked(key) {
		t.Fatal("policy engine does not list the session as blocked")
	}
}

func TestCaptchaEndpoints(t *testing.T) {
	cap := captcha.NewService(captcha.Config{Seed: 5})
	mw, det, _ := newTestStack(t, nil, cap)
	ip, ua := "10.0.0.5", "NoJS-Browser"

	rec := doReq(t, mw, http.MethodGet, "/__bd/captcha/new", ip, ua, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("captcha new status = %d", rec.Code)
	}
	var id string
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "id=") {
			id = strings.TrimPrefix(line, "id=")
		}
	}
	if id == "" {
		t.Fatalf("no challenge id in response %q", rec.Body.String())
	}
	answer, ok := cap.Answer(id)
	if !ok {
		t.Fatal("challenge not stored")
	}
	form := url.Values{"id": {id}, "answer": {answer}}
	rec = doReq(t, mw, http.MethodPost, "/__bd/captcha/verify", ip, ua, form)
	if rec.Code != http.StatusOK {
		t.Fatalf("captcha verify status = %d: %s", rec.Code, rec.Body.String())
	}
	v := det.Classify(session.Key{IP: ip, UserAgent: ua})
	if v.Class != core.ClassHuman {
		t.Fatalf("verdict after captcha = %+v", v)
	}

	// Wrong answer is rejected.
	rec = doReq(t, mw, http.MethodGet, "/__bd/captcha/new", ip, ua, nil)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "id=") {
			id = strings.TrimPrefix(line, "id=")
		}
	}
	form = url.Values{"id": {id}, "answer": {"wrong"}}
	if rec := doReq(t, mw, http.MethodPost, "/__bd/captcha/verify", ip, ua, form); rec.Code != http.StatusForbidden {
		t.Fatalf("wrong answer status = %d", rec.Code)
	}
	// Unknown captcha path 404s.
	if rec := doReq(t, mw, http.MethodGet, "/__bd/captcha/bogus", ip, ua, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("bogus captcha path status = %d", rec.Code)
	}
}

func TestXForwardedForTrusted(t *testing.T) {
	mw, det, _ := newTestStack(t, nil, nil)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.RemoteAddr = "192.0.2.1:9999"
	req.Header.Set("User-Agent", "Firefox/1.5")
	req.Header.Set("X-Forwarded-For", "203.0.113.7, 192.0.2.1")
	rec := httptest.NewRecorder()
	mw.ServeHTTP(rec, req)
	if _, ok := det.Session(session.Key{IP: "203.0.113.7", UserAgent: "Firefox/1.5"}); !ok {
		t.Fatal("X-Forwarded-For client address not used")
	}
}

func TestHeadRequestNoBody(t *testing.T) {
	mw, _, _ := newTestStack(t, nil, nil)
	rec := doReq(t, mw, http.MethodHead, "/", "10.0.0.6", "Firefox/1.5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("HEAD response has %d body bytes", rec.Body.Len())
	}
}

func TestNotFoundPassthrough(t *testing.T) {
	mw, det, _ := newTestStack(t, nil, nil)
	rec := doReq(t, mw, http.MethodGet, "/definitely-missing.html", "10.0.0.7", "Firefox/1.5", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	snap, _ := det.Session(session.Key{IP: "10.0.0.7", UserAgent: "Firefox/1.5"})
	if snap.Counts.Status4xx != 1 {
		t.Fatalf("404 not observed: %+v", snap.Counts)
	}
}

func TestChunkedOriginStreamsInstrumented(t *testing.T) {
	// An origin that writes the page in many small chunks (with flushes)
	// must still come out correctly instrumented: the streaming rewriter
	// reassembles tags split across chunk boundaries.
	page := []byte("<html><head><title>chunky</title></head><body class=\"m\"><p>" +
		strings.Repeat("content ", 500) + "</p></body></html>")
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		for off := 0; off < len(page); off += 7 {
			end := off + 7
			if end > len(page) {
				end = len(page)
			}
			_, _ = w.Write(page[off:end])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	})
	det := core.New(core.Config{Seed: 21})
	mw := New(origin, Config{Engine: det})
	rec := doReq(t, mw, http.MethodGet, "/chunky.html", "10.0.0.8", "Firefox/1.5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	sum := htmlmod.Extract(rec.Body.Bytes())
	if !sum.BodyMouseHandler || len(sum.HiddenLinks) != 1 {
		t.Fatal("chunked response not fully instrumented")
	}
	if !strings.Contains(rec.Body.String(), strings.Repeat("content ", 500)) {
		t.Fatal("origin content damaged")
	}
	if st := det.Stats(); st.PagesInstrumented != 1 || st.OriginalBytes != int64(len(page)) {
		t.Fatalf("accounting off: %+v (page %d bytes)", st, len(page))
	}
}

func TestLargePageStreamsWithoutSizeCap(t *testing.T) {
	// The old store-and-forward path skipped pages above MaxRewriteBytes;
	// the streaming path instruments well-anchored HTML of any size while
	// retaining only a bounded hold buffer.
	var b strings.Builder
	b.WriteString("<html><head></head><body>")
	for i := 0; i < 20000; i++ {
		b.WriteString("<p>a paragraph of filler text that pushes the page well past the cap</p>")
	}
	b.WriteString("</body></html>")
	page := b.String()
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, page)
	})
	det := core.New(core.Config{Seed: 22})
	mw := New(origin, Config{Engine: det, MaxRewriteBytes: 64 << 10})
	rec := doReq(t, mw, http.MethodGet, "/big.html", "10.0.0.9", "Firefox/1.5", nil)
	if len(page) <= 64<<10 {
		t.Fatalf("test page too small: %d", len(page))
	}
	sum := htmlmod.Extract(rec.Body.Bytes())
	if !sum.BodyMouseHandler || len(sum.HiddenLinks) != 1 {
		t.Fatalf("large page not instrumented (len=%d)", len(page))
	}
}

func TestNewPanicsWithoutEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(http.NotFoundHandler(), Config{})
}

func TestReverseProxyConstruction(t *testing.T) {
	origin := httptest.NewServer(webmodel.Generate(webmodel.SiteConfig{Seed: 7, NumPages: 5}).Handler())
	defer origin.Close()
	u, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(core.Config{Seed: 11})
	mw := NewReverseProxy(u, Config{Engine: det})
	front := httptest.NewServer(mw)
	defer front.Close()

	resp, err := http.Get(front.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "/__bd/") {
		t.Fatal("reverse proxy did not instrument the upstream page")
	}
	if mw.Engine() != det {
		t.Fatal("Engine accessor broken")
	}
}

func TestChallengeInterstitialAndDeEscalation(t *testing.T) {
	cap := captcha.NewService(captcha.Config{Seed: 11})
	pol := policy.NewEngine(policy.Config{BlockDuration: time.Hour})
	mw, det, _ := newTestStack(t, pol, cap)
	ip, ua := "10.0.0.9", "SilentFetcher"
	key := session.Key{IP: ip, UserAgent: ua}

	// A slow robot that ignores all presentation objects: after the
	// classification threshold the chain says robot (probable) and the
	// ladder issues exactly one challenge interstitial.
	challenged := 0
	for i := 0; i < 15; i++ {
		rec := doReq(t, mw, http.MethodGet, "/page1.html", ip, ua, nil)
		if rec.Code == http.StatusTooManyRequests {
			challenged++
			if !strings.Contains(rec.Body.String(), "/__bd/captcha/new") {
				t.Fatalf("challenge page lacks captcha pointer: %q", rec.Body.String())
			}
		}
	}
	if challenged != 1 {
		t.Fatalf("challenged %d times, want exactly 1 (stats=%+v)", challenged, pol.Stats())
	}
	if pol.StageOf(key) != policy.StageChallenge {
		t.Fatalf("stage = %v", pol.StageOf(key))
	}

	// Solving the CAPTCHA flips the verdict to definite human and the next
	// request de-escalates the ladder back to monitor.
	rec := doReq(t, mw, http.MethodGet, "/__bd/captcha/new", ip, ua, nil)
	var id string
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "id=") {
			id = strings.TrimPrefix(line, "id=")
		}
	}
	answer, ok := cap.Answer(id)
	if !ok {
		t.Fatal("challenge not stored")
	}
	form := url.Values{"id": {id}, "answer": {answer}}
	if rec := doReq(t, mw, http.MethodPost, "/__bd/captcha/verify", ip, ua, form); rec.Code != http.StatusOK {
		t.Fatalf("verify status = %d", rec.Code)
	}
	if rec := doReq(t, mw, http.MethodGet, "/page1.html", ip, ua, nil); rec.Code != http.StatusOK {
		t.Fatalf("post-captcha request status = %d", rec.Code)
	}
	if pol.StageOf(key) != policy.StageMonitor {
		t.Fatalf("stage after captcha = %v", pol.StageOf(key))
	}
	if v := det.Classify(key); v.Class != core.ClassHuman {
		t.Fatalf("verdict = %+v", v)
	}
}
