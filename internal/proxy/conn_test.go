package proxy

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"botdetect/internal/core"
	"botdetect/internal/htmlmod"
)

const connTestPage = "<html><head><title>t</title></head><body><p>content</p></body></html>"

// connTestPageBytes and htmlCT keep the test origin itself allocation-free
// (shared header value slice, no string→[]byte copy per request), so the
// zero-alloc gate below measures the middleware alone.
var (
	connTestPageBytes = []byte(connTestPage)
	htmlCT            = []string{"text/html; charset=utf-8"}
)

func htmlOrigin() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header()["Content-Type"] = htmlCT
		_, _ = w.Write(connTestPageBytes)
	})
}

// TestKeepAliveConnectionReuse serves many pages over one real keep-alive
// connection with ConnContext installed and checks every response is a
// correctly instrumented page with fresh per-view keys, and that the script
// each page references is downloadable over the same connection.
func TestKeepAliveConnectionReuse(t *testing.T) {
	det := core.New(core.Config{Seed: 31, ObfuscateJS: true})
	mw := New(htmlOrigin(), Config{Engine: det})
	srv := httptest.NewUnstartedServer(mw)
	srv.Config.ConnContext = ConnContext
	srv.Start()
	defer srv.Close()

	tr := &http.Transport{MaxIdleConns: 1, MaxIdleConnsPerHost: 1}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		resp, err := client.Get(srv.URL + "/page.html")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: status=%d err=%v", i, resp.StatusCode, err)
		}
		sum := htmlmod.Extract(body)
		if len(sum.Scripts) != 1 || !sum.BodyMouseHandler || len(sum.HiddenLinks) != 1 {
			t.Fatalf("page %d: incomplete instrumentation:\n%s", i, body)
		}
		scriptSrc := sum.Scripts[0]
		if seen[scriptSrc] {
			t.Fatalf("page %d: script token %q reused across page views", i, scriptSrc)
		}
		seen[scriptSrc] = true

		sresp, err := client.Get(srv.URL + scriptSrc)
		if err != nil {
			t.Fatal(err)
		}
		script, _ := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK || !bytes.Contains(script, []byte("function __bd_f()")) {
			t.Fatalf("page %d: script download broken (status=%d)", i, sresp.StatusCode)
		}
	}
	if got := det.Stats().PagesInstrumented; got != 12 {
		t.Fatalf("PagesInstrumented = %d, want 12", got)
	}
}

// TestConnPathMatchesPerRequestPath proves the per-connection vectored
// serve path produces byte-identical pages to the per-request pooled path:
// two engines with the same seed, one middleware driven with a connState in
// the request context and one without.
func TestConnPathMatchesPerRequestPath(t *testing.T) {
	detA := core.New(core.Config{Seed: 37, ObfuscateJS: true})
	detB := core.New(core.Config{Seed: 37, ObfuscateJS: true})
	mwA := New(htmlOrigin(), Config{Engine: detA})
	mwB := New(htmlOrigin(), Config{Engine: detB})

	ctx := ConnContext(context.Background(), nil)
	for i := 0; i < 8; i++ {
		reqA := httptest.NewRequest(http.MethodGet, "/p.html", nil).WithContext(ctx)
		reqA.RemoteAddr = "10.12.0.1:1000"
		reqA.Header.Set("User-Agent", "Firefox/1.5")
		recA := httptest.NewRecorder()
		mwA.ServeHTTP(recA, reqA)

		reqB := httptest.NewRequest(http.MethodGet, "/p.html", nil)
		reqB.RemoteAddr = "10.12.0.1:1000"
		reqB.Header.Set("User-Agent", "Firefox/1.5")
		recB := httptest.NewRecorder()
		mwB.ServeHTTP(recB, reqB)

		if !bytes.Equal(recA.Body.Bytes(), recB.Body.Bytes()) {
			t.Fatalf("page %d: conn path diverged from per-request path:\n%q\nvs\n%q",
				i, recA.Body.Bytes(), recB.Body.Bytes())
		}
		if cc := recA.Header().Get("Cache-Control"); !strings.Contains(cc, "no-store") {
			t.Fatalf("page %d: Cache-Control = %q", i, cc)
		}
	}
}

// nopResponseWriter is a header-reusing discard writer for the alloc gate:
// a real keep-alive connection reuses its header map the same way.
type nopResponseWriter struct {
	h http.Header
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) WriteHeader(int)             {}
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestServePageZeroAlloc gates the full middleware page serve — claim the
// connection state, observe, prepare, rewrite with vectored output, finish —
// at zero allocations per request once the connection is warm.
func TestServePageZeroAlloc(t *testing.T) {
	det := core.New(core.Config{Seed: 41, ObfuscateJS: true, Shards: 1, MaxScripts: 64})
	mw := New(htmlOrigin(), Config{Engine: det})

	ctx := ConnContext(context.Background(), nil)
	req := httptest.NewRequest(http.MethodGet, "/hot.html", nil).WithContext(ctx)
	req.RemoteAddr = "10.13.0.1:2000"
	req.Header.Set("User-Agent", "Firefox/1.5")
	w := &nopResponseWriter{h: make(http.Header)}

	serve := func() {
		mw.ServeHTTP(w, req)
	}
	// Warm: keystore client state, script cache to its eviction steady
	// state, fragment/scratch buffers, session snapshot republication.
	for i := 0; i < 600; i++ {
		serve()
	}
	allocs := testing.AllocsPerRun(400, serve)
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	if allocs != 0 {
		t.Fatalf("keep-alive page serve allocated %.2f/op, want 0", allocs)
	}
}

// TestConcurrentStreamsFallBack drives concurrent requests through one
// connState (the HTTP/2 stream scenario): exactly one claims the state, the
// rest fall back to per-request streamers, and every response is correct.
func TestConcurrentStreamsFallBack(t *testing.T) {
	det := core.New(core.Config{Seed: 43, ObfuscateJS: true})
	mw := New(htmlOrigin(), Config{Engine: det})
	ctx := ConnContext(context.Background(), nil)

	const streams = 8
	errs := make(chan error, streams)
	for g := 0; g < streams; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest(http.MethodGet, "/s.html", nil).WithContext(ctx)
				req.RemoteAddr = fmt.Sprintf("10.14.0.%d:3000", g)
				req.Header.Set("User-Agent", "Firefox/1.5")
				rec := httptest.NewRecorder()
				mw.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/__bd/") {
					errs <- fmt.Errorf("stream %d page %d: status=%d", g, i, rec.Code)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < streams; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
