package proxy

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"botdetect/internal/core"
)

// benchServe measures a full middleware page serve. withConn selects the
// per-connection path (claimed connState, reused Prepared, vectored writes)
// vs the per-request fallback every request pays without ConnContext.
func benchServe(b *testing.B, withConn bool) {
	det := core.New(core.Config{Seed: 47, ObfuscateJS: true, Shards: 1, MaxScripts: 64})
	mw := New(htmlOrigin(), Config{Engine: det})

	ctx := context.Background()
	if withConn {
		ctx = ConnContext(ctx, nil)
	}
	req := httptest.NewRequest(http.MethodGet, "/bench.html", nil).WithContext(ctx)
	req.RemoteAddr = "10.15.0.1:4000"
	req.Header.Set("User-Agent", "Firefox/1.5")
	w := &nopResponseWriter{h: make(http.Header)}

	for i := 0; i < 200; i++ {
		mw.ServeHTTP(w, req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mw.ServeHTTP(w, req)
	}
}

func BenchmarkServePageConn(b *testing.B)       { benchServe(b, true) }
func BenchmarkServePagePerRequest(b *testing.B) { benchServe(b, false) }
