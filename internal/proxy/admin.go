package proxy

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/features"
	"botdetect/internal/fleet"
	"botdetect/internal/policy"
	"botdetect/internal/session"
	"botdetect/internal/telemetry"
)

// AdminConfig controls the operations endpoints.
type AdminConfig struct {
	// Engine is the detection engine to expose; required.
	Engine *core.Engine
	// Policy optionally enables the verdict-override endpoint to block
	// sessions immediately.
	Policy *policy.Engine
	// Prefix is the URL prefix for every admin endpoint. It defaults to the
	// engine's beacon prefix so the whole control surface lives under one
	// reserved subtree (the CDN strips it before the origin ever sees it).
	Prefix string
	// EnablePprof mounts net/http/pprof under <prefix>/debug/pprof/. Off by
	// default: profiling endpoints can stall the process and leak internals.
	EnablePprof bool
	// AuthToken, when non-empty, requires every admin request — metrics,
	// status and pprof included — to present it as
	// "Authorization: Bearer <token>" (compared in constant time). It is
	// mandatory whenever the surface is reachable by untrusted clients:
	// without it, anyone can POST an override to clear CAPTCHA/block state
	// (a bot self-whitelisting) and poison the online trainer with false
	// labels, and the status/session views expose every tracked client's IP
	// and User-Agent. When empty — sound only on a loopback-bound listener —
	// requests carrying an Origin header are refused, so a CSRF form post
	// riding an operator's browser cannot reach the mutating endpoints.
	AuthToken string
	// Retrain configures models built by the retrain endpoint. A zero value
	// uses the online trainer's defaults.
	Retrain adaboost.Config
	// Breaker optionally exposes the reverse proxy's origin circuit breaker
	// on the status page (Middleware.Breaker()).
	Breaker *Breaker
	// Fleet optionally exposes this node's replication health — peer
	// liveness, outbox depths, acked-epoch watermarks, replication lag — on
	// the status page. Its gauges land on /metrics by registering the
	// replicator with the engine's telemetry registry
	// (fleet.Replicator.RegisterMetrics).
	Fleet *fleet.Replicator
}

// Admin bundles the proxy's operational endpoints — Prometheus metrics, the
// live status page, session inspection, and mutating controls (script
// rotation, retraining, verdict overrides) — behind one registration call so
// deployments cannot end up with half the surface mounted.
type Admin struct {
	cfg AdminConfig
}

// NewAdmin builds the admin surface. It panics if cfg.Engine is nil.
func NewAdmin(cfg AdminConfig) *Admin {
	if cfg.Engine == nil {
		panic("proxy: AdminConfig.Engine is required")
	}
	if cfg.Prefix == "" {
		cfg.Prefix = cfg.Engine.Config().BeaconPrefix
	}
	if cfg.Retrain.Rounds <= 0 {
		cfg.Retrain.Rounds = 200
	}
	return &Admin{cfg: cfg}
}

// Register mounts every admin endpoint on mux, each behind the access guard.
// Each route is an exact path (no subtree registrations except pprof), so
// the detection middleware keeps receiving all other traffic under the
// beacon prefix — beacons and admin endpoints share the reserved subtree
// without shadowing each other.
func (a *Admin) Register(mux *http.ServeMux) {
	p := a.cfg.Prefix
	mux.Handle(p+"/metrics", a.guard(http.HandlerFunc(a.handleMetrics)))
	mux.Handle(p+"/status", a.guard(http.HandlerFunc(a.handleStatus)))
	mux.Handle(p+"/admin/session", a.guard(http.HandlerFunc(a.handleSession)))
	mux.Handle(p+"/admin/rotate", a.guard(http.HandlerFunc(a.handleRotate)))
	mux.Handle(p+"/admin/retrain", a.guard(http.HandlerFunc(a.handleRetrain)))
	mux.Handle(p+"/admin/override", a.guard(http.HandlerFunc(a.handleOverride)))
	mux.Handle(p+"/admin/load", a.guard(http.HandlerFunc(a.handleLoad)))
	if a.cfg.EnablePprof {
		// pprof.Index parses the profile name out of the URL assuming it is
		// mounted at /debug/pprof/, so the admin prefix must be stripped
		// before the handlers run.
		mux.Handle(p+"/debug/pprof/", a.guard(http.StripPrefix(p, http.HandlerFunc(pprof.Index))))
		mux.Handle(p+"/debug/pprof/cmdline", a.guard(http.StripPrefix(p, http.HandlerFunc(pprof.Cmdline))))
		mux.Handle(p+"/debug/pprof/profile", a.guard(http.StripPrefix(p, http.HandlerFunc(pprof.Profile))))
		mux.Handle(p+"/debug/pprof/symbol", a.guard(http.StripPrefix(p, http.HandlerFunc(pprof.Symbol))))
		mux.Handle(p+"/debug/pprof/trace", a.guard(http.StripPrefix(p, http.HandlerFunc(pprof.Trace))))
	}
}

// guard enforces the surface's access rules in front of every handler. With
// an AuthToken configured, the bearer token is checked in constant time.
// Without one, the deployment is trusted to have bound the surface to a
// loopback-only listener, and the remaining browser vector — a hostile page
// making an operator's browser post to localhost — is closed by refusing any
// request that carries an Origin header: browsers attach it to cross-site
// requests, operator tools (curl, Prometheus) never send it.
func (a *Admin) guard(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.cfg.AuthToken == "" {
			if r.Header.Get("Origin") != "" {
				http.Error(w, "cross-origin admin request rejected", http.StatusForbidden)
				return
			}
			h.ServeHTTP(w, r)
			return
		}
		const scheme = "Bearer "
		auth := r.Header.Get("Authorization")
		if len(auth) <= len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) ||
			subtle.ConstantTimeCompare([]byte(auth[len(scheme):]), []byte(a.cfg.AuthToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="botdetect admin"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// handleMetrics renders the engine's telemetry registry in the Prometheus
// text exposition format. The scrape never blocks serving: counters and
// histograms are read with atomic loads while writers keep writing.
func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = a.cfg.Engine.Telemetry().Registry().WritePrometheus(w)
}

// handleStatus renders the plain-text operator overview: detector chain,
// model state, instrumentation counters, and the busiest live sessions with
// their verdicts.
func (a *Admin) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	det := a.cfg.Engine
	stats := det.Stats()
	fmt.Fprintf(w, "detector chain: %s\n", detect.Describe(det.Detector()))
	if m := det.Model(); m != nil {
		fmt.Fprintf(w, "learned model: %s (%d labelled outcomes buffered)\n", m, det.OutcomeCount())
	} else {
		fmt.Fprintf(w, "learned model: none yet (%d labelled outcomes buffered)\n", det.OutcomeCount())
	}
	loadLine := fmt.Sprintf("load state: %s (occupancy %.1f%%", det.LoadState(), det.LoadOccupancy()*100)
	if budget := det.MemoryBudget(); budget > 0 {
		loadLine += fmt.Sprintf(", memory %d/%d bytes", det.MemoryEstimate(), budget)
	} else {
		loadLine += fmt.Sprintf(", memory %d bytes", det.MemoryEstimate())
	}
	if forced, ok := det.LoadForced(); ok {
		loadLine += fmt.Sprintf(", FORCED to %s by operator drill", forced)
	}
	fmt.Fprintf(w, "%s)\n", loadLine)
	// Heap dominators: where the attacker-controlled bytes actually live,
	// itemised per component with a per-session quotient against the 2 KiB
	// budget the million-session plan is built on.
	sessBytes, keyBytes, internBytes := det.MemoryBreakdown()
	ist := det.InternStats()
	domLine := fmt.Sprintf("heap dominators: sessions=%d keystore=%d interned=%d bytes", sessBytes, keyBytes, internBytes)
	if n := det.SessionCount(); n > 0 {
		domLine += fmt.Sprintf(" (%d B/session over %d sessions)", det.MemoryEstimate()/int64(n), n)
	}
	fmt.Fprintf(w, "%s\n", domLine)
	fmt.Fprintf(w, "interner: %d strings, %d bytes, hit rate %.1f%%\n",
		ist.Entries, ist.Bytes, ist.HitRate()*100)
	fmt.Fprintf(w, "load shed: passthrough=%d degraded=%d\n", stats.ShedPassThrough, stats.ShedDegraded)
	ev := det.EvictionStats()
	fmt.Fprintf(w, "sessions evicted: idle=%d capacity-anonymous=%d capacity-evidence=%d flush=%d\n",
		ev.Idle, ev.CapacityAnonymous, ev.CapacityEvidence, ev.Flush)
	if a.cfg.Breaker != nil {
		b := a.cfg.Breaker
		fmt.Fprintf(w, "origin breaker: %s (opens=%d probes=%d recoveries=%d short-circuits=%d)\n",
			b.State(), b.opens.Load(), b.probes.Load(), b.recoveries.Load(), b.shortCircuits.Load())
	}
	if rep := a.cfg.Fleet; rep != nil {
		fc := rep.Stats()
		mode := "replicated"
		if rep.Isolated() {
			mode = "ISOLATED (quorum lost, local-only decisions)"
		}
		fmt.Fprintf(w, "fleet: node=%s inc=%d mode=%s published-epoch=%d\n",
			rep.Name(), rep.Incarnation(), mode, rep.PublishedEpoch())
		fmt.Fprintf(w, "fleet replication: applied=%d replayed=%d stale-inc=%d epoch-gaps=%d ae-resends=%d dropped=%d\n",
			fc.Applied, fc.Replays, fc.StaleInc, fc.EpochGaps, fc.AEResends, fc.Dropped)
		fmt.Fprintf(w, "fleet stores: verdicts=%d blocks=%d\n", rep.VerdictCount(), rep.BlockCount())
		if p50, ok := rep.LagQuantile(0.50); ok {
			p99, _ := rep.LagQuantile(0.99)
			fmt.Fprintf(w, "fleet replication lag: p50=%s p99=%s\n", p50, p99)
		}
		for _, ps := range rep.PeerSnapshot() {
			state := "up"
			if !ps.Up {
				state = "DOWN"
			}
			fmt.Fprintf(w, "fleet peer %-18s %-4s outbox=%d sent=%d dropped=%d acked-epoch=%d applied-watermark=%d\n",
				ps.Name, state, ps.OutboxLen, ps.Sent, ps.Dropped, ps.AckedEpoch, ps.Watermark)
		}
	}
	fmt.Fprintf(w, "pages instrumented: %d\n", stats.PagesInstrumented)
	fmt.Fprintf(w, "beacons: mouse=%d decoy=%d replay=%d exec=%d css=%d hidden=%d ua-mismatch=%d\n",
		stats.MouseBeacons, stats.DecoyBeacons, stats.ReplayBeacons, stats.ExecBeacons,
		stats.CSSBeacons, stats.HiddenHits, stats.UAMismatches)
	sessions := det.Sessions()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Counts.Total > sessions[j].Counts.Total })
	fmt.Fprintf(w, "active sessions: %d\n\n", len(sessions))
	for i, s := range sessions {
		if i >= 50 {
			fmt.Fprintf(w, "... and %d more\n", len(sessions)-i)
			break
		}
		v := det.ClassifySnapshot(s)
		fmt.Fprintf(w, "%-18s %-40.40s reqs=%-5d %s\n", s.Key.IP, s.Key.UserAgent, s.Counts.Total, v)
	}
}

// sessionView is the JSON shape of one inspected session.
type sessionView struct {
	IP        string           `json:"ip"`
	UserAgent string           `json:"user_agent"`
	FirstSeen time.Time        `json:"first_seen"`
	LastSeen  time.Time        `json:"last_seen"`
	Requests  int64            `json:"requests"`
	Verdict   verdictView      `json:"verdict"`
	Features  []featureView    `json:"features"`
	Signals   map[string]int64 `json:"signals,omitempty"`
	Policy    *policyStageView `json:"policy,omitempty"`
}

type verdictView struct {
	Class      string `json:"class"`
	Confidence string `json:"confidence"`
	Reason     string `json:"reason"`
	AtRequest  int64  `json:"at_request"`
}

type featureView struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type policyStageView struct {
	Stage string `json:"stage"`
}

// handleSession inspects one live session: GET with ip and ua query
// parameters returns the cached verdict, the Table 2 feature vector by
// attribute name, observed detection signals, and the policy stage.
func (a *Admin) handleSession(w http.ResponseWriter, r *http.Request) {
	key, ok := a.sessionKey(w, r)
	if !ok {
		return
	}
	snap, verdict, tracked := a.cfg.Engine.Decide(key)
	if !tracked {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	view := sessionView{
		IP:        snap.Key.IP,
		UserAgent: snap.Key.UserAgent,
		FirstSeen: snap.FirstSeen,
		LastSeen:  snap.LastSeen,
		Requests:  int64(snap.Counts.Total),
		Verdict: verdictView{
			Class:      verdict.Class.String(),
			Confidence: verdict.Confidence.String(),
			Reason:     verdict.Reason,
			AtRequest:  verdict.AtRequest,
		},
		Features: make([]featureView, 0, len(features.Names)),
	}
	for i, name := range features.Names {
		view.Features = append(view.Features, featureView{Name: name, Value: snap.Features[i]})
	}
	if snap.Signals.Any() {
		view.Signals = make(map[string]int64, snap.Signals.Count())
		snap.Signals.Each(func(sig session.Signal, at int64) bool {
			view.Signals[sig.String()] = at
			return true
		})
	}
	snap.Release()
	if a.cfg.Policy != nil {
		view.Policy = &policyStageView{Stage: a.cfg.Policy.StageOf(key).String()}
	}
	writeJSON(w, http.StatusOK, view)
}

// handleRotate regenerates the per-epoch script variant pool on demand (the
// same rotation the background ticker performs), invalidating any URLs and
// decoy names a robot may have scraped.
func (a *Admin) handleRotate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	a.cfg.Engine.RotateScripts()
	writeJSON(w, http.StatusOK, map[string]any{
		"rotated":  true,
		"variants": a.cfg.Engine.ScriptVariants(),
	})
}

// handleRetrain refits the AdaBoost ensemble from the buffered labelled
// outcomes and hot-swaps it onto the serving path, without waiting for the
// online trainer's next tick.
func (a *Admin) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	model, err := a.cfg.Engine.RetrainFromOutcomes(a.cfg.Retrain)
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":    model.String(),
		"epoch":    a.cfg.Engine.Learned().Epoch(),
		"outcomes": a.cfg.Engine.OutcomeCount(),
	})
}

// handleOverride lets an operator assert ground truth for a session: POST
// with ip, ua and verdict=human|robot. A human override clears CAPTCHA state
// and de-escalates policy; a robot override blocks immediately when a policy
// engine is attached. Either way the label feeds the online trainer.
func (a *Admin) handleOverride(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	key, ok := a.sessionKey(w, r)
	if !ok {
		return
	}
	verdict := r.FormValue("verdict")
	switch verdict {
	case "human":
		a.cfg.Engine.MarkCaptchaPassed(key)
		a.cfg.Engine.RecordOutcome(key, true)
	case "robot":
		if a.cfg.Policy != nil {
			a.cfg.Policy.BlockNow(key)
		}
		a.cfg.Engine.RecordOutcome(key, false)
	default:
		http.Error(w, "verdict must be human or robot", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ip": key.IP, "verdict": verdict})
}

// handleLoad runs operator degradation drills: POST with
// mode=normal|pressured|saturated pins the engine's load state regardless of
// occupancy ("what does my site look like degraded?"), and mode=auto clears
// the pin, returning admission control to the occupancy-derived ladder.
func (a *Admin) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	det := a.cfg.Engine
	switch mode := r.FormValue("mode"); mode {
	case "normal":
		det.ForceLoadState(core.LoadNormal)
	case "pressured":
		det.ForceLoadState(core.LoadPressured)
	case "saturated":
		det.ForceLoadState(core.LoadSaturated)
	case "auto":
		det.ClearForcedLoadState()
	default:
		http.Error(w, "mode must be normal, pressured, saturated or auto", http.StatusBadRequest)
		return
	}
	_, forced := det.LoadForced()
	writeJSON(w, http.StatusOK, map[string]any{
		"state":     det.LoadState().String(),
		"forced":    forced,
		"occupancy": det.LoadOccupancy(),
	})
}

// sessionKey extracts the session key from ip/ua parameters (query or form).
func (a *Admin) sessionKey(w http.ResponseWriter, r *http.Request) (session.Key, bool) {
	ip := r.FormValue("ip")
	if ip == "" {
		http.Error(w, "missing ip parameter", http.StatusBadRequest)
		return session.Key{}, false
	}
	return session.Key{IP: ip, UserAgent: r.FormValue("ua")}, true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
