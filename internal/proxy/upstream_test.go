package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"botdetect/internal/chaos"
	"botdetect/internal/clock"
	"botdetect/internal/core"
)

// TestBreakerLifecycle walks the full state machine on a virtual clock:
// consecutive failures trip it, the cooldown short-circuits, exactly one
// probe is admitted half-open, and a successful probe closes it again.
func TestBreakerLifecycle(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	br := NewBreaker(3, 10*time.Second, vc)

	if br.State() != BreakerClosed || !br.Allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	br.Failure()
	br.Failure()
	if br.State() != BreakerClosed || !br.Allow() {
		t.Fatal("breaker opened below the threshold")
	}
	br.Failure() // third consecutive failure: trip
	if br.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
	// A straggler failure while open must not extend the cooldown.
	br.Failure()
	vc.Advance(9 * time.Second)
	if br.Allow() {
		t.Fatal("breaker admitted a probe before the cooldown elapsed")
	}
	vc.Advance(2 * time.Second)
	if !br.Allow() {
		t.Fatal("breaker refused the half-open probe after the cooldown")
	}
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", br.State())
	}
	if br.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	br.Success()
	if br.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", br.State())
	}
	st := br.Stats()
	if st.Opens != 1 || st.Probes != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v, want opens/probes/recoveries = 1", st)
	}
	if st.ShortCircuits < 3 {
		t.Fatalf("ShortCircuits = %d, want >= 3", st.ShortCircuits)
	}
}

// TestBreakerSuccessResetsStreak: the trip condition is *consecutive*
// failures — an intervening success restarts the count.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	br := NewBreaker(3, time.Second, vc)
	br.Failure()
	br.Failure()
	br.Success()
	br.Failure()
	br.Failure()
	if br.State() != BreakerClosed {
		t.Fatal("breaker opened on a non-consecutive failure streak")
	}
	br.Failure()
	if br.State() != BreakerOpen {
		t.Fatal("breaker did not open at three consecutive failures")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe slams the breaker shut
// for a fresh cooldown; the next probe can still recover it.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	br := NewBreaker(2, 5*time.Second, vc)
	br.Failure()
	br.Failure()
	vc.Advance(5 * time.Second)
	if !br.Allow() {
		t.Fatal("probe refused")
	}
	br.Failure() // probe failed: re-open
	if br.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}
	vc.Advance(5 * time.Second)
	if !br.Allow() {
		t.Fatal("second probe refused")
	}
	br.Success()
	if br.State() != BreakerClosed {
		t.Fatal("breaker did not recover on the second probe")
	}
	if st := br.Stats(); st.Opens != 2 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v, want 2 opens / 1 recovery", st)
	}
}

// TestRetryAfterFloor: the advertised retry delay is the remaining
// cooldown, never less than a second.
func TestRetryAfterFloor(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	br := NewBreaker(1, 10*time.Second, vc)
	br.Failure()
	if got := br.RetryAfter(); got != 10*time.Second {
		t.Fatalf("RetryAfter just after trip = %v, want 10s", got)
	}
	vc.Advance(9500 * time.Millisecond)
	if got := br.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter near cooldown end = %v, want the 1s floor", got)
	}
}

func newTestTripper(retries int, failures int) *upstreamTripper {
	cfg := UpstreamConfig{Retries: retries, RetryBackoff: time.Millisecond,
		BreakerFailures: failures, BreakerCooldown: time.Second}.withDefaults()
	return &upstreamTripper{
		base: http.DefaultTransport,
		br:   NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown, nil),
		cfg:  cfg,
	}
}

// TestTripperRetriesIdempotentOnly: a GET hit by a transient 5xx is retried
// and succeeds; a POST never is — replaying a request the origin may have
// half-applied is worse than failing it.
func TestTripperRetriesIdempotentOnly(t *testing.T) {
	var gets, posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if gets.Add(1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "recovered")
	}))
	defer srv.Close()

	tr := newTestTripper(2, 10)
	c := &http.Client{Transport: tr}

	resp, err := c.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET through tripper: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "recovered" {
		t.Fatalf("GET = %d %q, want 200 recovered", resp.StatusCode, body)
	}
	if gets.Load() != 2 {
		t.Fatalf("origin saw %d GETs, want 2 (one retry)", gets.Load())
	}
	if tr.retries.Load() != 1 {
		t.Fatalf("tripper retries = %d, want 1", tr.retries.Load())
	}

	resp, err = c.Post(srv.URL+"/", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatalf("POST through tripper: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("POST = %d, want the origin's own 500 forwarded", resp.StatusCode)
	}
	if posts.Load() != 1 {
		t.Fatalf("origin saw %d POSTs, want exactly 1 (no replay)", posts.Load())
	}
}

// TestTripperExhaustedRetriesWrapsError: when every attempt fails at the
// transport level the caller gets one error carrying the attempt count and
// the underlying cause, and the failure feeds the breaker.
func TestTripperExhaustedRetriesWrapsError(t *testing.T) {
	// A listener we immediately close: connection refused, deterministically.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()

	tr := newTestTripper(1, 2)
	c := &http.Client{Transport: tr}
	_, err = c.Get(dead + "/")
	if err == nil {
		t.Fatal("GET against a dead origin succeeded")
	}
	if !strings.Contains(err.Error(), "after 2 attempt(s)") {
		t.Fatalf("error lacks attempt context: %v", err)
	}
	if tr.failures.Load() != 1 {
		t.Fatalf("failures = %d, want 1", tr.failures.Load())
	}
	// One more exhausted exchange reaches the 2-failure threshold.
	if _, err := c.Get(dead + "/"); err == nil {
		t.Fatal("second GET succeeded")
	}
	if tr.br.State() != BreakerOpen {
		t.Fatalf("breaker after repeated exhaustion = %v, want open", tr.br.State())
	}
	// Short-circuited request: the client never touches the network.
	_, err = c.Get(dead + "/")
	var open *breakerOpenError
	if err == nil || !errors.As(err, &open) {
		t.Fatalf("short-circuit error = %v, want breakerOpenError", err)
	}
}

type resetReader struct{}

func (resetReader) Read([]byte) (int, error) {
	return 0, errors.New("read tcp: connection reset by peer")
}

// TestTrackedBodyMidStreamContext: an origin dying after headers must reach
// the log with byte-count context, count once, and feed the breaker.
func TestTrackedBodyMidStreamContext(t *testing.T) {
	tr := newTestTripper(0, 10)
	tb := &trackedBody{
		rc: io.NopCloser(io.MultiReader(strings.NewReader("abc"), resetReader{})),
		t:  tr,
	}
	_, err := io.ReadAll(tb)
	if err == nil {
		t.Fatal("mid-stream death not surfaced")
	}
	if !strings.Contains(err.Error(), "upstream died mid-stream after 3 body bytes") {
		t.Fatalf("error lacks mid-stream context: %v", err)
	}
	if !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("error dropped the underlying cause: %v", err)
	}
	if tr.midstream.Load() != 1 {
		t.Fatalf("midstream counter = %d, want 1", tr.midstream.Load())
	}
	// A second read on the same corpse must not double-count.
	if _, err := tb.Read(make([]byte, 8)); err == nil {
		t.Fatal("second read after death succeeded")
	}
	if tr.midstream.Load() != 1 {
		t.Fatalf("midstream counter after re-read = %d, want still 1", tr.midstream.Load())
	}
}

// TestUpstreamErrorHandlerMapping: breaker-open becomes a branded 503 with
// Retry-After, a deadline becomes 504, anything else a 502 that keeps the
// error text.
func TestUpstreamErrorHandlerMapping(t *testing.T) {
	m := &Middleware{}
	req := httptest.NewRequest(http.MethodGet, "/x", nil)

	rec := httptest.NewRecorder()
	m.upstreamErrorHandler(rec, req, &breakerOpenError{retryAfter: 4500 * time.Millisecond})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want ceil(4.5s) = 5", got)
	}
	if !strings.Contains(rec.Body.String(), "temporarily unavailable") {
		t.Fatalf("branded body missing: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	m.upstreamErrorHandler(rec, req, fmt.Errorf("awaiting headers: %w", context.DeadlineExceeded))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504", rec.Code)
	}

	rec = httptest.NewRecorder()
	m.upstreamErrorHandler(rec, req, errors.New("dial tcp 10.0.0.9:80: connection refused"))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("generic status = %d, want 502", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "connection refused") {
		t.Fatalf("502 body dropped the cause: %q", rec.Body.String())
	}
}

func chaosOriginPage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>t</title></head><body><h1>ok %s</h1>"+
		"<a href=\"/other.html\">other</a></body></html>", r.URL.Path)
}

// TestReverseProxyBreakerEndToEnd drives the full middleware against a
// chaos origin: origin 5xx responses are forwarded while the breaker
// counts, the trip short-circuits to the branded 503 with Retry-After, and
// after the origin heals the half-open probe closes the breaker again.
// Detection keeps running throughout — the dark-origin 503s still come from
// the instrumenting middleware, not a dead socket.
func TestReverseProxyBreakerEndToEnd(t *testing.T) {
	origin := chaos.NewOrigin(http.HandlerFunc(chaosOriginPage))
	backend := httptest.NewServer(origin)
	defer backend.Close()
	u, _ := url.Parse(backend.URL)

	det := core.New(core.Config{Seed: 41})
	mw := NewReverseProxy(u, Config{Engine: det, TrustForwardedFor: true, Upstream: UpstreamConfig{
		Retries:         -1, // no retries: each request is one breaker sample
		BreakerFailures: 2,
		BreakerCooldown: 50 * time.Millisecond,
		RequestTimeout:  5 * time.Second,
	}})
	front := httptest.NewServer(mw)
	defer front.Close()

	get := func() (int, string) {
		resp, err := front.Client().Get(front.URL + "/page.html")
		if err != nil {
			t.Fatalf("GET through proxy: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "/__bd/") {
		t.Fatalf("healthy GET = %d (instrumented=%v), want instrumented 200",
			code, strings.Contains(body, "/__bd/"))
	}

	origin.FailWith(http.StatusServiceUnavailable, -1)
	for i := 0; i < 2; i++ {
		if code, body := get(); code != http.StatusServiceUnavailable || strings.Contains(body, "botdetect:") {
			t.Fatalf("dark-origin GET %d = %d (branded=%v), want the origin's own 503 forwarded",
				i, code, strings.Contains(body, "botdetect:"))
		}
	}
	if mw.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %v after %d origin failures, want open", mw.Breaker().State(), 2)
	}
	code, body := get()
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "temporarily unavailable") {
		t.Fatalf("short-circuited GET = %d %q, want the branded 503", code, body)
	}
	served := origin.Served()

	origin.Heal()
	time.Sleep(60 * time.Millisecond) // let the cooldown elapse
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "/__bd/") {
		t.Fatalf("post-heal GET = %d, want instrumented 200 via the half-open probe", code)
	}
	if mw.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", mw.Breaker().State())
	}
	st := mw.Breaker().Stats()
	if st.Opens != 1 || st.Recoveries != 1 || st.ShortCircuits == 0 {
		t.Fatalf("breaker stats = %+v", st)
	}
	if origin.Served() <= served {
		t.Fatal("recovery probe never reached the origin")
	}
}

// TestChaosHammerConcurrentFaults is the -race stress: a flash crowd of new
// clients floods the proxy while the origin flaps dark/healthy, injects
// mid-stream connection resets, scripts rotate, and an operator drill
// forces and clears degraded mode — all concurrently. The assertions are
// deliberately coarse (the point is the race detector and "nothing
// deadlocks or panics"); the final section proves the system came back:
// breaker closed, instrumented 200s flowing.
func TestChaosHammerConcurrentFaults(t *testing.T) {
	origin := chaos.NewOrigin(http.HandlerFunc(chaosOriginPage))
	backend := httptest.NewServer(origin)
	defer backend.Close()
	u, _ := url.Parse(backend.URL)

	det := core.New(core.Config{Seed: 43, MaxSessions: 128, ObfuscateJS: true})
	mw := NewReverseProxy(u, Config{Engine: det, TrustForwardedFor: true, Upstream: UpstreamConfig{
		Retries:         1,
		RetryBackoff:    time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: 5 * time.Millisecond,
		RequestTimeout:  5 * time.Second,
	}})
	front := httptest.NewUnstartedServer(mw)
	front.Config.ConnContext = ConnContext
	front.Start()
	defer front.Close()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}
	defer client.CloseIdleConnections()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Flash crowd: every request a brand-new client, far past MaxSessions.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest(http.MethodGet, front.URL+"/page.html", nil)
				req.Header.Set("X-Forwarded-For", fmt.Sprintf("10.%d.%d.%d", w, i/200%250, i%200+1))
				req.Header.Set("User-Agent", "hammer")
				resp, err := client.Do(req)
				if err != nil {
					continue // resets and dark phases are expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	// Origin flapper: dark bursts, latency spikes, mid-stream resets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				origin.FailWith(http.StatusServiceUnavailable, 8)
			case 1:
				origin.ResetNext(4)
			case 2:
				origin.SetLatency(2 * time.Millisecond)
			}
			time.Sleep(4 * time.Millisecond)
			origin.Heal()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Script rotation and the operator drill, racing the serve path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			det.RotateScripts()
			if i%2 == 0 {
				det.ForceLoadState(core.LoadSaturated)
			} else {
				det.ClearForcedLoadState()
			}
			det.RecomputeLoadState()
			time.Sleep(3 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Recovery: heal the origin, clear the drill, and drain the flood's
	// sessions — the table is legitimately full (that is the ladder working),
	// so without the drain a fresh client would correctly keep getting
	// pass-through. Then require the breaker to close and instrumented pages
	// to flow again.
	origin.Heal()
	det.ClearForcedLoadState()
	det.FlushSessions()
	det.RecomputeLoadState()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(front.URL + "/page.html")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "/__bd/") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy did not recover instrumented 200s after the chaos stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := mw.Breaker().Stats(); st.Opens == 0 {
		t.Errorf("breaker never tripped during the hammer: %+v", st)
	}
	if mw.Breaker().State() == BreakerOpen {
		t.Error("breaker still open after recovery")
	}
}
