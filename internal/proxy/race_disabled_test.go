//go:build !race

package proxy

const raceEnabled = false
