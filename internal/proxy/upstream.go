// Origin fault tolerance for the reverse-proxy deployment: a configurable
// upstream transport, bounded retries for idempotent requests, a per-request
// deadline, and a lock-free circuit breaker. The detector must keep running
// while the origin is dark — an outage is precisely when a flash crowd or an
// attack is most likely — so every failure mode short of a healthy origin
// still produces a fast, branded response and the detection machinery keeps
// observing, classifying and serving beacons throughout.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/telemetry"
)

// UpstreamConfig controls the reverse proxy's connection to the origin. The
// zero value gets production defaults from withDefaults; the previous
// behaviour — http.DefaultTransport with no dial bound, no response-header
// bound and no retry — meant a blackholed origin pinned every in-flight
// request until the kernel gave up.
type UpstreamConfig struct {
	// DialTimeout bounds establishing a TCP connection to the origin
	// (default 5s).
	DialTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for the origin's response headers
	// after the request is written (default 15s).
	ResponseHeaderTimeout time.Duration
	// IdleConnTimeout closes idle origin connections (default 90s).
	IdleConnTimeout time.Duration
	// MaxIdleConnsPerHost sizes the keep-alive pool to the origin
	// (default 32).
	MaxIdleConnsPerHost int
	// RequestTimeout is the end-to-end deadline for one origin request,
	// including retries (default 60s; <0 disables).
	RequestTimeout time.Duration
	// Retries is the number of re-attempts after a failed idempotent (GET or
	// HEAD, bodyless) request; non-idempotent requests are never retried
	// (default 2; <0 disables).
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// BreakerFailures opens the circuit breaker after this many consecutive
	// upstream failures (default 5).
	BreakerFailures int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// half-open probe (default 10s).
	BreakerCooldown time.Duration
}

func (c UpstreamConfig) withDefaults() UpstreamConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ResponseHeaderTimeout <= 0 {
		c.ResponseHeaderTimeout = 15 * time.Second
	}
	if c.IdleConnTimeout <= 0 {
		c.IdleConnTimeout = 90 * time.Second
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 32
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// BreakerState is the circuit breaker's coarse position.
type BreakerState int32

const (
	// BreakerClosed: requests flow to the origin.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests short-circuit to a branded 503 until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is in flight; everyone else
	// still short-circuits.
	BreakerHalfOpen
)

// String returns the state's metric/status name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// breakerSnap is one immutable breaker state; transitions publish a fresh
// snapshot with a CAS, the same copy-on-write shape as the policy engine's
// block list, so the per-request Allow check is a single atomic load with no
// lock to convoy on when the origin melts down and every request fails at
// once.
type breakerSnap struct {
	state    BreakerState
	fails    int
	openedAt time.Time
}

var breakerClosedSnap = &breakerSnap{state: BreakerClosed}

// Breaker is a lock-free consecutive-failure circuit breaker.
type Breaker struct {
	cur       atomic.Pointer[breakerSnap]
	threshold int
	cooldown  time.Duration
	clk       clock.Clock

	opens         atomic.Int64 // transitions into Open
	shortCircuits atomic.Int64 // requests refused while Open/HalfOpen
	probes        atomic.Int64 // half-open probes admitted
	recoveries    atomic.Int64 // successful probes closing the breaker
}

// NewBreaker creates a breaker that opens after threshold consecutive
// failures and admits a probe after cooldown. A nil clk uses the wall clock.
func NewBreaker(threshold int, cooldown time.Duration, clk clock.Clock) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if clk == nil {
		clk = clock.System
	}
	b := &Breaker{threshold: threshold, cooldown: cooldown, clk: clk}
	b.cur.Store(breakerClosedSnap)
	return b
}

// State returns the breaker's current position. Lock-free.
func (b *Breaker) State() BreakerState { return b.cur.Load().state }

// Allow reports whether a request may proceed to the origin. While open it
// admits exactly one winner as the half-open probe once the cooldown has
// elapsed; every other caller short-circuits.
func (b *Breaker) Allow() bool {
	snap := b.cur.Load()
	switch snap.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clk.Now().Sub(snap.openedAt) >= b.cooldown {
			probe := &breakerSnap{state: BreakerHalfOpen, fails: snap.fails, openedAt: snap.openedAt}
			if b.cur.CompareAndSwap(snap, probe) {
				b.probes.Add(1)
				return true
			}
		}
		b.shortCircuits.Add(1)
		return false
	default: // BreakerHalfOpen: a probe is already in flight.
		b.shortCircuits.Add(1)
		return false
	}
}

// Success records a healthy origin exchange, closing the breaker.
func (b *Breaker) Success() {
	for {
		snap := b.cur.Load()
		if snap.state == BreakerClosed && snap.fails == 0 {
			return // steady-state fast path: no store, no contention
		}
		if b.cur.CompareAndSwap(snap, breakerClosedSnap) {
			if snap.state == BreakerHalfOpen {
				b.recoveries.Add(1)
			}
			return
		}
	}
}

// Failure records a failed origin exchange: it advances the consecutive
// failure count while closed (opening at the threshold) and re-opens
// immediately on a failed half-open probe. Failures reported while already
// open (stragglers that were in flight when the breaker tripped) are
// dropped so they cannot extend the cooldown.
func (b *Breaker) Failure() {
	for {
		snap := b.cur.Load()
		var next *breakerSnap
		switch snap.state {
		case BreakerClosed:
			if snap.fails+1 >= b.threshold {
				next = &breakerSnap{state: BreakerOpen, openedAt: b.clk.Now()}
			} else {
				next = &breakerSnap{state: BreakerClosed, fails: snap.fails + 1}
			}
		case BreakerHalfOpen:
			next = &breakerSnap{state: BreakerOpen, openedAt: b.clk.Now()}
		default: // already open
			return
		}
		if b.cur.CompareAndSwap(snap, next) {
			if next.state == BreakerOpen {
				b.opens.Add(1)
			}
			return
		}
	}
}

// BreakerStats are the breaker's cumulative transition counters.
type BreakerStats struct {
	Opens         int64 // transitions into Open
	Probes        int64 // half-open probes admitted
	Recoveries    int64 // successful probes closing the breaker
	ShortCircuits int64 // requests refused while Open/HalfOpen
}

// Stats returns a copy of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	return BreakerStats{
		Opens:         b.opens.Load(),
		Probes:        b.probes.Load(),
		Recoveries:    b.recoveries.Load(),
		ShortCircuits: b.shortCircuits.Load(),
	}
}

// RetryAfter returns how long a short-circuited client should wait before
// retrying: the remaining cooldown, floored at one second so the header never
// advertises an instant retry into a dead origin.
func (b *Breaker) RetryAfter() time.Duration {
	snap := b.cur.Load()
	d := b.cooldown
	if snap.state == BreakerOpen {
		d = b.cooldown - b.clk.Now().Sub(snap.openedAt)
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// breakerOpenError is the sentinel the transport returns for a
// short-circuited request; the error handler maps it to a branded 503.
type breakerOpenError struct{ retryAfter time.Duration }

func (e *breakerOpenError) Error() string {
	return "origin circuit breaker open (retry in " + e.retryAfter.Truncate(time.Second).String() + ")"
}

// upstreamTripper wraps the origin transport with the breaker gate and
// bounded retry-with-backoff for idempotent requests.
type upstreamTripper struct {
	base http.RoundTripper
	br   *Breaker
	cfg  UpstreamConfig

	retries   atomic.Int64 // re-attempts after a failed idempotent exchange
	failures  atomic.Int64 // exchanges that exhausted every attempt
	midstream atomic.Int64 // response bodies that died after headers
}

// RoundTrip implements http.RoundTripper.
func (t *upstreamTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	if !t.br.Allow() {
		return nil, &breakerOpenError{retryAfter: t.br.RetryAfter()}
	}
	// Only bodyless GET/HEAD requests are retried: re-sending a request with
	// a consumed body needs GetBody plumbing, and non-idempotent methods must
	// never be replayed into an origin that may have half-applied them.
	attempts := 1
	if (r.Method == http.MethodGet || r.Method == http.MethodHead) && r.Body == nil {
		attempts += t.cfg.Retries
	}
	backoff := t.cfg.RetryBackoff
	var resp *http.Response
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t.retries.Add(1)
			select {
			case <-r.Context().Done():
				t.failures.Add(1)
				t.br.Failure()
				return nil, fmt.Errorf("upstream retry %d abandoned: %w", attempt, r.Context().Err())
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		resp, err = t.base.RoundTrip(r)
		if err == nil && resp.StatusCode < http.StatusInternalServerError {
			t.br.Success()
			resp.Body = &trackedBody{rc: resp.Body, t: t}
			return resp, nil
		}
		if err == nil && attempt < attempts-1 {
			// A 5xx we are about to retry: drain a little so the keep-alive
			// connection can be reused, then close.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			resp = nil
		}
		if r.Context().Err() != nil {
			break
		}
	}
	t.failures.Add(1)
	t.br.Failure()
	if err != nil {
		return nil, fmt.Errorf("upstream round trip failed after %d attempt(s): %w", attempts, err)
	}
	// Out of retries with a 5xx in hand: forward the origin's own error page
	// (it may carry a maintenance notice) rather than masking it.
	return resp, nil
}

// trackedBody wraps an origin response body so a mid-stream death — the
// upstream resetting the connection after the proxy has already committed a
// 200 — is counted, feeds the breaker, and reaches the log with context
// instead of surfacing as a bare read error. The truncation itself is made
// visible by the middleware's abort path: the client connection is torn down
// rather than closed with a clean terminal chunk.
type trackedBody struct {
	rc     io.ReadCloser
	t      *upstreamTripper
	read   int64
	failed bool
}

func (b *trackedBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.read += int64(n)
	if err != nil && err != io.EOF && !b.failed {
		b.failed = true
		b.t.midstream.Add(1)
		b.t.br.Failure()
		return n, fmt.Errorf("upstream died mid-stream after %d body bytes: %w", b.read, err)
	}
	return n, err
}

func (b *trackedBody) Close() error { return b.rc.Close() }

// upstreamErrorHandler turns transport failures into deliberate responses:
// breaker short-circuits become a branded 503 with Retry-After, deadline
// expiries a 504, everything else a 502 carrying the error context the
// default handler used to drop. It runs before any body byte is written
// (mid-stream deaths take the abort path instead), so the status is honest.
func (m *Middleware) upstreamErrorHandler(w http.ResponseWriter, r *http.Request, err error) {
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h["Cache-Control"] = noStoreHeader
	var open *breakerOpenError
	switch {
	case errors.As(err, &open):
		h.Set("Retry-After", strconv.Itoa(int((open.retryAfter+time.Second-1)/time.Second)))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "botdetect: the origin is temporarily unavailable; please retry shortly.\n")
	case errors.Is(err, context.DeadlineExceeded):
		w.WriteHeader(http.StatusGatewayTimeout)
		fmt.Fprintf(w, "botdetect: the origin did not respond in time.\n")
	default:
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, "botdetect: error reaching the origin: %v\n", err)
	}
}

// deadlineHandler applies the per-request origin deadline.
type deadlineHandler struct {
	h http.Handler
	d time.Duration
}

func (dh deadlineHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), dh.d)
	defer cancel()
	dh.h.ServeHTTP(w, r.WithContext(ctx))
}

// NewReverseProxy builds a middleware that forwards to the given upstream
// origin URL, protecting an existing site without modifying it (the
// "protect an origin you do not control" deployment). Unlike a bare
// httputil.NewSingleHostReverseProxy it bounds every stage of the origin
// exchange (cfg.Upstream), retries failed idempotent requests, and trips a
// circuit breaker when the origin is down so a dead backend costs one atomic
// load per request instead of a dial timeout — detection keeps running
// against the branded 503s.
func NewReverseProxy(upstream *url.URL, cfg Config) *Middleware {
	ucfg := cfg.Upstream.withDefaults()
	var clk clock.Clock
	if cfg.Engine != nil {
		clk = cfg.Engine.Config().Clock
	}
	br := NewBreaker(ucfg.BreakerFailures, ucfg.BreakerCooldown, clk)
	transport := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   ucfg.DialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ResponseHeaderTimeout: ucfg.ResponseHeaderTimeout,
		IdleConnTimeout:       ucfg.IdleConnTimeout,
		MaxIdleConnsPerHost:   ucfg.MaxIdleConnsPerHost,
	}
	tripper := &upstreamTripper{base: transport, br: br, cfg: ucfg}
	rp := httputil.NewSingleHostReverseProxy(upstream)
	rp.Transport = tripper
	var handler http.Handler = rp
	if ucfg.RequestTimeout > 0 {
		handler = deadlineHandler{h: rp, d: ucfg.RequestTimeout}
	}
	m := New(handler, cfg)
	m.breaker = br
	m.upstream = tripper
	rp.ErrorHandler = m.upstreamErrorHandler
	m.registerUpstreamTelemetry()
	return m
}

// Breaker returns the reverse proxy's circuit breaker (nil for middleware
// built around an in-process origin handler).
func (m *Middleware) Breaker() *Breaker { return m.breaker }

// registerUpstreamTelemetry adds the breaker and transport collectors to the
// engine's registry, node-labelled like every other engine family.
func (m *Middleware) registerUpstreamTelemetry() {
	reg := m.cfg.Engine.Telemetry().Registry()
	nl := ""
	if n := m.cfg.Engine.Config().TelemetryNode; n != "" {
		nl = telemetry.Label("node", n)
	}
	counter := func(name, labels, help string, v func() int64) {
		reg.CounterFunc(name, telemetry.Join(labels, nl), help, func() float64 { return float64(v()) })
	}
	const events = "botdetect_upstream_events_total"
	eventsHelp := "Origin fault-tolerance events: breaker opens, half-open probes, " +
		"recoveries, short-circuited requests, retries, exhausted exchanges, and " +
		"responses that died mid-stream."
	counter(events, telemetry.Label("event", "breaker_open"), eventsHelp, m.breaker.opens.Load)
	counter(events, telemetry.Label("event", "probe"), eventsHelp, m.breaker.probes.Load)
	counter(events, telemetry.Label("event", "recovery"), eventsHelp, m.breaker.recoveries.Load)
	counter(events, telemetry.Label("event", "short_circuit"), eventsHelp, m.breaker.shortCircuits.Load)
	counter(events, telemetry.Label("event", "retry"), eventsHelp, m.upstream.retries.Load)
	counter(events, telemetry.Label("event", "failure"), eventsHelp, m.upstream.failures.Load)
	counter(events, telemetry.Label("event", "midstream_abort"), eventsHelp, m.upstream.midstream.Load)
	reg.GaugeFunc("botdetect_upstream_breaker_state",
		"Origin circuit breaker state: 0 closed, 1 open, 2 half-open.",
		func(emit func(labels string, v float64)) { emit(nl, float64(m.breaker.State())) })
}
