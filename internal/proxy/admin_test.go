package proxy

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/fleet"
	"botdetect/internal/policy"
	"botdetect/internal/session"
	"botdetect/internal/telemetry"
)

const adminTestUA = "Firefox/1.5 (admin test)"

// newAdminStack builds origin → middleware → mux with the admin surface
// registered, the way cmd/botproxy wires it.
func newAdminStack(t *testing.T, enablePprof bool) (*http.ServeMux, *core.Engine, *policy.Engine) {
	t.Helper()
	return newAdminStackToken(t, enablePprof, "")
}

func newAdminStackToken(t *testing.T, enablePprof bool, token string) (*http.ServeMux, *core.Engine, *policy.Engine) {
	t.Helper()
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte("<html><head><title>t</title></head><body>hello</body></html>"))
	})
	eng := core.New(core.Config{Seed: 31})
	pol := policy.NewEngine(policy.Config{})
	pol.RegisterMetrics(eng.Telemetry().Registry(), "")
	mw := New(origin, Config{Engine: eng, Policy: pol})
	admin := NewAdmin(AdminConfig{Engine: eng, Policy: pol, EnablePprof: enablePprof, AuthToken: token})
	mux := http.NewServeMux()
	mux.Handle("/", mw)
	admin.Register(mux)
	return mux, eng, pol
}

func adminGet(mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = "10.1.2.3:5555"
	req.Header.Set("User-Agent", adminTestUA)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func adminPost(mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, nil)
	req.RemoteAddr = "10.1.2.3:5555"
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func TestAdminMetricsEndpoint(t *testing.T) {
	mux, _, _ := newAdminStack(t, false)

	// One instrumented page fetch must move the proxy and page counters.
	if rec := adminGet(mux, "/page.html"); rec.Code != http.StatusOK {
		t.Fatalf("page fetch status %d", rec.Code)
	}
	rec := adminGet(mux, "/__bd/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("metrics content-type %q, want %q", ct, telemetry.ContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"botdetect_pages_instrumented_total 1",
		`botdetect_proxy_requests_total{outcome="origin"} 1`,
		`botdetect_stage_duration_seconds_count{stage="rewrite_stream"} 1`,
		`botdetect_policy_sessions{stage="block"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestAdminStatusEndpoint(t *testing.T) {
	mux, _, _ := newAdminStack(t, false)
	adminGet(mux, "/page.html")
	rec := adminGet(mux, "/__bd/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status endpoint status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("status content-type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "detector chain:") || !strings.Contains(body, "active sessions: 1") {
		t.Fatalf("status body incomplete:\n%s", body)
	}
}

// discardTransport drops every replication message (the admin surface only
// reads the replicator's local state).
type discardTransport struct{}

func (discardTransport) Send(to string, msg *fleet.Message) error { return nil }

func TestAdminStatusFleetSection(t *testing.T) {
	origin := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	eng := core.New(core.Config{Seed: 31})
	rep := fleet.New(fleet.Config{Name: "n0", Peers: []string{"n0", "n1"}, Transport: discardTransport{}})
	rep.Start()
	defer rep.Stop()
	rep.PublishVerdict(session.Key{IP: "10.0.0.9", UserAgent: "x"},
		detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "r"})
	mw := New(origin, Config{Engine: eng})
	admin := NewAdmin(AdminConfig{Engine: eng, Fleet: rep})
	mux := http.NewServeMux()
	mux.Handle("/", mw)
	admin.Register(mux)

	rec := adminGet(mux, "/__bd/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status endpoint status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"fleet: node=n0 inc=1",
		"fleet replication:",
		"fleet stores: verdicts=1",
		"fleet peer n1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet status missing %q:\n%s", want, body)
		}
	}
	// A one-peer fleet that cannot hear its peer is below quorum: the status
	// page must say so rather than pretend the control plane is healthy.
	if !strings.Contains(body, "ISOLATED") {
		t.Errorf("status should mark the peerless node isolated:\n%s", body)
	}
}

func TestAdminSessionInspect(t *testing.T) {
	mux, _, _ := newAdminStack(t, false)
	if rec := adminGet(mux, "/__bd/admin/session?ip=10.1.2.3&ua=nobody"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown session status %d, want 404", rec.Code)
	}
	if rec := adminGet(mux, "/__bd/admin/session"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing ip status %d, want 400", rec.Code)
	}

	adminGet(mux, "/page.html")
	rec := adminGet(mux, "/__bd/admin/session?ip=10.1.2.3&ua="+strings.ReplaceAll(adminTestUA, " ", "+"))
	if rec.Code != http.StatusOK {
		t.Fatalf("session inspect status %d: %s", rec.Code, rec.Body.String())
	}
	var view struct {
		IP       string `json:"ip"`
		Requests int64  `json:"requests"`
		Verdict  struct {
			Class string `json:"class"`
		} `json:"verdict"`
		Features []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"features"`
		Policy *struct {
			Stage string `json:"stage"`
		} `json:"policy"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatalf("session inspect is not JSON: %v", err)
	}
	if view.IP != "10.1.2.3" || view.Requests != 1 || view.Verdict.Class == "" {
		t.Fatalf("unexpected view: %+v", view)
	}
	if len(view.Features) == 0 {
		t.Fatal("feature vector missing")
	}
	if view.Policy == nil || view.Policy.Stage == "" {
		t.Fatal("policy stage missing")
	}
}

func TestAdminRotateAndRetrain(t *testing.T) {
	mux, eng, _ := newAdminStack(t, false)
	if rec := adminGet(mux, "/__bd/admin/rotate"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET rotate status %d, want 405", rec.Code)
	}
	rec := adminPost(mux, "/__bd/admin/rotate")
	if rec.Code != http.StatusOK {
		t.Fatalf("rotate status %d", rec.Code)
	}
	if got := eng.Telemetry().ScriptRotations.Value(); got != 1 {
		t.Fatalf("rotations counter %d, want 1", got)
	}
	// No labelled outcomes buffered: retrain must report the conflict.
	if rec := adminPost(mux, "/__bd/admin/retrain"); rec.Code != http.StatusConflict {
		t.Fatalf("retrain status %d, want 409: %s", rec.Code, rec.Body.String())
	}
}

func TestAdminOverrideBlocksRobot(t *testing.T) {
	mux, _, pol := newAdminStack(t, false)
	adminGet(mux, "/page.html")

	ua := strings.ReplaceAll(adminTestUA, " ", "+")
	if rec := adminPost(mux, "/__bd/admin/override?ip=10.1.2.3&ua="+ua+"&verdict=maybe"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad verdict status %d, want 400", rec.Code)
	}
	if rec := adminPost(mux, "/__bd/admin/override?ip=10.1.2.3&ua="+ua+"&verdict=robot"); rec.Code != http.StatusOK {
		t.Fatalf("override status %d: %s", rec.Code, rec.Body.String())
	}
	key := session.Key{IP: "10.1.2.3", UserAgent: adminTestUA}
	if got := pol.StageOf(key); got.String() != "block" {
		t.Fatalf("policy stage %q after robot override, want block", got)
	}
	if rec := adminGet(mux, "/page.html"); rec.Code != http.StatusForbidden {
		t.Fatalf("blocked client got status %d, want 403", rec.Code)
	}
}

// TestAdminAuthToken pins the bearer-token gate: with AuthToken configured,
// every admin endpoint — the read-only views included, since they expose
// client IPs and User-Agents — refuses requests without the exact token.
func TestAdminAuthToken(t *testing.T) {
	mux, _, _ := newAdminStackToken(t, false, "s3cret")

	do := func(method, path, auth string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, nil)
		req.RemoteAddr = "10.1.2.3:5555"
		req.Header.Set("User-Agent", adminTestUA)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}

	for _, path := range []string{"/__bd/metrics", "/__bd/status", "/__bd/admin/session?ip=1.2.3.4"} {
		if rec := do(http.MethodGet, path, ""); rec.Code != http.StatusUnauthorized {
			t.Errorf("GET %s without token: status %d, want 401", path, rec.Code)
		}
		if rec := do(http.MethodGet, path, "Bearer wrong"); rec.Code != http.StatusUnauthorized {
			t.Errorf("GET %s with bad token: status %d, want 401", path, rec.Code)
		}
	}
	for _, path := range []string{"/__bd/admin/override?ip=1.2.3.4&verdict=human", "/__bd/admin/rotate", "/__bd/admin/retrain"} {
		if rec := do(http.MethodPost, path, ""); rec.Code != http.StatusUnauthorized {
			t.Errorf("POST %s without token: status %d, want 401", path, rec.Code)
		}
	}

	if rec := do(http.MethodGet, "/__bd/metrics", "Bearer s3cret"); rec.Code != http.StatusOK {
		t.Fatalf("metrics with token: status %d, want 200", rec.Code)
	}
	if rec := do(http.MethodPost, "/__bd/admin/rotate", "Bearer s3cret"); rec.Code != http.StatusOK {
		t.Fatalf("rotate with token: status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	// The public serve path must stay open — the guard covers only /__bd admin routes.
	if rec := do(http.MethodGet, "/page.html", ""); rec.Code != http.StatusOK {
		t.Fatalf("public page without token: status %d, want 200", rec.Code)
	}
}

// TestAdminCrossOriginRejected pins the tokenless (loopback-deployment) CSRF
// guard: a browser-initiated request always carries an Origin header, and a
// hostile page must not be able to drive an operator's browser into posting
// an override to the loopback listener.
func TestAdminCrossOriginRejected(t *testing.T) {
	mux, _, pol := newAdminStack(t, false)
	adminGet(mux, "/page.html")

	ua := strings.ReplaceAll(adminTestUA, " ", "+")
	req := httptest.NewRequest(http.MethodPost, "/__bd/admin/override?ip=10.1.2.3&ua="+ua+"&verdict=robot", nil)
	req.RemoteAddr = "127.0.0.1:4444"
	req.Header.Set("Origin", "http://evil.example")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("cross-origin override: status %d, want 403", rec.Code)
	}
	key := session.Key{IP: "10.1.2.3", UserAgent: adminTestUA}
	if got := pol.StageOf(key).String(); got == "block" {
		t.Fatal("cross-origin override must not reach the policy engine")
	}

	req = httptest.NewRequest(http.MethodGet, "/__bd/status", nil)
	req.Header.Set("Origin", "http://evil.example")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("cross-origin status read: status %d, want 403", rec.Code)
	}
}

func TestAdminPprofGating(t *testing.T) {
	muxOff, _, _ := newAdminStack(t, false)
	if rec := adminGet(muxOff, "/__bd/debug/pprof/"); rec.Code == http.StatusOK {
		t.Fatal("pprof must be absent by default")
	}
	muxOn, _, _ := newAdminStack(t, true)
	rec := adminGet(muxOn, "/__bd/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status %d with -pprof", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index did not render profile listing (prefix stripping broken?)")
	}
}
