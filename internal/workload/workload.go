// Package workload drives populations of traffic agents against the CDN
// simulator on a virtual clock, producing labelled session sets for the
// evaluation experiments. The default client mix is calibrated so that the
// Table 1 signal shares (CSS downloads, JavaScript execution, mouse events,
// CAPTCHA passes, hidden-link fetches, browser-type mismatches) land in the
// neighbourhood the paper reports for CoDeeN's January 2006 traffic.
package workload

import (
	"fmt"
	"time"

	"botdetect/internal/agents"
	"botdetect/internal/cdn"
	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

// Mix gives the relative weight of each agent family in the generated
// traffic. Weights need not sum to 1.
type Mix struct {
	HumanJS         float64
	HumanNoJS       float64
	Crawler         float64
	EmailHarvester  float64
	ReferrerSpammer float64
	ClickFraud      float64
	VulnScanner     float64
	OfflineBrowser  float64
	SmartBot        float64
	// SmartBotForgedUA is a smart bot whose script engine reports a different
	// agent string than its forged header (caught by the mismatch check).
	SmartBotForgedUA float64
}

// CoDeeNMix returns the default mix, calibrated against Table 1: roughly a
// quarter of sessions are human (most with JavaScript enabled), the bulk of
// robot sessions are referrer spammers, click-fraud generators and
// harvesters that ignore presentation objects, and only a sliver of sessions
// follow hidden links or reveal forged agents.
func CoDeeNMix() Mix {
	return Mix{
		HumanJS:          0.225,
		HumanNoJS:        0.020,
		Crawler:          0.008,
		EmailHarvester:   0.300,
		ReferrerSpammer:  0.230,
		ClickFraud:       0.120,
		VulnScanner:      0.050,
		OfflineBrowser:   0.004,
		SmartBot:         0.036,
		SmartBotForgedUA: 0.007,
	}
}

// HumanOnlyMix is a convenience mix with only human agents.
func HumanOnlyMix() Mix { return Mix{HumanJS: 0.92, HumanNoJS: 0.08} }

// RobotOnlyMix is a convenience mix with only robot agents.
func RobotOnlyMix() Mix {
	return Mix{Crawler: 0.1, EmailHarvester: 0.3, ReferrerSpammer: 0.25, ClickFraud: 0.15, VulnScanner: 0.1, OfflineBrowser: 0.02, SmartBot: 0.08}
}

// weightsAndKinds flattens the mix in a stable order.
func (m Mix) weightsAndKinds() ([]float64, []agents.Kind, []bool) {
	kinds := []agents.Kind{
		agents.KindHuman, agents.KindHumanNoJS, agents.KindCrawler, agents.KindEmailHarvester,
		agents.KindReferrerSpammer, agents.KindClickFraud, agents.KindVulnScanner,
		agents.KindOfflineBrowser, agents.KindSmartBot, agents.KindSmartBot,
	}
	weights := []float64{
		m.HumanJS, m.HumanNoJS, m.Crawler, m.EmailHarvester, m.ReferrerSpammer,
		m.ClickFraud, m.VulnScanner, m.OfflineBrowser, m.SmartBot, m.SmartBotForgedUA,
	}
	forged := []bool{false, false, false, false, false, false, false, false, false, true}
	return weights, kinds, forged
}

// Config controls a workload run.
type Config struct {
	// Sessions is the number of agent sessions to generate.
	Sessions int
	// Mix is the agent family mix (default CoDeeNMix).
	Mix Mix
	// Nodes is the number of CDN nodes (default 4).
	Nodes int
	// Site is the origin site (generated when nil).
	Site *webmodel.Site
	// WithPolicy enables the enforcement engine on each node.
	WithPolicy bool
	// CaptchaParticipation is the probability a human session takes the
	// optional CAPTCHA (paper: roughly 9% of all sessions passed it, i.e.
	// about 0.38 of the human share).
	CaptchaParticipation float64
	// SessionArrivalRate is mean session arrivals per second.
	SessionArrivalRate float64
	// HumanPages is the mean page views per human session (heavy-tailed).
	HumanPages int
	// HumanMouseProbability is the per-page-view probability that a
	// JavaScript-enabled human produces an input event before navigating
	// away (default 0.85). Lower values stretch the mouse-detection latency
	// tail, as slower or less mouse-active users did in the live deployment.
	HumanMouseProbability float64
	// RobotRequests is the mean steps per robot session.
	RobotRequests int
	// RecordLogs keeps all request entries for offline analysis.
	RecordLogs bool
	// DetectorConfig overrides parts of the per-node detector configuration;
	// Seed and Clock are always managed by the driver.
	DetectorConfig core.Config
	// Prepare, when non-nil, runs after the network is built and before any
	// agent is scheduled. It receives the network and the virtual clock, so
	// callers can pre-load models (cdn.Network.SetModel) or schedule
	// mid-run interventions — e.g. hot-swapping a freshly trained model at a
	// virtual time while traffic is being served, as the online-training
	// experiment does.
	Prepare func(*cdn.Network, *clock.Virtual)
	// Start is the virtual start time (defaults to 2006-01-06, the first day
	// of the paper's measurement week).
	Start time.Time
	// Seed drives all randomness.
	Seed uint64
	// MaxEvents bounds the discrete-event simulation (a safety valve; 0
	// means derived from Sessions).
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 200
	}
	if c.Mix == (Mix{}) {
		c.Mix = CoDeeNMix()
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.CaptchaParticipation < 0 {
		c.CaptchaParticipation = 0
	}
	if c.CaptchaParticipation == 0 {
		c.CaptchaParticipation = 0.38
	}
	if c.SessionArrivalRate <= 0 {
		c.SessionArrivalRate = 2.0
	}
	if c.HumanPages <= 0 {
		c.HumanPages = 12
	}
	if c.HumanMouseProbability <= 0 {
		c.HumanMouseProbability = 0.85
	}
	if c.RobotRequests <= 0 {
		c.RobotRequests = 40
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2006, time.January, 6, 0, 0, 0, 0, time.UTC)
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = c.Sessions * 2000
	}
	return c
}

// LabeledSession pairs an observed session with its detector verdict and its
// ground-truth agent kind.
type LabeledSession struct {
	Snapshot session.Snapshot
	Verdict  core.Verdict
	Kind     agents.Kind
}

// IsHuman is the ground-truth label.
func (l LabeledSession) IsHuman() bool { return l.Kind.IsHuman() }

// Result is the outcome of a workload run.
type Result struct {
	// Sessions are the completed sessions with verdicts and ground truth.
	Sessions []LabeledSession
	// Network is the simulated CDN (for stats inspection).
	Network *cdn.Network
	// Clock is the virtual clock at the end of the run.
	Clock *clock.Virtual
	// GroundTruth maps session keys to agent kinds.
	GroundTruth map[session.Key]agents.Kind
	// Entries are the recorded request entries (empty unless RecordLogs).
	Entries []logfmt.Entry
	// AgentsLaunched counts launched agents per kind.
	AgentsLaunched map[agents.Kind]int
}

// HumanSessions returns only ground-truth human sessions.
func (r *Result) HumanSessions() []LabeledSession {
	var out []LabeledSession
	for _, s := range r.Sessions {
		if s.IsHuman() {
			out = append(out, s)
		}
	}
	return out
}

// RobotSessions returns only ground-truth robot sessions.
func (r *Result) RobotSessions() []LabeledSession {
	var out []LabeledSession
	for _, s := range r.Sessions {
		if !s.IsHuman() {
			out = append(out, s)
		}
	}
	return out
}

// Snapshots returns the raw session snapshots.
func (r *Result) Snapshots() []session.Snapshot {
	out := make([]session.Snapshot, len(r.Sessions))
	for i, s := range r.Sessions {
		out[i] = s.Snapshot
	}
	return out
}

// Run executes the workload and returns the labelled sessions.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed).Fork("workload")
	vc := clock.NewVirtual(cfg.Start)

	site := cfg.Site
	if site == nil {
		site = webmodel.Generate(webmodel.SiteConfig{Seed: cfg.Seed ^ 0x5117, NumPages: 120})
	}

	detCfg := cfg.DetectorConfig
	detCfg.Clock = vc
	// The simulated deployment always obfuscates, as the paper's did.
	detCfg.ObfuscateJS = true
	network := cdn.NewNetwork(cfg.Nodes, site, detCfg, cfg.WithPolicy, cfg.Seed^0xabcd)
	if cfg.RecordLogs {
		for _, node := range network.Nodes() {
			node.SetRecording(true)
		}
	}
	if cfg.Prepare != nil {
		cfg.Prepare(network, vc)
	}

	truth := make(map[session.Key]agents.Kind)
	launched := make(map[agents.Kind]int)
	weights, kinds, forged := cfg.Mix.weightsAndKinds()

	// Launch agents with exponential inter-arrival times.
	arrival := time.Duration(0)
	for i := 0; i < cfg.Sessions; i++ {
		pick := src.WeightedChoice(weights)
		kind := kinds[pick]
		isForged := forged[pick]
		ip := fmt.Sprintf("%d.%d.%d.%d", 11+i%80, (i/253)%253+1, (i%253)+1, 1+src.Intn(250))
		agent := buildAgent(kind, isForged, ip, site.Host(), cfg, src.Split())
		truth[session.Key{IP: agent.IP(), UserAgent: agent.UserAgent()}] = kind
		launched[kind]++

		arrival += time.Duration(src.Exp(float64(time.Second) / cfg.SessionArrivalRate))
		scheduleAgent(vc, network, agent, arrival)
	}

	vc.Drain(cfg.MaxEvents)

	// Collect sessions: everything still active plus whatever ended during
	// the run is flushed now (the detector's OnSessionEnd callback is unused
	// by the driver; FlushSessions returns the final state of every session).
	classified := network.FlushSessions()

	result := &Result{
		Network:        network,
		Clock:          vc,
		GroundTruth:    truth,
		AgentsLaunched: launched,
	}
	for _, cs := range classified {
		kind, ok := truth[cs.Snapshot.Key]
		if !ok {
			// A session keyed by an agent UA variant we did not launch should
			// not happen; skip defensively rather than mislabel.
			continue
		}
		result.Sessions = append(result.Sessions, LabeledSession{Snapshot: cs.Snapshot, Verdict: cs.Verdict, Kind: kind})
	}
	if cfg.RecordLogs {
		for _, node := range network.Nodes() {
			result.Entries = append(result.Entries, node.Entries()...)
		}
	}
	return result
}

// buildAgent constructs one agent of the requested kind.
func buildAgent(kind agents.Kind, forgedUA bool, ip, host string, cfg Config, src *rng.Source) agents.Agent {
	switch kind {
	case agents.KindHuman, agents.KindHumanNoJS:
		pages := 3 + src.Poisson(float64(cfg.HumanPages-3))
		return agents.NewHuman(agents.HumanConfig{
			IP:                   ip,
			Host:                 host,
			Pages:                pages,
			JavaScriptEnabled:    kind == agents.KindHuman,
			MouseMoveProbability: cfg.HumanMouseProbability,
			SolveCaptcha:         cfg.CaptchaParticipation,
			ThinkTimeMean:        15 * time.Second,
			Src:                  src,
		})
	default:
		rcfg := agents.RobotConfig{
			IP:               ip,
			Host:             host,
			Requests:         5 + src.Poisson(float64(cfg.RobotRequests-5)),
			InterRequestMean: 2 * time.Second,
			Src:              src,
		}
		switch kind {
		case agents.KindCrawler:
			return agents.NewCrawler(rcfg)
		case agents.KindEmailHarvester:
			return agents.NewEmailHarvester(rcfg)
		case agents.KindReferrerSpammer:
			return agents.NewReferrerSpammer(rcfg)
		case agents.KindClickFraud:
			return agents.NewClickFraud(rcfg)
		case agents.KindVulnScanner:
			return agents.NewVulnScanner(rcfg)
		case agents.KindOfflineBrowser:
			return agents.NewOfflineBrowser(rcfg)
		default: // KindSmartBot
			if forgedUA {
				rcfg.EngineAgent = "Mozilla/5.0 (embedded script engine) BotRuntime/0.9"
			}
			return agents.NewSmartBot(rcfg)
		}
	}
}

// scheduleAgent runs the agent's steps as virtual-clock events.
func scheduleAgent(vc *clock.Virtual, client agents.Client, agent agents.Agent, startDelay time.Duration) {
	var step func(now time.Time)
	step = func(now time.Time) {
		delay, done := agent.Step(client, now)
		if done {
			return
		}
		vc.Schedule(delay, step)
	}
	vc.Schedule(startDelay, step)
}
