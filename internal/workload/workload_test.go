package workload

import (
	"testing"

	"botdetect/internal/agents"
	"botdetect/internal/core"
	"botdetect/internal/detect/rules"
	"botdetect/internal/session"
)

func TestRunSmallWorkloadProducesLabeledSessions(t *testing.T) {
	res := Run(Config{Sessions: 60, Seed: 1})
	if len(res.Sessions) == 0 {
		t.Fatal("no sessions produced")
	}
	if len(res.Sessions) > 60 {
		t.Fatalf("more sessions (%d) than agents (60)", len(res.Sessions))
	}
	// Every session has ground truth and a consistent key.
	for _, s := range res.Sessions {
		if _, ok := res.GroundTruth[s.Snapshot.Key]; !ok {
			t.Fatalf("session %v missing ground truth", s.Snapshot.Key)
		}
		if s.Snapshot.Counts.Total == 0 {
			t.Fatal("session with zero requests")
		}
	}
	if res.Network == nil || res.Clock == nil {
		t.Fatal("result missing network or clock")
	}
	if res.Network.TotalStats().Requests == 0 {
		t.Fatal("network saw no requests")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a := Run(Config{Sessions: 40, Seed: 7})
	b := Run(Config{Sessions: 40, Seed: 7})
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	if a.Network.TotalStats().Requests != b.Network.TotalStats().Requests {
		t.Fatalf("request counts differ: %d vs %d",
			a.Network.TotalStats().Requests, b.Network.TotalStats().Requests)
	}
	c := Run(Config{Sessions: 40, Seed: 8})
	if c.Network.TotalStats().Requests == a.Network.TotalStats().Requests {
		t.Log("warning: different seeds produced identical request counts (possible but unlikely)")
	}
}

func TestHumanOnlyMixAllHuman(t *testing.T) {
	res := Run(Config{Sessions: 30, Mix: HumanOnlyMix(), Seed: 3})
	for _, s := range res.Sessions {
		if !s.IsHuman() {
			t.Fatalf("non-human session %s in human-only mix", s.Kind)
		}
	}
	if len(res.HumanSessions()) != len(res.Sessions) || len(res.RobotSessions()) != 0 {
		t.Fatal("HumanSessions/RobotSessions filters inconsistent")
	}
}

func TestRobotOnlyMixAllRobot(t *testing.T) {
	res := Run(Config{Sessions: 30, Mix: RobotOnlyMix(), Seed: 4})
	for _, s := range res.Sessions {
		if s.IsHuman() {
			t.Fatalf("human session in robot-only mix")
		}
	}
}

func TestDetectionQualityOnDefaultMix(t *testing.T) {
	res := Run(Config{Sessions: 150, Seed: 11})
	var correct, total, undecided int
	var falsePositives, robots int
	for _, s := range res.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue // the paper only classifies sessions with > 10 requests
		}
		total++
		switch s.Verdict.Class {
		case core.ClassUndecided:
			undecided++
		case core.ClassHuman:
			if s.IsHuman() {
				correct++
			} else {
				falsePositives++
			}
		case core.ClassRobot:
			if !s.IsHuman() {
				correct++
			}
		}
		if !s.IsHuman() {
			robots++
		}
	}
	if total < 50 {
		t.Fatalf("too few classifiable sessions: %d", total)
	}
	accuracy := float64(correct) / float64(total)
	if accuracy < 0.85 {
		t.Fatalf("detector accuracy on synthetic workload = %.2f (correct=%d total=%d undecided=%d)",
			accuracy, correct, total, undecided)
	}
	if robots > 0 {
		fpr := float64(falsePositives) / float64(robots)
		if fpr > 0.05 {
			t.Fatalf("false positive rate = %.3f", fpr)
		}
	}
}

func TestSignalSharesRoughlyMatchTable1(t *testing.T) {
	res := Run(Config{Sessions: 400, Seed: 13})
	b := rules.Breakdown(res.Snapshots(), 10)
	if b.Total < 150 {
		t.Fatalf("too few sessions with >10 requests: %d", b.Total)
	}
	check := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s share = %.3f, want within [%.2f, %.2f]", name, got, lo, hi)
		}
	}
	// Loose bands around the Table 1 percentages (synthetic workload).
	check("CSS", b.CSSFraction(), 0.15, 0.45)
	check("JS", b.JSFraction(), 0.12, 0.45)
	check("mouse", b.MouseFraction(), 0.10, 0.40)
	check("hidden", b.HiddenFraction(), 0.0, 0.08)
	check("ua-mismatch", b.UAMismatchFraction(), 0.0, 0.05)
	// The combining-rule bounds behave like the paper's: the upper bound is
	// close to (and at least) the lower bound and the max FPR stays small.
	if b.HumanUpperBound() < b.HumanLowerBound() {
		t.Fatal("upper bound below lower bound")
	}
	if b.MaxFalsePositiveRate() > 0.12 {
		t.Errorf("max false positive rate = %.3f", b.MaxFalsePositiveRate())
	}
}

func TestGroundTruthKindsLaunched(t *testing.T) {
	res := Run(Config{Sessions: 200, Seed: 17})
	if len(res.AgentsLaunched) < 5 {
		t.Fatalf("agent diversity too low: %v", res.AgentsLaunched)
	}
	if res.AgentsLaunched[agents.KindHuman] == 0 {
		t.Fatal("no human agents launched under the default mix")
	}
	if res.AgentsLaunched[agents.KindEmailHarvester] == 0 {
		t.Fatal("no harvester agents launched under the default mix")
	}
}

func TestRecordLogs(t *testing.T) {
	res := Run(Config{Sessions: 20, Seed: 19, RecordLogs: true, Nodes: 2})
	if len(res.Entries) == 0 {
		t.Fatal("RecordLogs produced no entries")
	}
	// Entries must carry session keys that exist in ground truth.
	known := 0
	for _, e := range res.Entries {
		if _, ok := res.GroundTruth[session.Key{IP: e.ClientIP, UserAgent: e.UserAgent}]; ok {
			known++
		}
	}
	if known == 0 {
		t.Fatal("no log entries map back to launched agents")
	}
}

func TestMixDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Mix != CoDeeNMix() || cfg.Sessions != 200 || cfg.Nodes != 4 {
		t.Fatalf("defaults = %+v", cfg)
	}
	weights, kinds, forged := cfg.Mix.weightsAndKinds()
	if len(weights) != len(kinds) || len(kinds) != len(forged) {
		t.Fatal("mix flattening inconsistent")
	}
}
