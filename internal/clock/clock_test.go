package clock

import (
	"testing"
	"time"
)

func TestRealClockProgresses(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Fatal("real clock went backwards")
	}
}

func TestVirtualDefaultEpoch(t *testing.T) {
	v := NewVirtual(time.Time{})
	want := time.Date(2005, time.January, 1, 0, 0, 0, 0, time.UTC)
	if !v.Now().Equal(want) {
		t.Fatalf("default epoch = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvance(t *testing.T) {
	start := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Advance(90 * time.Minute)
	if got := v.Now(); !got.Equal(start.Add(90 * time.Minute)) {
		t.Fatalf("Advance: got %v", got)
	}
	v.Advance(-time.Hour)
	if got := v.Now(); !got.Equal(start.Add(90 * time.Minute)) {
		t.Fatal("negative Advance should be ignored")
	}
}

func TestVirtualSetNeverBackwards(t *testing.T) {
	start := time.Date(2006, 1, 6, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Set(start.Add(time.Hour))
	v.Set(start.Add(30 * time.Minute))
	if !v.Now().Equal(start.Add(time.Hour)) {
		t.Fatalf("Set moved the clock backwards to %v", v.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	v := NewVirtual(time.Time{})
	var order []int
	v.Schedule(3*time.Second, func(time.Time) { order = append(order, 3) })
	v.Schedule(1*time.Second, func(time.Time) { order = append(order, 1) })
	v.Schedule(2*time.Second, func(time.Time) { order = append(order, 2) })
	if v.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", v.Pending())
	}
	v.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestScheduleSameInstantFIFO(t *testing.T) {
	v := NewVirtual(time.Time{})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.Schedule(time.Second, func(time.Time) { order = append(order, i) })
	}
	v.Drain(0)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestStepAdvancesClock(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	var at time.Time
	v.Schedule(5*time.Second, func(now time.Time) { at = now })
	if !v.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if !at.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("callback saw time %v", at)
	}
	if !v.Now().Equal(start.Add(5 * time.Second)) {
		t.Fatalf("clock now %v", v.Now())
	}
	if v.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestScheduleAtPastRunsNow(t *testing.T) {
	v := NewVirtual(time.Time{})
	v.Advance(time.Hour)
	var ran time.Time
	v.ScheduleAt(v.Now().Add(-time.Minute), func(now time.Time) { ran = now })
	v.Step()
	if !ran.Equal(v.Now()) {
		t.Fatalf("past event ran at %v, clock %v", ran, v.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	ran := 0
	for i := 1; i <= 10; i++ {
		v.Schedule(time.Duration(i)*time.Minute, func(time.Time) { ran++ })
	}
	n := v.RunUntil(start.Add(5 * time.Minute))
	if n != 5 || ran != 5 {
		t.Fatalf("RunUntil executed %d events (callbacks %d), want 5", n, ran)
	}
	if !v.Now().Equal(start.Add(5 * time.Minute)) {
		t.Fatalf("clock should rest at deadline, got %v", v.Now())
	}
	if v.Pending() != 5 {
		t.Fatalf("expected 5 events pending, got %d", v.Pending())
	}
}

func TestDrainWithCascadingEvents(t *testing.T) {
	v := NewVirtual(time.Time{})
	count := 0
	var spawn func(now time.Time)
	spawn = func(time.Time) {
		count++
		if count < 50 {
			v.Schedule(time.Second, spawn)
		}
	}
	v.Schedule(time.Second, spawn)
	n := v.Drain(0)
	if n != 50 || count != 50 {
		t.Fatalf("Drain ran %d events, callbacks %d, want 50", n, count)
	}
}

func TestDrainMaxEvents(t *testing.T) {
	v := NewVirtual(time.Time{})
	for i := 0; i < 10; i++ {
		v.Schedule(time.Second, func(time.Time) {})
	}
	if n := v.Drain(4); n != 4 {
		t.Fatalf("Drain(4) ran %d events", n)
	}
	if v.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", v.Pending())
	}
}
