// Package clock abstracts time so the detector, session tracker, policy
// engine, and key store can run identically against the wall clock (in the
// live proxy) and against a virtual clock (in the CoDeeN-scale simulator and
// in tests).
//
// The virtual clock also provides a simple discrete-event scheduler used by
// the workload driver to interleave thousands of agents without real
// sleeping.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time to time-dependent components.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// System is a shared wall-clock instance for convenience.
var System Clock = Real{}

// Virtual is a manually advanced clock with an embedded event queue. It is
// safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	events eventQueue
	seq    uint64
}

// NewVirtual returns a virtual clock starting at the given time. If start is
// the zero time, a fixed epoch (2005-01-01 UTC, the first month of the
// paper's Figure 3 timeline) is used so simulations have a stable calendar.
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = time.Date(2005, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d without running scheduled events.
// Negative durations are ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Set moves the clock to t if t is not before the current time.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// Event is a scheduled callback. The callback runs with the clock already
// advanced to the event's time.
type Event struct {
	At time.Time
	Fn func(now time.Time)

	seq   uint64
	index int
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At.Equal(q[j].At) {
		return q[i].seq < q[j].seq
	}
	return q[i].At.Before(q[j].At)
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Schedule registers fn to run when the clock reaches the current time plus
// delay (clamped to now for non-positive delays). Events scheduled for the
// same instant run in scheduling order.
func (v *Virtual) Schedule(delay time.Duration, fn func(now time.Time)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	at := v.now
	if delay > 0 {
		at = at.Add(delay)
	}
	v.seq++
	heap.Push(&v.events, &Event{At: at, Fn: fn, seq: v.seq})
}

// ScheduleAt registers fn to run when the clock reaches t. Times in the past
// run at the current time.
func (v *Virtual) ScheduleAt(t time.Time, fn func(now time.Time)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		t = v.now
	}
	v.seq++
	heap.Push(&v.events, &Event{At: t, Fn: fn, seq: v.seq})
}

// Pending returns the number of scheduled events that have not yet run.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.events)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if len(v.events) == 0 {
		v.mu.Unlock()
		return false
	}
	e := heap.Pop(&v.events).(*Event)
	if e.At.After(v.now) {
		v.now = e.At
	}
	now := v.now
	v.mu.Unlock()
	e.Fn(now)
	return true
}

// RunUntil executes events in order until the event queue is empty or the
// next event lies beyond deadline. The clock ends at deadline if it was
// reached, otherwise at the time of the last executed event. It returns the
// number of events executed.
func (v *Virtual) RunUntil(deadline time.Time) int {
	count := 0
	for {
		v.mu.Lock()
		if len(v.events) == 0 || v.events[0].At.After(deadline) {
			if deadline.After(v.now) {
				v.now = deadline
			}
			v.mu.Unlock()
			return count
		}
		e := heap.Pop(&v.events).(*Event)
		if e.At.After(v.now) {
			v.now = e.At
		}
		now := v.now
		v.mu.Unlock()
		e.Fn(now)
		count++
	}
}

// Drain executes events until the queue is empty or maxEvents have run
// (maxEvents <= 0 means no limit). It returns the number of events executed.
// Events may schedule further events; Drain keeps going until quiescence.
func (v *Virtual) Drain(maxEvents int) int {
	count := 0
	for {
		if maxEvents > 0 && count >= maxEvents {
			return count
		}
		if !v.Step() {
			return count
		}
		count++
	}
}
