package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternBasics(t *testing.T) {
	in := New(4)

	h1, c1 := in.Intern("Mozilla/5.0")
	if h1 == 0 || c1 != "Mozilla/5.0" {
		t.Fatalf("Intern = %v, %q", h1, c1)
	}
	h2, c2 := in.Intern("Mozilla/5.0")
	if h2 != h1 {
		t.Fatalf("second Intern handle = %v, want %v", h2, h1)
	}
	if &c1 == &c2 {
		t.Fatal("canonical strings should be the same backing value")
	}
	if got, ok := in.Lookup(h1); !ok || got != "Mozilla/5.0" {
		t.Fatalf("Lookup = %q, %v", got, ok)
	}

	st := in.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("Mozilla/5.0")) {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", hr)
	}

	// Two references: one Release keeps the entry live.
	in.Release(h1)
	if _, ok := in.Lookup(h2); !ok {
		t.Fatal("entry evicted while a reference remained")
	}
	in.Release(h2)
	if _, ok := in.Lookup(h1); ok {
		t.Fatal("entry survived its last Release")
	}
	if st := in.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("Stats after eviction = %+v", st)
	}
}

func TestInternEmptyAndZeroHandle(t *testing.T) {
	in := New(0)
	h, c := in.Intern("")
	if h != 0 || c != "" {
		t.Fatalf("Intern(\"\") = %v, %q", h, c)
	}
	// All zero-handle operations are no-ops.
	in.Retain(0)
	in.Release(0)
	if _, ok := in.Lookup(0); ok {
		t.Fatal("Lookup(0) returned live")
	}
}

func TestInternStaleHandleFailsValidation(t *testing.T) {
	in := New(1)
	h, _ := in.Intern("alpha")
	in.Release(h) // evicts: slot recycled, generation bumped

	h2, _ := in.Intern("beta") // likely reuses the slot
	if s, ok := in.Lookup(h); ok {
		t.Fatalf("stale handle resolved to %q", s)
	}
	in.Retain(h)   // must be a no-op on the stale generation
	in.Release(h)  // likewise
	if s, ok := in.Lookup(h2); !ok || s != "beta" {
		t.Fatalf("live handle broken by stale ops: %q, %v", s, ok)
	}
}

func TestInternRetain(t *testing.T) {
	in := New(2)
	h, _ := in.Intern("shared")
	in.Retain(h)
	in.Release(h)
	if _, ok := in.Lookup(h); !ok {
		t.Fatal("Retain did not add a reference")
	}
	in.Release(h)
	if _, ok := in.Lookup(h); ok {
		t.Fatal("entry should be evicted after balanced releases")
	}
}

func TestInternMemoryEstimateTracksLiveSet(t *testing.T) {
	in := New(4)
	var hs []Handle
	var want int64
	for i := 0; i < 100; i++ {
		s := fmt.Sprintf("/page/%03d.html", i)
		h, _ := in.Intern(s)
		hs = append(hs, h)
		want += int64(len(s))
	}
	if got := in.MemoryEstimate(); got != want+100*internEntryBytes {
		t.Fatalf("MemoryEstimate = %d, want %d", got, want+100*internEntryBytes)
	}
	for _, h := range hs {
		in.Release(h)
	}
	if got := in.MemoryEstimate(); got != 0 {
		t.Fatalf("MemoryEstimate after drain = %d, want 0", got)
	}
}

// TestInternHammer drives interleaved Intern/Retain/Release/Lookup cycles over
// a small shared working set from many goroutines; run under -race it is the
// memory-safety gate for the refcount protocol (CAS inc-if-positive vs
// eviction). The final balanced release must drain the table to empty.
func TestInternHammer(t *testing.T) {
	in := New(4)
	const goroutines = 16
	const rounds = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// 8 distinct strings: constant churn on shared entries.
				s := fmt.Sprintf("ua-%d", (g+i)%8)
				h, canon := in.Intern(s)
				if canon != s {
					t.Errorf("canonical mismatch: %q vs %q", canon, s)
					return
				}
				if i%3 == 0 {
					in.Retain(h)
					if got, ok := in.Lookup(h); !ok || got != s {
						t.Errorf("Lookup after Retain = %q, %v", got, ok)
						return
					}
					in.Release(h)
				}
				in.Release(h)
			}
		}(g)
	}
	wg.Wait()
	if st := in.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("table not drained after balanced churn: %+v", st)
	}
	if in.MemoryEstimate() != 0 {
		t.Fatalf("MemoryEstimate = %d after drain", in.MemoryEstimate())
	}
}

func TestInternAllocFreeFastPath(t *testing.T) {
	in := New(4)
	h, _ := in.Intern("Mozilla/5.0 (X11; Linux x86_64)")
	defer in.Release(h)
	avg := testing.AllocsPerRun(1000, func() {
		hh, _ := in.Intern("Mozilla/5.0 (X11; Linux x86_64)")
		in.Release(hh)
	})
	if avg != 0 {
		t.Fatalf("interner fast path allocates %.2f allocs/op, want 0", avg)
	}
}
