// Package intern implements a sharded, refcounted string interner. Real
// traffic concentrates on a few hundred User-Agent strings and a similarly
// small set of page paths, yet every tracked session and issued key used to
// carry its own copy. The interner collapses those copies to 8-byte handles:
// the first Intern of a string stores one canonical copy, later Interns of
// equal strings return the same handle and canonical string, and Release
// drops a reference — the canonical copy is evicted when the last holder
// releases it, so the table tracks the live working set, not history.
//
// The fast path (a string already interned) takes a shard read-lock, one map
// lookup and one compare-and-swap on the entry's reference count; it
// allocates nothing. Only the first Intern of a new string (or a
// resurrection racing an eviction) takes the shard write-lock.
package intern

import (
	"strings"
	"sync"
	"sync/atomic"

	"botdetect/internal/shard"
)

// Handle identifies one interned string. The zero Handle is "no string":
// Release and Lookup treat it as a no-op/miss, so zero-valued records are
// safe. A handle encodes shard, slot and a per-slot generation; a stale
// handle (its string already evicted and the slot reused) fails validation
// instead of resolving to the wrong string.
type Handle uint64

const (
	handleShardBits = 8
	handleGenBits   = 24
	handleSlotBits  = 32

	maxShards = 1 << handleShardBits
	genMask   = (1 << handleGenBits) - 1
	slotMask  = (1 << handleSlotBits) - 1
)

// makeHandle biases the slot by one so that no live handle ever encodes as
// the zero ("no string") Handle — shard 0 / generation 0 / slot 0 would
// otherwise collide with it.
func makeHandle(shardIdx int, gen uint32, slot uint32) Handle {
	return Handle(uint64(shardIdx)<<(handleGenBits+handleSlotBits) |
		uint64(gen&genMask)<<handleSlotBits |
		uint64(slot+1))
}

func (h Handle) shard() int   { return int(uint64(h) >> (handleGenBits + handleSlotBits)) }
func (h Handle) gen() uint32  { return uint32(uint64(h)>>handleSlotBits) & genMask }
func (h Handle) slot() uint32 { return uint32(uint64(h)&slotMask) - 1 }

// entry is one interned string. refs counts live handles; the CAS-based
// inc-if-positive in Intern means a reader can never resurrect an entry whose
// count a concurrent eviction already saw hit zero. gen advances on every
// eviction so stale handles fail validation.
type entry struct {
	s    string
	refs atomic.Int32
	gen  uint32
}

type internShard struct {
	mu      sync.RWMutex
	byStr   map[string]uint32 // canonical string -> slot
	entries []entry
	free    []uint32 // recycled slots
}

// Stats is a point-in-time summary of the interner.
type Stats struct {
	// Entries is the number of live interned strings.
	Entries int64
	// Bytes is the total length of live interned strings.
	Bytes int64
	// Hits and Misses count Intern calls that found / did not find the
	// string already interned.
	Hits   int64
	Misses int64
}

// HitRate returns Hits/(Hits+Misses), 0 when nothing was interned yet.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Interner is a sharded refcounted string table. It is safe for concurrent
// use. The zero value is not usable; call New.
type Interner struct {
	shards []internShard
	mask   uint64

	entries atomic.Int64
	bytes   atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64
}

// New creates an Interner with the given shard count (rounded up to a power
// of two, default 8, capped at 256 by the handle encoding).
func New(shards int) *Interner {
	if shards <= 0 {
		shards = 8
	}
	shards = shard.Normalize(shards)
	if shards > maxShards {
		shards = maxShards
	}
	in := &Interner{shards: make([]internShard, shards), mask: uint64(shards - 1)}
	for i := range in.shards {
		in.shards[i].byStr = make(map[string]uint32)
	}
	return in
}

// Intern returns a handle for s plus the canonical copy of s. The caller owns
// one reference, released with Release. The canonical string should replace
// the caller's copy of s, so equal strings across sessions share one backing
// array. Interning the empty string returns the zero Handle and "".
func (in *Interner) Intern(s string) (Handle, string) {
	if s == "" {
		return 0, ""
	}
	idx := int(shard.HashString(s) & in.mask)
	sh := &in.shards[idx]

	sh.mu.RLock()
	if slot, ok := sh.byStr[s]; ok {
		e := &sh.entries[slot]
		if incIfPositive(&e.refs) {
			h := makeHandle(idx, e.gen, slot)
			canon := e.s
			sh.mu.RUnlock()
			in.hits.Add(1)
			return h, canon
		}
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if slot, ok := sh.byStr[s]; ok {
		// Present (another goroutine interned it, or an eviction lost the
		// race to remove it): under the write lock a plain increment is safe.
		e := &sh.entries[slot]
		e.refs.Add(1)
		in.hits.Add(1)
		return makeHandle(idx, e.gen, slot), e.s
	}
	var slot uint32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		if len(sh.entries) >= slotMask {
			// Table exhausted (~4G strings per shard): serve the string
			// unshared rather than corrupting handles.
			return 0, strings.Clone(s)
		}
		sh.entries = append(sh.entries, entry{})
		slot = uint32(len(sh.entries) - 1)
	}
	e := &sh.entries[slot]
	e.s = strings.Clone(s) // do not pin the caller's (possibly huge) backing array
	e.refs.Store(1)
	sh.byStr[e.s] = slot
	in.misses.Add(1)
	in.entries.Add(1)
	in.bytes.Add(int64(len(e.s)))
	return makeHandle(idx, e.gen, slot), e.s
}

// incIfPositive increments refs only if it is currently positive, so a
// resurrection can never race an eviction that already observed zero.
func incIfPositive(refs *atomic.Int32) bool {
	for {
		r := refs.Load()
		if r <= 0 {
			return false
		}
		if refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Retain adds one reference to an already held handle (for callers storing
// the same handle in several records). It is a no-op on the zero Handle and
// on stale handles.
func (in *Interner) Retain(h Handle) {
	if h == 0 {
		return
	}
	sh := &in.shards[h.shard()&int(in.mask)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	slot := h.slot()
	if int(slot) >= len(sh.entries) {
		return
	}
	e := &sh.entries[slot]
	if e.gen != h.gen() {
		return
	}
	incIfPositive(&e.refs)
}

// Release drops one reference. When the count reaches zero the canonical
// string is evicted and the slot recycled (its generation advances, so any
// leaked handle to it becomes invalid rather than dangling). Release of the
// zero Handle or a stale handle is a no-op.
func (in *Interner) Release(h Handle) {
	if h == 0 {
		return
	}
	sh := &in.shards[h.shard()&int(in.mask)]
	sh.mu.RLock()
	slot := h.slot()
	if int(slot) >= len(sh.entries) {
		sh.mu.RUnlock()
		return
	}
	e := &sh.entries[slot]
	if e.gen != h.gen() {
		sh.mu.RUnlock()
		return
	}
	zero := e.refs.Add(-1) == 0
	sh.mu.RUnlock()
	if !zero {
		return
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	e = &sh.entries[slot]
	// Recheck under the write lock: a concurrent Intern may have taken the
	// write-lock path and revived the entry (plain Add on a zero count).
	if e.gen != h.gen() || e.refs.Load() != 0 {
		return
	}
	delete(sh.byStr, e.s)
	in.entries.Add(-1)
	in.bytes.Add(-int64(len(e.s)))
	e.s = ""
	e.gen = (e.gen + 1) & genMask
	sh.free = append(sh.free, slot)
}

// Lookup resolves a handle to its canonical string, reporting whether the
// handle is live. Diagnostics only — the canonical string is already in the
// caller's hands from Intern on every hot path.
func (in *Interner) Lookup(h Handle) (string, bool) {
	if h == 0 {
		return "", false
	}
	sh := &in.shards[h.shard()&int(in.mask)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	slot := h.slot()
	if int(slot) >= len(sh.entries) {
		return "", false
	}
	e := &sh.entries[slot]
	if e.gen != h.gen() || e.refs.Load() <= 0 {
		return "", false
	}
	return e.s, true
}

// Stats returns a point-in-time summary (lock-free).
func (in *Interner) Stats() Stats {
	return Stats{
		Entries: in.entries.Load(),
		Bytes:   in.bytes.Load(),
		Hits:    in.hits.Load(),
		Misses:  in.misses.Load(),
	}
}

// internEntryBytes is the approximate per-entry overhead beyond the string
// bytes themselves: the entry struct, its share of the byStr map and the
// entries/free slices.
const internEntryBytes = 96

// MemoryEstimate returns the interner's approximate live footprint in bytes
// (canonical string bytes plus per-entry overhead). Lock-free.
func (in *Interner) MemoryEstimate() int64 {
	return in.bytes.Load() + in.entries.Load()*internEntryBytes
}
