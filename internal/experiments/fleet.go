package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/agents"
	"botdetect/internal/cdn"
	"botdetect/internal/chaos"
	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

// FleetConfig sizes the distributed control-plane run. The zero value gives a
// 3-node fleet facing a coordinated crawler that stays under every isolated
// engine's decision threshold.
type FleetConfig struct {
	// Nodes is the fleet size (default 3).
	Nodes int
	// Crawlers is the number of coordinated crawler identities (default 24).
	Crawlers int
	// RequestsPerNode is how many requests each crawler sends to EACH node —
	// kept below the engine's MinRequests decision floor so a single isolated
	// engine can never classify the session (default 9, floor is 10).
	RequestsPerNode int
	// BogusShare is the fraction of crawler requests aimed at nonexistent
	// paths; the resulting 404s push the aggregated session over the policy's
	// error-share block threshold (default 0.4, threshold is 0.3).
	BogusShare float64
	// Humans is the number of genuine browsing clients mixed into the run;
	// none of them may ever be refused (default 12).
	Humans int
	// Seed drives client identities and the bogus-path mix.
	Seed uint64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Crawlers <= 0 {
		c.Crawlers = 24
	}
	if c.RequestsPerNode <= 0 {
		c.RequestsPerNode = 9
	}
	if c.BogusShare <= 0 {
		c.BogusShare = 0.4
	}
	if c.Humans <= 0 {
		c.Humans = 12
	}
	if c.Seed == 0 {
		c.Seed = 2006
	}
	return c
}

// FleetResult is the distributed control-plane report. The same coordinated
// crawler workload runs twice — once against isolated per-node engines, once
// against the replicated fleet — and the fleet arm additionally survives a
// node kill mid-run, an asymmetric partition, and a fleet-wide model publish.
type FleetResult struct {
	Nodes           int   `json:"nodes"`
	Crawlers        int   `json:"crawlers"`
	RequestsPerNode int   `json:"crawler_requests_per_node"`
	CrawlerRequests int64 `json:"crawler_requests"`
	HumanRequests   int64 `json:"human_requests"`

	// Headline: the same crawler fleet against isolated engines vs the
	// replicated fleet.
	IsolatedRobotVerdicts   int   `json:"isolated_robot_verdicts"`
	IsolatedCrawlersBlocked int   `json:"isolated_crawlers_blocked"`
	FleetRobotVerdicts      int   `json:"fleet_robot_verdicts"`
	FleetCrawlersBlocked    int   `json:"fleet_crawlers_blocked"`
	HumansBlocked           int64 `json:"humans_blocked"`
	FailoverDegraded        int64 `json:"failover_degraded_serves"`

	// Node kill mid-run: every epoch the victim had acked before the crash
	// must survive on the peers (loss is bounded by the ack watermark), and a
	// restarted node backfills its wiped stores by anti-entropy.
	KilledNode              string  `json:"killed_node"`
	AckedEpochAtKill        uint64  `json:"acked_epoch_at_kill"`
	VerdictsLostBeyondBound uint64  `json:"verdicts_lost_beyond_bound"`
	BlockedOnRestartedNode  int     `json:"blocked_on_restarted_node"`
	BackfillSec             float64 `json:"backfill_sec"`

	// Partition: the minority side degrades to isolated-engine mode, both
	// sides keep publishing, and healing converges every replica.
	MinorityIsolated     bool    `json:"minority_isolated_during_partition"`
	PartitionCutMessages int64   `json:"partition_cut_messages"`
	PartitionConvergeSec float64 `json:"partition_converge_sec"`

	// Single-trainer model publication.
	ModelPublished bool `json:"model_published_fleet_wide"`

	// Replication lag percentiles (worst node).
	ReplicationLagP50Ms float64 `json:"replication_lag_p50_ms"`
	ReplicationLagP99Ms float64 `json:"replication_lag_p99_ms"`

	// Publish-path contention bench: concurrent goroutines driving
	// PublishVerdict/PublishBlock on one replicator.
	PublishGoroutines int     `json:"publish_goroutines"`
	PublishOps        int     `json:"publish_ops"`
	PublishNsPerOp    float64 `json:"publish_ns_per_op"`

	DurationSec float64 `json:"duration_sec"`
}

// fleetArmCounts aggregates one traffic arm's request outcomes.
type fleetArmCounts struct {
	crawlerReqs atomic.Int64
	humanReqs   atomic.Int64
	human403    atomic.Int64
}

// crawlerKey returns the i-th coordinated crawler's identity.
func crawlerKey(i int) session.Key {
	return session.Key{
		IP:        "10.80." + strconv.Itoa(i/200) + "." + strconv.Itoa(1+i%200),
		UserAgent: "SpreadCrawler/" + strconv.Itoa(i),
	}
}

// humanKey returns the h-th genuine client's identity.
func humanKey(h int) session.Key {
	return session.Key{
		IP:        "10.90.0." + strconv.Itoa(1+h),
		UserAgent: "Mozilla/5.0 (human " + strconv.Itoa(h) + ")",
	}
}

// driveFleetTraffic replays the coordinated-crawler-plus-humans workload:
// every crawler addresses each node DIRECTLY (the botnet picks its open
// proxies; it does not go through client routing), keeping its per-node
// request count below the decision floor, while humans browse through normal
// routing with a CAPTCHA pass up front. Identical traffic runs against both
// arms — only the control plane differs.
func driveFleetTraffic(net *cdn.Network, vc *clock.Virtual, cfg FleetConfig, site *webmodel.Site, counts *fleetArmCounts) {
	pages := site.Pages()
	// Spread the bogus requests evenly so every crawler lands on exactly
	// BogusShare across its aggregated request stream (a random mix would let
	// unlucky crawlers dip under the policy's error-share threshold).
	bogusPer10 := int(cfg.BogusShare*10 + 0.5)

	for h := 0; h < cfg.Humans; h++ {
		k := humanKey(h)
		resp := net.Do(agents.Request{Time: vc.Now(), IP: k.IP, UserAgent: k.UserAgent, Method: "GET", Path: agents.CaptchaSolvePath})
		counts.humanReqs.Add(1)
		if resp.Status == 403 {
			counts.human403.Add(1)
		}
	}
	for r := 0; r < cfg.RequestsPerNode; r++ {
		for h := 0; h < cfg.Humans; h++ {
			k := humanKey(h)
			path := pages[(r*7+h)%len(pages)].Path
			resp := net.Do(agents.Request{Time: vc.Now(), IP: k.IP, UserAgent: k.UserAgent, Method: "GET", Path: path})
			counts.humanReqs.Add(1)
			if resp.Status == 403 {
				counts.human403.Add(1)
			}
		}
		for c := 0; c < cfg.Crawlers; c++ {
			k := crawlerKey(c)
			for ni, nd := range net.Nodes() {
				seq := r*len(net.Nodes()) + ni // position in this crawler's aggregated stream
				var path string
				if (seq*7)%10 < bogusPer10 {
					path = "/archive/" + strconv.Itoa(c) + "/" + strconv.Itoa(r) + "/missing.html"
				} else {
					path = pages[(c+r)%len(pages)].Path
				}
				resp := nd.Do(agents.Request{Time: vc.Now(), IP: k.IP, UserAgent: k.UserAgent, Method: "GET", Path: path})
				counts.crawlerReqs.Add(1)
				_ = resp
			}
		}
		// A whole second of model time between rounds: per isolated node each
		// crawler runs at 1 req/s — below every rate threshold too.
		vc.Advance(time.Second)
	}
}

// crawlerRobotVerdicts counts crawlers holding a robot verdict anywhere —
// in the replicated verdict store (Definite verdicts travel the fleet) or on
// any engine's own classification chain (the partition owner's aggregated
// session is what crosses the decision floor in fleet mode).
func crawlerRobotVerdicts(net *cdn.Network, cfg FleetConfig) int {
	n := 0
	for c := 0; c < cfg.Crawlers; c++ {
		k := crawlerKey(c)
		found := false
		for _, nd := range net.Nodes() {
			if nd.Down() {
				continue
			}
			if rep := nd.Replicator(); rep != nil {
				if vr, ok := rep.VerdictFor(k); ok && vr.Verdict.Class == detect.ClassRobot {
					found = true
				}
			}
			if !found {
				if snap, verdict, tracked := nd.Engine().Decide(k); tracked {
					if verdict.Class == detect.ClassRobot {
						found = true
					}
					snap.Release()
				}
			}
			if found {
				break
			}
		}
		if found {
			n++
		}
	}
	return n
}

// crawlersBlocked counts crawlers refused on every live node (everywhere) or
// on at least one (anywhere).
func crawlersBlocked(net *cdn.Network, cfg FleetConfig, everywhere bool) int {
	n := 0
	for c := 0; c < cfg.Crawlers; c++ {
		k := crawlerKey(c)
		blockedAll, blockedAny := true, false
		for _, nd := range net.Nodes() {
			if nd.Down() || nd.Policy() == nil {
				blockedAll = false
				continue
			}
			if nd.Policy().IsBlocked(k) {
				blockedAny = true
			} else {
				blockedAll = false
			}
		}
		if (everywhere && blockedAll) || (!everywhere && blockedAny) {
			n++
		}
	}
	return n
}

// fleetConverged reports whether every live replicator holds an identical
// verdict/block digest.
func fleetConverged(net *cdn.Network) bool {
	var d0 uint64
	first := true
	for _, nd := range net.Nodes() {
		if nd.Down() {
			return false
		}
		dg := nd.Replicator().Digest()
		if first {
			d0, first = dg, false
		} else if dg != d0 {
			return false
		}
	}
	return true
}

// FleetBench runs the distributed control-plane experiment: the coordinated
// crawler evades N isolated engines but is blocked fleet-wide once verdict
// and block-list replication aggregate its evidence at the session's
// partition owner; a node kill, an asymmetric partition and a model publish
// then exercise the failure modes the replication layer exists for.
func FleetBench(cfg FleetConfig) FleetResult {
	cfg = cfg.withDefaults()
	start := time.Now()
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 11, NumPages: 24})
	out := FleetResult{Nodes: cfg.Nodes, Crawlers: cfg.Crawlers, RequestsPerNode: cfg.RequestsPerNode}

	// Arm 1: isolated engines. Every node classifies alone; each sees only
	// 1/Nodes of any crawler's requests and never reaches its decision floor.
	{
		vc := clock.NewVirtual(time.Time{})
		net := cdn.NewNetwork(cfg.Nodes, site, core.Config{Seed: cfg.Seed, Clock: vc}, true, cfg.Seed)
		var counts fleetArmCounts
		driveFleetTraffic(net, vc, cfg, site, &counts)
		out.IsolatedRobotVerdicts = crawlerRobotVerdicts(net, cfg)
		out.IsolatedCrawlersBlocked = crawlersBlocked(net, cfg, false)
	}

	// Arm 2: the replicated fleet, with message-layer fault injection armed.
	links := chaos.NewLinks()
	vc := clock.NewVirtual(time.Time{})
	net := cdn.NewNetwork(cfg.Nodes, site, core.Config{Seed: cfg.Seed, Clock: vc}, true, cfg.Seed)
	net.EnableReplication(cdn.FleetConfig{
		Intercept:           links.Intercept,
		HeartbeatInterval:   5 * time.Millisecond,
		AntiEntropyInterval: 10 * time.Millisecond,
		RetryBackoff:        time.Millisecond,
		MaxBackoff:          10 * time.Millisecond,
		SendPatience:        100 * time.Millisecond,
		Seed:                cfg.Seed,
	})
	defer net.StopReplication()
	waitUntil(5*time.Second, func() bool {
		for _, nd := range net.Nodes() {
			if nd.Replicator().UpPeers() != cfg.Nodes-1 {
				return false
			}
		}
		return true
	})

	var counts fleetArmCounts
	driveFleetTraffic(net, vc, cfg, site, &counts)
	out.CrawlerRequests = counts.crawlerReqs.Load()

	// Replication is asynchronous to the serve path: give the forwarded
	// observations, ladder escalations and block broadcasts time to drain.
	waitUntil(20*time.Second, func() bool {
		return crawlersBlocked(net, cfg, true) == cfg.Crawlers
	})
	out.FleetRobotVerdicts = crawlerRobotVerdicts(net, cfg)
	out.FleetCrawlersBlocked = crawlersBlocked(net, cfg, true)

	// Replication lag percentiles over the flood (collected now, before the
	// kill/partition phases: anti-entropy backfill deliberately re-applies old
	// entries, which would read as huge lag).
	for _, nd := range net.Nodes() {
		if p50, ok := nd.Replicator().LagQuantile(0.50); ok {
			if ms := float64(p50.Nanoseconds()) / 1e6; ms > out.ReplicationLagP50Ms {
				out.ReplicationLagP50Ms = ms
			}
		}
		if p99, ok := nd.Replicator().LagQuantile(0.99); ok {
			if ms := float64(p99.Nanoseconds()) / 1e6; ms > out.ReplicationLagP99Ms {
				out.ReplicationLagP99Ms = ms
			}
		}
	}

	// Node kill mid-run. Everything the victim's peers acknowledged must
	// survive the crash; the wiped node backfills by anti-entropy after
	// restarting under a new incarnation.
	victim := net.Nodes()[cfg.Nodes-1]
	vrep := victim.Replicator()
	waitUntil(5*time.Second, func() bool { return vrep.MinAckedEpoch() > 0 })
	minAcked := vrep.MinAckedEpoch()
	out.KilledNode = victim.Name()
	out.AckedEpochAtKill = minAcked
	victim.Crash()
	for _, nd := range net.Nodes() {
		if nd == victim {
			continue
		}
		if wm := nd.Replicator().Watermark(victim.Name()); wm < minAcked {
			out.VerdictsLostBeyondBound += minAcked - wm
		}
	}
	// Humans keep browsing while the node is dead: routing fails them over to
	// their partition's replica, which serves immediately (degraded).
	for r := 0; r < 3; r++ {
		for h := 0; h < cfg.Humans; h++ {
			k := humanKey(h)
			resp := net.Do(agents.Request{Time: vc.Now(), IP: k.IP, UserAgent: k.UserAgent, Method: "GET", Path: site.Pages()[(r+h)%len(site.Pages())].Path})
			counts.humanReqs.Add(1)
			if resp.Status == 403 {
				counts.human403.Add(1)
			}
		}
		vc.Advance(time.Second)
	}
	restartAt := time.Now()
	victim.Restart()
	waitUntil(20*time.Second, func() bool { return fleetConverged(net) })
	out.BackfillSec = time.Since(restartAt).Seconds()
	out.BlockedOnRestartedNode = func() int {
		n := 0
		for c := 0; c < cfg.Crawlers; c++ {
			if victim.Policy().IsBlocked(crawlerKey(c)) {
				n++
			}
		}
		return n
	}()

	// Asymmetric partition: the first node is cut off from the rest, degrades
	// to isolated-engine mode (quorum loss), both sides keep deriving
	// verdicts, and healing converges every replica — anti-entropy repairs
	// whatever the outboxes gave up on while the links were dark.
	minority := net.Nodes()[0]
	rest := make([]string, 0, cfg.Nodes-1)
	for _, nd := range net.Nodes()[1:] {
		rest = append(rest, nd.Name())
	}
	links.Partition([]string{minority.Name()}, rest)
	waitUntil(10*time.Second, func() bool { return minority.Replicator().Isolated() })
	out.MinorityIsolated = minority.Replicator().Isolated()
	minority.Replicator().PublishVerdict(
		session.Key{IP: "10.91.0.1", UserAgent: "minority-side"},
		detect.Verdict{Class: detect.ClassHuman, Confidence: detect.Definite, Reason: "captcha"})
	net.Nodes()[1].Replicator().PublishVerdict(
		session.Key{IP: "10.91.0.2", UserAgent: "majority-side"},
		detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "crawl"})
	time.Sleep(50 * time.Millisecond)
	healAt := time.Now()
	links.Heal()
	waitUntil(20*time.Second, func() bool {
		if !fleetConverged(net) {
			return false
		}
		for _, nd := range net.Nodes() {
			if _, ok := nd.Replicator().VerdictFor(session.Key{IP: "10.91.0.1", UserAgent: "minority-side"}); !ok {
				return false
			}
			if _, ok := nd.Replicator().VerdictFor(session.Key{IP: "10.91.0.2", UserAgent: "majority-side"}); !ok {
				return false
			}
		}
		return true
	})
	out.PartitionConvergeSec = time.Since(healAt).Seconds()
	out.PartitionCutMessages = links.Stats().Cut

	// Single-trainer model publication: one SetModel reaches every engine.
	m := &adaboost.Model{TrainingError: 0.0625}
	net.SetModel(m)
	out.ModelPublished = waitUntil(5*time.Second, func() bool {
		for _, nd := range net.Nodes() {
			got := nd.Engine().Model()
			if got == nil || got.TrainingError != m.TrainingError {
				return false
			}
			if _, seq := nd.Replicator().Model(); seq == 0 {
				return false
			}
		}
		return true
	})

	// Publish-path contention: concurrent goroutines hammering one
	// replicator's verdict/block publish paths (the paths every serve-path
	// export hook rides).
	g := runtime.GOMAXPROCS(0)
	if g > 8 {
		g = 8
	}
	if g < 2 {
		g = 2
	}
	const perG = 1024
	rep0 := net.Nodes()[0].Replicator()
	until := vc.Now().Add(time.Hour)
	benchStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := session.Key{
					IP:        "10.99." + strconv.Itoa(w) + "." + strconv.Itoa(i%250),
					UserAgent: "bench/" + strconv.Itoa(w) + "/" + strconv.Itoa(i),
				}
				if i%2 == 0 {
					rep0.PublishVerdict(k, detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "bench"})
				} else {
					rep0.PublishBlock(k, until)
				}
			}
		}(w)
	}
	wg.Wait()
	benchElapsed := time.Since(benchStart)
	out.PublishGoroutines = g
	out.PublishOps = g * perG
	out.PublishNsPerOp = float64(benchElapsed.Nanoseconds()) / float64(out.PublishOps)

	out.HumanRequests = counts.humanReqs.Load()
	out.HumansBlocked = counts.human403.Load()
	for _, nd := range net.Nodes() {
		out.FailoverDegraded += nd.Stats().FailoverDegraded
	}
	out.DurationSec = time.Since(start).Seconds()
	return out
}

// JSON renders the result as indented JSON (the BENCH_fleet.json artifact).
func (r FleetResult) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// Format renders the result as text.
func (r FleetResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Fault-tolerant fleet (replicated verdict/block-list control plane)\n")
	fmt.Fprintf(&sb, "  crawler:               %d identities x %d req/node across %d nodes (%d requests)\n",
		r.Crawlers, r.RequestsPerNode, r.Nodes, r.CrawlerRequests)
	fmt.Fprintf(&sb, "  isolated engines:      %d robot verdicts, %d crawlers blocked (crawler evades)\n",
		r.IsolatedRobotVerdicts, r.IsolatedCrawlersBlocked)
	fmt.Fprintf(&sb, "  replicated fleet:      %d robot verdicts, %d/%d crawlers blocked on every node\n",
		r.FleetRobotVerdicts, r.FleetCrawlersBlocked, r.Crawlers)
	fmt.Fprintf(&sb, "  humans:                %d requests, %d refused (failover-degraded serves: %d)\n",
		r.HumanRequests, r.HumansBlocked, r.FailoverDegraded)
	fmt.Fprintf(&sb, "  node kill:             %s at acked epoch %d, %d verdicts lost beyond bound; restart backfilled in %.2fs, %d blocks restored\n",
		r.KilledNode, r.AckedEpochAtKill, r.VerdictsLostBeyondBound, r.BackfillSec, r.BlockedOnRestartedNode)
	fmt.Fprintf(&sb, "  partition:             minority isolated=%v, %d messages cut, converged %.2fs after heal\n",
		r.MinorityIsolated, r.PartitionCutMessages, r.PartitionConvergeSec)
	fmt.Fprintf(&sb, "  model publication:     fleet-wide=%v\n", r.ModelPublished)
	fmt.Fprintf(&sb, "  replication lag:       p50 %.2fms p99 %.2fms (worst node)\n",
		r.ReplicationLagP50Ms, r.ReplicationLagP99Ms)
	fmt.Fprintf(&sb, "  publish contention:    %d goroutines x %d ops, %.0f ns/op\n",
		r.PublishGoroutines, r.PublishOps/max(r.PublishGoroutines, 1), r.PublishNsPerOp)
	fmt.Fprintf(&sb, "  duration:              %.1fs\n", r.DurationSec)
	return sb.String()
}
