package experiments

import (
	"fmt"
	"strings"

	"botdetect/internal/cdn"
	"botdetect/internal/core"
	"botdetect/internal/metrics"
	"botdetect/internal/rng"
	"botdetect/internal/workload"
)

// Figure3Result is the regenerated operational timeline: monthly abuse
// complaints before and after the detector (plus aggressive rate limiting)
// is deployed on the simulated CDN.
type Figure3Result struct {
	// Months labels the x axis (Jan 2005 .. Jan 2006).
	Months []string
	// Complaints holds robot- and human-attributed complaints per month.
	Complaints []cdn.MonthlyComplaints
	// MeasuredBlockedFraction is the fraction of robot requests the policy
	// engine blocked or throttled in the calibration run; it feeds the
	// post-deployment complaint volume.
	MeasuredBlockedFraction float64
	// PeakBeforeDeployment and TotalRobotAfterDeployment summarise the curve.
	PeakBeforeDeployment      int
	TotalRobotAfterDeployment int
	// ReductionFactor is peak-month complaints divided by the mean monthly
	// robot complaints after deployment (the paper reports roughly 10x).
	ReductionFactor float64
	// DeploymentMonthIndex is when the browser-test detector went live
	// (late August 2005 = index 8 in the timeline).
	DeploymentMonthIndex int
}

// Figure3 regenerates the complaint timeline. The robot-blocking
// effectiveness is not assumed: it is measured by running the same robot mix
// through the simulator with enforcement enabled and counting how much robot
// traffic still gets through.
func Figure3(scale Scale) Figure3Result {
	scale = scale.withDefaults()

	// Calibration: how much abusive robot traffic does the deployment
	// suppress? Run a robot-only workload and measure, per robot session,
	// the share of its requests issued after the detector had classified it
	// (those are the requests the post-classification rate limiting and
	// blocking of Section 3.2 suppress).
	calibSessions := scale.Sessions / 4
	if calibSessions < 40 {
		calibSessions = 40
	}
	calib := workload.Run(workload.Config{
		Sessions: calibSessions, Seed: scale.Seed ^ 0xf3a, Mix: workload.RobotOnlyMix(),
		RobotRequests: 80,
	})
	var totalRobotReqs, suppressedReqs float64
	for _, s := range calib.Sessions {
		if s.IsHuman() {
			continue
		}
		totalRobotReqs += float64(s.Snapshot.Counts.Total)
		if s.Verdict.Class == core.ClassRobot && int64(s.Snapshot.Counts.Total) > s.Verdict.AtRequest {
			suppressedReqs += float64(int64(s.Snapshot.Counts.Total) - s.Verdict.AtRequest)
		}
	}
	blockedFraction := 0.0
	if totalRobotReqs > 0 {
		blockedFraction = suppressedReqs / totalRobotReqs
	}

	const deploymentMonth = 8 // late August 2005
	const mouseMonth = 12     // January 2006
	volumes := cdn.DeploymentTimeline(100, 300, 1, deploymentMonth, mouseMonth,
		2.0e6, 0.6, blockedFraction, 0.5)
	model := cdn.ComplaintModel{
		RequestsPerComplaint: 7.5e7,
		BaselineHuman:        0.8,
		Src:                  rng.New(scale.Seed ^ 0x2005),
	}
	complaints := model.Complaints(cdn.Months2005, volumes)

	out := Figure3Result{
		Months:                  cdn.Months2005,
		Complaints:              complaints,
		MeasuredBlockedFraction: blockedFraction,
		DeploymentMonthIndex:    deploymentMonth,
	}
	for i, m := range complaints {
		if i < deploymentMonth && m.Robot > out.PeakBeforeDeployment {
			out.PeakBeforeDeployment = m.Robot
		}
		if i >= deploymentMonth+1 {
			out.TotalRobotAfterDeployment += m.Robot
		}
	}
	monthsAfter := len(complaints) - (deploymentMonth + 1)
	if monthsAfter > 0 && out.TotalRobotAfterDeployment >= 0 {
		meanAfter := float64(out.TotalRobotAfterDeployment) / float64(monthsAfter)
		if meanAfter > 0 {
			out.ReductionFactor = float64(out.PeakBeforeDeployment) / meanAfter
		} else {
			out.ReductionFactor = float64(out.PeakBeforeDeployment)
		}
	}
	return out
}

// Format renders the result as text.
func (r Figure3Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — CoDeeN abuse complaints per month (simulated 2005 timeline)\n")
	fmt.Fprintf(&sb, "  measured robot traffic blocked/throttled after deployment: %s%%\n", metrics.Pct(r.MeasuredBlockedFraction))
	t := metrics.NewTable("", "Month", "Robot complaints", "Human complaints", "Total")
	for i, m := range r.Complaints {
		marker := ""
		if i == r.DeploymentMonthIndex {
			marker = " <- detector deployed"
		}
		t.AddRow(m.Month, fmt.Sprintf("%d", m.Robot), fmt.Sprintf("%d", m.Human), fmt.Sprintf("%d%s", m.Total(), marker))
	}
	sb.WriteString(t.Format())
	fmt.Fprintf(&sb, "Peak robot complaints before deployment: %d\n", r.PeakBeforeDeployment)
	fmt.Fprintf(&sb, "Robot complaints after deployment (total %d months): %d\n",
		len(r.Complaints)-(r.DeploymentMonthIndex+1), r.TotalRobotAfterDeployment)
	fmt.Fprintf(&sb, "Reduction factor (peak / mean after): %.1fx (paper ~10x)\n", r.ReductionFactor)
	return sb.String()
}

// ShapeHolds reports whether the qualitative Figure 3 claim holds: complaints
// rise to a mid-year peak after the network expansion and drop by a large
// factor once the detector and rate limiting are deployed.
func (r Figure3Result) ShapeHolds() bool {
	return r.PeakBeforeDeployment >= 3 && r.ReductionFactor >= 3
}
