package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestServeBenchSmall drives a scaled-down saturation run over a real
// localhost listener and checks the report is internally consistent: every
// client session produced at least one instrumented page, latency quantiles
// are ordered, and the JSON artifact round-trips.
func TestServeBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP saturation run")
	}
	res := ServeBench(ServeConfig{Clients: 300, Workers: 8, Seed: 7})
	if res.Requests < int64(res.Clients) {
		t.Fatalf("requests = %d, want >= %d (every client views at least one page)",
			res.Requests, res.Clients)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0", res.Errors)
	}
	if res.PagesServed != res.Requests {
		t.Fatalf("pages instrumented = %d, requests = %d; every page view should be instrumented",
			res.PagesServed, res.Requests)
	}
	if res.LiveSessions != res.Clients {
		t.Fatalf("live sessions = %d, want %d distinct clients", res.LiveSessions, res.Clients)
	}
	if !(res.P50LatencyUs <= res.P90LatencyUs && res.P90LatencyUs <= res.P99LatencyUs) {
		t.Fatalf("latency quantiles out of order: p50=%.0f p90=%.0f p99=%.0f",
			res.P50LatencyUs, res.P90LatencyUs, res.P99LatencyUs)
	}
	if res.RequestsPerSec <= 0 {
		t.Fatalf("req/s = %f", res.RequestsPerSec)
	}

	var back ServeResult
	if err := json.Unmarshal(res.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back != res {
		t.Fatalf("JSON round-trip changed the result:\n%+v\nvs\n%+v", back, res)
	}
	if !strings.Contains(res.Format(), "distinct clients") {
		t.Fatalf("Format missing header:\n%s", res.Format())
	}
}

// TestLatHistQuantiles checks the log-linear histogram against exact
// order-statistics on a known distribution: every bucketed quantile must be
// within the histogram's documented ~3% relative error.
func TestLatHistQuantiles(t *testing.T) {
	var h latHist
	// 1..100000 ns, uniform: exact q-th quantile is q*100000.
	for ns := int64(1); ns <= 100000; ns++ {
		h.record(ns)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exactUs := q * 100000 / 1e3
		got := h.quantile(q)
		if rel := (got - exactUs) / exactUs; rel < -0.04 || rel > 0.04 {
			t.Fatalf("q%.2f = %.3fus, exact %.3fus (rel err %.3f)", q, got, exactUs, rel)
		}
	}
	if h.quantile(0) <= 0 {
		t.Fatalf("q0 = %v, want > 0", h.quantile(0))
	}
}

// TestLatHistBucketsRoundTrip pins the bucket layout: bucketing any value and
// taking the bucket midpoint must stay within one sub-bucket width.
func TestLatHistBucketsRoundTrip(t *testing.T) {
	for _, ns := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345, 1 << 20, 1 << 40} {
		b := latBucket(ns)
		mid := latBucketMid(b)
		width := float64(ns) / latSubBuckets
		if width < 1 {
			width = 1
		}
		if diff := mid - float64(ns); diff < -width || diff > width {
			t.Fatalf("ns=%d bucket=%d mid=%.1f (off by %.1f, width %.1f)", ns, b, mid, diff, width)
		}
	}
}
