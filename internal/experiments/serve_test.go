package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestServeBenchSmall drives a scaled-down saturation run over a real
// localhost listener and checks the report is internally consistent: every
// client session produced at least one instrumented page, latency quantiles
// are ordered, and the JSON artifact round-trips.
func TestServeBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("live HTTP saturation run")
	}
	res := ServeBench(ServeConfig{Clients: 300, Workers: 8, Seed: 7})
	if res.Requests < int64(res.Clients) {
		t.Fatalf("requests = %d, want >= %d (every client views at least one page)",
			res.Requests, res.Clients)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0", res.Errors)
	}
	if res.PagesServed != res.Requests {
		t.Fatalf("pages instrumented = %d, requests = %d; every page view should be instrumented",
			res.PagesServed, res.Requests)
	}
	if res.LiveSessions != res.Clients {
		t.Fatalf("live sessions = %d, want %d distinct clients", res.LiveSessions, res.Clients)
	}
	if !(res.P50LatencyUs <= res.P90LatencyUs && res.P90LatencyUs <= res.P99LatencyUs) {
		t.Fatalf("latency quantiles out of order: p50=%.0f p90=%.0f p99=%.0f",
			res.P50LatencyUs, res.P90LatencyUs, res.P99LatencyUs)
	}
	if res.RequestsPerSec <= 0 {
		t.Fatalf("req/s = %f", res.RequestsPerSec)
	}

	var back ServeResult
	if err := json.Unmarshal(res.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back != res {
		t.Fatalf("JSON round-trip changed the result:\n%+v\nvs\n%+v", back, res)
	}
	if !strings.Contains(res.Format(), "distinct clients") {
		t.Fatalf("Format missing header:\n%s", res.Format())
	}
}
