package experiments

import (
	"strings"
	"testing"
)

// Small scales keep the experiment tests fast while still exercising every
// code path; the benchmarks and cmd/botbench run the full default scale.
func smallScale() Scale { return Scale{Sessions: 150, Seed: 7} }

func TestTable1ShapeAndFormat(t *testing.T) {
	r := Table1(smallScale())
	if r.TotalSessions < 40 {
		t.Fatalf("too few sessions: %d", r.TotalSessions)
	}
	// Shape checks: CSS share exceeds mouse share (some CSS fetchers are not
	// humans with input events), bounds are ordered, FPR bound is small.
	if r.Breakdown.CSSFraction() < r.Breakdown.MouseFraction() {
		t.Errorf("CSS share (%f) below mouse share (%f)", r.Breakdown.CSSFraction(), r.Breakdown.MouseFraction())
	}
	if r.UpperBound < r.LowerBound {
		t.Errorf("upper bound %f below lower bound %f", r.UpperBound, r.LowerBound)
	}
	if r.MaxFPR > 0.15 {
		t.Errorf("max FPR bound = %f", r.MaxFPR)
	}
	if r.TrueFPR > 0.08 {
		t.Errorf("true FPR = %f", r.TrueFPR)
	}
	// The measured human share must sit between (or near) the bounds.
	if r.TrueHumanShare < r.LowerBound-0.10 || r.TrueHumanShare > r.UpperBound+0.10 {
		t.Errorf("ground-truth human share %f far outside bounds [%f, %f]", r.TrueHumanShare, r.LowerBound, r.UpperBound)
	}
	out := r.Format()
	for _, want := range []string{"Downloaded CSS", "Mouse movement detected", "paper 22.3%", "Total sessions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestCaptchaCross(t *testing.T) {
	r := CaptchaCross(smallScale())
	if r.CaptchaSessions == 0 {
		t.Fatal("no CAPTCHA-passing sessions generated")
	}
	// Among CAPTCHA-verified humans, most ran JS and almost all fetched CSS.
	if r.FetchedCSS < 0.9 {
		t.Errorf("CSS share among captcha humans = %f", r.FetchedCSS)
	}
	if r.RanJS < 0.7 || r.RanJS > 1.0 {
		t.Errorf("JS share among captcha humans = %f", r.RanJS)
	}
	if r.JSDisabledShare < -0.01 {
		t.Errorf("negative JS-disabled share: %f", r.JSDisabledShare)
	}
	if !strings.Contains(r.Format(), "CAPTCHA cross-validation") {
		t.Fatal("Format missing header")
	}
}

func TestFigure2Shape(t *testing.T) {
	r := Figure2(smallScale())
	if r.MouseCDF.Len() == 0 || r.CSSCDF.Len() == 0 || r.JSFileCDF.Len() == 0 {
		t.Fatalf("empty CDFs: mouse=%d css=%d js=%d", r.MouseCDF.Len(), r.CSSCDF.Len(), r.JSFileCDF.Len())
	}
	if !r.ShapeHolds() {
		t.Errorf("Figure 2 shape does not hold: mouse95=%f css95=%f", r.Mouse95, r.CSS95)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	out := r.Format()
	if !strings.Contains(out, "Mouse events") || !strings.Contains(out, "CSS files") {
		t.Fatal("Format missing series")
	}
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(smallScale())
	if len(r.Complaints) != 13 {
		t.Fatalf("months = %d", len(r.Complaints))
	}
	if r.MeasuredBlockedFraction <= 0.2 {
		t.Errorf("measured blocked fraction = %f; policy engine seems ineffective", r.MeasuredBlockedFraction)
	}
	if !r.ShapeHolds() {
		t.Errorf("Figure 3 shape does not hold: peak=%d after=%d reduction=%.1f",
			r.PeakBeforeDeployment, r.TotalRobotAfterDeployment, r.ReductionFactor)
	}
	out := r.Format()
	if !strings.Contains(out, "detector deployed") || !strings.Contains(out, "Reduction factor") {
		t.Fatal("Format missing annotations")
	}
}

func TestTable2Definitions(t *testing.T) {
	r := Table2()
	if len(r.Names) != 12 || len(r.Descriptions) != 12 {
		t.Fatalf("attributes = %d/%d", len(r.Names), len(r.Descriptions))
	}
	out := r.Format()
	for _, want := range []string{"HEAD %", "UNSEEN REFERRER %", "FAVICON %", "% of requests with referrer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q", want)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 4 training is slow")
	}
	r := Figure4(Scale{Sessions: 150, Seed: 11})
	if len(r.Points) < 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if !r.ShapeHolds() {
		for _, p := range r.Points {
			t.Logf("requests=%d train=%.3f test=%.3f", p.Requests, p.TrainAccuracy, p.TestAccuracy)
		}
		t.Error("Figure 4 shape does not hold")
	}
	if len(r.TopAttributes) != 3 {
		t.Fatalf("top attributes = %v", r.TopAttributes)
	}
	if r.NavTreeTestAccuracy <= 0.5 {
		t.Errorf("nav-tree baseline accuracy = %f", r.NavTreeTestAccuracy)
	}
	out := r.Format()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Most contributing attributes") {
		t.Fatal("Format incomplete")
	}
}

func TestOverheadShape(t *testing.T) {
	r := Overhead(Scale{Sessions: 80, Seed: 13})
	if !r.ShapeHolds() {
		t.Errorf("overhead shape does not hold: %+v", r)
	}
	if r.ScriptsPerSecond < 1000 {
		t.Errorf("script generation too slow: %.0f/s", r.ScriptsPerSecond)
	}
	if !strings.Contains(r.Format(), "bandwidth overhead") {
		t.Fatal("Format incomplete")
	}
}

func TestAblationDecoys(t *testing.T) {
	r := AblationDecoys(Scale{Sessions: 300, Seed: 17})
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prev := 0.0
	for _, row := range r.Rows {
		if row.SinglePickCatchRate < row.Expected-0.08 || row.SinglePickCatchRate > row.Expected+0.08 {
			t.Errorf("m=%d single-pick catch rate %f deviates from expected %f", row.Decoys, row.SinglePickCatchRate, row.Expected)
		}
		if row.FetchAllCatchRate < 0.99 {
			t.Errorf("m=%d fetch-all catch rate %f should be ~1", row.Decoys, row.FetchAllCatchRate)
		}
		if row.SinglePickCatchRate+0.08 < prev {
			t.Errorf("catch rate should not decrease with more decoys")
		}
		prev = row.SinglePickCatchRate
	}
	if !strings.Contains(r.Format(), "Decoys (m)") {
		t.Fatal("Format incomplete")
	}
}

func TestBaselineComparison(t *testing.T) {
	r := BaselineComparison(Scale{Sessions: 150, Seed: 19})
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ours := r.Rows[0]
	heuristic := r.Rows[1]
	if ours.Accuracy <= heuristic.Accuracy {
		t.Errorf("combining rule (%.3f) should beat the heuristic baseline (%.3f) on disguised robots",
			ours.Accuracy, heuristic.Accuracy)
	}
	if ours.FPR > 0.08 {
		t.Errorf("combining rule FPR = %f", ours.FPR)
	}
	if !strings.Contains(r.Format(), "combining rule") {
		t.Fatal("Format incomplete")
	}
}

func TestScaleDefaults(t *testing.T) {
	s := Scale{}.withDefaults()
	if s != DefaultScale() {
		t.Fatalf("defaults = %+v", s)
	}
	s2 := Scale{Sessions: 10}.withDefaults()
	if s2.Sessions != 10 || s2.Seed != DefaultScale().Seed {
		t.Fatalf("partial defaults = %+v", s2)
	}
}
