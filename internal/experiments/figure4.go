package experiments

import (
	"fmt"
	"sort"
	"strings"

	"botdetect/internal/adaboost"
	"botdetect/internal/baselines"
	"botdetect/internal/features"
	"botdetect/internal/logfmt"
	"botdetect/internal/metrics"
	"botdetect/internal/session"
	"botdetect/internal/workload"
)

// Table2Result lists the 12 AdaBoost attributes (Table 2 is definitional).
type Table2Result struct {
	Names        []string
	Descriptions []string
}

// Table2 returns the attribute definitions.
func Table2() Table2Result {
	return Table2Result{Names: features.Names[:], Descriptions: features.Descriptions[:]}
}

// Format renders the table.
func (r Table2Result) Format() string {
	t := metrics.NewTable("Table 2 — attributes used in AdaBoost", "Attribute", "Explanation")
	for i := range r.Names {
		t.AddRow(r.Names[i], r.Descriptions[i])
	}
	return t.Format()
}

// Figure4Point is one x position of Figure 4: the classifier built from the
// first N requests of every session.
type Figure4Point struct {
	// Requests is the prefix length the classifier was built at.
	Requests int
	// TrainAccuracy and TestAccuracy are the ensemble accuracies.
	TrainAccuracy float64
	TestAccuracy  float64
	// TrainExamples and TestExamples are the example counts.
	TrainExamples int
	TestExamples  int
}

// Figure4Result is the accuracy-vs-prefix curve plus the feature-importance
// ranking the paper discusses alongside it.
type Figure4Result struct {
	// Points are the classifiers at 20, 40, ..., 160 requests.
	Points []Figure4Point
	// Rounds is the number of boosting rounds used (paper: 200).
	Rounds int
	// TopAttributes are the most contributing attribute names of the final
	// (longest-prefix) classifier, most important first.
	TopAttributes []string
	// HumanSessions and RobotSessions are the labelled session counts.
	HumanSessions int
	RobotSessions int
	// NavTreeTestAccuracy is the Tan & Kumar style baseline's accuracy on the
	// same final-prefix split, for comparison.
	NavTreeTestAccuracy float64
}

// Figure4 regenerates the machine-learning study: per-session attribute
// vectors are computed over the first N requests (N = 20 ... 160), labelled
// with ground truth (standing in for the paper's CAPTCHA-verified labels),
// split in half at random, and an AdaBoost ensemble with 200 rounds of
// decision stumps is trained per N.
func Figure4(scale Scale) Figure4Result {
	scale = scale.withDefaults()
	// Longer sessions so the larger prefixes are meaningful.
	res := workload.Run(workload.Config{
		Sessions:      scale.Sessions,
		Seed:          scale.Seed ^ 0xf4,
		RecordLogs:    true,
		HumanPages:    30,
		RobotRequests: 170,
	})
	return figure4From(res, scale)
}

func figure4From(res *workload.Result, scale Scale) Figure4Result {
	// Group raw log entries per session key, in time order.
	perSession := make(map[session.Key][]logfmt.Entry)
	for _, e := range res.Entries {
		key := session.Key{IP: e.ClientIP, UserAgent: e.UserAgent}
		perSession[key] = append(perSession[key], e)
	}
	for key := range perSession {
		entries := perSession[key]
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time.Before(entries[j].Time) })
		perSession[key] = entries
	}

	out := Figure4Result{Rounds: 200}
	prefixes := []int{20, 40, 60, 80, 100, 120, 140, 160}
	var lastModel *adaboost.Model
	var lastExamples []features.Example

	for _, n := range prefixes {
		var examples []features.Example
		humans, robots := 0, 0
		for key, entries := range perSession {
			kind, ok := res.GroundTruth[key]
			if !ok || len(entries) <= 10 {
				continue
			}
			acc := session.NewAccumulator(int64(n))
			for _, e := range entries {
				if !acc.Observe(e) {
					break
				}
			}
			ex := features.Example{X: acc.Vector(), Human: kind.IsHuman()}
			examples = append(examples, ex)
			if ex.Human {
				humans++
			} else {
				robots++
			}
		}
		if humans == 0 || robots == 0 {
			continue
		}
		train, test := adaboost.Split(examples, 0.5, scale.Seed^uint64(n))
		model, err := adaboost.Train(train, adaboost.Config{Rounds: 200})
		if err != nil {
			continue
		}
		out.Points = append(out.Points, Figure4Point{
			Requests:      n,
			TrainAccuracy: model.Accuracy(train),
			TestAccuracy:  model.Accuracy(test),
			TrainExamples: len(train),
			TestExamples:  len(test),
		})
		lastModel = model
		lastExamples = examples
		if n == prefixes[len(prefixes)-1] || out.HumanSessions == 0 {
			out.HumanSessions = humans
			out.RobotSessions = robots
		}
	}

	if lastModel != nil {
		for _, idx := range lastModel.TopFeatures(3) {
			out.TopAttributes = append(out.TopAttributes, features.Names[idx])
		}
		// Baseline: the navigational-pattern decision tree on the same data.
		train, test := adaboost.Split(lastExamples, 0.5, scale.Seed^0x7ee)
		if tree, err := baselines.TrainNavTree(train, baselines.NavTreeConfig{}); err == nil {
			out.NavTreeTestAccuracy = tree.Accuracy(test)
		}
	}
	return out
}

// Format renders the result as text.
func (r Figure4Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — AdaBoost accuracy vs. number of requests the classifier is built at\n")
	fmt.Fprintf(&sb, "  rounds=%d, labelled sessions: %d human / %d robot\n", r.Rounds, r.HumanSessions, r.RobotSessions)
	t := metrics.NewTable("", "Requests", "Training accuracy (%)", "Test accuracy (%)", "Train n", "Test n")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%.1f", p.TrainAccuracy*100),
			fmt.Sprintf("%.1f", p.TestAccuracy*100),
			fmt.Sprintf("%d", p.TrainExamples), fmt.Sprintf("%d", p.TestExamples))
	}
	sb.WriteString(t.Format())
	fmt.Fprintf(&sb, "Most contributing attributes: %s\n", strings.Join(r.TopAttributes, ", "))
	fmt.Fprintf(&sb, "  (paper: RESPCODE 3XX %%, REFERRER %%, UNSEEN REFERRER %%)\n")
	fmt.Fprintf(&sb, "Tan & Kumar style decision-tree baseline (full prefix): %.1f%% test accuracy\n", r.NavTreeTestAccuracy*100)
	return sb.String()
}

// ShapeHolds reports whether the qualitative Figure 4 claims hold: test
// accuracy stays in the ~90%+ band throughout and does not degrade as the
// classifier sees more requests.
func (r Figure4Result) ShapeHolds() bool {
	if len(r.Points) < 4 {
		return false
	}
	first := r.Points[0].TestAccuracy
	last := r.Points[len(r.Points)-1].TestAccuracy
	if first < 0.85 || last < 0.85 {
		return false
	}
	return last >= first-0.03
}
