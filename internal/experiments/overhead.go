package experiments

import (
	"fmt"
	"strings"
	"time"

	"botdetect/internal/jsgen"
	"botdetect/internal/metrics"
	"botdetect/internal/rng"
	"botdetect/internal/workload"
)

// OverheadResult is the Section 3.2 cost study: how long it takes to
// generate an obfuscated beacon script and how much extra bandwidth the
// instrumentation consumes relative to origin traffic.
type OverheadResult struct {
	// ScriptBytes is the size of one generated obfuscated script.
	ScriptBytes int
	// ScriptGenTime is the mean wall-clock time to generate one script.
	ScriptGenTime time.Duration
	// ScriptsPerSecond is the derived generation throughput.
	ScriptsPerSecond float64
	// OriginBytes is the origin payload served during the measurement run.
	OriginBytes int64
	// AddedBytes is the instrumentation payload (HTML growth plus generated
	// scripts and stylesheets served).
	AddedBytes int64
	// BandwidthOverhead is AddedBytes / (OriginBytes + AddedBytes).
	BandwidthOverhead float64
	// PaperBandwidthOverhead is the published 0.3% figure. The paper's
	// denominator is CoDeeN's total traffic (dominated by large media
	// objects); the synthetic site is smaller, so the measured share is
	// expected to sit above the published one while remaining a small
	// fraction.
	PaperBandwidthOverhead float64
}

// Overhead measures script-generation cost directly and bandwidth overhead
// from a workload run.
func Overhead(scale Scale) OverheadResult {
	scale = scale.withDefaults()
	out := OverheadResult{PaperBandwidthOverhead: 0.003}

	// Script generation timing: the same code path the detector uses.
	gen := jsgen.NewGenerator()
	src := rng.New(scale.Seed ^ 0x0f)
	params := func(i int) jsgen.Params {
		return jsgen.Params{
			BeaconBase:  "http://www.example.com",
			RealKey:     src.DigitKey(10),
			DecoyKeys:   []string{src.DigitKey(10), src.DigitKey(10), src.DigitKey(10), src.DigitKey(10)},
			UAReportKey: src.DigitKey(10),
			Obfuscate:   true,
			Seed:        uint64(i) + scale.Seed,
		}
	}
	warm := gen.Script(params(0))
	out.ScriptBytes = len(warm)

	const iterations = 2000
	start := time.Now()
	for i := 1; i <= iterations; i++ {
		_ = gen.Script(params(i))
	}
	elapsed := time.Since(start)
	out.ScriptGenTime = elapsed / iterations
	if out.ScriptGenTime > 0 {
		out.ScriptsPerSecond = float64(time.Second) / float64(out.ScriptGenTime)
	}

	// Bandwidth overhead from a calibrated workload run.
	res := workload.Run(workload.Config{Sessions: scale.Sessions / 2, Seed: scale.Seed ^ 0x0f0f})
	stats := res.Network.EngineStats()
	nodeStats := res.Network.TotalStats()
	out.OriginBytes = nodeStats.OriginBytes
	out.AddedBytes = stats.AddedBytes
	total := out.OriginBytes + out.AddedBytes
	if total > 0 {
		out.BandwidthOverhead = float64(out.AddedBytes) / float64(total)
	}
	return out
}

// Format renders the result as text.
func (r OverheadResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Overhead (Section 3.2)\n")
	fmt.Fprintf(&sb, "  obfuscated script size:        %d bytes (paper ~1 KB)\n", r.ScriptBytes)
	fmt.Fprintf(&sb, "  script generation time:        %v per script (%.0f scripts/s)\n", r.ScriptGenTime, r.ScriptsPerSecond)
	fmt.Fprintf(&sb, "  origin bytes served:           %d\n", r.OriginBytes)
	fmt.Fprintf(&sb, "  instrumentation bytes added:   %d\n", r.AddedBytes)
	fmt.Fprintf(&sb, "  bandwidth overhead:            %s%% (paper 0.3%% of CoDeeN's much larger traffic)\n", metrics.Pct(r.BandwidthOverhead))
	return sb.String()
}

// ShapeHolds reports whether the qualitative overhead claim holds: script
// generation is far below one millisecond and instrumentation is a small
// fraction of served bytes.
func (r OverheadResult) ShapeHolds() bool {
	return r.ScriptGenTime < time.Millisecond && r.BandwidthOverhead < 0.15 && r.ScriptBytes > 200
}
