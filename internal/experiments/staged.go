package experiments

import (
	"fmt"
	"strings"

	"botdetect/internal/adaboost"
	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/detect/rules"
	"botdetect/internal/features"
	"botdetect/internal/metrics"
	"botdetect/internal/workload"
)

// AblationSignalsResult quantifies what each term of the combining rule
// contributes by evaluating rule variants (CSS only, mouse only, the union,
// and the full rule with the S_JS − S_MM subtraction) against ground truth on
// the same workload.
type AblationSignalsResult struct {
	Rows []SignalRuleRow
}

// SignalRuleRow is one rule variant's measured quality.
type SignalRuleRow struct {
	// Rule names the variant.
	Rule string
	// Accuracy, FPR, FNR are measured against ground truth over sessions
	// with more than ten requests.
	Accuracy float64
	FPR      float64
	FNR      float64
}

// AblationSignals evaluates the combining-rule variants.
func AblationSignals(scale Scale) AblationSignalsResult {
	scale = scale.withDefaults()
	res := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed ^ 0x51a})

	variants := []rules.Rule{rules.CSSOnlyRule(), rules.MouseOnlyRule(), rules.UnionOnlyRule(), rules.FullRule()}
	var out AblationSignalsResult
	for _, rule := range variants {
		var cm metrics.ConfusionMatrix
		for _, s := range res.Sessions {
			if s.Snapshot.Counts.Total <= 10 {
				continue
			}
			cm.Record(rule.InHumanSet(s.Snapshot), s.IsHuman())
		}
		out.Rows = append(out.Rows, SignalRuleRow{
			Rule:     rule.Name(),
			Accuracy: cm.Accuracy(),
			FPR:      cm.FalsePositiveRate(),
			FNR:      cm.FalseNegativeRate(),
		})
	}
	return out
}

// Format renders the result as text.
func (r AblationSignalsResult) Format() string {
	t := metrics.NewTable("Ablation — combining-rule variants (sessions with > 10 requests)",
		"Rule", "Accuracy (%)", "FPR (%)", "FNR (%)")
	for _, row := range r.Rows {
		t.AddRow(row.Rule,
			fmt.Sprintf("%.1f", row.Accuracy*100),
			fmt.Sprintf("%.1f", row.FPR*100),
			fmt.Sprintf("%.1f", row.FNR*100))
	}
	return t.Format()
}

// StagedResult evaluates the staged design the paper sketches in Section 4.1:
// make a quick decision with the fast, cheap rules (the combining rule's
// direct evidence and browser test) and fall back to the heavier AdaBoost
// classifier only for the boundary cases the fast path cannot decide.
type StagedResult struct {
	Rows []StagedRow
	// FastPathShare is the fraction of sessions the fast path decided on its
	// own in the staged configuration.
	FastPathShare float64
}

// StagedRow is one detector configuration's measured quality.
type StagedRow struct {
	Name     string
	Accuracy float64
	FPR      float64
	FNR      float64
}

// Staged compares rules-only, machine-learning-only, and the staged
// combination on one workload. The ML stage is trained on a disjoint
// workload (different seed) so its accuracy is honest.
func Staged(scale Scale) StagedResult {
	scale = scale.withDefaults()

	// Training workload for the ML stage.
	trainRes := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed ^ 0x7a11, RecordLogs: false})
	var trainExamples []features.Example
	for _, s := range trainRes.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue
		}
		trainExamples = append(trainExamples, features.Example{X: s.Snapshot.Features, Human: s.IsHuman()})
	}
	model, err := adaboost.Train(trainExamples, adaboost.Config{Rounds: 200})
	if err != nil {
		return StagedResult{}
	}

	// Evaluation workload.
	evalRes := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed ^ 0x7a12})

	// The staged configuration is the serving chain itself — direct evidence,
	// then the learned model — composed from the same detect combinators the
	// live engine uses, so this ablation measures exactly what deployment
	// would deploy.
	learnedStage := detect.NewLearned(10)
	learnedStage.SetModel(model)
	staged := detect.Chain("staged", rules.Direct{}, learnedStage)

	var rulesCM, mlCM, stagedCM metrics.ConfusionMatrix
	fastDecided, total := 0, 0
	for _, s := range evalRes.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue
		}
		total++
		isHuman := s.IsHuman()
		mlSaysHuman := model.Predict(s.Snapshot.Features)

		// Rules only: the detector's verdict, undecided counted as robot.
		rulesCM.Record(s.Verdict.Class == core.ClassHuman, isHuman)
		// ML only.
		mlCM.Record(mlSaysHuman, isHuman)
		// Staged: run the chain; a definite verdict means the direct-evidence
		// fast path decided, everything else fell through to the ML stage.
		v, ok := staged.Detect(&s.Snapshot)
		if ok && v.Confidence == core.Definite {
			fastDecided++
		}
		stagedCM.Record(ok && v.Class == core.ClassHuman, isHuman)
	}

	out := StagedResult{Rows: []StagedRow{
		{Name: "rules only (combining rule)", Accuracy: rulesCM.Accuracy(), FPR: rulesCM.FalsePositiveRate(), FNR: rulesCM.FalseNegativeRate()},
		{Name: "AdaBoost only", Accuracy: mlCM.Accuracy(), FPR: mlCM.FalsePositiveRate(), FNR: mlCM.FalseNegativeRate()},
		{Name: "staged (rules, then AdaBoost)", Accuracy: stagedCM.Accuracy(), FPR: stagedCM.FalsePositiveRate(), FNR: stagedCM.FalseNegativeRate()},
	}}
	if total > 0 {
		out.FastPathShare = float64(fastDecided) / float64(total)
	}
	return out
}

// Format renders the result as text.
func (r StagedResult) Format() string {
	var sb strings.Builder
	t := metrics.NewTable("Staged detection (Section 4.1 extension)",
		"Configuration", "Accuracy (%)", "FPR (%)", "FNR (%)")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.1f", row.Accuracy*100),
			fmt.Sprintf("%.1f", row.FPR*100),
			fmt.Sprintf("%.1f", row.FNR*100))
	}
	sb.WriteString(t.Format())
	fmt.Fprintf(&sb, "fast path decided %.1f%% of sessions without invoking the ML stage\n", r.FastPathShare*100)
	return sb.String()
}
