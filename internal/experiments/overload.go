package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/chaos"
	"botdetect/internal/core"
	"botdetect/internal/proxy"
	"botdetect/internal/session"
)

// OverloadConfig sizes the flash-crowd resilience run. The zero value gives a
// run that floods a deliberately small engine with 2.5x its session capacity
// in a few seconds of wall clock.
type OverloadConfig struct {
	// MaxSessions is the engine's session-table capacity; kept small so the
	// flood saturates it quickly (default 2048).
	MaxSessions int
	// MemoryBudget bounds the engine's estimated tracker+keystore bytes
	// (default 256 MiB).
	MemoryBudget int64
	// Established is the number of evidence-bearing sessions created before
	// the flood (default 256).
	Established int
	// FloodFactor is the flood size as a multiple of MaxSessions
	// (default 2.5).
	FloodFactor float64
	// Workers is the number of concurrent flood goroutines (default 16).
	Workers int
	// Seed drives client identities.
	Seed uint64
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2048
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.Established <= 0 {
		c.Established = 256
	}
	if c.FloodFactor <= 1 {
		c.FloodFactor = 2.5
	}
	if c.Workers <= 0 {
		// Enough concurrency to saturate admission without turning the run
		// into a pure scheduler-queueing measurement on small machines.
		c.Workers = 2 * runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
		if c.Workers > 16 {
			c.Workers = 16
		}
	}
	if c.Seed == 0 {
		c.Seed = 2006
	}
	return c
}

// OverloadResult is the flash-crowd report: a reverse proxy in front of a
// chaos-wrapped origin is flooded with FloodFactor x MaxSessions brand-new
// clients while previously established, evidence-bearing sessions keep
// browsing; mid-flood the origin goes dark (503 burst) until the circuit
// breaker trips, then heals. The run measures what the overload machinery
// promises: bounded memory, zero evidence-bearing evictions, bounded latency
// for established clients, breaker trip + recovery, and load-state recovery
// after the crowd leaves.
type OverloadResult struct {
	MaxSessions  int     `json:"max_sessions"`
	FloodClients int     `json:"flood_clients"`
	Established  int     `json:"established_sessions"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	DurationSec  float64 `json:"duration_sec"`

	// Degradation ladder.
	PeakLoadState    string `json:"peak_load_state"`
	ShedPassThrough  int64  `json:"shed_passthrough"`
	ShedDegraded     int64  `json:"shed_degraded"`
	LiveSessionsPeak int    `json:"live_sessions_peak"`

	// Eviction discipline: capacity evictions must only hit anonymous
	// sessions while capacity remains attacker-drivable.
	EvictedIdle              int64 `json:"evicted_idle"`
	EvictedCapacityAnonymous int64 `json:"evicted_capacity_anonymous"`
	EvictedCapacityEvidence  int64 `json:"evicted_capacity_evidence"`
	EstablishedSurvived      int   `json:"established_survived"`

	// Memory budget.
	MemoryBudgetBytes   int64 `json:"memory_budget_bytes"`
	MemoryEstimateBytes int64 `json:"memory_estimate_bytes"`
	RSSBytes            int64 `json:"rss_bytes"`

	// Established-session latency, unpressured vs mid-flood.
	BaselineP50Us  float64 `json:"baseline_p50_us"`
	BaselineP99Us  float64 `json:"baseline_p99_us"`
	PressuredP50Us float64 `json:"pressured_p50_us"`
	PressuredP99Us float64 `json:"pressured_p99_us"`
	P99Ratio       float64 `json:"pressured_p99_over_baseline"`

	// Origin fault tolerance.
	BreakerOpens         int64 `json:"breaker_opens"`
	BreakerProbes        int64 `json:"breaker_probes"`
	BreakerRecoveries    int64 `json:"breaker_recoveries"`
	BreakerShortCircuits int64 `json:"breaker_short_circuits"`

	// Recovery after the crowd leaves (includes a +idle-timeout clock skew,
	// the chaos harness's "NTP step" fault, so idle expiry fires at once).
	RecoverySec     float64 `json:"recovery_sec"`
	FinalLoadState  string  `json:"final_load_state"`
	GoroutinesDelta int     `json:"goroutines_delta"`
}

// OverloadBench runs the flash-crowd workload against a live localhost
// reverse proxy fronting a chaos origin.
func OverloadBench(cfg OverloadConfig) OverloadResult {
	cfg = cfg.withDefaults()
	const idleTimeout = 1500 * time.Millisecond

	goroutinesBefore := runtime.NumGoroutine()

	// The engine reads a skewable clock so the recovery phase can inject the
	// clock-step fault instead of sleeping through the idle timeout.
	skew := chaos.NewSkewed(nil)
	det := core.New(core.Config{
		Seed:               cfg.Seed,
		Clock:              skew,
		MaxSessions:        cfg.MaxSessions,
		MemoryBudget:       cfg.MemoryBudget,
		SessionIdleTimeout: idleTimeout,
		ObfuscateJS:        true,
	})

	// Chaos origin on its own listener, reverse proxy in front.
	origin := chaos.NewOrigin(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header()["Content-Type"] = serveOriginCT
		_, _ = w.Write(serveOriginPage)
	}))
	originLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return OverloadResult{}
	}
	originSrv := &http.Server{Handler: origin}
	go func() { _ = originSrv.Serve(originLn) }()
	defer originSrv.Close()

	upstreamURL := &url.URL{Scheme: "http", Host: originLn.Addr().String()}
	mw := proxy.NewReverseProxy(upstreamURL, proxy.Config{
		Engine:            det,
		TrustForwardedFor: true,
		Upstream: proxy.UpstreamConfig{
			DialTimeout:           time.Second,
			ResponseHeaderTimeout: 2 * time.Second,
			RequestTimeout:        5 * time.Second,
			Retries:               1,
			RetryBackoff:          5 * time.Millisecond,
			BreakerFailures:       5,
			BreakerCooldown:       200 * time.Millisecond,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return OverloadResult{}
	}
	srv := &http.Server{Handler: mw, ConnContext: proxy.ConnContext}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}
	// The established cohort measures the proxy, not the flood's client-side
	// connection queue, so it keeps its own keep-alive connections.
	estTransport := &http.Transport{MaxIdleConns: 4, MaxIdleConnsPerHost: 4}
	defer estTransport.CloseIdleConnections()
	estClient := &http.Client{Transport: estTransport}

	var requests, errors atomic.Int64
	fetchWith := func(c *http.Client, ip string, page int) (time.Duration, bool) {
		t0 := time.Now()
		err := serveOnePage(c, base, ip, page)
		d := time.Since(t0)
		requests.Add(1)
		if err != nil {
			errors.Add(1)
			return d, false
		}
		return d, true
	}
	fetch := func(ip string, page int) (time.Duration, bool) { return fetchWith(client, ip, page) }

	start := time.Now()

	// Phase 1: establish evidence-bearing sessions. Each client views a page
	// over HTTP, then its instrumentation key is exercised through the
	// engine's own beacon path (a real-key hit: the strongest human
	// evidence), so the flood later faces sessions the tracker must protect.
	prefix := det.Config().BeaconPrefix
	estIP := func(i int) string { return "10.200." + strconv.Itoa(i/250) + "." + strconv.Itoa(i%250) }
	const estUA = "Mozilla/5.0 (established)"
	for i := 0; i < cfg.Established; i++ {
		ip := estIP(i)
		fetchWith(estClient, ip, i)
		prep, inst := det.PrepareInstrumentation(ip, estUA, "/page.html")
		prep.Release()
		det.HandleBeacon(ip, estUA, prefix+"/"+inst.Issued.Key+".jpg")
	}

	// Baseline latency for established clients, unpressured.
	baseline := make([]float64, 0, 4*cfg.Established)
	for i := 0; i < 4*cfg.Established; i++ {
		if d, ok := fetchWith(estClient, estIP(i%cfg.Established), i); ok {
			baseline = append(baseline, float64(d.Nanoseconds())/1e3)
		}
	}

	// Phase 2: the flash crowd — FloodFactor x MaxSessions distinct brand-new
	// clients — while the established cohort keeps browsing and measuring,
	// and the origin goes dark mid-flood until the breaker trips, then heals.
	floodClients := int(cfg.FloodFactor * float64(cfg.MaxSessions))
	var (
		next      atomic.Int64
		floodWG   sync.WaitGroup
		floodDone = make(chan struct{})
	)
	for w := 0; w < cfg.Workers; w++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			var ipBuf [32]byte
			for {
				id := next.Add(1) - 1
				if id >= int64(floodClients) {
					return
				}
				ip := appendClientIP(ipBuf[:0], uint32(id))
				fetch(string(ip), int(id))
			}
		}()
	}

	// Outage driver: wait for the flood to be in full swing, kill the origin
	// until the breaker opens, heal, and confirm a half-open probe closes it.
	outageDone := make(chan struct{})
	br := mw.Breaker()
	go func() {
		defer close(outageDone)
		time.Sleep(50 * time.Millisecond)
		origin.FailWith(http.StatusServiceUnavailable, -1)
		waitUntil(2*time.Second, func() bool { return br.State() == proxy.BreakerOpen })
		origin.Heal()
		waitUntil(2*time.Second, func() bool { return br.State() == proxy.BreakerClosed })
	}()

	// Established cohort keeps measuring under pressure until the flood and
	// the outage cycle both complete (its traffic also provides the breaker's
	// half-open probe if the flood drains first).
	pressured := make([]float64, 0, 4096)
	peakSessions := 0
	peakState := core.LoadNormal
	go func() {
		floodWG.Wait()
		close(floodDone)
	}()
	for i := 0; ; i++ {
		if d, ok := fetchWith(estClient, estIP(i%cfg.Established), i); ok {
			pressured = append(pressured, float64(d.Nanoseconds())/1e3)
		}
		if n := det.SessionCount(); n > peakSessions {
			peakSessions = n
		}
		if s := det.LoadState(); s > peakState {
			peakState = s
		}
		select {
		case <-floodDone:
			select {
			case <-outageDone:
			default:
				continue
			}
		default:
			continue
		}
		break
	}

	// Survival census before recovery: every established session must still
	// be tracked and still carry its evidence.
	survived := 0
	for i := 0; i < cfg.Established; i++ {
		if snap, _, ok := det.Decide(session.Key{IP: estIP(i), UserAgent: estUA}); ok {
			if snap.Signals.Any() {
				survived++
			}
			snap.Release()
		}
	}

	evBefore := det.EvictionStats()
	stats := det.Stats()
	memEstimate := det.MemoryEstimate()
	rss := readRSS()

	// Phase 3: recovery. The crowd leaves; a clock-skew fault steps time past
	// the idle timeout (chaos.Skewed — recovery must survive an NTP jump, not
	// depend on a quiet wall clock), and the sweeper drains the flood's
	// anonymous sessions until the ladder returns to Normal.
	recoverStart := time.Now()
	skew.Skew(idleTimeout + 100*time.Millisecond)
	finalState := det.LoadState()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		det.SweepStep(skew.Now())
		finalState = det.RecomputeLoadState()
		if finalState == core.LoadNormal {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	recovery := time.Since(recoverStart)
	elapsed := time.Since(start)

	srv.Close()
	originSrv.Close()
	transport.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	goroutinesAfter := runtime.NumGoroutine()

	sort.Float64s(baseline)
	sort.Float64s(pressured)
	q := func(s []float64, p float64) float64 {
		if len(s) == 0 {
			return 0
		}
		return s[int(p*float64(len(s)-1))]
	}
	brStats := br.Stats()
	out := OverloadResult{
		MaxSessions:  cfg.MaxSessions,
		FloodClients: floodClients,
		Established:  cfg.Established,
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		DurationSec:  elapsed.Seconds(),

		PeakLoadState:    peakState.String(),
		ShedPassThrough:  stats.ShedPassThrough,
		ShedDegraded:     stats.ShedDegraded,
		LiveSessionsPeak: peakSessions,

		EvictedIdle:              evBefore.Idle,
		EvictedCapacityAnonymous: evBefore.CapacityAnonymous,
		EvictedCapacityEvidence:  evBefore.CapacityEvidence,
		EstablishedSurvived:      survived,

		MemoryBudgetBytes:   cfg.MemoryBudget,
		MemoryEstimateBytes: memEstimate,
		RSSBytes:            rss,

		BaselineP50Us:  q(baseline, 0.50),
		BaselineP99Us:  q(baseline, 0.99),
		PressuredP50Us: q(pressured, 0.50),
		PressuredP99Us: q(pressured, 0.99),

		BreakerOpens:         brStats.Opens,
		BreakerProbes:        brStats.Probes,
		BreakerRecoveries:    brStats.Recoveries,
		BreakerShortCircuits: brStats.ShortCircuits,

		RecoverySec:     recovery.Seconds(),
		FinalLoadState:  finalState.String(),
		GoroutinesDelta: goroutinesAfter - goroutinesBefore,
	}
	if out.BaselineP99Us > 0 {
		out.P99Ratio = out.PressuredP99Us / out.BaselineP99Us
	}
	return out
}

// waitUntil polls cond every millisecond until it holds or d elapses.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// JSON renders the result as indented JSON (the BENCH_overload.json artifact).
func (r OverloadResult) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// Format renders the result as text.
func (r OverloadResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Overload resilience (flash crowd + origin outage against a live reverse proxy)\n")
	fmt.Fprintf(&sb, "  flood:                  %d brand-new clients against MaxSessions=%d (%.1fx)\n",
		r.FloodClients, r.MaxSessions, float64(r.FloodClients)/float64(r.MaxSessions))
	fmt.Fprintf(&sb, "  requests:               %d (%d errors, outage window included) in %.1fs\n",
		r.Requests, r.Errors, r.DurationSec)
	fmt.Fprintf(&sb, "  degradation:            peak state %s, shed passthrough=%d degraded=%d, peak sessions %d\n",
		r.PeakLoadState, r.ShedPassThrough, r.ShedDegraded, r.LiveSessionsPeak)
	fmt.Fprintf(&sb, "  evictions:              idle=%d capacity-anonymous=%d capacity-evidence=%d\n",
		r.EvictedIdle, r.EvictedCapacityAnonymous, r.EvictedCapacityEvidence)
	fmt.Fprintf(&sb, "  established sessions:   %d/%d survived with evidence intact\n",
		r.EstablishedSurvived, r.Established)
	fmt.Fprintf(&sb, "  memory:                 estimate %.1f MiB of %.0f MiB budget, %.1f MiB RSS\n",
		float64(r.MemoryEstimateBytes)/(1<<20), float64(r.MemoryBudgetBytes)/(1<<20), float64(r.RSSBytes)/(1<<20))
	fmt.Fprintf(&sb, "  established latency:    p99 %.0fus -> %.0fus under flood (%.1fx)\n",
		r.BaselineP99Us, r.PressuredP99Us, r.P99Ratio)
	fmt.Fprintf(&sb, "  origin breaker:         opens=%d probes=%d recoveries=%d short-circuits=%d\n",
		r.BreakerOpens, r.BreakerProbes, r.BreakerRecoveries, r.BreakerShortCircuits)
	fmt.Fprintf(&sb, "  recovery:               %s after %.2fs (goroutine delta %+d)\n",
		r.FinalLoadState, r.RecoverySec, r.GoroutinesDelta)
	return sb.String()
}
