package experiments

import (
	"strings"
	"testing"
)

func TestAblationSignals(t *testing.T) {
	r := AblationSignals(Scale{Sessions: 200, Seed: 23})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]SignalRuleRow{}
	for _, row := range r.Rows {
		byName[row.Rule] = row
	}
	full := byName["(CSS ∪ MM) − (JS − MM)"]
	cssOnly := byName["CSS only"]
	mouseOnly := byName["MM only"]
	union := byName["CSS ∪ MM"]

	// The S_JS − S_MM subtraction exists to remove JavaScript-capable robots
	// that a CSS/union rule would admit: the full rule must have a lower (or
	// equal) false positive rate than both CSS-only and the plain union.
	if full.FPR > cssOnly.FPR+1e-9 || full.FPR > union.FPR+1e-9 {
		t.Errorf("full rule FPR %.3f should not exceed css-only %.3f or union %.3f", full.FPR, cssOnly.FPR, union.FPR)
	}
	// Mouse-only misses JavaScript-disabled humans, so its FNR must be the
	// highest of the variants that use the mouse signal.
	if mouseOnly.FNR+1e-9 < full.FNR {
		t.Errorf("mouse-only FNR %.3f should be at least the full rule's %.3f", mouseOnly.FNR, full.FNR)
	}
	// The full rule should be the most accurate (or tied).
	for name, row := range byName {
		if row.Accuracy > full.Accuracy+1e-9 {
			t.Errorf("variant %s accuracy %.3f exceeds full rule %.3f", name, row.Accuracy, full.Accuracy)
		}
	}
	if !strings.Contains(r.Format(), "combining-rule variants") {
		t.Fatal("Format incomplete")
	}
}

func TestStagedDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("staged detection trains AdaBoost twice")
	}
	r := Staged(Scale{Sessions: 150, Seed: 29})
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	staged := r.Rows[2]
	rules := r.Rows[0]
	if staged.Accuracy < 0.9 {
		t.Errorf("staged accuracy = %.3f", staged.Accuracy)
	}
	// The staged configuration must not be worse than rules alone by more
	// than a small margin (it only changes what rules could not decide
	// definitively).
	if staged.Accuracy+0.05 < rules.Accuracy {
		t.Errorf("staged accuracy %.3f far below rules-only %.3f", staged.Accuracy, rules.Accuracy)
	}
	if r.FastPathShare <= 0 || r.FastPathShare > 1 {
		t.Errorf("fast path share = %.3f", r.FastPathShare)
	}
	if !strings.Contains(r.Format(), "Staged detection") {
		t.Fatal("Format incomplete")
	}
}
