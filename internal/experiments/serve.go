package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/core"
	"botdetect/internal/proxy"
	"botdetect/internal/rng"
)

// ServeConfig sizes the serve-path saturation run. The zero value is usable:
// every field has a default chosen so the run exercises ≥100k distinct
// clients over real localhost HTTP in a few seconds of wall clock.
type ServeConfig struct {
	// Clients is the number of distinct client identities driven through
	// the proxy (default 100_000). Each client issues a heavy-tailed number
	// of page views, so total requests exceed Clients.
	Clients int
	// Workers is the number of concurrent driver goroutines (default 16).
	Workers int
	// Seed drives the arrival process and per-client page counts.
	Seed uint64
	// HeapProfile, when non-empty, writes a pprof heap profile (after a
	// final GC) to this path when the run completes.
	HeapProfile string
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Clients <= 0 {
		c.Clients = 100_000
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Seed == 0 {
		c.Seed = 2006
	}
	return c
}

// ServeResult is the saturation report for the zero-copy serve path: a real
// HTTP server (with proxy.ConnContext installed, exactly as cmd/botproxy
// deploys it) is hammered over localhost by a keep-alive/short-connection
// client mix with heavy-tailed per-client page counts, and throughput,
// latency quantiles, memory, and session-table size are read back.
type ServeResult struct {
	Clients        int     `json:"distinct_clients"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	DurationSec    float64 `json:"duration_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50LatencyUs   float64 `json:"p50_latency_us"`
	P90LatencyUs   float64 `json:"p90_latency_us"`
	P99LatencyUs   float64 `json:"p99_latency_us"`
	RSSBytes       int64   `json:"rss_bytes"`
	EngineBytes    int64   `json:"engine_bytes"`
	BytesPerSess   int64   `json:"bytes_per_session"`
	InternHitRate  float64 `json:"intern_hit_rate"`
	LiveSessions   int     `json:"live_sessions"`
	PagesServed    int64   `json:"pages_instrumented"`
}

// latHist is a fixed-size log-linear latency histogram (HDR-style): the
// major bucket is the bit length of the nanosecond value, each major bucket
// splits into 32 linear sub-buckets. Error is <3% of the value — far below
// run-to-run noise — and recording is two shifts and an add into a flat
// array, so per-worker latency capture costs O(1) memory regardless of
// client count (the previous slice was O(requests): ~1.5 GB of float64s at
// 1M clients).
type latHist struct {
	counts [64 * latSubBuckets]uint64
	n      uint64
}

const latSubBits = 5
const latSubBuckets = 1 << latSubBits

func latBucket(ns int64) int {
	if ns < latSubBuckets {
		return int(ns)
	}
	major := bits.Len64(uint64(ns)) - 1
	sub := (uint64(ns) >> (uint(major) - latSubBits)) - latSubBuckets
	return (major-latSubBits)*latSubBuckets + latSubBuckets + int(sub)
}

// latBucketMid returns the midpoint value (ns) represented by bucket i.
func latBucketMid(i int) float64 {
	if i < latSubBuckets {
		return float64(i)
	}
	major := (i-latSubBuckets)/latSubBuckets + latSubBits
	sub := uint64((i - latSubBuckets) % latSubBuckets)
	lo := (latSubBuckets + sub) << (uint(major) - latSubBits)
	width := uint64(1) << (uint(major) - latSubBits)
	return float64(lo) + float64(width)/2
}

func (h *latHist) record(ns int64) {
	h.counts[latBucket(ns)]++
	h.n++
}

func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// quantile returns the p-quantile in microseconds.
func (h *latHist) quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p * float64(h.n-1))
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > rank {
			return latBucketMid(i) / 1e3
		}
	}
	return latBucketMid(len(h.counts)-1) / 1e3
}

// serveOriginPage is the synthetic origin document; small enough that the
// run measures the instrumentation pipeline rather than kernel copy cost.
var serveOriginPage = []byte("<html><head><title>bench</title></head>" +
	"<body><h1>serve bench</h1><p>payload paragraph one</p>" +
	"<p>payload paragraph two</p></body></html>")

var serveOriginCT = []string{"text/html; charset=utf-8"}

// ServeBench runs the saturation workload against a live localhost server.
func ServeBench(cfg ServeConfig) ServeResult {
	cfg = cfg.withDefaults()

	// The bench measures the instrumentation pipeline, not the collector.
	// Past ~250k clients the live heap crosses a gigabyte and, at the
	// default GOGC, concurrent mark runs nearly back-to-back on small
	// machines; mark assists then dominate tail latency (measured: p99
	// 2.5× worse at 1M clients, recovered to 1.3× with GOGC 300). Trade
	// heap headroom for fewer cycles so p99 stays a property of the serve
	// path — production deployments make the same trade via GOGC/GOMEMLIMIT.
	if cfg.Clients >= 250_000 {
		defer debug.SetGCPercent(debug.SetGCPercent(300))
	}

	det := core.New(core.Config{Seed: cfg.Seed, ObfuscateJS: true})
	mw := proxy.New(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header()["Content-Type"] = serveOriginCT
		_, _ = w.Write(serveOriginPage)
	}), proxy.Config{Engine: det, TrustForwardedFor: true})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeResult{}
	}
	srv := &http.Server{
		Handler:     mw,
		ConnContext: proxy.ConnContext,
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Client mix: most drivers hold keep-alive connections (the CDN/browser
	// case the per-connection Prepared reuse targets); a quarter disable
	// keep-alive so the cold per-request path stays in the measurement.
	keepAlive := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	oneShot := &http.Transport{DisableKeepAlives: true}
	defer keepAlive.CloseIdleConnections()

	var (
		requests atomic.Int64
		errors   atomic.Int64
		next     atomic.Int64
		mu       sync.Mutex
		lat      latHist
		wg       sync.WaitGroup
	)

	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(cfg.Seed).Fork("serve-worker").Fork(strconv.Itoa(w))
			tr := keepAlive
			if w%4 == 3 {
				tr = oneShot
			}
			client := &http.Client{Transport: tr}
			var local latHist
			var ipBuf [32]byte
			for {
				id := next.Add(1) - 1
				if id >= int64(cfg.Clients) {
					break
				}
				// Heavy-tailed session length: most clients view a page
				// or two, a fat tail crawls dozens (Pareto alpha 1.3).
				pages := int(r.Pareto(1, 1.3))
				if pages > 48 {
					pages = 48
				}
				ip := appendClientIP(ipBuf[:0], uint32(id))
				for p := 0; p < pages; p++ {
					t0 := time.Now()
					if err := serveOnePage(client, base, string(ip), p); err != nil {
						errors.Add(1)
						continue
					}
					local.record(time.Since(t0).Nanoseconds())
					requests.Add(1)
				}
			}
			mu.Lock()
			lat.merge(&local)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// A GC pass before reading RSS separates live state from garbage the
	// driver itself produced; engine_bytes is the engine's own estimate of
	// its attacker-controlled structures, the number the bytes-per-session
	// gate and admission control budget against.
	runtime.GC()
	live := det.SessionCount()
	engineBytes := det.MemoryEstimate()
	out := ServeResult{
		Clients:       cfg.Clients,
		Requests:      requests.Load(),
		Errors:        errors.Load(),
		DurationSec:   elapsed.Seconds(),
		P50LatencyUs:  lat.quantile(0.50),
		P90LatencyUs:  lat.quantile(0.90),
		P99LatencyUs:  lat.quantile(0.99),
		RSSBytes:      readRSS(),
		EngineBytes:   engineBytes,
		InternHitRate: det.InternStats().HitRate(),
		LiveSessions:  live,
		PagesServed:   det.Stats().PagesInstrumented,
	}
	if live > 0 {
		out.BytesPerSess = engineBytes / int64(live)
	}
	if elapsed > 0 {
		out.RequestsPerSec = float64(out.Requests) / elapsed.Seconds()
	}
	if cfg.HeapProfile != "" {
		if f, err := os.Create(cfg.HeapProfile); err == nil {
			_ = pprof.WriteHeapProfile(f)
			_ = f.Close()
		}
	}
	return out
}

// serveOnePage issues one instrumented page view as the given client.
func serveOnePage(client *http.Client, base, ip string, page int) error {
	req, err := http.NewRequest(http.MethodGet, base+"/page"+strconv.Itoa(page%8)+".html", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Forwarded-For", ip)
	req.Header.Set("User-Agent", "Mozilla/5.0 (bench)")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// appendClientIP renders the id as a distinct 10.x.y.z address.
func appendClientIP(dst []byte, id uint32) []byte {
	dst = append(dst, "10."...)
	dst = strconv.AppendUint(dst, uint64(id>>16&255), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(id>>8&255), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(id&255), 10)
	return dst
}

// readRSS parses VmRSS from /proc/self/status; 0 where unavailable.
func readRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// JSON renders the result as indented JSON (the BENCH_serve.json artifact).
func (r ServeResult) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// Format renders the result as text.
func (r ServeResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Serve-path saturation (localhost HTTP, per-connection Prepared reuse)\n")
	fmt.Fprintf(&sb, "  distinct clients:       %d (%d requests, %d errors)\n",
		r.Clients, r.Requests, r.Errors)
	fmt.Fprintf(&sb, "  throughput:             %.0f req/s over %.1fs\n",
		r.RequestsPerSec, r.DurationSec)
	fmt.Fprintf(&sb, "  latency:                p50 %.0fus  p90 %.0fus  p99 %.0fus\n",
		r.P50LatencyUs, r.P90LatencyUs, r.P99LatencyUs)
	fmt.Fprintf(&sb, "  memory:                 %.1f MiB RSS, %.1f MiB engine estimate, %d live sessions\n",
		float64(r.RSSBytes)/(1<<20), float64(r.EngineBytes)/(1<<20), r.LiveSessions)
	fmt.Fprintf(&sb, "  bytes/session:          %d (engine estimate / live sessions), intern hit rate %.1f%%\n",
		r.BytesPerSess, r.InternHitRate*100)
	fmt.Fprintf(&sb, "  pages instrumented:     %d\n", r.PagesServed)
	return sb.String()
}
