package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/core"
	"botdetect/internal/proxy"
	"botdetect/internal/rng"
)

// ServeConfig sizes the serve-path saturation run. The zero value is usable:
// every field has a default chosen so the run exercises ≥100k distinct
// clients over real localhost HTTP in a few seconds of wall clock.
type ServeConfig struct {
	// Clients is the number of distinct client identities driven through
	// the proxy (default 100_000). Each client issues a heavy-tailed number
	// of page views, so total requests exceed Clients.
	Clients int
	// Workers is the number of concurrent driver goroutines (default 16).
	Workers int
	// Seed drives the arrival process and per-client page counts.
	Seed uint64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Clients <= 0 {
		c.Clients = 100_000
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Seed == 0 {
		c.Seed = 2006
	}
	return c
}

// ServeResult is the saturation report for the zero-copy serve path: a real
// HTTP server (with proxy.ConnContext installed, exactly as cmd/botproxy
// deploys it) is hammered over localhost by a keep-alive/short-connection
// client mix with heavy-tailed per-client page counts, and throughput,
// latency quantiles, memory, and session-table size are read back.
type ServeResult struct {
	Clients        int     `json:"distinct_clients"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	DurationSec    float64 `json:"duration_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50LatencyUs   float64 `json:"p50_latency_us"`
	P90LatencyUs   float64 `json:"p90_latency_us"`
	P99LatencyUs   float64 `json:"p99_latency_us"`
	RSSBytes       int64   `json:"rss_bytes"`
	LiveSessions   int     `json:"live_sessions"`
	PagesServed    int64   `json:"pages_instrumented"`
}

// serveOriginPage is the synthetic origin document; small enough that the
// run measures the instrumentation pipeline rather than kernel copy cost.
var serveOriginPage = []byte("<html><head><title>bench</title></head>" +
	"<body><h1>serve bench</h1><p>payload paragraph one</p>" +
	"<p>payload paragraph two</p></body></html>")

var serveOriginCT = []string{"text/html; charset=utf-8"}

// ServeBench runs the saturation workload against a live localhost server.
func ServeBench(cfg ServeConfig) ServeResult {
	cfg = cfg.withDefaults()

	det := core.New(core.Config{Seed: cfg.Seed, ObfuscateJS: true})
	mw := proxy.New(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header()["Content-Type"] = serveOriginCT
		_, _ = w.Write(serveOriginPage)
	}), proxy.Config{Engine: det, TrustForwardedFor: true})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeResult{}
	}
	srv := &http.Server{
		Handler:     mw,
		ConnContext: proxy.ConnContext,
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Client mix: most drivers hold keep-alive connections (the CDN/browser
	// case the per-connection Prepared reuse targets); a quarter disable
	// keep-alive so the cold per-request path stays in the measurement.
	keepAlive := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	oneShot := &http.Transport{DisableKeepAlives: true}
	defer keepAlive.CloseIdleConnections()

	var (
		requests atomic.Int64
		errors   atomic.Int64
		next     atomic.Int64
		mu       sync.Mutex
		lat      []float64
		wg       sync.WaitGroup
	)

	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(cfg.Seed).Fork("serve-worker").Fork(strconv.Itoa(w))
			tr := keepAlive
			if w%4 == 3 {
				tr = oneShot
			}
			client := &http.Client{Transport: tr}
			local := make([]float64, 0, 4*cfg.Clients/cfg.Workers)
			var ipBuf [32]byte
			for {
				id := next.Add(1) - 1
				if id >= int64(cfg.Clients) {
					break
				}
				// Heavy-tailed session length: most clients view a page
				// or two, a fat tail crawls dozens (Pareto alpha 1.3).
				pages := int(r.Pareto(1, 1.3))
				if pages > 48 {
					pages = 48
				}
				ip := appendClientIP(ipBuf[:0], uint32(id))
				for p := 0; p < pages; p++ {
					t0 := time.Now()
					if err := serveOnePage(client, base, string(ip), p); err != nil {
						errors.Add(1)
						continue
					}
					local = append(local, float64(time.Since(t0).Nanoseconds())/1e3)
					requests.Add(1)
				}
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(lat)
	q := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}

	out := ServeResult{
		Clients:      cfg.Clients,
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		DurationSec:  elapsed.Seconds(),
		P50LatencyUs: q(0.50),
		P90LatencyUs: q(0.90),
		P99LatencyUs: q(0.99),
		RSSBytes:     readRSS(),
		LiveSessions: det.SessionCount(),
		PagesServed:  det.Stats().PagesInstrumented,
	}
	if elapsed > 0 {
		out.RequestsPerSec = float64(out.Requests) / elapsed.Seconds()
	}
	return out
}

// serveOnePage issues one instrumented page view as the given client.
func serveOnePage(client *http.Client, base, ip string, page int) error {
	req, err := http.NewRequest(http.MethodGet, base+"/page"+strconv.Itoa(page%8)+".html", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Forwarded-For", ip)
	req.Header.Set("User-Agent", "Mozilla/5.0 (bench)")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// appendClientIP renders the id as a distinct 10.x.y.z address.
func appendClientIP(dst []byte, id uint32) []byte {
	dst = append(dst, "10."...)
	dst = strconv.AppendUint(dst, uint64(id>>16&255), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(id>>8&255), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(id&255), 10)
	return dst
}

// readRSS parses VmRSS from /proc/self/status; 0 where unavailable.
func readRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// JSON renders the result as indented JSON (the BENCH_serve.json artifact).
func (r ServeResult) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// Format renders the result as text.
func (r ServeResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Serve-path saturation (localhost HTTP, per-connection Prepared reuse)\n")
	fmt.Fprintf(&sb, "  distinct clients:       %d (%d requests, %d errors)\n",
		r.Clients, r.Requests, r.Errors)
	fmt.Fprintf(&sb, "  throughput:             %.0f req/s over %.1fs\n",
		r.RequestsPerSec, r.DurationSec)
	fmt.Fprintf(&sb, "  latency:                p50 %.0fus  p90 %.0fus  p99 %.0fus\n",
		r.P50LatencyUs, r.P90LatencyUs, r.P99LatencyUs)
	fmt.Fprintf(&sb, "  memory:                 %.1f MiB RSS, %d live sessions\n",
		float64(r.RSSBytes)/(1<<20), r.LiveSessions)
	fmt.Fprintf(&sb, "  pages instrumented:     %d\n", r.PagesServed)
	return sb.String()
}
