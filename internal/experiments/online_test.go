package experiments

import (
	"strings"
	"testing"
)

// TestOnlineLoopEndToEnd is the end-to-end proof of the online training
// loop: a CoDeeN-mix workload is served, the fleet's labelled outcomes are
// aggregated and a model retrained from them, the model is hot-swapped onto
// a live fleet serving a held-out (shifted) mix, and the resulting serving
// verdicts must be at least as accurate as the offline AdaBoost baseline on
// the very same held-out sessions.
func TestOnlineLoopEndToEnd(t *testing.T) {
	r := OnlineLoop(Scale{Sessions: 300, Seed: 2006})

	if r.TrainingSessions < 50 || r.HeldOutSessions < 50 {
		t.Fatalf("workloads too small: train=%d heldout=%d", r.TrainingSessions, r.HeldOutSessions)
	}
	if r.SelfLabelled == 0 {
		t.Fatal("serving engines collected no self-labelled outcomes")
	}
	if r.OutcomesTotal <= r.SelfLabelled {
		t.Fatal("ground-truth labels were not fed back into the outcome buffer")
	}
	if r.ModelRounds == 0 {
		t.Fatal("retraining produced no model")
	}
	if r.OnlineAccuracy < 0.85 {
		t.Fatalf("online chain accuracy %.3f below sanity floor", r.OnlineAccuracy)
	}
	// The acceptance criterion: the online loop (serve → label → retrain →
	// hot-swap) must not lose to the offline experiments baseline.
	if r.OnlineAccuracy < r.OfflineMLAccuracy {
		t.Fatalf("online chain accuracy %.3f < offline AdaBoost baseline %.3f",
			r.OnlineAccuracy, r.OfflineMLAccuracy)
	}

	out := r.Format()
	for _, want := range []string{"online chain", "offline AdaBoost baseline", "rules only", "hot-swapped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}
