package experiments

import (
	"fmt"
	"strings"

	"botdetect/internal/baselines"
	"botdetect/internal/core"
	"botdetect/internal/jsgen"
	"botdetect/internal/keystore"
	"botdetect/internal/metrics"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/workload"
)

// AblationDecoysResult measures how the number of decoy functions (m) drives
// the probability of catching robots that fetch beacon URLs without
// executing the script (Section 2.1's (m-1)/m argument).
type AblationDecoysResult struct {
	// Rows holds one entry per decoy count.
	Rows []DecoyRow
}

// DecoyRow is one decoy-count configuration.
type DecoyRow struct {
	// Decoys is m.
	Decoys int
	// SinglePickCatchRate is the measured catch probability for a robot that
	// fetches exactly one scraped beacon URL at random (expected m/(m+1)).
	SinglePickCatchRate float64
	// FetchAllCatchRate is the measured catch probability for a robot that
	// fetches every scraped URL (expected 1: it must hit a decoy).
	FetchAllCatchRate float64
	// Expected is the analytic m/(m+1) value.
	Expected float64
}

// AblationDecoys sweeps the decoy count and measures blind-fetcher catch
// rates directly against the key store and script generator.
func AblationDecoys(scale Scale) AblationDecoysResult {
	scale = scale.withDefaults()
	src := rng.New(scale.Seed ^ 0xdec0)
	gen := jsgen.NewGenerator()
	trials := scale.Sessions
	if trials < 100 {
		trials = 100
	}

	var out AblationDecoysResult
	for _, m := range []int{1, 2, 4, 8, 16} {
		store := keystore.New(keystore.Config{Decoys: m, Seed: src.Uint64()})
		caughtSingle, caughtAll := 0, 0
		for i := 0; i < trials; i++ {
			ip := fmt.Sprintf("10.77.%d.%d", i/250, i%250)
			iss := store.Issue(ip, "/index.html")
			script := gen.Script(jsgen.Params{
				RealKey: iss.Key, DecoyKeys: iss.Decoys, Obfuscate: true, Seed: src.Uint64(),
			})
			urls := scrapeBeaconKeys(script)
			if len(urls) == 0 {
				continue
			}
			// Single random pick.
			pick := urls[src.Intn(len(urls))]
			if store.Validate(ip, pick) != keystore.Human {
				caughtSingle++
			}
			// Fetch-all robot: caught as soon as any decoy is hit.
			ip2 := ip + ":all"
			iss2 := store.Issue(ip2, "/index.html")
			script2 := gen.Script(jsgen.Params{RealKey: iss2.Key, DecoyKeys: iss2.Decoys, Obfuscate: true, Seed: src.Uint64()})
			hitDecoy := false
			for _, k := range scrapeBeaconKeys(script2) {
				if store.Validate(ip2, k) == keystore.Decoy {
					hitDecoy = true
				}
			}
			if hitDecoy {
				caughtAll++
			}
		}
		out.Rows = append(out.Rows, DecoyRow{
			Decoys:              m,
			SinglePickCatchRate: float64(caughtSingle) / float64(trials),
			FetchAllCatchRate:   float64(caughtAll) / float64(trials),
			Expected:            float64(m) / float64(m+1),
		})
	}
	return out
}

// scrapeBeaconKeys extracts the beacon keys (file names without extension)
// from every beacon URL embedded in the script, the way a URL-scraping robot
// would.
func scrapeBeaconKeys(script string) []string {
	var keys []string
	for _, u := range scrapeBeaconURLs(script) {
		base := u
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if strings.HasSuffix(base, ".jpg") {
			keys = append(keys, strings.TrimSuffix(base, ".jpg"))
		}
	}
	return keys
}

// scrapeBeaconURLs decodes every String.fromCharCode/quoted URL in the script.
func scrapeBeaconURLs(script string) []string {
	var out []string
	rest := script
	for {
		idx := strings.Index(rest, ".src = ")
		if idx < 0 {
			return out
		}
		expr := rest[idx+len(".src = "):]
		if nl := strings.IndexByte(expr, '\n'); nl >= 0 {
			expr = expr[:nl]
		}
		expr = strings.TrimSuffix(strings.TrimSpace(expr), ";")
		if plus := strings.Index(expr, " + "); plus >= 0 {
			expr = expr[:plus]
		}
		if u := decodeStringExpr(expr); u != "" {
			out = append(out, u)
		}
		rest = rest[idx+len(".src = "):]
	}
}

func decodeStringExpr(expr string) string {
	expr = strings.TrimSpace(expr)
	if strings.HasPrefix(expr, "'") {
		if end := strings.Index(expr[1:], "'"); end >= 0 {
			return expr[1 : 1+end]
		}
		return ""
	}
	const fcc = "String.fromCharCode("
	if strings.HasPrefix(expr, fcc) {
		end := strings.Index(expr, ")")
		if end < 0 {
			return ""
		}
		var b strings.Builder
		for _, tok := range strings.Split(expr[len(fcc):end], ",") {
			tok = strings.TrimSpace(tok)
			n := 0
			for i := 0; i < len(tok); i++ {
				if tok[i] < '0' || tok[i] > '9' {
					return ""
				}
				n = n*10 + int(tok[i]-'0')
			}
			b.WriteByte(byte(n))
		}
		return b.String()
	}
	return ""
}

// Format renders the result as text.
func (r AblationDecoysResult) Format() string {
	t := metrics.NewTable("Ablation — decoy count vs. blind-fetcher catch rate",
		"Decoys (m)", "Single-pick catch rate", "Expected m/(m+1)", "Fetch-all catch rate")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Decoys),
			fmt.Sprintf("%.3f", row.SinglePickCatchRate),
			fmt.Sprintf("%.3f", row.Expected),
			fmt.Sprintf("%.3f", row.FetchAllCatchRate))
	}
	return t.Format()
}

// BaselineComparisonResult compares the paper's real-time detector against
// the related-work baselines on the same labelled workload.
type BaselineComparisonResult struct {
	Rows []BaselineRow
}

// BaselineRow is one detector's aggregate performance.
type BaselineRow struct {
	// Name identifies the detector.
	Name string
	// Accuracy, FPR and FNR are measured against ground truth over sessions
	// with more than ten requests.
	Accuracy float64
	FPR      float64
	FNR      float64
	// Undecided is the fraction of sessions the detector left unclassified.
	Undecided float64
}

// BaselineComparison evaluates the combining-rule detector, the heuristic
// robots.txt/User-Agent baseline, and a majority-robot default on one
// workload.
func BaselineComparison(scale Scale) BaselineComparisonResult {
	scale = scale.withDefaults()
	res := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed ^ 0xbc, RecordLogs: true})

	heur := baselines.NewHeuristic()
	for _, e := range res.Entries {
		heur.Observe(e)
	}

	var detectorCM, heuristicCM, defaultCM metrics.ConfusionMatrix
	undecided := 0
	considered := 0
	for _, s := range res.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue
		}
		considered++
		isHuman := s.IsHuman()

		switch s.Verdict.Class {
		case core.ClassUndecided:
			undecided++
			// Count undecided as "not classified human": conservative.
			detectorCM.Record(false, isHuman)
		default:
			detectorCM.Record(s.Verdict.Class == core.ClassHuman, isHuman)
		}

		heuristicSaysRobot := heur.IsRobot(session.Key{IP: s.Snapshot.Key.IP, UserAgent: s.Snapshot.Key.UserAgent})
		heuristicCM.Record(!heuristicSaysRobot, isHuman)

		defaultCM.Record(false, isHuman) // "everything is a robot"
	}

	mk := func(name string, cm metrics.ConfusionMatrix, und int) BaselineRow {
		row := BaselineRow{Name: name, Accuracy: cm.Accuracy(), FPR: cm.FalsePositiveRate(), FNR: cm.FalseNegativeRate()}
		if considered > 0 {
			row.Undecided = float64(und) / float64(considered)
		}
		return row
	}
	return BaselineComparisonResult{Rows: []BaselineRow{
		mk("combining rule (this paper)", detectorCM, undecided),
		mk("robots.txt / User-Agent heuristic", heuristicCM, 0),
		mk("all-robot default", defaultCM, 0),
	}}
}

// Format renders the result as text.
func (r BaselineComparisonResult) Format() string {
	t := metrics.NewTable("Baseline comparison (sessions with > 10 requests)",
		"Detector", "Accuracy (%)", "FPR (%)", "FNR (%)", "Undecided (%)")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.1f", row.Accuracy*100),
			fmt.Sprintf("%.1f", row.FPR*100),
			fmt.Sprintf("%.1f", row.FNR*100),
			fmt.Sprintf("%.1f", row.Undecided*100))
	}
	return t.Format()
}
