// Package experiments regenerates the paper's evaluation artifacts — Table 1
// (session breakdown), the Section 3.1 human-share bounds, Figure 2
// (detection latency CDFs), Figure 3 (abuse complaints timeline), Table 2
// (AdaBoost attributes), Figure 4 (AdaBoost accuracy vs. request prefix),
// the Section 3.2 overhead measurements, the CAPTCHA cross-validation, and
// the repository's own ablations (decoy count, feature importance, baseline
// comparison). Each experiment returns a structured result plus a formatted
// text rendering, and is driven both by cmd/botbench and by the top-level
// benchmark suite.
package experiments

import (
	"fmt"
	"strings"

	"botdetect/internal/detect/rules"
	"botdetect/internal/metrics"
	"botdetect/internal/session"
	"botdetect/internal/workload"
)

// Scale selects how much synthetic traffic an experiment generates.
type Scale struct {
	// Sessions is the number of agent sessions.
	Sessions int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultScale is used when a zero Scale is passed: big enough for stable
// shares, small enough to run in seconds.
func DefaultScale() Scale { return Scale{Sessions: 400, Seed: 2006} }

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Sessions <= 0 {
		s.Sessions = d.Sessions
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

// Table1Result is the regenerated session breakdown plus the combining-rule
// bounds of Section 3.1 and the ground-truth error rates the synthetic
// workload makes measurable.
type Table1Result struct {
	// Breakdown is the Table 1 signal breakdown over sessions with more than
	// ten requests.
	Breakdown rules.SetBreakdown
	// PaperCSS etc. are the shares reported in the paper, for side-by-side
	// printing.
	PaperCSS, PaperJS, PaperMouse, PaperCaptcha, PaperHidden, PaperUAMismatch float64
	// LowerBound, UpperBound, MaxFPR are the Section 3.1 bounds.
	LowerBound, UpperBound, MaxFPR float64
	// TrueHumanShare is the ground-truth share of human sessions.
	TrueHumanShare float64
	// TrueFPR is the measured false positive rate of the combining rule
	// against ground truth (classified human but actually robot / robots).
	TrueFPR float64
	// TrueFNR is the measured false negative rate against ground truth.
	TrueFNR float64
	// TotalSessions is the number of sessions considered.
	TotalSessions int
}

// Table1 regenerates Table 1 and the Section 3.1 bounds from a synthetic
// CoDeeN-mix workload.
func Table1(scale Scale) Table1Result {
	scale = scale.withDefaults()
	res := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed})
	return table1From(res)
}

func table1From(res *workload.Result) Table1Result {
	snaps := res.Snapshots()
	b := rules.Breakdown(snaps, 10)

	var cm metrics.ConfusionMatrix
	humans := 0
	considered := 0
	for _, s := range res.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue
		}
		considered++
		if s.IsHuman() {
			humans++
		}
		cm.Record(rules.InHumanSet(s.Snapshot), s.IsHuman())
	}
	out := Table1Result{
		Breakdown:       b,
		PaperCSS:        0.289,
		PaperJS:         0.271,
		PaperMouse:      0.223,
		PaperCaptcha:    0.091,
		PaperHidden:     0.010,
		PaperUAMismatch: 0.007,
		LowerBound:      b.HumanLowerBound(),
		UpperBound:      b.HumanUpperBound(),
		MaxFPR:          b.MaxFalsePositiveRate(),
		TotalSessions:   b.Total,
		TrueFPR:         cm.FalsePositiveRate(),
		TrueFNR:         cm.FalseNegativeRate(),
	}
	if considered > 0 {
		out.TrueHumanShare = float64(humans) / float64(considered)
	}
	return out
}

// Format renders the result as text.
func (r Table1Result) Format() string {
	var sb strings.Builder
	t := metrics.NewTable("Table 1 — session breakdown (sessions with > 10 requests)",
		"Description", "# of Sessions", "Measured %", "Paper %")
	row := func(name string, n int, measured, paper float64) {
		t.AddRow(name, fmt.Sprintf("%d", n), metrics.Pct(measured), metrics.Pct(paper))
	}
	b := r.Breakdown
	row("Downloaded CSS", b.CSS, b.CSSFraction(), r.PaperCSS)
	row("Executed JavaScript", b.JS, b.JSFraction(), r.PaperJS)
	row("Mouse movement detected", b.Mouse, b.MouseFraction(), r.PaperMouse)
	row("Passed CAPTCHA test", b.Captcha, b.CaptchaFraction(), r.PaperCaptcha)
	row("Followed hidden links", b.Hidden, b.HiddenFraction(), r.PaperHidden)
	row("Browser type mismatch", b.UAMismatch, b.UAMismatchFraction(), r.PaperUAMismatch)
	t.AddRow("Total sessions", fmt.Sprintf("%d", b.Total), "100.0", "100.0")
	sb.WriteString(t.Format())
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "Human-share lower bound (mouse):   %s%% (paper 22.3%%)\n", metrics.Pct(r.LowerBound))
	fmt.Fprintf(&sb, "Human-share upper bound (S_H):     %s%% (paper 24.2%%)\n", metrics.Pct(r.UpperBound))
	fmt.Fprintf(&sb, "Max false positive rate (bound):   %s%% (paper 2.4%%)\n", metrics.Pct(r.MaxFPR))
	fmt.Fprintf(&sb, "Ground-truth human share:          %s%%\n", metrics.Pct(r.TrueHumanShare))
	fmt.Fprintf(&sb, "Ground-truth FPR of S_H rule:      %s%%\n", metrics.Pct(r.TrueFPR))
	fmt.Fprintf(&sb, "Ground-truth FNR of S_H rule:      %s%%\n", metrics.Pct(r.TrueFNR))
	return sb.String()
}

// CaptchaCrossResult cross-validates the instrumentation against
// CAPTCHA-verified humans (Section 3.1): among sessions that passed the
// CAPTCHA, the share that executed JavaScript and the share that fetched the
// stylesheet. The gap is the JavaScript-disabled population.
type CaptchaCrossResult struct {
	// CaptchaSessions is the number of CAPTCHA-passing sessions.
	CaptchaSessions int
	// RanJS and FetchedCSS are shares of CaptchaSessions.
	RanJS      float64
	FetchedCSS float64
	// JSDisabledShare is FetchedCSS − RanJS, the paper's 3.4%.
	JSDisabledShare float64
	// PaperRanJS, PaperFetchedCSS are the published values.
	PaperRanJS, PaperFetchedCSS float64
}

// CaptchaCross regenerates the CAPTCHA cross-validation numbers.
func CaptchaCross(scale Scale) CaptchaCrossResult {
	scale = scale.withDefaults()
	res := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed ^ 0xc4})
	return captchaCrossFrom(res)
}

func captchaCrossFrom(res *workload.Result) CaptchaCrossResult {
	out := CaptchaCrossResult{PaperRanJS: 0.958, PaperFetchedCSS: 0.992}
	js, css := 0, 0
	for _, s := range res.Sessions {
		if !s.Snapshot.Has(session.SignalCaptcha) {
			continue
		}
		out.CaptchaSessions++
		if s.Snapshot.Has(session.SignalJS) {
			js++
		}
		if s.Snapshot.Has(session.SignalCSS) {
			css++
		}
	}
	if out.CaptchaSessions > 0 {
		out.RanJS = float64(js) / float64(out.CaptchaSessions)
		out.FetchedCSS = float64(css) / float64(out.CaptchaSessions)
	}
	out.JSDisabledShare = out.FetchedCSS - out.RanJS
	return out
}

// Format renders the result as text.
func (r CaptchaCrossResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CAPTCHA cross-validation (%d CAPTCHA-verified sessions)\n", r.CaptchaSessions)
	fmt.Fprintf(&sb, "  executed JavaScript: %s%% (paper 95.8%%)\n", metrics.Pct(r.RanJS))
	fmt.Fprintf(&sb, "  fetched stylesheet:  %s%% (paper 99.2%%)\n", metrics.Pct(r.FetchedCSS))
	fmt.Fprintf(&sb, "  JavaScript disabled: %s%% (paper ~3.4%%)\n", metrics.Pct(r.JSDisabledShare))
	return sb.String()
}
