package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"botdetect/internal/telemetry"
	"botdetect/internal/workload"
)

// TelemetryStage summarises one serve-path stage histogram after a
// measurement run: how often the stage ran and where its latency
// distribution sits. Times are microseconds; quantiles are bucket upper
// bounds (the histogram's buckets are powers of two of a microsecond), so
// they are conservative estimates.
type TelemetryStage struct {
	Stage    string  `json:"stage"`
	Count    int64   `json:"count"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P90Us    float64 `json:"p90_us"`
	P99Us    float64 `json:"p99_us"`
	TotalsMs float64 `json:"total_ms"`
}

// TelemetryResult is the observability cost/coverage report: a full
// CoDeeN-style workload is driven through an instrumented fleet and the
// stage histograms and hot counters are read back off the shared telemetry
// registry — the same data a Prometheus scrape of a live fleet would see.
type TelemetryResult struct {
	Sessions           int              `json:"sessions"`
	Requests           int64            `json:"requests"`
	PagesInstrumented  int64            `json:"pages_instrumented"`
	BeaconRequests     int64            `json:"beacon_requests"`
	ClassifyCacheHits  int64            `json:"classify_cache_hits"`
	ClassifyRecomputes int64            `json:"classify_recomputes"`
	CacheHitRate       float64          `json:"cache_hit_rate"`
	Stages             []TelemetryStage `json:"stages"`
}

// TelemetryBench runs the workload and reads the fleet's telemetry back.
func TelemetryBench(scale Scale) TelemetryResult {
	scale = scale.withDefaults()
	res := workload.Run(workload.Config{
		Sessions:   scale.Sessions,
		WithPolicy: true,
		Seed:       scale.Seed ^ 0x7e1e,
	})
	tel := res.Network.Telemetry()

	out := TelemetryResult{
		Sessions: scale.Sessions,
		Requests: res.Network.TotalStats().Requests,
	}
	stats := res.Network.EngineStats()
	out.PagesInstrumented = stats.PagesInstrumented
	out.BeaconRequests = res.Network.TotalStats().InstrumentationHits
	out.ClassifyCacheHits = tel.ClassifyCacheHits.Value()
	out.ClassifyRecomputes = tel.ClassifyRecomputes.Value()
	if n := out.ClassifyCacheHits + out.ClassifyRecomputes; n > 0 {
		out.CacheHitRate = float64(out.ClassifyCacheHits) / float64(n)
	}

	stage := func(name string, h *telemetry.Histogram) {
		s := h.Snapshot()
		out.Stages = append(out.Stages, TelemetryStage{
			Stage:    name,
			Count:    s.Count,
			MeanUs:   float64(s.Mean().Nanoseconds()) / 1e3,
			P50Us:    float64(s.Quantile(0.50).Nanoseconds()) / 1e3,
			P90Us:    float64(s.Quantile(0.90).Nanoseconds()) / 1e3,
			P99Us:    float64(s.Quantile(0.99).Nanoseconds()) / 1e3,
			TotalsMs: float64(s.Sum) / 1e6,
		})
	}
	stage(telemetry.StagePrepare, tel.Prepare)
	stage(telemetry.StageKeystoreIssue, tel.KeystoreIssue)
	stage(telemetry.StageBeacon, tel.Beacon)
	stage(telemetry.StageClassify, tel.Classify)
	stage(telemetry.StageRewrite, tel.Rewrite)
	stage(telemetry.StageProxyRequest, tel.ProxyRequest)
	return out
}

// JSON renders the result as indented JSON (the BENCH_telemetry.json
// artifact CI archives alongside the Go benchmark output).
func (r TelemetryResult) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// Format renders the result as text.
func (r TelemetryResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Telemetry (serve-path stage latencies from the shared fleet registry)\n")
	fmt.Fprintf(&sb, "  sessions driven:        %d (%d requests, %d pages instrumented, %d beacons)\n",
		r.Sessions, r.Requests, r.PagesInstrumented, r.BeaconRequests)
	fmt.Fprintf(&sb, "  verdict cache:          %d hits / %d recomputes (%.1f%% hit rate)\n",
		r.ClassifyCacheHits, r.ClassifyRecomputes, 100*r.CacheHitRate)
	fmt.Fprintf(&sb, "  %-24s %10s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50", "p90", "p99")
	for _, s := range r.Stages {
		if s.Count == 0 {
			fmt.Fprintf(&sb, "  %-24s %10d %10s %10s %10s %10s\n", s.Stage, 0, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "  %-24s %10d %9.1fus %9.1fus %9.1fus %9.1fus\n",
			s.Stage, s.Count, s.MeanUs, s.P50Us, s.P90Us, s.P99Us)
	}
	return sb.String()
}

// ShapeHolds reports whether the observability claims hold on this run: the
// instrumented stages actually fired, and the stage timings stayed in the
// microsecond regime the zero-allocation design targets.
func (r TelemetryResult) ShapeHolds() bool {
	fired := 0
	for _, s := range r.Stages {
		if s.Count > 0 {
			fired++
			if s.Stage == telemetry.StagePrepare && s.MeanUs > 1000 {
				return false
			}
		}
	}
	return fired >= 3 && r.PagesInstrumented > 0
}
