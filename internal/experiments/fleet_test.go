package experiments

import "testing"

// TestFleetBenchHeadline runs a reduced fleet experiment end to end: the
// coordinated crawler must evade every isolated engine yet be blocked
// fleet-wide, the node kill must lose nothing acked, and humans must never be
// refused.
func TestFleetBenchHeadline(t *testing.T) {
	res := FleetBench(FleetConfig{Crawlers: 8, Humans: 4, Seed: 7})
	if res.IsolatedCrawlersBlocked != 0 || res.IsolatedRobotVerdicts != 0 {
		t.Fatalf("isolated engines caught the distributed crawler: %+v", res)
	}
	if res.FleetCrawlersBlocked != res.Crawlers {
		t.Fatalf("fleet blocked %d/%d crawlers", res.FleetCrawlersBlocked, res.Crawlers)
	}
	if res.FleetRobotVerdicts != res.Crawlers {
		t.Fatalf("fleet derived %d/%d robot verdicts", res.FleetRobotVerdicts, res.Crawlers)
	}
	if res.HumansBlocked != 0 {
		t.Fatalf("%d human requests refused", res.HumansBlocked)
	}
	if res.VerdictsLostBeyondBound != 0 {
		t.Fatalf("node kill lost %d verdicts beyond the acked bound", res.VerdictsLostBeyondBound)
	}
	if !res.MinorityIsolated {
		t.Fatal("partitioned minority never degraded to isolated mode")
	}
	if !res.ModelPublished {
		t.Fatal("model publication did not reach the whole fleet")
	}
	if res.BlockedOnRestartedNode != res.Crawlers {
		t.Fatalf("restarted node restored %d/%d blocks", res.BlockedOnRestartedNode, res.Crawlers)
	}
}
