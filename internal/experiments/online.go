package experiments

import (
	"fmt"
	"strings"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/cdn"
	"botdetect/internal/clock"
	"botdetect/internal/core"
	"botdetect/internal/detect"
	"botdetect/internal/detect/rules"
	"botdetect/internal/features"
	"botdetect/internal/metrics"
	"botdetect/internal/workload"
)

// OnlineLoopResult is the end-to-end evaluation of the online training loop:
// a serving fleet accumulates labelled outcomes (CAPTCHA and beacon
// confirmations plus workload ground-truth labels), retrains the AdaBoost
// model from them, hot-swaps it onto a fleet serving a held-out mix while
// traffic flows, and is scored against the offline-trained
// machine-learning baseline on the very same held-out sessions.
type OnlineLoopResult struct {
	// TrainingSessions and HeldOutSessions count labelled sessions (> 10
	// requests) in the two workloads.
	TrainingSessions int
	HeldOutSessions  int
	// SelfLabelled is the number of outcomes the serving engines collected
	// on their own (CAPTCHA passes, beacon-confirmed input events, decoy /
	// replay / hidden-link / forged-UA hits) during the training run.
	SelfLabelled int
	// OutcomesTotal is the full training-set size after workload
	// ground-truth labels were fed back.
	OutcomesTotal int
	// ModelRounds is the boosting rounds of the hot-swapped model.
	ModelRounds int
	// SwapAt is the virtual time into the held-out run at which the model
	// was published to the serving fleet.
	SwapAt time.Duration
	// OnlineAccuracy/FPR/FNR score the held-out run's own verdicts — the
	// full serving chain (direct evidence → hot-swapped model → browser
	// test) — against ground truth.
	OnlineAccuracy float64
	OnlineFPR      float64
	OnlineFNR      float64
	// OfflineMLAccuracy is the offline experiments baseline on the same
	// held-out sessions: an AdaBoost ensemble trained offline on the
	// training workload's ground-truth examples, applied alone.
	OfflineMLAccuracy float64
	// RulesOnlyAccuracy applies the rules-only serving chain to the same
	// held-out sessions, for reference.
	RulesOnlyAccuracy float64
}

// OnlineLoop closes the loop the tentpole architecture enables: serve,
// accumulate labelled outcomes, retrain, hot-swap, and measure on a held-out
// mix. The held-out workload uses a different seed and a shifted agent mix,
// so the comparison is out of distribution for both models.
func OnlineLoop(scale Scale) OnlineLoopResult {
	scale = scale.withDefaults()
	out := OnlineLoopResult{SwapAt: 30 * time.Second}

	// Phase 1 — serve the training mix. The fleet's engines label outcomes
	// from the instrumentation itself as the run progresses.
	trainRes := workload.Run(workload.Config{Sessions: scale.Sessions, Seed: scale.Seed ^ 0x0417})

	// Aggregate the fleet's self-collected outcomes, the way a deployment
	// pools per-node training material.
	agg := core.New(core.Config{OutcomeCapacity: 1 << 16})
	for _, node := range trainRes.Network.Nodes() {
		for _, ex := range node.Engine().Outcomes() {
			agg.RecordOutcomeVector(ex.X, ex.Human)
		}
	}
	out.SelfLabelled = agg.OutcomeCount()

	// Feed back workload ground truth (the paper's CAPTCHA-verified labels,
	// stood in by the simulator's known agent kinds), exactly as confirmed
	// abuse reports and verified humans would be fed back in production.
	for _, s := range trainRes.Sessions {
		if s.Snapshot.Counts.Total > 10 {
			agg.RecordOutcomeVector(s.Snapshot.Features, s.IsHuman())
			out.TrainingSessions++
		}
	}
	out.OutcomesTotal = agg.OutcomeCount()

	// Retrain from the accumulated outcomes; this also hot-swaps the model
	// into agg (unused further) and hands it to us for the fleet swap.
	model, err := agg.RetrainFromOutcomes(adaboost.Config{Rounds: 200})
	if err != nil {
		return out
	}
	out.ModelRounds = model.Rounds()

	// The offline experiments baseline: AdaBoost fitted the classic way, on
	// the training workload's ground-truth examples only.
	offline, offlineErr := adaboost.Train(groundTruthExamples(trainRes), adaboost.Config{Rounds: 200})

	// Phase 2 — serve a held-out, shifted mix and hot-swap the retrained
	// model onto the live fleet at a virtual half minute into the run.
	mix := workload.CoDeeNMix()
	mix.EmailHarvester, mix.ClickFraud = mix.ClickFraud, mix.EmailHarvester
	mix.ReferrerSpammer *= 0.8
	mix.SmartBot *= 1.5
	evalRes := workload.Run(workload.Config{
		Sessions: scale.Sessions,
		Seed:     scale.Seed ^ 0x0e7a,
		Mix:      mix,
		Prepare: func(net *cdn.Network, vc *clock.Virtual) {
			vc.Schedule(out.SwapAt, func(time.Time) { net.SetModel(model) })
		},
	})

	rulesOnly := rules.Serving(10, nil)
	var onlineCM, offlineCM, rulesCM metrics.ConfusionMatrix
	for _, s := range evalRes.Sessions {
		if s.Snapshot.Counts.Total <= 10 {
			continue
		}
		out.HeldOutSessions++
		isHuman := s.IsHuman()
		// Online: the verdict the serving chain itself produced (undecided
		// counted as robot, matching the other experiments).
		onlineCM.Record(s.Verdict.Class == detect.ClassHuman, isHuman)
		// Offline baseline: the offline model alone on the same session.
		if offlineErr == nil {
			offlineCM.Record(offline.Predict(s.Snapshot.Features), isHuman)
		}
		// Rules-only reference.
		if v, ok := rulesOnly.Detect(&s.Snapshot); ok {
			rulesCM.Record(v.Class == detect.ClassHuman, isHuman)
		} else {
			rulesCM.Record(false, isHuman)
		}
	}
	out.OnlineAccuracy = onlineCM.Accuracy()
	out.OnlineFPR = onlineCM.FalsePositiveRate()
	out.OnlineFNR = onlineCM.FalseNegativeRate()
	if offlineErr == nil {
		out.OfflineMLAccuracy = offlineCM.Accuracy()
	}
	out.RulesOnlyAccuracy = rulesCM.Accuracy()
	return out
}

// groundTruthExamples builds the offline training set the earlier
// experiments use: one example per labelled session with > 10 requests.
func groundTruthExamples(res *workload.Result) []features.Example {
	var out []features.Example
	for _, s := range res.Sessions {
		if s.Snapshot.Counts.Total > 10 {
			out = append(out, features.Example{X: s.Snapshot.Features, Human: s.IsHuman()})
		}
	}
	return out
}

// Format renders the result as text.
func (r OnlineLoopResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Online training loop — serve, label, retrain, hot-swap, re-measure\n")
	fmt.Fprintf(&sb, "  training sessions: %d (+%d self-labelled outcomes, %d total training examples)\n",
		r.TrainingSessions, r.SelfLabelled, r.OutcomesTotal)
	fmt.Fprintf(&sb, "  model: %d boosting rounds, hot-swapped %s into the held-out run\n", r.ModelRounds, r.SwapAt)
	t := metrics.NewTable("Held-out mix", "Configuration", "Accuracy (%)", "FPR (%)", "FNR (%)")
	t.AddRow("online chain (rules + hot-swapped model)",
		fmt.Sprintf("%.1f", r.OnlineAccuracy*100),
		fmt.Sprintf("%.1f", r.OnlineFPR*100),
		fmt.Sprintf("%.1f", r.OnlineFNR*100))
	t.AddRow("offline AdaBoost baseline", fmt.Sprintf("%.1f", r.OfflineMLAccuracy*100), "", "")
	t.AddRow("rules only", fmt.Sprintf("%.1f", r.RulesOnlyAccuracy*100), "", "")
	sb.WriteString(t.Format())
	fmt.Fprintf(&sb, "held-out sessions: %d\n", r.HeldOutSessions)
	return sb.String()
}
