package experiments

import (
	"fmt"
	"strings"

	"botdetect/internal/detect/rules"
	"botdetect/internal/metrics"
	"botdetect/internal/session"
	"botdetect/internal/workload"
)

// Figure2Result is the detection-latency study: for each detection signal,
// the CDF of the number of (client-generated) requests the session had made
// when the signal first fired.
type Figure2Result struct {
	// MouseCDF, CSSCDF, JSFileCDF are the three curves of Figure 2.
	MouseCDF  *metrics.CDF
	CSSCDF    *metrics.CDF
	JSFileCDF *metrics.CDF
	// Key quantiles quoted in the paper.
	Mouse80, Mouse95 float64 // paper: 20 and 57 requests
	CSS95, CSS99     float64 // paper: 19 and 48 requests
	// Series are plot-ready curves.
	Series []metrics.Series
}

// Figure2 regenerates the CDFs of requests needed to detect humans. Human
// sessions are made long enough that the latency distribution has a tail, as
// CoDeeN's did.
func Figure2(scale Scale) Figure2Result {
	scale = scale.withDefaults()
	res := workload.Run(workload.Config{
		Sessions:   scale.Sessions,
		Seed:       scale.Seed ^ 0xf2,
		Mix:        workload.CoDeeNMix(),
		HumanPages: 18,
		// A per-page input-event probability well below one stretches the
		// detection latency over several page views, reproducing the tail the
		// paper observed (80% of humans within 20 requests, 95% within 57).
		HumanMouseProbability: 0.35,
	})
	return figure2From(res)
}

func figure2From(res *workload.Result) Figure2Result {
	latencies := rules.DetectionLatencies(res.Snapshots(),
		session.SignalMouse, session.SignalCSS, session.SignalJSFile)
	out := Figure2Result{
		MouseCDF:  latencies[session.SignalMouse],
		CSSCDF:    latencies[session.SignalCSS],
		JSFileCDF: latencies[session.SignalJSFile],
	}
	out.Mouse80 = out.MouseCDF.Quantile(0.80)
	out.Mouse95 = out.MouseCDF.Quantile(0.95)
	out.CSS95 = out.CSSCDF.Quantile(0.95)
	out.CSS99 = out.CSSCDF.Quantile(0.99)
	out.Series = []metrics.Series{
		{Name: "CSS files", Points: out.CSSCDF.Points(25)},
		{Name: "Javascript files", Points: out.JSFileCDF.Points(25)},
		{Name: "Mouse events", Points: out.MouseCDF.Points(25)},
	}
	return out
}

// Format renders the result as text.
func (r Figure2Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — CDF of requests needed to detect humans\n")
	fmt.Fprintf(&sb, "  mouse events: 80%% detected within %.0f requests (paper 20), 95%% within %.0f (paper 57)\n", r.Mouse80, r.Mouse95)
	fmt.Fprintf(&sb, "  CSS files:    95%% detected within %.0f requests (paper 19), 99%% within %.0f (paper 48)\n", r.CSS95, r.CSS99)
	fmt.Fprintf(&sb, "  samples: mouse=%d css=%d js=%d\n\n", r.MouseCDF.Len(), r.CSSCDF.Len(), r.JSFileCDF.Len())
	for _, s := range r.Series {
		sb.WriteString(s.Format())
		sb.WriteString("\n")
	}
	return sb.String()
}

// ShapeHolds reports whether the qualitative claims of Figure 2 hold in the
// regenerated data: the CSS (browser test) signal fires in fewer requests
// than the mouse (human activity) signal at matched coverage, and both fire
// within a few tens of requests for the vast majority of sessions.
func (r Figure2Result) ShapeHolds() bool {
	if r.MouseCDF.Len() == 0 || r.CSSCDF.Len() == 0 {
		return false
	}
	if r.CSS95 > r.Mouse95 {
		return false
	}
	return r.Mouse95 <= 100 && r.CSS95 <= 60
}
