package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"botdetect/internal/adaboost"
	"botdetect/internal/features"
	"botdetect/internal/session"
)

// TestTelemetryStagesObserve verifies every instrumented serve-path stage
// actually reports: page preparation, keystore issue, beacon handling,
// classification (cache hit and recompute), rotation and retraining.
func TestTelemetryStagesObserve(t *testing.T) {
	e := New(Config{Seed: 21, ObfuscateJS: true})
	tel := e.Telemetry()

	_, inst := e.InstrumentPage("10.9.0.1", "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
	if tel.Prepare.Snapshot().Count == 0 {
		t.Fatal("Prepare histogram did not observe InstrumentPage")
	}
	if tel.KeystoreIssue.Snapshot().Count == 0 {
		t.Fatal("KeystoreIssue histogram did not observe the key issue")
	}

	if _, ok := e.HandleBeacon("10.9.0.1", "Firefox/1.5", inst.ScriptPath); !ok {
		t.Fatal("script path must be handled as instrumentation")
	}
	if tel.Beacon.Snapshot().Count == 0 {
		t.Fatal("Beacon histogram did not observe the script serve")
	}

	key := session.Key{IP: "10.9.0.1", UserAgent: "Firefox/1.5"}
	e.Classify(key)
	recomputes := tel.ClassifyRecomputes.Value()
	if recomputes == 0 {
		t.Fatal("first classification must recompute")
	}
	if tel.Classify.Snapshot().Count != recomputes {
		t.Fatalf("Classify histogram count %d != recomputes %d", tel.Classify.Snapshot().Count, recomputes)
	}
	e.Classify(key)
	if tel.ClassifyCacheHits.Value() == 0 {
		t.Fatal("second classification must hit the verdict cache")
	}

	e.RotateScripts()
	if tel.ScriptRotations.Value() != 1 {
		t.Fatalf("ScriptRotations = %d, want 1", tel.ScriptRotations.Value())
	}

	if _, err := e.RetrainFromOutcomes(adaboost.Config{Rounds: 4}); err == nil {
		t.Fatal("retrain without outcomes should fail")
	}
	if tel.TrainerErrors.Value() != 1 {
		t.Fatalf("TrainerErrors = %d, want 1", tel.TrainerErrors.Value())
	}
	for i := 0; i < 64; i++ {
		var v features.Vector
		v[0] = float64(i%2) * 0.9
		e.RecordOutcomeVector(v, i%2 == 0)
	}
	if _, err := e.RetrainFromOutcomes(adaboost.Config{Rounds: 4}); err != nil {
		t.Fatalf("retrain with outcomes failed: %v", err)
	}
	if tel.TrainerRetrains.Value() != 1 {
		t.Fatalf("TrainerRetrains = %d, want 1", tel.TrainerRetrains.Value())
	}

	// The scrape must include the engine collectors and the stage histograms.
	var sb strings.Builder
	if err := tel.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"botdetect_pages_instrumented_total 1",
		"botdetect_script_rotations_total 1",
		`botdetect_stage_duration_seconds_count{stage="prepare_instrumentation"} 1`,
		`botdetect_shard_sessions{shard="0"}`,
		"botdetect_model_epoch 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestScrapeVersusServing is the consistency hammer: continuous Prometheus
// scrapes race page serving, beacon handling, classification, script
// rotation and retraining. Under -race this proves the scrape path shares no
// unsynchronised state with the serve path; in any mode it checks totals
// only ever grow.
func TestScrapeVersusServing(t *testing.T) {
	e := New(Config{Seed: 23, ObfuscateJS: true})
	tel := e.Telemetry()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.8.0.%d", w)
			key := session.Key{IP: ip, UserAgent: "Firefox/1.5"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, inst := e.InstrumentPage(ip, "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
				e.HandleBeacon(ip, "Firefox/1.5", inst.ScriptPath)
				e.Classify(key)
				if i%50 == 0 {
					e.RecordOutcomeVector(features.Vector{0: float64(i%2) * 0.8}, i%2 == 0)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.RotateScripts()
			_, _ = e.RetrainFromOutcomes(adaboost.Config{Rounds: 2})
		}
	}()

	var lastPages, lastBeacons int64
	for i := 0; i < 100; i++ {
		if err := tel.Registry().WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		pages := e.Stats().PagesInstrumented
		beacons := tel.Beacon.Snapshot().Count
		if pages < lastPages || beacons < lastBeacons {
			t.Fatalf("totals went backwards: pages %d→%d beacons %d→%d",
				lastPages, pages, lastBeacons, beacons)
		}
		lastPages, lastBeacons = pages, beacons
	}
	close(stop)
	wg.Wait()
}
