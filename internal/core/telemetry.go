package core

import (
	"strconv"

	"botdetect/internal/session"
	"botdetect/internal/telemetry"
)

// Telemetry returns the engine's serve-path instruments; their Registry is
// what /__bd/metrics renders.
func (e *Engine) Telemetry() *telemetry.ServeMetrics { return e.tel }

// registerTelemetry adds the engine's scrape-time collectors to the
// telemetry registry: the existing atomic stat mirrors (engine, keystore),
// live-session and keystore gauges per shard, and the learning loop's state.
// Everything here reads state the engine already maintains — the serve path
// pays nothing for these families — and the collectors are labelled with the
// engine's node name so fleets sharing one registry stay tellable apart.
func (e *Engine) registerTelemetry() {
	reg := e.tel.Registry()
	nl := ""
	if e.cfg.TelemetryNode != "" {
		nl = telemetry.Label("node", e.cfg.TelemetryNode)
	}
	counter := func(name, labels, help string, v func() int64) {
		reg.CounterFunc(name, telemetry.Join(labels, nl), help, func() float64 { return float64(v()) })
	}

	counter("botdetect_pages_instrumented_total", "", "HTML pages rewritten with instrumentation.",
		e.stats.pagesInstrumented.Load)
	counter("botdetect_instrumentation_bytes_total", telemetry.Label("direction", "original"),
		"Page bytes before rewriting vs instrumentation bytes added.", e.stats.originalBytes.Load)
	counter("botdetect_instrumentation_bytes_total", telemetry.Label("direction", "added"),
		"Page bytes before rewriting vs instrumentation bytes added.", e.stats.addedBytes.Load)

	const beacons = "botdetect_beacon_requests_total"
	beaconHelp := "Intercepted instrumentation requests by kind."
	counter(beacons, telemetry.Label("kind", "mouse"), beaconHelp, e.stats.mouseBeacons.Load)
	counter(beacons, telemetry.Label("kind", "decoy"), beaconHelp, e.stats.decoyBeacons.Load)
	counter(beacons, telemetry.Label("kind", "replay"), beaconHelp, e.stats.replayBeacons.Load)
	counter(beacons, telemetry.Label("kind", "unknown"), beaconHelp, e.stats.unknownBeacons.Load)
	counter(beacons, telemetry.Label("kind", "exec"), beaconHelp, e.stats.execBeacons.Load)
	counter(beacons, telemetry.Label("kind", "css"), beaconHelp, e.stats.cssBeacons.Load)
	counter(beacons, telemetry.Label("kind", "script"), beaconHelp, e.stats.scriptServes.Load)
	counter(beacons, telemetry.Label("kind", "hidden"), beaconHelp, e.stats.hiddenHits.Load)
	counter(beacons, telemetry.Label("kind", "ua_report"), beaconHelp, e.stats.uaReports.Load)
	counter("botdetect_ua_mismatches_total", "", "JavaScript-reported agent strings contradicting the User-Agent header.",
		e.stats.uaMismatches.Load)

	counter("botdetect_sessions_ended_total", "", "Sessions ended (idle expiry, eviction, flush).",
		e.sessions.Ended)
	const evicted = "botdetect_sessions_evicted_total"
	evictHelp := "Sessions ended by reason: idle expiry, capacity eviction of an " +
		"anonymous (signal-free) session, capacity eviction of an evidence-bearing " +
		"session (tracker undersized), or flush."
	for _, r := range []session.EvictReason{
		session.EvictIdle, session.EvictCapacityAnonymous,
		session.EvictCapacityEvidence, session.EvictFlush,
	} {
		r := r
		counter(evicted, telemetry.Label("reason", r.String()), evictHelp,
			func() int64 { return e.sessions.EvictedByReason(r) })
	}
	const shed = "botdetect_load_shed_total"
	shedHelp := "Below-full admission decisions: pages served uninstrumented " +
		"pass-through while saturated, or with degraded instrumentation under pressure."
	counter(shed, telemetry.Label("mode", "passthrough"), shedHelp, e.stats.shedPassThrough.Load)
	counter(shed, telemetry.Label("mode", "degraded"), shedHelp, e.stats.shedDegraded.Load)
	counter("botdetect_keystore_keys_issued_total", "", "Real keys issued for rewritten pages.",
		func() int64 { return e.keys.Stats().Issued })
	const validations = "botdetect_keystore_validations_total"
	valHelp := "Beacon key validations by verdict."
	counter(validations, telemetry.Label("verdict", "human"), valHelp, func() int64 { return e.keys.Stats().HumanHits })
	counter(validations, telemetry.Label("verdict", "decoy"), valHelp, func() int64 { return e.keys.Stats().DecoyHits })
	counter(validations, telemetry.Label("verdict", "replayed"), valHelp, func() int64 { return e.keys.Stats().ReplayHits })
	counter(validations, telemetry.Label("verdict", "unknown"), valHelp, func() int64 { return e.keys.Stats().UnknownHits })
	counter("botdetect_keystore_expired_keys_total", "", "Issued keys dropped by TTL expiry.",
		func() int64 { return e.keys.Stats().ExpiredDropped })
	counter("botdetect_keystore_evicted_clients_total", "", "Client key tables evicted by the capacity bound.",
		func() int64 { return e.keys.Stats().EvictedClients })

	reg.GaugeFunc("botdetect_sessions_active", "Sessions currently tracked.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.sessions.Active())) })
	reg.GaugeFunc("botdetect_keystore_clients", "Client IPs with outstanding keys.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.keys.Clients())) })
	reg.GaugeFunc("botdetect_model_epoch", "Epoch of the published learned model (0 = rules only).",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.learned.Epoch())) })
	reg.GaugeFunc("botdetect_outcomes_buffered", "Labelled outcomes buffered for the online trainer.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.OutcomeCount())) })
	reg.GaugeFunc("botdetect_script_variants", "Precompiled script variants per rotation epoch.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.pool.Variants())) })
	reg.GaugeFunc("botdetect_load_state", "Engine load state: 0 normal, 1 pressured, 2 saturated.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.LoadState())) })
	reg.GaugeFunc("botdetect_load_occupancy", "Capacity fraction in use at the last load-state recomputation.",
		func(emit func(labels string, v float64)) { emit(nl, e.LoadOccupancy()) })
	reg.GaugeFunc("botdetect_memory_estimate_bytes", "Estimated live bytes in the session tracker, keystore and interner.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.MemoryEstimate())) })
	reg.GaugeFunc("botdetect_memory_bytes_per_session", "Estimated live engine bytes per tracked session.",
		func(emit func(labels string, v float64)) {
			if n := e.sessions.Active(); n > 0 {
				emit(nl, float64(e.MemoryEstimate())/float64(n))
			} else {
				emit(nl, 0)
			}
		})
	reg.GaugeFunc("botdetect_intern_entries", "Live canonical strings in the shared interner.",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.interner.Stats().Entries)) })
	reg.GaugeFunc("botdetect_intern_bytes", "Estimated interner footprint in bytes (strings plus table overhead).",
		func(emit func(labels string, v float64)) { emit(nl, float64(e.interner.MemoryEstimate())) })
	counter("botdetect_intern_lookups_total", telemetry.Label("result", "hit"),
		"Intern calls by result: hit (string already canonical) vs miss (new entry).",
		func() int64 { return e.interner.Stats().Hits })
	counter("botdetect_intern_lookups_total", telemetry.Label("result", "miss"),
		"Intern calls by result: hit (string already canonical) vs miss (new entry).",
		func() int64 { return e.interner.Stats().Misses })
	reg.GaugeFunc("botdetect_intern_hit_rate", "Fraction of Intern calls served from the canonical table.",
		func(emit func(labels string, v float64)) { emit(nl, e.interner.Stats().HitRate()) })
	if e.cfg.MemoryBudget > 0 {
		reg.GaugeFunc("botdetect_memory_budget_bytes", "Configured memory budget (Config.MemoryBudget).",
			func(emit func(labels string, v float64)) { emit(nl, float64(e.cfg.MemoryBudget)) })
	}

	// Per-shard occupancy gauges: the label strings are rendered once here so
	// a scrape only walks the shards. Session shards and keystore shards
	// share one label slice (the counts are always equal by construction).
	shards := e.sessions.ShardCount()
	shardLabels := make([]string, shards)
	for i := range shardLabels {
		shardLabels[i] = telemetry.Join(telemetry.Label("shard", strconv.Itoa(i)), nl)
	}
	reg.GaugeFunc("botdetect_shard_sessions", "Tracked sessions per tracker shard.",
		func(emit func(labels string, v float64)) {
			for i, l := range shardLabels {
				emit(l, float64(e.sessions.ShardActive(i)))
			}
		})
	reg.GaugeFunc("botdetect_shard_keystore_clients", "Client key tables per keystore shard.",
		func(emit func(labels string, v float64)) {
			for i, l := range shardLabels {
				emit(l, float64(e.keys.ShardClients(i)))
			}
		})
	reg.GaugeFunc("botdetect_shard_session_cap", "Per-shard session cap after occupancy rebalancing.",
		func(emit func(labels string, v float64)) {
			for i, l := range shardLabels {
				emit(l, float64(e.sessions.ShardCap(i)))
			}
		})
}
