package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"botdetect/internal/htmlmod"
)

const pageDoc = "<html><head><title>x</title></head><body><p>hello</p></body></html>"

// TestPreparePageMatchesPrepareInstrumentation proves the numeric zero-copy
// path is observationally identical to the legacy string path: same keys,
// same injected fragments, same cached script bodies.
func TestPreparePageMatchesPrepareInstrumentation(t *testing.T) {
	a := New(Config{Seed: 21, ObfuscateJS: true})
	b := New(Config{Seed: 21, ObfuscateJS: true})

	var ps PageState
	for i := 0; i < 40; i++ {
		ip := fmt.Sprintf("10.7.0.%d", i%5)
		page := fmt.Sprintf("/p%d.html", i)

		prepA, instA := a.PrepareInstrumentation(ip, "Firefox/1.5", page)
		outA := prepA.Rewrite([]byte(pageDoc))
		prepA.Release()

		prepB := b.PreparePage(ip, "Firefox/1.5", page, &ps)
		outB := prepB.Rewrite([]byte(pageDoc))
		prepB.Release() // caller-owned: must be a no-op

		if !bytes.Equal(outA.HTML, outB.HTML) {
			t.Fatalf("page %d: PreparePage HTML diverged from PrepareInstrumentation:\n%q\nvs\n%q", i, outA.HTML, outB.HTML)
		}
		got := ps.Keys().Issued()
		if got.Key != instA.Issued.Key || got.CSSToken != instA.Issued.CSSToken ||
			got.ScriptToken != instA.Issued.ScriptToken || got.HiddenToken != instA.Issued.HiddenToken ||
			fmt.Sprint(got.Decoys) != fmt.Sprint(instA.Issued.Decoys) {
			t.Fatalf("page %d: keys diverged: %+v vs %+v", i, got, instA.Issued)
		}

		respA, _ := a.HandleBeacon(ip, "Firefox/1.5", instA.ScriptPath)
		respB, _ := b.HandleBeacon(ip, "Firefox/1.5", instA.ScriptPath)
		if !bytes.Equal(respA.Body, respB.Body) {
			t.Fatalf("page %d: cached script bodies diverged", i)
		}
		respA.Done()
		respB.Done()
	}
}

// TestPrepareInstrumentationBatchMatchesSequential proves the batched
// keystore pass issues the same keys and composes the same fragments as
// one-at-a-time preparation.
func TestPrepareInstrumentationBatchMatchesSequential(t *testing.T) {
	seq := New(Config{Seed: 23, ObfuscateJS: true})
	bat := New(Config{Seed: 23, ObfuscateJS: true})

	pages := []string{"/a.html", "/b.html", "/c.html", "/d.html", "/e.html"}

	var wantHTML [][]byte
	var wantScripts []string
	for _, p := range pages {
		prep, inst := seq.PrepareInstrumentation("10.8.0.1", "Firefox/1.5", p)
		wantHTML = append(wantHTML, prep.Rewrite([]byte(pageDoc)).HTML)
		wantScripts = append(wantScripts, inst.ScriptPath)
		prep.Release()
	}

	preps, insts := bat.PrepareInstrumentationBatch("10.8.0.1", "Firefox/1.5", pages, nil)
	if len(preps) != len(pages) || len(insts) != len(pages) {
		t.Fatalf("batch returned %d preps, %d insts; want %d", len(preps), len(insts), len(pages))
	}
	for i, prep := range preps {
		if got := prep.Rewrite([]byte(pageDoc)).HTML; !bytes.Equal(got, wantHTML[i]) {
			t.Fatalf("page %d: batch HTML diverged from sequential", i)
		}
		if insts[i].ScriptPath != wantScripts[i] {
			t.Fatalf("page %d: batch script path %q, sequential %q", i, insts[i].ScriptPath, wantScripts[i])
		}
		prep.Release()
	}

	// Both engines must serve identical cached scripts for identical tokens.
	for _, path := range wantScripts {
		ra, _ := seq.HandleBeacon("10.8.0.1", "Firefox/1.5", path)
		rb, _ := bat.HandleBeacon("10.8.0.1", "Firefox/1.5", path)
		if !bytes.Equal(ra.Body, rb.Body) {
			t.Fatalf("script %q: batch body diverged from sequential", path)
		}
		ra.Done()
		rb.Done()
	}
}

// TestPreparePageZeroAlloc gates the zero-copy serve path at zero
// allocations per page view: numeric key issue, pooled script-buffer render,
// in-place fragment composition. MaxScripts is kept small so the cache
// reaches its eviction steady state (entry structs through the shard free
// list, body buffers through the refcount pool) within the warmup.
func TestPreparePageZeroAlloc(t *testing.T) {
	e := New(Config{Seed: 25, ObfuscateJS: true, Shards: 1, MaxScripts: 64})
	var ps PageState
	for i := 0; i < 600; i++ {
		prep := e.PreparePage("10.9.0.1", "Firefox/1.5", "/warm.html", &ps)
		_ = prep
	}
	allocs := testing.AllocsPerRun(300, func() {
		e.PreparePage("10.9.0.1", "Firefox/1.5", "/hot.html", &ps)
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	if allocs != 0 {
		t.Fatalf("PreparePage allocated %.2f/op, want 0", allocs)
	}
}

// TestScriptBufRefcountRace hammers script downloads against concurrent
// page preparation (which replaces and evicts cache entries, releasing
// their buffers) and script-pool rotation. MaxScripts is tiny so eviction
// churns constantly; the refcount must keep every served body immutable for
// as long as the reader holds it. Run with -race for the full proof; the
// snapshot comparison below catches reuse-while-reading even without it.
func TestScriptBufRefcountRace(t *testing.T) {
	e := New(Config{Seed: 27, ObfuscateJS: true, Shards: 1, MaxScripts: 8})
	stop := make(chan struct{})
	paths := make(chan string, 256)
	var wg sync.WaitGroup

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.10.0.%d", w)
			var ps PageState
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e.PreparePage(ip, "Firefox/1.5", "/", &ps)
				iss := ps.Keys().Issued()
				select {
				case paths <- e.cfg.BeaconPrefix + "/index_" + iss.ScriptToken + ".js":
				default:
				}
			}
		}(w)
	}

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.10.1.%d", r)
			var snap []byte
			for {
				var path string
				select {
				case <-stop:
					return
				case path = <-paths:
				}
				resp, ok := e.HandleBeacon(ip, "Firefox/1.5", path)
				if !ok || resp.Status != 200 {
					t.Errorf("script serve failed: ok=%v status=%d", ok, resp.Status)
					return
				}
				// Widen the window between read and release: a broken
				// refcount lets a concurrent PreparePage rewrite these bytes.
				snap = append(snap[:0], resp.Body...)
				runtime.Gosched()
				if !bytes.Equal(snap, resp.Body) {
					t.Error("script body mutated while a download held it")
					resp.Done()
					return
				}
				resp.Done()
			}
		}(r)
	}

	for i := 0; i < 100; i++ {
		e.RotateScripts()
		runtime.Gosched()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestStartRotator exercises both rotation triggers.
func TestStartRotator(t *testing.T) {
	e := New(Config{Seed: 29})
	before := e.Telemetry().ScriptRotations.Value()
	stop := e.StartRotator(5*time.Millisecond, 0)
	deadline := time.Now().Add(2 * time.Second)
	for e.Telemetry().ScriptRotations.Value() == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if e.Telemetry().ScriptRotations.Value() == before {
		t.Fatal("interval rotator never rotated")
	}

	// The inert configuration must return a working no-op stop.
	e.StartRotator(0, 0)()

	// Released Prepareds from the pooled wrapper recycle their PageStates;
	// sanity-check the pool round-trips one.
	prep, _ := e.PrepareInstrumentation("10.11.0.1", "Firefox/1.5", "/x.html")
	var got *htmlmod.Prepared = prep
	got.Release()
}
