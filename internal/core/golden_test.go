package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenPage and the request sequence below must not change: the golden file
// was captured from the pre-template-pool engine (PR 4), so this test proves
// the instrumentation fast path still emits byte-identical pages — same keys,
// same tokens, same injection fragments, same rewrite — from a fixed seed.
var goldenPage = []byte(`<html>
<head><title>golden</title><style>body { color: #000; }</style></head>
<body class="main">
<p>hello <a href="/a.html">next</a></p>
<script>var inline = 1;</script>
</body>
</html>`)

// TestInstrumentPageGoldenBytes replays a fixed-seed instrumentation
// sequence and compares every rewritten page (and the issued key/token
// paths) against the checked-in capture. Any drift in the keystore's RNG
// consumption, the injection composition or the rewriter shows up here as a
// byte diff. Shards is pinned to the capture-time default: the shard count
// now autotunes from GOMAXPROCS, and per-shard RNG streams (hence key
// digits) depend on it, so a machine-portable golden must fix it.
func TestInstrumentPageGoldenBytes(t *testing.T) {
	e := New(Config{Seed: 7, ObfuscateJS: true, Shards: 32})
	var got []byte
	for _, c := range []struct{ ip, pagePath string }{
		{"10.1.2.3", "/"},
		{"10.1.2.3", "/a.html"},
		{"10.9.8.7", "/"},
	} {
		html, inst := e.InstrumentPage(c.ip, "Firefox/1.5", c.pagePath, goldenPage)
		got = append(got, fmt.Sprintf("=== %s %s key=%s css=%s script=%s hidden=%s added=%d\n",
			c.ip, c.pagePath, inst.Issued.Key, inst.CSSPath, inst.ScriptPath, inst.HiddenPath, inst.AddedBytes)...)
		got = append(got, html...)
		got = append(got, '\n')
	}

	path := filepath.Join("testdata", "instrumented_golden.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("instrumented output drifted from the PR 4 golden capture\n--- got (%d bytes):\n%s\n--- want (%d bytes):\n%s",
			len(got), firstDiffContext(got, want), len(want), firstDiffContext(want, got))
	}
}

// firstDiffContext returns a window of a around its first difference from b.
func firstDiffContext(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo, hi := i-80, i+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
