package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/detect"
	"botdetect/internal/features"
	"botdetect/internal/logfmt"
	"botdetect/internal/session"
)

// trainTestModel fits a small separable model: high referrer share = human.
func trainTestModel(t testing.TB, rounds int) *adaboost.Model {
	t.Helper()
	var examples []features.Example
	for i := 0; i < 60; i++ {
		var v features.Vector
		if i%2 == 0 {
			v[features.ReferrerPct] = 0.7 + float64(i%10)/100
			examples = append(examples, features.Example{X: v, Human: true})
		} else {
			v[features.HTMLPct] = 0.8 + float64(i%10)/100
			examples = append(examples, features.Example{X: v, Human: false})
		}
	}
	m, err := adaboost.Train(examples, adaboost.Config{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetModelChangesVerdictAndInvalidatesCache(t *testing.T) {
	d := New(Config{Seed: 21})
	key := session.Key{IP: "10.4.0.1", UserAgent: "RefBot"}
	// A session past the threshold whose every request is a referrered image
	// fetch: the rules call it robot (no presentation objects), the learned
	// model below calls it human (high referrer share, no HTML).
	for i := 0; i < 12; i++ {
		d.ObserveRequest(logfmt.Entry{
			ClientIP: key.IP, UserAgent: key.UserAgent, Method: "GET",
			Path: fmt.Sprintf("/img/p%d.jpg", i), Status: 200, Referer: "http://h/prev.html",
			ContentType: "image/jpeg",
		})
	}
	v := d.Classify(key)
	if v.Class != ClassRobot {
		t.Fatalf("rules-only verdict = %+v", v)
	}
	// Classify again: the cached verdict must be identical.
	if v2 := d.Classify(key); v2 != v {
		t.Fatalf("cached verdict differs: %+v vs %+v", v2, v)
	}

	d.SetModel(trainTestModel(t, 40))
	v = d.Classify(key)
	if v.Class != ClassHuman {
		t.Fatalf("verdict after hot swap = %+v", v)
	}
	if d.Model() == nil {
		t.Fatal("Model() lost the published model")
	}

	// Unpublish: back to the behavioural rules.
	d.SetModel(nil)
	if v := d.Classify(key); v.Class != ClassRobot {
		t.Fatalf("verdict after unpublish = %+v", v)
	}

	// Direct evidence always outranks the model.
	d.SetModel(trainTestModel(t, 40))
	d.HandleBeacon(key.IP, key.UserAgent, d.Config().BeaconPrefix+"/hidden/xyz")
	if v := d.Classify(key); v.Class != ClassRobot || v.Confidence != Definite {
		t.Fatalf("direct evidence lost to the model: %+v", v)
	}
}

// TestModelHotSwapRace hammers Engine.SetModel concurrently with the full
// serving surface — ObserveRequest, Classify, Decide, HandleBeacon and
// retraining — proving (under -race) that model hot-swap takes no locks the
// read path can trip over and that cached verdicts never tear.
func TestModelHotSwapRace(t *testing.T) {
	d := New(Config{Seed: 33, Shards: 8})
	modelA := trainTestModel(t, 20)
	modelB := trainTestModel(t, 60)

	keys := make([]session.Key, 32)
	for i := range keys {
		keys[i] = session.Key{IP: fmt.Sprintf("10.5.%d.%d", i/8, i%8), UserAgent: "UA-" + string(rune('a'+i%16))}
	}
	// Seed every session past the classification threshold.
	for _, k := range keys {
		for i := 0; i < 12; i++ {
			d.ObserveRequest(logfmt.Entry{ClientIP: k.IP, UserAgent: k.UserAgent, Method: "GET",
				Path: fmt.Sprintf("/s%d.html", i), Status: 200, Referer: "http://h/x.html"})
		}
	}

	const iters = 1500
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Swapper: flips between two models, nil, and retrained-from-outcomes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			switch i % 4 {
			case 0:
				d.SetModel(modelA)
			case 1:
				d.SetModel(nil)
			case 2:
				d.SetModel(modelB)
			default:
				d.RecordOutcomeVector(features.Vector{features.ReferrerPct: 0.9}, true)
				d.RecordOutcomeVector(features.Vector{features.HTMLPct: 0.9}, false)
				_, _ = d.RetrainFromOutcomes(adaboost.Config{Rounds: 4, Thresholds: 4})
			}
		}
		stop.Store(true)
	}()

	// Readers and writers on the serving surface.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := keys[(seed+i)%len(keys)]
				switch i % 4 {
				case 0:
					v := d.Classify(k)
					if v.Class == ClassUndecided && v.Reason == "" {
						t.Error("torn verdict")
						return
					}
				case 1:
					d.ObserveRequest(logfmt.Entry{ClientIP: k.IP, UserAgent: k.UserAgent, Method: "GET",
						Path: "/r.html", Status: 200})
				case 2:
					if snap, v, ok := d.Decide(k); ok && snap.Counts.Total >= 10 && v.Class == ClassUndecided {
						t.Errorf("decided session came back undecided: %+v", v)
						return
					}
				default:
					d.HandleBeacon(k.IP, k.UserAgent, d.Config().BeaconPrefix+"/beacon.css")
				}
			}
		}(w)
	}
	wg.Wait()

	// The engine must still classify coherently after the storm.
	d.SetModel(modelA)
	for _, k := range keys {
		if v := d.Classify(k); v.Class == ClassUndecided {
			t.Fatalf("session %v undecided after %d requests", k, 12)
		}
	}
}

// TestClassifySteadyStateZeroAllocs pins the acceptance criterion that the
// cached, incrementally-featured classify path allocates nothing once a
// session's verdict is cached.
func TestClassifySteadyStateZeroAllocs(t *testing.T) {
	d := New(Config{Seed: 55})
	d.SetModel(trainTestModel(t, 40))
	key := session.Key{IP: "10.6.0.1", UserAgent: "Steady"}
	for i := 0; i < 15; i++ {
		d.ObserveRequest(logfmt.Entry{ClientIP: key.IP, UserAgent: key.UserAgent, Method: "GET",
			Path: fmt.Sprintf("/p%d.html", i), Status: 200, Referer: "http://h/x.html"})
	}
	d.Classify(key) // warm the cache

	if allocs := testing.AllocsPerRun(200, func() { d.Classify(key) }); allocs != 0 {
		t.Fatalf("steady-state Classify allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTrainerLoopRetrainsAndSwaps drives StartTrainer with real outcomes and
// waits for it to publish a model.
func TestTrainerLoopRetrainsAndSwaps(t *testing.T) {
	d := New(Config{Seed: 77})
	for i := 0; i < 40; i++ {
		var v features.Vector
		if i%2 == 0 {
			v[features.ReferrerPct] = 0.8
		} else {
			v[features.HTMLPct] = 0.9
		}
		d.RecordOutcomeVector(v, i%2 == 0)
	}
	stop := d.StartTrainer(time.Millisecond, 10, adaboost.Config{Rounds: 8})
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for d.Model() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Model() == nil {
		t.Fatal("trainer never published a model")
	}
	// The published model must reflect the outcomes' structure.
	if !d.Model().Predict(features.Vector{features.ReferrerPct: 0.8}) {
		t.Fatal("published model misclassifies the training structure")
	}
	if d.Learned().Epoch() == 0 {
		t.Fatal("model epoch did not advance")
	}
	_ = detect.Describe(d.Detector())
}
