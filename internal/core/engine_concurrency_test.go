package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/logfmt"
	"botdetect/internal/session"
)

// TestEngineConcurrentPipeline hammers every hot entry point of the engine —
// ObserveRequest, HandleBeacon (all beacon kinds), Classify, Session,
// Sessions, Stats — from parallel goroutines on OVERLAPPING session keys
// while two more goroutines run ExpireIdle and SweepStep. Run with -race;
// the final consistency checks catch lost updates.
func TestEngineConcurrentPipeline(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	e := New(Config{Seed: 42, Clock: vc, MinRequests: 5})
	now := vc.Now()

	const (
		workers = 8
		iters   = 300
		nKeys   = 12 // fewer keys than workers*2: heavy shard contention
	)
	keys := make([]session.Key, nKeys)
	instr := make([]Instrumented, nKeys)
	for i := range keys {
		keys[i] = session.Key{IP: fmt.Sprintf("10.9.0.%d", i), UserAgent: "Firefox/1.5"}
		_, instr[i] = e.InstrumentPage(keys[i].IP, keys[i].UserAgent, "/", []byte("<html><head></head><body></body></html>"))
	}
	prefix := e.Config().BeaconPrefix

	var aux, writers sync.WaitGroup
	stop := make(chan struct{})
	// Sweepers: a full-table batched pass and the amortized per-shard step.
	// They loop until the writers finish, so sweeps genuinely race the hot
	// path for the whole run.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.ExpireIdle(now)
				e.SweepStep(now)
			}
		}
	}()
	// Readers: snapshots, streaming, stats.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Sessions()
				e.StreamSessions(func(session.Snapshot) bool { return true })
				e.Stats()
				e.SessionCount()
			}
		}
	}()
	for g := 0; g < workers; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				k := keys[(g+i)%nKeys]
				in := instr[(g+i)%nKeys]
				e.ObserveRequest(logfmt.Entry{
					Time: now, ClientIP: k.IP, UserAgent: k.UserAgent,
					Method: "GET", Path: fmt.Sprintf("/p%d.html", i), Status: 200, Bytes: 100,
				})
				switch i % 5 {
				case 0:
					e.HandleBeacon(k.IP, k.UserAgent, in.CSSPath)
				case 1:
					e.HandleBeacon(k.IP, k.UserAgent, in.ScriptPath)
				case 2:
					e.HandleBeacon(k.IP, k.UserAgent, prefix+"/js/"+in.Issued.ScriptToken+".gif?ua="+session.NormalizeUA(k.UserAgent))
				case 3:
					e.HandleBeacon(k.IP, k.UserAgent, prefix+"/"+in.Issued.Key+".jpg")
				case 4:
					e.Classify(k)
					e.Session(k)
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	aux.Wait()

	// Nothing was idle (the virtual clock never advanced), so every session
	// must survive and every observed request must be accounted for.
	if e.SessionCount() != nKeys {
		t.Fatalf("SessionCount = %d, want %d", e.SessionCount(), nKeys)
	}
	var total int64
	e.StreamSessions(func(s session.Snapshot) bool {
		total += int64(s.Counts.Total)
		return true
	})
	if total != workers*iters {
		t.Fatalf("total observed = %d, want %d", total, workers*iters)
	}
	st := e.Stats()
	beacons := st.CSSBeacons + st.ScriptServes + st.ExecBeacons +
		st.MouseBeacons + st.ReplayBeacons + st.DecoyBeacons + st.UnknownBeacons
	want := int64(workers * iters * 4 / 5) // 4 of 5 branches issue a beacon
	if beacons != want {
		t.Fatalf("beacon stats sum = %d, want %d (stats %+v)", beacons, want, st)
	}
	// Each real key is consumed at most once across all goroutines.
	if st.MouseBeacons > int64(nKeys) {
		t.Fatalf("MouseBeacons = %d, want <= %d (real keys are single-use)", st.MouseBeacons, nKeys)
	}
}

// TestEngineConcurrentExpiryDelivers checks that sessions expired by the
// per-shard sweeps are reported exactly once through OnSessionEnd even when
// expiry races with observation of other keys.
func TestEngineConcurrentExpiryDelivers(t *testing.T) {
	vc := clock.NewVirtual(time.Time{})
	var mu sync.Mutex
	ended := map[session.Key]int{}
	e := New(Config{Seed: 7, Clock: vc, SessionIdleTimeout: time.Hour,
		OnSessionEnd: func(cs ClassifiedSession) {
			mu.Lock()
			ended[cs.Snapshot.Key]++
			mu.Unlock()
		}})
	start := vc.Now()
	const old = 64
	for i := 0; i < old; i++ {
		e.ObserveRequest(logfmt.Entry{Time: start, ClientIP: fmt.Sprintf("10.10.0.%d", i), UserAgent: "UA", Method: "GET", Path: "/a.html", Status: 200})
	}
	later := start.Add(2 * time.Hour)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.ObserveRequest(logfmt.Entry{Time: later, ClientIP: fmt.Sprintf("10.11.%d.%d", g, i%16), UserAgent: "UA", Method: "GET", Path: "/b.html", Status: 200})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < e.ShardCount(); i++ {
			e.SweepStep(later)
		}
	}()
	wg.Wait()
	e.ExpireIdle(later) // finish whatever the amortized pass raced past

	mu.Lock()
	defer mu.Unlock()
	expired := 0
	for k, n := range ended {
		if n != 1 {
			t.Fatalf("session %v reported %d times", k, n)
		}
		expired++
	}
	if expired != old {
		t.Fatalf("expired sessions reported = %d, want %d", expired, old)
	}
	if e.SessionCount() != 4*16 {
		t.Fatalf("active = %d, want %d", e.SessionCount(), 4*16)
	}
}
