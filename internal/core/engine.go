// Package core implements the paper's robot-detection system: dynamic page
// instrumentation (human activity detection plus standard-browser testing),
// per-session signal accumulation, and the on-line classification rule that
// separates human sessions from robot sessions
//
//	S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)
//
// The Engine is the concurrency facade over the detection pipeline: it owns
// the sharded session tracker, the sharded key store, a sharded cache of
// generated scripts and atomic counters, and fans every request out to
// exactly one shard of each, so the hot path (ObserveRequest, HandleBeacon)
// scales with cores instead of serialising on global mutexes. Reads
// (Classify, Session) are lock-free, and idle-session expiry is amortised
// shard by shard — there is no stop-the-world sweep.
//
// The Engine is transport-agnostic: callers (the HTTP proxy middleware in
// internal/proxy, the CoDeeN-scale simulator in internal/cdn, and the
// offline log analyzer) feed it page bodies and request observations and
// receive rewritten pages, beacon responses and per-session verdicts.
//
// Classification itself lives in the internal/detect layer: the engine owns
// a pluggable detect.Detector chain (direct evidence → learned model →
// behavioural browser test by default), caches one verdict per session
// keyed by the session's decision epoch and the model epoch, and closes the
// online-training loop — labelled outcomes accumulate as ground truth
// reveals itself, RetrainFromOutcomes fits a fresh AdaBoost ensemble, and
// SetModel hot-swaps it onto the read path with a single atomic store.
package core

import (
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"botdetect/internal/adaboost"
	"botdetect/internal/clock"
	"botdetect/internal/detect"
	"botdetect/internal/detect/rules"
	"botdetect/internal/features"
	"botdetect/internal/htmlmod"
	"botdetect/internal/intern"
	"botdetect/internal/jsgen"
	"botdetect/internal/keystore"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
	"botdetect/internal/shard"
	"botdetect/internal/telemetry"
)

// Class, Confidence and Verdict are defined by the decision layer; the
// aliases keep the engine's public surface stable for consumers that predate
// internal/detect.
type (
	// Class is the engine's decision about a session's traffic source.
	Class = detect.Class
	// Confidence qualifies a verdict.
	Confidence = detect.Confidence
	// Verdict is the classification of one session.
	Verdict = detect.Verdict
)

const (
	// ClassUndecided means the engine has not yet seen enough evidence.
	ClassUndecided = detect.ClassUndecided
	// ClassHuman means the traffic source is a human user.
	ClassHuman = detect.ClassHuman
	// ClassRobot means the traffic source is an automated agent.
	ClassRobot = detect.ClassRobot

	// Tentative verdicts may flip as more requests arrive.
	Tentative = detect.Tentative
	// Probable verdicts rest on behavioural or statistical evidence.
	Probable = detect.Probable
	// Definite verdicts rest on direct evidence (input events, decoy hits,
	// hidden-link fetches, CAPTCHA).
	Definite = detect.Definite
)

// ClassifiedSession pairs a finished session with its final verdict.
type ClassifiedSession struct {
	Snapshot session.Snapshot
	Verdict  Verdict
}

// Response is the body the caller should serve for an intercepted
// instrumentation request (beacon, generated stylesheet/script, hidden page).
type Response struct {
	// Status is the HTTP status code.
	Status int
	// ContentType is the response content type.
	ContentType string
	// Body is the response body.
	Body []byte
	// NoCache indicates the response must carry Cache-Control: no-cache,
	// no-store (always true for generated instrumentation objects).
	NoCache bool

	// script pins the refcounted body buffer for script downloads; Done
	// drops the reference once the caller has written Body.
	script *scriptBuf
	eng    *Engine
}

// Done releases the resources the response body pins — for script downloads,
// one reference on the cached script buffer. Call it exactly once, after Body
// has been written; it is a no-op on every other response (including the zero
// value), and skipping it is safe but forgoes buffer recycling: the reference
// count never reaches zero and the garbage collector reclaims the buffer
// instead of the pool.
func (r *Response) Done() {
	if r.script != nil {
		r.eng.releaseScriptBuf(r.script)
		r.script, r.eng = nil, nil
	}
}

// Config controls the Engine.
type Config struct {
	// BeaconPrefix is the path prefix reserved for instrumentation objects
	// (default "/__bd"). It should not collide with origin content.
	BeaconPrefix string
	// BeaconBase is an optional absolute URL prefix for beacons (scheme and
	// host); empty means site-relative beacons.
	BeaconBase string
	// Decoys is the number of decoy beacon functions per page (paper: m).
	Decoys int
	// KeyDigits is the length of generated keys in decimal digits.
	KeyDigits int
	// ObfuscateJS enables lexical obfuscation of the generated script.
	ObfuscateJS bool
	// ScriptVariants is the number of precompiled obfuscated script templates
	// per rotation epoch (default jsgen.DefaultVariants). Per page view the
	// engine picks one variant off its RNG stream and splices the page's keys
	// in, so generation is a pooled copy instead of a rebuild; RotateScripts
	// recompiles the whole set.
	ScriptVariants int
	// MinRequests is the number of requests a session must reach before the
	// behavioural (browser-test) rules classify it (paper: 10).
	MinRequests int64
	// SessionIdleTimeout ends a session after this inactivity (paper: 1 h).
	SessionIdleTimeout time.Duration
	// MaxSessions bounds concurrently tracked sessions.
	MaxSessions int
	// MemoryBudget, when > 0, bounds the engine's estimated live memory
	// (session tracker + keystore, the attacker-controlled structures) in
	// bytes. Estimated-memory occupancy feeds the load state exactly like
	// session-count occupancy, so a budget of 256 MiB starts degrading
	// service when the estimate passes ~192 MiB (PressuredAt) and shedding
	// at ~230 MiB (SaturatedAt). 0 leaves memory unbudgeted.
	MemoryBudget int64
	// PressuredAt and SaturatedAt are the occupancy fractions at which the
	// load state leaves Normal (default 0.75) and Pressured (default 0.90).
	PressuredAt float64
	SaturatedAt float64
	// LoadHysteresis is how far occupancy must fall below a threshold before
	// the state steps back down (default 0.10), so a load hovering at a
	// boundary cannot flap the degradation ladder.
	LoadHysteresis float64
	// DegradedDecoys is the decoy count for degraded page views (default
	// max(1, Decoys/4)).
	DegradedDecoys int
	// DegradedKeyTTL is the key lifetime for degraded page views (default
	// SessionIdleTimeout/4).
	DegradedKeyTTL time.Duration
	// MaxScripts bounds retained generated scripts awaiting download.
	MaxScripts int
	// Shards is the shard count for the session table, the key store and the
	// script cache, rounded up to a power of two. When zero the engine
	// autotunes it from GOMAXPROCS (shard.AutoShards: four shards per
	// logical CPU, clamped to [8, 512]), so deployments track the machine
	// they land on instead of a hardcoded default. Use 1 to recover the
	// strict global-LRU semantics of a single-lock engine at the cost of
	// concurrency.
	Shards int
	// Detector overrides the decision chain. When nil the engine composes
	// the default serving chain (direct evidence → learned model →
	// behavioural browser test); SetModel hot-swaps the learned stage either
	// way. A custom Detector that wants hot-swappable learning should embed
	// the engine's Learned stage — see New.
	Detector detect.Detector
	// Model is an optional initial AdaBoost model for the learned stage;
	// equivalent to calling SetModel right after New.
	Model *adaboost.Model
	// OutcomeCapacity bounds the ring buffer of labelled outcomes collected
	// for online retraining (default 4096; negative disables collection).
	OutcomeCapacity int
	// OutcomeMinRequests is the minimum request count a session needs before
	// a labelled outcome is recorded for it — vectors from very short
	// sessions are mostly noise (default 5).
	OutcomeMinRequests int64
	// Telemetry supplies the serve-path instruments (per-stage latency
	// histograms, verdict-cache counters). Nil gives the engine a private
	// ServeMetrics with its own registry; fleet deployments (cdn.Network)
	// share one ServeMetrics across engines so stage histograms aggregate
	// fleet-wide. The instruments are allocation-free and always on — there
	// is no disabled mode to diverge from production behaviour.
	Telemetry *telemetry.ServeMetrics
	// TelemetryNode labels this engine's scrape-time collectors (stats
	// counters, shard gauges) in the telemetry registry, so engines sharing
	// a registry stay distinguishable. Empty means unlabelled.
	TelemetryNode string
	// Seed drives key and script generation.
	Seed uint64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
	// OnSessionEnd, when non-nil, receives every session that ends together
	// with its final verdict. It can fire from any goroutine that triggers
	// an eviction — concurrently with itself — so it must be safe for
	// concurrent use.
	OnSessionEnd func(ClassifiedSession)
}

func (c Config) withDefaults() Config {
	if c.BeaconPrefix == "" {
		c.BeaconPrefix = jsgen.DefaultBeaconPrefix
	}
	if c.Decoys <= 0 {
		c.Decoys = 4
	}
	if c.KeyDigits <= 0 {
		c.KeyDigits = 10
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 10
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = time.Hour
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1 << 20
	}
	if c.PressuredAt <= 0 || c.PressuredAt > 1 {
		c.PressuredAt = 0.75
	}
	if c.SaturatedAt <= 0 || c.SaturatedAt > 1 {
		c.SaturatedAt = 0.90
	}
	if c.SaturatedAt < c.PressuredAt {
		c.SaturatedAt = c.PressuredAt
	}
	if c.LoadHysteresis <= 0 {
		c.LoadHysteresis = 0.10
	}
	if c.DegradedDecoys <= 0 {
		c.DegradedDecoys = c.Decoys / 4
		if c.DegradedDecoys < 1 {
			c.DegradedDecoys = 1
		}
	}
	if c.DegradedKeyTTL <= 0 {
		c.DegradedKeyTTL = c.SessionIdleTimeout / 4
	}
	if c.MaxScripts <= 0 {
		c.MaxScripts = 65536
	}
	if c.ScriptVariants <= 0 {
		c.ScriptVariants = jsgen.DefaultVariants
	}
	if c.OutcomeCapacity == 0 {
		c.OutcomeCapacity = 4096
	}
	if c.OutcomeMinRequests <= 0 {
		c.OutcomeMinRequests = 5
	}
	if c.Shards <= 0 {
		c.Shards = shard.AutoShards(runtime.GOMAXPROCS(0))
	} else {
		c.Shards = shard.Normalize(c.Shards)
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats are the engine's cumulative counters.
type Stats struct {
	// PagesInstrumented counts HTML pages rewritten.
	PagesInstrumented int64
	// OriginalBytes and AddedBytes track page sizes before rewriting and the
	// instrumentation bytes added (rewritten HTML growth plus generated
	// scripts and stylesheets actually served), for the overhead experiment.
	OriginalBytes int64
	AddedBytes    int64
	// BeaconRequests counts intercepted instrumentation requests by kind.
	MouseBeacons   int64
	DecoyBeacons   int64
	ReplayBeacons  int64
	UnknownBeacons int64
	ExecBeacons    int64
	CSSBeacons     int64
	ScriptServes   int64
	HiddenHits     int64
	UAReports      int64
	UAMismatches   int64
	// ShedPassThrough and ShedDegraded count below-full admission decisions
	// (see AdmitPage): pages served uninstrumented while saturated, and
	// pages served with degraded instrumentation under pressure.
	ShedPassThrough int64
	ShedDegraded    int64
}

// engineStats is the internal atomic mirror of Stats: every counter is an
// independent atomic so beacon handling on different cores never contends.
type engineStats struct {
	pagesInstrumented atomic.Int64
	originalBytes     atomic.Int64
	addedBytes        atomic.Int64
	mouseBeacons      atomic.Int64
	decoyBeacons      atomic.Int64
	replayBeacons     atomic.Int64
	unknownBeacons    atomic.Int64
	execBeacons       atomic.Int64
	cssBeacons        atomic.Int64
	scriptServes      atomic.Int64
	hiddenHits        atomic.Int64
	uaReports         atomic.Int64
	uaMismatches      atomic.Int64
	shedPassThrough   atomic.Int64
	shedDegraded      atomic.Int64
}

// scriptBuf is a refcounted script body. The cache holds one reference for
// as long as the entry lives; every download acquires another for the
// duration of the response write. Only the last holder to drop its reference
// recycles the buffer (through the engine's scriptBufs pool), so shard
// eviction or replacement can never race a concurrent download into reused
// bytes — reclamation is deferred until the last reader is gone.
type scriptBuf struct {
	refs atomic.Int32
	b    []byte
}

// maxPooledScriptBuf bounds the capacity of buffers returned to the pool;
// pathologically large bodies are left to the garbage collector rather than
// pinned forever.
const maxPooledScriptBuf = 1 << 20

// acquireScriptBuf returns a buffer with one reference held by the caller.
func (e *Engine) acquireScriptBuf() *scriptBuf {
	sb := e.scriptBufs.Get().(*scriptBuf)
	sb.refs.Store(1)
	return sb
}

// releaseScriptBuf drops one reference; the last drop recycles the buffer.
func (e *Engine) releaseScriptBuf(sb *scriptBuf) {
	if sb.refs.Add(-1) == 0 && cap(sb.b) <= maxPooledScriptBuf {
		e.scriptBufs.Put(sb)
	}
}

// storedScript is one cached generated script, linked into its shard's
// intrusive LRU list. Evicted entries are recycled through the shard free
// list; the refcounted body buffer is released (not freed) on eviction, so
// steady-state storage allocates nothing — bodies cycle through the engine's
// buffer pool once every concurrent download has finished with them.
type storedScript struct {
	token      uint64
	buf        *scriptBuf
	prev, next *storedScript
}

// scriptShard is one independently locked partition of the generated-script
// cache (scripts are stored at page-rewrite time and served on download).
type scriptShard struct {
	mu      sync.Mutex
	scripts map[uint64]*storedScript
	head    *storedScript // most recently used
	tail    *storedScript // least recently used
	free    *storedScript // recycled entries, singly linked via next
	max     int
}

func (sh *scriptShard) pushFront(s *storedScript) {
	s.prev = nil
	s.next = sh.head
	if sh.head != nil {
		sh.head.prev = s
	}
	sh.head = s
	if sh.tail == nil {
		sh.tail = s
	}
}

func (sh *scriptShard) unlink(s *storedScript) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		sh.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		sh.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

func (sh *scriptShard) moveToFront(s *storedScript) {
	if sh.head == s {
		return
	}
	sh.unlink(s)
	sh.pushFront(s)
}

// pagePrecomp caches the per-deployment constant parts of the injection,
// derived from jsgen's path helpers so the URL formats live in one place:
// beacon path prefixes/suffixes and the inline reporter script split around
// its token. Composing these once in New keeps PrepareInstrumentation down
// to a few short concatenations per page view instead of rebuilding every
// URL and the whole inline script with fmt.
type pagePrecomp struct {
	cssPre, cssSuf       string // around the token in jsgen.CSSPath
	scriptPre, scriptSuf string // around the token in jsgen.ScriptPath
	hiddenPre, hiddenSuf string // around the token in jsgen.HiddenPath
	transpImg            string // jsgen.TransparentImagePath
	inlinePre            string // inline reporter before the token
	inlinePost           string // inline reporter after the token
}

// Engine is the robot-detection engine. It is safe for concurrent use; see
// the package comment for the sharding design.
type Engine struct {
	cfg      Config
	keys     *keystore.Store
	interner *intern.Interner // shared UA/page string table (tracker + keystore)
	gen  *jsgen.Generator
	pool *jsgen.Pool // precompiled script variants; see RotateScripts
	pre  pagePrecomp

	sessions *session.Tracker

	det      detect.Detector  // the decision chain every verdict flows through
	learned  *detect.Learned  // hot-swappable learned stage (SetModel)
	remote   *detect.Remote   // fleet-replicated verdicts (ApplyRemoteVerdict)
	outcomes *detect.Outcomes // labelled material for online retraining
	tel      *telemetry.ServeMetrics

	// verdictExport, when set, receives every locally derived Definite
	// verdict at classification time (the fleet layer replicates them).
	// Atomic so the classify path reads it lock-free.
	verdictExport atomic.Pointer[func(session.Key, Verdict)]

	scriptShards []*scriptShard
	scriptMask   uint64
	scriptBufs   sync.Pool // *scriptBuf, refcounted script bodies
	pageStates   sync.Pool // *PageState, backs PrepareInstrumentation

	// handlerName and transpImg are the injection's per-deployment constant
	// byte fields, precomputed so PreparePage composes without conversions.
	handlerName []byte
	transpImg   []byte

	seedSeq atomic.Uint64
	stats   engineStats

	// Load-state machinery (see load.go): the computed state, the operator
	// override (loadForcedAuto = none), the occupancy captured at the last
	// recomputation (micro-units) and the serve-event counter amortising
	// recomputation.
	loadState  atomic.Int32
	loadForced atomic.Int32
	loadOcc    atomic.Uint64
	loadEvents atomic.Uint64

	// sweepSteps counts SweepStep calls; every full pass over the shards
	// triggers a per-shard cap rebalance from the occupancy gauges.
	sweepSteps atomic.Uint64
}

// New creates an Engine.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	interner := intern.New(0)
	e := &Engine{
		cfg:      cfg,
		gen:      jsgen.NewGenerator(),
		interner: interner,
		keys: keystore.New(keystore.Config{
			Decoys:    cfg.Decoys,
			KeyDigits: cfg.KeyDigits,
			TTL:       cfg.SessionIdleTimeout,
			Shards:    cfg.Shards,
			Seed:      cfg.Seed,
			Clock:     cfg.Clock,
			Interner:  interner,
		}),
	}
	e.tel = cfg.Telemetry
	if e.tel == nil {
		e.tel = telemetry.NewServeMetrics(nil)
		e.cfg.Telemetry = e.tel
	}
	e.learned = detect.NewLearned(cfg.MinRequests)
	if cfg.Model != nil {
		e.learned.SetModel(cfg.Model)
	}
	e.remote = detect.NewRemote()
	if cfg.Detector != nil {
		e.det = cfg.Detector
	} else {
		// rules.Serving with the fleet's remote-verdict stage spliced in
		// after direct evidence: locally observed hard evidence still wins,
		// but a peer's replicated verdict outranks the local statistical
		// guess (which never saw the session's cross-node request history).
		e.det = detect.Chain("serving",
			rules.Direct{}, e.remote, e.learned,
			rules.BrowserTest{MinRequests: cfg.MinRequests})
	}
	if cfg.OutcomeCapacity > 0 {
		e.outcomes = detect.NewOutcomes(cfg.OutcomeCapacity)
	}
	base, prefix := cfg.BeaconBase, cfg.BeaconPrefix
	e.pool = jsgen.NewPool(e.gen, jsgen.TemplateConfig{
		BeaconBase:   base,
		BeaconPrefix: prefix,
		KeyDigits:    cfg.KeyDigits,
		Decoys:       cfg.Decoys,
		UAReport:     true,
		Obfuscate:    cfg.ObfuscateJS,
	}, cfg.ScriptVariants, rng.New(cfg.Seed).Fork("script-pool").Uint64())
	e.pre = pagePrecomp{transpImg: base + jsgen.TransparentImagePath(prefix)}
	cssPre, cssSuf := jsgen.CSSPathParts(prefix)
	e.pre.cssPre, e.pre.cssSuf = base+cssPre, cssSuf
	scriptPre, scriptSuf := jsgen.ScriptPathParts(prefix)
	e.pre.scriptPre, e.pre.scriptSuf = base+scriptPre, scriptSuf
	hiddenPre, hiddenSuf := jsgen.HiddenPathParts(prefix)
	e.pre.hiddenPre, e.pre.hiddenSuf = base+hiddenPre, hiddenSuf
	e.pre.inlinePre, e.pre.inlinePost = jsgen.InlineUAScriptParts(base, prefix)
	e.sessions = session.NewTracker(session.Config{
		IdleTimeout: cfg.SessionIdleTimeout,
		MaxSessions: cfg.MaxSessions,
		Shards:      cfg.Shards,
		Clock:       cfg.Clock,
		Evicted:     e.sessionEnded,
		Interner:    interner,
		// Bump the decision epoch when the classification threshold is
		// crossed: the behavioural rules (and the learned model) first become
		// decidable there, so cached verdicts must not outlive that point.
		DecisionMarks: []int64{cfg.MinRequests},
	})
	shards := e.sessions.ShardCount()
	perShard := shard.PerShardCap(cfg.MaxScripts, shards)
	e.scriptShards = make([]*scriptShard, shards)
	e.scriptMask = uint64(shards - 1)
	for i := range e.scriptShards {
		e.scriptShards[i] = &scriptShard{
			scripts: make(map[uint64]*storedScript),
			max:     perShard,
		}
	}
	e.scriptBufs.New = func() any { return new(scriptBuf) }
	e.pageStates.New = func() any { return new(PageState) }
	e.handlerName = []byte(e.gen.HandlerName)
	e.transpImg = []byte(e.pre.transpImg)
	e.loadForced.Store(loadForcedAuto)
	e.registerTelemetry()
	return e
}

// sessionEnded forwards finished sessions (with final verdicts) to the
// configured callback.
func (e *Engine) sessionEnded(snap session.Snapshot) {
	if e.cfg.OnSessionEnd == nil {
		return
	}
	e.cfg.OnSessionEnd(ClassifiedSession{Snapshot: snap, Verdict: e.ClassifySnapshot(snap)})
}

// Instrumented describes what InstrumentPage injected for one page view.
type Instrumented struct {
	// Issued carries the keys and tokens generated for the page, formatted
	// as strings for callers that log or assert on them. The zero-copy serve
	// path keeps keys numeric end to end; see PreparePage.
	Issued keystore.Issued
	// ScriptPath, CSSPath, HiddenPath are the request paths of the injected
	// objects.
	ScriptPath string
	CSSPath    string
	HiddenPath string
	// AddedBytes is the HTML size increase.
	AddedBytes int
}

// scriptSeed derives a fresh per-page obfuscation seed without any lock: a
// SplitMix64 step over an atomic sequence keyed by the engine seed. The
// sequence is deterministic for a single-threaded caller, which keeps
// simulator runs reproducible from one seed.
func (e *Engine) scriptSeed() uint64 {
	z := (e.cfg.Seed ^ 0x9e3779b97f4a7c15) + e.seedSeq.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PageState is the caller-owned working set for one page view on the
// zero-copy serve path: the numeric page keys, the composed injection
// fragments, and the URL scratch buffers they are built in. A connection
// keeps one PageState across keep-alive requests; after the first few page
// views every buffer has grown to the working-set size and PreparePage runs
// without allocating.
type PageState struct {
	pk   keystore.PageKeys
	prep htmlmod.Prepared

	// URL scratch, reused per page view: css/script/hidden beacon URLs and
	// the inline reporter script around the script token.
	css, script, inline, hidden []byte

	// hook recycles engine-pooled states (PrepareInstrumentation); it is
	// created once per PageState so steady-state release costs no closure.
	hook func(*htmlmod.Prepared)
}

// Keys returns the numeric keys issued for the most recent PreparePage call.
func (ps *PageState) Keys() *keystore.PageKeys { return &ps.pk }

// PreparePage is the zero-copy core of PrepareInstrumentation: it issues the
// page's keys numerically into ps.pk, renders the per-page obfuscated script
// into a refcounted cache buffer, and composes the injection fragments in
// place in ps.prep. The returned Prepared aliases ps — it stays valid until
// the next PreparePage call on the same state. At steady state the call
// allocates nothing.
func (e *Engine) PreparePage(clientIP, userAgent, pagePath string, ps *PageState) *htmlmod.Prepared {
	start := time.Now()
	e.keys.IssuePage(clientIP, pagePath, &ps.pk)
	e.tel.KeystoreIssue.ObserveSince(start)
	e.composePage(ps)
	e.tel.Prepare.ObserveSince(start)
	return &ps.prep
}

// composePage renders and caches the page's script and composes the
// injection fragments from the keys already issued into ps.pk. Split from
// PreparePage so the batch path can issue keys for many pages in one
// keystore pass and compose each afterwards.
func (e *Engine) composePage(ps *PageState) {
	// Per-page script generation is a pooled template copy plus key splices:
	// the variant is picked off the engine's RNG stream, so consecutive page
	// views still receive differing obfuscated bodies.
	e.composePageWith(ps, e.scriptSeed())
}

// composePageWith is composePage with an explicit variant pick: the full
// path draws a fresh seed per page, the degraded path pins pick 0 so every
// degraded page shares the epoch's first variant. The body buffer is
// refcounted; the cache holds one reference until eviction, downloads take
// their own.
func (e *Engine) composePageWith(ps *PageState, pick uint64) {
	v := e.pool.Pick(pick)
	sb := e.acquireScriptBuf()
	if cap(sb.b) < v.Size() {
		// Size exactly (engine keys always have KeyDigits digits) so a fresh
		// buffer costs one allocation instead of append-growth churn.
		sb.b = make([]byte, 0, v.Size())
	}
	sb.b = v.RenderKeys(sb.b[:0], ps.pk.Key, ps.pk.ScriptToken, ps.pk.Decoys, ps.pk.Digits)
	e.storeScript(ps.pk.ScriptToken, sb)

	ps.css = ps.pk.AppendKey(append(ps.css[:0], e.pre.cssPre...), ps.pk.CSSToken)
	ps.css = append(ps.css, e.pre.cssSuf...)
	ps.script = ps.pk.AppendKey(append(ps.script[:0], e.pre.scriptPre...), ps.pk.ScriptToken)
	ps.script = append(ps.script, e.pre.scriptSuf...)
	ps.inline = ps.pk.AppendKey(append(ps.inline[:0], e.pre.inlinePre...), ps.pk.ScriptToken)
	ps.inline = append(ps.inline, e.pre.inlinePost...)
	ps.hidden = ps.pk.AppendKey(append(ps.hidden[:0], e.pre.hiddenPre...), ps.pk.HiddenToken)
	ps.hidden = append(ps.hidden, e.pre.hiddenSuf...)

	ps.prep.Compose(htmlmod.InjectionBytes{
		CSSHref:      ps.css,
		ScriptSrc:    ps.script,
		InlineScript: ps.inline,
		HandlerName:  e.handlerName,
		HiddenHref:   ps.hidden,
		HiddenImgSrc: e.transpImg,
	})
}

// getPageState takes a PageState off the engine pool, arming its release
// hook (created once per state) so Prepared.Release returns it.
func (e *Engine) getPageState() *PageState {
	ps := e.pageStates.Get().(*PageState)
	if ps.hook == nil {
		ps.hook = func(*htmlmod.Prepared) { e.pageStates.Put(ps) }
	}
	ps.prep.SetReleaseHook(ps.hook)
	return ps
}

// instrumented formats the string-keyed description of a prepared page view
// for callers that log or assert on paths and keys.
func (e *Engine) instrumented(ps *PageState) Instrumented {
	iss := ps.pk.Issued()
	prefix := e.cfg.BeaconPrefix
	return Instrumented{
		Issued:     iss,
		ScriptPath: jsgen.ScriptPath(prefix, iss.ScriptToken),
		CSSPath:    jsgen.CSSPath(prefix, iss.CSSToken),
		HiddenPath: jsgen.HiddenPath(prefix, iss.HiddenToken),
	}
}

// PrepareInstrumentation sets up the injection for one HTML page view served
// to clientIP/userAgent: it issues fresh keys, generates and stores the
// per-page obfuscated script, and compiles the injection fragments. The
// caller applies them — typically by streaming the response body through an
// htmlmod.StreamRewriter, or buffered via Prepared.Rewrite — and must call
// RecordInstrumented once the rewrite completes so the paper's overhead
// accounting stays accurate. The Prepared is backed by an engine-pooled
// PageState; Release returns it. Callers that hold their own PageState (the
// per-connection proxy path) should use PreparePage directly and skip the
// string formatting this wrapper adds.
func (e *Engine) PrepareInstrumentation(clientIP, userAgent, pagePath string) (*htmlmod.Prepared, Instrumented) {
	ps := e.getPageState()
	prep := e.PreparePage(clientIP, userAgent, pagePath, ps)
	return prep, e.instrumented(ps)
}

// PrepareInstrumentationBatch prepares one page view per element of pages
// for a single client in one keystore pass: the keys for all pages are
// issued under one shard lock (and one TTL/LRU maintenance step), then each
// page's script and fragments are composed. Results are appended to out and
// returned; each Prepared comes from the engine pool and must be Released.
// The fleet simulator uses this to drive the same prepared-injection
// pipeline the proxy serves, amortising keystore locking across a burst of
// page views from one client.
func (e *Engine) PrepareInstrumentationBatch(clientIP, userAgent string, pages []string, out []*htmlmod.Prepared) ([]*htmlmod.Prepared, []Instrumented) {
	if len(pages) == 0 {
		return out, nil
	}
	start := time.Now()
	states := make([]*PageState, len(pages))
	pks := make([]*keystore.PageKeys, len(pages))
	for i := range pages {
		states[i] = e.getPageState()
		pks[i] = &states[i].pk
	}
	e.keys.IssuePagesInto(clientIP, pages, pks)
	e.tel.KeystoreIssue.ObserveSince(start)
	insts := make([]Instrumented, len(pages))
	for i, ps := range states {
		e.composePage(ps)
		insts[i] = e.instrumented(ps)
		out = append(out, &ps.prep)
	}
	e.tel.Prepare.ObserveSince(start)
	return out, insts
}

// RecordInstrumented accounts one completed page rewrite (original body
// size and instrumentation bytes added) for the overhead experiment.
func (e *Engine) RecordInstrumented(originalBytes, addedBytes int) {
	e.stats.pagesInstrumented.Add(1)
	e.stats.originalBytes.Add(int64(originalBytes))
	e.stats.addedBytes.Add(int64(addedBytes))
}

// RotateScripts compiles a fresh epoch of script variants and publishes it
// atomically under concurrent page serving. Deployments rotate periodically
// so no obfuscated body survives long enough to be signature-matched.
func (e *Engine) RotateScripts() {
	e.pool.Rotate(e.scriptSeed())
	e.tel.ScriptRotations.Inc()
}

// ScriptVariants returns the number of precompiled script variants per
// rotation epoch.
func (e *Engine) ScriptVariants() int { return e.pool.Variants() }

// StartRotator rotates the script pool automatically until the returned stop
// function is called: every interval (when interval > 0), and additionally
// once everyPages pages have been instrumented since the last rotation (when
// everyPages > 0; checked once per second). Both triggers zero the other's
// progress — a page-count rotation restarts the interval timer. With neither
// trigger configured the rotator is inert and stop is a no-op.
func (e *Engine) StartRotator(interval time.Duration, everyPages int64) (stop func()) {
	if interval <= 0 && everyPages <= 0 {
		return func() {}
	}
	poll := interval
	if everyPages > 0 && (interval <= 0 || interval > time.Second) {
		poll = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		lastPages := e.stats.pagesInstrumented.Load()
		lastRotate := time.Now()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				rotate := interval > 0 && time.Since(lastRotate) >= interval
				if !rotate && everyPages > 0 {
					rotate = e.stats.pagesInstrumented.Load()-lastPages >= everyPages
				}
				if rotate {
					e.RotateScripts()
					lastPages = e.stats.pagesInstrumented.Load()
					lastRotate = time.Now()
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// InstrumentPage rewrites one HTML page served to clientIP/userAgent:
// it issues fresh keys, generates the per-page obfuscated script, injects
// the beacon stylesheet, the external script, the inline user-agent
// reporter, the body event handlers, and the hidden trap link. The rewritten
// page and a description of the injections are returned. Non-HTML bodies
// should not be passed. Callers that can write the page incrementally should
// prefer PrepareInstrumentation with a streaming rewriter.
func (e *Engine) InstrumentPage(clientIP, userAgent, pagePath string, html []byte) ([]byte, Instrumented) {
	prep, inst := e.PrepareInstrumentation(clientIP, userAgent, pagePath)
	res := prep.Rewrite(html)
	prep.Release()
	inst.AddedBytes = res.AddedBytes
	e.RecordInstrumented(len(html), res.AddedBytes)
	return res.HTML, inst
}

// mix64 is the SplitMix64 finalizer, used to spread numeric script tokens
// (uniform random digits, but low-entropy in the high bits for short key
// lengths) across the shard mask.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (e *Engine) scriptShard(token uint64) *scriptShard {
	return e.scriptShards[mix64(token)&e.scriptMask]
}

// storeScript caches sb under token, taking over the caller's reference.
// Entry structs are recycled through the shard free list; replaced and
// evicted bodies are released, which defers their recycling until any
// concurrent download has finished writing them (see scriptBuf).
func (e *Engine) storeScript(token uint64, sb *scriptBuf) {
	sh := e.scriptShard(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.scripts[token]; ok {
		e.releaseScriptBuf(old.buf)
		old.buf = sb
		sh.moveToFront(old)
		return
	}
	s := sh.free
	if s != nil {
		sh.free = s.next
		s.next = nil
	} else {
		s = new(storedScript)
	}
	s.token, s.buf = token, sb
	sh.pushFront(s)
	sh.scripts[token] = s
	for len(sh.scripts) > sh.max {
		victim := sh.tail
		if victim == nil {
			break
		}
		sh.unlink(victim)
		delete(sh.scripts, victim.token)
		e.releaseScriptBuf(victim.buf)
		victim.token, victim.buf = 0, nil
		victim.next = sh.free
		sh.free = victim
	}
}

// loadScript returns the cached script buffer for token with a fresh
// reference held for the caller, who must release it (Response.Done) after
// writing the body.
func (e *Engine) loadScript(token uint64) (*scriptBuf, bool) {
	sh := e.scriptShard(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.scripts[token]
	if !ok {
		return nil, false
	}
	sh.moveToFront(s)
	// The reference is taken under the shard lock, so it can never race the
	// release performed by a concurrent replacement or eviction.
	s.buf.refs.Add(1)
	return s.buf, true
}

// ObserveRequest records one ordinary (non-instrumentation) request for
// session tracking and returns the session's snapshot. Only the session's
// shard is locked.
func (e *Engine) ObserveRequest(ent logfmt.Entry) session.Snapshot {
	return e.sessions.Observe(ent)
}

// ObserveRequestQuiet records the request without materialising a snapshot
// copy, for callers that discard the return value (the proxy serve path
// classifies via Decide). Signal-visible state changes still publish
// immediately; pure-counter updates are deferred to the next read.
func (e *Engine) ObserveRequestQuiet(ent logfmt.Entry) {
	e.sessions.ObserveQuiet(ent)
}

// IsInstrumentationPath reports whether the request path belongs to the
// engine's reserved prefix and should be routed to HandleBeacon instead of
// the origin.
func (e *Engine) IsInstrumentationPath(path string) bool {
	clean := path
	if i := strings.IndexByte(clean, '?'); i >= 0 {
		clean = clean[:i]
	}
	return strings.HasPrefix(clean, e.cfg.BeaconPrefix+"/")
}

var (
	emptyCSS   = []byte("/* */\n")
	tinyGIF    = []byte("GIF89a\x01\x00\x01\x00\x80\x00\x00\x00\x00\x00\xff\xff\xff!\xf9\x04\x01\x00\x00\x00\x00,\x00\x00\x00\x00\x01\x00\x01\x00\x00\x02\x02D\x01\x00;")
	tinyJPEG   = []byte("\xff\xd8\xff\xe0\x00\x10JFIF\x00\x01\x01\x00\x00\x01\x00\x01\x00\x00\xff\xd9")
	hiddenPage = []byte("<html><head><title>ok</title></head><body></body></html>")
	fallbackJS = []byte("// expired\n")
)

// HandleBeacon processes a request under the instrumentation prefix for the
// given client, updating the session's detection signals, and returns the
// response to serve. ok is false when the path is not an instrumentation
// path (the caller should forward it to the origin instead). At most one
// session shard and one keystore shard are locked per call.
func (e *Engine) HandleBeacon(clientIP, userAgent, path string) (Response, bool) {
	if !e.IsInstrumentationPath(path) {
		return Response{}, false
	}
	start := time.Now()
	resp := e.handleBeacon(clientIP, userAgent, path)
	e.tel.Beacon.ObserveSince(start)
	return resp, true
}

// handleBeacon dispatches an instrumentation-prefix request; the exported
// wrapper owns the stage timing.
func (e *Engine) handleBeacon(clientIP, userAgent, path string) Response {
	key := session.Key{IP: clientIP, UserAgent: userAgent}
	rest := strings.TrimPrefix(path, e.cfg.BeaconPrefix+"/")
	query := ""
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		query = rest[i+1:]
		rest = rest[:i]
	}

	switch {
	case strings.HasPrefix(rest, "js/") && strings.HasSuffix(rest, ".gif"):
		// JavaScript-execution beacon with the reported user agent.
		e.sessions.Mark(key, session.SignalJS)
		e.stats.execBeacons.Add(1)
		if agent := queryParam(query, "ua"); agent != "" {
			e.checkUAMismatch(key, userAgent, agent)
		}
		return Response{Status: 200, ContentType: "image/gif", Body: tinyGIF, NoCache: true}

	case strings.HasPrefix(rest, "ua/"):
		// document.write stylesheet report: ua/<token>/<agent>.css
		e.sessions.Mark(key, session.SignalJS)
		e.stats.uaReports.Add(1)
		parts := strings.SplitN(rest, "/", 3)
		if len(parts) == 3 {
			agent := strings.TrimSuffix(parts[2], ".css")
			e.checkUAMismatch(key, userAgent, agent)
		}
		return Response{Status: 200, ContentType: "text/css", Body: emptyCSS, NoCache: true}

	case strings.HasPrefix(rest, "hidden/"):
		if snap, newly := e.sessions.Mark(key, session.SignalHidden); newly {
			e.recordSignalOutcome(snap, false)
		}
		e.stats.hiddenHits.Add(1)
		return Response{Status: 200, ContentType: "text/html", Body: hiddenPage, NoCache: true}

	case rest == "transp_1x1.gif":
		return Response{Status: 200, ContentType: "image/gif", Body: tinyGIF, NoCache: true}

	case strings.HasPrefix(rest, "index_") && strings.HasSuffix(rest, ".js"):
		tokenStr := strings.TrimSuffix(strings.TrimPrefix(rest, "index_"), ".js")
		e.sessions.Mark(key, session.SignalJSFile)
		e.stats.scriptServes.Add(1)
		// Script tokens are fixed-width decimal; anything else can only be a
		// probe and gets the same expired-script fallback as a cache miss.
		var sb *scriptBuf
		if token, okTok := rng.ParseFixedDigits(tokenStr, e.cfg.KeyDigits); okTok {
			sb, _ = e.loadScript(token)
		}
		body := fallbackJS
		if sb != nil {
			body = sb.b
		}
		e.stats.addedBytes.Add(int64(len(body)))
		return Response{Status: 200, ContentType: "application/javascript", Body: body, NoCache: true, script: sb, eng: e}

	case strings.HasSuffix(rest, ".css"):
		e.sessions.Mark(key, session.SignalCSS)
		e.stats.cssBeacons.Add(1)
		e.stats.addedBytes.Add(int64(len(emptyCSS)))
		return Response{Status: 200, ContentType: "text/css", Body: emptyCSS, NoCache: true}

	case strings.HasSuffix(rest, ".jpg"):
		keyStr := strings.TrimSuffix(rest, ".jpg")
		verdict := e.keys.Validate(clientIP, keyStr)
		switch verdict {
		case keystore.Human:
			if snap, newly := e.sessions.Mark(key, session.SignalMouse); newly {
				e.recordSignalOutcome(snap, true)
			}
			e.stats.mouseBeacons.Add(1)
		case keystore.Decoy:
			if snap, newly := e.sessions.Mark(key, session.SignalDecoy); newly {
				e.recordSignalOutcome(snap, false)
			}
			e.stats.decoyBeacons.Add(1)
		case keystore.Replayed:
			if snap, newly := e.sessions.Mark(key, session.SignalReplay); newly {
				e.recordSignalOutcome(snap, false)
			}
			e.stats.replayBeacons.Add(1)
		default:
			// A key the server never issued: a guess or a stale replay.
			if snap, newly := e.sessions.Mark(key, session.SignalDecoy); newly {
				e.recordSignalOutcome(snap, false)
			}
			e.stats.unknownBeacons.Add(1)
		}
		return Response{Status: 200, ContentType: "image/jpeg", Body: tinyJPEG, NoCache: true}

	default:
		return Response{Status: 404, ContentType: "text/plain", Body: []byte("not found\n"), NoCache: true}
	}
}

// checkUAMismatch compares the JavaScript-reported agent string with the
// User-Agent header (both normalised the way the injected script normalises
// them) and marks the session on mismatch. The header side is normalised
// once per session — the tracker stores it on the published snapshot — so a
// beacon flood does not re-lowercase the same header on every hit; only the
// reported string (which varies per beacon) is normalised here.
func (e *Engine) checkUAMismatch(key session.Key, headerUA, reported string) {
	if unescaped, err := url.PathUnescape(reported); err == nil {
		reported = unescaped
	}
	if unescaped, err := url.QueryUnescape(reported); err == nil {
		reported = unescaped
	}
	var want string
	if snap, ok := e.sessions.Peek(key); ok {
		want = snap.NormUA
		snap.Release()
	} else {
		// The session raced away (eviction); fall back to normalising inline.
		want = session.NormalizeUA(headerUA)
	}
	got := session.NormalizeUA(reported)
	if want == "" || got == "" {
		return
	}
	if want != got {
		if snap, newly := e.sessions.Mark(key, session.SignalUAMismatch); newly {
			e.recordSignalOutcome(snap, false)
		}
		e.stats.uaMismatches.Add(1)
	}
}

// queryParam extracts a single query parameter value without url.Values
// allocation overhead for the common single-parameter beacon case.
func queryParam(query, name string) string {
	for query != "" {
		var pair string
		if i := strings.IndexByte(query, '&'); i >= 0 {
			pair, query = query[:i], query[i+1:]
		} else {
			pair, query = query, ""
		}
		if eq := strings.IndexByte(pair, '='); eq >= 0 && pair[:eq] == name {
			return pair[eq+1:]
		}
	}
	return ""
}

// MarkCaptchaPassed records that the session solved a CAPTCHA challenge — a
// definite human confirmation that also feeds the online training loop.
func (e *Engine) MarkCaptchaPassed(key session.Key) {
	if snap, newly := e.sessions.Mark(key, session.SignalCaptcha); newly {
		e.recordSignalOutcome(snap, true)
	}
}

// MarkCaptchaFailed records a failed CAPTCHA attempt. A single failure is
// not definite evidence (humans mistype), so no detection signal is set;
// the outcome still feeds the training loop as a weak robot label, the way
// the paper uses CAPTCHA outcomes as ground truth for the learned model.
func (e *Engine) MarkCaptchaFailed(key session.Key) {
	if e.outcomes == nil {
		return
	}
	if snap, ok := e.sessions.Peek(key); ok {
		if int64(snap.Counts.Total) >= e.cfg.OutcomeMinRequests {
			e.outcomes.Add(snap.Features, false)
		}
		snap.Release()
	}
}

// Classify returns the current verdict for the session, or an undecided
// verdict when the session is unknown. The read path is lock-free and, at
// steady state, allocation-free: the snapshot comes from the tracker's
// atomically published view, and the verdict comes from the session's cache
// unless a state-changing event (new signal, new request class, threshold
// crossing) or a model hot-swap occurred since it was computed.
func (e *Engine) Classify(key session.Key) Verdict {
	snap, ok := e.sessions.Peek(key)
	if !ok {
		return Verdict{Class: ClassUndecided, Confidence: Tentative, Reason: "unknown session"}
	}
	v := e.classify(snap)
	snap.Release()
	return v
}

// Decide returns the session's published snapshot together with its (cached)
// verdict, without copying the snapshot. The snapshot is shared with the
// tracker and must be treated as read-only; enforcement layers (proxy, cdn)
// use it to evaluate policy without per-request allocation. The snapshot is
// pinned in its session's republish arena: the caller MUST call
// snap.Release() when done reading it (one atomic add).
func (e *Engine) Decide(key session.Key) (*session.Snapshot, Verdict, bool) {
	snap, ok := e.sessions.Peek(key)
	if !ok {
		return nil, Verdict{}, false
	}
	return snap, e.classify(snap), true
}

// ClassifySnapshot routes a session snapshot through the engine's detector
// chain. The classification heuristics themselves live in
// internal/detect/rules; see Config.Detector for the chain composition.
func (e *Engine) ClassifySnapshot(snap session.Snapshot) Verdict {
	return e.classify(&snap)
}

// classify runs the chain with per-session verdict caching. A cached verdict
// is valid only for the exact (session epoch, model epoch) pair it was
// computed at, so it is invalidated by new signals, new request classes,
// threshold crossings and model hot-swaps — and by nothing else.
func (e *Engine) classify(snap *session.Snapshot) Verdict {
	cache := snap.Cache()
	if cache == nil {
		// Literal snapshots (tests, offline replay) have no cache slot.
		v := e.timedDetect(snap)
		e.exportVerdict(snap.Key, v)
		return v
	}
	modelEpoch := e.learned.Epoch()
	if v, ok := cache.Load(snap.Epoch, modelEpoch); ok {
		e.tel.ClassifyCacheHits.Inc()
		return v.(Verdict)
	}
	v := e.timedDetect(snap)
	cache.Store(snap.Epoch, modelEpoch, v)
	// Recompute means the session's evidence (or the model) changed: this is
	// the one point where a fresh Definite verdict first exists, so the fleet
	// export hook fires here — never on cache hits, so replication costs the
	// steady-state serve path nothing.
	e.exportVerdict(snap.Key, v)
	return v
}

// exportVerdict hands a locally derived Definite verdict to the fleet layer.
// Verdicts that arrived via replication carry their origin node and are
// skipped — replication must not echo.
func (e *Engine) exportVerdict(key session.Key, v Verdict) {
	if v.Confidence != Definite || v.Origin != "" {
		return
	}
	if fn := e.verdictExport.Load(); fn != nil {
		(*fn)(key, v)
	}
}

// timedDetect runs the chain uncached, recording the recompute under the
// classify stage histogram (cache hits are counted, not timed — they are a
// pointer load).
func (e *Engine) timedDetect(snap *session.Snapshot) Verdict {
	start := time.Now()
	v := e.detect(snap)
	e.tel.Classify.ObserveSince(start)
	e.tel.ClassifyRecomputes.Inc()
	return v
}

// detect runs the chain without caching.
func (e *Engine) detect(snap *session.Snapshot) Verdict {
	if v, ok := e.det.Detect(snap); ok {
		return v
	}
	return Verdict{Class: ClassUndecided, Confidence: Tentative, Reason: "no detector rendered an opinion"}
}

// Detector returns the engine's decision chain.
func (e *Engine) Detector() detect.Detector { return e.det }

// Learned returns the engine's hot-swappable learned stage. Custom detector
// chains (Config.Detector) can embed it so SetModel keeps working.
func (e *Engine) Learned() *detect.Learned { return e.learned }

// SetModel atomically publishes a (re)trained AdaBoost model onto the
// serving path. Readers take no lock: in-flight Classify calls finish on
// whichever model they loaded, subsequent calls see the new one, and every
// cached verdict is implicitly invalidated by the model-epoch advance.
// Passing nil unpublishes the model, reverting to rules-only verdicts.
func (e *Engine) SetModel(m *adaboost.Model) { e.learned.SetModel(m) }

// Model returns the currently published AdaBoost model, or nil.
func (e *Engine) Model() *adaboost.Model { return e.learned.Model() }

// SetVerdictExport installs (or clears, with nil) the fleet export hook: it
// receives every locally derived Definite verdict exactly when it is first
// computed (cache-miss classification), tagged with its session key. The
// hook must be fast and non-blocking — it runs on the serving path's
// classify recompute, so the fleet layer only enqueues into a bounded
// outbox there.
func (e *Engine) SetVerdictExport(fn func(session.Key, Verdict)) {
	if fn == nil {
		e.verdictExport.Store(nil)
		return
	}
	e.verdictExport.Store(&fn)
}

// Remote returns the engine's fleet-replicated verdict stage.
func (e *Engine) Remote() *detect.Remote { return e.remote }

// ApplyRemoteVerdict installs a verdict replicated from another fleet node
// (identified by origin) into the remote detector stage. If the stored
// verdict changed and the session is tracked locally, its decision epoch is
// bumped so the per-session verdict cache recomputes through the remote
// stage on the next classification.
func (e *Engine) ApplyRemoteVerdict(key session.Key, v Verdict, origin string) bool {
	if !e.remote.Set(key, v, origin) {
		return false
	}
	e.sessions.Bump(key)
	return true
}

// AdoptSession replays another node's evidence for a session into the local
// tracker — the receiving half of a partition-failover or drain handoff.
// Signals are replayed through the tracker's normal Mark path (creating the
// session when unknown), so every downstream consumer (classification,
// policy, telemetry) sees them exactly as if observed locally. Request
// counters are not transferred — the partition owner keeps the authoritative
// counts — so adopted sessions cannot double-count.
func (e *Engine) AdoptSession(key session.Key, signals []session.Signal) {
	for _, sig := range signals {
		e.sessions.Mark(key, sig)
	}
}

// RecordOutcome stores a labelled outcome for a tracked session — external
// ground truth such as a workload label, an operator decision or an abuse
// report. It feeds the online retraining loop.
func (e *Engine) RecordOutcome(key session.Key, human bool) {
	if e.outcomes == nil {
		return
	}
	snap, ok := e.sessions.Peek(key)
	if !ok {
		return
	}
	if int64(snap.Counts.Total) >= e.cfg.OutcomeMinRequests {
		e.outcomes.Add(snap.Features, human)
	}
	snap.Release()
}

// RecordOutcomeVector stores a labelled attribute vector directly, for
// callers that computed features offline (log replay, finished sessions).
func (e *Engine) RecordOutcomeVector(x features.Vector, human bool) {
	if e.outcomes == nil {
		return
	}
	e.outcomes.Add(x, human)
}

// recordSignalOutcome feeds the training loop from the serving path itself:
// a newly observed definite signal is ground truth (CAPTCHA and input-event
// confirmations label humans; decoy, replay, hidden-link and forged-UA hits
// label robots). Sessions below OutcomeMinRequests are skipped — their
// attribute vectors are noise.
func (e *Engine) recordSignalOutcome(snap session.Snapshot, human bool) {
	if e.outcomes == nil || int64(snap.Counts.Total) < e.cfg.OutcomeMinRequests {
		return
	}
	e.outcomes.Add(snap.Features, human)
}

// OutcomeCount returns the number of labelled outcomes currently retained.
func (e *Engine) OutcomeCount() int {
	if e.outcomes == nil {
		return 0
	}
	return e.outcomes.Len()
}

// Outcomes returns an independent copy of the retained labelled outcomes.
func (e *Engine) Outcomes() []features.Example {
	if e.outcomes == nil {
		return nil
	}
	return e.outcomes.Snapshot()
}

// RetrainFromOutcomes fits an AdaBoost ensemble to the accumulated labelled
// outcomes and hot-swaps it onto the serving path. It returns the published
// model, or an error when the outcome set cannot support training yet (no
// examples, or a single class); the previous model stays published then.
func (e *Engine) RetrainFromOutcomes(cfg adaboost.Config) (*adaboost.Model, error) {
	m, err := adaboost.Train(e.Outcomes(), cfg)
	if err != nil {
		e.tel.TrainerErrors.Inc()
		return nil, err
	}
	e.SetModel(m)
	e.tel.TrainerRetrains.Inc()
	return m, nil
}

// StartTrainer runs the online training loop until the returned stop
// function is called: every interval it checks whether at least minNew
// labelled outcomes arrived since the last (re)train and, if so, retrains
// and hot-swaps the model. Training runs on the trainer goroutine only; the
// serving path never blocks on it.
func (e *Engine) StartTrainer(interval time.Duration, minNew int, cfg adaboost.Config) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	if minNew <= 0 {
		minNew = 64
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var trainedAt int64
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if e.outcomes == nil {
					continue
				}
				total := e.outcomes.Total()
				if total-trainedAt < int64(minNew) {
					continue
				}
				if _, err := e.RetrainFromOutcomes(cfg); err == nil {
					trainedAt = total
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Sessions returns snapshots of all active sessions, gathered shard by
// shard (no global lock; see StreamSessions for the allocation-free path).
func (e *Engine) Sessions() []session.Snapshot { return e.sessions.Snapshots() }

// StreamSessions streams a snapshot of every active session to yield,
// locking one shard at a time, until yield returns false. Order is
// unspecified; sessions created or removed concurrently may be missed.
func (e *Engine) StreamSessions(yield func(session.Snapshot) bool) {
	e.sessions.Each(yield)
}

// Session returns the snapshot of one active session, if it is tracked.
// The lookup is lock-free.
func (e *Engine) Session(key session.Key) (session.Snapshot, bool) { return e.sessions.Get(key) }

// SessionCount returns the number of active sessions.
func (e *Engine) SessionCount() int { return e.sessions.Active() }

// ShardCount returns the engine's shard count (a power of two).
func (e *Engine) ShardCount() int { return e.sessions.ShardCount() }

// ExpireIdle ends idle sessions as of now, reporting them via OnSessionEnd.
// The sweep is batched shard by shard — one shard locked at a time — so it
// never pauses the whole engine.
func (e *Engine) ExpireIdle(now time.Time) int { return e.sessions.ExpireIdle(now) }

// SweepStep amortises idle expiry: each call sweeps the next shard in
// round-robin order (ShardCount calls make one full pass) and returns the
// number of sessions ended. Live deployments call it from a ticker so no
// single request ever pays for a full-table sweep. Each step also refreshes
// the load state, so recovery from overload is observed even when traffic
// (and with it the admission-path recomputation) has stopped entirely.
func (e *Engine) SweepStep(now time.Time) int {
	n := e.sessions.SweepStep(now)
	// Once per full pass over the shards, redistribute the per-shard session
	// caps from the occupancy the pass just observed (see
	// session.Tracker.RebalanceCaps) — the autotuning half of the occupancy
	// signal the load ladder publishes.
	if e.sweepSteps.Add(1)%uint64(e.sessions.ShardCount()) == 0 {
		e.sessions.RebalanceCaps()
	}
	e.RecomputeLoadState()
	return n
}

// StartSweeper runs SweepStep every interval until the returned stop
// function is called. A full pass over the table takes ShardCount intervals,
// so choose interval ≈ SessionIdleTimeout / (4 * ShardCount) for timely
// expiry. Times come from the configured Clock.
func (e *Engine) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				e.SweepStep(e.cfg.Clock.Now())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// FlushSessions ends all sessions and returns them with their final
// verdicts, flushing one shard at a time. The result is sorted by
// first-seen time then key so simulation runs stay reproducible; callers
// that do not need the ordering (or the full copy) should use
// FlushSessionsEach.
func (e *Engine) FlushSessions() []ClassifiedSession {
	snaps := e.sessions.FlushAll()
	out := make([]ClassifiedSession, len(snaps))
	for i, s := range snaps {
		out[i] = ClassifiedSession{Snapshot: s, Verdict: e.ClassifySnapshot(s)}
	}
	return out
}

// FlushSessionsEach ends all sessions, streaming each with its final
// verdict to yield without materialising a copy of the whole session table.
// Only one shard is locked at a time; order is unspecified.
func (e *Engine) FlushSessionsEach(yield func(ClassifiedSession)) {
	e.sessions.FlushEach(func(s session.Snapshot) {
		yield(ClassifiedSession{Snapshot: s, Verdict: e.ClassifySnapshot(s)})
	})
}

// Stats returns a copy of the cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		PagesInstrumented: e.stats.pagesInstrumented.Load(),
		OriginalBytes:     e.stats.originalBytes.Load(),
		AddedBytes:        e.stats.addedBytes.Load(),
		MouseBeacons:      e.stats.mouseBeacons.Load(),
		DecoyBeacons:      e.stats.decoyBeacons.Load(),
		ReplayBeacons:     e.stats.replayBeacons.Load(),
		UnknownBeacons:    e.stats.unknownBeacons.Load(),
		ExecBeacons:       e.stats.execBeacons.Load(),
		CSSBeacons:        e.stats.cssBeacons.Load(),
		ScriptServes:      e.stats.scriptServes.Load(),
		HiddenHits:        e.stats.hiddenHits.Load(),
		UAReports:         e.stats.uaReports.Load(),
		UAMismatches:      e.stats.uaMismatches.Load(),
		ShedPassThrough:   e.stats.shedPassThrough.Load(),
		ShedDegraded:      e.stats.shedDegraded.Load(),
	}
}

// Config returns the effective configuration (with defaults applied).
func (e *Engine) Config() Config { return e.cfg }
