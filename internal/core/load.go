// Overload resilience: the engine's load state, memory budget and the
// admission-control degradation ladder.
//
// The detector only matters under exactly the traffic that threatens to sink
// it — flash crowds and botnet floods — so the engine continuously derives a
// LoadState (Normal → Pressured → Saturated) from tracker/keystore occupancy
// and a live memory estimate, and the serving layers (internal/proxy,
// internal/cdn) ask AdmitPage how much instrumentation a page view should
// get:
//
//	Normal     every page gets full instrumentation.
//	Pressured  sessions already tracked keep full service; brand-new
//	           clients get degraded instrumentation (fewer decoys, the
//	           shared script variant, shorter key TTLs) so each anonymous
//	           arrival pins less proxy memory.
//	Saturated  tracked sessions with accumulated evidence keep full
//	           service, tracked-but-anonymous sessions get degraded
//	           instrumentation, and brand-new clients are served
//	           uninstrumented pass-through — they are not tracked at all,
//	           so a flood can never wash evidence-bearing sessions out of
//	           the tracker (see session.Tracker's eviction preference for
//	           the second line of the same defence).
//
// State transitions use downward hysteresis so a load hovering at a
// threshold does not flap the ladder, and the whole check is atomics-only:
// the serve path pays zero allocations and no locks for admission.
package core

import (
	"time"

	"botdetect/internal/htmlmod"
	"botdetect/internal/intern"
	"botdetect/internal/session"
)

// LoadState is the engine's coarse overload level.
type LoadState int32

const (
	// LoadNormal: capacity headroom everywhere; full service for everyone.
	LoadNormal LoadState = iota
	// LoadPressured: occupancy crossed Config.PressuredAt; new anonymous
	// sessions get degraded instrumentation.
	LoadPressured
	// LoadSaturated: occupancy crossed Config.SaturatedAt; brand-new clients
	// are served uninstrumented pass-through and are not tracked.
	LoadSaturated
)

// String returns the state's metric/status name.
func (s LoadState) String() string {
	switch s {
	case LoadNormal:
		return "normal"
	case LoadPressured:
		return "pressured"
	case LoadSaturated:
		return "saturated"
	default:
		return "unknown"
	}
}

// Admission is AdmitPage's decision for one page view.
type Admission int32

const (
	// AdmitFull: full instrumentation (all decoys, per-page script variant).
	AdmitFull Admission = iota
	// AdmitDegraded: lighter instrumentation — Config.DegradedDecoys decoys,
	// the epoch's shared script variant, Config.DegradedKeyTTL key lifetime.
	AdmitDegraded
	// AdmitPassThrough: serve the origin response untouched and do not
	// create a session. Only ever returned for clients with no tracked
	// session while the engine is saturated.
	AdmitPassThrough
)

// String returns the admission's short name.
func (a Admission) String() string {
	switch a {
	case AdmitFull:
		return "full"
	case AdmitDegraded:
		return "degraded"
	case AdmitPassThrough:
		return "passthrough"
	default:
		return "unknown"
	}
}

// loadForcedAuto marks "no operator override" in Engine.loadForced.
const loadForcedAuto = -1

// loadRecomputeMask amortises load-state recomputation over serve events:
// every 256th AdmitPage (plus every sweeper tick) re-derives the state from
// the occupancy atomics. Under any traffic that could change the state, 256
// events pass in microseconds.
const loadRecomputeMask = 255

// nextLoadState is the pure transition function: given the previous state
// and the current occupancy fraction it returns the new state. Upward
// transitions fire at the configured thresholds; downward transitions
// require occupancy to fall hyst below the threshold that raised the state,
// so a load hovering at a boundary cannot flap the ladder.
func nextLoadState(prev LoadState, occ, pressuredAt, saturatedAt, hyst float64) LoadState {
	switch prev {
	case LoadSaturated:
		if occ >= saturatedAt-hyst {
			return LoadSaturated
		}
		if occ >= pressuredAt-hyst {
			return LoadPressured
		}
		return LoadNormal
	case LoadPressured:
		if occ >= saturatedAt {
			return LoadSaturated
		}
		if occ >= pressuredAt-hyst {
			return LoadPressured
		}
		return LoadNormal
	default:
		if occ >= saturatedAt {
			return LoadSaturated
		}
		if occ >= pressuredAt {
			return LoadPressured
		}
		return LoadNormal
	}
}

// Occupancy returns the fraction (0..1+) of engine capacity currently in
// use: the maximum of session-table occupancy, keystore client occupancy
// and, when Config.MemoryBudget is set, estimated memory over budget. It is
// a pure read over lock-free counters.
func (e *Engine) Occupancy() float64 {
	occ := e.trackingOccupancy()
	if k := e.keys.Occupancy(); k > occ {
		occ = k
	}
	return occ
}

// trackingOccupancy is the occupancy fraction of the resources that grow per
// TRACKED session: the session table and (when budgeted) estimated memory.
// The keystore is deliberately excluded: its client table is a bounded
// rolling window (LRU-evicted at Config-capped size), so "keystore full" is
// its steady state at scale, not an overload signal — a million-session node
// runs for hours with the keystore window saturated. Keystore pressure is
// relieved by degrading new-client issuance (fewer decoys, shorter TTLs),
// never by refusing to track sessions; see RecomputeLoadState.
func (e *Engine) trackingOccupancy() float64 {
	occ := float64(e.sessions.Active()) / float64(e.cfg.MaxSessions)
	if e.cfg.MemoryBudget > 0 {
		if m := float64(e.MemoryEstimate()) / float64(e.cfg.MemoryBudget); m > occ {
			occ = m
		}
	}
	return occ
}

// MemoryEstimate returns the engine's approximate live memory footprint in
// bytes — the session tracker, the keystore, and the shared string interner,
// the structures whose size is attacker-controlled. Lock-free and
// allocation-free.
func (e *Engine) MemoryEstimate() int64 {
	return e.sessions.MemoryEstimate() + e.keys.MemoryEstimate() + e.interner.MemoryEstimate()
}

// MemoryBreakdown itemises MemoryEstimate by component, in bytes. Lock-free.
func (e *Engine) MemoryBreakdown() (sessions, keys, interned int64) {
	return e.sessions.MemoryEstimate(), e.keys.MemoryEstimate(), e.interner.MemoryEstimate()
}

// InternStats returns occupancy and hit-rate counters for the shared string
// interner (normalized user agents and page paths).
func (e *Engine) InternStats() intern.Stats {
	return e.interner.Stats()
}

// MemoryBudget returns the configured budget in bytes (0 = unbudgeted).
func (e *Engine) MemoryBudget() int64 { return e.cfg.MemoryBudget }

// RecomputeLoadState re-derives the load state from current occupancy and
// publishes it. It is cheap (a few atomic loads and float compares, zero
// allocations) and is called automatically every loadRecomputeMask+1
// admission checks and from the sweeper; callers needing an immediately
// fresh state (tests, admin drills, benchmarks) may call it directly.
func (e *Engine) RecomputeLoadState() LoadState {
	occ := e.Occupancy()
	e.loadOcc.Store(uint64(occ * 1e6))
	prev := LoadState(e.loadState.Load())
	// The full ladder (up to pass-through shedding) runs off the resources
	// that grow per tracked session; a full keystore window only escalates
	// to Pressured, where degraded issuance shrinks its per-client cost.
	next := nextLoadState(prev, e.trackingOccupancy(), e.cfg.PressuredAt, e.cfg.SaturatedAt, e.cfg.LoadHysteresis)
	if next == LoadNormal && e.keys.Occupancy() >= e.cfg.PressuredAt {
		next = LoadPressured
	}
	if next != prev {
		e.loadState.Store(int32(next))
	}
	if f := e.loadForced.Load(); f != loadForcedAuto {
		return LoadState(f)
	}
	return next
}

// LoadState returns the current load state: the operator-forced state if a
// drill is active, otherwise the last computed state. Lock-free.
func (e *Engine) LoadState() LoadState {
	if f := e.loadForced.Load(); f != loadForcedAuto {
		return LoadState(f)
	}
	return LoadState(e.loadState.Load())
}

// LoadOccupancy returns the occupancy fraction captured at the last
// recomputation (not recomputed on read). Lock-free.
func (e *Engine) LoadOccupancy() float64 {
	return float64(e.loadOcc.Load()) / 1e6
}

// ForceLoadState pins the load state for operator drills ("what does my site
// look like degraded?") regardless of actual occupancy. Admission decisions
// and telemetry follow the forced state until ClearForcedLoadState.
func (e *Engine) ForceLoadState(s LoadState) {
	if s < LoadNormal || s > LoadSaturated {
		s = LoadNormal
	}
	e.loadForced.Store(int32(s))
}

// ClearForcedLoadState ends an operator drill; the state returns to the
// occupancy-derived value on the next recomputation.
func (e *Engine) ClearForcedLoadState() {
	e.loadForced.Store(loadForcedAuto)
	e.RecomputeLoadState()
}

// LoadForced returns the forced state and whether a drill is active.
func (e *Engine) LoadForced() (LoadState, bool) {
	f := e.loadForced.Load()
	if f == loadForcedAuto {
		return LoadNormal, false
	}
	return LoadState(f), true
}

// AdmitPage decides how much instrumentation a page view for clientIP/
// userAgent should get under the current load state, counting every below-
// full decision (the shed counters are exported as
// botdetect_load_shed_total{mode=...}). The check is lock-free and, at
// steady state, allocation-free: an atomic state load plus — only under
// pressure — one lock-free tracker Peek. Callers must honour
// AdmitPassThrough by not observing the request into the tracker (the proxy
// and cdn layers do); that is what makes saturation shed load instead of
// churning it.
func (e *Engine) AdmitPage(clientIP, userAgent string) Admission {
	if e.loadEvents.Add(1)&loadRecomputeMask == 0 {
		e.RecomputeLoadState()
	}
	state := e.LoadState()
	if state == LoadNormal {
		return AdmitFull
	}
	snap, tracked := e.sessions.Peek(session.Key{IP: clientIP, UserAgent: userAgent})
	if state == LoadPressured {
		if tracked {
			snap.Release()
			return AdmitFull
		}
		e.stats.shedDegraded.Add(1)
		return AdmitDegraded
	}
	// Saturated: only evidence keeps full service.
	if tracked {
		suspect := snap.Signals.Any()
		snap.Release()
		if suspect {
			return AdmitFull
		}
		e.stats.shedDegraded.Add(1)
		return AdmitDegraded
	}
	e.stats.shedPassThrough.Add(1)
	return AdmitPassThrough
}

// PreparePageDegraded is PreparePage for an AdmitDegraded page view: the
// page still carries a real key (a mouse beacon still proves a human), but
// with Config.DegradedDecoys decoys instead of the full set, key TTLs
// shortened to Config.DegradedKeyTTL, and the rotation epoch's shared script
// variant instead of a per-page pick — one page's worth of obfuscation
// serves every degraded client, so pressure costs no per-page compile
// entropy and each anonymous arrival pins less keystore memory.
func (e *Engine) PreparePageDegraded(clientIP, userAgent, pagePath string, ps *PageState) *htmlmod.Prepared {
	start := time.Now()
	e.keys.IssuePageDegraded(clientIP, pagePath, e.cfg.DegradedDecoys, e.cfg.DegradedKeyTTL, &ps.pk)
	e.tel.KeystoreIssue.ObserveSince(start)
	e.composePageWith(ps, 0) // shared variant: every degraded page uses pick 0
	e.tel.Prepare.ObserveSince(start)
	return &ps.prep
}

// PrepareInstrumentationDegraded is PrepareInstrumentation for an
// AdmitDegraded page view (engine-pooled PageState; Release returns it).
func (e *Engine) PrepareInstrumentationDegraded(clientIP, userAgent, pagePath string) (*htmlmod.Prepared, Instrumented) {
	ps := e.getPageState()
	prep := e.PreparePageDegraded(clientIP, userAgent, pagePath, ps)
	return prep, e.instrumented(ps)
}

// EvictionStats returns the session tracker's cumulative per-reason eviction
// counts (also exported as botdetect_sessions_evicted_total{reason=...}).
func (e *Engine) EvictionStats() session.EvictionStats { return e.sessions.Evictions() }
