package core

import (
	"testing"
	"time"

	"botdetect/internal/session"
)

// TestNextLoadStateHysteresis tables the pure transition function. The
// thresholds mirror the engine defaults (pressured 0.75, saturated 0.90,
// hysteresis 0.10): upward transitions fire exactly at the threshold,
// downward ones only once occupancy falls a full hysteresis band below it.
func TestNextLoadStateHysteresis(t *testing.T) {
	const (
		pres = 0.75
		sat  = 0.90
		hyst = 0.10
	)
	cases := []struct {
		prev LoadState
		occ  float64
		want LoadState
	}{
		{LoadNormal, 0.00, LoadNormal},
		{LoadNormal, 0.74, LoadNormal},
		{LoadNormal, 0.75, LoadPressured},
		{LoadNormal, 0.89, LoadPressured},
		{LoadNormal, 0.90, LoadSaturated}, // may skip a rung on a spike
		{LoadNormal, 1.20, LoadSaturated},

		{LoadPressured, 0.90, LoadSaturated},
		{LoadPressured, 0.89, LoadPressured},
		{LoadPressured, 0.74, LoadPressured}, // below pres but above pres-hyst: hold
		{LoadPressured, 0.65, LoadPressured},
		{LoadPressured, 0.64, LoadNormal},

		{LoadSaturated, 0.95, LoadSaturated},
		{LoadSaturated, 0.85, LoadSaturated}, // below sat but above sat-hyst: hold
		{LoadSaturated, 0.80, LoadSaturated},
		{LoadSaturated, 0.79, LoadPressured},
		{LoadSaturated, 0.65, LoadPressured},
		{LoadSaturated, 0.64, LoadNormal}, // can drop two rungs when the flood ends
	}
	for _, c := range cases {
		if got := nextLoadState(c.prev, c.occ, pres, sat, hyst); got != c.want {
			t.Errorf("nextLoadState(%v, %.2f) = %v, want %v", c.prev, c.occ, got, c.want)
		}
	}
}

// TestLoadLadderAndRecovery drives a real engine deterministically through
// Normal -> Pressured -> Saturated by filling the session table, checks the
// admission decision at every rung, then recovers by idle-expiring sessions
// on a virtual clock and watches the ladder step back down through the
// hysteresis bands.
func TestLoadLadderAndRecovery(t *testing.T) {
	d, vc := newTestEngine(Config{MaxSessions: 20, Shards: 1})
	ip := func(i int) string { return "10.50.0." + string(rune('0'+i/10)) + string(rune('0'+i%10)) }
	fillTo := func(n int) {
		for d.SessionCount() < n {
			vc.Advance(time.Minute)
			observe(d, ip(d.SessionCount()+1), "UA", "GET", "/a.html", 200, "", vc.Now())
		}
	}

	fillTo(14) // occupancy 0.70
	if st := d.RecomputeLoadState(); st != LoadNormal {
		t.Fatalf("state at 0.70 = %v, want normal", st)
	}
	if a := d.AdmitPage("203.0.113.1", "NewUA"); a != AdmitFull {
		t.Fatalf("admission at normal = %v, want full", a)
	}

	fillTo(15) // 0.75: pressured
	if st := d.RecomputeLoadState(); st != LoadPressured {
		t.Fatalf("state at 0.75 = %v, want pressured", st)
	}
	if a := d.AdmitPage(ip(3), "UA"); a != AdmitFull {
		t.Fatalf("tracked session under pressure = %v, want full", a)
	}
	if a := d.AdmitPage("203.0.113.2", "NewUA"); a != AdmitDegraded {
		t.Fatalf("new client under pressure = %v, want degraded", a)
	}

	fillTo(18) // 0.90: saturated
	if st := d.RecomputeLoadState(); st != LoadSaturated {
		t.Fatalf("state at 0.90 = %v, want saturated", st)
	}
	// Plant evidence on one tracked session: it must keep full service.
	key := session.Key{IP: ip(5), UserAgent: "UA"}
	if _, ok := d.sessions.Mark(key, session.SignalMouse); !ok {
		t.Fatal("Mark failed on tracked session")
	}
	if a := d.AdmitPage(key.IP, key.UserAgent); a != AdmitFull {
		t.Fatalf("evidence-bearing session at saturation = %v, want full", a)
	}
	if a := d.AdmitPage(ip(7), "UA"); a != AdmitDegraded {
		t.Fatalf("tracked anonymous session at saturation = %v, want degraded", a)
	}
	if a := d.AdmitPage("203.0.113.3", "NewUA"); a != AdmitPassThrough {
		t.Fatalf("new client at saturation = %v, want passthrough", a)
	}
	stats := d.Stats()
	if stats.ShedPassThrough == 0 || stats.ShedDegraded == 0 {
		t.Fatalf("shed counters = passthrough %d degraded %d, want both > 0",
			stats.ShedPassThrough, stats.ShedDegraded)
	}

	// Recovery. Sessions were observed a minute apart; idle-expire them a
	// few at a time and watch the hysteresis bands. Session i last acted at
	// roughly t0 + i minutes, so advancing the clock to t0 + idle + i
	// minutes expires the first i sessions. The evidence mark touched
	// session 5, so it expires one rung later than its observe time alone
	// would suggest; the counts below account for that.
	idle := d.Config().SessionIdleTimeout
	t0 := vc.Now().Add(-time.Duration(18) * time.Minute)

	expireTo := func(n int) {
		deadline := t0.Add(idle + 19*time.Minute)
		for d.SessionCount() > n && vc.Now().Before(deadline) {
			vc.Advance(30 * time.Second)
			d.SweepStep(vc.Now())
		}
		if got := d.SessionCount(); got != n {
			t.Fatalf("SessionCount after expiry = %d, want %d", got, n)
		}
	}

	expireTo(17) // 0.85: inside the saturated hold band
	if st := d.RecomputeLoadState(); st != LoadSaturated {
		t.Fatalf("state at 0.85 = %v, want saturated (hysteresis hold)", st)
	}
	expireTo(15) // 0.75: below sat-hyst, above pres-hyst
	if st := d.RecomputeLoadState(); st != LoadPressured {
		t.Fatalf("state at 0.75 on the way down = %v, want pressured", st)
	}
	expireTo(12) // 0.60: below pres-hyst
	if st := d.RecomputeLoadState(); st != LoadNormal {
		t.Fatalf("state at 0.60 = %v, want normal", st)
	}
	if a := d.AdmitPage("203.0.113.4", "NewUA"); a != AdmitFull {
		t.Fatalf("admission after recovery = %v, want full", a)
	}
}

// TestForcedLoadStateDrill: the operator override pins the state regardless
// of occupancy and releases cleanly.
func TestForcedLoadStateDrill(t *testing.T) {
	d, _ := newTestEngine(Config{MaxSessions: 1000})
	if st := d.RecomputeLoadState(); st != LoadNormal {
		t.Fatalf("empty engine state = %v", st)
	}
	d.ForceLoadState(LoadSaturated)
	if st, forced := d.LoadForced(); !forced || st != LoadSaturated {
		t.Fatalf("LoadForced = %v,%v", st, forced)
	}
	if d.LoadState() != LoadSaturated {
		t.Fatal("forced state not visible via LoadState")
	}
	if a := d.AdmitPage("203.0.113.9", "UA"); a != AdmitPassThrough {
		t.Fatalf("admission under forced saturation = %v, want passthrough", a)
	}
	d.ClearForcedLoadState()
	if _, forced := d.LoadForced(); forced {
		t.Fatal("drill still forced after clear")
	}
	if d.LoadState() != LoadNormal {
		t.Fatalf("state after clear = %v, want normal", d.LoadState())
	}
}

// TestAdmitPageZeroAllocSteadyState gates the serve-path admission check at
// zero allocations — in every load state, for tracked and untracked clients
// alike — so the overload ladder never adds GC pressure to the path it
// exists to protect. (The run count crosses the amortised recompute mask,
// so the periodic RecomputeLoadState is covered too.)
func TestAdmitPageZeroAllocSteadyState(t *testing.T) {
	d, vc := newTestEngine(Config{MaxSessions: 64, Shards: 1})
	observe(d, "7.7.7.7", "UA", "GET", "/a.html", 200, "", vc.Now())
	d.RecomputeLoadState()

	if a := testing.AllocsPerRun(600, func() { d.AdmitPage("7.7.7.7", "UA") }); a != 0 {
		t.Fatalf("AdmitPage allocs at normal load = %v, want 0", a)
	}
	d.ForceLoadState(LoadPressured)
	if a := testing.AllocsPerRun(600, func() { d.AdmitPage("203.0.113.9", "UA") }); a != 0 {
		t.Fatalf("AdmitPage allocs for new client under pressure = %v, want 0", a)
	}
	d.ForceLoadState(LoadSaturated)
	if a := testing.AllocsPerRun(600, func() { d.AdmitPage("203.0.113.9", "UA") }); a != 0 {
		t.Fatalf("AdmitPage allocs for pass-through at saturation = %v, want 0", a)
	}
	if a := testing.AllocsPerRun(600, func() { d.AdmitPage("7.7.7.7", "UA") }); a != 0 {
		t.Fatalf("AdmitPage allocs for tracked client at saturation = %v, want 0", a)
	}
	d.ClearForcedLoadState()
}
