package core

import (
	"fmt"
	"testing"
	"time"

	"botdetect/internal/logfmt"
)

// TestMemoryCeilingPerSession is the e2e gate for the million-session memory
// engine (ISSUE 9): after a realistic serve pattern — one instrumented page
// issue plus a few observed requests per client — the engine's own
// MemoryEstimate must come in at or under 2 KiB per tracked session. The
// estimate is the same number admission control budgets against and the serve
// benchmark reports as bytes_per_session, so this pins the plan's core
// arithmetic: 1M clients fit in ~2 GB.
func TestMemoryCeilingPerSession(t *testing.T) {
	const clients = 20000
	e := New(Config{Seed: 11, MaxSessions: clients * 2})
	base := time.Unix(1136073600, 0)
	ps := &PageState{}
	for i := 0; i < clients; i++ {
		ip := fmt.Sprintf("10.%d.%d.%d", i>>16, (i>>8)&0xff, i&0xff)
		ua := fmt.Sprintf("Mozilla/5.0 (bench; rv:%d)", i%64) // 64 distinct UAs, like real traffic
		e.PreparePage(ip, ua, "/index.html", ps)
		for r := 0; r < 3; r++ {
			e.ObserveRequestQuiet(logfmt.Entry{
				Time: base.Add(time.Duration(r) * time.Second), ClientIP: ip, UserAgent: ua,
				Method: "GET", Path: fmt.Sprintf("/doc/%d.html", r), Status: 200, Bytes: 1200,
				ContentType: "text/html",
			})
		}
	}

	n := e.SessionCount()
	if n < clients*99/100 {
		t.Fatalf("tracked sessions = %d, want ~%d", n, clients)
	}
	perSession := e.MemoryEstimate() / int64(n)
	t.Logf("engine estimate: %d sessions, %d B total, %d B/session", n, e.MemoryEstimate(), perSession)
	sess, keys, interned := e.MemoryBreakdown()
	t.Logf("breakdown: sessions=%d keys=%d interned=%d", sess, keys, interned)
	if perSession > 2048 {
		t.Fatalf("engine memory = %d B/session, exceeds the 2 KiB ceiling", perSession)
	}
}
