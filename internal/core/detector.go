// Package core implements the paper's robot-detection system: dynamic page
// instrumentation (human activity detection plus standard-browser testing),
// per-session signal accumulation, and the on-line classification rule that
// separates human sessions from robot sessions
//
//	S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM)
//
// The Detector is transport-agnostic: callers (the HTTP proxy middleware in
// internal/proxy, the CoDeeN-scale simulator in internal/cdn, and the offline
// log analyzer) feed it page bodies and request observations and receive
// rewritten pages, beacon responses and per-session verdicts.
package core

import (
	"container/list"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/htmlmod"
	"botdetect/internal/jsgen"
	"botdetect/internal/keystore"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
)

// Class is the detector's decision about a session's traffic source.
type Class int

const (
	// ClassUndecided means the detector has not yet seen enough evidence.
	ClassUndecided Class = iota
	// ClassHuman means the traffic source is a human user.
	ClassHuman
	// ClassRobot means the traffic source is an automated agent.
	ClassRobot
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassHuman:
		return "human"
	case ClassRobot:
		return "robot"
	default:
		return "undecided"
	}
}

// Confidence qualifies a verdict.
type Confidence int

const (
	// Tentative verdicts may flip as more requests arrive.
	Tentative Confidence = iota
	// Probable verdicts rest on behavioural evidence (browser testing).
	Probable
	// Definite verdicts rest on direct evidence (input events, decoy hits,
	// hidden-link fetches, CAPTCHA).
	Definite
)

// String returns the confidence name.
func (c Confidence) String() string {
	switch c {
	case Definite:
		return "definite"
	case Probable:
		return "probable"
	default:
		return "tentative"
	}
}

// Verdict is the classification of one session.
type Verdict struct {
	// Class is the decision.
	Class Class
	// Confidence qualifies the decision.
	Confidence Confidence
	// Reason is a human-readable explanation of the dominant evidence.
	Reason string
	// AtRequest is the request count at which the dominant evidence was
	// observed (0 when no evidence has been observed).
	AtRequest int64
}

// ClassifiedSession pairs a finished session with its final verdict.
type ClassifiedSession struct {
	Snapshot session.Snapshot
	Verdict  Verdict
}

// Response is the body the caller should serve for an intercepted
// instrumentation request (beacon, generated stylesheet/script, hidden page).
type Response struct {
	// Status is the HTTP status code.
	Status int
	// ContentType is the response content type.
	ContentType string
	// Body is the response body.
	Body []byte
	// NoCache indicates the response must carry Cache-Control: no-cache,
	// no-store (always true for generated instrumentation objects).
	NoCache bool
}

// Config controls the Detector.
type Config struct {
	// BeaconPrefix is the path prefix reserved for instrumentation objects
	// (default "/__bd"). It should not collide with origin content.
	BeaconPrefix string
	// BeaconBase is an optional absolute URL prefix for beacons (scheme and
	// host); empty means site-relative beacons.
	BeaconBase string
	// Decoys is the number of decoy beacon functions per page (paper: m).
	Decoys int
	// KeyDigits is the length of generated keys in decimal digits.
	KeyDigits int
	// ObfuscateJS enables lexical obfuscation of the generated script.
	ObfuscateJS bool
	// MinRequests is the number of requests a session must reach before the
	// behavioural (browser-test) rules classify it (paper: 10).
	MinRequests int64
	// SessionIdleTimeout ends a session after this inactivity (paper: 1 h).
	SessionIdleTimeout time.Duration
	// MaxSessions bounds concurrently tracked sessions.
	MaxSessions int
	// MaxScripts bounds retained generated scripts awaiting download.
	MaxScripts int
	// Seed drives key and script generation.
	Seed uint64
	// Clock supplies time; defaults to the wall clock.
	Clock clock.Clock
	// OnSessionEnd, when non-nil, receives every session that ends together
	// with its final verdict.
	OnSessionEnd func(ClassifiedSession)
}

func (c Config) withDefaults() Config {
	if c.BeaconPrefix == "" {
		c.BeaconPrefix = jsgen.DefaultBeaconPrefix
	}
	if c.Decoys <= 0 {
		c.Decoys = 4
	}
	if c.KeyDigits <= 0 {
		c.KeyDigits = 10
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 10
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = time.Hour
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1 << 20
	}
	if c.MaxScripts <= 0 {
		c.MaxScripts = 65536
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats are the detector's cumulative counters.
type Stats struct {
	// PagesInstrumented counts HTML pages rewritten.
	PagesInstrumented int64
	// OriginalBytes and AddedBytes track page sizes before rewriting and the
	// instrumentation bytes added (rewritten HTML growth plus generated
	// scripts and stylesheets actually served), for the overhead experiment.
	OriginalBytes int64
	AddedBytes    int64
	// BeaconRequests counts intercepted instrumentation requests by kind.
	MouseBeacons   int64
	DecoyBeacons   int64
	ReplayBeacons  int64
	UnknownBeacons int64
	ExecBeacons    int64
	CSSBeacons     int64
	ScriptServes   int64
	HiddenHits     int64
	UAReports      int64
	UAMismatches   int64
}

type storedScript struct {
	token   string
	body    []byte
	element *list.Element
}

// Detector is the robot-detection engine. It is safe for concurrent use.
type Detector struct {
	cfg  Config
	keys *keystore.Store
	gen  *jsgen.Generator

	sessions *session.Tracker

	mu      sync.Mutex
	src     *rng.Source
	scripts map[string]*storedScript
	lru     *list.List
	stats   Stats
}

// New creates a Detector.
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg: cfg,
		gen: jsgen.NewGenerator(),
		keys: keystore.New(keystore.Config{
			Decoys:    cfg.Decoys,
			KeyDigits: cfg.KeyDigits,
			TTL:       cfg.SessionIdleTimeout,
			Seed:      cfg.Seed,
			Clock:     cfg.Clock,
		}),
		src:     rng.New(cfg.Seed).Fork("core"),
		scripts: make(map[string]*storedScript),
		lru:     list.New(),
	}
	d.sessions = session.NewTracker(session.Config{
		IdleTimeout: cfg.SessionIdleTimeout,
		MaxSessions: cfg.MaxSessions,
		Clock:       cfg.Clock,
		Evicted:     d.sessionEnded,
	})
	return d
}

// sessionEnded forwards finished sessions (with final verdicts) to the
// configured callback.
func (d *Detector) sessionEnded(snap session.Snapshot) {
	if d.cfg.OnSessionEnd == nil {
		return
	}
	d.cfg.OnSessionEnd(ClassifiedSession{Snapshot: snap, Verdict: d.ClassifySnapshot(snap)})
}

// Instrumented describes what InstrumentPage injected for one page view.
type Instrumented struct {
	// Issued carries the keys and tokens generated for the page.
	Issued keystore.Issued
	// ScriptPath, CSSPath, HiddenPath are the request paths of the injected
	// objects.
	ScriptPath string
	CSSPath    string
	HiddenPath string
	// AddedBytes is the HTML size increase.
	AddedBytes int
}

// InstrumentPage rewrites one HTML page served to clientIP/userAgent:
// it issues fresh keys, generates the per-page obfuscated script, injects
// the beacon stylesheet, the external script, the inline user-agent
// reporter, the body event handlers, and the hidden trap link. The rewritten
// page and a description of the injections are returned. Non-HTML bodies
// should not be passed.
func (d *Detector) InstrumentPage(clientIP, userAgent, pagePath string, html []byte) ([]byte, Instrumented) {
	iss := d.keys.Issue(clientIP, pagePath)
	prefix := d.cfg.BeaconPrefix

	d.mu.Lock()
	seed := d.src.Uint64()
	d.mu.Unlock()

	script := d.gen.Script(jsgen.Params{
		BeaconBase:   d.cfg.BeaconBase,
		BeaconPrefix: prefix,
		RealKey:      iss.Key,
		DecoyKeys:    iss.Decoys,
		UAReportKey:  iss.ScriptToken,
		Obfuscate:    d.cfg.ObfuscateJS,
		Seed:         seed,
	})
	d.storeScript(iss.ScriptToken, []byte(script))

	inj := htmlmod.Injection{
		CSSHref:      d.cfg.BeaconBase + jsgen.CSSPath(prefix, iss.CSSToken),
		ScriptSrc:    d.cfg.BeaconBase + jsgen.ScriptPath(prefix, iss.ScriptToken),
		InlineScript: jsgen.InlineUAScript(d.cfg.BeaconBase, prefix, iss.ScriptToken),
		HandlerName:  d.gen.HandlerName,
		HiddenHref:   d.cfg.BeaconBase + jsgen.HiddenPath(prefix, iss.HiddenToken),
		HiddenImgSrc: d.cfg.BeaconBase + jsgen.TransparentImagePath(prefix),
	}
	res := htmlmod.Rewrite(html, inj)

	d.mu.Lock()
	d.stats.PagesInstrumented++
	d.stats.OriginalBytes += int64(len(html))
	d.stats.AddedBytes += int64(res.AddedBytes)
	d.mu.Unlock()

	return res.HTML, Instrumented{
		Issued:     iss,
		ScriptPath: jsgen.ScriptPath(prefix, iss.ScriptToken),
		CSSPath:    jsgen.CSSPath(prefix, iss.CSSToken),
		HiddenPath: jsgen.HiddenPath(prefix, iss.HiddenToken),
		AddedBytes: res.AddedBytes,
	}
}

func (d *Detector) storeScript(token string, body []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.scripts[token]; ok {
		old.body = body
		d.lru.MoveToFront(old.element)
		return
	}
	s := &storedScript{token: token, body: body}
	s.element = d.lru.PushFront(s)
	d.scripts[token] = s
	for len(d.scripts) > d.cfg.MaxScripts {
		back := d.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*storedScript)
		d.lru.Remove(back)
		delete(d.scripts, victim.token)
	}
}

func (d *Detector) loadScript(token string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.scripts[token]
	if !ok {
		return nil, false
	}
	d.lru.MoveToFront(s.element)
	return s.body, true
}

// ObserveRequest records one ordinary (non-instrumentation) request for
// session tracking and returns the session's snapshot.
func (d *Detector) ObserveRequest(e logfmt.Entry) session.Snapshot {
	return d.sessions.Observe(e)
}

// IsInstrumentationPath reports whether the request path belongs to the
// detector's reserved prefix and should be routed to HandleBeacon instead of
// the origin.
func (d *Detector) IsInstrumentationPath(path string) bool {
	clean := path
	if i := strings.IndexByte(clean, '?'); i >= 0 {
		clean = clean[:i]
	}
	return strings.HasPrefix(clean, d.cfg.BeaconPrefix+"/")
}

var (
	emptyCSS   = []byte("/* */\n")
	tinyGIF    = []byte("GIF89a\x01\x00\x01\x00\x80\x00\x00\x00\x00\x00\xff\xff\xff!\xf9\x04\x01\x00\x00\x00\x00,\x00\x00\x00\x00\x01\x00\x01\x00\x00\x02\x02D\x01\x00;")
	tinyJPEG   = []byte("\xff\xd8\xff\xe0\x00\x10JFIF\x00\x01\x01\x00\x00\x01\x00\x01\x00\x00\xff\xd9")
	hiddenPage = []byte("<html><head><title>ok</title></head><body></body></html>")
	fallbackJS = []byte("// expired\n")
)

// HandleBeacon processes a request under the instrumentation prefix for the
// given client, updating the session's detection signals, and returns the
// response to serve. ok is false when the path is not an instrumentation
// path (the caller should forward it to the origin instead).
func (d *Detector) HandleBeacon(clientIP, userAgent, path string) (Response, bool) {
	if !d.IsInstrumentationPath(path) {
		return Response{}, false
	}
	key := session.Key{IP: clientIP, UserAgent: userAgent}
	rest := strings.TrimPrefix(path, d.cfg.BeaconPrefix+"/")
	query := ""
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		query = rest[i+1:]
		rest = rest[:i]
	}

	switch {
	case strings.HasPrefix(rest, "js/") && strings.HasSuffix(rest, ".gif"):
		// JavaScript-execution beacon with the reported user agent.
		d.sessions.Mark(key, session.SignalJS)
		d.bump(func(s *Stats) { s.ExecBeacons++ })
		if agent := queryParam(query, "ua"); agent != "" {
			d.checkUAMismatch(key, userAgent, agent)
		}
		return Response{Status: 200, ContentType: "image/gif", Body: tinyGIF, NoCache: true}, true

	case strings.HasPrefix(rest, "ua/"):
		// document.write stylesheet report: ua/<token>/<agent>.css
		d.sessions.Mark(key, session.SignalJS)
		d.bump(func(s *Stats) { s.UAReports++ })
		parts := strings.SplitN(rest, "/", 3)
		if len(parts) == 3 {
			agent := strings.TrimSuffix(parts[2], ".css")
			d.checkUAMismatch(key, userAgent, agent)
		}
		return Response{Status: 200, ContentType: "text/css", Body: emptyCSS, NoCache: true}, true

	case strings.HasPrefix(rest, "hidden/"):
		d.sessions.Mark(key, session.SignalHidden)
		d.bump(func(s *Stats) { s.HiddenHits++ })
		return Response{Status: 200, ContentType: "text/html", Body: hiddenPage, NoCache: true}, true

	case rest == "transp_1x1.gif":
		return Response{Status: 200, ContentType: "image/gif", Body: tinyGIF, NoCache: true}, true

	case strings.HasPrefix(rest, "index_") && strings.HasSuffix(rest, ".js"):
		token := strings.TrimSuffix(strings.TrimPrefix(rest, "index_"), ".js")
		d.sessions.Mark(key, session.SignalJSFile)
		d.bump(func(s *Stats) { s.ScriptServes++ })
		body, ok := d.loadScript(token)
		if !ok {
			body = fallbackJS
		}
		d.bump(func(s *Stats) { s.AddedBytes += int64(len(body)) })
		return Response{Status: 200, ContentType: "application/javascript", Body: body, NoCache: true}, true

	case strings.HasSuffix(rest, ".css"):
		d.sessions.Mark(key, session.SignalCSS)
		d.bump(func(s *Stats) { s.CSSBeacons++; s.AddedBytes += int64(len(emptyCSS)) })
		return Response{Status: 200, ContentType: "text/css", Body: emptyCSS, NoCache: true}, true

	case strings.HasSuffix(rest, ".jpg"):
		keyStr := strings.TrimSuffix(rest, ".jpg")
		verdict := d.keys.Validate(clientIP, keyStr)
		switch verdict {
		case keystore.Human:
			d.sessions.Mark(key, session.SignalMouse)
			d.bump(func(s *Stats) { s.MouseBeacons++ })
		case keystore.Decoy:
			d.sessions.Mark(key, session.SignalDecoy)
			d.bump(func(s *Stats) { s.DecoyBeacons++ })
		case keystore.Replayed:
			d.sessions.Mark(key, session.SignalReplay)
			d.bump(func(s *Stats) { s.ReplayBeacons++ })
		default:
			// A key the server never issued: a guess or a stale replay.
			d.sessions.Mark(key, session.SignalDecoy)
			d.bump(func(s *Stats) { s.UnknownBeacons++ })
		}
		return Response{Status: 200, ContentType: "image/jpeg", Body: tinyJPEG, NoCache: true}, true

	default:
		return Response{Status: 404, ContentType: "text/plain", Body: []byte("not found\n"), NoCache: true}, true
	}
}

// checkUAMismatch compares the JavaScript-reported agent string with the
// User-Agent header (both normalised the way the injected script normalises
// them) and marks the session on mismatch.
func (d *Detector) checkUAMismatch(key session.Key, headerUA, reported string) {
	if unescaped, err := url.PathUnescape(reported); err == nil {
		reported = unescaped
	}
	if unescaped, err := url.QueryUnescape(reported); err == nil {
		reported = unescaped
	}
	want := normalizeUA(headerUA)
	got := normalizeUA(reported)
	if want == "" || got == "" {
		return
	}
	if want != got {
		d.sessions.Mark(key, session.SignalUAMismatch)
		d.bump(func(s *Stats) { s.UAMismatches++ })
	}
}

func normalizeUA(ua string) string {
	return strings.ReplaceAll(strings.ToLower(ua), " ", "")
}

// queryParam extracts a single query parameter value without url.Values
// allocation overhead for the common single-parameter beacon case.
func queryParam(query, name string) string {
	for query != "" {
		var pair string
		if i := strings.IndexByte(query, '&'); i >= 0 {
			pair, query = query[:i], query[i+1:]
		} else {
			pair, query = query, ""
		}
		if eq := strings.IndexByte(pair, '='); eq >= 0 && pair[:eq] == name {
			return pair[eq+1:]
		}
	}
	return ""
}

// MarkCaptchaPassed records that the session solved a CAPTCHA challenge.
func (d *Detector) MarkCaptchaPassed(key session.Key) {
	d.sessions.Mark(key, session.SignalCaptcha)
}

// Classify returns the current verdict for the session, or an undecided
// verdict when the session is unknown.
func (d *Detector) Classify(key session.Key) Verdict {
	snap, ok := d.sessions.Get(key)
	if !ok {
		return Verdict{Class: ClassUndecided, Confidence: Tentative, Reason: "unknown session"}
	}
	return d.ClassifySnapshot(snap)
}

// ClassifySnapshot applies the detection rules to a session snapshot.
//
// Direct robot evidence comes first (Definite): decoy fetches, replayed
// keys, hidden-link fetches, and a forged User-Agent can only be produced by
// automation — a browser driven by a human never calls the decoy functions
// or follows invisible links — so they outrank everything else. This also
// catches robots that blindly fetch every URL in the script and therefore
// happen to hit the real key as well.
//
// Direct human evidence is next (Definite): a valid input-event beacon or a
// passed CAPTCHA.
//
// Behavioural evidence (Probable, only after MinRequests requests): running
// the injected JavaScript without ever producing an input event indicates a
// robot (the S_JS − S_MM term); fetching the injected stylesheet without
// contrary evidence indicates a standard browser, hence a human (the S_CSS
// term); fetching neither indicates a robot.
func (d *Detector) ClassifySnapshot(snap session.Snapshot) Verdict {
	if at, ok := snap.SignalAt(session.SignalDecoy); ok {
		return Verdict{ClassRobot, Definite, "fetched a decoy beacon URL without executing the script", at}
	}
	if at, ok := snap.SignalAt(session.SignalReplay); ok {
		return Verdict{ClassRobot, Definite, "replayed an already consumed beacon key", at}
	}
	if at, ok := snap.SignalAt(session.SignalHidden); ok {
		return Verdict{ClassRobot, Definite, "followed a link invisible to human users", at}
	}
	if at, ok := snap.SignalAt(session.SignalUAMismatch); ok {
		return Verdict{ClassRobot, Definite, "User-Agent header does not match the script-reported agent", at}
	}
	if at, ok := snap.SignalAt(session.SignalMouse); ok {
		return Verdict{ClassHuman, Definite, "input event beacon carried a valid key", at}
	}
	if at, ok := snap.SignalAt(session.SignalCaptcha); ok {
		return Verdict{ClassHuman, Definite, "passed CAPTCHA challenge", at}
	}

	total := snap.Counts.Total
	if total < d.cfg.MinRequests {
		return Verdict{ClassUndecided, Tentative, "fewer requests than the classification threshold", 0}
	}
	jsAt, hasJS := snap.SignalAt(session.SignalJS)
	if hasJS {
		// Ran the script but never produced an input event over a full
		// session prefix: S_JS − S_MM.
		return Verdict{ClassRobot, Probable, "executed JavaScript but produced no input events", jsAt}
	}
	if cssAt, ok := snap.SignalAt(session.SignalCSS); ok {
		return Verdict{ClassHuman, Probable, "fetched the embedded stylesheet like a standard browser", cssAt}
	}
	// The "no presentation objects" rule first becomes decidable at the
	// classification threshold; report that point so downstream consumers
	// (rate limiting, the complaint model) know when enforcement could start.
	return Verdict{ClassRobot, Probable, "ignored all embedded presentation objects", d.cfg.MinRequests}
}

// Sessions returns snapshots of all active sessions.
func (d *Detector) Sessions() []session.Snapshot { return d.sessions.Snapshots() }

// Session returns the snapshot of one active session, if it is tracked.
func (d *Detector) Session(key session.Key) (session.Snapshot, bool) { return d.sessions.Get(key) }

// SessionCount returns the number of active sessions.
func (d *Detector) SessionCount() int { return d.sessions.Active() }

// ExpireIdle ends idle sessions as of now, reporting them via OnSessionEnd.
func (d *Detector) ExpireIdle(now time.Time) int { return d.sessions.ExpireIdle(now) }

// FlushSessions ends all sessions and returns them with their final verdicts.
func (d *Detector) FlushSessions() []ClassifiedSession {
	snaps := d.sessions.FlushAll()
	out := make([]ClassifiedSession, len(snaps))
	for i, s := range snaps {
		out[i] = ClassifiedSession{Snapshot: s, Verdict: d.ClassifySnapshot(s)}
	}
	return out
}

// Stats returns a copy of the cumulative counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Config returns the effective configuration (with defaults applied).
func (d *Detector) Config() Config { return d.cfg }

func (d *Detector) bump(f func(*Stats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

// String renders a verdict compactly.
func (v Verdict) String() string {
	return fmt.Sprintf("%s (%s, request %d): %s", v.Class, v.Confidence, v.AtRequest, v.Reason)
}
