package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"botdetect/internal/clock"
	"botdetect/internal/htmlmod"
	"botdetect/internal/logfmt"
	"botdetect/internal/session"
	"botdetect/internal/webmodel"
)

func newTestEngine(cfg Config) (*Engine, *clock.Virtual) {
	vc := clock.NewVirtual(time.Time{})
	cfg.Clock = vc
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return New(cfg), vc
}

func pageHTML() []byte {
	site := webmodel.Generate(webmodel.SiteConfig{Seed: 5, NumPages: 10})
	return site.Lookup("/").Body
}

func observe(d *Engine, ip, ua, method, path string, status int, ref string, at time.Time) session.Snapshot {
	return d.ObserveRequest(logfmt.Entry{
		Time: at, ClientIP: ip, UserAgent: ua, Method: method, Path: path,
		Status: status, Referer: ref, Bytes: 1024,
	})
}

func TestInstrumentPageInjectsEverything(t *testing.T) {
	d, _ := newTestEngine(Config{ObfuscateJS: true})
	html := pageHTML()
	out, inst := d.InstrumentPage("10.0.0.1", "Firefox", "/", html)
	body := string(out)
	if !strings.Contains(body, inst.CSSPath) {
		t.Fatal("CSS beacon path not present in rewritten page")
	}
	if !strings.Contains(body, inst.ScriptPath) {
		t.Fatal("script path not present in rewritten page")
	}
	if !strings.Contains(body, inst.HiddenPath) {
		t.Fatal("hidden link not present in rewritten page")
	}
	if !strings.Contains(body, "onmousemove=") {
		t.Fatal("mouse handler attribute missing")
	}
	if inst.AddedBytes <= 0 || len(out) <= len(html) {
		t.Fatal("instrumentation did not grow the page")
	}
	if len(inst.Issued.Decoys) != d.Config().Decoys {
		t.Fatalf("decoys = %d", len(inst.Issued.Decoys))
	}
	st := d.Stats()
	if st.PagesInstrumented != 1 || st.OriginalBytes != int64(len(html)) || st.AddedBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The structural extraction must see the instrumentation as a browser would.
	sum := htmlmod.Extract(out)
	if !sum.BodyMouseHandler {
		t.Fatal("rewritten page lacks body mouse handler")
	}
	if len(sum.HiddenLinks) != 1 {
		t.Fatalf("hidden links = %v", sum.HiddenLinks)
	}
}

func TestBeaconServesScriptAndMarksSignals(t *testing.T) {
	d, _ := newTestEngine(Config{ObfuscateJS: false})
	ip, ua := "10.0.0.2", "Firefox"
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())

	// Script download.
	resp, ok := d.HandleBeacon(ip, ua, inst.ScriptPath)
	if !ok || resp.Status != 200 || resp.ContentType != "application/javascript" || !resp.NoCache {
		t.Fatalf("script response = %+v, %v", resp, ok)
	}
	if !strings.Contains(string(resp.Body), inst.Issued.Key) {
		t.Fatal("served script does not contain the issued key (unobfuscated mode)")
	}
	// CSS beacon.
	resp, ok = d.HandleBeacon(ip, ua, inst.CSSPath)
	if !ok || resp.ContentType != "text/css" {
		t.Fatalf("css response = %+v", resp)
	}
	// Mouse beacon with the real key.
	resp, ok = d.HandleBeacon(ip, ua, d.Config().BeaconPrefix+"/"+inst.Issued.Key+".jpg")
	if !ok || resp.ContentType != "image/jpeg" {
		t.Fatalf("mouse beacon response = %+v", resp)
	}

	snap, found := d.sessions.Get(session.Key{IP: ip, UserAgent: ua})
	if !found {
		t.Fatal("session not tracked")
	}
	if !snap.Has(session.SignalJSFile) || !snap.Has(session.SignalCSS) || !snap.Has(session.SignalMouse) {
		t.Fatalf("signals = %v", snap.Signals)
	}
	st := d.Stats()
	if st.ScriptServes != 1 || st.CSSBeacons != 1 || st.MouseBeacons != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBeaconDecoyAndReplayAndUnknown(t *testing.T) {
	d, _ := newTestEngine(Config{})
	ip, ua := "10.0.0.3", "BadBot"
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	prefix := d.Config().BeaconPrefix

	// Decoy fetch.
	d.HandleBeacon(ip, ua, prefix+"/"+inst.Issued.Decoys[0]+".jpg")
	// Real key, twice: second is a replay.
	d.HandleBeacon(ip, ua, prefix+"/"+inst.Issued.Key+".jpg")
	d.HandleBeacon(ip, ua, prefix+"/"+inst.Issued.Key+".jpg")
	// Guessed key.
	d.HandleBeacon(ip, ua, prefix+"/0000000000.jpg")

	snap, _ := d.sessions.Get(session.Key{IP: ip, UserAgent: ua})
	if !snap.Has(session.SignalDecoy) || !snap.Has(session.SignalReplay) || !snap.Has(session.SignalMouse) {
		t.Fatalf("signals = %v", snap.Signals)
	}
	st := d.Stats()
	if st.DecoyBeacons != 1 || st.ReplayBeacons != 1 || st.MouseBeacons != 1 || st.UnknownBeacons != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Direct robot evidence outranks the mouse signal: a client that fetched
	// decoy URLs is automation even if it also hit the real key (blind
	// fetchers grab every URL in the script).
	v := d.ClassifySnapshot(snap)
	if v.Class != ClassRobot || v.Confidence != Definite {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestExecBeaconAndUAMismatch(t *testing.T) {
	d, _ := newTestEngine(Config{})
	ip := "10.0.0.4"
	headerUA := "Mozilla/5.0 (Windows NT 5.1) Firefox/1.5"
	_, inst := d.InstrumentPage(ip, headerUA, "/", pageHTML())
	prefix := d.Config().BeaconPrefix

	// Exec beacon reporting an agent matching the header.
	reported := strings.ReplaceAll(strings.ToLower(headerUA), " ", "")
	path := prefix + "/js/" + inst.Issued.ScriptToken + ".gif?ua=" + reported
	if _, ok := d.HandleBeacon(ip, headerUA, path); !ok {
		t.Fatal("exec beacon not handled")
	}
	snap, _ := d.sessions.Get(session.Key{IP: ip, UserAgent: headerUA})
	if !snap.Has(session.SignalJS) {
		t.Fatal("JS signal not set")
	}
	if snap.Has(session.SignalUAMismatch) {
		t.Fatal("matching agent flagged as mismatch")
	}

	// A second client forges the header User-Agent: the script reports the
	// truth and the mismatch is detected.
	ip2 := "10.0.0.5"
	forgedHeader := "Googlebot/2.1"
	_, inst2 := d.InstrumentPage(ip2, forgedHeader, "/", pageHTML())
	real := "mozilla/5.0(windowsnt5.1)firefox/1.5"
	d.HandleBeacon(ip2, forgedHeader, prefix+"/js/"+inst2.Issued.ScriptToken+".gif?ua="+real)
	snap2, _ := d.sessions.Get(session.Key{IP: ip2, UserAgent: forgedHeader})
	if !snap2.Has(session.SignalUAMismatch) {
		t.Fatal("forged User-Agent not detected")
	}
	if d.Stats().UAMismatches != 1 {
		t.Fatalf("UAMismatches = %d", d.Stats().UAMismatches)
	}
}

func TestUAReportViaStylesheetPath(t *testing.T) {
	d, _ := newTestEngine(Config{})
	ip, ua := "10.0.0.6", "Opera/9.0"
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	prefix := d.Config().BeaconPrefix
	path := prefix + "/ua/" + inst.Issued.ScriptToken + "/opera%2f9.0.css"
	resp, ok := d.HandleBeacon(ip, ua, path)
	if !ok || resp.ContentType != "text/css" {
		t.Fatalf("ua-report response = %+v", resp)
	}
	snap, _ := d.sessions.Get(session.Key{IP: ip, UserAgent: ua})
	if !snap.Has(session.SignalJS) {
		t.Fatal("ua-report should imply JS execution")
	}
	if snap.Has(session.SignalUAMismatch) {
		t.Fatal("matching agent flagged as mismatch")
	}
	if d.Stats().UAReports != 1 {
		t.Fatalf("UAReports = %d", d.Stats().UAReports)
	}
}

func TestHiddenLinkBeacon(t *testing.T) {
	d, _ := newTestEngine(Config{})
	ip, ua := "10.0.0.7", "Crawler"
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	resp, ok := d.HandleBeacon(ip, ua, inst.HiddenPath)
	if !ok || resp.Status != 200 {
		t.Fatalf("hidden response = %+v", resp)
	}
	snap, _ := d.sessions.Get(session.Key{IP: ip, UserAgent: ua})
	if !snap.Has(session.SignalHidden) {
		t.Fatal("hidden-link signal not set")
	}
	v := d.ClassifySnapshot(snap)
	if v.Class != ClassRobot || v.Confidence != Definite {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestTransparentImageAndUnknownPath(t *testing.T) {
	d, _ := newTestEngine(Config{})
	prefix := d.Config().BeaconPrefix
	resp, ok := d.HandleBeacon("1.2.3.4", "UA", prefix+"/transp_1x1.gif")
	if !ok || resp.ContentType != "image/gif" {
		t.Fatalf("transparent image response = %+v", resp)
	}
	resp, ok = d.HandleBeacon("1.2.3.4", "UA", prefix+"/whatever.bin")
	if !ok || resp.Status != 404 {
		t.Fatalf("unknown instrumentation path response = %+v", resp)
	}
	if _, ok := d.HandleBeacon("1.2.3.4", "UA", "/ordinary/page.html"); ok {
		t.Fatal("ordinary path must not be handled as a beacon")
	}
}

func TestIsInstrumentationPath(t *testing.T) {
	d, _ := newTestEngine(Config{})
	if !d.IsInstrumentationPath("/__bd/123.css") || !d.IsInstrumentationPath("/__bd/js/1.gif?ua=x") {
		t.Fatal("instrumentation paths not recognised")
	}
	if d.IsInstrumentationPath("/index.html") || d.IsInstrumentationPath("/__bdx/1.css") {
		t.Fatal("non-instrumentation path recognised")
	}
}

func TestScriptFallbackWhenEvicted(t *testing.T) {
	d, _ := newTestEngine(Config{MaxScripts: 2})
	ip, ua := "10.0.0.8", "UA"
	var paths []string
	for i := 0; i < 5; i++ {
		_, inst := d.InstrumentPage(ip, ua, fmt.Sprintf("/p%d.html", i), pageHTML())
		paths = append(paths, inst.ScriptPath)
	}
	// The earliest generated script was evicted: the detector still serves a
	// harmless fallback body and records the download signal.
	resp, ok := d.HandleBeacon(ip, ua, paths[0])
	if !ok || resp.Status != 200 || len(resp.Body) == 0 {
		t.Fatalf("fallback script response = %+v", resp)
	}
	// The most recent one is still the real generated script.
	resp, _ = d.HandleBeacon(ip, ua, paths[4])
	if !strings.Contains(string(resp.Body), "function __bd_f()") {
		t.Fatal("recent script should be the generated handler script")
	}
}

func TestClassificationLifecycleHumanWithJS(t *testing.T) {
	d, vc := newTestEngine(Config{MinRequests: 10})
	ip, ua := "10.1.0.1", "Firefox"
	key := session.Key{IP: ip, UserAgent: ua}
	now := vc.Now()

	// First page: before any signals, the verdict is undecided.
	observe(d, ip, ua, "GET", "/", 200, "", now)
	if v := d.Classify(key); v.Class != ClassUndecided {
		t.Fatalf("verdict after 1 request = %+v", v)
	}
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	d.HandleBeacon(ip, ua, inst.CSSPath)
	d.HandleBeacon(ip, ua, inst.ScriptPath)
	d.HandleBeacon(ip, ua, d.Config().BeaconPrefix+"/js/"+inst.Issued.ScriptToken+".gif?ua="+session.NormalizeUA(ua))
	// Human moves the mouse: the real key arrives.
	d.HandleBeacon(ip, ua, d.Config().BeaconPrefix+"/"+inst.Issued.Key+".jpg")
	v := d.Classify(key)
	if v.Class != ClassHuman || v.Confidence != Definite {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestClassificationRobotRunningJSWithoutMouse(t *testing.T) {
	d, vc := newTestEngine(Config{MinRequests: 10})
	ip, ua := "10.1.0.2", "SmartBot"
	key := session.Key{IP: ip, UserAgent: ua}
	now := vc.Now()
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	d.HandleBeacon(ip, ua, d.Config().BeaconPrefix+"/js/"+inst.Issued.ScriptToken+".gif?ua="+session.NormalizeUA(ua))
	for i := 0; i < 12; i++ {
		observe(d, ip, ua, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now)
	}
	v := d.Classify(key)
	if v.Class != ClassRobot || v.Confidence != Probable {
		t.Fatalf("verdict = %+v", v)
	}
	if !strings.Contains(v.Reason, "no input events") {
		t.Fatalf("reason = %q", v.Reason)
	}
}

func TestClassificationHumanCSSOnlyNoJS(t *testing.T) {
	// A JavaScript-disabled human: fetches CSS, never runs the script.
	d, vc := newTestEngine(Config{MinRequests: 10})
	ip, ua := "10.1.0.3", "Firefox-NoJS"
	key := session.Key{IP: ip, UserAgent: ua}
	now := vc.Now()
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	d.HandleBeacon(ip, ua, inst.CSSPath)
	for i := 0; i < 11; i++ {
		observe(d, ip, ua, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now)
	}
	v := d.Classify(key)
	if v.Class != ClassHuman || v.Confidence != Probable {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestClassificationRobotIgnoresPresentation(t *testing.T) {
	d, vc := newTestEngine(Config{MinRequests: 10})
	ip, ua := "10.1.0.4", "EmailHarvester"
	key := session.Key{IP: ip, UserAgent: ua}
	now := vc.Now()
	for i := 0; i < 15; i++ {
		observe(d, ip, ua, "GET", fmt.Sprintf("/p%d.html", i), 200, "", now)
	}
	v := d.Classify(key)
	if v.Class != ClassRobot {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestClassificationCaptcha(t *testing.T) {
	d, _ := newTestEngine(Config{})
	key := session.Key{IP: "10.1.0.5", UserAgent: "NoScriptBrowser"}
	d.MarkCaptchaPassed(key)
	v := d.Classify(key)
	if v.Class != ClassHuman || v.Confidence != Definite {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestClassifyUnknownSession(t *testing.T) {
	d, _ := newTestEngine(Config{})
	v := d.Classify(session.Key{IP: "none", UserAgent: "none"})
	if v.Class != ClassUndecided {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestOnSessionEndCallback(t *testing.T) {
	var ended []ClassifiedSession
	vc := clock.NewVirtual(time.Time{})
	d := New(Config{Seed: 3, Clock: vc, OnSessionEnd: func(cs ClassifiedSession) { ended = append(ended, cs) }})
	ip, ua := "10.1.0.6", "Firefox"
	now := vc.Now()
	_, inst := d.InstrumentPage(ip, ua, "/", pageHTML())
	observe(d, ip, ua, "GET", "/", 200, "", now)
	d.HandleBeacon(ip, ua, d.Config().BeaconPrefix+"/"+inst.Issued.Key+".jpg")
	vc.Advance(2 * time.Hour)
	if n := d.ExpireIdle(vc.Now()); n != 1 {
		t.Fatalf("ExpireIdle = %d", n)
	}
	if len(ended) != 1 || ended[0].Verdict.Class != ClassHuman {
		t.Fatalf("ended = %+v", ended)
	}
	if d.SessionCount() != 0 {
		t.Fatal("session still active after expiry")
	}
}

func TestFlushSessions(t *testing.T) {
	d, vc := newTestEngine(Config{})
	now := vc.Now()
	for i := 0; i < 3; i++ {
		observe(d, fmt.Sprintf("10.2.0.%d", i), "UA", "GET", "/", 200, "", now)
	}
	out := d.FlushSessions()
	if len(out) != 3 {
		t.Fatalf("FlushSessions = %d", len(out))
	}
	if d.SessionCount() != 0 {
		t.Fatal("sessions remain")
	}
}

func TestVerdictAndEnumStrings(t *testing.T) {
	v := Verdict{Class: ClassRobot, Confidence: Definite, Reason: "followed hidden link", AtRequest: 7}
	s := v.String()
	if !strings.Contains(s, "robot") || !strings.Contains(s, "definite") || !strings.Contains(s, "7") {
		t.Fatalf("Verdict.String = %q", s)
	}
	if ClassHuman.String() != "human" || ClassUndecided.String() != "undecided" || Class(9).String() != "undecided" {
		t.Fatal("Class names wrong")
	}
	if Tentative.String() != "tentative" || Probable.String() != "probable" || Definite.String() != "definite" {
		t.Fatal("Confidence names wrong")
	}
}

func TestQueryParam(t *testing.T) {
	if queryParam("ua=abc&x=1", "ua") != "abc" {
		t.Fatal("queryParam simple")
	}
	if queryParam("x=1&ua=abc", "ua") != "abc" {
		t.Fatal("queryParam second")
	}
	if queryParam("x=1", "ua") != "" {
		t.Fatal("queryParam missing")
	}
	if queryParam("", "ua") != "" {
		t.Fatal("queryParam empty")
	}
	if queryParam("ua", "ua") != "" {
		t.Fatal("queryParam no value")
	}
}
