package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPrepareInstrumentationAllocCeiling pins the per-page cost of the
// instrumentation fast path: key/token strings from the keystore, the decoy
// slice, one script-body buffer, and the three public path strings. The
// template pool, the injection fragments and the script-cache entries are
// all recycled, so nothing else may allocate at steady state.
func TestPrepareInstrumentationAllocCeiling(t *testing.T) {
	e := New(Config{Seed: 9, ObfuscateJS: true})
	ips := make([]string, 64)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.4.0.%d", i)
	}
	// Warm the keystore clients, the script cache shards and the fragment pool.
	for i := 0; i < 512; i++ {
		prep, _ := e.PrepareInstrumentation(ips[i%len(ips)], "Firefox/1.5", "/warm.html")
		prep.Release()
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		prep, _ := e.PrepareInstrumentation(ips[i%len(ips)], "Firefox/1.5", "/hot.html")
		prep.Release()
		i++
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	// The legacy wrapper formats Issued (8 key strings + the decoy slice) and
	// 3 path strings = 12 unavoidable; script-cache growth (entry struct,
	// refcounted buffer, body) adds up to 3 until the cache reaches its
	// eviction steady state. Allow slack for map-internal churn. The numeric
	// PreparePage path is gated at zero separately.
	const ceiling = 18
	if allocs > ceiling {
		t.Fatalf("PrepareInstrumentation allocated %.1f/op, ceiling %d", allocs, ceiling)
	}
}

// TestRotateScriptsUnderServing hammers RotateScripts against concurrent
// page instrumentation and script downloads; the -race run of this test is
// what proves the epoch swap is safe under serving load.
func TestRotateScriptsUnderServing(t *testing.T) {
	e := New(Config{Seed: 11, ObfuscateJS: true})
	if e.ScriptVariants() <= 0 {
		t.Fatal("engine must compile a variant pool")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.5.0.%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, inst := e.InstrumentPage(ip, "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
				resp, ok := e.HandleBeacon(ip, "Firefox/1.5", inst.ScriptPath)
				if !ok || resp.Status != 200 {
					t.Errorf("script serve failed: ok=%v status=%d", ok, resp.Status)
					return
				}
				if !strings.Contains(string(resp.Body), "function __bd_f()") {
					t.Error("served script lost the handler definition across rotation")
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		e.RotateScripts()
	}
	close(stop)
	wg.Wait()
}

// TestRotateScriptsChangesBodies proves rotation actually refreshes the
// obfuscation: with the RNG pinned to the same variant pick and the same
// keys, the served body must differ across epochs.
func TestRotateScriptsChangesBodies(t *testing.T) {
	// A single-variant pool removes per-page variant picking from the
	// comparison: any body difference below comes from the epoch swap alone.
	a := New(Config{Seed: 13, ObfuscateJS: true, ScriptVariants: 1})
	b := New(Config{Seed: 13, ObfuscateJS: true, ScriptVariants: 1})
	b.RotateScripts()

	// Same engine seed, same single client, same first page: identical keys
	// on both engines; only the rotation epoch differs.
	_, instA := a.InstrumentPage("10.6.0.1", "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
	_, instB := b.InstrumentPage("10.6.0.1", "Firefox/1.5", "/", []byte("<html><head></head><body></body></html>"))
	if instA.Issued.Key != instB.Issued.Key {
		t.Fatal("test setup: keys must match for a body comparison")
	}
	respA, _ := a.HandleBeacon("10.6.0.1", "Firefox/1.5", instA.ScriptPath)
	respB, _ := b.HandleBeacon("10.6.0.1", "Firefox/1.5", instB.ScriptPath)
	if string(respA.Body) == string(respB.Body) {
		t.Fatal("rotation must refresh the obfuscated script bodies")
	}
}
