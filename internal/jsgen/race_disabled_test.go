//go:build !race

package jsgen

const raceEnabled = false
