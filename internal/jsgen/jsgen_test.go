package jsgen

import (
	"strings"
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		BeaconBase:  "http://www.example.com",
		RealKey:     "0729395160",
		DecoyKeys:   []string{"1111111111", "2222222222", "3333333333"},
		UAReportKey: "9999999999",
		Seed:        1,
	}
}

func TestScriptPlainContainsRealBeacon(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.Obfuscate = false
	js := g.Script(p)
	if !strings.Contains(js, "function __bd_f()") {
		t.Fatal("handler function missing")
	}
	if !strings.Contains(js, BeaconPath(DefaultBeaconPrefix, p.RealKey)) {
		t.Fatal("real beacon URL missing in plain script")
	}
	for _, d := range p.DecoyKeys {
		if !strings.Contains(js, BeaconPath(DefaultBeaconPrefix, d)) {
			t.Fatalf("decoy %s missing", d)
		}
	}
	if !strings.Contains(js, "navigator.userAgent") {
		t.Fatal("JS-exec beacon missing")
	}
	if !strings.Contains(js, "new Image()") {
		t.Fatal("image fetch missing")
	}
}

func TestScriptObfuscationHidesURLs(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.Obfuscate = true
	js := g.Script(p)
	if strings.Contains(js, p.RealKey) {
		t.Fatal("obfuscated script leaks the real key verbatim")
	}
	if strings.Contains(js, "/__bd/"+p.RealKey) {
		t.Fatal("obfuscated script leaks the beacon URL verbatim")
	}
	if !strings.Contains(js, "String.fromCharCode(") {
		t.Fatal("expected character-encoded strings under obfuscation")
	}
	if !strings.Contains(js, "function __bd_f()") {
		t.Fatal("handler name must stay stable so the HTML attribute can call it")
	}
}

func TestScriptDeterministicPerSeed(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.Obfuscate = true
	a := g.Script(p)
	b := g.Script(p)
	if a != b {
		t.Fatal("same seed should generate identical script")
	}
	p2 := p
	p2.Seed = 2
	if g.Script(p2) == a {
		t.Fatal("different seed should change the obfuscated script")
	}
}

func TestScriptsDifferAcrossKeys(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.Obfuscate = true
	a := g.Script(p)
	p.RealKey = "0000000042"
	p.Seed = 77
	b := g.Script(p)
	if a == b {
		t.Fatal("different keys/seeds should produce different script bodies")
	}
}

func TestScriptWithoutUAReport(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.UAReportKey = ""
	js := g.Script(p)
	if strings.Contains(js, "navigator.userAgent") {
		t.Fatal("UA report should be absent when no key is provided")
	}
}

func TestCustomHandlerName(t *testing.T) {
	g := &Generator{HandlerName: "myhandler"}
	js := g.Script(baseParams())
	if !strings.Contains(js, "function myhandler()") {
		t.Fatal("custom handler name not used")
	}
	empty := &Generator{}
	js = empty.Script(baseParams())
	if !strings.Contains(js, "function __bd_f()") {
		t.Fatal("empty handler name should default")
	}
}

func TestPathHelpers(t *testing.T) {
	if BeaconPath("", "k") != "/__bd/k.jpg" {
		t.Fatalf("BeaconPath = %q", BeaconPath("", "k"))
	}
	if BeaconPath("/x", "k") != "/x/k.jpg" {
		t.Fatalf("BeaconPath custom = %q", BeaconPath("/x", "k"))
	}
	if ExecBeaconPath("", "k") != "/__bd/js/k.gif" {
		t.Fatalf("ExecBeaconPath = %q", ExecBeaconPath("", "k"))
	}
	if CSSPath("", "t") != "/__bd/t.css" {
		t.Fatalf("CSSPath = %q", CSSPath("", "t"))
	}
	if HiddenPath("", "t") != "/__bd/hidden/t.html" {
		t.Fatalf("HiddenPath = %q", HiddenPath("", "t"))
	}
	if TransparentImagePath("") != "/__bd/transp_1x1.gif" {
		t.Fatalf("TransparentImagePath = %q", TransparentImagePath(""))
	}
	if ScriptPath("", "0729395150") != "/__bd/index_0729395150.js" {
		t.Fatalf("ScriptPath = %q", ScriptPath("", "0729395150"))
	}
	if UAReportPrefix("", "t") != "/__bd/ua/t/" {
		t.Fatalf("UAReportPrefix = %q", UAReportPrefix("", "t"))
	}
}

func TestInlineUAScript(t *testing.T) {
	s := InlineUAScript("http://www.example.com", "", "tok123")
	if !strings.Contains(s, "getuseragnt") || !strings.Contains(s, "document.write") {
		t.Fatal("inline UA script missing expected statements")
	}
	if !strings.Contains(s, "http://www.example.com/__bd/ua/tok123/") {
		t.Fatalf("inline UA script missing report URL: %s", s)
	}
}

func TestObfuscatedScriptStructureProperty(t *testing.T) {
	g := NewGenerator()
	f := func(seed uint64, nDecoys uint8) bool {
		p := Params{
			RealKey:   "1234567890",
			Obfuscate: true,
			Seed:      seed,
		}
		for i := 0; i < int(nDecoys%8); i++ {
			p.DecoyKeys = append(p.DecoyKeys, strings.Repeat("9", 5)+strings.Repeat("0", 5))
		}
		js := g.Script(p)
		// Exactly one genuine handler definition, decoy count + 1 total
		// "new Image()" allocations at minimum, balanced braces.
		if strings.Count(js, "function __bd_f()") != 1 {
			return false
		}
		if strings.Count(js, "new Image()") < len(p.DecoyKeys)+1 {
			return false
		}
		return strings.Count(js, "{") == strings.Count(js, "}")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScriptSizeReasonable(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.Obfuscate = true
	js := g.Script(p)
	// Paper quotes ~1 KB of fake JavaScript; with encoding overhead we allow
	// a few KB, but it must not balloon.
	if len(js) < 500 || len(js) > 16*1024 {
		t.Fatalf("script size %d out of expected range", len(js))
	}
}
