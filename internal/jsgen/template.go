package jsgen

import (
	"strconv"
	"sync/atomic"

	"botdetect/internal/rng"
)

// This file implements the precompiled script path: instead of rebuilding the
// whole obfuscated beacon script per page view (identifier randomisation,
// junk statements, character encoding — all string concatenation), a Variant
// is compiled once with placeholder keys and byte-offset splice points, and
// per-page generation becomes one template copy plus a handful of digit-key
// splices. A Pool holds K variants for one deployment shape and rotates them
// per page, so individual page views still receive differing script bodies
// while the per-page cost is a memcpy.

// TemplateConfig describes the per-deployment constants a compiled script
// variant is specialised for. Everything that varies per page (the real key,
// the decoy keys, the UA-report key) is spliced in at render time.
type TemplateConfig struct {
	// BeaconBase is the optional absolute URL prefix for beacons.
	BeaconBase string
	// BeaconPrefix is the instrumentation path prefix (default "/__bd").
	BeaconPrefix string
	// KeyDigits is the decimal-digit length of the spliced keys. Render
	// accepts keys of any length (the splice points carry placeholder widths,
	// not hard requirements), but renders are allocation-free only when key
	// lengths match and the destination buffer is reused.
	KeyDigits int
	// Decoys is the number of decoy beacon functions.
	Decoys int
	// UAReport includes the script-load execution beacon statement.
	UAReport bool
	// Obfuscate enables lexical obfuscation (randomised identifiers, junk
	// statements, shuffled function order, character-encoded URLs).
	Obfuscate bool
}

func (c TemplateConfig) withDefaults() TemplateConfig {
	if c.BeaconPrefix == "" {
		c.BeaconPrefix = DefaultBeaconPrefix
	}
	if c.KeyDigits <= 0 {
		c.KeyDigits = 10
	}
	return c
}

// MaxTokenDigits is the widest numeric key RenderKeys accepts: 19 decimal
// digits, the uint64 limit (mirrors keystore.MaxKeyDigits).
const MaxTokenDigits = 19

// Splice sources: which per-page key fills a splice point. Non-negative
// values index the decoy slice.
const (
	spliceReal = -1
	spliceUA   = -2
)

// splice is one placeholder region inside a compiled template.
type splice struct {
	off     int  // byte offset of the placeholder in tmpl
	n       int  // placeholder byte length
	src     int  // spliceReal, spliceUA, or a decoy index
	charEnc bool // placeholder is charcode-encoded ("48,57,..."), else raw digits
}

// Variant is one precompiled script template. It is immutable after Compile
// and safe for concurrent Render calls.
type Variant struct {
	tmpl    []byte
	splices []splice
}

// Size returns the rendered script size when the spliced keys have the
// compiled KeyDigits length (placeholders are fixed-width in that case).
func (v *Variant) Size() int { return len(v.tmpl) }

// Render appends the script with the given keys spliced in to dst and
// returns the extended slice. With dst capacity >= Size and keys of the
// compiled digit length it performs no allocation.
func (v *Variant) Render(dst []byte, realKey, uaKey string, decoys []string) []byte {
	prev := 0
	for _, sp := range v.splices {
		dst = append(dst, v.tmpl[prev:sp.off]...)
		var key string
		switch sp.src {
		case spliceReal:
			key = realKey
		case spliceUA:
			key = uaKey
		default:
			// Fewer issued decoys than template slots (a degraded page
			// view): cycle the issued set so every slot still carries a
			// plausible beacon URL — an empty splice would render the
			// fingerprintable literal '/__bd/.jpg'.
			if len(decoys) > 0 {
				key = decoys[sp.src%len(decoys)]
			}
		}
		if sp.charEnc {
			dst = appendCharCodes(dst, key)
		} else {
			dst = append(dst, key...)
		}
		prev = sp.off + sp.n
	}
	return append(dst, v.tmpl[prev:]...)
}

// RenderKeys is Render over numeric keys: each key is spliced as exactly
// digits decimal digits (leading zeros preserved), the wire format
// keystore.PageKeys carries. It produces byte-identical output to Render
// with the equivalent fixed-width strings and allocates nothing when dst
// has capacity >= Size.
func (v *Variant) RenderKeys(dst []byte, realKey, uaKey uint64, decoys []uint64, digits int) []byte {
	prev := 0
	for _, sp := range v.splices {
		dst = append(dst, v.tmpl[prev:sp.off]...)
		var key uint64
		ok := true
		switch sp.src {
		case spliceReal:
			key = realKey
		case spliceUA:
			key = uaKey
		default:
			// Mirror Render: cycle a short decoy set over the slots.
			if len(decoys) > 0 {
				key = decoys[sp.src%len(decoys)]
			} else {
				ok = false
			}
		}
		if ok {
			if sp.charEnc {
				dst = appendCharCodesValue(dst, key, digits)
			} else {
				dst = rng.AppendFixedDigits(dst, key, digits)
			}
		}
		prev = sp.off + sp.n
	}
	return append(dst, v.tmpl[prev:]...)
}

// appendCharCodes appends the String.fromCharCode argument run for s: each
// byte's decimal code followed by a comma (the template always continues with
// at least the URL suffix after a key, so the trailing comma is correct).
func appendCharCodes(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		dst = strconv.AppendInt(dst, int64(s[i]), 10)
		dst = append(dst, ',')
	}
	return dst
}

// appendCharCodesValue is appendCharCodes for a fixed-width numeric key:
// digit d has character code 48+d, always two decimal digits, so no
// strconv round trip is needed.
func appendCharCodesValue(dst []byte, v uint64, digits int) []byte {
	var buf [MaxTokenDigits]byte
	for i := digits - 1; i >= 0; i-- {
		buf[i] = byte(v % 10)
		v /= 10
	}
	for i := 0; i < digits; i++ {
		c := 48 + buf[i] // '0'..'9' => codes 48..57
		dst = append(dst, '0'+c/10, '0'+c%10, ',')
	}
	return dst
}

// tmplBuilder accumulates template bytes and splice points.
type tmplBuilder struct {
	buf     []byte
	splices []splice
}

func (tb *tmplBuilder) str(s string) { tb.buf = append(tb.buf, s...) }

// keyHole records a splice point for src and emits a fixed-width placeholder
// (the all-zeros key) in the requested encoding.
func (tb *tmplBuilder) keyHole(src, digits int, charEnc bool) {
	off := len(tb.buf)
	if charEnc {
		for i := 0; i < digits; i++ {
			tb.buf = append(tb.buf, '4', '8', ',') // charcode of '0', then ','
		}
		tb.splices = append(tb.splices, splice{off: off, n: 3 * digits, src: src, charEnc: true})
		return
	}
	for i := 0; i < digits; i++ {
		tb.buf = append(tb.buf, '0')
	}
	tb.splices = append(tb.splices, splice{off: off, n: digits, src: src})
}

// urlKeyExpr emits the JavaScript string expression for pre+KEY+suf with a
// splice point where the key goes: a single-quoted literal, or a
// String.fromCharCode call under obfuscation (so the beacon URL never appears
// verbatim in the script text).
func (tb *tmplBuilder) urlKeyExpr(pre, suf string, src, digits int, obfuscate bool) {
	if !obfuscate {
		tb.str("'")
		tb.str(pre)
		tb.keyHole(src, digits, false)
		tb.str(suf)
		tb.str("'")
		return
	}
	tb.str("String.fromCharCode(")
	for i := 0; i < len(pre); i++ {
		tb.buf = strconv.AppendInt(tb.buf, int64(pre[i]), 10)
		tb.buf = append(tb.buf, ',')
	}
	tb.keyHole(src, digits, true)
	for i := 0; i < len(suf); i++ {
		if i > 0 {
			tb.buf = append(tb.buf, ',')
		}
		tb.buf = strconv.AppendInt(tb.buf, int64(suf[i]), 10)
	}
	tb.str(")")
}

// beaconFn emits one guard+function pair fetching pre+KEY+suf. name is the
// function's global name (the real handler or a random decoy name).
func beaconFn(tb *tmplBuilder, nm *namer, name, pre, suf string, src, digits int, obfuscate bool) {
	guard := nm.next()
	img := nm.next()
	tb.str("var " + guard + " = false;\n")
	tb.str("function " + name + "() {\n")
	tb.str("  if (" + guard + " == false) {\n")
	tb.str("    var " + img + " = new Image();\n")
	tb.str("    " + guard + " = true;\n")
	tb.str("    " + img + ".src = ")
	tb.urlKeyExpr(pre, suf, src, digits, obfuscate)
	tb.str(";\n")
	tb.str("    return true;\n  }\n  return false;\n}\n")
}

// Compile builds one script variant for the deployment shape: all lexical
// obfuscation work (identifier randomisation, junk statements, function-order
// shuffling, character encoding of URLs) happens here, once, and Render
// reduces a page view to a copy plus key splices. The same (config, seed)
// pair always compiles the same variant.
func (g *Generator) Compile(cfg TemplateConfig, seed uint64) *Variant {
	cfg = cfg.withDefaults()
	nm := newNamer(seed)
	handler := g.HandlerName
	if handler == "" {
		handler = "__bd_f"
	}
	// URL formats come from the shared path helpers so the compiled splice
	// points always match what HandleBeacon parses.
	beaconPre, beaconSuf := BeaconPathParts(cfg.BeaconPrefix)
	beaconPre = cfg.BeaconBase + beaconPre

	// Build the genuine handler and the decoys as separate segments so the
	// obfuscation shuffle can reorder them before offsets are finalised.
	segs := make([]tmplBuilder, 1+cfg.Decoys)
	beaconFn(&segs[0], nm, handler, beaconPre, beaconSuf, spliceReal, cfg.KeyDigits, cfg.Obfuscate)
	for i := 0; i < cfg.Decoys; i++ {
		beaconFn(&segs[1+i], nm, nm.next(), beaconPre, beaconSuf, i, cfg.KeyDigits, cfg.Obfuscate)
	}
	if cfg.Obfuscate && len(segs) > 1 {
		nm.src.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
	}

	var out tmplBuilder
	out.str("// dynamically generated; do not cache\n")
	if cfg.Obfuscate {
		out.str(junkStatements(nm, 3+nm.src.Intn(4)))
	}
	for i := range segs {
		base := len(out.buf)
		out.buf = append(out.buf, segs[i].buf...)
		for _, sp := range segs[i].splices {
			sp.off += base
			out.splices = append(out.splices, sp)
		}
		if cfg.Obfuscate && nm.src.Bool(0.5) {
			out.str(junkStatements(nm, 1+nm.src.Intn(3)))
		}
	}

	// JS-execution report: fires on script load, proving the client executes
	// JavaScript even when no input event ever happens.
	if cfg.UAReport {
		execPre, execSuf := ExecBeaconPathParts(cfg.BeaconPrefix)
		execImg := nm.next()
		out.str("var " + execImg + " = new Image();\n")
		out.str(execImg + ".src = ")
		out.urlKeyExpr(cfg.BeaconBase+execPre, execSuf, spliceUA, cfg.KeyDigits, cfg.Obfuscate)
		out.str(" + '?ua=' + encodeURIComponent(navigator.userAgent.toLowerCase().replace(/ /g, ''));\n")
	}
	return &Variant{tmpl: out.buf, splices: out.splices}
}

// DefaultVariants is the Pool size used when none is configured.
const DefaultVariants = 8

// Pool holds K compiled variants of one deployment shape. Render picks a
// variant per page, so consecutive page views receive differing obfuscated
// bodies without paying compilation per page; Rotate recompiles the whole
// set (a rotation epoch), refreshing identifiers and junk so no variant body
// survives long enough to be signature-matched. All methods are safe for
// concurrent use; Rotate swaps the variant set atomically under readers.
type Pool struct {
	g    *Generator
	cfg  TemplateConfig
	k    int
	vars atomic.Pointer[[]*Variant]
}

// NewPool compiles k variants (DefaultVariants when k <= 0) seeded from seed.
func NewPool(g *Generator, cfg TemplateConfig, k int, seed uint64) *Pool {
	if k <= 0 {
		k = DefaultVariants
	}
	p := &Pool{g: g, cfg: cfg.withDefaults(), k: k}
	p.Rotate(seed)
	return p
}

// Rotate compiles a fresh variant set from seed and publishes it with one
// atomic store. In-flight renders finish on the epoch they picked.
func (p *Pool) Rotate(seed uint64) {
	src := rng.New(seed).Fork("jsgen-pool")
	vars := make([]*Variant, p.k)
	for i := range vars {
		vars[i] = p.g.Compile(p.cfg, src.Uint64())
	}
	p.vars.Store(&vars)
}

// Variants returns the number of variants per rotation epoch.
func (p *Pool) Variants() int { return p.k }

// MaxSize returns the largest rendered size across the current epoch's
// variants (for key lengths matching the compiled KeyDigits), so callers can
// size destination buffers once.
func (p *Pool) MaxSize() int {
	max := 0
	for _, v := range *p.vars.Load() {
		if v.Size() > max {
			max = v.Size()
		}
	}
	return max
}

// Pick returns the variant selected by pick (any well-mixed per-page value,
// typically a draw off the caller's RNG stream).
func (p *Pool) Pick(pick uint64) *Variant {
	vars := *p.vars.Load()
	return vars[pick%uint64(len(vars))]
}

// Render splices the page's keys into the picked variant, appending to dst.
func (p *Pool) Render(dst []byte, pick uint64, realKey, uaKey string, decoys []string) []byte {
	return p.Pick(pick).Render(dst, realKey, uaKey, decoys)
}
