package jsgen

import (
	"strconv"
	"strings"
	"testing"
)

func testTemplateConfig() TemplateConfig {
	return TemplateConfig{
		BeaconBase: "http://www.example.com",
		KeyDigits:  10,
		Decoys:     4,
		UAReport:   true,
		Obfuscate:  true,
	}
}

// charCodes renders s the way the obfuscated template encodes it inside
// String.fromCharCode: comma-separated decimal byte codes.
func charCodes(s string) string {
	parts := make([]string, len(s))
	for i := 0; i < len(s); i++ {
		parts[i] = strconv.Itoa(int(s[i]))
	}
	return strings.Join(parts, ",")
}

func TestScriptMatchesCompiledVariant(t *testing.T) {
	g := NewGenerator()
	p := baseParams()
	p.Obfuscate = true
	v := g.Compile(TemplateConfig{
		BeaconBase:   p.BeaconBase,
		BeaconPrefix: p.BeaconPrefix,
		KeyDigits:    len(p.RealKey),
		Decoys:       len(p.DecoyKeys),
		UAReport:     true,
		Obfuscate:    true,
	}, p.Seed)
	rendered := string(v.Render(nil, p.RealKey, p.UAReportKey, p.DecoyKeys))
	if got := g.Script(p); got != rendered {
		t.Fatal("Script wrapper and Compile+Render disagree for the same seed")
	}
}

func TestVariantRenderSplicesAllKeys(t *testing.T) {
	g := NewGenerator()
	real := "1234567890"
	ua := "5556667778"
	decoys := []string{"1111111111", "2222222222", "3333333333", "4444444444"}

	for _, obf := range []bool{false, true} {
		cfg := testTemplateConfig()
		cfg.Obfuscate = obf
		v := g.Compile(cfg, 42)
		js := string(v.Render(nil, real, ua, decoys))
		find := func(dir, key, suffix string) string {
			if obf {
				return charCodes(dir + key + suffix)
			}
			return dir + key + suffix
		}
		if !strings.Contains(js, find("/__bd/", real, ".jpg")) {
			t.Fatalf("obf=%v: real key not spliced", obf)
		}
		for _, d := range decoys {
			if !strings.Contains(js, find("/__bd/", d, ".jpg")) {
				t.Fatalf("obf=%v: decoy %s not spliced", obf, d)
			}
		}
		if !strings.Contains(js, find("/__bd/js/", ua, ".gif")) {
			t.Fatalf("obf=%v: UA-report key not spliced", obf)
		}
		if obf && strings.Contains(js, real) {
			t.Fatal("obfuscated render leaks the real key verbatim")
		}
		if strings.Count(js, "{") != strings.Count(js, "}") {
			t.Fatalf("obf=%v: unbalanced braces", obf)
		}
		if strings.Count(js, "function __bd_f()") != 1 {
			t.Fatalf("obf=%v: handler count wrong", obf)
		}
	}
}

// TestRenderKeysMatchesRender pins the numeric splice path to the string
// one: for every variant shape, RenderKeys over uint64 keys must produce
// byte-identical output to Render over the equivalent fixed-width strings,
// leading zeros included.
func TestRenderKeysMatchesRender(t *testing.T) {
	g := NewGenerator()
	realV, uaV := uint64(42), uint64(9876543210)
	decoyV := []uint64{1, 2222222222, 303, 4444444444}
	const digits = 10
	pad := func(v uint64) string {
		s := strconv.FormatUint(v, 10)
		return strings.Repeat("0", digits-len(s)) + s
	}
	realS, uaS := pad(realV), pad(uaV)
	decoyS := make([]string, len(decoyV))
	for i, d := range decoyV {
		decoyS[i] = pad(d)
	}
	for _, obf := range []bool{false, true} {
		for _, ua := range []bool{false, true} {
			cfg := testTemplateConfig()
			cfg.Obfuscate = obf
			cfg.UAReport = ua
			v := g.Compile(cfg, 99)
			want := v.Render(nil, realS, uaS, decoyS)
			got := v.RenderKeys(nil, realV, uaV, decoyV, digits)
			if string(got) != string(want) {
				t.Fatalf("obf=%v ua=%v: RenderKeys differs from Render", obf, ua)
			}
		}
	}
}

// TestRenderKeysZeroAlloc pins the numeric render at zero allocations when
// the destination buffer is reused at the variant's size.
func TestRenderKeysZeroAlloc(t *testing.T) {
	g := NewGenerator()
	v := g.Compile(testTemplateConfig(), 11)
	dst := make([]byte, 0, v.Size())
	decoys := []uint64{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(100, func() {
		dst = v.RenderKeys(dst[:0], 123, 456, decoys, 10)
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	if allocs != 0 {
		t.Fatalf("RenderKeys allocated %.1f/op, want 0", allocs)
	}
}

func TestVariantRenderFixedWidthSize(t *testing.T) {
	g := NewGenerator()
	v := g.Compile(testTemplateConfig(), 7)
	js := v.Render(nil, "0123456789", "9876543210",
		[]string{"0000000001", "0000000002", "0000000003", "0000000004"})
	if len(js) != v.Size() {
		t.Fatalf("rendered %d bytes, Size() = %d: keys of the compiled digit length must be fixed-width", len(js), v.Size())
	}
}

func TestVariantRenderVariableLengthKeys(t *testing.T) {
	// The compatibility wrapper can splice keys whose length differs from the
	// compiled placeholder width; output must stay structurally sound.
	g := NewGenerator()
	cfg := testTemplateConfig()
	cfg.Decoys = 1
	v := g.Compile(cfg, 3)
	js := string(v.Render(nil, "42", "123456789012345", []string{"7"}))
	if !strings.Contains(js, charCodes("/__bd/42.jpg")) {
		t.Fatal("short real key not spliced")
	}
	if strings.Count(js, "{") != strings.Count(js, "}") {
		t.Fatal("unbalanced braces with variable-length keys")
	}
}

func TestCompileDeterministicPerSeed(t *testing.T) {
	g := NewGenerator()
	cfg := testTemplateConfig()
	a := g.Compile(cfg, 99)
	b := g.Compile(cfg, 99)
	if string(a.tmpl) != string(b.tmpl) {
		t.Fatal("same seed must compile the same template")
	}
	c := g.Compile(cfg, 100)
	if string(a.tmpl) == string(c.tmpl) {
		t.Fatal("different seeds must compile different templates")
	}
}

func TestPoolPickAndRotate(t *testing.T) {
	g := NewGenerator()
	pool := NewPool(g, testTemplateConfig(), 4, 11)
	if pool.Variants() != 4 {
		t.Fatalf("Variants() = %d", pool.Variants())
	}
	// Distinct picks should (at 4 variants) hit distinct templates.
	seen := map[string]bool{}
	for pick := uint64(0); pick < 4; pick++ {
		seen[string(pool.Pick(pick).tmpl)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 distinct variants, got %d", len(seen))
	}
	before := string(pool.Pick(0).tmpl)
	pool.Rotate(12)
	if string(pool.Pick(0).tmpl) == before {
		t.Fatal("Rotate must replace the variant set")
	}
	if pool.MaxSize() <= 0 {
		t.Fatal("MaxSize must be positive")
	}
}

func TestVariantRenderZeroAlloc(t *testing.T) {
	g := NewGenerator()
	pool := NewPool(g, testTemplateConfig(), 4, 21)
	real := "0123456789"
	ua := "9876543210"
	decoys := []string{"0000000001", "0000000002", "0000000003", "0000000004"}
	dst := make([]byte, 0, pool.MaxSize())
	pick := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		dst = pool.Render(dst[:0], pick, real, ua, decoys)
		pick++
	})
	if raceEnabled {
		t.Skipf("paths exercised; skipping the ceiling (%.1f allocs/op measured) — allocation accounting differs under -race", allocs)
	}
	if allocs != 0 {
		t.Fatalf("pool render into a reused buffer allocated %.1f/op, want 0", allocs)
	}
}

// TestRenderShortDecoysCycles: a degraded page issues fewer decoys than the
// variant has slots. Every slot must still carry a plausible beacon URL —
// the issued set cycles — and never the fingerprintable empty splice
// ('/__bd/.jpg' would advertise that the page is degraded and which URLs
// are worth avoiding).
func TestRenderShortDecoysCycles(t *testing.T) {
	g := NewGenerator()
	cfg := testTemplateConfig()
	cfg.Obfuscate = false // keep URLs greppable
	v := g.Compile(cfg, 7)

	out := string(v.RenderKeys(nil, 1111111111, 456, []uint64{2222222222}, 10))
	if strings.Contains(out, "/.jpg") {
		t.Fatal("short decoy set rendered an empty beacon URL")
	}
	if !strings.Contains(out, "2222222222") {
		t.Fatal("issued decoy missing from rendered script")
	}
	// String and numeric paths must stay byte-identical in the short case too.
	outS := string(v.Render(nil, "1111111111", "0000000456", []string{"2222222222"}))
	if out != outS {
		t.Fatal("RenderKeys differs from Render for a short decoy set")
	}
	// And an empty decoy set must not panic (mod-by-zero guard).
	_ = v.RenderKeys(nil, 1111111111, 456, nil, 10)
}
