// Package jsgen generates the JavaScript that the proxy embeds into
// rewritten HTML pages for human activity detection (Section 2.1).
//
// The generated external script defines an event-handler function that, on
// the first mouse movement or key press, fetches a beacon image whose URL
// carries the real per-page key. To defeat robots that statically extract
// URLs from scripts, the script also contains m decoy functions fetching
// beacon URLs with wrong keys, is lexically obfuscated (randomised
// identifiers, junk declarations, shuffled function order, character-encoded
// string literals), and is served uncacheable so every page view gets fresh
// keys.
package jsgen

import (
	"fmt"
	"strings"

	"botdetect/internal/rng"
)

// Params controls script generation for one rewritten page.
type Params struct {
	// BeaconBase is the URL prefix for beacon fetches, e.g.
	// "http://www.example.com" or "" for site-relative beacons.
	BeaconBase string
	// BeaconPrefix is the path prefix under which beacon objects live
	// (default "/__bd"). The proxy intercepts requests under this prefix.
	BeaconPrefix string
	// RealKey is the key embedded in the genuine event-handler beacon.
	RealKey string
	// DecoyKeys are the keys embedded in the decoy functions.
	DecoyKeys []string
	// UAReportKey, when non-empty, adds a statement that immediately fetches
	// a "JavaScript executed" beacon carrying this key, so the server learns
	// that the client runs JavaScript even if no input event ever happens.
	UAReportKey string
	// Obfuscate enables lexical obfuscation.
	Obfuscate bool
	// Seed drives identifier randomisation; the same seed yields the same
	// script text.
	Seed uint64
}

// DefaultBeaconPrefix is the path prefix used when Params.BeaconPrefix is empty.
const DefaultBeaconPrefix = "/__bd"

// BeaconPath returns the request path of the beacon image carrying key.
func BeaconPath(prefix, key string) string {
	pre, suf := BeaconPathParts(prefix)
	return pre + key + suf
}

// BeaconPathParts returns the prefix and suffix around the key in
// BeaconPath, so template compilation splices keys into the same URL format
// HandleBeacon parses.
func BeaconPathParts(prefix string) (pre, suf string) {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/", ".jpg"
}

// ExecBeaconPath returns the request path of the "JavaScript executed"
// beacon carrying key.
func ExecBeaconPath(prefix, key string) string {
	pre, suf := ExecBeaconPathParts(prefix)
	return pre + key + suf
}

// ExecBeaconPathParts returns the prefix and suffix around the key in
// ExecBeaconPath.
func ExecBeaconPathParts(prefix string) (pre, suf string) {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/js/", ".gif"
}

// CSSPath returns the request path of the uniquely named empty stylesheet.
func CSSPath(prefix, token string) string {
	pre, suf := CSSPathParts(prefix)
	return pre + token + suf
}

// CSSPathParts returns the prefix and suffix around the token in CSSPath,
// so per-deployment callers can precompose them once.
func CSSPathParts(prefix string) (pre, suf string) {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/", ".css"
}

// HiddenPath returns the request path of the hidden trap link.
func HiddenPath(prefix, token string) string {
	pre, suf := HiddenPathParts(prefix)
	return pre + token + suf
}

// HiddenPathParts returns the prefix and suffix around the token in
// HiddenPath.
func HiddenPathParts(prefix string) (pre, suf string) {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/hidden/", ".html"
}

// TransparentImagePath returns the request path of the 1x1 transparent image
// that anchors the hidden link.
func TransparentImagePath(prefix string) string {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/transp_1x1.gif"
}

// ScriptPath returns the request path of the generated external script.
func ScriptPath(prefix, token string) string {
	pre, suf := ScriptPathParts(prefix)
	return pre + token + suf
}

// ScriptPathParts returns the prefix and suffix around the token in
// ScriptPath.
func ScriptPathParts(prefix string) (pre, suf string) {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/index_", ".js"
}

// Generator produces beacon scripts. It is stateless apart from its
// configuration and safe for concurrent use.
type Generator struct {
	// HandlerName is the global function installed as the event handler.
	// It must match the attribute injected by the HTML rewriter.
	HandlerName string
}

// NewGenerator returns a Generator with the default handler name "__bd_f".
func NewGenerator() *Generator { return &Generator{HandlerName: "__bd_f"} }

// namer allocates deterministic pseudo-random identifiers.
type namer struct {
	src  *rng.Source
	used map[string]bool
}

func newNamer(seed uint64) *namer {
	return &namer{src: rng.New(seed).Fork("jsgen"), used: map[string]bool{}}
}

const identAlphabet = "abcdefghijklmnopqrstuvwxyz"

func (n *namer) next() string {
	for {
		var b strings.Builder
		b.WriteByte('_')
		length := 5 + n.src.Intn(6)
		for i := 0; i < length; i++ {
			b.WriteByte(identAlphabet[n.src.Intn(len(identAlphabet))])
		}
		name := b.String()
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}

// Script returns the external JavaScript file body for one rewritten page.
// It is the compatibility wrapper over the precompiled path: the Params are
// compiled into a one-off Variant and the keys spliced in immediately. Hot
// paths serving many pages per deployment shape should hold a Pool and call
// Render instead, which amortises compilation across page views.
func (g *Generator) Script(p Params) string {
	digits := len(p.RealKey)
	v := g.Compile(TemplateConfig{
		BeaconBase:   p.BeaconBase,
		BeaconPrefix: p.BeaconPrefix,
		KeyDigits:    digits,
		Decoys:       len(p.DecoyKeys),
		UAReport:     p.UAReportKey != "",
		Obfuscate:    p.Obfuscate,
	}, p.Seed)
	return string(v.Render(make([]byte, 0, v.Size()+64), p.RealKey, p.UAReportKey, p.DecoyKeys))
}

// junkStatements emits harmless declarations that vary per page to defeat
// signature matching on the script body.
func junkStatements(nm *namer, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		switch nm.src.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "var %s = %d;\n", nm.next(), nm.src.Intn(100000))
		case 1:
			fmt.Fprintf(&b, "var %s = '%s';\n", nm.next(), nm.src.HexKey(8))
		default:
			a, c := nm.next(), nm.src.Intn(997)+1
			fmt.Fprintf(&b, "function %s(x) { return (x * %d) %% 65537; }\n", a, c)
		}
	}
	return b.String()
}

// InlineUAScript returns the inline <script> body that reports the browser's
// user agent string back to the server by constructing a stylesheet link, as
// in Figure 1 of the paper. The report arrives as a request for
// <prefix>/ua/<token>/<agent>.css, letting the server compare the
// JavaScript-visible agent with the User-Agent header (the "browser type
// mismatch" signal in Table 1).
func InlineUAScript(base, prefix, token string) string {
	pre, post := InlineUAScriptParts(base, prefix)
	return pre + token + post
}

// InlineUAScriptParts splits the inline reporter script around its per-page
// token: InlineUAScript(base, prefix, token) == pre + token + post. Callers
// that rewrite many pages (the detection engine) compose the parts once per
// deployment instead of rebuilding the whole script per page view.
func InlineUAScriptParts(base, prefix string) (pre, post string) {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	pre = "function getuseragnt() {\n" +
		"  var agt = navigator.userAgent.toLowerCase();\n" +
		"  agt = agt.replace(/ /g, \"\");\n" +
		"  return agt;\n}\n" +
		"document.write(\"<link rel='stylesheet' type='text/css' href='" + base + prefix + "/ua/"
	post = "/\" + encodeURIComponent(getuseragnt()) + \".css'>\");\n"
	return pre, post
}

// UAReportPrefix returns the path prefix of user-agent report requests for
// the given token; the reported agent follows as the final path element.
func UAReportPrefix(prefix, token string) string {
	if prefix == "" {
		prefix = DefaultBeaconPrefix
	}
	return prefix + "/ua/" + token + "/"
}
