package baselines

import (
	"strings"
	"testing"
	"time"

	"botdetect/internal/features"
	"botdetect/internal/logfmt"
	"botdetect/internal/rng"
	"botdetect/internal/session"
)

func TestAgentLooksLikeRobot(t *testing.T) {
	robots := []string{
		"Googlebot/2.1 (+http://www.google.com/bot.html)",
		"Mozilla/5.0 (compatible; Yahoo! Slurp)",
		"wget/1.10", "curl/7.15", "libwww-perl/5.805", "Python-urllib/2.4",
		"EmailHarvester 1.0", "WebCrawler", "", "-",
	}
	for _, ua := range robots {
		if !AgentLooksLikeRobot(ua) {
			t.Fatalf("%q should look like a robot", ua)
		}
	}
	humans := []string{
		"Mozilla/5.0 (Windows NT 5.1) Firefox/1.5",
		"Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
		"Opera/9.0 (Windows NT 5.1; U; en)",
	}
	for _, ua := range humans {
		if AgentLooksLikeRobot(ua) {
			t.Fatalf("%q should not look like a robot", ua)
		}
	}
}

func TestHeuristicRobotsTxt(t *testing.T) {
	h := NewHeuristic()
	key := session.Key{IP: "1.1.1.1", UserAgent: "Mozilla/5.0 Firefox/1.5"}
	if h.IsRobot(key) {
		t.Fatal("browser UA should not be a robot before robots.txt fetch")
	}
	h.Observe(logfmt.Entry{Time: time.Now(), ClientIP: key.IP, UserAgent: key.UserAgent, Method: "GET", Path: "/robots.txt", Status: 200})
	if !h.IsRobot(key) {
		t.Fatal("session fetching robots.txt should be classified robot")
	}
	h.Reset()
	if h.IsRobot(key) {
		t.Fatal("Reset should clear robots.txt state")
	}
}

func TestHeuristicMissesDisguisedRobot(t *testing.T) {
	// The documented limitation: a malicious robot forging a browser agent
	// and ignoring robots.txt passes the heuristic baseline.
	h := NewHeuristic()
	key := session.Key{IP: "2.2.2.2", UserAgent: "Mozilla/5.0 (Windows NT 5.1) Firefox/1.5"}
	h.Observe(logfmt.Entry{ClientIP: key.IP, UserAgent: key.UserAgent, Method: "GET", Path: "/page1.html", Status: 200})
	if h.IsRobot(key) {
		t.Fatal("disguised robot unexpectedly caught by the heuristic")
	}
}

func navExamples(n int, noise float64, seed uint64) []features.Example {
	src := rng.New(seed)
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	out := make([]features.Example, 0, n)
	for i := 0; i < n; i++ {
		human := i%2 == 0
		var v features.Vector
		if human {
			v[features.EmbeddedObjPct] = clamp(0.6 + src.Normal(0, noise))
			v[features.ReferrerPct] = clamp(0.7 + src.Normal(0, noise))
			v[features.HTMLPct] = clamp(0.3 + src.Normal(0, noise))
		} else {
			v[features.EmbeddedObjPct] = clamp(0.05 + src.Normal(0, noise))
			v[features.ReferrerPct] = clamp(0.1 + src.Normal(0, noise))
			v[features.HTMLPct] = clamp(0.9 + src.Normal(0, noise))
		}
		out = append(out, features.Example{X: v, Human: human})
	}
	return out
}

func TestTrainNavTreeEmpty(t *testing.T) {
	if _, err := TrainNavTree(nil, NavTreeConfig{}); err != ErrNoExamples {
		t.Fatalf("err = %v", err)
	}
}

func TestNavTreeLearnsSeparableData(t *testing.T) {
	ex := navExamples(400, 0.05, 3)
	tree, err := TrainNavTree(ex, NavTreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(ex); acc < 0.95 {
		t.Fatalf("training accuracy = %f", acc)
	}
	if tree.NodeCount() < 3 {
		t.Fatalf("tree did not split: %s", tree)
	}
	if !strings.Contains(tree.String(), "NavTree") {
		t.Fatal("String format")
	}
}

func TestNavTreeGeneralises(t *testing.T) {
	train := navExamples(400, 0.15, 5)
	test := navExamples(400, 0.15, 6)
	tree, err := TrainNavTree(train, NavTreeConfig{MaxDepth: 5, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(test); acc < 0.8 {
		t.Fatalf("test accuracy = %f", acc)
	}
}

func TestNavTreeSingleClass(t *testing.T) {
	ex := []features.Example{{Human: true}, {Human: true}, {Human: true}}
	tree, err := TrainNavTree(ex, NavTreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Predict(features.Vector{}) {
		t.Fatal("single-class tree should predict that class")
	}
	if tree.NodeCount() != 1 {
		t.Fatalf("single-class tree should be a leaf, nodes = %d", tree.NodeCount())
	}
	if tree.Accuracy(ex) != 1 {
		t.Fatal("accuracy on the training class should be 1")
	}
	if tree.Accuracy(nil) != 0 {
		t.Fatal("accuracy of empty set should be 0")
	}
}

func TestNavTreeMinLeafRespected(t *testing.T) {
	ex := navExamples(30, 0.3, 9)
	tree, err := TrainNavTree(ex, NavTreeConfig{MaxDepth: 10, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 20 over 30 examples, no split is possible.
	if tree.NodeCount() != 1 {
		t.Fatalf("expected a single leaf, got %d nodes", tree.NodeCount())
	}
}
