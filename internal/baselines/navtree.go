package baselines

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"botdetect/internal/features"
)

// NavTree is a Tan & Kumar style navigational-pattern classifier: a small
// decision tree (CART with Gini impurity) trained offline on per-session
// attribute vectors. Compared with the paper's real-time techniques it needs
// a relatively large number of requests per session before the attribute
// estimates stabilise, which the benchmark harness demonstrates.
type NavTree struct {
	root *navNode
	// Depth is the maximum depth the tree was allowed to grow to.
	Depth int
}

type navNode struct {
	leaf      bool
	human     bool
	feature   int
	threshold float64
	left      *navNode // feature value <= threshold
	right     *navNode // feature value > threshold
}

// NavTreeConfig controls training.
type NavTreeConfig struct {
	// MaxDepth bounds the tree depth (default 6).
	MaxDepth int
	// MinLeaf is the minimum number of examples in a leaf (default 5).
	MinLeaf int
}

func (c NavTreeConfig) withDefaults() NavTreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	return c
}

// ErrNoExamples is returned when training data is empty.
var ErrNoExamples = errors.New("baselines: no training examples")

// TrainNavTree fits the decision tree to the labelled examples.
func TrainNavTree(examples []features.Example, cfg NavTreeConfig) (*NavTree, error) {
	cfg = cfg.withDefaults()
	if len(examples) == 0 {
		return nil, ErrNoExamples
	}
	t := &NavTree{Depth: cfg.MaxDepth}
	t.root = buildNode(examples, cfg, 0)
	return t, nil
}

func buildNode(examples []features.Example, cfg NavTreeConfig, depth int) *navNode {
	humans := 0
	for _, e := range examples {
		if e.Human {
			humans++
		}
	}
	majority := humans*2 >= len(examples)
	if depth >= cfg.MaxDepth || len(examples) < 2*cfg.MinLeaf || humans == 0 || humans == len(examples) {
		return &navNode{leaf: true, human: majority}
	}

	bestFeature, bestThr, bestGini := -1, 0.0, math.Inf(1)
	for f := 0; f < features.NumAttributes; f++ {
		values := make([]float64, 0, len(examples))
		for _, e := range examples {
			values = append(values, e.X[f])
		}
		sort.Float64s(values)
		for i := 1; i < len(values); i++ {
			if values[i] == values[i-1] {
				continue
			}
			thr := (values[i] + values[i-1]) / 2
			g := splitGini(examples, f, thr)
			if g < bestGini {
				bestGini, bestFeature, bestThr = g, f, thr
			}
		}
	}
	if bestFeature < 0 {
		return &navNode{leaf: true, human: majority}
	}
	var left, right []features.Example
	for _, e := range examples {
		if e.X[bestFeature] <= bestThr {
			left = append(left, e)
		} else {
			right = append(right, e)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return &navNode{leaf: true, human: majority}
	}
	return &navNode{
		feature:   bestFeature,
		threshold: bestThr,
		left:      buildNode(left, cfg, depth+1),
		right:     buildNode(right, cfg, depth+1),
	}
}

// splitGini computes the weighted Gini impurity of splitting on feature f at
// threshold thr.
func splitGini(examples []features.Example, f int, thr float64) float64 {
	var lh, lr, rh, rr float64 // left humans/robots, right humans/robots
	for _, e := range examples {
		if e.X[f] <= thr {
			if e.Human {
				lh++
			} else {
				lr++
			}
		} else {
			if e.Human {
				rh++
			} else {
				rr++
			}
		}
	}
	gini := func(h, r float64) float64 {
		n := h + r
		if n == 0 {
			return 0
		}
		ph := h / n
		pr := r / n
		return 1 - ph*ph - pr*pr
	}
	total := lh + lr + rh + rr
	if total == 0 {
		return 0
	}
	return (lh+lr)/total*gini(lh, lr) + (rh+rr)/total*gini(rh, rr)
}

// Predict reports whether the attribute vector is classified as human.
func (t *NavTree) Predict(x features.Vector) bool {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.human
}

// Accuracy returns the fraction of examples classified correctly.
func (t *NavTree) Accuracy(examples []features.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, e := range examples {
		if t.Predict(e.X) == e.Human {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// NodeCount returns the number of nodes in the tree.
func (t *NavTree) NodeCount() int { return countNodes(t.root) }

func countNodes(n *navNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// String summarises the tree.
func (t *NavTree) String() string {
	return fmt.Sprintf("baselines.NavTree{nodes=%d, maxDepth=%d}", t.NodeCount(), t.Depth)
}
