// Package baselines implements the comparison detectors discussed in the
// paper's related-work section: the advisory robots.txt / User-Agent
// heuristics that well-behaved robots satisfy (and malicious ones ignore),
// and a Tan & Kumar style navigational-pattern classifier, an offline
// decision-tree learner over per-session features that needs a relatively
// large number of requests to become accurate. Both serve as baselines for
// the paper's real-time techniques in the benchmark harness.
package baselines

import (
	"strings"
	"sync"

	"botdetect/internal/logfmt"
	"botdetect/internal/session"
)

// knownBotAgentFragments are lowercase substrings that well-known, declared
// robots put in their User-Agent strings (the robot exclusion protocol asks
// robots to identify themselves).
var knownBotAgentFragments = []string{
	"bot", "crawler", "spider", "slurp", "fetch", "wget", "curl",
	"libwww", "python", "java/", "harvest", "scan", "archiver", "indexer",
}

// AgentLooksLikeRobot reports whether the User-Agent string declares a robot.
func AgentLooksLikeRobot(userAgent string) bool {
	ua := strings.ToLower(userAgent)
	if ua == "" || ua == "-" {
		return true // real browsers always send an agent string
	}
	for _, frag := range knownBotAgentFragments {
		if strings.Contains(ua, frag) {
			return true
		}
	}
	return false
}

// Heuristic is the advisory baseline: a session is a robot if its User-Agent
// declares one or if it fetched /robots.txt. It detects only well-behaved
// robots; robots that forge browser agents pass it, which is precisely the
// limitation that motivates the paper.
type Heuristic struct {
	mu            sync.Mutex
	fetchedRobots map[session.Key]bool
}

// NewHeuristic creates the heuristic baseline.
func NewHeuristic() *Heuristic {
	return &Heuristic{fetchedRobots: make(map[session.Key]bool)}
}

// Observe records one request.
func (h *Heuristic) Observe(e logfmt.Entry) {
	if strings.HasSuffix(strings.ToLower(e.PathOnly()), "/robots.txt") || strings.ToLower(e.PathOnly()) == "robots.txt" {
		h.mu.Lock()
		h.fetchedRobots[session.Key{IP: e.ClientIP, UserAgent: e.UserAgent}] = true
		h.mu.Unlock()
	}
}

// IsRobot classifies the session.
func (h *Heuristic) IsRobot(key session.Key) bool {
	if AgentLooksLikeRobot(key.UserAgent) {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fetchedRobots[key]
}

// Reset clears per-session state.
func (h *Heuristic) Reset() {
	h.mu.Lock()
	h.fetchedRobots = make(map[session.Key]bool)
	h.mu.Unlock()
}
