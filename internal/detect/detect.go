// Package detect is the unified decision layer of the detection pipeline:
// every verdict — on the serving path (proxy), in the CoDeeN-scale simulator
// (cdn), and in the offline experiments — flows through one pluggable
// Detector chain instead of ad-hoc heuristics scattered across layers.
//
// A Detector renders an opinion about one session snapshot, or abstains.
// Detectors compose: Chain tries detectors in priority order and takes the
// first opinion (the paper's structure — direct evidence outranks
// behavioural browser tests, which outrank the learned model's statistical
// guess); Weighted takes a confidence-weighted vote across detectors.
// Learned wraps the AdaBoost model of Section 4.2 behind an atomic pointer
// so a freshly trained model can be hot-swapped onto the serving path with
// zero locks on reads (see Learned.SetModel).
//
// The heuristic rule detectors extracted from the old core classifier live
// in the detect/rules subpackage.
package detect

import (
	"fmt"
	"strings"

	"botdetect/internal/session"
)

// Class is the decision about a session's traffic source.
type Class int

const (
	// ClassUndecided means not enough evidence has been seen.
	ClassUndecided Class = iota
	// ClassHuman means the traffic source is a human user.
	ClassHuman
	// ClassRobot means the traffic source is an automated agent.
	ClassRobot
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassHuman:
		return "human"
	case ClassRobot:
		return "robot"
	default:
		return "undecided"
	}
}

// Confidence qualifies a verdict.
type Confidence int

const (
	// Tentative verdicts may flip as more requests arrive.
	Tentative Confidence = iota
	// Probable verdicts rest on behavioural or statistical evidence
	// (browser testing, the learned model).
	Probable
	// Definite verdicts rest on direct evidence (input events, decoy hits,
	// hidden-link fetches, CAPTCHA).
	Definite
)

// String returns the confidence name.
func (c Confidence) String() string {
	switch c {
	case Definite:
		return "definite"
	case Probable:
		return "probable"
	default:
		return "tentative"
	}
}

// Verdict is the classification of one session.
type Verdict struct {
	// Class is the decision.
	Class Class
	// Confidence qualifies the decision.
	Confidence Confidence
	// Reason is a human-readable explanation of the dominant evidence.
	Reason string
	// AtRequest is the request count at which the dominant evidence was
	// observed (0 when no evidence has been observed).
	AtRequest int64
	// Origin names the fleet node whose engine produced the verdict when it
	// arrived via replication; it is empty for locally derived verdicts. The
	// fleet layer uses it to suppress re-publishing echoes.
	Origin string
}

// String renders a verdict compactly.
func (v Verdict) String() string {
	return fmt.Sprintf("%s (%s, request %d): %s", v.Class, v.Confidence, v.AtRequest, v.Reason)
}

// Undecided builds an undecided verdict with the given reason.
func Undecided(reason string) Verdict {
	return Verdict{Class: ClassUndecided, Confidence: Tentative, Reason: reason}
}

// Detector renders an opinion about one session.
//
// Detect examines the snapshot and returns its verdict plus true, or
// abstains by returning false. The snapshot is shared with the session
// tracker's published view and MUST be treated as read-only. Detect is
// called concurrently from every serving goroutine, so implementations must
// be safe for concurrent use and should not allocate on the common path.
type Detector interface {
	// Name identifies the detector in logs and reports.
	Name() string
	// Detect classifies the session or abstains.
	Detect(snap *session.Snapshot) (Verdict, bool)
}

// chain tries members in order and returns the first opinion.
type chain struct {
	name    string
	members []Detector
}

// Chain composes detectors in strict priority order: the first member with
// an opinion decides. It mirrors the paper's evidence ranking — direct
// evidence, then behavioural tests, then statistical classification.
func Chain(name string, members ...Detector) Detector {
	return &chain{name: name, members: members}
}

// Name implements Detector.
func (c *chain) Name() string { return c.name }

// Detect implements Detector.
func (c *chain) Detect(snap *session.Snapshot) (Verdict, bool) {
	for _, d := range c.members {
		if v, ok := d.Detect(snap); ok {
			return v, true
		}
	}
	return Verdict{}, false
}

// Members returns the chain's detectors in priority order, so offline
// harnesses can report which stage decided.
func (c *chain) Members() []Detector { return c.members }

// WeightedMember pairs a detector with its voting weight.
type WeightedMember struct {
	Detector Detector
	Weight   float64
}

// weighted takes a confidence-scaled weighted vote.
type weighted struct {
	name    string
	members []WeightedMember
}

// Weighted composes detectors by confidence-weighted vote: each member's
// opinion contributes Weight scaled by its confidence (Definite 1.0,
// Probable 0.6, Tentative 0.3), positive for human and negative for robot.
// The sign of the sum decides; the member with the largest contribution
// supplies the reason. Members that abstain contribute nothing; if every
// member abstains, Weighted abstains. A zero sum yields an undecided
// verdict (conflicting evidence of equal weight).
func Weighted(name string, members ...WeightedMember) Detector {
	return &weighted{name: name, members: members}
}

// Name implements Detector.
func (w *weighted) Name() string { return w.name }

func confidenceScale(c Confidence) float64 {
	switch c {
	case Definite:
		return 1.0
	case Probable:
		return 0.6
	default:
		return 0.3
	}
}

// Detect implements Detector.
func (w *weighted) Detect(snap *session.Snapshot) (Verdict, bool) {
	sum := 0.0
	voted := false
	var lead Verdict
	leadAbs := 0.0
	for _, m := range w.members {
		v, ok := m.Detector.Detect(snap)
		if !ok || v.Class == ClassUndecided {
			continue
		}
		voted = true
		contrib := m.Weight * confidenceScale(v.Confidence)
		if v.Class == ClassRobot {
			contrib = -contrib
		}
		sum += contrib
		if abs := contrib; abs < 0 {
			abs = -abs
			if abs > leadAbs {
				leadAbs, lead = abs, v
			}
		} else if abs > leadAbs {
			leadAbs, lead = abs, v
		}
	}
	if !voted {
		return Verdict{}, false
	}
	switch {
	case sum > 0 && lead.Class == ClassHuman, sum < 0 && lead.Class == ClassRobot:
		return lead, true
	case sum > 0:
		return Verdict{Class: ClassHuman, Confidence: Probable, Reason: "weighted vote favours human", AtRequest: int64(snap.Counts.Total)}, true
	case sum < 0:
		return Verdict{Class: ClassRobot, Confidence: Probable, Reason: "weighted vote favours robot", AtRequest: int64(snap.Counts.Total)}, true
	default:
		return Undecided("weighted vote tied: " + lead.Reason), true
	}
}

// Describe renders a one-line summary of a detector tree, for status pages.
func Describe(d Detector) string {
	switch t := d.(type) {
	case *chain:
		names := make([]string, len(t.members))
		for i, m := range t.members {
			names[i] = Describe(m)
		}
		return t.name + "(" + strings.Join(names, " → ") + ")"
	case *weighted:
		names := make([]string, len(t.members))
		for i, m := range t.members {
			names[i] = fmt.Sprintf("%s×%.1f", Describe(m.Detector), m.Weight)
		}
		return t.name + "(" + strings.Join(names, " + ") + ")"
	default:
		return d.Name()
	}
}
