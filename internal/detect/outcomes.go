package detect

import (
	"sync"

	"botdetect/internal/features"
)

// Outcomes is a bounded, concurrency-safe buffer of labelled examples — the
// raw material of the online training loop. The serving path appends an
// example whenever ground truth reveals itself (a CAPTCHA outcome, a
// beacon-confirmed input event, a decoy or hidden-link hit, an operator or
// workload label), and the background trainer periodically drains a copy to
// retrain the AdaBoost model it then hot-swaps via Learned.SetModel.
//
// The buffer is a ring: once full, new outcomes overwrite the oldest, so a
// long-running deployment trains on a sliding window of recent behaviour.
// Appends are rare events (at most a handful per session), so a plain mutex
// is the right cost model; classification never touches this structure.
type Outcomes struct {
	mu    sync.Mutex
	buf   []features.Example
	next  int   // ring cursor once full
	full  bool  // buf has wrapped
	total int64 // lifetime appends
}

// NewOutcomes creates a buffer retaining the most recent capacity examples
// (minimum 16).
func NewOutcomes(capacity int) *Outcomes {
	if capacity < 16 {
		capacity = 16
	}
	return &Outcomes{buf: make([]features.Example, 0, capacity)}
}

// Add appends one labelled outcome.
func (o *Outcomes) Add(x features.Vector, human bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ex := features.Example{X: x, Human: human}
	if o.full {
		o.buf[o.next] = ex
		o.next = (o.next + 1) % len(o.buf)
	} else {
		o.buf = append(o.buf, ex)
		if len(o.buf) == cap(o.buf) {
			o.full = true
		}
	}
	o.total++
}

// Len returns the number of retained examples.
func (o *Outcomes) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.buf)
}

// Total returns the lifetime number of appended outcomes, including ones
// that have been overwritten. Trainers use it to detect new material since
// the last retrain.
func (o *Outcomes) Total() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.total
}

// Snapshot returns an independent copy of the retained examples (oldest
// first once the ring has wrapped; insertion order before that).
func (o *Outcomes) Snapshot() []features.Example {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]features.Example, 0, len(o.buf))
	if o.full {
		out = append(out, o.buf[o.next:]...)
		out = append(out, o.buf[:o.next]...)
	} else {
		out = append(out, o.buf...)
	}
	return out
}
