package detect

import (
	"sync/atomic"

	"botdetect/internal/adaboost"
	"botdetect/internal/session"
)

// Learned wraps the trained AdaBoost ensemble of Section 4.2 as a Detector.
// The model sits behind an atomic pointer: SetModel publishes a retrained
// model with a single pointer store, and the serving path loads it with a
// single pointer load — no lock is ever taken on reads, so the online
// trainer can hot-swap models under full classification load.
//
// Each swap advances the model epoch. The session layer's verdict cache is
// keyed by (session epoch, model epoch), so every cached verdict in the
// system is implicitly invalidated the moment a new model is published.
//
// With no model published, Learned abstains and the rule detectors decide
// alone — a zero-value-safe degradation to the paper's rules-only deployment.
type Learned struct {
	// MinRequests is the number of requests a session must reach before the
	// statistical model may decide (mirrors the paper building classifiers
	// only from sessions with enough requests).
	MinRequests int64

	model atomic.Pointer[adaboost.Model]
	epoch atomic.Uint64
}

// NewLearned creates a Learned detector with no model published yet.
func NewLearned(minRequests int64) *Learned {
	return &Learned{MinRequests: minRequests}
}

// SetModel atomically publishes m (nil unpublishes, reverting to rules-only
// classification) and advances the model epoch.
func (l *Learned) SetModel(m *adaboost.Model) {
	l.model.Store(m)
	l.epoch.Add(1)
}

// Model returns the currently published model, or nil.
func (l *Learned) Model() *adaboost.Model { return l.model.Load() }

// Epoch returns the model epoch: it advances on every SetModel, and cached
// verdicts from older epochs are never served.
func (l *Learned) Epoch() uint64 { return l.epoch.Load() }

// Name implements Detector.
func (l *Learned) Name() string { return "learned" }

// Fixed reasons keep the hot classify path allocation-free.
const (
	reasonLearnedHuman = "learned model classified the request mix as human"
	reasonLearnedRobot = "learned model classified the request mix as robot"
)

// Detect implements Detector: it scores the session's incrementally
// maintained attribute vector with the published ensemble. It abstains when
// no model is published or the session is too short to have a meaningful
// request mix.
func (l *Learned) Detect(snap *session.Snapshot) (Verdict, bool) {
	m := l.model.Load()
	if m == nil || int64(snap.Counts.Total) < l.MinRequests {
		return Verdict{}, false
	}
	if m.Predict(snap.Features) {
		return Verdict{Class: ClassHuman, Confidence: Probable, Reason: reasonLearnedHuman, AtRequest: int64(snap.Counts.Total)}, true
	}
	return Verdict{Class: ClassRobot, Confidence: Probable, Reason: reasonLearnedRobot, AtRequest: int64(snap.Counts.Total)}, true
}
