// Remote holds verdicts replicated from other fleet nodes and serves them
// into the local detector chain, so a session blocked by a peer's engine is
// recognised here even though the local engine never saw its evidence.
package detect

import (
	"sync"

	"botdetect/internal/session"
)

// Remote is a Detector over fleet-replicated verdicts. It sits between
// direct evidence and the learned model in the serving chain: locally
// observed hard evidence still outranks it, but a peer's definite verdict
// outranks the local statistical guess. Reads are lock-free (sync.Map), so
// the serving path pays one map lookup and no locks.
type Remote struct {
	verdicts sync.Map // session.Key -> Verdict (Origin always set)
}

// NewRemote returns an empty remote-verdict store.
func NewRemote() *Remote { return &Remote{} }

// Name implements Detector.
func (r *Remote) Name() string { return "remote-verdicts" }

// Detect implements Detector: it returns the replicated verdict for the
// session, or abstains.
func (r *Remote) Detect(snap *session.Snapshot) (Verdict, bool) {
	v, ok := r.verdicts.Load(snap.Key)
	if !ok {
		return Verdict{}, false
	}
	return v.(Verdict), true
}

// Set stores a replicated verdict for key, tagged with its origin node. It
// reports whether the stored verdict changed (same-class, not-higher
// confidence repeats are no-ops, so replays cause no cache invalidation).
func (r *Remote) Set(key session.Key, v Verdict, origin string) bool {
	v.Origin = origin
	if cur, ok := r.verdicts.Load(key); ok {
		c := cur.(Verdict)
		if c.Class == v.Class && c.Confidence >= v.Confidence {
			return false
		}
	}
	r.verdicts.Store(key, v)
	return true
}

// Get returns the replicated verdict for key, if any.
func (r *Remote) Get(key session.Key) (Verdict, bool) {
	v, ok := r.verdicts.Load(key)
	if !ok {
		return Verdict{}, false
	}
	return v.(Verdict), true
}

// Delete removes key's replicated verdict (fleet-store eviction).
func (r *Remote) Delete(key session.Key) { r.verdicts.Delete(key) }

// Len counts stored verdicts (a full walk; status-page use only).
func (r *Remote) Len() int {
	n := 0
	r.verdicts.Range(func(_, _ any) bool { n++; return true })
	return n
}
