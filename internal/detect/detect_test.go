package detect

import (
	"strings"
	"sync"
	"testing"

	"botdetect/internal/adaboost"
	"botdetect/internal/features"
	"botdetect/internal/session"
)

// stub is a configurable detector for combinator tests.
type stub struct {
	name string
	v    Verdict
	ok   bool
}

func (s stub) Name() string                             { return s.name }
func (s stub) Detect(*session.Snapshot) (Verdict, bool) { return s.v, s.ok }

func robotV(conf Confidence) Verdict {
	return Verdict{Class: ClassRobot, Confidence: conf, Reason: "stub robot", AtRequest: 1}
}

func humanV(conf Confidence) Verdict {
	return Verdict{Class: ClassHuman, Confidence: conf, Reason: "stub human", AtRequest: 2}
}

func TestChainFirstOpinionWins(t *testing.T) {
	snap := &session.Snapshot{}
	c := Chain("test",
		stub{name: "abstain", ok: false},
		stub{name: "robot", v: robotV(Definite), ok: true},
		stub{name: "human", v: humanV(Definite), ok: true},
	)
	v, ok := c.Detect(snap)
	if !ok || v.Class != ClassRobot || v.Reason != "stub robot" {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}
	if c.Name() != "test" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestChainAllAbstain(t *testing.T) {
	c := Chain("empty", stub{name: "a"}, stub{name: "b"})
	if _, ok := c.Detect(&session.Snapshot{}); ok {
		t.Fatal("chain of abstainers must abstain")
	}
}

func TestWeightedVote(t *testing.T) {
	snap := &session.Snapshot{Counts: session.Counts{Total: 42}}

	// A definite robot outvotes a probable human of equal weight.
	w := Weighted("vote",
		WeightedMember{Detector: stub{name: "r", v: robotV(Definite), ok: true}, Weight: 1},
		WeightedMember{Detector: stub{name: "h", v: humanV(Probable), ok: true}, Weight: 1},
	)
	v, ok := w.Detect(snap)
	if !ok || v.Class != ClassRobot {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}

	// Weight can flip it.
	w = Weighted("vote",
		WeightedMember{Detector: stub{name: "r", v: robotV(Definite), ok: true}, Weight: 1},
		WeightedMember{Detector: stub{name: "h", v: humanV(Probable), ok: true}, Weight: 3},
	)
	v, _ = w.Detect(snap)
	if v.Class != ClassHuman {
		t.Fatalf("weighted human lost: %+v", v)
	}

	// All abstain -> abstain; undecided members do not vote.
	w = Weighted("vote",
		WeightedMember{Detector: stub{name: "a"}, Weight: 1},
		WeightedMember{Detector: stub{name: "u", v: Undecided("no idea"), ok: true}, Weight: 1},
	)
	if _, ok := w.Detect(snap); ok {
		t.Fatal("vote with no opinions must abstain")
	}

	// Exact tie -> explicit undecided verdict.
	w = Weighted("vote",
		WeightedMember{Detector: stub{name: "r", v: robotV(Definite), ok: true}, Weight: 1},
		WeightedMember{Detector: stub{name: "h", v: humanV(Definite), ok: true}, Weight: 1},
	)
	v, ok = w.Detect(snap)
	if !ok || v.Class != ClassUndecided {
		t.Fatalf("tie verdict = %+v ok=%v", v, ok)
	}
}

func TestDescribe(t *testing.T) {
	l := NewLearned(10)
	d := Chain("serving", stub{name: "direct"}, l, Weighted("vote", WeightedMember{Detector: stub{name: "x"}, Weight: 2}))
	s := Describe(d)
	for _, want := range []string{"serving(", "direct", "learned", "vote(", "x×2.0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Describe = %q missing %q", s, want)
		}
	}
}

func trainToyModel(t *testing.T) *adaboost.Model {
	t.Helper()
	var examples []features.Example
	for i := 0; i < 40; i++ {
		var v features.Vector
		if i%2 == 0 {
			v[features.ReferrerPct] = 0.8
			examples = append(examples, features.Example{X: v, Human: true})
		} else {
			v[features.HTMLPct] = 0.9
			examples = append(examples, features.Example{X: v, Human: false})
		}
	}
	m, err := adaboost.Train(examples, adaboost.Config{Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLearnedAbstainsAndDecides(t *testing.T) {
	l := NewLearned(10)
	var human features.Vector
	human[features.ReferrerPct] = 0.8
	long := &session.Snapshot{Counts: session.Counts{Total: 20}, Features: human}

	if _, ok := l.Detect(long); ok {
		t.Fatal("learned without a model must abstain")
	}
	if l.Epoch() != 0 || l.Model() != nil {
		t.Fatal("fresh learned should have epoch 0 and nil model")
	}

	m := trainToyModel(t)
	l.SetModel(m)
	if l.Epoch() != 1 || l.Model() != m {
		t.Fatalf("epoch=%d model=%p", l.Epoch(), l.Model())
	}

	v, ok := l.Detect(long)
	if !ok || v.Class != ClassHuman || v.Confidence != Probable || v.AtRequest != 20 {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}
	var robot features.Vector
	robot[features.HTMLPct] = 0.9
	v, ok = l.Detect(&session.Snapshot{Counts: session.Counts{Total: 20}, Features: robot})
	if !ok || v.Class != ClassRobot {
		t.Fatalf("robot verdict = %+v ok=%v", v, ok)
	}

	// Too-short sessions abstain even with a model.
	if _, ok := l.Detect(&session.Snapshot{Counts: session.Counts{Total: 5}, Features: human}); ok {
		t.Fatal("learned must abstain below MinRequests")
	}

	// Unpublishing reverts to abstention and advances the epoch.
	l.SetModel(nil)
	if _, ok := l.Detect(long); ok {
		t.Fatal("unpublished model must abstain")
	}
	if l.Epoch() != 2 {
		t.Fatalf("epoch = %d", l.Epoch())
	}
}

func TestOutcomesRing(t *testing.T) {
	o := NewOutcomes(16)
	for i := 0; i < 20; i++ {
		var v features.Vector
		v[0] = float64(i)
		o.Add(v, i%2 == 0)
	}
	if o.Len() != 16 {
		t.Fatalf("Len = %d", o.Len())
	}
	if o.Total() != 20 {
		t.Fatalf("Total = %d", o.Total())
	}
	snap := o.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Oldest retained example is #4 (0..3 overwritten), newest is #19.
	if snap[0].X[0] != 4 || snap[15].X[0] != 19 {
		t.Fatalf("ring order wrong: first=%v last=%v", snap[0].X[0], snap[15].X[0])
	}
}

func TestOutcomesConcurrent(t *testing.T) {
	o := NewOutcomes(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var v features.Vector
				v[0] = float64(seed*1000 + i)
				o.Add(v, i%2 == 0)
				_ = o.Snapshot()
				_ = o.Len()
			}
		}(w)
	}
	wg.Wait()
	if o.Total() != 800 {
		t.Fatalf("Total = %d", o.Total())
	}
	if o.Len() != 64 {
		t.Fatalf("Len = %d", o.Len())
	}
}
