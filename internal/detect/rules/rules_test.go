package rules

import (
	"testing"

	"botdetect/internal/detect"
	"botdetect/internal/session"
)

func sigSnap(total int64, sigs map[session.Signal]int64) *session.Snapshot {
	return &session.Snapshot{Counts: session.Counts{Total: uint32(total)}, Signals: session.MakeSignals(sigs)}
}

func TestDirectPriorityOrder(t *testing.T) {
	// Decoy outranks mouse: a robot that blindly fetches every URL hits the
	// real key too, and must still be classified robot.
	v, ok := (Direct{}).Detect(sigSnap(5, map[session.Signal]int64{
		session.SignalDecoy: 3, session.SignalMouse: 2,
	}))
	if !ok || v.Class != detect.ClassRobot || v.Confidence != detect.Definite || v.AtRequest != 3 {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}

	cases := []struct {
		sig   session.Signal
		class detect.Class
	}{
		{session.SignalDecoy, detect.ClassRobot},
		{session.SignalReplay, detect.ClassRobot},
		{session.SignalHidden, detect.ClassRobot},
		{session.SignalUAMismatch, detect.ClassRobot},
		{session.SignalMouse, detect.ClassHuman},
		{session.SignalCaptcha, detect.ClassHuman},
	}
	for _, tc := range cases {
		v, ok := (Direct{}).Detect(sigSnap(1, map[session.Signal]int64{tc.sig: 1}))
		if !ok || v.Class != tc.class || v.Confidence != detect.Definite {
			t.Fatalf("signal %v: verdict = %+v ok=%v", tc.sig, v, ok)
		}
	}

	// No direct evidence: abstain (CSS/JS are behavioural, not direct).
	if _, ok := (Direct{}).Detect(sigSnap(50, map[session.Signal]int64{session.SignalCSS: 1, session.SignalJS: 1})); ok {
		t.Fatal("Direct must abstain without direct evidence")
	}
}

func TestBrowserTestRules(t *testing.T) {
	b := BrowserTest{MinRequests: 10}

	v, ok := b.Detect(sigSnap(5, nil))
	if !ok || v.Class != detect.ClassUndecided {
		t.Fatalf("short session verdict = %+v ok=%v", v, ok)
	}

	v, _ = b.Detect(sigSnap(12, map[session.Signal]int64{session.SignalJS: 4}))
	if v.Class != detect.ClassRobot || v.AtRequest != 4 {
		t.Fatalf("JS-no-mouse verdict = %+v", v)
	}

	v, _ = b.Detect(sigSnap(12, map[session.Signal]int64{session.SignalCSS: 2}))
	if v.Class != detect.ClassHuman || v.AtRequest != 2 {
		t.Fatalf("CSS verdict = %+v", v)
	}

	// JS outranks CSS (S_JS − S_MM subtraction).
	v, _ = b.Detect(sigSnap(12, map[session.Signal]int64{session.SignalCSS: 2, session.SignalJS: 3}))
	if v.Class != detect.ClassRobot {
		t.Fatalf("JS+CSS verdict = %+v", v)
	}

	v, _ = b.Detect(sigSnap(12, nil))
	if v.Class != detect.ClassRobot || v.AtRequest != 10 {
		t.Fatalf("no-presentation verdict = %+v", v)
	}
}

func TestServingChainEquivalentToLegacyClassifier(t *testing.T) {
	// The rules-only serving chain must reproduce the old core classifier's
	// decision table exactly.
	chain := Serving(10, nil)

	cases := []struct {
		name  string
		snap  *session.Snapshot
		class detect.Class
		conf  detect.Confidence
	}{
		{"decoy robot", sigSnap(3, map[session.Signal]int64{session.SignalDecoy: 1}), detect.ClassRobot, detect.Definite},
		{"mouse human", sigSnap(3, map[session.Signal]int64{session.SignalMouse: 1}), detect.ClassHuman, detect.Definite},
		{"short undecided", sigSnap(3, nil), detect.ClassUndecided, detect.Tentative},
		{"js robot", sigSnap(20, map[session.Signal]int64{session.SignalJS: 5}), detect.ClassRobot, detect.Probable},
		{"css human", sigSnap(20, map[session.Signal]int64{session.SignalCSS: 5}), detect.ClassHuman, detect.Probable},
		{"silent robot", sigSnap(20, nil), detect.ClassRobot, detect.Probable},
	}
	for _, tc := range cases {
		v, ok := chain.Detect(tc.snap)
		if !ok || v.Class != tc.class || v.Confidence != tc.conf {
			t.Fatalf("%s: verdict = %+v ok=%v", tc.name, v, ok)
		}
	}

	// With a learned stage the chain composes three detectors.
	withModel := Serving(10, detect.NewLearned(10))
	if got := detect.Describe(withModel); got != "serving(direct-evidence → learned → browser-test)" {
		t.Fatalf("Describe = %q", got)
	}
}
