package rules

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"botdetect/internal/session"
)

// snapWith builds a synthetic session snapshot with the given total request
// count and signals observed at the given request numbers.
func snapWith(total int64, sigs map[session.Signal]int64) session.Snapshot {
	return session.Snapshot{
		Key:     session.Key{IP: "10.0.0.1", UserAgent: "x"},
		Counts:  session.Counts{Total: uint32(total)},
		Signals: session.MakeSignals(sigs),
	}
}

func TestInHumanSetCombiningRule(t *testing.T) {
	cases := []struct {
		name  string
		css   bool
		mouse bool
		js    bool
		want  bool
	}{
		{"nothing", false, false, false, false},
		{"css only (JS disabled human)", true, false, false, true},
		{"mouse only", false, true, false, true},
		{"css+mouse", true, true, false, true},
		{"js only (robot running JS)", false, false, true, false},
		{"css+js no mouse (robot fetching everything)", true, false, true, false},
		{"js+mouse", false, true, true, true},
		{"css+js+mouse (normal browser + user)", true, true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sigs := map[session.Signal]int64{}
			if tc.css {
				sigs[session.SignalCSS] = 1
			}
			if tc.mouse {
				sigs[session.SignalMouse] = 1
			}
			if tc.js {
				sigs[session.SignalJS] = 1
			}
			if got := InHumanSet(snapWith(20, sigs)); got != tc.want {
				t.Fatalf("InHumanSet = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBreakdownCountsAndFilters(t *testing.T) {
	sessions := []session.Snapshot{
		snapWith(20, map[session.Signal]int64{session.SignalCSS: 3, session.SignalJS: 4, session.SignalMouse: 6}),
		snapWith(15, map[session.Signal]int64{session.SignalCSS: 2}),
		snapWith(30, map[session.Signal]int64{session.SignalJS: 2}),
		snapWith(12, map[session.Signal]int64{session.SignalHidden: 1}),
		snapWith(25, map[session.Signal]int64{session.SignalCaptcha: 9, session.SignalUAMismatch: 2}),
		snapWith(5, map[session.Signal]int64{session.SignalCSS: 1}), // filtered: <= 10 requests
		snapWith(11, nil),
	}
	b := Breakdown(sessions, 10)
	if b.Total != 6 {
		t.Fatalf("Total = %d", b.Total)
	}
	if b.CSS != 2 || b.JS != 2 || b.Mouse != 1 || b.Hidden != 1 || b.Captcha != 1 || b.UAMismatch != 1 {
		t.Fatalf("breakdown = %+v", b)
	}
	// Human set: session 1 (mouse), session 2 (css only). Session 3 is JS
	// without mouse; sessions 4, 5, 7 have neither CSS nor mouse.
	if b.HumanSet != 2 {
		t.Fatalf("HumanSet = %d", b.HumanSet)
	}
	if math.Abs(b.HumanUpperBound()-2.0/6.0) > 1e-9 {
		t.Fatalf("upper bound = %f", b.HumanUpperBound())
	}
	if math.Abs(b.HumanLowerBound()-1.0/6.0) > 1e-9 {
		t.Fatalf("lower bound = %f", b.HumanLowerBound())
	}
	wantFPR := (2.0/6.0 - 1.0/6.0) / (1 - 1.0/6.0)
	if math.Abs(b.MaxFalsePositiveRate()-wantFPR) > 1e-9 {
		t.Fatalf("max FPR = %f, want %f", b.MaxFalsePositiveRate(), wantFPR)
	}
}

func TestBreakdownIncludeAll(t *testing.T) {
	sessions := []session.Snapshot{
		snapWith(1, map[session.Signal]int64{session.SignalCSS: 1}),
		snapWith(2, nil),
	}
	b := Breakdown(sessions, 0)
	if b.Total != 2 || b.CSS != 1 {
		t.Fatalf("breakdown = %+v", b)
	}
	empty := Breakdown(nil, 0)
	if empty.HumanUpperBound() != 0 || empty.MaxFalsePositiveRate() != 0 || empty.CSSFraction() != 0 {
		t.Fatal("empty breakdown fractions should be zero")
	}
}

func TestBreakdownFractionAccessors(t *testing.T) {
	sessions := []session.Snapshot{
		snapWith(20, map[session.Signal]int64{session.SignalCSS: 1, session.SignalJS: 1, session.SignalMouse: 1, session.SignalCaptcha: 1, session.SignalHidden: 1, session.SignalUAMismatch: 1}),
		snapWith(20, nil),
	}
	b := Breakdown(sessions, 10)
	for name, got := range map[string]float64{
		"css": b.CSSFraction(), "js": b.JSFraction(), "mouse": b.MouseFraction(),
		"captcha": b.CaptchaFraction(), "hidden": b.HiddenFraction(), "ua": b.UAMismatchFraction(),
	} {
		if math.Abs(got-0.5) > 1e-9 {
			t.Fatalf("%s fraction = %f, want 0.5", name, got)
		}
	}
}

func TestBreakdownBoundsProperty(t *testing.T) {
	f := func(flags []uint8) bool {
		var sessions []session.Snapshot
		for _, fl := range flags {
			sigs := map[session.Signal]int64{}
			if fl&1 != 0 {
				sigs[session.SignalCSS] = 1
			}
			if fl&2 != 0 {
				sigs[session.SignalMouse] = 2
			}
			if fl&4 != 0 {
				sigs[session.SignalJS] = 3
			}
			sessions = append(sessions, snapWith(20, sigs))
		}
		b := Breakdown(sessions, 10)
		lower, upper := b.HumanLowerBound(), b.HumanUpperBound()
		if lower < 0 || upper > 1 {
			return false
		}
		// Lower bound (mouse share) never exceeds upper bound (S_H share):
		// every mouse session is in S_H by construction of the rule.
		if lower > upper+1e-12 {
			return false
		}
		fpr := b.MaxFalsePositiveRate()
		return fpr >= -1e-12 && fpr <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownTableFormat(t *testing.T) {
	sessions := []session.Snapshot{
		snapWith(20, map[session.Signal]int64{session.SignalCSS: 1}),
		snapWith(20, map[session.Signal]int64{session.SignalMouse: 1}),
		snapWith(20, nil),
	}
	tab := Breakdown(sessions, 10).Table()
	out := tab.Format()
	for _, want := range []string{"Downloaded CSS", "Mouse movement detected", "Total sessions", "Passed CAPTCHA test"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing row %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "33.3") {
		t.Fatalf("expected 33.3%% rows in table:\n%s", out)
	}
}

func TestDetectionLatencies(t *testing.T) {
	sessions := []session.Snapshot{
		snapWith(60, map[session.Signal]int64{session.SignalMouse: 10, session.SignalCSS: 3}),
		snapWith(60, map[session.Signal]int64{session.SignalMouse: 30}),
		snapWith(60, map[session.Signal]int64{session.SignalCSS: 5}),
		snapWith(60, nil),
	}
	cdfs := DetectionLatencies(sessions, session.SignalMouse, session.SignalCSS, session.SignalJS)
	if cdfs[session.SignalMouse].Len() != 2 {
		t.Fatalf("mouse CDF samples = %d", cdfs[session.SignalMouse].Len())
	}
	if cdfs[session.SignalCSS].Len() != 2 {
		t.Fatalf("css CDF samples = %d", cdfs[session.SignalCSS].Len())
	}
	if cdfs[session.SignalJS].Len() != 0 {
		t.Fatalf("js CDF samples = %d", cdfs[session.SignalJS].Len())
	}
	if got := cdfs[session.SignalMouse].Quantile(1.0); got != 30 {
		t.Fatalf("mouse p100 = %f", got)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 929922: "929922", -15: "-15"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Fatalf("itoa(%d) = %q", in, got)
		}
	}
}
