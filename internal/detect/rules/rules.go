// Package rules holds the paper's heuristic detectors, extracted from the
// old core classifier so that every consumer — serving proxy, CDN
// simulator, offline experiments — composes them through the same
// detect.Detector chain. It also hosts the Section 3.1 aggregate analysis
// (the combining rule S_H, Table 1 breakdowns, Figure 2 latencies) and the
// rule variants the ablation experiments sweep.
package rules

import (
	"botdetect/internal/detect"
	"botdetect/internal/session"
)

// Direct is the direct-evidence detector. Robot evidence comes first
// (Definite): decoy fetches, replayed keys, hidden-link fetches, and a
// forged User-Agent can only be produced by automation — a browser driven by
// a human never calls the decoy functions or follows invisible links — so
// they outrank everything else. This also catches robots that blindly fetch
// every URL in the script and therefore happen to hit the real key as well.
// Direct human evidence is next (Definite): a valid input-event beacon or a
// passed CAPTCHA. With neither, Direct abstains.
type Direct struct{}

// Name implements detect.Detector.
func (Direct) Name() string { return "direct-evidence" }

// Detect implements detect.Detector.
func (Direct) Detect(snap *session.Snapshot) (detect.Verdict, bool) {
	if at, ok := snap.SignalAt(session.SignalDecoy); ok {
		return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "fetched a decoy beacon URL without executing the script", AtRequest: at}, true
	}
	if at, ok := snap.SignalAt(session.SignalReplay); ok {
		return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "replayed an already consumed beacon key", AtRequest: at}, true
	}
	if at, ok := snap.SignalAt(session.SignalHidden); ok {
		return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "followed a link invisible to human users", AtRequest: at}, true
	}
	if at, ok := snap.SignalAt(session.SignalUAMismatch); ok {
		return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Definite, Reason: "User-Agent header does not match the script-reported agent", AtRequest: at}, true
	}
	if at, ok := snap.SignalAt(session.SignalMouse); ok {
		return detect.Verdict{Class: detect.ClassHuman, Confidence: detect.Definite, Reason: "input event beacon carried a valid key", AtRequest: at}, true
	}
	if at, ok := snap.SignalAt(session.SignalCaptcha); ok {
		return detect.Verdict{Class: detect.ClassHuman, Confidence: detect.Definite, Reason: "passed CAPTCHA challenge", AtRequest: at}, true
	}
	return detect.Verdict{}, false
}

// BrowserTest is the behavioural browser-test detector (Probable, only after
// MinRequests requests): running the injected JavaScript without ever
// producing an input event indicates a robot (the S_JS − S_MM term);
// fetching the injected stylesheet without contrary evidence indicates a
// standard browser, hence a human (the S_CSS term); fetching neither
// indicates a robot. Below MinRequests it returns an explicit undecided
// verdict, making it a terminal chain stage.
type BrowserTest struct {
	// MinRequests is the number of requests a session must reach before the
	// behavioural rules classify it (paper: 10).
	MinRequests int64
}

// Name implements detect.Detector.
func (BrowserTest) Name() string { return "browser-test" }

// Detect implements detect.Detector.
func (b BrowserTest) Detect(snap *session.Snapshot) (detect.Verdict, bool) {
	if int64(snap.Counts.Total) < b.MinRequests {
		return detect.Undecided("fewer requests than the classification threshold"), true
	}
	if jsAt, ok := snap.SignalAt(session.SignalJS); ok {
		// Ran the script but never produced an input event over a full
		// session prefix: S_JS − S_MM.
		return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Probable, Reason: "executed JavaScript but produced no input events", AtRequest: jsAt}, true
	}
	if cssAt, ok := snap.SignalAt(session.SignalCSS); ok {
		return detect.Verdict{Class: detect.ClassHuman, Confidence: detect.Probable, Reason: "fetched the embedded stylesheet like a standard browser", AtRequest: cssAt}, true
	}
	// The "no presentation objects" rule first becomes decidable at the
	// classification threshold; report that point so downstream consumers
	// (rate limiting, the complaint model) know when enforcement could start.
	return detect.Verdict{Class: detect.ClassRobot, Confidence: detect.Probable, Reason: "ignored all embedded presentation objects", AtRequest: b.MinRequests}, true
}

// Serving composes the serving-path chain used by every consumer: direct
// evidence outranks the learned model, which outranks the behavioural
// browser test. learned may be nil for a rules-only chain. The chain always
// decides (possibly "undecided") for any tracked session, since BrowserTest
// is terminal.
func Serving(minRequests int64, learned *detect.Learned) detect.Detector {
	if learned == nil {
		return detect.Chain("serving", Direct{}, BrowserTest{MinRequests: minRequests})
	}
	return detect.Chain("serving", Direct{}, learned, BrowserTest{MinRequests: minRequests})
}
