package rules

import (
	"botdetect/internal/metrics"
	"botdetect/internal/session"
)

// This file implements the aggregate session-set analysis of Section 3.1:
// the combining rule S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM), the lower/upper
// bounds on the human share, the maximum false-positive rate, and the
// Table 1 style breakdown of detection signals over a set of sessions.

// InHumanSet reports whether a single session belongs to S_H under the
// combining rule: it fetched the embedded stylesheet or produced an input
// event, and it is not one of the sessions that executed the JavaScript yet
// never produced an input event.
func InHumanSet(s session.Snapshot) bool {
	css := s.Has(session.SignalCSS)
	mouse := s.Has(session.SignalMouse)
	js := s.Has(session.SignalJS)
	return (css || mouse) && !(js && !mouse)
}

// SetBreakdown summarises a session set the way Table 1 does.
type SetBreakdown struct {
	// Total is the number of sessions considered.
	Total int
	// CSS, JS, Mouse, Captcha, Hidden, UAMismatch count sessions exhibiting
	// each signal.
	CSS        int
	JS         int
	Mouse      int
	Captcha    int
	Hidden     int
	UAMismatch int
	// HumanSet is |S_H| under the combining rule.
	HumanSet int
}

// Fraction helpers return shares of the total (0 when the set is empty).

// CSSFraction returns the share of sessions that fetched the stylesheet.
func (b SetBreakdown) CSSFraction() float64 { return frac(b.CSS, b.Total) }

// JSFraction returns the share of sessions that executed the JavaScript.
func (b SetBreakdown) JSFraction() float64 { return frac(b.JS, b.Total) }

// MouseFraction returns the share of sessions with input events — the lower
// bound on the human share.
func (b SetBreakdown) MouseFraction() float64 { return frac(b.Mouse, b.Total) }

// CaptchaFraction returns the share of sessions that passed the CAPTCHA.
func (b SetBreakdown) CaptchaFraction() float64 { return frac(b.Captcha, b.Total) }

// HiddenFraction returns the share of sessions that followed hidden links.
func (b SetBreakdown) HiddenFraction() float64 { return frac(b.Hidden, b.Total) }

// UAMismatchFraction returns the share of sessions with forged User-Agents.
func (b SetBreakdown) UAMismatchFraction() float64 { return frac(b.UAMismatch, b.Total) }

// HumanUpperBound returns |S_H|/total — the upper bound on the human share.
func (b SetBreakdown) HumanUpperBound() float64 { return frac(b.HumanSet, b.Total) }

// HumanLowerBound returns the mouse-event share — the lower bound on the
// human share.
func (b SetBreakdown) HumanLowerBound() float64 { return b.MouseFraction() }

// MaxFalsePositiveRate returns the paper's bound on the false positive rate:
// the gap between the upper and lower bounds divided by the share of
// sessions that are negatives under the lower bound,
// (upper − lower) / (1 − lower).
func (b SetBreakdown) MaxFalsePositiveRate() float64 {
	lower := b.HumanLowerBound()
	upper := b.HumanUpperBound()
	if upper < lower {
		upper = lower
	}
	denom := 1 - lower
	if denom <= 0 {
		return 0
	}
	return (upper - lower) / denom
}

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// Breakdown computes the Table 1 style summary over a set of sessions,
// considering only sessions with more than minRequests requests (the paper
// uses 10 to reduce noise; pass 0 to include everything).
func Breakdown(sessions []session.Snapshot, minRequests int64) SetBreakdown {
	var b SetBreakdown
	for _, s := range sessions {
		if int64(s.Counts.Total) <= minRequests {
			continue
		}
		b.Total++
		if s.Has(session.SignalCSS) {
			b.CSS++
		}
		if s.Has(session.SignalJS) {
			b.JS++
		}
		if s.Has(session.SignalMouse) {
			b.Mouse++
		}
		if s.Has(session.SignalCaptcha) {
			b.Captcha++
		}
		if s.Has(session.SignalHidden) {
			b.Hidden++
		}
		if s.Has(session.SignalUAMismatch) {
			b.UAMismatch++
		}
		if InHumanSet(s) {
			b.HumanSet++
		}
	}
	return b
}

// Table renders the breakdown as the Table 1 layout.
func (b SetBreakdown) Table() *metrics.Table {
	t := metrics.NewTable("Table 1: session breakdown", "Description", "# of Sessions", "Percentage(%)")
	row := func(name string, n int) {
		t.AddRow(name, itoa(n), metrics.Pct(frac(n, b.Total)))
	}
	row("Downloaded CSS", b.CSS)
	row("Executed JavaScript", b.JS)
	row("Mouse movement detected", b.Mouse)
	row("Passed CAPTCHA test", b.Captcha)
	row("Followed hidden links", b.Hidden)
	row("Browser type mismatch", b.UAMismatch)
	t.AddRow("Total sessions", itoa(b.Total), "100.0")
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// DetectionLatencies extracts, for each signal of interest, the distribution
// of "requests needed to detect" over the given sessions — the data behind
// Figure 2. Only sessions that exhibit the signal contribute to its CDF.
func DetectionLatencies(sessions []session.Snapshot, signals ...session.Signal) map[session.Signal]*metrics.CDF {
	out := make(map[session.Signal]*metrics.CDF, len(signals))
	for _, sig := range signals {
		out[sig] = &metrics.CDF{}
	}
	for _, s := range sessions {
		for _, sig := range signals {
			if at, ok := s.SignalAt(sig); ok {
				out[sig].Add(float64(at))
			}
		}
	}
	return out
}
