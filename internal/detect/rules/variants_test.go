package rules

import (
	"testing"

	"botdetect/internal/session"
)

func variantSnap(css, mouse, js bool) session.Snapshot {
	sigs := map[session.Signal]int64{}
	if css {
		sigs[session.SignalCSS] = 1
	}
	if mouse {
		sigs[session.SignalMouse] = 2
	}
	if js {
		sigs[session.SignalJS] = 3
	}
	return session.Snapshot{Counts: session.Counts{Total: 20}, Signals: session.MakeSignals(sigs)}
}

func TestFullRuleMatchesInHumanSet(t *testing.T) {
	rule := FullRule()
	for _, css := range []bool{false, true} {
		for _, mouse := range []bool{false, true} {
			for _, js := range []bool{false, true} {
				s := variantSnap(css, mouse, js)
				if rule.InHumanSet(s) != InHumanSet(s) {
					t.Fatalf("FullRule diverges from InHumanSet for css=%v mouse=%v js=%v", css, mouse, js)
				}
			}
		}
	}
}

func TestRuleVariantSemantics(t *testing.T) {
	smartBot := variantSnap(true, false, true)   // fetches CSS, runs JS, no input events
	noJSHuman := variantSnap(true, false, false) // JS disabled human
	jsHuman := variantSnap(true, true, true)
	bareBot := variantSnap(false, false, false)

	cases := []struct {
		rule Rule
		name string
		want map[*session.Snapshot]bool
	}{
		{CSSOnlyRule(), "css-only", map[*session.Snapshot]bool{&smartBot: true, &noJSHuman: true, &jsHuman: true, &bareBot: false}},
		{MouseOnlyRule(), "mouse-only", map[*session.Snapshot]bool{&smartBot: false, &noJSHuman: false, &jsHuman: true, &bareBot: false}},
		{UnionOnlyRule(), "union", map[*session.Snapshot]bool{&smartBot: true, &noJSHuman: true, &jsHuman: true, &bareBot: false}},
		{FullRule(), "full", map[*session.Snapshot]bool{&smartBot: false, &noJSHuman: true, &jsHuman: true, &bareBot: false}},
	}
	for _, tc := range cases {
		for snap, want := range tc.want {
			if got := tc.rule.InHumanSet(*snap); got != want {
				t.Errorf("%s: got %v, want %v for %v", tc.name, got, want, snap.Signals)
			}
		}
	}
}

func TestRuleNames(t *testing.T) {
	if FullRule().Name() == "custom" || CSSOnlyRule().Name() == "custom" ||
		MouseOnlyRule().Name() == "custom" || UnionOnlyRule().Name() == "custom" {
		t.Fatal("named variants should not be 'custom'")
	}
	if (Rule{UseCSS: true, SubtractJSWithoutMouse: true}).Name() != "custom" {
		t.Fatal("unnamed variant should be 'custom'")
	}
}
