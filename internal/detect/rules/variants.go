package rules

import "botdetect/internal/session"

// Rule selects which evidence a combining-rule variant may use. It exists so
// the benchmark harness can ablate the contribution of each signal family —
// in particular the value of the S_JS − S_MM subtraction, which is the
// paper's refinement over "anything browser-like is human".
type Rule struct {
	// UseCSS admits the stylesheet-download signal (the S_CSS term).
	UseCSS bool
	// UseMouse admits the input-event signal (the S_MM term).
	UseMouse bool
	// SubtractJSWithoutMouse removes sessions that executed JavaScript but
	// produced no input events (the S_JS − S_MM term).
	SubtractJSWithoutMouse bool
}

// FullRule is the paper's rule: S_H = (S_CSS ∪ S_MM) − (S_JS − S_MM).
func FullRule() Rule {
	return Rule{UseCSS: true, UseMouse: true, SubtractJSWithoutMouse: true}
}

// CSSOnlyRule is the browser-test-only variant: S_H = S_CSS.
func CSSOnlyRule() Rule { return Rule{UseCSS: true} }

// MouseOnlyRule is the human-activity-only variant: S_H = S_MM.
func MouseOnlyRule() Rule { return Rule{UseMouse: true} }

// UnionOnlyRule keeps the union but drops the subtraction:
// S_H = S_CSS ∪ S_MM.
func UnionOnlyRule() Rule { return Rule{UseCSS: true, UseMouse: true} }

// Name returns a short human-readable name for the variant.
func (r Rule) Name() string {
	switch r {
	case FullRule():
		return "(CSS ∪ MM) − (JS − MM)"
	case CSSOnlyRule():
		return "CSS only"
	case MouseOnlyRule():
		return "MM only"
	case UnionOnlyRule():
		return "CSS ∪ MM"
	default:
		return "custom"
	}
}

// InHumanSet applies the rule variant to one session snapshot.
func (r Rule) InHumanSet(s session.Snapshot) bool {
	css := r.UseCSS && s.Has(session.SignalCSS)
	mouse := r.UseMouse && s.Has(session.SignalMouse)
	if !css && !mouse {
		return false
	}
	if r.SubtractJSWithoutMouse && s.Has(session.SignalJS) && !s.Has(session.SignalMouse) {
		return false
	}
	return true
}
