package htmlmod

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
)

// diffCorpus is the document corpus the streaming rewriter must reproduce
// byte-for-byte against the buffered reference: well-formed markup plus the
// malformed shapes a proxy sees in the wild.
var diffCorpus = []struct {
	name string
	doc  string
}{
	{"well-formed", samplePage},
	{"empty", ""},
	{"plain-text", "just some text, no markup at all"},
	{"fragment", "<p>just a fragment</p>"},
	{"no-head", "<html><body><p>content</p></body></html>"},
	{"no-body", "<html><head><title>t</title></head><p>loose content</p></html>"},
	{"html-only", "<html><p>no head, no body</p></html>"},
	{"head-only", "<html><head><title>t</title></head></html>"},
	{"body-before-head", "<html><body><p>x</p></body><head><title>late</title></head></html>"},
	{"bodyend-before-head", "</body><head><title>weird</title></head>"},
	{"bodyend-before-body", "<html><head></head></body><p>x</p><body><p>y</p></body></html>"},
	{"two-bodies", "<html><head></head><body>a</body><body>b</body></html>"},
	{"two-body-ends", "<html><head></head><body>a</body>x</body></html>"},
	{"self-closing-body", "<html><head></head><body/></html>"},
	{"uppercase", "<HTML><HEAD><TITLE>T</TITLE></HEAD><BODY CLASS='M'>x</BODY></HTML>"},
	{"spaced-end-tag", "<html><head></head><body>x</ body ></html>"},
	{"body-attrs", `<html><head></head><body onmousemove="track();" onkeypress='k()' id=main data-x disabled>x</body></html>`},
	{"body-attr-gt", `<html><head></head><body title="a>b" onclick="if(a<b){}">x</body></html>`},
	{"comment-fake-tags", "<html><head><!-- <body>not real</body> --></head><body>x</body></html>"},
	{"unterminated-comment", "<html><head><!-- never closed <body>y</body>"},
	{"script-fake-body", `<html><head><script>var s = "</body><body>";</script></head><body>x</body></html>`},
	{"script-unterminated", `<html><head></head><body>a<script>var x = "<b>";`},
	{"script-close-no-gt", `<html><head></head><body>a<script>x</script`},
	{"script-uppercase-close", "<html><head><SCRIPT>x</SCRIPT></head><body>y</body></html>"},
	{"style-textarea-title", "<html><head><title>a<b</title><style>p{}</style></head><body><textarea></body></textarea>z</body></html>"},
	{"decl-doctype", "<!DOCTYPE html>\n<html><head></head><body>x</body></html>"},
	{"decl-unterminated", "<html><head></head><body>x<!unfinished"},
	{"processing-instruction", "<?xml version=\"1.0\"?><html><head></head><body>x</body></html>"},
	{"open-tag-at-eof", `<html><head></head><body>x<a href="unclosed`},
	{"open-quote-hides-body", `<html><head></head><a title="<body>x</body>`},
	{"lone-lt", "<html><head></head><body>a < b</body></html>"},
	{"lt-at-eof", "<html><head></head><body>x</body></html><"},
	{"nested-unterminated-script", "<html><head></head><body><script>a<script>b"},
	{"head-inside-comment-only", "<!-- <head></head> --><p>no real head</p>"},
	{"attr-empty-values", `<html><head></head><body onmousemove="" foo="">x</body></html>`},
	{"weird-end-tags", "<html><head></head><body>x</></body ext></html>"},
	{"form-feed-spaces", "<html><head></head><body\fclass=x>y</body></html>"},
}

func diffInjections() []Injection {
	return []Injection{
		stdInjection(),
		{},
		{CSSHref: "/__bd/x.css"},
		{HandlerName: "__bd_f"},
		{HiddenHref: "/__bd/hidden/1.html"},
		{InlineScript: "document.write('x');\n"},
		{CSSHref: "/__bd/a.css", HandlerName: "__bd_f"},
		{ScriptSrc: "/__bd/index_1.js", HiddenHref: "/__bd/hidden/2.html", HiddenImgSrc: "/__bd/transp_1x1.gif"},
	}
}

// streamChunked runs doc through a StreamRewriter in chunks of at most size
// bytes and returns the output and result.
func streamChunked(t testing.TB, doc []byte, p *Prepared, size int) ([]byte, StreamResult) {
	var out bytes.Buffer
	r := NewStreamRewriter(&out, p)
	for off := 0; off < len(doc); off += size {
		end := off + size
		if end > len(doc) {
			end = len(doc)
		}
		if _, err := r.Write(doc[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := r.Result()
	r.Release()
	return out.Bytes(), res
}

// TestStreamMatchesBufferedRewrite is the differential guarantee: for every
// corpus document, injection shape and chunking, the streaming rewriter's
// output is byte-identical to the buffered reference path.
func TestStreamMatchesBufferedRewrite(t *testing.T) {
	chunkSizes := []int{1, 2, 3, 7, 16, 64, 1 << 20}
	for _, tc := range diffCorpus {
		for ij, inj := range diffInjections() {
			want := Rewrite([]byte(tc.doc), inj)
			prep := PrepareInjection(inj)
			for _, size := range chunkSizes {
				got, res := streamChunked(t, []byte(tc.doc), prep, size)
				if !bytes.Equal(got, want.HTML) {
					t.Errorf("%s/inj%d/chunk%d: output diverged\n  buffered: %q\n  streamed: %q",
						tc.name, ij, size, want.HTML, got)
					break
				}
				if res.AddedBytes != want.AddedBytes {
					t.Errorf("%s/inj%d/chunk%d: AddedBytes = %d, buffered %d", tc.name, ij, size, res.AddedBytes, want.AddedBytes)
				}
				if res.InjectedCSS != want.InjectedCSS || res.InjectedScript != want.InjectedScript ||
					res.InjectedHandlers != want.InjectedHandlers || res.InjectedInline != want.InjectedInline ||
					res.InjectedHidden != want.InjectedHidden {
					t.Errorf("%s/inj%d/chunk%d: flags = %+v, buffered %+v", tc.name, ij, size, res, want)
				}
			}
			// The whole-document fast path must agree too.
			fast := prep.Rewrite([]byte(tc.doc))
			if !bytes.Equal(fast.HTML, want.HTML) {
				t.Errorf("%s/inj%d: Prepared.Rewrite diverged from buffered", tc.name, ij)
			}
		}
	}
}

// streamChunkedVec is streamChunked with vectored (gathered-write) output.
func streamChunkedVec(t testing.TB, doc []byte, p *Prepared, size int) ([]byte, StreamResult) {
	var out bytes.Buffer
	r := NewStreamRewriter(&out, p)
	r.SetVectored(true)
	for off := 0; off < len(doc); off += size {
		end := off + size
		if end > len(doc) {
			end = len(doc)
		}
		if _, err := r.Write(doc[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := r.Result()
	r.Release()
	return out.Bytes(), res
}

// TestStreamVectoredMatchesBuffered is the vectored differential guarantee:
// gathered-write output must be byte-identical to the buffered reference on
// every corpus document, injection shape and chunking — including the
// chunkings that force carry-buffer rebasing, which is exactly where a
// mis-ordered flush would emit overwritten spans.
func TestStreamVectoredMatchesBuffered(t *testing.T) {
	chunkSizes := []int{1, 2, 3, 7, 16, 64, 1 << 20}
	for _, tc := range diffCorpus {
		for ij, inj := range diffInjections() {
			want := Rewrite([]byte(tc.doc), inj)
			prep := PrepareInjection(inj)
			for _, size := range chunkSizes {
				got, res := streamChunkedVec(t, []byte(tc.doc), prep, size)
				if !bytes.Equal(got, want.HTML) {
					t.Errorf("%s/inj%d/chunk%d: vectored output diverged\n  buffered: %q\n  vectored: %q",
						tc.name, ij, size, want.HTML, got)
					break
				}
				if res.AddedBytes != want.AddedBytes {
					t.Errorf("%s/inj%d/chunk%d: AddedBytes = %d, buffered %d", tc.name, ij, size, res.AddedBytes, want.AddedBytes)
				}
			}
			prep.Release()
		}
	}
}

// TestStreamVectoredOverTCP proves the writev path over a real TCP socket
// (net.Buffers only takes the gathered-write syscall on a net.Conn): the
// bytes arriving at the peer must equal the buffered rewrite.
func TestStreamVectoredOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	doc := []byte(samplePage)
	want := Rewrite(doc, stdInjection())

	type recv struct {
		data []byte
		err  error
	}
	got := make(chan recv, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- recv{nil, err}
			return
		}
		defer conn.Close()
		data, err := io.ReadAll(conn)
		got <- recv{data, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	prep := PrepareInjection(stdInjection())
	r := NewStreamRewriter(conn, prep)
	r.SetVectored(true)
	for off := 0; off < len(doc); off += 512 {
		end := off + 512
		if end > len(doc) {
			end = len(doc)
		}
		if _, err := r.Write(doc[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r.Release()
	prep.Release()
	conn.Close()

	rx := <-got
	if rx.err != nil {
		t.Fatalf("peer read: %v", rx.err)
	}
	if !bytes.Equal(rx.data, want.HTML) {
		t.Fatalf("bytes over TCP differ from buffered rewrite:\n  want %d bytes\n  got  %d bytes", len(want.HTML), len(rx.data))
	}
}

// TestStreamEmitsHeadFragmentEarly verifies the time-to-first-byte property:
// once the bytes through <head> have been written, the head fragment is
// already on the wire even though the rest of the document never arrives.
func TestStreamEmitsHeadFragmentEarly(t *testing.T) {
	var out bytes.Buffer
	r := NewStreamRewriter(&out, PrepareInjection(stdInjection()))
	defer r.Release()
	if _, err := r.Write([]byte("<html><head><meta charset=\"utf-8\">")); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "/__bd/2031464296.css") {
		t.Fatalf("head fragment not emitted before document end: %q", got)
	}
	if strings.Contains(got, "<meta") {
		// The meta tag is complete, so it should have streamed through too.
		t.Logf("meta streamed as expected")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamHoldLimit verifies bounded memory: a head-less document larger
// than the hold limit is forwarded verbatim instead of buffered for the
// fallback pass.
func TestStreamHoldLimit(t *testing.T) {
	doc := []byte("<p>" + strings.Repeat("x", 4096) + "</p>")
	var out bytes.Buffer
	r := NewStreamRewriter(&out, PrepareInjection(stdInjection()))
	defer r.Release()
	r.SetHoldLimit(1024)
	for off := 0; off < len(doc); off += 256 {
		end := off + 256
		if end > len(doc) {
			end = len(doc)
		}
		if _, err := r.Write(doc[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res := r.Result()
	if !res.Truncated {
		t.Fatal("expected Truncated result")
	}
	if !bytes.Equal(out.Bytes(), doc) {
		t.Fatal("truncated document was not forwarded verbatim")
	}
	if res.InjectedCSS || res.InjectedHidden {
		t.Fatalf("truncated stream claims injections: %+v", res)
	}
}

// TestStreamFallbackReported verifies UsedFallback is set for anchor orders
// the single pass cannot stream, and not set for the common shape.
func TestStreamFallbackReported(t *testing.T) {
	prep := PrepareInjection(stdInjection())

	var out bytes.Buffer
	res, err := RewriteStream([]byte(samplePage), &out, prep)
	if err != nil || res.UsedFallback {
		t.Fatalf("well-formed page took the fallback path: %+v err=%v", res, err)
	}

	out.Reset()
	res, err = RewriteStream([]byte("<html><body>no head</body></html>"), &out, prep)
	if err != nil || !res.UsedFallback {
		t.Fatalf("head-less page did not report fallback: %+v err=%v", res, err)
	}
}

// TestStreamWriteAfterClose ensures the rewriter refuses input once closed.
func TestStreamWriteAfterClose(t *testing.T) {
	var out bytes.Buffer
	r := NewStreamRewriter(&out, PrepareInjection(stdInjection()))
	defer r.Release()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write([]byte("late")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}

// FuzzStreamVsBuffered fuzzes the differential property over arbitrary
// documents: chunked streaming output must equal the buffered reference.
func FuzzStreamVsBuffered(f *testing.F) {
	for _, tc := range diffCorpus {
		f.Add([]byte(tc.doc), 7)
	}
	f.Add([]byte("<script>"), 1)
	f.Add([]byte("<head><head><body><body></body></body>"), 3)
	injections := diffInjections()
	f.Fuzz(func(t *testing.T, doc []byte, chunk int) {
		if len(doc) > 1<<16 {
			t.Skip()
		}
		if chunk <= 0 {
			chunk = 1
		}
		inj := injections[(chunk+len(doc))%len(injections)]
		want := Rewrite(doc, inj)
		got, res := streamChunked(t, doc, PrepareInjection(inj), chunk)
		if !bytes.Equal(got, want.HTML) {
			t.Fatalf("diverged for %q chunk=%d:\n  buffered: %q\n  streamed: %q", doc, chunk, want.HTML, got)
		}
		if res.AddedBytes != want.AddedBytes {
			t.Fatalf("AddedBytes %d != %d for %q", res.AddedBytes, want.AddedBytes, doc)
		}
		// The vectored path must agree bit for bit as well.
		gotVec, resVec := streamChunkedVec(t, doc, PrepareInjection(inj), chunk)
		if !bytes.Equal(gotVec, want.HTML) {
			t.Fatalf("vectored diverged for %q chunk=%d:\n  buffered: %q\n  vectored: %q", doc, chunk, want.HTML, gotVec)
		}
		if resVec.AddedBytes != want.AddedBytes {
			t.Fatalf("vectored AddedBytes %d != %d for %q", resVec.AddedBytes, want.AddedBytes, doc)
		}
	})
}
