package htmlmod

import (
	"fmt"
	"strings"
)

// Injection describes the content the rewriter adds to one HTML page. All
// URL fields are request paths or absolute URLs; empty fields disable the
// corresponding injection.
type Injection struct {
	// CSSHref is the uniquely named empty stylesheet (browser test).
	CSSHref string
	// ScriptSrc is the external event-handler script (human activity test).
	ScriptSrc string
	// InlineScript is the inline user-agent reporter body (without tags).
	InlineScript string
	// HandlerName is the JavaScript function invoked by the injected
	// onmousemove/onkeypress attributes; it must match the generated script.
	HandlerName string
	// HiddenHref is the invisible trap link target (browser test).
	HiddenHref string
	// HiddenImgSrc is the 1x1 transparent image anchoring the trap link.
	HiddenImgSrc string
}

// RewriteResult reports what the rewriter managed to inject.
type RewriteResult struct {
	// HTML is the rewritten document.
	HTML []byte
	// InjectedCSS, InjectedScript, InjectedHandlers, InjectedInline and
	// InjectedHidden report which injections were applied.
	InjectedCSS      bool
	InjectedScript   bool
	InjectedHandlers bool
	InjectedInline   bool
	InjectedHidden   bool
	// AddedBytes is the size increase of the document.
	AddedBytes int
}

// Rewrite injects the instrumentation into the document. It never fails:
// documents without a <head> get head-level injections right after <body>
// (or prepended), documents without a <body> get body-level injections
// appended, and non-HTML input is returned with only appended content when
// nothing can be located safely.
func Rewrite(doc []byte, inj Injection) RewriteResult {
	tokens := Tokenize(doc)

	var headStart *Token // the <head> start tag
	var bodyStart *Token // the <body> start tag
	var bodyEnd *Token   // the </body> end tag
	var htmlStart *Token // the <html> start tag
	for idx := range tokens {
		t := &tokens[idx]
		switch {
		case t.Type == StartTagToken && t.Name == "head" && headStart == nil:
			headStart = t
		case t.Type == StartTagToken && t.Name == "body" && bodyStart == nil:
			bodyStart = t
		case t.Type == EndTagToken && t.Name == "body":
			bodyEnd = t // keep the last one
		case t.Type == StartTagToken && t.Name == "html" && htmlStart == nil:
			htmlStart = t
		}
	}

	headInsert := buildHeadInsert(inj)
	bodyTopInsert := buildBodyTopInsert(inj)
	bodyBottomInsert := buildBodyBottomInsert(inj)

	// Decide insertion offsets in the original document.
	var inserts []insertion

	res := RewriteResult{}

	if headInsert != "" {
		switch {
		case headStart != nil:
			inserts = append(inserts, insertion{headStart.End, headInsert})
		case bodyStart != nil:
			inserts = append(inserts, insertion{bodyStart.End, headInsert})
		case htmlStart != nil:
			inserts = append(inserts, insertion{htmlStart.End, headInsert})
		default:
			inserts = append(inserts, insertion{0, headInsert})
		}
		res.InjectedCSS = inj.CSSHref != ""
		res.InjectedScript = inj.ScriptSrc != ""
	}

	if bodyTopInsert != "" {
		switch {
		case bodyStart != nil:
			inserts = append(inserts, insertion{bodyStart.End, bodyTopInsert})
		case htmlStart != nil:
			inserts = append(inserts, insertion{htmlStart.End, bodyTopInsert})
		default:
			inserts = append(inserts, insertion{len(doc), bodyTopInsert})
		}
		res.InjectedInline = inj.InlineScript != ""
	}

	if bodyBottomInsert != "" {
		switch {
		case bodyEnd != nil:
			inserts = append(inserts, insertion{bodyEnd.Start, bodyBottomInsert})
		default:
			inserts = append(inserts, insertion{len(doc), bodyBottomInsert})
		}
		res.InjectedHidden = inj.HiddenHref != ""
	}

	// Event-handler attributes on the <body> tag itself.
	var bodyTagReplacement string
	if inj.HandlerName != "" && bodyStart != nil {
		bodyTagReplacement = rewriteBodyTag(doc, *bodyStart, inj.HandlerName)
		if bodyTagReplacement != "" {
			res.InjectedHandlers = true
		}
	}

	out := applyEdits(doc, bodyStart, bodyTagReplacement, inserts)
	res.HTML = out
	res.AddedBytes = len(out) - len(doc)
	return res
}

// buildHeadInsert renders the stylesheet link and external script tags.
func buildHeadInsert(inj Injection) string {
	var b strings.Builder
	if inj.CSSHref != "" {
		fmt.Fprintf(&b, "\n<link rel=\"stylesheet\" type=\"text/css\" href=\"%s\">", htmlEscape(inj.CSSHref))
	}
	if inj.ScriptSrc != "" {
		fmt.Fprintf(&b, "\n<script language=\"javascript\" type=\"text/javascript\" src=\"%s\"></script>", htmlEscape(inj.ScriptSrc))
	}
	if b.Len() > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// buildBodyTopInsert renders the inline user-agent reporter script.
func buildBodyTopInsert(inj Injection) string {
	if inj.InlineScript == "" {
		return ""
	}
	return "\n<script type=\"text/javascript\">\n" + inj.InlineScript + "</script>\n"
}

// buildBodyBottomInsert renders the hidden trap link.
func buildBodyBottomInsert(inj Injection) string {
	if inj.HiddenHref == "" {
		return ""
	}
	img := inj.HiddenImgSrc
	if img == "" {
		img = inj.HiddenHref
	}
	return fmt.Sprintf("\n<a href=\"%s\"><img src=\"%s\" width=\"1\" height=\"1\" border=\"0\" alt=\"\"></a>\n",
		htmlEscape(inj.HiddenHref), htmlEscape(img))
}

// rewriteBodyTag returns the replacement text for the original <body ...>
// tag with onmousemove/onkeypress handlers added. Handlers already present
// on the page are preserved by chaining ours in front. It returns "" when
// the tag cannot be rebuilt safely.
func rewriteBodyTag(doc []byte, body Token, handler string) string {
	call := fmt.Sprintf("return %s();", handler)
	var b strings.Builder
	b.WriteString("<body")
	seenMouse, seenKey := false, false
	for _, a := range body.Attrs {
		val := a.Value
		switch a.Name {
		case "onmousemove":
			val = call + " " + val
			seenMouse = true
		case "onkeypress":
			val = call + " " + val
			seenKey = true
		}
		if val == "" && a.Value == "" {
			fmt.Fprintf(&b, " %s", a.Name)
			continue
		}
		fmt.Fprintf(&b, " %s=\"%s\"", a.Name, htmlEscape(val))
	}
	if !seenMouse {
		fmt.Fprintf(&b, " onmousemove=\"%s\"", htmlEscape(call))
	}
	if !seenKey {
		fmt.Fprintf(&b, " onkeypress=\"%s\"", htmlEscape(call))
	}
	if body.SelfClosing {
		b.WriteString("/>")
	} else {
		b.WriteString(">")
	}
	return b.String()
}

// insertion is one positional text insertion into the original document.
type insertion struct {
	at   int
	text string
}

// applyEdits rebuilds the document applying the body-tag replacement and the
// positional insertions in one pass.
func applyEdits(doc []byte, bodyStart *Token, bodyReplacement string, inserts []insertion) []byte {
	// Sort insertions by offset (stable for equal offsets: insertion order).
	for i := 1; i < len(inserts); i++ {
		for j := i; j > 0 && inserts[j].at < inserts[j-1].at; j-- {
			inserts[j], inserts[j-1] = inserts[j-1], inserts[j]
		}
	}
	var b strings.Builder
	b.Grow(len(doc) + 1024)
	pos := 0
	nextInsert := 0
	emitUpTo := func(end int) {
		for nextInsert < len(inserts) && inserts[nextInsert].at <= end {
			at := inserts[nextInsert].at
			if at > pos {
				b.Write(doc[pos:at])
				pos = at
			}
			b.WriteString(inserts[nextInsert].text)
			nextInsert++
		}
		if end > pos {
			b.Write(doc[pos:end])
			pos = end
		}
	}
	if bodyReplacement != "" && bodyStart != nil {
		emitUpTo(bodyStart.Start)
		b.WriteString(bodyReplacement)
		pos = bodyStart.End
	}
	emitUpTo(len(doc))
	return []byte(b.String())
}

// htmlEscape escapes the characters that would break out of a double-quoted
// attribute value or element context.
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "\"", "&quot;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// PageSummary is the structure of a page as seen by a client: the navigation
// links, embedded objects and event handlers. Traffic agents use it to decide
// what a browser or a robot would fetch next.
type PageSummary struct {
	// Links are anchor targets considered visible to a human user.
	Links []string
	// HiddenLinks are anchor targets wrapped around 1x1/transparent images
	// or styled invisible, which humans cannot see but naive crawlers follow.
	HiddenLinks []string
	// Images are <img> sources.
	Images []string
	// Stylesheets are <link rel=stylesheet> hrefs.
	Stylesheets []string
	// Scripts are external <script src> values.
	Scripts []string
	// InlineScripts is the number of inline script blocks.
	InlineScripts int
	// BodyMouseHandler reports whether the <body> tag has an onmousemove
	// handler (i.e. the page is instrumented for human activity detection).
	BodyMouseHandler bool
}

// Extract summarises a page. The hidden-link heuristic mirrors the paper's
// construction: an anchor whose only content is an <img> with width and
// height of 1 (or a transparent beacon image) is treated as invisible.
func Extract(doc []byte) PageSummary {
	tokens := Tokenize(doc)
	var sum PageSummary

	for i := 0; i < len(tokens); i++ {
		t := tokens[i]
		if t.Type != StartTagToken {
			continue
		}
		switch t.Name {
		case "a", "area":
			href, ok := t.Get("href")
			if !ok || href == "" || strings.HasPrefix(href, "#") ||
				strings.HasPrefix(strings.ToLower(href), "javascript:") ||
				strings.HasPrefix(strings.ToLower(href), "mailto:") {
				continue
			}
			if isHiddenAnchor(tokens, i) {
				sum.HiddenLinks = append(sum.HiddenLinks, href)
			} else {
				sum.Links = append(sum.Links, href)
			}
		case "img":
			if src, ok := t.Get("src"); ok && src != "" {
				sum.Images = append(sum.Images, src)
			}
		case "link":
			rel, _ := t.Get("rel")
			if strings.Contains(strings.ToLower(rel), "stylesheet") {
				if href, ok := t.Get("href"); ok && href != "" {
					sum.Stylesheets = append(sum.Stylesheets, href)
				}
			}
		case "script":
			if src, ok := t.Get("src"); ok && src != "" {
				sum.Scripts = append(sum.Scripts, src)
			} else if !t.SelfClosing {
				sum.InlineScripts++
			}
		case "body":
			if _, ok := t.Get("onmousemove"); ok {
				sum.BodyMouseHandler = true
			}
		}
	}
	return sum
}

// isHiddenAnchor reports whether the anchor starting at tokens[i] wraps only
// a 1x1 or transparent image (and no visible text).
func isHiddenAnchor(tokens []Token, i int) bool {
	sawTinyImage := false
	for j := i + 1; j < len(tokens); j++ {
		t := tokens[j]
		switch t.Type {
		case EndTagToken:
			if t.Name == "a" || t.Name == "area" {
				return sawTinyImage
			}
		case StartTagToken:
			if t.Name == "img" {
				w, _ := t.Get("width")
				h, _ := t.Get("height")
				src, _ := t.Get("src")
				lsrc := strings.ToLower(src)
				if (w == "1" && h == "1") || strings.Contains(lsrc, "transp") || strings.Contains(lsrc, "1x1") {
					sawTinyImage = true
				} else {
					return false // a real image: the link is visible
				}
			} else if t.Name != "br" {
				return false
			}
		case TextToken:
			// Any visible text makes the link visible; we cannot see the
			// original bytes here, so treat non-empty ranges conservatively:
			// the caller's injected hidden link carries no text at all, and
			// whitespace-only runs are common in real markup. Ranges longer
			// than a few bytes are assumed to be visible text.
			if t.End-t.Start > 6 {
				return false
			}
		}
	}
	return false
}
