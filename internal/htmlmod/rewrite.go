package htmlmod

import (
	"strings"
	"sync"
)

// Injection describes the content the rewriter adds to one HTML page. All
// URL fields are request paths or absolute URLs; empty fields disable the
// corresponding injection.
type Injection struct {
	// CSSHref is the uniquely named empty stylesheet (browser test).
	CSSHref string
	// ScriptSrc is the external event-handler script (human activity test).
	ScriptSrc string
	// InlineScript is the inline user-agent reporter body (without tags).
	InlineScript string
	// HandlerName is the JavaScript function invoked by the injected
	// onmousemove/onkeypress attributes; it must match the generated script.
	HandlerName string
	// HiddenHref is the invisible trap link target (browser test).
	HiddenHref string
	// HiddenImgSrc is the 1x1 transparent image anchoring the trap link.
	HiddenImgSrc string
}

// RewriteResult reports what the rewriter managed to inject.
type RewriteResult struct {
	// HTML is the rewritten document.
	HTML []byte
	// InjectedCSS, InjectedScript, InjectedHandlers, InjectedInline and
	// InjectedHidden report which injections were applied.
	InjectedCSS      bool
	InjectedScript   bool
	InjectedHandlers bool
	InjectedInline   bool
	InjectedHidden   bool
	// AddedBytes is the size increase of the document.
	AddedBytes int
}

// InjectionBytes is Injection with byte-slice fields, for callers that
// compose URLs into reusable scratch buffers: Prepared.Compose over an
// InjectionBytes copies from the slices without ever materialising strings,
// so a per-connection Prepared is recomposed per page with zero allocations.
// Empty fields disable the corresponding injection, exactly like Injection.
type InjectionBytes struct {
	CSSHref      []byte
	ScriptSrc    []byte
	InlineScript []byte
	HandlerName  []byte
	HiddenHref   []byte
	HiddenImgSrc []byte
}

// Prepared is an Injection compiled into its literal insertion fragments.
// Callers serving the same logical injection shape (the proxy, the CDN
// simulator) prepare once per page view and reuse the result across the
// buffered and streaming rewriters.
//
// Ownership is explicit: instances returned by PrepareInjection come from a
// package pool and Release recycles them there; a caller-owned instance
// (new(Prepared), typically embedded in per-connection state and refilled
// via Compose) is untouched by Release, so shared code can Release
// unconditionally whichever flavour it was handed. SetReleaseHook redirects
// Release to a custom recycler (an engine-side pool wrapping the Prepared
// in larger per-page state). The zero value injects nothing.
type Prepared struct {
	headInsert  []byte // after <head> (stylesheet link + external script)
	bodyTop     []byte // after <body> (inline user-agent reporter)
	bodyBottom  []byte // before </body> (hidden trap link)
	handlerCall []byte // "return <fn>();" for the body event handlers; empty disables

	cssSet, scriptSet, inlineSet, hiddenSet bool

	pooled bool            // from preparedPool: Release returns it there
	hook   func(*Prepared) // overrides Release's destination when set
}

var preparedPool = sync.Pool{New: func() any { return new(Prepared) }}

// Release recycles p: to the release hook when one is set, to the package
// pool when p came from PrepareInjection, and not at all for caller-owned
// instances. The caller must not use p afterwards (hooked instances follow
// the hook owner's rules); fragments previously copied into rewritten
// documents stay valid (both rewrite paths copy, never alias).
func (p *Prepared) Release() {
	if p.hook != nil {
		p.hook(p)
		return
	}
	if p.pooled {
		preparedPool.Put(p)
	}
}

// SetReleaseHook redirects Release to fn, which takes over recycling (e.g.
// an engine pool that owns the Prepared as part of larger per-page state).
// Pass nil to restore the default behaviour.
func (p *Prepared) SetReleaseHook(fn func(*Prepared)) { p.hook = fn }

// PrepareInjection compiles an Injection into its insertion fragments. The
// returned Prepared comes from the package pool; call Release when the page
// view is finished to make per-page composition allocation-free.
func PrepareInjection(inj Injection) *Prepared {
	p := preparedPool.Get().(*Prepared)
	p.hook = nil
	p.pooled = true
	composeInto(p, inj.CSSHref, inj.ScriptSrc, inj.InlineScript, inj.HandlerName, inj.HiddenHref, inj.HiddenImgSrc)
	return p
}

// Compose refills p's insertion fragments from inj, reusing the fragment
// buffers in place: no allocation once they have grown to the working-set
// size. The per-connection serve path composes into one caller-owned
// Prepared per page view.
func (p *Prepared) Compose(inj InjectionBytes) {
	composeInto(p, inj.CSSHref, inj.ScriptSrc, inj.InlineScript, inj.HandlerName, inj.HiddenHref, inj.HiddenImgSrc)
}

// composeInto builds the insertion fragments from either string or byte
// fields; the byte sequences are identical for equal field contents.
func composeInto[T ~string | ~[]byte](p *Prepared, cssHref, scriptSrc, inlineScript, handlerName, hiddenHref, hiddenImgSrc T) {
	p.cssSet = len(cssHref) > 0
	p.scriptSet = len(scriptSrc) > 0
	p.inlineSet = len(inlineScript) > 0
	p.hiddenSet = len(hiddenHref) > 0

	// Head fragment: the stylesheet link and the external script tags.
	b := p.headInsert[:0]
	if p.cssSet || p.scriptSet {
		if p.cssSet {
			b = append(b, "\n<link rel=\"stylesheet\" type=\"text/css\" href=\""...)
			b = appendEscaped(b, cssHref)
			b = append(b, "\">"...)
		}
		if p.scriptSet {
			b = append(b, "\n<script language=\"javascript\" type=\"text/javascript\" src=\""...)
			b = appendEscaped(b, scriptSrc)
			b = append(b, "\"></script>"...)
		}
		b = append(b, '\n')
	}
	p.headInsert = b

	// Body-top fragment: the inline user-agent reporter script.
	b = p.bodyTop[:0]
	if p.inlineSet {
		b = append(b, "\n<script type=\"text/javascript\">\n"...)
		b = append(b, inlineScript...)
		b = append(b, "</script>\n"...)
	}
	p.bodyTop = b

	// Body-bottom fragment: the hidden trap link.
	b = p.bodyBottom[:0]
	if p.hiddenSet {
		img := hiddenImgSrc
		if len(img) == 0 {
			img = hiddenHref
		}
		b = append(b, "\n<a href=\""...)
		b = appendEscaped(b, hiddenHref)
		b = append(b, "\"><img src=\""...)
		b = appendEscaped(b, img)
		b = append(b, "\" width=\"1\" height=\"1\" border=\"0\" alt=\"\"></a>\n"...)
	}
	p.bodyBottom = b

	b = p.handlerCall[:0]
	if len(handlerName) > 0 {
		b = append(b, "return "...)
		b = append(b, handlerName...)
		b = append(b, "();"...)
	}
	p.handlerCall = b
}

// Rewrite injects the instrumentation into the document, buffering and
// rebuilding it in one pass. It never fails: documents without a <head> get
// head-level injections right after <body> (or after <html>, or prepended),
// documents without a <body> get body-level injections appended, and
// non-HTML input is returned with only appended content when nothing can be
// located safely.
//
// This is the reference (store-and-forward) path; the streaming rewriter in
// stream.go produces byte-identical output without materialising the
// document and is preferred on hot paths. Rewrite remains the fallback for
// documents whose anchors arrive in a pathological order.
func Rewrite(doc []byte, inj Injection) RewriteResult {
	p := PrepareInjection(inj)
	res := p.RewriteBuffered(doc)
	p.Release()
	return res
}

// RewriteBuffered is the tokenising store-and-forward rewrite path using
// prepared fragments. See Rewrite.
func (p *Prepared) RewriteBuffered(doc []byte) RewriteResult {
	tokens := Tokenize(doc)

	var headStart *Token // the first <head> start tag
	var bodyStart *Token // the first <body> start tag
	var bodyEnd *Token   // the first </body> end tag
	var htmlStart *Token // the first <html> start tag
	for idx := range tokens {
		t := &tokens[idx]
		switch {
		case t.Type == StartTagToken && t.Name == "head" && headStart == nil:
			headStart = t
		case t.Type == StartTagToken && t.Name == "body" && bodyStart == nil:
			bodyStart = t
		case t.Type == EndTagToken && t.Name == "body" && bodyEnd == nil:
			bodyEnd = t
		case t.Type == StartTagToken && t.Name == "html" && htmlStart == nil:
			htmlStart = t
		}
	}

	// Decide insertion offsets in the original document.
	var inserts [3]insertion
	n := 0
	res := RewriteResult{}

	if len(p.headInsert) > 0 {
		switch {
		case headStart != nil:
			inserts[n] = insertion{headStart.End, p.headInsert}
		case bodyStart != nil:
			inserts[n] = insertion{bodyStart.End, p.headInsert}
		case htmlStart != nil:
			inserts[n] = insertion{htmlStart.End, p.headInsert}
		default:
			inserts[n] = insertion{0, p.headInsert}
		}
		n++
		res.InjectedCSS = p.cssSet
		res.InjectedScript = p.scriptSet
	}

	if len(p.bodyTop) > 0 {
		switch {
		case bodyStart != nil:
			inserts[n] = insertion{bodyStart.End, p.bodyTop}
		default:
			inserts[n] = insertion{len(doc), p.bodyTop}
		}
		n++
		res.InjectedInline = p.inlineSet
	}

	if len(p.bodyBottom) > 0 {
		switch {
		case bodyEnd != nil:
			inserts[n] = insertion{bodyEnd.Start, p.bodyBottom}
		default:
			inserts[n] = insertion{len(doc), p.bodyBottom}
		}
		n++
		res.InjectedHidden = p.hiddenSet
	}

	// Event-handler attributes on the <body> tag itself.
	var bodyTagReplacement []byte
	if len(p.handlerCall) > 0 && bodyStart != nil {
		var attrs []rawAttr
		if raw, complete, ok := scanStartTagRaw(doc, bodyStart.Start, &attrs); complete && ok {
			bodyTagReplacement = appendBodyTag(nil, doc, attrs, raw.selfClosing, p.handlerCall)
			res.InjectedHandlers = true
		}
	}

	out := applyEdits(doc, bodyStart, bodyTagReplacement, inserts[:n])
	res.HTML = out
	res.AddedBytes = len(out) - len(doc)
	return res
}

// appendBodyTag rebuilds the original <body ...> tag with the
// onmousemove/onkeypress handler call added, preserving (and chaining in
// front of) handlers already present on the page. Attribute names are
// lowercased and values are requoted, matching the historical rewriter.
func appendBodyTag(dst []byte, doc []byte, attrs []rawAttr, selfClosing bool, call []byte) []byte {
	dst = append(dst, "<body"...)
	seenMouse, seenKey := false, false
	for _, a := range attrs {
		name := doc[a.nameStart:a.nameEnd]
		val := doc[a.valStart:a.valEnd]
		isMouse := foldEq(name, "onmousemove")
		isKey := foldEq(name, "onkeypress")
		if len(val) == 0 && !isMouse && !isKey {
			dst = append(dst, ' ')
			dst = appendLower(dst, name)
			continue
		}
		dst = append(dst, ' ')
		dst = appendLower(dst, name)
		dst = append(dst, '=', '"')
		if isMouse || isKey {
			dst = appendEscaped(dst, call)
			dst = append(dst, ' ')
			if isMouse {
				seenMouse = true
			} else {
				seenKey = true
			}
		}
		dst = appendEscaped(dst, val)
		dst = append(dst, '"')
	}
	if !seenMouse {
		dst = append(dst, " onmousemove=\""...)
		dst = appendEscaped(dst, call)
		dst = append(dst, '"')
	}
	if !seenKey {
		dst = append(dst, " onkeypress=\""...)
		dst = appendEscaped(dst, call)
		dst = append(dst, '"')
	}
	if selfClosing {
		dst = append(dst, '/', '>')
	} else {
		dst = append(dst, '>')
	}
	return dst
}

// insertion is one positional text insertion into the original document.
type insertion struct {
	at   int
	text []byte
}

// applyEdits rebuilds the document applying the body-tag replacement and the
// positional insertions in one pass.
func applyEdits(doc []byte, bodyStart *Token, bodyReplacement []byte, inserts []insertion) []byte {
	// Sort insertions by offset (stable for equal offsets: insertion order).
	for i := 1; i < len(inserts); i++ {
		for j := i; j > 0 && inserts[j].at < inserts[j-1].at; j-- {
			inserts[j], inserts[j-1] = inserts[j-1], inserts[j]
		}
	}
	extra := len(bodyReplacement) + 16
	for _, ins := range inserts {
		extra += len(ins.text)
	}
	out := make([]byte, 0, len(doc)+extra)
	pos := 0
	nextInsert := 0
	emitUpTo := func(end int) {
		for nextInsert < len(inserts) && inserts[nextInsert].at <= end {
			at := inserts[nextInsert].at
			if at > pos {
				out = append(out, doc[pos:at]...)
				pos = at
			}
			out = append(out, inserts[nextInsert].text...)
			nextInsert++
		}
		if end > pos {
			out = append(out, doc[pos:end]...)
			pos = end
		}
	}
	if len(bodyReplacement) > 0 && bodyStart != nil {
		emitUpTo(bodyStart.Start)
		out = append(out, bodyReplacement...)
		pos = bodyStart.End
	}
	emitUpTo(len(doc))
	return out
}

// appendEscaped appends s with the characters that would break out of a
// double-quoted attribute value or element context escaped.
func appendEscaped[T ~string | ~[]byte](dst []byte, s T) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// appendLower appends b ASCII-lowercased.
func appendLower(dst, b []byte) []byte {
	for _, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// PageSummary is the structure of a page as seen by a client: the navigation
// links, embedded objects and event handlers. Traffic agents use it to decide
// what a browser or a robot would fetch next.
type PageSummary struct {
	// Links are anchor targets considered visible to a human user.
	Links []string
	// HiddenLinks are anchor targets wrapped around 1x1/transparent images
	// or styled invisible, which humans cannot see but naive crawlers follow.
	HiddenLinks []string
	// Images are <img> sources.
	Images []string
	// Stylesheets are <link rel=stylesheet> hrefs.
	Stylesheets []string
	// Scripts are external <script src> values.
	Scripts []string
	// InlineScripts is the number of inline script blocks.
	InlineScripts int
	// BodyMouseHandler reports whether the <body> tag has an onmousemove
	// handler (i.e. the page is instrumented for human activity detection).
	BodyMouseHandler bool
}

// Extract summarises a page. The hidden-link heuristic mirrors the paper's
// construction: an anchor whose only content is an <img> with width and
// height of 1 (or a transparent beacon image) is treated as invisible.
func Extract(doc []byte) PageSummary {
	tokens := Tokenize(doc)
	var sum PageSummary

	for i := 0; i < len(tokens); i++ {
		t := tokens[i]
		if t.Type != StartTagToken {
			continue
		}
		switch t.Name {
		case "a", "area":
			href, ok := t.Get("href")
			if !ok || href == "" || strings.HasPrefix(href, "#") ||
				strings.HasPrefix(strings.ToLower(href), "javascript:") ||
				strings.HasPrefix(strings.ToLower(href), "mailto:") {
				continue
			}
			if isHiddenAnchor(tokens, i) {
				sum.HiddenLinks = append(sum.HiddenLinks, href)
			} else {
				sum.Links = append(sum.Links, href)
			}
		case "img":
			if src, ok := t.Get("src"); ok && src != "" {
				sum.Images = append(sum.Images, src)
			}
		case "link":
			rel, _ := t.Get("rel")
			if strings.Contains(strings.ToLower(rel), "stylesheet") {
				if href, ok := t.Get("href"); ok && href != "" {
					sum.Stylesheets = append(sum.Stylesheets, href)
				}
			}
		case "script":
			if src, ok := t.Get("src"); ok && src != "" {
				sum.Scripts = append(sum.Scripts, src)
			} else if !t.SelfClosing {
				sum.InlineScripts++
			}
		case "body":
			if _, ok := t.Get("onmousemove"); ok {
				sum.BodyMouseHandler = true
			}
		}
	}
	return sum
}

// isHiddenAnchor reports whether the anchor starting at tokens[i] wraps only
// a 1x1 or transparent image (and no visible text).
func isHiddenAnchor(tokens []Token, i int) bool {
	sawTinyImage := false
	for j := i + 1; j < len(tokens); j++ {
		t := tokens[j]
		switch t.Type {
		case EndTagToken:
			if t.Name == "a" || t.Name == "area" {
				return sawTinyImage
			}
		case StartTagToken:
			if t.Name == "img" {
				w, _ := t.Get("width")
				h, _ := t.Get("height")
				src, _ := t.Get("src")
				lsrc := strings.ToLower(src)
				if (w == "1" && h == "1") || strings.Contains(lsrc, "transp") || strings.Contains(lsrc, "1x1") {
					sawTinyImage = true
				} else {
					return false // a real image: the link is visible
				}
			} else if t.Name != "br" {
				return false
			}
		case TextToken:
			// Any visible text makes the link visible; we cannot see the
			// original bytes here, so treat non-empty ranges conservatively:
			// the caller's injected hidden link carries no text at all, and
			// whitespace-only runs are common in real markup. Ranges longer
			// than a few bytes are assumed to be visible text.
			if t.End-t.Start > 6 {
				return false
			}
		}
	}
	return false
}
