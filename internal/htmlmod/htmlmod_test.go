package htmlmod

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html>
<head>
<title>Sample</title>
<link rel="stylesheet" type="text/css" href="/static/site0.css">
<script type="text/javascript" src="/static/site0.js"></script>
</head>
<body class="main">
<h1>Hello</h1>
<ul>
<li><a href="/page1.html">One</a></li>
<li><a href="/page2.html">Two</a></li>
</ul>
<img src="/img/photo0_0.jpg" alt="photo">
<a href="/cgi-bin/app0.cgi?page=0">Search</a>
<!-- a comment with <a href="/not-a-link.html"> inside -->
<script>var s = "<a href='/also-not-a-link.html'>";</script>
</body>
</html>
`

func stdInjection() Injection {
	return Injection{
		CSSHref:      "/__bd/2031464296.css",
		ScriptSrc:    "/__bd/index_0729395150.js",
		InlineScript: "document.write('x');\n",
		HandlerName:  "__bd_f",
		HiddenHref:   "/__bd/hidden/5551112222.html",
		HiddenImgSrc: "/__bd/transp_1x1.gif",
	}
}

// TestComposeMatchesPrepareInjection pins the byte-field compose path to the
// string one: a caller-owned Prepared refilled via Compose must rewrite
// identically to a pool Prepared from PrepareInjection.
func TestComposeMatchesPrepareInjection(t *testing.T) {
	inj := stdInjection()
	want := Rewrite([]byte(samplePage), inj)

	var own Prepared
	own.Compose(InjectionBytes{
		CSSHref:      []byte(inj.CSSHref),
		ScriptSrc:    []byte(inj.ScriptSrc),
		InlineScript: []byte(inj.InlineScript),
		HandlerName:  []byte(inj.HandlerName),
		HiddenHref:   []byte(inj.HiddenHref),
		HiddenImgSrc: []byte(inj.HiddenImgSrc),
	})
	got := own.Rewrite([]byte(samplePage))
	if string(got.HTML) != string(want.HTML) {
		t.Fatal("Compose output diverged from PrepareInjection")
	}
	// Recompose with different content reuses the same buffers.
	own.Compose(InjectionBytes{CSSHref: []byte("/__bd/other.css")})
	got2 := own.Rewrite([]byte(samplePage))
	if string(got2.HTML) == string(want.HTML) {
		t.Fatal("recompose did not take effect")
	}
	// Releasing a caller-owned Prepared is a no-op: it must stay usable and
	// never enter the package pool.
	own.Release()
	got3 := own.Rewrite([]byte(samplePage))
	if string(got3.HTML) != string(got2.HTML) {
		t.Fatal("caller-owned Prepared changed after Release")
	}
}

// TestPreparedReleaseHook verifies the hook takes over recycling.
func TestPreparedReleaseHook(t *testing.T) {
	p := PrepareInjection(stdInjection())
	var hooked *Prepared
	p.SetReleaseHook(func(q *Prepared) { hooked = q })
	p.Release()
	if hooked != p {
		t.Fatal("release hook not invoked")
	}
	p.SetReleaseHook(nil)
	p.Release() // back to the package pool
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize([]byte(samplePage))
	var names []string
	for _, tk := range toks {
		if tk.Type == StartTagToken {
			names = append(names, tk.Name)
		}
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"html", "head", "title", "link", "script", "body", "h1", "ul", "li", "a", "img"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing start tag %q in %q", want, joined)
		}
	}
}

func TestTokenizeOffsetsCoverDocument(t *testing.T) {
	toks := Tokenize([]byte(samplePage))
	prevEnd := 0
	for _, tk := range toks {
		if tk.Start < prevEnd {
			t.Fatalf("token %v overlaps previous end %d", tk, prevEnd)
		}
		if tk.End < tk.Start {
			t.Fatalf("token with negative extent: %+v", tk)
		}
		prevEnd = tk.End
	}
	if prevEnd != len(samplePage) {
		t.Fatalf("tokens end at %d, document length %d", prevEnd, len(samplePage))
	}
}

func TestTokenizeAttributes(t *testing.T) {
	doc := `<a href="/x.html" class='big' disabled data-v=37>link</a>`
	toks := Tokenize([]byte(doc))
	if toks[0].Type != StartTagToken || toks[0].Name != "a" {
		t.Fatalf("first token %+v", toks[0])
	}
	if v, ok := toks[0].Get("href"); !ok || v != "/x.html" {
		t.Fatalf("href = %q, %v", v, ok)
	}
	if v, ok := toks[0].Get("class"); !ok || v != "big" {
		t.Fatalf("class = %q", v)
	}
	if _, ok := toks[0].Get("disabled"); !ok {
		t.Fatal("valueless attribute missing")
	}
	if v, _ := toks[0].Get("data-v"); v != "37" {
		t.Fatalf("unquoted attribute = %q", v)
	}
	if _, ok := toks[0].Get("absent"); ok {
		t.Fatal("absent attribute reported present")
	}
}

func TestTokenizeSelfClosingAndComments(t *testing.T) {
	doc := `<br/><!-- hidden <b>not a tag</b> --><img src="/a.png"/>`
	toks := Tokenize([]byte(doc))
	if !toks[0].SelfClosing || toks[0].Name != "br" {
		t.Fatalf("br token %+v", toks[0])
	}
	if toks[1].Type != CommentToken {
		t.Fatalf("comment token %+v", toks[1])
	}
	if toks[2].Name != "img" || !toks[2].SelfClosing {
		t.Fatalf("img token %+v", toks[2])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	doc := `<script>if (a < b) { document.write("<a href='/fake.html'>x</a>"); }</script><a href="/real.html">r</a>`
	sum := Extract([]byte(doc))
	if len(sum.Links) != 1 || sum.Links[0] != "/real.html" {
		t.Fatalf("links = %v; script content leaked into extraction", sum.Links)
	}
	if sum.InlineScripts != 1 {
		t.Fatalf("InlineScripts = %d", sum.InlineScripts)
	}
}

func TestTokenizeMalformedNeverPanics(t *testing.T) {
	cases := []string{
		"", "<", "<>", "<a", "<a href=", `<a href="unterminated`, "<!-- unterminated",
		"<<<>>>", "</>", "<a href='x'", "plain text only", "<ScRiPt>var x = 1;",
	}
	for _, c := range cases {
		_ = Tokenize([]byte(c))
		_ = Extract([]byte(c))
		_ = Rewrite([]byte(c), stdInjection())
	}
}

func TestRewriteInjectsEverything(t *testing.T) {
	res := Rewrite([]byte(samplePage), stdInjection())
	out := string(res.HTML)
	if !res.InjectedCSS || !strings.Contains(out, `href="/__bd/2031464296.css"`) {
		t.Fatal("CSS beacon not injected")
	}
	if !res.InjectedScript || !strings.Contains(out, `src="/__bd/index_0729395150.js"`) {
		t.Fatal("external script not injected")
	}
	if !res.InjectedHandlers || !strings.Contains(out, `onmousemove="return __bd_f();"`) {
		t.Fatal("mouse handler not injected")
	}
	if !strings.Contains(out, `onkeypress="return __bd_f();"`) {
		t.Fatal("key handler not injected")
	}
	if !res.InjectedInline || !strings.Contains(out, "document.write('x');") {
		t.Fatal("inline script not injected")
	}
	if !res.InjectedHidden || !strings.Contains(out, `href="/__bd/hidden/5551112222.html"`) {
		t.Fatal("hidden link not injected")
	}
	if res.AddedBytes != len(res.HTML)-len(samplePage) {
		t.Fatal("AddedBytes inconsistent")
	}
	// The original body class attribute must be preserved.
	if !strings.Contains(out, `class="main"`) {
		t.Fatal("original body attributes lost")
	}
	// Original content still present and before/after structure kept.
	if !strings.Contains(out, "<h1>Hello</h1>") || !strings.Contains(out, "</html>") {
		t.Fatal("original content damaged")
	}
	// Injections in the head section must appear before </head>.
	headEnd := strings.Index(out, "</head>")
	if cssAt := strings.Index(out, "/__bd/2031464296.css"); cssAt > headEnd {
		t.Fatal("CSS beacon injected outside head")
	}
	// The hidden link must appear before </body>.
	bodyEnd := strings.LastIndex(out, "</body>")
	if hidAt := strings.Index(out, "/__bd/hidden/"); hidAt > bodyEnd {
		t.Fatal("hidden link injected after </body>")
	}
}

func TestRewritePreservesExistingHandlers(t *testing.T) {
	doc := `<html><head></head><body onmousemove="trackme();" id="b"><p>x</p></body></html>`
	res := Rewrite([]byte(doc), stdInjection())
	out := string(res.HTML)
	if !strings.Contains(out, "return __bd_f(); trackme();") {
		t.Fatalf("existing handler not chained: %s", out)
	}
	if strings.Count(out, "onmousemove") != 1 {
		t.Fatalf("duplicate onmousemove attributes: %s", out)
	}
	if !strings.Contains(out, `id="b"`) {
		t.Fatal("other attributes lost")
	}
}

func TestRewriteNoHead(t *testing.T) {
	doc := `<html><body><p>content</p></body></html>`
	res := Rewrite([]byte(doc), stdInjection())
	out := string(res.HTML)
	if !strings.Contains(out, "/__bd/2031464296.css") {
		t.Fatal("CSS not injected for head-less page")
	}
	if !strings.Contains(out, "onmousemove") {
		t.Fatal("handler not injected for head-less page")
	}
}

func TestRewriteNoBody(t *testing.T) {
	doc := `<html><head><title>t</title></head><p>loose content</p></html>`
	res := Rewrite([]byte(doc), stdInjection())
	out := string(res.HTML)
	if !strings.Contains(out, "/__bd/2031464296.css") {
		t.Fatal("CSS not injected")
	}
	if !strings.Contains(out, "/__bd/hidden/") {
		t.Fatal("hidden link not appended for body-less page")
	}
	if res.InjectedHandlers {
		t.Fatal("cannot claim handler injection without a body tag")
	}
}

func TestRewriteFragmentOnly(t *testing.T) {
	doc := `<p>just a fragment</p>`
	res := Rewrite([]byte(doc), stdInjection())
	out := string(res.HTML)
	if !strings.Contains(out, "just a fragment") {
		t.Fatal("fragment content lost")
	}
	if !strings.Contains(out, "/__bd/2031464296.css") {
		t.Fatal("CSS not injected into fragment")
	}
}

func TestRewriteEmptyInjection(t *testing.T) {
	res := Rewrite([]byte(samplePage), Injection{})
	if string(res.HTML) != samplePage {
		t.Fatal("empty injection should leave the document unchanged")
	}
	if res.AddedBytes != 0 {
		t.Fatalf("AddedBytes = %d", res.AddedBytes)
	}
}

func TestRewritePartialInjection(t *testing.T) {
	res := Rewrite([]byte(samplePage), Injection{CSSHref: "/__bd/x.css"})
	out := string(res.HTML)
	if !strings.Contains(out, "/__bd/x.css") {
		t.Fatal("CSS missing")
	}
	if strings.Contains(out, "onmousemove=\"return") || strings.Contains(out, "/__bd/hidden/") {
		t.Fatal("unrequested injections present")
	}
}

func TestRewriteEscapesAttributeValues(t *testing.T) {
	inj := stdInjection()
	inj.CSSHref = `/__bd/weird"><script>alert(1)</script>.css`
	res := Rewrite([]byte(samplePage), inj)
	out := string(res.HTML)
	if strings.Contains(out, `weird"><script>alert(1)`) {
		t.Fatal("attribute value not escaped")
	}
	if !strings.Contains(out, "&quot;&gt;") {
		t.Fatal("expected escaped quotes in injected href")
	}
}

func TestRewriteIdempotentStructure(t *testing.T) {
	// Rewriting an already rewritten page must keep exactly one handler call
	// chain on the body tag per pass and never corrupt the document.
	res1 := Rewrite([]byte(samplePage), stdInjection())
	res2 := Rewrite(res1.HTML, stdInjection())
	out := string(res2.HTML)
	if strings.Count(out, "<body") != 1 {
		t.Fatal("body tag duplicated")
	}
	if strings.Count(out, "</html>") != strings.Count(samplePage, "</html>") {
		t.Fatal("html end tag count changed")
	}
}

func TestExtractSamplePage(t *testing.T) {
	sum := Extract([]byte(samplePage))
	if len(sum.Links) != 3 {
		t.Fatalf("links = %v", sum.Links)
	}
	if len(sum.Images) != 1 || sum.Images[0] != "/img/photo0_0.jpg" {
		t.Fatalf("images = %v", sum.Images)
	}
	if len(sum.Stylesheets) != 1 || sum.Stylesheets[0] != "/static/site0.css" {
		t.Fatalf("stylesheets = %v", sum.Stylesheets)
	}
	if len(sum.Scripts) != 1 || sum.Scripts[0] != "/static/site0.js" {
		t.Fatalf("scripts = %v", sum.Scripts)
	}
	if sum.BodyMouseHandler {
		t.Fatal("unrewritten page should not report a mouse handler")
	}
}

func TestExtractRewrittenPage(t *testing.T) {
	res := Rewrite([]byte(samplePage), stdInjection())
	sum := Extract(res.HTML)
	if !sum.BodyMouseHandler {
		t.Fatal("rewritten page should report the mouse handler")
	}
	foundCSS := false
	for _, s := range sum.Stylesheets {
		if s == "/__bd/2031464296.css" {
			foundCSS = true
		}
	}
	if !foundCSS {
		t.Fatalf("injected stylesheet not extracted: %v", sum.Stylesheets)
	}
	foundScript := false
	for _, s := range sum.Scripts {
		if s == "/__bd/index_0729395150.js" {
			foundScript = true
		}
	}
	if !foundScript {
		t.Fatalf("injected script not extracted: %v", sum.Scripts)
	}
	if len(sum.HiddenLinks) != 1 || sum.HiddenLinks[0] != "/__bd/hidden/5551112222.html" {
		t.Fatalf("hidden links = %v", sum.HiddenLinks)
	}
	// The hidden link must not be classified as a visible link.
	for _, l := range sum.Links {
		if strings.Contains(l, "/__bd/hidden/") {
			t.Fatal("hidden link leaked into visible links")
		}
	}
}

func TestExtractSkipsNonNavigableAnchors(t *testing.T) {
	doc := `<body>
<a href="#top">top</a>
<a href="javascript:void(0)">js</a>
<a href="mailto:user@example.com">mail</a>
<a href="/ok.html">ok</a>
<a href="">empty</a>
</body>`
	sum := Extract([]byte(doc))
	if len(sum.Links) != 1 || sum.Links[0] != "/ok.html" {
		t.Fatalf("links = %v", sum.Links)
	}
}

func TestExtractHiddenLinkVariants(t *testing.T) {
	doc := `<body>
<a href="/hidden1.html"><img src="/transp_1x1.gif"></a>
<a href="/hidden2.html"><img width="1" height="1" src="/dot.gif"></a>
<a href="/visible.html"><img src="/big-photo.jpg"></a>
<a href="/textual.html">Some visible anchor text</a>
</body>`
	sum := Extract([]byte(doc))
	if len(sum.HiddenLinks) != 2 {
		t.Fatalf("hidden links = %v", sum.HiddenLinks)
	}
	if len(sum.Links) != 2 {
		t.Fatalf("visible links = %v", sum.Links)
	}
}

func TestRewritePropertyNeverLosesContent(t *testing.T) {
	f := func(pre, post string) bool {
		pre = sanitize(pre)
		post = sanitize(post)
		doc := "<html><head><title>t</title></head><body><p>" + pre + "</p><p>" + post + "</p></body></html>"
		res := Rewrite([]byte(doc), stdInjection())
		out := string(res.HTML)
		return strings.Contains(out, pre) && strings.Contains(out, post) &&
			strings.Contains(out, "/__bd/2031464296.css") &&
			len(res.HTML) >= len(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// sanitize keeps property inputs inside element text so the property tests
// exercise arbitrary text content rather than arbitrary (possibly invalid)
// markup, which is covered by the malformed-input test.
func sanitize(s string) string {
	r := strings.NewReplacer("<", "", ">", "", "&", "", "\x00", "")
	out := r.Replace(s)
	if len(out) > 64 {
		out = out[:64]
	}
	return out
}

func TestRewriteLargePagePerformanceSanity(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><head></head><body>")
	for i := 0; i < 5000; i++ {
		b.WriteString(`<p>paragraph with <a href="/p.html">link</a> and <img src="/i.jpg"></p>`)
	}
	b.WriteString("</body></html>")
	res := Rewrite([]byte(b.String()), stdInjection())
	if !res.InjectedCSS || !res.InjectedHidden {
		t.Fatal("large page injection failed")
	}
	sum := Extract(res.HTML)
	if len(sum.Links) != 5000 {
		t.Fatalf("links = %d", len(sum.Links))
	}
}
