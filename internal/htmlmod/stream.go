package htmlmod

import (
	"bytes"
	"io"
	"net"
	"sync"
)

// StreamResult reports what the streaming rewriter injected. It is valid
// after Close.
type StreamResult struct {
	// InjectedCSS, InjectedScript, InjectedHandlers, InjectedInline and
	// InjectedHidden report which injections were applied.
	InjectedCSS      bool
	InjectedScript   bool
	InjectedHandlers bool
	InjectedInline   bool
	InjectedHidden   bool
	// AddedBytes is the size increase of the document.
	AddedBytes int
	// Truncated reports that the hold limit was exceeded: the remaining
	// input was forwarded verbatim and pending injections were skipped.
	Truncated bool
	// UsedFallback reports that the document's anchors arrived in an order
	// the single-pass injector cannot stream (no <head> before the first
	// <body>/<body-end>, or no anchors at all), so the whole document was
	// buffered and rewritten by the reference path.
	UsedFallback bool
}

// StreamRewriter injects instrumentation into an HTML document as its bytes
// flow through, emitting untouched spans verbatim to the underlying writer
// and splicing the prepared fragments in at the <head>, <body> and </body>
// anchors as they are recognised. Output is byte-identical to the buffered
// Rewrite on every input.
//
// The rewriter emits eagerly: once the first <head> tag has been seen, the
// head fragment and everything before it are already on the wire, so
// time-to-first-byte is proportional to the distance to the first anchor,
// not to the document length. Input is retained only where the decision is
// not yet safe:
//
//   - everything before the first <head> (a document with no head anchors
//     its fragments elsewhere, which only the whole-document pass can place);
//   - raw-text element content (script/style/textarea/title) until its end
//     tag, because an unterminated raw-text element is re-scanned as markup;
//   - an incomplete trailing token (a tag split across chunks).
//
// Documents whose anchors never resolve — no <head> before the first
// <body>, or none at all — fall back to the buffered reference rewriter
// over the retained bytes at Close, which is exactly the store-and-forward
// behaviour this type replaces.
//
// A StreamRewriter is not safe for concurrent use. Use NewStreamRewriter
// and Release to recycle instances through the package pool.
type StreamRewriter struct {
	w io.Writer
	p *Prepared

	// Pending anchors.
	needHead, needBody, needBodyEnd bool
	// holding retains all output while the head anchor is unresolved.
	holding bool

	mode    int
	carry   []byte // retained, unemitted input
	scanPos int    // scan progress within carry
	// Raw-text state: the element name (rawtext names are at most 8 bytes)
	// and the resume offset for the incremental close-tag search.
	rawName    [8]byte
	rawNameLen int
	rawProbe   int
	// minGrow defers re-scanning an ambiguous held region (an open tag or
	// comment split across chunks) until it has roughly doubled since the
	// last attempt. Each rescan restarts from the construct's first byte, so
	// without the backoff a multi-chunk 1 MiB attribute would cost O(n²)
	// byte scans; with it the total rescan work stays O(n).
	minGrow int

	attrs   []rawAttr
	scratch []byte

	// Vectored emission: instead of one Write per emitted span, spans are
	// gathered into vec and flushed through net.Buffers.WriteTo at the end
	// of each feed — one writev on a *net.TCPConn, splicing origin chunks
	// and prepared fragments into the socket with no intermediate copy.
	// Spans may alias the caller's chunk or the carry buffer, so every
	// return path out of feed flushes before those bytes can be reused.
	vecMode bool
	vec     net.Buffers
	// vecW is the WriteTo handover slot: net.Buffers.WriteTo has a pointer
	// receiver and consumes its slice, so flushing through a local would
	// heap-allocate the slice header on every flush. The field keeps the
	// flush allocation-free; its backing array is shared with vec, whose
	// elements WriteTo nils out as it consumes them.
	vecW net.Buffers

	holdLimit int
	inBytes   int64
	outBytes  int64
	res       StreamResult
	err       error
	closed    bool
}

const (
	modeScan        = iota // scanning for tokens and anchors
	modeRawText            // inside a raw-text element, seeking its end tag
	modeHoldAll            // fallback pending: retain everything until Close
	modePassthrough        // nothing left to inject: copy bytes verbatim
)

var streamPool = sync.Pool{New: func() any { return new(StreamRewriter) }}

// NewStreamRewriter returns a pooled rewriter that streams into w, injecting
// the prepared fragments. Call Close to finish the document and Release to
// return the rewriter to the pool.
func NewStreamRewriter(w io.Writer, p *Prepared) *StreamRewriter {
	r := streamPool.Get().(*StreamRewriter)
	r.Reset(w, p)
	return r
}

// Reset reinitialises the rewriter for a new document streaming into w.
// Per-connection callers keep one rewriter across keep-alive requests and
// Reset it per page instead of cycling the package pool.
func (r *StreamRewriter) Reset(w io.Writer, p *Prepared) {
	r.w, r.p = w, p
	r.needHead = len(p.headInsert) > 0
	r.needBody = len(p.bodyTop) > 0 || len(p.handlerCall) > 0
	r.needBodyEnd = len(p.bodyBottom) > 0
	r.holding = r.needHead
	r.mode = modeScan
	if !r.needHead && !r.needBody && !r.needBodyEnd {
		r.mode = modePassthrough
	}
	r.carry = r.carry[:0]
	r.scanPos, r.rawNameLen, r.rawProbe, r.minGrow = 0, 0, 0, 0
	r.vecMode = false
	r.vec = r.vec[:0]
	r.holdLimit = 0
	r.inBytes, r.outBytes = 0, 0
	r.res = StreamResult{}
	r.err = nil
	r.closed = false
}

// SetVectored switches output to gathered writes: emitted spans are queued
// and flushed in one net.Buffers.WriteTo per Write/Close call. On a TCP
// connection that is a single writev splicing origin bytes and injection
// fragments straight into the socket; on other writers net.Buffers falls
// back to sequential Writes, still without copying into an intermediate
// buffer. Output bytes are identical either way. Call it after
// NewStreamRewriter/Reset (Reset turns it off).
func (r *StreamRewriter) SetVectored(on bool) { r.vecMode = on }

// SetHoldLimit bounds the bytes the rewriter may retain while waiting for an
// anchor (the no-head fallback buffers the whole document otherwise). When
// the limit is exceeded the retained bytes are forwarded verbatim and the
// remaining injections are skipped (Result reports Truncated). Zero means
// unlimited.
func (r *StreamRewriter) SetHoldLimit(n int) { r.holdLimit = n }

// Release returns the rewriter to the package pool. The rewriter must not
// be used afterwards.
func (r *StreamRewriter) Release() {
	r.w, r.p = nil, nil
	for i := range r.vec {
		r.vec[i] = nil // do not pin emitted spans
	}
	r.vec = r.vec[:0]
	r.vecW = nil
	if cap(r.carry) > 1<<20 {
		r.carry = nil // do not pin pathological buffers in the pool
	}
	streamPool.Put(r)
}

// Result returns what was injected. It is complete only after Close.
func (r *StreamRewriter) Result() StreamResult { return r.res }

// Write feeds the next chunk of the original document.
func (r *StreamRewriter) Write(p []byte) (int, error) {
	if r.closed {
		return 0, io.ErrClosedPipe
	}
	r.feed(p, false)
	if r.err != nil {
		return 0, r.err
	}
	return len(p), nil
}

// Close finishes the document: unresolved constructs are re-scanned under
// end-of-input rules, fallback documents are rewritten whole, and pending
// body fragments are appended.
func (r *StreamRewriter) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.mode != modePassthrough {
		r.feed(nil, true)
	}
	r.res.AddedBytes = int(r.outBytes - r.inBytes)
	return r.err
}

func (r *StreamRewriter) feed(data []byte, atEOF bool) {
	if r.err != nil {
		return
	}
	r.inBytes += int64(len(data))
	if r.mode == modePassthrough {
		r.emit(data)
		r.flushVec()
		return
	}
	var buf []byte
	switch {
	case len(r.carry) == 0:
		buf = data
	case len(data) == 0:
		buf = r.carry
	default:
		r.carry = append(r.carry, data...)
		buf = r.carry
	}
	done := r.process(buf, atEOF)
	if r.mode == modePassthrough {
		r.flushVec()
		r.carry = r.carry[:0]
		r.scanPos, r.rawProbe = 0, 0
		return
	}
	// Retain the unemitted tail and rebase scan offsets onto it. Queued
	// vectored spans point into buf's emitted prefix, which the copy-down
	// below overwrites, so they must hit the wire first.
	r.flushVec()
	tail := buf[done:]
	if len(r.carry) == 0 {
		r.carry = append(r.carry[:0], tail...)
	} else if done > 0 {
		n := copy(r.carry, tail)
		r.carry = r.carry[:n]
	} else if len(data) > 0 || len(tail) != len(r.carry) {
		r.carry = r.carry[:len(tail)]
	}
	r.scanPos -= done
	r.rawProbe -= done
	if r.rawProbe < 0 {
		r.rawProbe = 0
	}
	if r.holdLimit > 0 && len(r.carry) > r.holdLimit {
		// Bounded memory beats completeness: forward the retained bytes
		// verbatim and stop injecting.
		r.res.Truncated = true
		r.holding = false
		r.needHead, r.needBody, r.needBodyEnd = false, false, false
		r.mode = modePassthrough
		r.emit(r.carry)
		r.flushVec() // before the next feed can append over carry
		r.carry = r.carry[:0]
	}
}

// process scans buf (the retained input plus the new chunk) and returns how
// many bytes from its front were emitted. While holding, nothing is emitted
// and the return value is 0.
func (r *StreamRewriter) process(buf []byte, atEOF bool) int {
	done := 0
	for {
		switch r.mode {
		case modeHoldAll:
			if !atEOF {
				r.scanPos = len(buf)
				return 0
			}
			r.fallback(buf)
			return len(buf)

		case modeRawText:
			name := r.rawName[:r.rawNameLen]
			idx := findRawTextClose(buf, r.rawProbe, name)
			if idx < 0 {
				if !atEOF {
					// Resume the search next chunk, overlapping enough that a
					// split "</nam" still matches.
					r.rawProbe = len(buf) - (2 + len(name)) + 1
					if r.rawProbe < r.scanPos {
						r.rawProbe = r.scanPos
					}
					return done
				}
				// No end tag by EOF: the scanner re-reads the raw content as
				// ordinary markup (historical behaviour).
				r.mode = modeScan
				continue
			}
			gt := indexFrom(buf, idx, ">")
			if gt < 0 {
				if !atEOF {
					r.rawProbe = idx
					return done
				}
				// "</name" with no closing '>': the historical scanner stops
				// here; nothing after idx is a token or an anchor.
				if r.holding {
					r.fallback(buf)
					return len(buf)
				}
				r.emitRange(buf, done, len(buf))
				done = len(buf)
				r.finishEOF()
				return done
			}
			// Content plus the end tag are inert: no anchors inside.
			if !r.holding {
				r.emitRange(buf, done, gt+1)
				done = gt + 1
			}
			r.scanPos = gt + 1
			r.mode = modeScan

		case modePassthrough:
			r.emitRange(buf, done, len(buf))
			return len(buf)

		default: // modeScan
			if !atEOF && len(buf)-r.scanPos < r.minGrow {
				// The held construct has not grown enough to be worth
				// re-scanning from its start yet.
				return done
			}
			tok, textEnd, st := scanNextTag(buf, r.scanPos, atEOF, &r.attrs)
			switch st {
			case scanNeedMore:
				if !r.holding {
					r.emitRange(buf, done, textEnd)
					done = textEnd
				}
				r.scanPos = textEnd
				r.minGrow = 2 * (len(buf) - textEnd)
				return done
			case scanEOFText:
				if r.holding {
					r.fallback(buf)
					return len(buf)
				}
				r.emitRange(buf, done, len(buf))
				done = len(buf)
				r.finishEOF()
				return done
			default:
				r.minGrow = 0
				done = r.handleToken(buf, tok, done)
			}
		}
	}
}

// handleToken processes one complete non-text token and returns the updated
// emitted-prefix length.
func (r *StreamRewriter) handleToken(buf []byte, tok rawToken, done int) int {
	emitTo := func(to int) {
		if !r.holding {
			r.emitRange(buf, done, to)
			done = to
		}
	}
	switch tok.typ {
	case StartTagToken:
		name := buf[tok.nameStart:tok.nameEnd]
		switch {
		case r.needHead && foldEq(name, "head"):
			// Head anchor: release everything up to and including the tag,
			// then splice the head fragment.
			r.holding = false
			r.emitRange(buf, done, tok.end)
			done = tok.end
			r.emit(r.p.headInsert)
			r.needHead = false
			r.res.InjectedCSS, r.res.InjectedScript = r.p.cssSet, r.p.scriptSet
		case foldEq(name, "body"):
			if r.holding {
				// A <body> before any <head>: the whole-document pass may
				// anchor the head fragment to a later <head>, so stop
				// streaming and let it decide at Close.
				r.mode = modeHoldAll
				r.scanPos = len(buf)
				return done
			}
			if r.needBody {
				if len(r.p.handlerCall) > 0 {
					emitTo(tok.start)
					r.scratch = appendBodyTag(r.scratch[:0], buf, r.attrs, tok.selfClosing, r.p.handlerCall)
					r.emit(r.scratch)
					done = tok.end
					r.res.InjectedHandlers = true
				} else {
					emitTo(tok.end)
				}
				r.emit(r.p.bodyTop)
				r.res.InjectedInline = r.p.inlineSet
				r.needBody = false
			} else {
				emitTo(tok.end)
			}
		case !tok.selfClosing && isRawTextName(name):
			emitTo(tok.end)
			r.rawNameLen = copy(r.rawName[:], name)
			r.scanPos = tok.end
			r.rawProbe = tok.end
			r.mode = modeRawText
			return done
		default:
			emitTo(tok.end)
		}
	case EndTagToken:
		if foldEq(buf[tok.nameStart:tok.nameEnd], "body") {
			if r.holding {
				r.mode = modeHoldAll
				r.scanPos = len(buf)
				return done
			}
			if r.needBodyEnd {
				emitTo(tok.start)
				r.emit(r.p.bodyBottom)
				r.res.InjectedHidden = r.p.hiddenSet
				r.needBodyEnd = false
			}
		}
		emitTo(tok.end)
	default: // comments and declarations are inert
		emitTo(tok.end)
	}
	r.scanPos = tok.end
	if !r.needHead && !r.needBody && !r.needBodyEnd {
		r.mode = modePassthrough
	}
	return done
}

// finishEOF appends the fragments whose anchors never appeared, in the same
// order the buffered rewriter appends them.
func (r *StreamRewriter) finishEOF() {
	if r.needBody {
		r.emit(r.p.bodyTop)
		r.res.InjectedInline = r.p.inlineSet
		r.needBody = false
	}
	if r.needBodyEnd {
		r.emit(r.p.bodyBottom)
		r.res.InjectedHidden = r.p.hiddenSet
		r.needBodyEnd = false
	}
	r.mode = modePassthrough
}

// fallback rewrites the fully retained document with the buffered reference
// path. Only reachable while holding, i.e. before anything was emitted.
func (r *StreamRewriter) fallback(buf []byte) {
	res := r.p.RewriteBuffered(buf)
	r.emit(res.HTML)
	r.res.InjectedCSS = res.InjectedCSS
	r.res.InjectedScript = res.InjectedScript
	r.res.InjectedHandlers = res.InjectedHandlers
	r.res.InjectedInline = res.InjectedInline
	r.res.InjectedHidden = res.InjectedHidden
	r.res.UsedFallback = true
	r.holding = false
	r.needHead, r.needBody, r.needBodyEnd = false, false, false
	r.mode = modePassthrough
}

func (r *StreamRewriter) emit(b []byte) {
	if r.err != nil || len(b) == 0 {
		return
	}
	if r.vecMode {
		r.vec = append(r.vec, b)
		r.outBytes += int64(len(b))
		return
	}
	if _, err := r.w.Write(b); err != nil {
		r.err = err
	}
	r.outBytes += int64(len(b))
}

// flushVec writes the queued spans with one gathered write (writev on a TCP
// connection). net.Buffers.WriteTo consumes the slice it is given, so the
// queue is handed over and re-armed over the same backing array.
func (r *StreamRewriter) flushVec() {
	if len(r.vec) == 0 {
		return
	}
	if r.err == nil {
		r.vecW = r.vec
		if _, err := r.vecW.WriteTo(r.w); err != nil {
			r.err = err
		}
	}
	r.vec = r.vec[:0]
}

func (r *StreamRewriter) emitRange(buf []byte, from, to int) {
	if to > from {
		r.emit(buf[from:to])
	}
}

// RewriteStream streams doc through a pooled StreamRewriter into w and
// returns what was injected. Output is byte-identical to Rewrite(doc, inj)
// for the equivalent injection.
func RewriteStream(doc []byte, w io.Writer, p *Prepared) (StreamResult, error) {
	r := NewStreamRewriter(w, p)
	_, _ = r.Write(doc)
	err := r.Close()
	res := r.Result()
	r.Release()
	return res, err
}

// Rewrite is the fast whole-document path over the streaming injector:
// byte-identical output to the package-level Rewrite, without the token
// materialisation. The returned HTML is freshly allocated and caller-owned.
func (p *Prepared) Rewrite(doc []byte) RewriteResult {
	var b bytes.Buffer
	b.Grow(len(doc) + len(p.headInsert) + len(p.bodyTop) + len(p.bodyBottom) + 96)
	sres, _ := RewriteStream(doc, &b, p)
	return RewriteResult{
		HTML:             b.Bytes(),
		InjectedCSS:      sres.InjectedCSS,
		InjectedScript:   sres.InjectedScript,
		InjectedHandlers: sres.InjectedHandlers,
		InjectedInline:   sres.InjectedInline,
		InjectedHidden:   sres.InjectedHidden,
		AddedBytes:       sres.AddedBytes,
	}
}
