package htmlmod

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// benchPage builds a deterministic page of roughly the requested body size
// with the structure of the corpus sites: a head with presentation objects,
// a body of paragraphs, links, images and inline scripts.
func benchPage(paragraphs int) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<title>bench</title>\n")
	b.WriteString("<link rel=\"stylesheet\" type=\"text/css\" href=\"/static/site.css\">\n")
	b.WriteString("<script type=\"text/javascript\" src=\"/static/site.js\"></script>\n")
	b.WriteString("</head>\n<body class=\"main\" onload=\"init();\">\n")
	for i := 0; i < paragraphs; i++ {
		fmt.Fprintf(&b, "<p id=\"p%d\">paragraph %d with <a href=\"/page%d.html\">a link</a>, "+
			"an <img src=\"/img/photo%d.jpg\" alt=\"photo\"> and some filler text to pad the line out.</p>\n", i, i, i%50, i%20)
		if i%10 == 9 {
			fmt.Fprintf(&b, "<script>var s%d = \"<a href='/fake%d.html'>not a link</a>\";</script>\n", i, i)
		}
		if i%25 == 24 {
			fmt.Fprintf(&b, "<!-- section %d boundary <b>with markup</b> -->\n", i)
		}
	}
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

var benchCorpus = []struct {
	name       string
	paragraphs int
}{
	{"small", 8},    // ~1.3 KB: a landing page
	{"medium", 120}, // ~19 KB: a typical article page
	{"large", 1500}, // ~240 KB: a heavy listing page
}

// BenchmarkRewriteBuffered measures the store-and-forward reference path
// (tokenise, locate anchors, rebuild the document).
func BenchmarkRewriteBuffered(b *testing.B) {
	inj := stdInjection()
	for _, c := range benchCorpus {
		page := benchPage(c.paragraphs)
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(len(page)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Rewrite(page, inj)
			}
		})
	}
}

// BenchmarkRewriteStream measures the single-pass streaming injector over
// the same corpus, feeding the page in transport-sized chunks into a reused
// sink the way the proxy's response path does.
func BenchmarkRewriteStream(b *testing.B) {
	prep := PrepareInjection(stdInjection())
	const chunk = 8 << 10
	for _, c := range benchCorpus {
		page := benchPage(c.paragraphs)
		b.Run(c.name, func(b *testing.B) {
			var out bytes.Buffer
			out.Grow(len(page) + 1024)
			b.SetBytes(int64(len(page)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out.Reset()
				r := NewStreamRewriter(&out, prep)
				for off := 0; off < len(page); off += chunk {
					end := off + chunk
					if end > len(page) {
						end = len(page)
					}
					_, _ = r.Write(page[off:end])
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
				if !r.Result().InjectedHidden {
					b.Fatal("injection incomplete")
				}
				r.Release()
			}
		})
	}
}

// BenchmarkRewriteStreamDiscard isolates the scanner/injector cost from the
// sink by streaming into io.Discard.
func BenchmarkRewriteStreamDiscard(b *testing.B) {
	prep := PrepareInjection(stdInjection())
	page := benchPage(120)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewStreamRewriter(io.Discard, prep)
		_, _ = r.Write(page)
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
		r.Release()
	}
}

// BenchmarkPrepareInjection measures compiling an Injection into fragments
// (paid once per page view by the engine).
func BenchmarkPrepareInjection(b *testing.B) {
	inj := stdInjection()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PrepareInjection(inj)
	}
}
