// Package htmlmod provides the HTML scanning and rewriting machinery behind
// the paper's dynamic page modification (Sections 2.1 and 2.2): locating the
// head and body of a served page, injecting the beacon stylesheet, the
// external event-handler script, the inline user-agent reporter, the
// onmousemove/onkeypress attributes, and the hidden trap link.
//
// The same scanner also powers link and embedded-object extraction, which
// the synthetic traffic agents use to browse pages exactly the way the
// detector observes real clients browsing them.
//
// The scanner is deliberately not a full HTML5 parser: the rewriter only
// needs tag boundaries, attribute lists, comments and raw-text elements
// (script/style), and it must never reorder or re-serialise untouched
// content, so it operates on byte offsets into the original document.
//
// Two consumers sit on one scanning core. scanNextTag classifies regions by
// byte offset without allocating: the streaming rewriter (stream.go) drives
// it incrementally as response bytes flow through the proxy, and the legacy
// Tokenize drives it over a whole document, materialising the []Token slice
// (with lowercase name and attribute strings) that the link-extraction
// consumers in internal/agents still use.
package htmlmod

import (
	"bytes"
)

// TokenType identifies a scanned token.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is an opening tag, possibly self-closing.
	StartTagToken
	// EndTagToken is a closing tag.
	EndTagToken
	// CommentToken is an HTML comment.
	CommentToken
	// DeclToken is a <!DOCTYPE ...> or similar declaration.
	DeclToken
)

// Token is one scanned region of the document.
type Token struct {
	// Type is the token type.
	Type TokenType
	// Name is the lowercase tag name for start/end tags.
	Name string
	// Start and End are byte offsets of the token in the original document
	// (End is exclusive).
	Start, End int
	// SelfClosing reports whether a start tag ends with "/>".
	SelfClosing bool
	// Attrs are the tag's attributes in document order (start tags only).
	Attrs []Attr
}

// Attr is one tag attribute.
type Attr struct {
	// Name is the lowercase attribute name.
	Name string
	// Value is the unquoted attribute value ("" for value-less attributes).
	Value string
}

// Get returns the value of the named attribute and whether it is present.
func (t Token) Get(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// --- raw scanning core ------------------------------------------------------

// rawAttr is one attribute described purely by offsets into the document.
// Quoted values exclude their quotes; value-less attributes have a zero
// value range, indistinguishable from `x=""` (both materialise as Value "").
type rawAttr struct {
	nameStart, nameEnd int
	valStart, valEnd   int
}

// rawToken is one scanned non-text region described purely by offsets, so
// scanning never allocates. Text is implicit: the bytes between the caller's
// scan position and the token's start.
type rawToken struct {
	typ                TokenType
	start, end         int
	nameStart, nameEnd int
	selfClosing        bool
}

// scanStatus reports the outcome of one scanNextTag call.
type scanStatus int

const (
	// scanTok: a non-text token was found; bytes before it are text.
	scanTok scanStatus = iota
	// scanEOFText: no further tokens; everything from pos on is text.
	// Only returned when atEOF is true.
	scanEOFText
	// scanNeedMore: the tail starting at the returned offset cannot be
	// classified without more input. Bytes before that offset are text.
	// Only returned when atEOF is false.
	scanNeedMore
)

// scanNextTag finds the next non-text token at or after pos. attrs is a
// reusable scratch slice filled with the attribute offsets of a start tag.
//
// When atEOF is false the scanner is conservative: any construct that could
// still change meaning with more input (an open tag, a comment without its
// terminator, a "<!" that may yet become "<!--") yields scanNeedMore with
// the offset of the earliest ambiguous byte. When atEOF is true it
// reproduces the historical whole-document behaviour exactly: malformed
// regions degrade to text, an unterminated comment swallows the rest of the
// document.
func scanNextTag(doc []byte, pos int, atEOF bool, attrs *[]rawAttr) (rawToken, int, scanStatus) {
	n := len(doc)
	i := pos
	for i < n {
		if doc[i] != '<' {
			i++
			continue
		}
		if i+1 >= n {
			if atEOF {
				i++
				continue
			}
			return rawToken{}, i, scanNeedMore
		}
		switch c := doc[i+1]; {
		case c == '!' || c == '?':
			// Comment?
			if hasPrefixAt(doc, i, "<!--") {
				end := indexFrom(doc, i+4, "-->")
				if end >= 0 {
					return rawToken{typ: CommentToken, start: i, end: end + 3}, i, scanTok
				}
				if atEOF {
					// Unterminated comment: the rest of the document.
					return rawToken{typ: CommentToken, start: i, end: n}, i, scanTok
				}
				return rawToken{}, i, scanNeedMore
			}
			// "<!" or "<!-" could still become a comment opener.
			if !atEOF && c == '!' && n-i < 4 && prefixCompatible(doc[i:n], "<!--") {
				return rawToken{}, i, scanNeedMore
			}
			// Declaration (<!DOCTYPE ...>, <![CDATA[..., <?xml ...).
			end := indexFrom(doc, i+1, ">")
			if end < 0 {
				if atEOF {
					i++
					continue
				}
				return rawToken{}, i, scanNeedMore
			}
			return rawToken{typ: DeclToken, start: i, end: end + 1}, i, scanTok
		case c == '/':
			end := indexFrom(doc, i+2, ">")
			if end < 0 {
				if atEOF {
					i++
					continue
				}
				return rawToken{}, i, scanNeedMore
			}
			ns, ne := endTagName(doc, i+2, end)
			return rawToken{typ: EndTagToken, start: i, end: end + 1, nameStart: ns, nameEnd: ne}, i, scanTok
		default:
			tok, complete, ok := scanStartTagRaw(doc, i, attrs)
			if !complete {
				if atEOF {
					i++
					continue
				}
				return rawToken{}, i, scanNeedMore
			}
			if !ok {
				i++
				continue
			}
			return tok, i, scanTok
		}
	}
	if atEOF {
		return rawToken{}, n, scanEOFText
	}
	return rawToken{}, n, scanNeedMore
}

// scanStartTagRaw scans an opening tag beginning at doc[i] == '<'. complete
// is false when the scanner ran out of bytes mid-tag (the caller decides
// whether that means "need more input" or "treat as text"); ok is false when
// the bytes can never form a start tag.
func scanStartTagRaw(doc []byte, i int, attrs *[]rawAttr) (tok rawToken, complete, ok bool) {
	*attrs = (*attrs)[:0]
	n := len(doc)
	j := i + 1
	nameStart := j
	for j < n && isNameByte(doc[j]) {
		j++
	}
	if j == nameStart {
		if j >= n {
			return rawToken{}, false, false
		}
		return rawToken{}, true, false // "<" not followed by a tag name
	}
	tok = rawToken{typ: StartTagToken, start: i, nameStart: nameStart, nameEnd: j}

	// Scan attributes respecting quotes.
	for j < n {
		// Skip whitespace.
		for j < n && isSpaceByte(doc[j]) {
			j++
		}
		if j >= n {
			return rawToken{}, false, false
		}
		if doc[j] == '>' {
			tok.end = j + 1
			return tok, true, true
		}
		if doc[j] == '/' && j+1 < n && doc[j+1] == '>' {
			tok.selfClosing = true
			tok.end = j + 2
			return tok, true, true
		}
		// Attribute name.
		attrStart := j
		for j < n && doc[j] != '=' && doc[j] != '>' && doc[j] != '/' && !isSpaceByte(doc[j]) {
			j++
		}
		if j >= n {
			return rawToken{}, false, false
		}
		if j == attrStart {
			j++
			continue
		}
		a := rawAttr{nameStart: attrStart, nameEnd: j}
		// Optional value.
		for j < n && isSpaceByte(doc[j]) {
			j++
		}
		if j < n && doc[j] == '=' {
			j++
			for j < n && isSpaceByte(doc[j]) {
				j++
			}
			if j < n && (doc[j] == '"' || doc[j] == '\'') {
				quote := doc[j]
				j++
				valStart := j
				for j < n && doc[j] != quote {
					j++
				}
				if j >= n {
					return rawToken{}, false, false
				}
				a.valStart, a.valEnd = valStart, j
				*attrs = append(*attrs, a)
				j++
			} else {
				valStart := j
				for j < n && !isSpaceByte(doc[j]) && doc[j] != '>' {
					j++
				}
				a.valStart, a.valEnd = valStart, j
				*attrs = append(*attrs, a)
			}
		} else {
			*attrs = append(*attrs, a)
		}
	}
	return rawToken{}, false, false
}

// endTagName locates the tag name inside an end tag's "</" .. ">" span:
// ASCII whitespace is trimmed from both ends and the name stops at the first
// interior whitespace byte.
func endTagName(doc []byte, s, e int) (int, int) {
	for s < e && isSpaceByte(doc[s]) {
		s++
	}
	for e > s && isSpaceByte(doc[e-1]) {
		e--
	}
	for j := s; j < e; j++ {
		if isSpaceByte(doc[j]) {
			e = j
			break
		}
	}
	return s, e
}

// prefixCompatible reports whether got is a prefix of want (byte-exact).
func prefixCompatible(got []byte, want string) bool {
	if len(got) > len(want) {
		return false
	}
	return string(got) == want[:len(got)]
}

// foldEq reports whether name equals lower under ASCII case folding; lower
// must already be lowercase.
func foldEq(name []byte, lower string) bool {
	if len(name) != len(lower) {
		return false
	}
	for k := 0; k < len(name); k++ {
		c := name[k]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[k] {
			return false
		}
	}
	return true
}

// isRawTextName reports whether the tag name (any case) is an element whose
// content is scanned as raw text up to the matching end tag.
func isRawTextName(name []byte) bool {
	switch len(name) {
	case 5:
		return foldEq(name, "style") || foldEq(name, "title")
	case 6:
		return foldEq(name, "script")
	case 8:
		return foldEq(name, "textarea")
	}
	return false
}

// findRawTextClose finds the "</name" closing sequence case-insensitively at
// or after pos. name carries the element name in its original case.
func findRawTextClose(doc []byte, pos int, name []byte) int {
	for j := pos; j+2+len(name) <= len(doc); j++ {
		if doc[j] != '<' || doc[j+1] != '/' {
			continue
		}
		match := true
		for k := 0; k < len(name); k++ {
			c, d := doc[j+2+k], name[k]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if d >= 'A' && d <= 'Z' {
				d += 'a' - 'A'
			}
			if c != d {
				match = false
				break
			}
		}
		if match {
			return j
		}
	}
	return -1
}

// --- legacy token materialisation ------------------------------------------

// Tokenize scans the document and returns its tokens. The scan is
// best-effort: malformed markup never causes an error, the scanner simply
// treats unparseable regions as text, which is the safe behaviour for a
// rewriter (it will inject less rather than corrupt output).
func Tokenize(doc []byte) []Token {
	var tokens []Token
	var attrs []rawAttr
	n := len(doc)
	i := 0
	for i < n {
		raw, _, st := scanNextTag(doc, i, true, &attrs)
		if st == scanEOFText {
			if n > i {
				tokens = append(tokens, Token{Type: TextToken, Start: i, End: n})
			}
			return tokens
		}
		if raw.start > i {
			tokens = append(tokens, Token{Type: TextToken, Start: i, End: raw.start})
		}
		tokens = append(tokens, materializeToken(doc, raw, attrs))
		i = raw.end

		// Raw-text elements: skip to their end tag so "<a href=...>" inside a
		// script string is not mistaken for markup.
		if raw.typ == StartTagToken && !raw.selfClosing {
			name := doc[raw.nameStart:raw.nameEnd]
			if !isRawTextName(name) {
				continue
			}
			idx := findRawTextClose(doc, i, name)
			if idx < 0 {
				continue
			}
			if idx > i {
				tokens = append(tokens, Token{Type: TextToken, Start: i, End: idx})
			}
			end := indexFrom(doc, idx, ">")
			if end < 0 {
				// A "</name" with no closing '>': the historical scanner
				// stops here, leaving the tail untokenised.
				return tokens
			}
			tokens = append(tokens, Token{
				Type: EndTagToken, Name: lowerString(name), Start: idx, End: end + 1,
			})
			i = end + 1
		}
	}
	return tokens
}

// materializeToken converts a raw token into the public Token form,
// allocating the lowercase name and attribute strings the legacy API exposes.
func materializeToken(doc []byte, raw rawToken, attrs []rawAttr) Token {
	t := Token{Type: raw.typ, Start: raw.start, End: raw.end, SelfClosing: raw.selfClosing}
	switch raw.typ {
	case StartTagToken:
		t.Name = lowerString(doc[raw.nameStart:raw.nameEnd])
		if len(attrs) > 0 {
			t.Attrs = make([]Attr, len(attrs))
			for k, a := range attrs {
				t.Attrs[k] = Attr{
					Name:  lowerString(doc[a.nameStart:a.nameEnd]),
					Value: string(doc[a.valStart:a.valEnd]),
				}
			}
		}
	case EndTagToken:
		t.Name = lowerString(doc[raw.nameStart:raw.nameEnd])
	}
	return t
}

// lowerString allocates the ASCII-lowercased string of b.
func lowerString(b []byte) string {
	for k := 0; k < len(b); k++ {
		if b[k] >= 'A' && b[k] <= 'Z' {
			goto convert
		}
	}
	return string(b)
convert:
	out := make([]byte, len(b))
	for k := 0; k < len(b); k++ {
		c := b[k]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[k] = c
	}
	return string(out)
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == ':'
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

func hasPrefixAt(doc []byte, i int, prefix string) bool {
	if i+len(prefix) > len(doc) {
		return false
	}
	return string(doc[i:i+len(prefix)]) == prefix
}

func indexFrom(doc []byte, i int, sub string) int {
	idx := bytes.Index(doc[i:], []byte(sub))
	if idx < 0 {
		return -1
	}
	return i + idx
}
