// Package htmlmod provides the HTML scanning and rewriting machinery behind
// the paper's dynamic page modification (Sections 2.1 and 2.2): locating the
// head and body of a served page, injecting the beacon stylesheet, the
// external event-handler script, the inline user-agent reporter, the
// onmousemove/onkeypress attributes, and the hidden trap link.
//
// The same scanner also powers link and embedded-object extraction, which
// the synthetic traffic agents use to browse pages exactly the way the
// detector observes real clients browsing them.
//
// The scanner is deliberately not a full HTML5 parser: the rewriter only
// needs tag boundaries, attribute lists, comments and raw-text elements
// (script/style), and it must never reorder or re-serialise untouched
// content, so it operates on byte offsets into the original document.
package htmlmod

import (
	"bytes"
	"strings"
)

// TokenType identifies a scanned token.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is an opening tag, possibly self-closing.
	StartTagToken
	// EndTagToken is a closing tag.
	EndTagToken
	// CommentToken is an HTML comment.
	CommentToken
	// DeclToken is a <!DOCTYPE ...> or similar declaration.
	DeclToken
)

// Token is one scanned region of the document.
type Token struct {
	// Type is the token type.
	Type TokenType
	// Name is the lowercase tag name for start/end tags.
	Name string
	// Start and End are byte offsets of the token in the original document
	// (End is exclusive).
	Start, End int
	// SelfClosing reports whether a start tag ends with "/>".
	SelfClosing bool
	// Attrs are the tag's attributes in document order (start tags only).
	Attrs []Attr
}

// Attr is one tag attribute.
type Attr struct {
	// Name is the lowercase attribute name.
	Name string
	// Value is the unquoted attribute value ("" for value-less attributes).
	Value string
}

// Get returns the value of the named attribute and whether it is present.
func (t Token) Get(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextElements are elements whose content is scanned as raw text up to
// the matching end tag.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
}

// Tokenize scans the document and returns its tokens. The scan is
// best-effort: malformed markup never causes an error, the scanner simply
// treats unparseable regions as text, which is the safe behaviour for a
// rewriter (it will inject less rather than corrupt output).
func Tokenize(doc []byte) []Token {
	var tokens []Token
	i := 0
	n := len(doc)
	textStart := 0

	flushText := func(end int) {
		if end > textStart {
			tokens = append(tokens, Token{Type: TextToken, Start: textStart, End: end})
		}
	}

	for i < n {
		if doc[i] != '<' {
			i++
			continue
		}
		// Comment?
		if hasPrefixAt(doc, i, "<!--") {
			end := indexFrom(doc, i+4, "-->")
			if end < 0 {
				// Unterminated comment: treat the rest as a comment.
				flushText(i)
				tokens = append(tokens, Token{Type: CommentToken, Start: i, End: n})
				textStart = n
				i = n
				break
			}
			flushText(i)
			tokens = append(tokens, Token{Type: CommentToken, Start: i, End: end + 3})
			i = end + 3
			textStart = i
			continue
		}
		// Declaration (<!DOCTYPE ...>, <![CDATA[...)?
		if i+1 < n && (doc[i+1] == '!' || doc[i+1] == '?') {
			end := indexFrom(doc, i+1, ">")
			if end < 0 {
				i++
				continue
			}
			flushText(i)
			tokens = append(tokens, Token{Type: DeclToken, Start: i, End: end + 1})
			i = end + 1
			textStart = i
			continue
		}
		// End tag?
		if i+1 < n && doc[i+1] == '/' {
			end := indexFrom(doc, i+2, ">")
			if end < 0 {
				i++
				continue
			}
			name := strings.ToLower(strings.TrimSpace(string(doc[i+2 : end])))
			// Tag names stop at the first space.
			if sp := strings.IndexAny(name, " \t\r\n"); sp >= 0 {
				name = name[:sp]
			}
			flushText(i)
			tokens = append(tokens, Token{Type: EndTagToken, Name: name, Start: i, End: end + 1})
			i = end + 1
			textStart = i
			continue
		}
		// Start tag.
		tok, next, ok := scanStartTag(doc, i)
		if !ok {
			i++
			continue
		}
		flushText(i)
		tokens = append(tokens, tok)
		i = next
		textStart = i

		// Raw-text elements: skip to their end tag so "<a href=...>" inside a
		// script string is not mistaken for markup.
		if rawTextElements[tok.Name] && !tok.SelfClosing {
			closing := "</" + tok.Name
			idx := indexFoldFrom(doc, i, closing)
			if idx < 0 {
				continue
			}
			if idx > i {
				tokens = append(tokens, Token{Type: TextToken, Start: i, End: idx})
			}
			end := indexFrom(doc, idx, ">")
			if end < 0 {
				i = n
				textStart = n
				break
			}
			tokens = append(tokens, Token{Type: EndTagToken, Name: tok.Name, Start: idx, End: end + 1})
			i = end + 1
			textStart = i
		}
	}
	flushText(n)
	return tokens
}

// scanStartTag scans an opening tag beginning at doc[i] == '<'. It returns
// the token, the offset just past the closing '>', and whether the scan
// succeeded.
func scanStartTag(doc []byte, i int) (Token, int, bool) {
	n := len(doc)
	j := i + 1
	nameStart := j
	for j < n && isNameByte(doc[j]) {
		j++
	}
	if j == nameStart {
		return Token{}, 0, false // "<" not followed by a tag name
	}
	tok := Token{Type: StartTagToken, Name: strings.ToLower(string(doc[nameStart:j])), Start: i}

	// Scan attributes respecting quotes.
	for j < n {
		// Skip whitespace.
		for j < n && isSpaceByte(doc[j]) {
			j++
		}
		if j >= n {
			return Token{}, 0, false
		}
		if doc[j] == '>' {
			tok.End = j + 1
			return tok, j + 1, true
		}
		if doc[j] == '/' && j+1 < n && doc[j+1] == '>' {
			tok.SelfClosing = true
			tok.End = j + 2
			return tok, j + 2, true
		}
		// Attribute name.
		attrStart := j
		for j < n && doc[j] != '=' && doc[j] != '>' && doc[j] != '/' && !isSpaceByte(doc[j]) {
			j++
		}
		if j >= n {
			return Token{}, 0, false
		}
		name := strings.ToLower(string(doc[attrStart:j]))
		if name == "" {
			j++
			continue
		}
		// Optional value.
		for j < n && isSpaceByte(doc[j]) {
			j++
		}
		if j < n && doc[j] == '=' {
			j++
			for j < n && isSpaceByte(doc[j]) {
				j++
			}
			if j < n && (doc[j] == '"' || doc[j] == '\'') {
				quote := doc[j]
				j++
				valStart := j
				for j < n && doc[j] != quote {
					j++
				}
				if j >= n {
					return Token{}, 0, false
				}
				tok.Attrs = append(tok.Attrs, Attr{Name: name, Value: string(doc[valStart:j])})
				j++
			} else {
				valStart := j
				for j < n && !isSpaceByte(doc[j]) && doc[j] != '>' {
					j++
				}
				tok.Attrs = append(tok.Attrs, Attr{Name: name, Value: string(doc[valStart:j])})
			}
		} else {
			tok.Attrs = append(tok.Attrs, Attr{Name: name})
		}
	}
	return Token{}, 0, false
}

func isNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == ':'
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

func hasPrefixAt(doc []byte, i int, prefix string) bool {
	if i+len(prefix) > len(doc) {
		return false
	}
	return string(doc[i:i+len(prefix)]) == prefix
}

func indexFrom(doc []byte, i int, sub string) int {
	idx := bytes.Index(doc[i:], []byte(sub))
	if idx < 0 {
		return -1
	}
	return i + idx
}

// indexFoldFrom finds sub case-insensitively starting at i without copying
// the remainder of the document.
func indexFoldFrom(doc []byte, i int, sub string) int {
	lsub := strings.ToLower(sub)
	if lsub == "" {
		return i
	}
	first := lsub[0]
	firstUpper := first
	if first >= 'a' && first <= 'z' {
		firstUpper = first - 'a' + 'A'
	}
	for j := i; j+len(lsub) <= len(doc); j++ {
		if doc[j] != first && doc[j] != firstUpper {
			continue
		}
		match := true
		for k := 1; k < len(lsub); k++ {
			c := doc[j+k]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != lsub[k] {
				match = false
				break
			}
		}
		if match {
			return j
		}
	}
	return -1
}
